// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark regenerates its figure through the experiment
// harness and reports the figure's headline metric(s) via b.ReportMetric,
// so `go test -bench=.` doubles as a reproduction run.
//
// Benchmarks default to quarter-length traces and suite subsets to keep a
// full -bench=. pass tractable on a laptop; set THERMOMETER_BENCH_SCALE=1
// (and _CBP5/_IPC1 limits) for paper-scale runs, or use cmd/paperfigs.
package thermometer_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/experiments"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/workload"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func benchCtx() *experiments.Context {
	c := experiments.NewContext(envInt("THERMOMETER_BENCH_SCALE", 4))
	c.CBP5Traces = envInt("THERMOMETER_BENCH_CBP5", 30)
	c.IPC1Traces = envInt("THERMOMETER_BENCH_IPC1", 10)
	return c
}

// cell finds a row by first-column label and returns the named column as a
// float (0 if unparseable).
func cell(tables []*experiments.Table, rowLabel, colName string) float64 {
	for _, t := range tables {
		col := -1
		for i, h := range t.Header {
			if h == colName {
				col = i
			}
		}
		if col < 0 {
			continue
		}
		for _, row := range t.Rows {
			if row[0] == rowLabel && col < len(row) {
				v, err := strconv.ParseFloat(strings.TrimSpace(row[col]), 64)
				if err == nil {
					return v
				}
			}
		}
	}
	return 0
}

// runExperiment executes the experiment b.N times, reporting extracted
// metrics from the final run.
func runExperiment(b *testing.B, id string, metrics map[string][2]string) {
	b.Helper()
	ctx := benchCtx()
	fn := experiments.Registry[id]
	if fn == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		tables = fn(ctx)
	}
	for metric, loc := range metrics {
		b.ReportMetric(cell(tables, loc[0], loc[1]), metric)
	}
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", nil)
}

func BenchmarkFig01PriorPolicies(b *testing.B) {
	runExperiment(b, "fig1", map[string][2]string{
		"srrip_speedup_pct": {"Avg", "SRRIP"},
		"opt_speedup_pct":   {"Avg", "OPT"},
	})
}

func BenchmarkFig02LimitStudy(b *testing.B) {
	runExperiment(b, "fig2", map[string][2]string{
		"perfect_btb_pct": {"Avg", "Perfect-BTB"},
		"perfect_bp_pct":  {"Avg", "Perfect-BP"},
		"perfect_ic_pct":  {"Avg", "Perfect-I-Cache"},
	})
}

func BenchmarkFig03L2iMPKI(b *testing.B) {
	runExperiment(b, "fig3", map[string][2]string{
		"verilator_l2impki": {"verilator", "L2iMPKI"},
		"cassandra_l2impki": {"cassandra", "L2iMPKI"},
	})
}

func BenchmarkFig04Prefetchers(b *testing.B) {
	runExperiment(b, "fig4", map[string][2]string{
		"confluence_lru_pct": {"Avg", "Confluence-LRU"},
		"shotgun_lru_pct":    {"Avg", "Shotgun-LRU"},
		"perfect_btb_pct":    {"Avg", "Perfect-BTB"},
	})
}

func BenchmarkFig05Variance(b *testing.B) {
	runExperiment(b, "fig5", map[string][2]string{
		"variance_ratio": {"Avg", "ratio"},
	})
}

func BenchmarkFig06HitToTaken(b *testing.B) {
	runExperiment(b, "fig6", map[string][2]string{
		"drupal_median_hit_to_taken": {"50%", "drupal"},
	})
}

func BenchmarkFig07DynamicCDF(b *testing.B) {
	runExperiment(b, "fig7", map[string][2]string{
		"drupal_cdf_at_50pct": {"50%", "drupal"},
	})
}

func BenchmarkFig08Correlations(b *testing.B) {
	runExperiment(b, "fig8", map[string][2]string{
		"kafka_reuse_corr": {"kafka", "avg-reuse-distance"},
		"kafka_bias_corr":  {"kafka", "bias"},
	})
}

func BenchmarkFig09Bypass(b *testing.B) {
	runExperiment(b, "fig9", map[string][2]string{
		"cold_bypass_pct": {"Avg", "cold"},
		"hot_bypass_pct":  {"Avg", "hot"},
	})
}

func BenchmarkFig11Thermometer(b *testing.B) {
	runExperiment(b, "fig11", map[string][2]string{
		"thermometer_speedup_pct": {"Avg", "Thermometer"},
		"opt_speedup_pct":         {"Avg", "OPT"},
	})
}

func BenchmarkFig12MissReduction(b *testing.B) {
	runExperiment(b, "fig12", map[string][2]string{
		"thermometer_missred_pct": {"Avg", "Thermometer"},
		"opt_missred_pct":         {"Avg", "OPT"},
	})
}

func BenchmarkFig13CrossInput(b *testing.B) {
	runExperiment(b, "fig13", map[string][2]string{
		"training_profile_pct_of_opt": {"Avg", "Therm-training-profile"},
	})
}

func BenchmarkFig14ProfilingTime(b *testing.B) {
	runExperiment(b, "fig14", map[string][2]string{
		"avg_profile_seconds": {"Avg", "seconds"},
	})
}

func BenchmarkFig15Coverage(b *testing.B) {
	runExperiment(b, "fig15", map[string][2]string{
		"coverage_pct": {"Avg", "coverage"},
	})
}

func BenchmarkFig16Accuracy(b *testing.B) {
	runExperiment(b, "fig16", map[string][2]string{
		"transient_accuracy_pct":   {"Avg", "Transient"},
		"holistic_accuracy_pct":    {"Avg", "Holistic"},
		"thermometer_accuracy_pct": {"Avg", "Thermometer"},
	})
}

func BenchmarkFig17CBP5(b *testing.B) {
	runExperiment(b, "fig17", map[string][2]string{
		"avg_missred_over_ghrp_pct": {"avg miss reduction (%)", "value"},
	})
}

func BenchmarkFig18IPC1(b *testing.B) {
	runExperiment(b, "fig18", map[string][2]string{
		"thermometer_speedup_pct": {"avg speedup (%)", "Thermometer"},
		"opt_speedup_pct":         {"avg speedup (%)", "OPT"},
	})
}

func BenchmarkFig19Geometry(b *testing.B) {
	runExperiment(b, "fig19", map[string][2]string{
		"therm_cassandra_8k_pct_of_opt": {"8192", "Therm-cassandra"},
	})
}

func BenchmarkFig20CategoriesFTQ(b *testing.B) {
	runExperiment(b, "fig20", map[string][2]string{
		"therm_cassandra_3cat_pct_of_opt": {"3", "Therm-cassandra"},
	})
}

func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "ablations", map[string][2]string{
		"thermometer_pct": {"Avg", "Thermometer"},
		"no_bypass_pct":   {"Avg", "no-bypass"},
	})
}

func BenchmarkTwoLevelBTB(b *testing.B) {
	runExperiment(b, "twolevel", map[string][2]string{
		"two_level_therm_pct": {"Avg", "2L-Therm"},
	})
}

func BenchmarkFig21Twig(b *testing.B) {
	runExperiment(b, "fig21", map[string][2]string{
		"thermometer_plus_twig_pct": {"Avg", "Thermometer"},
		"opt_plus_twig_pct":         {"Avg", "OPT"},
	})
}

// BenchmarkCoreLoop measures the raw cycle loop — one timing simulation per
// iteration on a pre-generated trace, no experiment harness — and reports
// blocks (taken branches) per second plus allocs/op. This is the number the
// perf-trajectory gate (cmd/benchsnap) tracks per grid cell; the steady
// state is allocation-free, so allocs/op is setup cost only.
func BenchmarkCoreLoop(b *testing.B) {
	app, ok := workload.App("clang")
	if !ok {
		b.Fatal("unknown app clang")
	}
	tr := app.ScaleLength(1, envInt("THERMOMETER_BENCH_SCALE", 4)*4).Generate(0)
	tr.AccessStream() // warm the cached oracle stream
	for _, pol := range []string{"lru", "srrip", "thermometer"} {
		b.Run(pol, func(b *testing.B) {
			cfg := core.DefaultConfig()
			switch pol {
			case "srrip":
				cfg.NewPolicy = func() btb.Policy { return policy.NewSRRIP() }
			case "thermometer":
				ht, _, err := profile.ProfileTrace(tr, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				cfg.Hints = ht
				cfg.NewPolicy = func() btb.Policy { return policy.NewThermometer() }
			}
			b.ReportAllocs()
			b.ResetTimer()
			var blocks uint64
			for i := 0; i < b.N; i++ {
				r := core.Run(tr, cfg)
				blocks = r.BTB.Accesses
			}
			b.ReportMetric(float64(blocks)*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}
