module thermometer

go 1.22
