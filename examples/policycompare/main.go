// Policy shoot-out: every replacement policy on several data center
// workloads, reporting BTB miss reduction and IPC speedup over LRU —
// a miniature of the paper's Figs 11 and 12.
//
// Run with: go run ./examples/policycompare
package main

import (
	"fmt"

	"thermometer"
)

const btbEntries, btbWays = 8192, 4

type contender struct {
	name      string
	newPolicy func() thermometer.Policy
	useHints  bool
}

func main() {
	contenders := []contender{
		{"SRRIP", thermometer.NewSRRIPPolicy, false},
		{"GHRP", thermometer.NewGHRPPolicy, false},
		{"Hawkeye", thermometer.NewHawkeyePolicy, false},
		{"Thermometer", thermometer.NewThermometerPolicy, true},
		{"OPT", thermometer.NewOPTPolicy, false},
	}

	apps := []string{"kafka", "mediawiki", "wordpress", "verilator"}
	for _, name := range apps {
		spec, _ := thermometer.App(name)
		spec.Length /= 4
		tr := spec.Generate(0)
		hints, _, err := thermometer.Profile(tr, btbEntries, btbWays)
		if err != nil {
			panic(err)
		}

		lru := thermometer.Simulate(tr, thermometer.DefaultConfig())
		fmt.Printf("%s (LRU: IPC %.3f, BTB MPKI %.1f)\n", name, lru.IPC(), lru.BTBMPKI())
		fmt.Printf("  %-14s %12s %12s\n", "policy", "missRed", "speedup")
		for _, c := range contenders {
			cfg := thermometer.DefaultConfig()
			cfg.NewPolicy = c.newPolicy
			if c.useHints {
				cfg.Hints = hints
			}
			r := thermometer.Simulate(tr, cfg)
			missRed := (float64(lru.BTB.Misses) - float64(r.BTB.Misses)) / float64(lru.BTB.Misses)
			fmt.Printf("  %-14s %11.2f%% %11.2f%%\n",
				c.name, 100*missRed, 100*thermometer.Speedup(lru, r))
		}
		fmt.Println()
	}
}
