// Sensitivity study: how Thermometer's benefit scales with BTB capacity and
// how it composes with profile-guided BTB prefetching (Twig) — miniatures
// of the paper's Figs 19 and 21.
//
// Run with: go run ./examples/sensitivity
package main

import (
	"fmt"

	"thermometer"
)

func main() {
	spec, _ := thermometer.App("tomcat")
	spec.Length /= 4
	tr := spec.Generate(0)

	fmt.Println("BTB size sweep (tomcat): Thermometer speedup over LRU, % of OPT")
	fmt.Printf("%8s %10s %10s %10s\n", "entries", "Therm", "OPT", "%ofOPT")
	for _, entries := range []int{2048, 4096, 8192, 16384} {
		// Profiles are geometry-specific (§3.4): re-profile per size.
		hints, _, err := thermometer.Profile(tr, entries, 4)
		if err != nil {
			panic(err)
		}
		geo := func() thermometer.Config {
			c := thermometer.DefaultConfig()
			c.BTBEntries = entries
			return c
		}
		lru := thermometer.Simulate(tr, geo())

		cfg := geo()
		cfg.NewPolicy = thermometer.NewThermometerPolicy
		cfg.Hints = hints
		th := thermometer.Speedup(lru, thermometer.Simulate(tr, cfg))

		cfgO := geo()
		cfgO.NewPolicy = thermometer.NewOPTPolicy
		op := thermometer.Speedup(lru, thermometer.Simulate(tr, cfgO))

		frac := 0.0
		if op > 0 {
			frac = th / op
		}
		fmt.Printf("%8d %9.2f%% %9.2f%% %9.1f%%\n", entries, 100*th, 100*op, 100*frac)
	}

	fmt.Println("\nWith Twig BTB prefetching (speedups over LRU+Twig):")
	twig := thermometer.TrainTwig(tr, thermometer.TwigConfig{})
	withTwig := func() thermometer.Config {
		c := thermometer.DefaultConfig()
		c.Prefetcher = twig
		return c
	}
	base := thermometer.Simulate(tr, withTwig())
	hints, _, err := thermometer.Profile(tr, 8192, 4)
	if err != nil {
		panic(err)
	}
	cfg := withTwig()
	cfg.NewPolicy = thermometer.NewThermometerPolicy
	cfg.Hints = hints
	th := thermometer.Simulate(tr, cfg)
	cfgO := withTwig()
	cfgO.NewPolicy = thermometer.NewOPTPolicy
	op := thermometer.Simulate(tr, cfgO)
	fmt.Printf("%-14s %9.2f%%\n", "Thermometer", 100*thermometer.Speedup(base, th))
	fmt.Printf("%-14s %9.2f%%\n", "OPT", 100*thermometer.Speedup(base, op))
	fmt.Printf("(prefetch fills under Thermometer: %d)\n", th.PrefetchFills)
}
