// Profile-guided deployment workflow: how a data center operator would use
// Thermometer across changing inputs (§4.2, Fig 13 of the paper).
//
// A binary is profiled once on a training input; the resulting hints ship
// with the binary and must keep paying off on other inputs. This example
// measures, for several applications:
//
//   - the category agreement between training-input and test-input profiles
//     (the paper reports 81% of branches keep their temperature);
//   - Thermometer's speedup on test inputs using the *training* profile vs
//     a same-input profile, as a fraction of the optimal policy's speedup.
//
// Run with: go run ./examples/profileguided
package main

import (
	"fmt"

	"thermometer"
)

const btbEntries, btbWays = 8192, 4

func main() {
	fmt.Printf("%-12s %-6s %10s %16s %16s\n",
		"app", "input", "agreement", "train-profile", "same-profile")
	for _, name := range []string{"cassandra", "postgresql", "tomcat"} {
		spec, _ := thermometer.App(name)
		spec.Length /= 4

		train := spec.Generate(0)
		trainHints, _, err := thermometer.Profile(train, btbEntries, btbWays)
		if err != nil {
			panic(err)
		}

		for input := 1; input <= 2; input++ {
			test := spec.Generate(input)
			sameHints, _, err := thermometer.Profile(test, btbEntries, btbWays)
			if err != nil {
				panic(err)
			}

			lru := thermometer.Simulate(test, thermometer.DefaultConfig())
			optCfg := thermometer.DefaultConfig()
			optCfg.NewPolicy = thermometer.NewOPTPolicy
			opt := thermometer.Simulate(test, optCfg)
			den := thermometer.Speedup(lru, opt)

			fracOfOPT := func(h *thermometer.HintTable) float64 {
				cfg := thermometer.DefaultConfig()
				cfg.NewPolicy = thermometer.NewThermometerPolicy
				cfg.Hints = h
				r := thermometer.Simulate(test, cfg)
				if den <= 0 {
					return 0
				}
				return thermometer.Speedup(lru, r) / den
			}

			agree := agreement(trainHints, sameHints)
			fmt.Printf("%-12s #%-5d %9.1f%% %15.1f%% %15.1f%%\n",
				name, input, 100*agree,
				100*fracOfOPT(trainHints), 100*fracOfOPT(sameHints))
		}
	}
	fmt.Println("\nbranch temperatures are largely stable across inputs (high agreement),",
		"\nso a stale training profile still delivers a solid fraction of the",
		"\noptimal-policy speedup; re-profiling on the new input recovers more.")
}

// agreement is the fraction of branches present in both profiles that share
// a temperature category.
func agreement(a, b *thermometer.HintTable) float64 {
	common, same := 0, 0
	for pc, ca := range a.Hints {
		if cb, ok := b.Hints[pc]; ok {
			common++
			if ca == cb {
				same++
			}
		}
	}
	if common == 0 {
		return 0
	}
	return float64(same) / float64(common)
}
