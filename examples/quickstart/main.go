// Quickstart: the Thermometer workflow end to end on one application.
//
//  1. Generate a training trace (the stand-in for an Intel PT capture).
//  2. Profile it offline: Belady-optimal BTB simulation → temperature hints.
//  3. Simulate a held-out execution with LRU and with Thermometer.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"thermometer"
)

func main() {
	const btbEntries, btbWays = 8192, 4

	spec, ok := thermometer.App("kafka")
	if !ok {
		panic("unknown app")
	}
	// Keep the example snappy: quarter-length traces.
	spec.Length /= 4

	// Step 1-2: profile the training input (input #0).
	train := spec.Generate(0)
	hints, opt, err := thermometer.Profile(train, btbEntries, btbWays)
	if err != nil {
		panic(err)
	}
	fmt.Printf("profiled %s: %d branches, optimal hit rate %.1f%%\n",
		train.Name, hints.Len(), 100*opt.HitRate())
	shares := hints.CategoryShares()
	fmt.Printf("temperature mix: %.0f%% cold, %.0f%% warm, %.0f%% hot\n",
		100*shares[0], 100*shares[1], 100*shares[2])

	// Step 3: evaluate on a different input with the training profile.
	test := spec.Generate(1)

	base := thermometer.DefaultConfig()
	lru := thermometer.Simulate(test, base)

	cfg := thermometer.DefaultConfig()
	cfg.NewPolicy = thermometer.NewThermometerPolicy
	cfg.Hints = hints
	therm := thermometer.Simulate(test, cfg)

	optCfg := thermometer.DefaultConfig()
	optCfg.NewPolicy = thermometer.NewOPTPolicy
	best := thermometer.Simulate(test, optCfg)

	fmt.Printf("\n%-22s %8s %10s %10s\n", "policy", "IPC", "BTB MPKI", "speedup")
	for _, row := range []struct {
		name string
		r    *thermometer.SimResult
	}{
		{"LRU (baseline)", lru},
		{"Thermometer", therm},
		{"Belady OPT (bound)", best},
	} {
		fmt.Printf("%-22s %8.3f %10.2f %9.2f%%\n",
			row.name, row.r.IPC(), row.r.BTBMPKI(), 100*thermometer.Speedup(lru, row.r))
	}
}
