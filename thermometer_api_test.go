package thermometer_test

import (
	"bytes"
	"testing"

	"thermometer"
)

// TestPublicAPIEndToEnd exercises the full workflow through the public
// facade only, the way a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec, ok := thermometer.App("kafka")
	if !ok {
		t.Fatal("App lookup failed")
	}
	spec.Length /= 8

	train := spec.Generate(0)
	if train.Len() != spec.Length {
		t.Fatalf("trace length %d", train.Len())
	}

	// Trace round trip through the binary format.
	var buf bytes.Buffer
	if err := thermometer.WriteTrace(&buf, train); err != nil {
		t.Fatal(err)
	}
	back, err := thermometer.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != train.Len() {
		t.Fatal("trace round trip lost records")
	}

	// Profile.
	hints, opt, err := thermometer.Profile(train, 8192, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hints.Len() == 0 || opt.HitRate() <= 0 {
		t.Fatalf("profile empty: %d hints, %v hit rate", hints.Len(), opt.HitRate())
	}

	// Hints round trip.
	buf.Reset()
	if err := hints.Write(&buf); err != nil {
		t.Fatal(err)
	}
	hints2, err := thermometer.ReadHints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hints2.Len() != hints.Len() {
		t.Fatal("hints round trip lost entries")
	}

	// Simulate on a held-out input.
	test := spec.Generate(1)
	lru := thermometer.Simulate(test, thermometer.DefaultConfig())
	cfg := thermometer.DefaultConfig()
	cfg.NewPolicy = thermometer.NewThermometerPolicy
	cfg.Hints = hints2
	therm := thermometer.Simulate(test, cfg)
	if therm.BTB.Misses >= lru.BTB.Misses {
		t.Fatalf("hinted policy misses %d >= LRU %d", therm.BTB.Misses, lru.BTB.Misses)
	}
	if thermometer.Speedup(lru, therm) <= 0 {
		t.Fatal("no speedup on held-out input")
	}

	// Coverage statistics are reachable through the facade.
	tp, ok := therm.Policy.(*thermometer.ThermometerPolicy)
	if !ok {
		t.Fatal("policy type lost through facade")
	}
	if tp.Coverage() <= 0 {
		t.Fatal("zero coverage")
	}
}

func TestPublicAPIPolicyConstructors(t *testing.T) {
	names := map[string]func() thermometer.Policy{
		"LRU":         thermometer.NewLRUPolicy,
		"SRRIP":       thermometer.NewSRRIPPolicy,
		"GHRP":        thermometer.NewGHRPPolicy,
		"Hawkeye":     thermometer.NewHawkeyePolicy,
		"OPT":         thermometer.NewOPTPolicy,
		"Thermometer": thermometer.NewThermometerPolicy,
	}
	for want, mk := range names {
		if got := mk().Name(); got != want {
			t.Errorf("constructor for %s returned %s", want, got)
		}
	}
}

func TestPublicAPISuites(t *testing.T) {
	if thermometer.CBP5Count != 663 || thermometer.IPC1Count != 50 {
		t.Fatalf("suite sizes %d/%d", thermometer.CBP5Count, thermometer.IPC1Count)
	}
	tr := thermometer.CBP5Trace(0)
	if tr.Len() == 0 {
		t.Fatal("empty CBP-5 trace")
	}
	tr = thermometer.IPC1Trace(0)
	if tr.Len() == 0 {
		t.Fatal("empty IPC-1 trace")
	}
	if len(thermometer.Apps()) != 13 || len(thermometer.AppNames()) != 13 {
		t.Fatal("app roster wrong")
	}
}

func TestPublicAPIPrefetchers(t *testing.T) {
	spec, _ := thermometer.App("python")
	spec.Length /= 16
	tr := spec.Generate(0)
	meta := thermometer.BuildMeta(tr)

	for _, pf := range []thermometer.Prefetcher{
		thermometer.NewConfluence(meta),
		thermometer.NewShotgun(meta),
		thermometer.TrainTwig(tr, thermometer.TwigConfig{}),
	} {
		cfg := thermometer.DefaultConfig()
		cfg.Prefetcher = pf
		r := thermometer.Simulate(tr, cfg)
		if r.Cycles == 0 {
			t.Errorf("%s: no cycles", pf.Name())
		}
	}
}
