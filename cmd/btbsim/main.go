// Command btbsim runs the timing simulator on a branch trace with a chosen
// BTB replacement policy and prints IPC and frontend statistics. It is the
// single-run counterpart of cmd/paperfigs.
//
// Usage:
//
//	btbsim -trace kafka0.trc                      # LRU baseline
//	btbsim -trace kafka0.trc -policy thermometer -hints kafka.hints
//	btbsim -trace kafka0.trc -policy opt -compare  # also run LRU, report speedup
package main

import (
	"flag"
	"fmt"
	"os"

	"thermometer/internal/bpred"
	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/trace"
)

func policyByName(name string) (func() btb.Policy, bool) {
	switch name {
	case "lru":
		return func() btb.Policy { return policy.NewLRU() }, true
	case "random":
		return func() btb.Policy { return policy.NewRandom() }, true
	case "srrip":
		return func() btb.Policy { return policy.NewSRRIP() }, true
	case "ghrp":
		return func() btb.Policy { return policy.NewGHRP() }, true
	case "hawkeye":
		return func() btb.Policy { return policy.NewHawkeye() }, true
	case "opt":
		return func() btb.Policy { return policy.NewOPT() }, true
	case "thermometer":
		return func() btb.Policy { return policy.NewThermometer() }, true
	case "holistic":
		return func() btb.Policy { return policy.NewHolisticOnly() }, true
	default:
		return nil, false
	}
}

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace file (required)")
		polName   = flag.String("policy", "lru", "replacement policy: lru, random, srrip, ghrp, hawkeye, opt, thermometer, holistic")
		hintsPath = flag.String("hints", "", "Thermometer hint file (from thermprof)")
		entries   = flag.Int("entries", 8192, "BTB entries")
		ways      = flag.Int("ways", 4, "BTB ways")
		ftq       = flag.Int("ftq", 192, "FTQ capacity in instructions")
		predictor = flag.String("predictor", "tage", "direction predictor: tage, perceptron, gshare, bimodal")
		twoLevel  = flag.Bool("twolevel", false, "use a 1K+8K two-level BTB organization")
		compare   = flag.Bool("compare", false, "also run the LRU baseline and report speedup")
	)
	flag.Parse()
	if *tracePath == "" {
		fatalf("need -trace")
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatalf("open: %v", err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatalf("read trace: %v", err)
	}

	newPolicy, ok := policyByName(*polName)
	if !ok {
		fatalf("unknown policy %q", *polName)
	}

	cfg := core.DefaultConfig()
	cfg.BTBEntries = *entries
	cfg.BTBWays = *ways
	cfg.FTQInstrCap = *ftq
	cfg.NewPolicy = newPolicy
	if *twoLevel {
		cfg.TwoLevelBTB = core.DefaultTwoLevelBTB()
	}
	switch *predictor {
	case "tage":
		// default
	case "perceptron":
		cfg.NewPredictor = func() bpred.Predictor { return bpred.NewPerceptron(14, 48) }
	case "gshare":
		cfg.NewPredictor = func() bpred.Predictor { return bpred.NewGshare(16) }
	case "bimodal":
		cfg.NewPredictor = func() bpred.Predictor { return bpred.NewBimodal(16) }
	default:
		fatalf("unknown predictor %q", *predictor)
	}
	if *hintsPath != "" {
		hf, err := os.Open(*hintsPath)
		if err != nil {
			fatalf("open hints: %v", err)
		}
		ht, err := profile.ReadHints(hf)
		hf.Close()
		if err != nil {
			fatalf("read hints: %v", err)
		}
		cfg.Hints = ht
	}

	r := core.Run(tr, cfg)
	fmt.Printf("trace %s, policy %s, BTB %d×%d\n", tr.Name, *polName, *entries, *ways)
	fmt.Printf("  instructions %d  cycles %d  IPC %.3f\n", r.Instructions, r.Cycles, r.IPC())
	fmt.Printf("  BTB: %.2f%% hit rate, %.2f MPKI, %d bypasses\n",
		100*r.BTB.HitRate(), r.BTBMPKI(), r.BTB.Bypasses)
	fmt.Printf("  direction mispredicts %d  RAS mispredicts %d  IBTB mispredicts %d\n",
		r.DirMispredicts, r.RASMispredicts, r.IBTBMispredicts)
	fmt.Printf("  stall cycles: redirect %d  icache %d  data %d\n",
		r.RedirectStall, r.ICacheStall, r.DataStall)
	fmt.Printf("  L2 instruction MPKI %.2f\n", r.L2iMPKI)
	if th, ok := r.Policy.(*policy.Thermometer); ok {
		fmt.Printf("  thermometer coverage %.1f%%, policy bypasses %d\n",
			100*th.Coverage(), th.Bypasses)
	}

	if *compare && *polName != "lru" {
		base := core.Run(tr, func() core.Config {
			c := cfg
			c.NewPolicy = func() btb.Policy { return policy.NewLRU() }
			c.Hints = nil
			return c
		}())
		fmt.Printf("  speedup over LRU: %.2f%% (LRU IPC %.3f)\n",
			100*core.Speedup(base, r), base.IPC())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "btbsim: "+format+"\n", args...)
	os.Exit(1)
}
