// Command btbsim runs the timing simulator on a branch trace with a chosen
// BTB replacement policy and prints IPC and frontend statistics. It is the
// single-run counterpart of cmd/paperfigs.
//
// Usage:
//
//	btbsim -trace kafka0.trc                      # LRU baseline
//	btbsim -trace kafka0.trc -policy thermometer -hints kafka.hints
//	btbsim -trace kafka0.trc -policy opt -compare  # also run LRU, report speedup
//
// Telemetry (see the Observability section of README.md):
//
//	btbsim -trace kafka0.trc -epoch 100000 -metrics out.json   # epoch series
//	btbsim -trace kafka0.trc -events out.trace.json            # Chrome trace
//	btbsim -trace kafka0.trc -epochcsv epochs.csv              # CSV series
//	btbsim -trace kafka0.trc -http :6060                       # live expvar/pprof
//
// Miss attribution and replacement-regret audit (package attribution):
//
//	btbsim -trace kafka0.trc -attrib                           # text report
//	btbsim -trace kafka0.trc -attrib -regret-top 40            # more branches
//	btbsim -trace kafka0.trc -heatmap heat.csv                 # per-set series
//	btbsim -trace kafka0.trc -attrib -http :6060               # live /debug/attrib
//
// Hint-quality audit (package hintqual): score the attached hint table live
// against a Belady shadow — coverage, per-bucket confusion, temperature drift:
//
//	btbsim -trace kafka1.trc -policy thermometer -hints kafka.hints -hintqual
//	btbsim -trace kafka1.trc -policy thermometer -hints kafka.hints -hintqual -http :6060
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"

	"thermometer/internal/attribution"
	"thermometer/internal/bpred"
	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/hintqual"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/telemetry"
	"thermometer/internal/trace"
)

// version identifies the simulator build in run manifests; the VCS revision
// (when built from a checkout) is appended from debug.ReadBuildInfo.
const version = "1.1.0"

func policyNames() []string {
	names := []string{"lru", "random", "srrip", "ghrp", "hawkeye", "opt", "thermometer", "holistic"}
	sort.Strings(names)
	return names
}

func policyByName(name string) (func() btb.Policy, bool) {
	switch name {
	case "lru":
		return func() btb.Policy { return policy.NewLRU() }, true
	case "random":
		return func() btb.Policy { return policy.NewRandom() }, true
	case "srrip":
		return func() btb.Policy { return policy.NewSRRIP() }, true
	case "ghrp":
		return func() btb.Policy { return policy.NewGHRP() }, true
	case "hawkeye":
		return func() btb.Policy { return policy.NewHawkeye() }, true
	case "opt":
		return func() btb.Policy { return policy.NewOPT() }, true
	case "thermometer":
		return func() btb.Policy { return policy.NewThermometer() }, true
	case "holistic":
		return func() btb.Policy { return policy.NewHolisticOnly() }, true
	default:
		return nil, false
	}
}

func buildString() string {
	s := version + " go=" + runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
				s += " rev=" + kv.Value[:12]
			}
		}
	}
	return s
}

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace file (required)")
		polName   = flag.String("policy", "lru", "replacement policy: "+strings.Join(policyNames(), ", "))
		hintsPath = flag.String("hints", "", "Thermometer hint file (from thermprof)")
		entries   = flag.Int("entries", 8192, "BTB entries")
		ways      = flag.Int("ways", 4, "BTB ways")
		ftq       = flag.Int("ftq", 192, "FTQ capacity in instructions")
		predictor = flag.String("predictor", "tage", "direction predictor: tage, perceptron, gshare, bimodal")
		twoLevel  = flag.Bool("twolevel", false, "use a 1K+8K two-level BTB organization")
		compare   = flag.Bool("compare", false, "also run the LRU baseline and report speedup")

		attrib      = flag.Bool("attrib", false, "attach the miss-attribution/regret audit layer and print its report")
		regretTop   = flag.Int("regret-top", 20, "number of most-regretted branches in the attribution report")
		heatmapPath = flag.String("heatmap", "", "write the per-set occupancy/temperature heatmap as CSV (implies attribution)")

		hintQual    = flag.Bool("hintqual", false, "attach the hint-quality audit layer (requires -hints) and print its report")
		hintQualTop = flag.Int("hintqual-top", 20, "number of most-mismatched branches in the hint-quality report")

		metricsPath  = flag.String("metrics", "", "write telemetry report (counters, histograms, epoch series) as JSON")
		eventsPath   = flag.String("events", "", "write BTB/redirect event trace as Chrome trace_event JSON")
		epochCSVPath = flag.String("epochcsv", "", "write the epoch time series as CSV")
		epoch        = flag.Uint64("epoch", 100000, "epoch length in instructions for the telemetry time series")
		eventCap     = flag.Int("eventcap", 1<<20, "event tracer ring-buffer capacity (retains the last N events)")
		httpAddr     = flag.String("http", "", "serve live telemetry, expvar, and pprof on this address (e.g. :6060)")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("btbsim %s\n", buildString())
		return
	}
	if args := flag.Args(); len(args) > 0 {
		fatalf("unexpected arguments %q (all inputs are flags; see -h)", args)
	}
	if *tracePath == "" {
		fatalf("need -trace")
	}
	if *entries <= 0 || *ways <= 0 || *entries < *ways {
		fatalf("invalid BTB geometry: %d entries / %d ways", *entries, *ways)
	}
	if *ftq <= 0 {
		fatalf("invalid FTQ capacity %d", *ftq)
	}
	if *epoch == 0 {
		fatalf("-epoch must be positive")
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatalf("open: %v", err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatalf("read trace %s: %v", *tracePath, err)
	}
	if err := tr.Validate(); err != nil {
		fatalf("invalid trace %s: %v", *tracePath, err)
	}

	newPolicy, ok := policyByName(*polName)
	if !ok {
		fatalf("unknown policy %q (choose one of: %s)", *polName, strings.Join(policyNames(), ", "))
	}

	cfg := core.DefaultConfig()
	cfg.BTBEntries = *entries
	cfg.BTBWays = *ways
	cfg.FTQInstrCap = *ftq
	cfg.NewPolicy = newPolicy
	if *twoLevel {
		cfg.TwoLevelBTB = core.DefaultTwoLevelBTB()
	}
	switch *predictor {
	case "tage":
		// default
	case "perceptron":
		cfg.NewPredictor = func() bpred.Predictor { return bpred.NewPerceptron(14, 48) }
	case "gshare":
		cfg.NewPredictor = func() bpred.Predictor { return bpred.NewGshare(16) }
	case "bimodal":
		cfg.NewPredictor = func() bpred.Predictor { return bpred.NewBimodal(16) }
	default:
		fatalf("unknown predictor %q (choose one of: tage, perceptron, gshare, bimodal)", *predictor)
	}
	if *hintsPath != "" {
		hf, err := os.Open(*hintsPath)
		if err != nil {
			fatalf("open hints: %v", err)
		}
		ht, err := profile.ReadHints(hf)
		hf.Close()
		if err != nil {
			fatalf("read hints %s: %v", *hintsPath, err)
		}
		cfg.Hints = ht
		if *polName != "thermometer" && *polName != "holistic" {
			fmt.Fprintf(os.Stderr, "btbsim: warning: -hints given but policy %q ignores temperature hints\n", *polName)
		}
	}

	// Attach the attribution recorder when requested. The heatmap samples on
	// the telemetry epoch grid, so -heatmap also forces an observer below.
	var att *attribution.Recorder
	if *attrib || *heatmapPath != "" {
		if *twoLevel {
			fatalf("-attrib/-heatmap require a monolithic BTB (drop -twolevel)")
		}
		if *regretTop <= 0 {
			fatalf("-regret-top must be positive")
		}
		att = attribution.New(attribution.Options{})
		cfg.Attribution = att
	}

	// Attach the hint-quality audit when requested. Its drift windows close
	// on the telemetry epoch grid, so -hintqual also forces an observer below.
	var hq *hintqual.Recorder
	if *hintQual {
		if *twoLevel {
			fatalf("-hintqual requires a monolithic BTB (drop -twolevel)")
		}
		if *hintsPath == "" {
			fatalf("-hintqual requires -hints (there is no hint table to audit)")
		}
		if *hintQualTop <= 0 {
			fatalf("-hintqual-top must be positive")
		}
		hq = hintqual.New(hintqual.Options{})
		cfg.HintQual = hq
	}

	// Attach the observer when any telemetry sink is requested.
	var obs *telemetry.Observer
	if *metricsPath != "" || *eventsPath != "" || *epochCSVPath != "" || *httpAddr != "" || *heatmapPath != "" || *hintQual {
		opts := telemetry.Options{EpochInterval: *epoch}
		if *eventsPath != "" || *httpAddr != "" {
			opts.EventCap = *eventCap
		}
		obs = telemetry.New(opts)
		cfg.Observer = obs
	}
	if obs != nil && *httpAddr != "" {
		var mounts []telemetry.Mount
		routes := "/metrics, /debug/vars, /debug/pprof"
		if att != nil {
			mounts = append(mounts, telemetry.Mount{Pattern: "/debug/attrib", Handler: att.Handler()})
			routes += ", /debug/attrib"
		}
		if hq != nil {
			mounts = append(mounts, telemetry.Mount{Pattern: "/debug/hintqual", Handler: hq.Handler()})
			routes += ", /debug/hintqual"
		}
		bound, shutdown, err := obs.Serve(*httpAddr, mounts...)
		if err != nil {
			fatalf("telemetry http: %v", err)
		}
		defer shutdown()
		fmt.Printf("telemetry: serving %s on %s\n", routes, bound)
	}

	// Run manifest: everything needed to reproduce this run from the log.
	manifest := map[string]string{
		"version":   buildString(),
		"trace":     tr.Name,
		"tracefile": *tracePath,
		"records":   fmt.Sprintf("%d", tr.Len()),
		"policy":    *polName,
		"entries":   fmt.Sprintf("%d", *entries),
		"ways":      fmt.Sprintf("%d", *ways),
		"ftq":       fmt.Sprintf("%d", *ftq),
		"predictor": *predictor,
		"twolevel":  fmt.Sprintf("%v", *twoLevel),
		"hints":     *hintsPath,
		"warmup":    fmt.Sprintf("%g", cfg.WarmupFrac),
		"epoch":     fmt.Sprintf("%d", *epoch),
		"attrib":    fmt.Sprintf("%v", att != nil),
		"hintqual":  fmt.Sprintf("%v", hq != nil),
	}
	keys := make([]string, 0, len(manifest))
	for k := range manifest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, manifest[k]))
	}
	fmt.Printf("manifest: %s\n", strings.Join(parts, " "))

	r := core.Run(tr, cfg)
	fmt.Printf("trace %s, policy %s, BTB %d×%d\n", tr.Name, *polName, *entries, *ways)
	fmt.Printf("  instructions %d  cycles %d  IPC %.3f\n", r.Instructions, r.Cycles, r.IPC())
	fmt.Printf("  BTB: %.2f%% hit rate, %.2f MPKI, %d bypasses\n",
		100*r.BTB.HitRate(), r.BTBMPKI(), r.BTB.Bypasses)
	fmt.Printf("  direction mispredicts %d  RAS mispredicts %d  IBTB mispredicts %d\n",
		r.DirMispredicts, r.RASMispredicts, r.IBTBMispredicts)
	fmt.Printf("  stall cycles: redirect %d  icache %d  data %d\n",
		r.RedirectStall, r.ICacheStall, r.DataStall)
	fmt.Printf("  L2 instruction MPKI %.2f\n", r.L2iMPKI)
	if th, ok := r.Policy.(*policy.Thermometer); ok {
		fmt.Printf("  thermometer coverage %.1f%%, policy bypasses %d\n",
			100*th.Coverage(), th.Bypasses)
	}

	if obs != nil {
		writeSinks(obs, manifest, *metricsPath, *eventsPath, *epochCSVPath)
		if ev := obs.Events; ev != nil {
			if d := ev.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr,
					"btbsim: warning: event ring truncated: %d events dropped, last %d retained (raise -eventcap); dropped_events records the count in -metrics output\n",
					d, ev.Cap())
			}
		}
	}
	if att != nil {
		if *attrib {
			fmt.Println()
			if err := att.WriteText(os.Stdout, *regretTop); err != nil {
				fatalf("write attribution report: %v", err)
			}
		}
		if *heatmapPath != "" {
			f, err := os.Create(*heatmapPath)
			if err != nil {
				fatalf("create heatmap CSV: %v", err)
			}
			if err := att.WriteHeatCSV(f); err != nil {
				f.Close()
				fatalf("write heatmap CSV: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("close heatmap CSV: %v", err)
			}
			fmt.Printf("  attribution: wrote heatmap CSV to %s\n", *heatmapPath)
		}
	}
	if hq != nil {
		fmt.Println()
		if err := hq.WriteText(os.Stdout, *hintQualTop); err != nil {
			fatalf("write hint-quality report: %v", err)
		}
	}

	if *compare && *polName != "lru" {
		base := core.Run(tr, func() core.Config {
			c := cfg
			c.NewPolicy = func() btb.Policy { return policy.NewLRU() }
			c.Hints = nil
			c.Observer = nil    // telemetry describes the primary run only
			c.Attribution = nil // likewise the attribution audit
			c.HintQual = nil    // and the hint-quality audit
			return c
		}())
		fmt.Printf("  speedup over LRU: %.2f%% (LRU IPC %.3f)\n",
			100*core.Speedup(base, r), base.IPC())
	}
}

func writeSinks(obs *telemetry.Observer, manifest map[string]string, metricsPath, eventsPath, epochCSVPath string) {
	writeFile := func(path, what string, write func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fatalf("create %s: %v", what, err)
		}
		if err := write(f); err != nil {
			f.Close()
			fatalf("write %s: %v", what, err)
		}
		if err := f.Close(); err != nil {
			fatalf("close %s: %v", what, err)
		}
		fmt.Printf("  telemetry: wrote %s to %s\n", what, path)
	}
	if metricsPath != "" {
		writeFile(metricsPath, "metrics report", func(f *os.File) error {
			return obs.WriteJSON(f, manifest)
		})
	}
	if eventsPath != "" && obs.Events != nil {
		writeFile(eventsPath, "Chrome event trace", func(f *os.File) error {
			return obs.Events.WriteChromeTrace(f)
		})
	}
	if epochCSVPath != "" && obs.Epochs != nil {
		writeFile(epochCSVPath, "epoch CSV", func(f *os.File) error {
			return obs.Epochs.WriteCSV(f)
		})
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "btbsim: "+format+"\n", args...)
	os.Exit(1)
}
