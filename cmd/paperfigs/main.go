// Command paperfigs regenerates the tables and figures of the paper's
// evaluation (Table 1 and Figs 1-9, 11-21), plus repo-specific extras:
// "ablations" (design-choice ablations), "regret" (the attribution layer's
// miss-taxonomy and replacement-regret-vs-OPT audit), and "hintqual" (hint
// accuracy vs speedup across profile freshness grades).
//
// Usage:
//
//	paperfigs -exp fig11              # one experiment at full scale
//	paperfigs -exp all -scale 4       # everything at quarter-length traces
//	paperfigs -exp regret -scale 8    # decision audit vs OPT, short traces
//	paperfigs -exp all -parallel 1    # serial reference run (same output)
//	paperfigs -exp all -timeout 10m   # bound the whole sweep
//	paperfigs -exp all -http :6060    # live expvar/pprof during the sweep
//	paperfigs -exp all -metrics sweep.json
//	paperfigs -exp hintqual -markdown # markdown tables (CI step summaries)
//	paperfigs -list
//
// Output is byte-identical at every -parallel width: experiment loops write
// indexed result slots and aggregate serially, so the pool only changes
// wall-clock time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"thermometer/internal/experiments"
	"thermometer/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig1..fig21, table1, all) or comma list")
		scale    = flag.Int("scale", 1, "divide trace lengths by this factor (1 = paper scale)")
		cbp5     = flag.Int("cbp5", 0, "limit the number of CBP-5 traces (0 = all 663)")
		ipc1     = flag.Int("ipc1", 0, "limit the number of IPC-1 traces (0 = all 50)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool width for per-app/per-trace loops (1 = serial)")
		timeout  = flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
		list     = flag.Bool("list", false, "list experiments and exit")
		metrics  = flag.String("metrics", "", "write sweep telemetry (per-experiment wall time, cache traffic) as JSON")
		httpA    = flag.String("http", "", "serve live telemetry, expvar, and pprof on this address during the sweep")
		markdown = flag.Bool("markdown", false, "render tables as GitHub-flavored markdown (for $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if args := flag.Args(); len(args) > 0 {
		fmt.Fprintf(os.Stderr, "paperfigs: unexpected arguments %q\n", args)
		os.Exit(1)
	}

	ctx := experiments.NewContext(*scale)
	ctx.CBP5Traces = *cbp5
	ctx.IPC1Traces = *ipc1
	ctx.Workers = *parallel
	if *timeout > 0 {
		runCtx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ctx.Ctx = runCtx
	}

	// Sweep telemetry: per-experiment wall time and trace/hint cache
	// traffic land in the registry; -http makes it observable mid-sweep.
	var obs *telemetry.Observer
	if *metrics != "" || *httpA != "" {
		obs = telemetry.New(telemetry.Options{})
		ctx.Telemetry = obs.Metrics
	}
	if obs != nil && *httpA != "" {
		bound, shutdown, err := obs.Serve(*httpA)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: telemetry http: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Printf("telemetry: serving /metrics, /debug/vars, /debug/pprof on %s\n", bound)
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if experiments.Registry[id] == nil {
				fmt.Fprintf(os.Stderr, "paperfigs: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := runExperiment(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s aborted after %v: sweep timeout (-timeout %v) exceeded\n",
				id, time.Since(start).Round(time.Millisecond), *timeout)
			os.Exit(1)
		}
		for _, t := range tables {
			if *markdown {
				t.RenderMarkdown(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
		}
		if *markdown {
			// Keep stdout pure markdown (it is redirected into the CI step
			// summary); the timing chatter goes to stderr instead.
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", id, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}

	if obs != nil && *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: create metrics: %v\n", err)
			os.Exit(1)
		}
		manifest := map[string]string{
			"exp":   *exp,
			"scale": fmt.Sprintf("%d", *scale),
			"cbp5":  fmt.Sprintf("%d", *cbp5),
			"ipc1":  fmt.Sprintf("%d", *ipc1),
		}
		if err := obs.WriteJSON(f, manifest); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "paperfigs: write metrics: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: close metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: wrote sweep metrics to %s\n", *metrics)
	}
}

// runExperiment converts the context-cancellation panic a timed-out sweep
// raises inside the experiment loops into an error; other panics propagate.
func runExperiment(ctx *experiments.Context, id string) (tables []*experiments.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && (errors.Is(e, context.DeadlineExceeded) || errors.Is(e, context.Canceled)) {
				err = e
				return
			}
			panic(r)
		}
	}()
	return ctx.Run(id), nil
}
