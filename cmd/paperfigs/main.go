// Command paperfigs regenerates the tables and figures of the paper's
// evaluation (Table 1 and Figs 1-9, 11-21).
//
// Usage:
//
//	paperfigs -exp fig11              # one experiment at full scale
//	paperfigs -exp all -scale 4       # everything at quarter-length traces
//	paperfigs -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"thermometer/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (fig1..fig21, table1, all) or comma list")
		scale = flag.Int("scale", 1, "divide trace lengths by this factor (1 = paper scale)")
		cbp5  = flag.Int("cbp5", 0, "limit the number of CBP-5 traces (0 = all 663)")
		ipc1  = flag.Int("ipc1", 0, "limit the number of IPC-1 traces (0 = all 50)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ctx := experiments.NewContext(*scale)
	ctx.CBP5Traces = *cbp5
	ctx.IPC1Traces = *ipc1

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if experiments.Registry[id] == nil {
				fmt.Fprintf(os.Stderr, "paperfigs: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		tables := experiments.Registry[id](ctx)
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
