// Command tracegen generates synthetic branch traces: the 13 data center
// application models, or CBP-5/IPC-1-style suite traces, in the binary
// trace format consumed by thermprof and btbsim.
//
// Usage:
//
//	tracegen -app kafka -input 0 -o kafka0.trc
//	tracegen -suite cbp5 -index 42 -o cbp5_042.trc
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

func main() {
	var (
		app    = flag.String("app", "", "application name (see -list)")
		suite  = flag.String("suite", "", "trace suite: cbp5 or ipc1")
		index  = flag.Int("index", 0, "suite trace index")
		input  = flag.Int("input", 0, "application input configuration (0 = training input)")
		length = flag.Int("length", 0, "override trace length in branch records (0 = spec default)")
		out    = flag.String("o", "", "output file (default <name>.trc)")
		list   = flag.Bool("list", false, "list available applications and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("applications:")
		for _, s := range workload.Apps() {
			fmt.Printf("  %-16s %7d static taken branches, %d records\n",
				s.Name, s.HotBranches+s.WarmBranches+s.ColdBranches, s.Length)
		}
		fmt.Printf("suites: cbp5 (%d traces), ipc1 (%d traces)\n",
			workload.CBP5Count, workload.IPC1Count)
		return
	}

	var spec workload.AppSpec
	switch {
	case *app != "":
		s, ok := workload.App(*app)
		if !ok {
			fatalf("unknown application %q (try -list)", *app)
		}
		spec = s
	case *suite == "cbp5":
		spec = workload.CBP5Spec(*index)
	case *suite == "ipc1":
		spec = workload.IPC1Spec(*index)
	default:
		fatalf("need -app or -suite (try -list)")
	}
	if *length > 0 {
		spec.Length = *length
	}

	tr := spec.Generate(*input)
	name := *out
	if name == "" {
		name = tr.Name + ".trc"
	}
	f, err := os.Create(name)
	if err != nil {
		fatalf("create: %v", err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		fatalf("write: %v", err)
	}
	sum := workload.Summarize(tr)
	fmt.Printf("wrote %s: %d records, %d instructions, %d unique taken branches\n",
		name, tr.Len(), sum.Instructions, sum.UniqueTaken)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
