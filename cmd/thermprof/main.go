// Command thermprof is the Thermometer offline profiler (steps 2 and 3 of
// the paper's Fig 10): it simulates Belady's optimal BTB replacement over a
// branch trace, computes each branch's hit-to-taken temperature, and writes
// the hint table a compiler would encode into branch instructions.
//
// Usage:
//
//	thermprof -trace kafka0.trc -o kafka.hints
//	thermprof -trace kafka0.trc -entries 8192 -ways 4 -thresholds 0.5,0.8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"thermometer/internal/profile"
	"thermometer/internal/trace"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "input trace file (required)")
		out        = flag.String("o", "", "output hint file (default <trace>.hints)")
		entries    = flag.Int("entries", 8192, "BTB entries of the target architecture")
		ways       = flag.Int("ways", 4, "BTB associativity of the target architecture")
		thresholds = flag.String("thresholds", "0.5,0.8", "ascending temperature thresholds")
		defaultCat = flag.Int("default", 1, "category for unprofiled branches")
		auto       = flag.Bool("autothreshold", false, "pick thresholds by two-fold cross validation (overrides -thresholds)")
		verbose    = flag.Bool("v", false, "print per-category statistics")
	)
	flag.Parse()
	if *tracePath == "" {
		fatalf("need -trace")
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatalf("open: %v", err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatalf("read trace: %v", err)
	}

	cfg := profile.Config{DefaultCategory: uint8(*defaultCat)}
	if *auto {
		c, err := profile.CrossValidateThresholds(tr.AccessStream(), *entries, *ways, nil)
		if err != nil {
			fatalf("cross validation: %v", err)
		}
		cfg = c
		fmt.Printf("two-fold cross validation selected thresholds %v\n", cfg.Thresholds)
	} else {
		for _, part := range strings.Split(*thresholds, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatalf("bad threshold %q: %v", part, err)
			}
			cfg.Thresholds = append(cfg.Thresholds, v)
		}
	}
	if err := cfg.Validate(); err != nil {
		fatalf("%v", err)
	}

	start := time.Now()
	ht, res, err := profile.ProfileTrace(tr, *entries, *ways, cfg)
	if err != nil {
		fatalf("profile: %v", err)
	}
	elapsed := time.Since(start)

	name := *out
	if name == "" {
		name = strings.TrimSuffix(*tracePath, ".trc") + ".hints"
	}
	of, err := os.Create(name)
	if err != nil {
		fatalf("create: %v", err)
	}
	defer of.Close()
	if err := ht.Write(of); err != nil {
		fatalf("write hints: %v", err)
	}

	fmt.Printf("profiled %s: %d accesses, optimal hit rate %.2f%%, %d branches, %v\n",
		tr.Name, res.Accesses, 100*res.HitRate(), ht.Len(), elapsed.Round(time.Millisecond))
	if *verbose {
		shares := ht.CategoryShares()
		for i, s := range shares {
			fmt.Printf("  category %d: %.1f%% of branches\n", i, 100*s)
		}
	}
	fmt.Printf("wrote %s (%d-category hints, %d bits per branch)\n",
		name, cfg.Categories(), cfg.HintBits())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thermprof: "+format+"\n", args...)
	os.Exit(1)
}
