// Command benchsnap measures the runner acceptance grid (4 replacement
// policies × 8 data center workloads) and emits a canonical perf snapshot
// (BENCH_<n>.json), or compares two snapshots and gates on throughput
// regressions.
//
// Measure and write a snapshot:
//
//	benchsnap -o BENCH_1.json
//
// Measure and gate against the checked-in baseline (CI mode):
//
//	benchsnap -compare BENCH_0.json -o bench-new.json
//
// Gate against the newest BENCH_<n>.json in the current directory (numeric
// order, so BENCH_10 beats BENCH_2; see perfsnap.NewestBaseline):
//
//	benchsnap -compare latest -o bench-new.json
//
// Diff two existing snapshots without measuring:
//
//	benchsnap -compare BENCH_0.json -with bench-new.json
//
// Gate on an absolute machine-normalized throughput floor (blocks per
// calibration unit; see perfsnap.BlocksPerCalib) instead of, or in addition
// to, the relative comparison:
//
//	benchsnap -compare BENCH_1.json -floor 2500000
//
// Append the comparison as a markdown table to a CI step summary:
//
//	benchsnap -compare BENCH_0.json -md "$GITHUB_STEP_SUMMARY"
//
// Every cell runs serially (Workers=1, no cache) so the numbers measure the
// simulator, not the pool. Cross-machine comparisons are made on
// machine-normalized scores: each cell's median ns divided by the wall time
// of a fixed sha256 calibration loop measured in the same session.
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"thermometer/internal/perfsnap"
	"thermometer/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("o", "", "write the measured snapshot to this file (default: stdout when not comparing)")
		compare   = fs.String("compare", "", `baseline snapshot to gate against ("latest": the newest BENCH_<n>.json in the current directory)`)
		with      = fs.String("with", "", "with -compare: diff this snapshot file instead of measuring")
		samples   = fs.Int("samples", 5, "timed iterations per grid cell")
		warmup    = fs.Int("warmup", 1, "discarded warm-up iterations per grid cell")
		scale     = fs.Int("scale", 16, "trace scale divisor for the grid")
		threshold = fs.Float64("threshold", 0.10, "relative slowdown that counts as a regression")
		floor     = fs.Float64("floor", 0, "minimum grid-median normalized throughput (blocks per calibration unit); 0 disables the gate")
		md        = fs.String("md", "", "with -compare: append the comparison as a markdown table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *with != "" && *compare == "" {
		return fmt.Errorf("-with requires -compare")
	}
	if *md != "" && *compare == "" {
		return fmt.Errorf("-md requires -compare")
	}
	if *samples < 1 {
		return fmt.Errorf("-samples must be >= 1")
	}
	if *compare == "latest" {
		// The selection rule (numeric BENCH_<n> order) lives in perfsnap with
		// its own tests; CI invokes this instead of shelling out to sort -V.
		newest, err := perfsnap.NewestBaseline(".")
		if err != nil {
			return err
		}
		fmt.Fprintln(stderr, "comparing against newest baseline:", newest)
		*compare = newest
	}

	var snap *perfsnap.Snapshot
	if *with != "" {
		b, err := os.ReadFile(*with)
		if err != nil {
			return err
		}
		if snap, err = perfsnap.Parse(b); err != nil {
			return fmt.Errorf("%s: %w", *with, err)
		}
	} else {
		var err error
		if snap, err = measure(*scale, *samples, *warmup, stderr); err != nil {
			return err
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := snap.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "wrote", *out)
	} else if *compare == "" {
		if err := snap.Write(stdout); err != nil {
			return err
		}
	}

	if *floor > 0 {
		med := snap.MedianBlocksPerCalib()
		fmt.Fprintf(stdout, "grid median throughput: %.0f blocks/calib (floor %.0f)\n", med, *floor)
		if med < *floor {
			return fmt.Errorf("throughput below absolute floor: %.0f < %.0f blocks/calib", med, *floor)
		}
	}

	if *compare == "" {
		return nil
	}
	b, err := os.ReadFile(*compare)
	if err != nil {
		return err
	}
	base, err := perfsnap.Parse(b)
	if err != nil {
		return fmt.Errorf("%s: %w", *compare, err)
	}
	rep := perfsnap.Compare(base, snap, *threshold)
	if err := rep.WriteText(stdout); err != nil {
		return err
	}
	if *md != "" {
		// Append, not truncate: $GITHUB_STEP_SUMMARY accumulates sections
		// from every step of the job.
		f, err := os.OpenFile(*md, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if err := rep.WriteMarkdown(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if rep.Failed() {
		return fmt.Errorf("throughput regression vs %s (%d regressed, %d baseline cell(s) missing)",
			*compare, rep.Regressions, len(rep.OnlyOld))
	}
	return nil
}

// gridApps and gridPolicies mirror the runner acceptance benchmarks
// (internal/runner/bench_test.go).
var (
	gridApps     = []string{"cassandra", "clang", "drupal", "kafka", "mysql", "python", "tomcat", "wordpress"}
	gridPolicies = []string{"lru", "srrip", "ghrp", "hawkeye"}
)

func measure(scale, samples, warmup int, progress io.Writer) (*perfsnap.Snapshot, error) {
	bases := make([]runner.Spec, len(gridApps))
	for i, app := range gridApps {
		bases[i] = runner.Spec{App: app, Scale: scale}
	}
	specs, err := runner.Grid(bases, gridPolicies)
	if err != nil {
		return nil, err
	}

	snap := &perfsnap.Snapshot{
		Schema:  perfsnap.SchemaVersion,
		Grid:    fmt.Sprintf("%dx%d", len(gridPolicies), len(gridApps)),
		Scale:   scale,
		Samples: samples,
		Machine: perfsnap.Machine{
			GoOS:       runtime.GOOS,
			GoArch:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	calib := make([]float64, samples+warmup)
	for i := range calib {
		calib[i] = float64(calibrate())
	}
	snap.CalibNs = perfsnap.Median(calib[warmup:])

	ctx := context.Background()
	for _, spec := range specs {
		cell := perfsnap.Cell{Policy: spec.Policy, App: spec.App}
		for i := 0; i < warmup+samples; i++ {
			// A fresh result-cache-less engine per iteration: every run
			// simulates. (Workload traces are content-addressed and shared
			// at package level inside the runner, so iterations measure the
			// simulator, not workload synthesis.)
			e := &runner.Engine{Workers: 1}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			r := e.Run(ctx, spec)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			if r.Err != "" {
				return nil, fmt.Errorf("%s/%s: %s", spec.Policy, spec.App, r.Err)
			}
			if i < warmup {
				continue
			}
			cell.SamplesNs = append(cell.SamplesNs, float64(elapsed.Nanoseconds()))
			cell.AllocsPerOp += after.Mallocs - before.Mallocs
			cell.Blocks = r.Outcome.Accesses
		}
		cell.AllocsPerOp /= uint64(samples)
		snap.Cells = append(snap.Cells, cell)
		fmt.Fprintf(progress, "  %-10s %-10s median %s\n",
			spec.Policy, spec.App, time.Duration(int64(perfsnap.Median(cell.SamplesNs))))
	}
	snap.Finalize()
	return snap, nil
}

// calibrate times one pass of a fixed CPU-bound reference loop (sha256 over
// a 64 KiB buffer, chained 256 times). Its wall time scales with the
// machine's single-core speed the same way the simulator's does, so cell
// times divided by it are comparable across machines.
func calibrate() int64 {
	var buf [64 << 10]byte
	start := time.Now()
	sum := sha256.Sum256(buf[:])
	for i := 0; i < 256; i++ {
		copy(buf[:], sum[:])
		sum = sha256.Sum256(buf[:])
	}
	elapsed := time.Since(start)
	if sum[0] == 0 && sum[1] == 0 && sum[2] == 0 {
		// Consume the result so the loop cannot be optimized away.
		fmt.Fprint(io.Discard, sum)
	}
	return elapsed.Nanoseconds()
}
