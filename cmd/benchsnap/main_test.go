package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermometer/internal/perfsnap"
)

func writeSnap(t *testing.T, dir, name string, calib float64, samples []float64) string {
	t.Helper()
	s := &perfsnap.Snapshot{
		Schema: perfsnap.SchemaVersion, Grid: "4x8", Scale: 16, Samples: len(samples),
		CalibNs: calib,
		Cells: []perfsnap.Cell{
			{Policy: "lru", App: "kafka", Blocks: 1000, SamplesNs: samples, AllocsPerOp: 9},
		},
	}
	s.Finalize()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareRegressionFails pins the acceptance criterion: benchsnap
// -compare exits non-zero (run returns an error) on a synthetic >10%
// throughput regression.
func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "BENCH_0.json", 100, []float64{1.00e6, 1.01e6, 0.99e6, 1.02e6, 0.98e6})
	slow := writeSnap(t, dir, "new.json", 100, []float64{1.20e6, 1.21e6, 1.19e6, 1.22e6, 1.18e6})

	var out, errBuf bytes.Buffer
	err := run([]string{"-compare", base, "-with", slow}, &out, &errBuf)
	if err == nil {
		t.Fatalf("20%% regression passed the gate; report:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate error: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("report does not flag the cell:\n%s", out.String())
	}
}

func TestCompareCleanPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "BENCH_0.json", 100, []float64{1.00e6, 1.01e6, 0.99e6, 1.02e6, 0.98e6})
	// Same code on a machine twice as slow: calibration doubles with it.
	same := writeSnap(t, dir, "new.json", 200, []float64{2.00e6, 2.02e6, 1.98e6, 2.04e6, 1.96e6})

	var out, errBuf bytes.Buffer
	if err := run([]string{"-compare", base, "-with", same}, &out, &errBuf); err != nil {
		t.Fatalf("clean comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Fatalf("report:\n%s", out.String())
	}
}

// TestCompareLatest pins the CI entry point: -compare latest resolves to the
// newest BENCH_<n>.json (numeric order) in the current directory.
func TestCompareLatest(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_2.json", 100, []float64{1.00e6, 1.01e6, 0.99e6, 1.02e6, 0.98e6})
	// BENCH_10 is the newest despite sorting lexically before BENCH_2; it
	// holds a 2x-regressed baseline, so the gate only fails if "latest"
	// really picks it. The -with snapshot matches BENCH_2 exactly.
	writeSnap(t, dir, "BENCH_10.json", 100, []float64{0.50e6, 0.51e6, 0.49e6, 0.52e6, 0.48e6})
	fresh := writeSnap(t, dir, "new.json", 100, []float64{1.00e6, 1.01e6, 0.99e6, 1.02e6, 0.98e6})

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	var out, errBuf bytes.Buffer
	if err := run([]string{"-compare", "latest", "-with", fresh}, &out, &errBuf); err == nil {
		t.Fatalf("gate passed against BENCH_10; 'latest' picked the wrong baseline\n%s", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "BENCH_10.json") {
		t.Fatalf("latest resolved to the wrong file:\n%s", errBuf.String())
	}

	// An empty directory must fail loudly, not skip the gate.
	emptyDir := t.TempDir()
	if err := os.Chdir(emptyDir); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", "latest", "-with", fresh}, &out, &errBuf); err == nil {
		t.Fatal("-compare latest with no baseline accepted")
	}
}

func TestBadFlagCombos(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-with", "x.json"}, &out, &errBuf); err == nil {
		t.Fatal("-with without -compare accepted")
	}
	if err := run([]string{"-compare", "/nonexistent/base.json", "-with", "/nonexistent/new.json"}, &out, &errBuf); err == nil {
		t.Fatal("missing snapshot files accepted")
	}
	if err := run([]string{"-samples", "0"}, &out, &errBuf); err == nil {
		t.Fatal("-samples 0 accepted")
	}
}

// TestMeasureSmoke measures a tiny grid end to end and checks the snapshot
// is well-formed. Scale 256 keeps each cell a few milliseconds.
func TestMeasureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measures real sweeps")
	}
	old := gridApps
	gridApps = []string{"kafka"}
	defer func() { gridApps = old }()

	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-o", path, "-samples", "2", "-warmup", "1", "-scale", "256"}, &out, &errBuf); err != nil {
		t.Fatalf("measure: %v\n%s", err, errBuf.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := perfsnap.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != len(gridPolicies) {
		t.Fatalf("cells = %d, want %d", len(s.Cells), len(gridPolicies))
	}
	for _, c := range s.Cells {
		if c.Blocks == 0 || c.NsPerOp <= 0 || c.Score <= 0 || len(c.SamplesNs) != 2 {
			t.Fatalf("malformed cell: %+v", c)
		}
	}
	// A self-comparison never regresses.
	if err := run([]string{"-compare", path, "-with", path}, &out, &errBuf); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}
