// Command thermod is the simulation daemon: it serves the sweep-job API
// from internal/server on top of a parallel runner engine with a
// content-addressed result cache, alongside the telemetry debug surface.
//
//	POST /v1/jobs              submit a sweep (JSON array of specs)
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status + results
//	GET  /v1/jobs/{id}/events  live job progress (Server-Sent Events)
//	GET  /metrics              telemetry report (runner + serving metrics)
//	GET  /debug/sweep          live sweep dashboard (per-job progress grid)
//	GET  /debug/spans          lifecycle spans as Chrome trace JSON
//	GET  /debug/pprof/         runtime profiles
//
// SIGINT/SIGTERM starts a graceful drain: new submissions get 503, queued
// and running sweeps are given -drain to finish, then pending jobs are
// canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/server"
	"thermometer/internal/telemetry"
	"thermometer/internal/telemetry/span"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		workers   = flag.Int("workers", 0, "engine pool width per sweep (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 16, "max sweeps queued behind the running one")
		maxSpecs  = flag.Int("maxspecs", 4096, "max specs in one submission")
		cacheSize = flag.Int("cachesize", 4096, "in-memory result-cache capacity")
		cacheDir  = flag.String("cachedir", "", "on-disk result-cache directory (empty = memory only)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-drain timeout on SIGINT/SIGTERM")
		spancap   = flag.Int("spancap", 16384, "lifecycle span ring capacity (0 = tracing off)")
	)
	flag.Parse()

	if err := run(*addr, *workers, *queue, *maxSpecs, *cacheSize, *cacheDir, *drain, *spancap); err != nil {
		fmt.Fprintln(os.Stderr, "thermod:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, maxSpecs, cacheSize int, cacheDir string, drain time.Duration, spancap int) error {
	cache, err := runner.NewCache(cacheSize, cacheDir)
	if err != nil {
		return fmt.Errorf("result cache: %w", err)
	}
	obs := telemetry.New(telemetry.Options{})
	// The span tracer is shared by the server (accept/queue/sweep spans) and
	// the engine (per-job stage spans). A nil tracer is inert, so -spancap 0
	// turns the whole surface off with no hot-path cost.
	var spans *span.Tracer
	if spancap > 0 {
		spans = span.New(func() int64 { return time.Now().UnixNano() }, spancap)
	}
	engine := &runner.Engine{
		Workers:  workers,
		Cache:    cache,
		Metrics:  obs.Metrics,
		NowNanos: func() int64 { return time.Now().UnixNano() },
		Spans:    spans,
	}
	engine.PublishMetrics()
	srv := server.New(engine, server.Options{
		QueueDepth: queue,
		MaxSpecs:   maxSpecs,
		Metrics:    obs.Metrics,
		Spans:      spans,
	})

	// One mux serves the job API and the telemetry/debug surface.
	handler := obs.Handler(
		telemetry.Mount{Pattern: "/v1/jobs", Handler: srv},
		telemetry.Mount{Pattern: "/debug/sweep", Handler: srv.Dashboard()},
		telemetry.Mount{Pattern: "/debug/spans", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = spans.WriteChromeTrace(w)
		})},
	)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Printf("thermod listening on %s (workers=%d queue=%d cache=%d dir=%q)",
		ln.Addr(), workers, queue, cacheSize, cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	log.Printf("thermod draining (timeout %s)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("thermod drain incomplete: %v (pending jobs canceled)", err)
	}
	return httpSrv.Shutdown(context.Background())
}
