// Command thermod is the simulation daemon: it serves the sweep-job API
// from internal/server on top of a parallel runner engine with a
// content-addressed result cache, alongside the telemetry debug surface.
//
//	POST /v1/jobs              submit a sweep (JSON array of specs)
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status + results
//	GET  /v1/jobs/{id}/events  live job progress (Server-Sent Events)
//	GET  /healthz              liveness probe (200 while the process serves)
//	GET  /readyz               readiness probe (503 from the moment a drain starts)
//	GET  /metrics              telemetry report (runner + serving metrics)
//	GET  /debug/sweep          live sweep dashboard (per-job progress grid)
//	GET  /debug/spans          lifecycle spans as Chrome trace JSON
//	GET  /debug/pprof/         runtime profiles
//
// Fleet modes layer the distributed sweep fabric (internal/fabric) on the
// same serving stack:
//
//	-coordinator           jobs are partitioned into leases and executed by
//	                       remote workers; adds the /fabric/v1/* fleet API
//	                       and the fleet panel on /debug/sweep. The jobs API
//	                       and event streams are unchanged.
//	-worker <url>          no jobs API; registers with the coordinator at
//	                       <url>, heartbeats, executes leased jobs on a
//	                       local engine, and serves /healthz, /readyz (ready
//	                       once registered), and /metrics.
//
// SIGINT/SIGTERM starts a graceful drain: /readyz flips to 503 immediately,
// new submissions get ErrDraining, queued and running sweeps are given
// -drain to finish, then pending jobs are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thermometer/internal/fabric"
	"thermometer/internal/runner"
	"thermometer/internal/server"
	"thermometer/internal/telemetry"
	"thermometer/internal/telemetry/span"
)

// config collects every flag so the three modes share one validated bundle.
type config struct {
	addr      string
	workers   int
	queue     int
	maxSpecs  int
	cacheSize int
	cacheDir  string
	drain     time.Duration
	spancap   int

	coordinator bool
	workerURL   string
	name        string
	leaseTTL    time.Duration
	heartbeat   time.Duration
	leaseSize   int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "localhost:8080", "listen address")
	flag.IntVar(&cfg.workers, "workers", 0, "engine pool width per sweep (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queue, "queue", 16, "max sweeps queued behind the running one")
	flag.IntVar(&cfg.maxSpecs, "maxspecs", 4096, "max specs in one submission")
	flag.IntVar(&cfg.cacheSize, "cachesize", 4096, "in-memory result-cache capacity")
	flag.StringVar(&cfg.cacheDir, "cachedir", "", "on-disk result-cache directory (empty = memory only)")
	flag.DurationVar(&cfg.drain, "drain", 30*time.Second, "graceful-drain timeout on SIGINT/SIGTERM")
	flag.IntVar(&cfg.spancap, "spancap", 16384, "lifecycle span ring capacity (0 = tracing off)")
	flag.BoolVar(&cfg.coordinator, "coordinator", false, "run as fleet coordinator: lease jobs to remote workers instead of simulating locally")
	flag.StringVar(&cfg.workerURL, "worker", "", "run as fleet worker for the coordinator at this base URL (e.g. http://host:8080)")
	flag.StringVar(&cfg.name, "name", "", "worker label shown on the coordinator's fleet panel")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", fabric.DefaultLeaseTTL, "coordinator: heartbeat age after which a worker's jobs requeue")
	flag.DurationVar(&cfg.heartbeat, "heartbeat", fabric.DefaultHeartbeat, "coordinator: heartbeat/poll interval advertised to workers")
	flag.IntVar(&cfg.leaseSize, "lease-size", fabric.DefaultLeaseSize, "coordinator: max jobs per lease grant")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "thermod:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.coordinator && cfg.workerURL != "" {
		return errors.New("-coordinator and -worker are mutually exclusive")
	}
	if cfg.workerURL != "" {
		return runWorker(cfg)
	}
	return runServer(cfg)
}

// runServer is the single-node and coordinator path: the full jobs API and
// debug surface, with the sweep runner chosen by mode.
func runServer(cfg config) error {
	cache, err := runner.NewCache(cfg.cacheSize, cfg.cacheDir)
	if err != nil {
		return fmt.Errorf("result cache: %w", err)
	}
	obs := telemetry.New(telemetry.Options{})
	// The span tracer is shared by the server (accept/queue/sweep spans) and
	// the sweep runner (per-job or per-lease spans). A nil tracer is inert,
	// so -spancap 0 turns the whole surface off with no hot-path cost.
	var spans *span.Tracer
	if cfg.spancap > 0 {
		spans = span.New(func() int64 { return time.Now().UnixNano() }, cfg.spancap)
	}

	var sweeper server.SweepRunner
	var coord *fabric.Coordinator
	if cfg.coordinator {
		coord, err = fabric.NewCoordinator(fabric.Options{
			NowNanos:  func() int64 { return time.Now().UnixNano() },
			LeaseTTL:  cfg.leaseTTL,
			Heartbeat: cfg.heartbeat,
			LeaseSize: cfg.leaseSize,
			Cache:     cache,
			Metrics:   obs.Metrics,
			Spans:     spans,
		})
		if err != nil {
			return fmt.Errorf("coordinator: %w", err)
		}
		sweeper = coord
	} else {
		engine := &runner.Engine{
			Workers:  cfg.workers,
			Cache:    cache,
			Metrics:  obs.Metrics,
			NowNanos: func() int64 { return time.Now().UnixNano() },
			Spans:    spans,
		}
		engine.PublishMetrics()
		sweeper = engine
	}

	srv := server.New(sweeper, server.Options{
		QueueDepth: cfg.queue,
		MaxSpecs:   cfg.maxSpecs,
		Metrics:    obs.Metrics,
		Spans:      spans,
	})

	// One mux serves the job API and the telemetry/debug surface.
	mounts := []telemetry.Mount{
		{Pattern: "/v1/jobs", Handler: srv},
		{Pattern: "/healthz", Handler: srv.Healthz()},
		{Pattern: "/readyz", Handler: srv.Readyz()},
		{Pattern: "/debug/sweep", Handler: srv.Dashboard()},
		{Pattern: "/debug/spans", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = spans.WriteChromeTrace(w)
		})},
	}
	if coord != nil {
		mounts = append(mounts, telemetry.Mount{Pattern: "/fabric/v1/", Handler: coord})
	}
	handler := obs.Handler(mounts...)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	mode := "single-node"
	if cfg.coordinator {
		mode = "coordinator"
	}
	log.Printf("thermod listening on %s (mode=%s workers=%d queue=%d cache=%d dir=%q)",
		ln.Addr(), mode, cfg.workers, cfg.queue, cfg.cacheSize, cfg.cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	log.Printf("thermod draining (timeout %s)", cfg.drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("thermod drain incomplete: %v (pending jobs canceled)", err)
	}
	return httpSrv.Shutdown(context.Background())
}

// runWorker is the fleet-worker path: a local engine driven by leases from
// the coordinator, with only the probe and metrics surface exposed.
func runWorker(cfg config) error {
	cache, err := runner.NewCache(cfg.cacheSize, cfg.cacheDir)
	if err != nil {
		return fmt.Errorf("result cache: %w", err)
	}
	obs := telemetry.New(telemetry.Options{})
	engine := &runner.Engine{
		Workers:  cfg.workers,
		Cache:    cache,
		Metrics:  obs.Metrics,
		NowNanos: func() int64 { return time.Now().UnixNano() },
	}
	engine.PublishMetrics()
	wk := &fabric.Worker{
		Coordinator: cfg.workerURL,
		Engine:      engine,
		Name:        cfg.name,
		Metrics:     obs.Metrics,
	}

	handler := obs.Handler(
		telemetry.Mount{Pattern: "/healthz", Handler: server.ReadyFunc(func() bool { return true }, "")},
		telemetry.Mount{Pattern: "/readyz", Handler: server.ReadyFunc(wk.Ready, "not registered with coordinator")},
	)
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Printf("thermod listening on %s (mode=worker coordinator=%s workers=%d cache=%d dir=%q)",
		ln.Addr(), cfg.workerURL, cfg.workers, cfg.cacheSize, cfg.cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	workerErr := make(chan error, 1)
	go func() { workerErr <- wk.Run(ctx) }()

	select {
	case err := <-serveErr:
		stop()
		<-workerErr // Run returns once ctx is canceled by stop
		return err
	case err := <-workerErr:
		if err != nil && !errors.Is(err, context.Canceled) {
			_ = httpSrv.Shutdown(context.Background())
			return err
		}
	case <-ctx.Done():
		// Abandon the current lease (the coordinator's expiry requeues it)
		// and stop advertising readiness before the listener closes.
		<-workerErr
	}
	log.Printf("thermod worker stopping")
	return httpSrv.Shutdown(context.Background())
}
