// Command thermod is the simulation daemon: it serves the sweep-job API
// from internal/server on top of a parallel runner engine with a
// content-addressed result cache, alongside the telemetry debug surface.
//
//	POST /v1/jobs       submit a sweep (JSON array of specs)
//	GET  /v1/jobs       list jobs
//	GET  /v1/jobs/{id}  job status + results
//	GET  /metrics       telemetry report (runner + serving metrics)
//	GET  /debug/pprof/  runtime profiles
//
// SIGINT/SIGTERM starts a graceful drain: new submissions get 503, queued
// and running sweeps are given -drain to finish, then pending jobs are
// canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/server"
	"thermometer/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		workers   = flag.Int("workers", 0, "engine pool width per sweep (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 16, "max sweeps queued behind the running one")
		maxSpecs  = flag.Int("maxspecs", 4096, "max specs in one submission")
		cacheSize = flag.Int("cachesize", 4096, "in-memory result-cache capacity")
		cacheDir  = flag.String("cachedir", "", "on-disk result-cache directory (empty = memory only)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-drain timeout on SIGINT/SIGTERM")
	)
	flag.Parse()

	if err := run(*addr, *workers, *queue, *maxSpecs, *cacheSize, *cacheDir, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "thermod:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, maxSpecs, cacheSize int, cacheDir string, drain time.Duration) error {
	cache, err := runner.NewCache(cacheSize, cacheDir)
	if err != nil {
		return fmt.Errorf("result cache: %w", err)
	}
	obs := telemetry.New(telemetry.Options{})
	engine := &runner.Engine{
		Workers:  workers,
		Cache:    cache,
		Metrics:  obs.Metrics,
		NowNanos: func() int64 { return time.Now().UnixNano() },
	}
	srv := server.New(engine, server.Options{
		QueueDepth: queue,
		MaxSpecs:   maxSpecs,
		Metrics:    obs.Metrics,
	})

	// One mux serves the job API and the telemetry/debug surface.
	handler := obs.Handler(telemetry.Mount{Pattern: "/v1/jobs", Handler: srv})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Printf("thermod listening on %s (workers=%d queue=%d cache=%d dir=%q)",
		ln.Addr(), workers, queue, cacheSize, cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	log.Printf("thermod draining (timeout %s)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("thermod drain incomplete: %v (pending jobs canceled)", err)
	}
	return httpSrv.Shutdown(context.Background())
}
