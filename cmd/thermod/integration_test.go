package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"thermometer/internal/runner"
)

// The multi-process golden test: the same 4-policy × 8-workload grid must
// produce byte-identical JSON and CSV output from
//
//   - a single-node in-process engine,
//   - a coordinator with 1 worker process,
//   - a coordinator with 3 worker processes, and
//   - a coordinator with 3 worker processes, one SIGKILLed mid-sweep
//     (its leases expire and requeue onto the survivors).
//
// This is the fabric's determinism contract ("any fleet size, any worker
// death schedule") pinned end to end through real thermod binaries.

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// thermodBin builds the thermod binary once per test run.
func thermodBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "thermod-test-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "thermod")
		cmd := exec.Command("go", "build", "-o", buildBin, ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// proc is one spawned thermod process.
type proc struct {
	cmd  *exec.Cmd
	addr string
	url  string
}

var listenRe = regexp.MustCompile(`listening on ([^ ]+) `)

// startThermod launches the binary with -addr 127.0.0.1:0 plus args and
// waits for its "listening on" line to learn the bound address.
func startThermod(t *testing.T, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(thermodBin(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		_ = cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(20 * time.Second):
		t.Fatalf("thermod %v never reported its listen address", args)
	}
	p.url = "http://" + p.addr
	return p
}

// goldenSpecs is the 4-policy × 8-workload grid in replay mode at a scale
// that keeps each cell a few milliseconds.
func goldenSpecs(t *testing.T) []runner.Spec {
	t.Helper()
	apps := []string{"cassandra", "clang", "drupal", "kafka", "mysql", "python", "tomcat", "wordpress"}
	bases := make([]runner.Spec, len(apps))
	for i, app := range apps {
		bases[i] = runner.Spec{App: app, Mode: runner.ModeReplay, Scale: 64}
	}
	specs, err := runner.Grid(bases, []string{"lru", "srrip", "ghrp", "hawkeye"})
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// goldenBytes renders results the way cmd/btbsim does: the sink JSON and CSV
// encodings whose byte-identity the engine pins across pool widths.
func goldenBytes(t *testing.T, results []runner.Result) (string, string) {
	t.Helper()
	var j, c bytes.Buffer
	if err := runner.WriteJSON(&j, results); err != nil {
		t.Fatal(err)
	}
	if err := runner.WriteCSV(&c, results); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

type jobDoc struct {
	ID      string          `json:"id"`
	State   string          `json:"state"`
	Results []runner.Result `json:"results"`
}

// submitAndWait posts the specs to a coordinator and polls the job until it
// reaches a terminal state, returning its results.
func submitAndWait(t *testing.T, coordURL string, specs []runner.Spec, during func(jobID string)) []runner.Result {
	t.Helper()
	body, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coordURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil || job.ID == "" {
		t.Fatalf("submit: status %s, decode err %v, job %+v", resp.Status, err, job)
	}
	if during != nil {
		during(job.ID)
	}

	deadline := time.Now().Add(3 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", job.ID)
		}
		res, err := http.Get(coordURL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur jobDoc
		err = json.NewDecoder(res.Body).Decode(&cur)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == "done" {
			return cur.Results
		}
		if cur.State == "canceled" {
			t.Fatalf("job %s canceled", job.ID)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fabricState mirrors the fields of GET /fabric/v1/state the test reads.
type fabricState struct {
	Filled  int `json:"filled"`
	Total   int `json:"total"`
	Workers []struct {
		Name   string `json:"name"`
		Active int    `json:"active"`
	} `json:"workers"`
}

func getFabricState(t *testing.T, coordURL string) fabricState {
	t.Helper()
	res, err := http.Get(coordURL + "/fabric/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st fabricState
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// startFleet launches a coordinator and n named workers against it, and
// waits until every worker is registered and ready.
func startFleet(t *testing.T, n int) (*proc, []*proc) {
	t.Helper()
	coord := startThermod(t,
		"-coordinator", "-heartbeat", "25ms", "-lease-ttl", "250ms", "-lease-size", "2")
	workers := make([]*proc, n)
	for i := range workers {
		workers[i] = startThermod(t,
			"-worker", coord.url, "-name", fmt.Sprintf("w%d", i), "-workers", "1")
	}
	deadline := time.Now().Add(20 * time.Second)
	for _, w := range workers {
		for {
			if time.Now().After(deadline) {
				t.Fatal("worker never became ready")
			}
			res, err := http.Get(w.url + "/readyz")
			if err == nil {
				ok := res.StatusCode == http.StatusOK
				res.Body.Close()
				if ok {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return coord, workers
}

func TestFleetGoldenByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns thermod processes and runs real sweeps")
	}
	specs := goldenSpecs(t)
	single := (&runner.Engine{}).Sweep(context.Background(), specs)
	wantJSON, wantCSV := goldenBytes(t, single)

	run := func(t *testing.T, n int, during func(coordURL string, workers []*proc) func(string)) {
		coord, workers := startFleet(t, n)
		var hook func(string)
		if during != nil {
			hook = during(coord.url, workers)
		}
		results := submitAndWait(t, coord.url, specs, hook)
		gotJSON, gotCSV := goldenBytes(t, results)
		if gotJSON != wantJSON {
			t.Fatalf("fleet JSON diverges from single-node (%d workers):\n%s",
				n, firstDiff(wantJSON, gotJSON))
		}
		if gotCSV != wantCSV {
			t.Fatalf("fleet CSV diverges from single-node (%d workers):\n%s",
				n, firstDiff(wantCSV, gotCSV))
		}
	}

	t.Run("one_worker", func(t *testing.T) { run(t, 1, nil) })
	t.Run("three_workers", func(t *testing.T) { run(t, 3, nil) })
	t.Run("three_workers_one_killed", func(t *testing.T) {
		run(t, 3, func(coordURL string, workers []*proc) func(string) {
			return func(string) {
				// Wait until w0 holds leased jobs mid-sweep, then SIGKILL it.
				// Its leases expire after the 250ms TTL and requeue onto the
				// survivors; the merged output must not change by a byte.
				deadline := time.Now().Add(30 * time.Second)
				for {
					st := getFabricState(t, coordURL)
					active := 0
					for _, w := range st.Workers {
						if w.Name == "w0" {
							active = w.Active
						}
					}
					if active > 0 && st.Filled < st.Total {
						break
					}
					if st.Filled == st.Total && st.Total > 0 {
						t.Log("sweep finished before the kill window; death schedule not exercised")
						return
					}
					if time.Now().After(deadline) {
						t.Fatal("w0 never took a lease")
					}
					time.Sleep(5 * time.Millisecond)
				}
				if err := workers[0].cmd.Process.Signal(syscall.SIGKILL); err != nil {
					t.Fatal(err)
				}
				t.Log("killed w0 mid-sweep")
			}
		})
	})
}

// TestWorkerProbeEndpoints pins the worker process's serving surface:
// /healthz is 200 from the start, /readyz flips to 200 only once the worker
// has registered with its coordinator.
func TestWorkerProbeEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns thermod processes")
	}
	// A worker pointed at a dead coordinator: healthy but never ready.
	orphan := startThermod(t, "-worker", "http://127.0.0.1:1", "-name", "orphan")
	res, err := http.Get(orphan.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("orphan /healthz = %d, want 200", res.StatusCode)
	}
	res, err = http.Get(orphan.url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("orphan /readyz = %d, want 503", res.StatusCode)
	}

	// A real fleet: startFleet already asserts /readyz reaches 200.
	coord, _ := startFleet(t, 1)
	for _, path := range []string{"/healthz", "/readyz"} {
		res, err := http.Get(coord.url + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("coordinator %s = %d, want 200", path, res.StatusCode)
		}
	}
}

// TestCoordinatorWorkerFlagConflict pins the mode guard.
func TestCoordinatorWorkerFlagConflict(t *testing.T) {
	err := run(config{coordinator: true, workerURL: "http://x"})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
}

// firstDiff renders the first divergent line of two texts for readable
// failures (the full documents are thousands of lines).
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\nwant: %s\ngot:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: want %d lines, got %d", len(w), len(g))
}
