// Command thermolint runs the repository's custom static-analysis suite —
// the determinism and observer/policy contract checks that keep the
// simulator bit-for-bit reproducible (see DESIGN.md, "Determinism & static
// analysis").
//
// Usage:
//
//	thermolint ./...                  # whole module
//	thermolint ./internal/...         # subtree
//	thermolint -json ./...            # machine-readable findings
//	go vet -vettool=$(which thermolint) ./...   # as a vet tool
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
//
// Analyzers: boundedalloc, ctxflow, detrange, exhaustive, goexit,
// lockdiscipline, noambient, observernil, orderedfloat, policycontract.
// Suppress a finding with `//lint:allow <analyzer> <reason>` on the flagged
// line or the line above; the analyzer name and the reason are mandatory,
// and the suppression silences only that analyzer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"thermometer/internal/analysis"
	"thermometer/internal/analysis/boundedalloc"
	"thermometer/internal/analysis/ctxflow"
	"thermometer/internal/analysis/detrange"
	"thermometer/internal/analysis/exhaustive"
	"thermometer/internal/analysis/goexit"
	"thermometer/internal/analysis/lockdiscipline"
	"thermometer/internal/analysis/noambient"
	"thermometer/internal/analysis/observernil"
	"thermometer/internal/analysis/orderedfloat"
	"thermometer/internal/analysis/policycontract"
)

var suite = []*analysis.Analyzer{
	boundedalloc.Analyzer,
	ctxflow.Analyzer,
	detrange.Analyzer,
	exhaustive.Analyzer,
	goexit.Analyzer,
	lockdiscipline.Analyzer,
	noambient.Analyzer,
	observernil.Analyzer,
	orderedfloat.Analyzer,
	policycontract.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	version := flag.String("V", "", "print version and exit (go vet protocol: -V=full)")
	flagDefs := flag.Bool("flags", false, "print the tool's analyzer flags as JSON (go vet protocol)")
	flag.Usage = usage
	flag.Parse()

	// `go vet -vettool` probes the tool with -V=full (version/build ID) and
	// -flags (supported analyzer flags) before handing it a .cfg file;
	// answer all three forms of the protocol.
	if *version != "" {
		fmt.Printf("thermolint version 1 buildID=thermolint\n")
		return
	}
	if *flagDefs {
		fmt.Println("[]") // no per-analyzer flags to expose to the vet driver
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettoolRun(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewModuleLoader(root, modPath)

	var pkgs []*analysis.Package
	for _, pattern := range args {
		got, err := expand(loader, root, cwd, pattern)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, got...)
	}

	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fatal(err)
	}
	report(diags, *jsonOut, root)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// expand resolves one package pattern ("./...", "./internal/trace", ".")
// relative to cwd into loaded packages.
func expand(loader *analysis.Loader, root, cwd, pattern string) ([]*analysis.Package, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		recursive = true
		pattern = rest
		if pattern == "." || pattern == "" {
			pattern = "."
		}
	}
	dir := pattern
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	if !strings.HasPrefix(dir, root) {
		return nil, fmt.Errorf("pattern %q resolves outside the module at %s", pattern, root)
	}
	if recursive {
		return loader.LoadTree(dir)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := loaderPath(rel)
	pkg, err := loader.Load(path)
	if err != nil {
		return nil, err
	}
	return []*analysis.Package{pkg}, nil
}

func loaderPath(rel string) string {
	if rel == "." {
		return "thermometer"
	}
	return "thermometer/" + filepath.ToSlash(rel)
}

func report(diags []analysis.Diagnostic, asJSON bool, root string) {
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	// Re-sort after path relativization so the emitted order (text and
	// -json alike) is stable regardless of where the tool was invoked from.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if asJSON {
		if diags == nil {
			diags = []analysis.Diagnostic{} // "findings": [], never null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []analysis.Diagnostic `json:"findings"`
		}{diags}); err != nil {
			fatal(err)
		}
		return
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "thermolint: %d finding(s)\n", len(diags))
	}
}

// vettoolRun implements enough of the `go vet -vettool` unitchecker
// protocol to be usable: it reads the JSON action config, re-typechecks the
// package from source (no export data needed), and prints diagnostics.
func vettoolRun(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg struct {
		ImportPath string
		Dir        string
		GoFiles    []string
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(err)
	}
	if len(cfg.GoFiles) == 0 {
		return 0
	}
	dir := cfg.Dir
	if dir == "" {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	root, modPath, err := analysis.ModuleRoot(dir)
	if err != nil {
		// Not our module (e.g. vetting a dependency): nothing to check.
		return 0
	}
	// go vet drives the tool over the whole import graph, stdlib included;
	// only packages of the enclosing module are in scope. External test
	// packages ("foo_test" variants) have no directory of their own and the
	// loader skips test files anyway.
	if cfg.ImportPath != modPath && !strings.HasPrefix(cfg.ImportPath, modPath+"/") {
		return 0
	}
	if strings.HasSuffix(cfg.ImportPath, "_test") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}
	loader := analysis.NewModuleLoader(root, modPath)
	pkg, err := loader.Load(cfg.ImportPath)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, suite)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: thermolint [-json] [packages]\n\nanalyzers:\n")
	for _, a := range suite {
		fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "thermolint: %v\n", err)
	os.Exit(2)
}
