package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermometer/internal/analysis"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it wrote.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	fn()
	w.Close()
	return <-done
}

// TestReportJSONSorted pins the -json contract: findings come out sorted by
// (file, line, column, analyzer, message) after path relativization, so CI
// diffs and problem-matcher annotations are stable run to run.
func TestReportJSONSorted(t *testing.T) {
	root := filepath.FromSlash("/work/mod")
	abs := func(rel string) string { return filepath.Join(root, filepath.FromSlash(rel)) }
	diags := []analysis.Diagnostic{
		{File: abs("internal/b/b.go"), Line: 3, Column: 1, Analyzer: "goexit", Message: "leak"},
		{File: abs("internal/a/a.go"), Line: 9, Column: 2, Analyzer: "ctxflow", Message: "ambient"},
		{File: abs("internal/a/a.go"), Line: 4, Column: 7, Analyzer: "orderedfloat", Message: "racy sum"},
		{File: abs("internal/a/a.go"), Line: 4, Column: 7, Analyzer: "boundedalloc", Message: "unclamped"},
		{File: filepath.FromSlash("/elsewhere/x.go"), Line: 1, Column: 1, Analyzer: "detrange", Message: "outside module"},
	}
	out := captureStdout(t, func() { report(diags, true, root) })

	var got struct {
		Findings []analysis.Diagnostic `json:"findings"`
	}
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("report -json emitted invalid JSON: %v\n%s", err, out)
	}
	want := []analysis.Diagnostic{
		{File: filepath.FromSlash("/elsewhere/x.go"), Line: 1, Column: 1, Analyzer: "detrange", Message: "outside module"},
		{File: filepath.FromSlash("internal/a/a.go"), Line: 4, Column: 7, Analyzer: "boundedalloc", Message: "unclamped"},
		{File: filepath.FromSlash("internal/a/a.go"), Line: 4, Column: 7, Analyzer: "orderedfloat", Message: "racy sum"},
		{File: filepath.FromSlash("internal/a/a.go"), Line: 9, Column: 2, Analyzer: "ctxflow", Message: "ambient"},
		{File: filepath.FromSlash("internal/b/b.go"), Line: 3, Column: 1, Analyzer: "goexit", Message: "leak"},
	}
	if len(got.Findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got.Findings), len(want), out)
	}
	for i := range want {
		if got.Findings[i] != want[i] {
			t.Errorf("finding[%d] = %+v, want %+v", i, got.Findings[i], want[i])
		}
	}
}

// TestReportJSONEmpty pins the clean-run shape: "findings" is an empty
// array, never null, so `jq '.findings[]'`-style consumers don't need a
// null guard.
func TestReportJSONEmpty(t *testing.T) {
	out := captureStdout(t, func() { report(nil, true, "/work") })
	if !strings.Contains(string(out), `"findings": []`) {
		t.Fatalf("clean -json output lacks empty findings array:\n%s", out)
	}
}

// TestSuiteComplete pins the analyzer roster: all ten checks must be wired
// into the driver, each exactly once.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"boundedalloc", "ctxflow", "detrange", "exhaustive", "goexit",
		"lockdiscipline", "noambient", "observernil", "orderedfloat",
		"policycontract",
	}
	seen := make(map[string]bool, len(suite))
	for _, a := range suite {
		if seen[a.Name] {
			t.Errorf("analyzer %s registered twice", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("analyzer %s missing from the driver suite", name)
		}
	}
	if len(suite) != len(want) {
		t.Errorf("suite has %d analyzers, want %d", len(suite), len(want))
	}
}

// TestEndToEndTempModule loads a throwaway module named "thermometer" (so
// the Scope regexps of the new analyzers apply) and checks that findings
// from several analyzers surface through the same Run/report path main()
// uses, in sorted order.
func TestEndToEndTempModule(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module thermometer\n\ngo 1.22\n")
	write("internal/runner/r.go", `package runner

import "strconv"

// Alloc trips boundedalloc: the size comes straight off the wire.
func Alloc(s string) []byte {
	n, _ := strconv.Atoi(s)
	return make([]byte, n)
}

// Spin trips goexit: the goroutine has no termination path.
func Spin(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
`)
	loader := analysis.NewModuleLoader(dir, "thermometer")
	pkgs, err := loader.LoadTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { report(diags, true, dir) })
	var got struct {
		Findings []analysis.Diagnostic `json:"findings"`
	}
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	byAnalyzer := make(map[string]int)
	for i, f := range got.Findings {
		byAnalyzer[f.Analyzer]++
		if filepath.IsAbs(f.File) {
			t.Errorf("finding %d has absolute path %s; want module-relative", i, f.File)
		}
		if i > 0 {
			prev := got.Findings[i-1]
			if prev.File > f.File || (prev.File == f.File && prev.Line > f.Line) {
				t.Errorf("findings out of order: %v before %v", prev, f)
			}
		}
	}
	if byAnalyzer["boundedalloc"] == 0 {
		t.Errorf("expected a boundedalloc finding, got %v\n%s", byAnalyzer, out)
	}
	if byAnalyzer["goexit"] == 0 {
		t.Errorf("expected a goexit finding, got %v\n%s", byAnalyzer, out)
	}
}
