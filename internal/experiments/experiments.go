// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigNN function returns one or more Tables whose rows are
// the series the paper plots; cmd/paperfigs renders them and bench_test.go
// wraps them in benchmarks.
//
// All experiments accept a Context, which fixes the trace scale (full-length
// traces for the record, shorter ones for quick runs) and caches generated
// traces and profiles across experiments.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"thermometer/internal/belady"
	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/detmap"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/runner"
	"thermometer/internal/telemetry"
	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the table as GitHub-flavored markdown — the shape CI
// appends to $GITHUB_STEP_SUMMARY. Cells are pipe-escaped so a value can
// never break the table structure.
func (t *Table) RenderMarkdown(w io.Writer) {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	fmt.Fprintf(w, "### %s: %s\n\n", esc(t.ID), esc(t.Title))
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	fmt.Fprintf(w, "|%s\n", strings.Repeat("---|", len(t.Header)))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n_%s_\n", esc(n))
	}
	fmt.Fprintln(w)
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Context carries experiment configuration and caches.
type Context struct {
	// Scale divides every trace length (1 = the full 400K-record traces
	// used for recorded results).
	Scale int
	// CBP5Traces / IPC1Traces bound the suite sizes (0 = full suites).
	CBP5Traces int
	IPC1Traces int

	// Workers sets the pool width for the per-app/per-trace loops inside
	// each experiment (0 = GOMAXPROCS, 1 = serial). Tables are identical at
	// any width: loop bodies write indexed slots and aggregation stays
	// serial, so floating-point sums accumulate in the same order.
	Workers int
	// Ctx, when non-nil, cancels experiments between loop iterations; a
	// canceled run panics with the context's error (recovered by
	// cmd/paperfigs into a timeout exit).
	Ctx context.Context

	// Telemetry, when non-nil, collects sweep-level metrics: per-experiment
	// wall time, trace/hint cache traffic. cmd/paperfigs wires it for its
	// -metrics and -http flags; nil disables collection.
	Telemetry *telemetry.Registry

	mu     sync.Mutex
	traces map[string]*ctxTraceSlot // guarded by mu
	hints  map[string]*ctxHintSlot  // guarded by mu
}

// Single-flight cache slots: the goroutine that creates a slot under c.mu
// counts the miss and every other requester blocks on the Once instead of
// regenerating, so cache counters stay deterministic at any pool width.
type ctxTraceSlot struct {
	once sync.Once
	tr   *trace.Trace
}

type ctxHintSlot struct {
	once sync.Once
	ht   *profile.HintTable
}

// forEach runs fn(0..n-1) on the context's worker pool with serial
// semantics preserved: fn must write results only to its own index, panics
// re-propagate (lowest index first, as a serial loop would), and a canceled
// Ctx stops dispatching and panics with the context error.
func (c *Context) forEach(n int, fn func(i int)) {
	if c.Ctx != nil && c.Ctx.Err() != nil {
		panic(c.Ctx.Err())
	}
	panics := make([]any, n)
	runner.ForEach(c.Workers, n, func(i int) {
		if c.Ctx != nil && c.Ctx.Err() != nil {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				panics[i] = r
			}
		}()
		fn(i)
	})
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	if c.Ctx != nil && c.Ctx.Err() != nil {
		panic(c.Ctx.Err())
	}
}

// count bumps a telemetry counter if collection is enabled.
func (c *Context) count(name string) {
	if c.Telemetry != nil {
		c.Telemetry.Counter(name).Inc()
	}
}

// Run executes one registered experiment, recording its wall time (in
// milliseconds, under "exp_<id>_ms") and completion count when telemetry is
// attached. It panics on unknown IDs, like indexing Registry directly.
func (c *Context) Run(id string) []*Table {
	fn := Registry[id]
	if fn == nil {
		panic("experiments: unknown experiment " + id)
	}
	start := time.Now() //lint:allow noambient wall-clock experiment timing for telemetry, not simulated time
	tables := fn(c)
	if c.Telemetry != nil {
		//lint:allow noambient wall-clock experiment timing for telemetry, not simulated time
		c.Telemetry.Counter("exp_" + id + "_ms").Add(uint64(time.Since(start).Milliseconds()))
		c.Telemetry.Counter("experiments_run").Inc()
	}
	return tables
}

// NewContext returns a context at the given scale.
func NewContext(scale int) *Context {
	if scale < 1 {
		scale = 1
	}
	return &Context{
		Scale:  scale,
		traces: make(map[string]*ctxTraceSlot),
		hints:  make(map[string]*ctxHintSlot),
	}
}

// AppTrace returns (and caches) the trace for an application input.
// Concurrent requests for the same trace single-flight: one goroutine
// generates, the rest wait.
func (c *Context) AppTrace(name string, input int) *trace.Trace {
	key := fmt.Sprintf("%s#%d", name, input)
	c.mu.Lock()
	slot, ok := c.traces[key]
	if !ok {
		slot = &ctxTraceSlot{}
		c.traces[key] = slot
		c.count("trace_cache_misses")
	} else {
		c.count("trace_cache_hits")
	}
	c.mu.Unlock()
	slot.once.Do(func() {
		spec, ok := workload.App(name)
		if !ok {
			panic("experiments: unknown app " + name)
		}
		slot.tr = spec.ScaleLength(1, c.Scale).Generate(input)
	})
	if slot.tr == nil {
		panic("experiments: trace generation for " + key + " previously failed")
	}
	return slot.tr
}

// Hints returns (and caches) the Thermometer hint table for an app input
// under the given geometry and profile configuration, single-flighting
// concurrent requests like AppTrace.
func (c *Context) Hints(name string, input, entries, ways int, cfg profile.Config) *profile.HintTable {
	key := fmt.Sprintf("%s#%d@%dx%d:%v:%d", name, input, entries, ways, cfg.Thresholds, cfg.DefaultCategory)
	c.mu.Lock()
	slot, ok := c.hints[key]
	if !ok {
		slot = &ctxHintSlot{}
		c.hints[key] = slot
		c.count("hint_cache_misses")
	} else {
		c.count("hint_cache_hits")
	}
	c.mu.Unlock()
	slot.once.Do(func() {
		tr := c.AppTrace(name, input)
		ht, _, err := profile.ProfileTrace(tr, entries, ways, cfg)
		if err != nil {
			panic(err)
		}
		slot.ht = ht
	})
	if slot.ht == nil {
		panic("experiments: hint profiling for " + key + " previously failed")
	}
	return slot.ht
}

// cbp5Count returns the number of CBP-5 traces to run.
func (c *Context) cbp5Count() int {
	if c.CBP5Traces > 0 && c.CBP5Traces < workload.CBP5Count {
		return c.CBP5Traces
	}
	return workload.CBP5Count
}

func (c *Context) ipc1Count() int {
	if c.IPC1Traces > 0 && c.IPC1Traces < workload.IPC1Count {
		return c.IPC1Traces
	}
	return workload.IPC1Count
}

// --- shared policy roster ---

// policyFactories returns the comparison policies of Figs 1/11/12.
func policyFactories() []struct {
	Name string
	New  func() btb.Policy
} {
	return []struct {
		Name string
		New  func() btb.Policy
	}{
		{"SRRIP", func() btb.Policy { return policy.NewSRRIP() }},
		{"GHRP", func() btb.Policy { return policy.NewGHRP() }},
		{"Hawkeye", func() btb.Policy { return policy.NewHawkeye() }},
	}
}

// runPolicy is a helper running the timing simulator with a policy factory
// and optional hints.
func runPolicy(tr *trace.Trace, newPolicy func() btb.Policy, hints *profile.HintTable, mut func(*core.Config)) *core.Result {
	cfg := core.DefaultConfig()
	cfg.NewPolicy = newPolicy
	cfg.Hints = hints
	if mut != nil {
		mut(&cfg)
	}
	return core.Run(tr, cfg)
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f", 100*f) }

// f2 formats with two decimals.
func f2(f float64) string { return fmt.Sprintf("%.2f", f) }

// Registry maps experiment IDs to their functions.
var Registry = map[string]func(*Context) []*Table{
	"table1": TableOne,
	"fig1":   Fig1,
	"fig2":   Fig2,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  Fig16,
	"fig17":  Fig17,
	"fig18":  Fig18,
	"fig19":  Fig19,
	"fig20":  Fig20,
	"fig21":  Fig21,
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	out := detmap.SortedKeys(Registry)
	sort.Slice(out, func(i, j int) bool {
		// table1 first, then figN numerically, then extras alphabetically.
		num := func(s string) int {
			if s == "table1" {
				return -1
			}
			var n int
			if _, err := fmt.Sscanf(s, "fig%d", &n); err != nil {
				return 1 << 20 // non-figure extras (e.g. ablations) last
			}
			return n
		}
		ni, nj := num(out[i]), num(out[j])
		if ni != nj {
			return ni < nj
		}
		return out[i] < out[j]
	})
	return out
}

// TableOne prints the simulation parameters (Table 1).
func TableOne(*Context) []*Table {
	t := &Table{ID: "table1", Title: "Simulation parameters", Header: []string{"Parameter", "Value"}}
	for _, row := range core.Table1(core.DefaultConfig()) {
		t.AddRow(row[0], row[1])
	}
	return []*Table{t}
}

// optSpeedup computes the OPT policy's speedup over LRU for a trace
// (shared by several figures).
func optSpeedup(tr *trace.Trace) (lru, opt *core.Result, speedup float64) {
	lru = runPolicy(tr, nil, nil, nil)
	opt = runPolicy(tr, func() btb.Policy { return policy.NewOPT() }, nil, nil)
	return lru, opt, core.Speedup(lru, opt)
}

// beladyResult profiles a trace under the default geometry.
func beladyResult(tr *trace.Trace) *belady.Result {
	cfg := core.DefaultConfig()
	return belady.Profile(tr.AccessStream(), cfg.BTBEntries, cfg.BTBWays)
}
