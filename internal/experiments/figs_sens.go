package experiments

import (
	"fmt"

	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/prefetch"
	"thermometer/internal/profile"
	"thermometer/internal/workload"
)

// sensApps are the applications the paper sweeps in Figs 19 and 20.
var sensApps = []string{"cassandra", "drupal", "tomcat"}

// fracOfOPT returns Thermometer's and SRRIP's speedup as a percentage of
// the OPT speedup for the given geometry/config mutation. Hints are
// re-profiled for the geometry under test (the BTB-size dependency of
// §3.4).
func fracOfOPT(c *Context, app string, entries, ways int, mut func(*core.Config)) (therm, srrip float64) {
	tr := c.AppTrace(app, 0)
	ht, _, err := profile.ProfileTrace(tr, entries, ways, profile.DefaultConfig())
	if err != nil {
		panic(err)
	}
	geo := func(cc *core.Config) {
		cc.BTBEntries = entries
		cc.BTBWays = ways
		if mut != nil {
			mut(cc)
		}
	}
	lru := runPolicy(tr, nil, nil, geo)
	opt := runPolicy(tr, optNew, nil, geo)
	den := core.Speedup(lru, opt)
	if den <= 0 {
		return 0, 0
	}
	th := runPolicy(tr, thermNew, ht, geo)
	sr := runPolicy(tr, func() btb.Policy { return policy.NewSRRIP() }, nil, geo)
	return core.Speedup(lru, th) / den, core.Speedup(lru, sr) / den
}

// Fig19 — sensitivity to the number of BTB entries (left) and BTB ways
// (right), as % of the optimal policy's speedup.
func Fig19(c *Context) []*Table {
	left := &Table{
		ID:     "fig19",
		Title:  "% of OPT speedup vs number of BTB entries (4-way)",
		Header: []string{"entries"},
	}
	for _, app := range sensApps {
		left.Header = append(left.Header, "Therm-"+app, "SRRIP-"+app)
	}
	for _, entries := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
		row := []string{fmt.Sprint(entries)}
		for _, app := range sensApps {
			th, sr := fracOfOPT(c, app, entries, 4, nil)
			row = append(row, pct(th), pct(sr))
		}
		left.AddRow(row...)
	}

	right := &Table{
		ID:     "fig19",
		Title:  "% of OPT speedup vs BTB associativity (8192 entries)",
		Header: []string{"ways"},
	}
	for _, app := range sensApps {
		right.Header = append(right.Header, "Therm-"+app, "SRRIP-"+app)
	}
	for _, ways := range []int{4, 8, 16, 32, 64, 128} {
		row := []string{fmt.Sprint(ways)}
		for _, app := range sensApps {
			th, sr := fracOfOPT(c, app, 8192, ways, nil)
			row = append(row, pct(th), pct(sr))
		}
		right.AddRow(row...)
	}
	right.Notes = append(right.Notes,
		"paper: Thermometer beats SRRIP at every size and associativity")
	return []*Table{left, right}
}

// Fig20 — sensitivity to the number of temperature categories (left; 2-bit
// hints support up to 4, more categories shown for the quantization study)
// and to the FTQ size (right).
func Fig20(c *Context) []*Table {
	cfg := core.DefaultConfig()
	left := &Table{
		ID:     "fig20",
		Title:  "% of OPT speedup vs number of temperature categories",
		Header: []string{"categories"},
	}
	for _, app := range sensApps {
		left.Header = append(left.Header, "Therm-"+app)
	}
	for _, cats := range []int{2, 3, 4, 8, 16} {
		row := []string{fmt.Sprint(cats)}
		for _, app := range sensApps {
			tr := c.AppTrace(app, 0)
			var pcfg profile.Config
			if cats == 3 {
				pcfg = profile.DefaultConfig() // the paper's 50%/80%
			} else {
				res := beladyResult(tr)
				pcfg = profile.Config{
					Thresholds:      profile.QuantileThresholds(res, cats),
					DefaultCategory: uint8(cats / 2),
				}
			}
			ht, _, err := profile.ProfileTrace(tr, cfg.BTBEntries, cfg.BTBWays, pcfg)
			if err != nil {
				panic(err)
			}
			lru := runPolicy(tr, nil, nil, nil)
			opt := runPolicy(tr, optNew, nil, nil)
			den := core.Speedup(lru, opt)
			th := runPolicy(tr, thermNew, ht, nil)
			frac := 0.0
			if den > 0 {
				frac = core.Speedup(lru, th) / den
			}
			row = append(row, pct(frac))
		}
		left.AddRow(row...)
	}
	left.Notes = append(left.Notes, "paper: 3-4 categories (2-bit hints) work best")

	right := &Table{
		ID:     "fig20",
		Title:  "% of OPT speedup vs FTQ size (instructions)",
		Header: []string{"ftq"},
	}
	for _, app := range sensApps {
		right.Header = append(right.Header, "Therm-"+app, "SRRIP-"+app)
	}
	for _, ftq := range []int{64, 128, 192, 256} {
		row := []string{fmt.Sprint(ftq)}
		for _, app := range sensApps {
			th, sr := fracOfOPT(c, app, cfg.BTBEntries, cfg.BTBWays, func(cc *core.Config) {
				cc.FTQInstrCap = ftq
			})
			row = append(row, pct(th), pct(sr))
		}
		right.AddRow(row...)
	}
	right.Notes = append(right.Notes,
		"paper: Thermometer's fraction of OPT is insensitive to FDIP run-ahead depth")
	return []*Table{left, right}
}

// Fig21 — Thermometer combined with the Twig BTB prefetcher: speedups over
// the LRU+Twig baseline.
func Fig21(c *Context) []*Table {
	t := &Table{
		ID:     "fig21",
		Title:  "Speedup (%) over LRU+Twig: replacement under BTB prefetching",
		Header: []string{"app", "SRRIP", "Thermometer", "OPT"},
	}
	cfg := core.DefaultConfig()
	var sums, sumsNoVeri [3]float64
	for _, app := range workload.AppNames() {
		tr := c.AppTrace(app, 0)
		tw := prefetch.TrainTwig(tr, prefetch.TwigConfig{
			Entries: cfg.BTBEntries, Ways: cfg.BTBWays,
		})
		withTwig := func(cc *core.Config) { cc.Prefetcher = tw }
		ht := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())

		base := runPolicy(tr, nil, nil, withTwig)
		sp := func(r *core.Result) float64 { return core.Speedup(base, r) }
		vals := [3]float64{
			sp(runPolicy(tr, func() btb.Policy { return policy.NewSRRIP() }, nil, withTwig)),
			sp(runPolicy(tr, thermNew, ht, withTwig)),
			sp(runPolicy(tr, optNew, nil, withTwig)),
		}
		row := []string{app}
		for i, v := range vals {
			sums[i] += v
			if app != "verilator" {
				sumsNoVeri[i] += v
			}
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	n := float64(len(workload.AppNames()))
	t.AddRow("Avg no verilator", pct(sumsNoVeri[0]/(n-1)), pct(sumsNoVeri[1]/(n-1)), pct(sumsNoVeri[2]/(n-1)))
	t.AddRow("Avg", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes,
		"paper: Thermometer+Twig 30.9% over LRU+Twig (95.9% of OPT's 32.2%); SRRIP 1.37%")
	return []*Table{t}
}
