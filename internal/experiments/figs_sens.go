package experiments

import (
	"fmt"

	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/prefetch"
	"thermometer/internal/profile"
	"thermometer/internal/workload"
)

// sensApps are the applications the paper sweeps in Figs 19 and 20.
var sensApps = []string{"cassandra", "drupal", "tomcat"}

// fracOfOPT returns Thermometer's and SRRIP's speedup as a percentage of
// the OPT speedup for the given geometry/config mutation. Hints are
// re-profiled for the geometry under test (the BTB-size dependency of
// §3.4).
func fracOfOPT(c *Context, app string, entries, ways int, mut func(*core.Config)) (therm, srrip float64) {
	tr := c.AppTrace(app, 0)
	ht, _, err := profile.ProfileTrace(tr, entries, ways, profile.DefaultConfig())
	if err != nil {
		panic(err)
	}
	geo := func(cc *core.Config) {
		cc.BTBEntries = entries
		cc.BTBWays = ways
		if mut != nil {
			mut(cc)
		}
	}
	lru := runPolicy(tr, nil, nil, geo)
	opt := runPolicy(tr, optNew, nil, geo)
	den := core.Speedup(lru, opt)
	if den <= 0 {
		return 0, 0
	}
	th := runPolicy(tr, thermNew, ht, geo)
	sr := runPolicy(tr, func() btb.Policy { return policy.NewSRRIP() }, nil, geo)
	return core.Speedup(lru, th) / den, core.Speedup(lru, sr) / den
}

// sensPair is one (Thermometer, SRRIP) fraction-of-OPT grid cell.
type sensPair struct{ th, sr float64 }

// sensGrid evaluates a points×sensApps grid in parallel; eval computes one
// cell, rows are assembled serially so the table is width-independent.
func sensGrid(c *Context, points int, eval func(point, app int) sensPair) [][]sensPair {
	flat := make([]sensPair, points*len(sensApps))
	c.forEach(len(flat), func(i int) {
		flat[i] = eval(i/len(sensApps), i%len(sensApps))
	})
	rows := make([][]sensPair, points)
	for p := 0; p < points; p++ {
		rows[p] = flat[p*len(sensApps) : (p+1)*len(sensApps)]
	}
	return rows
}

// Fig19 — sensitivity to the number of BTB entries (left) and BTB ways
// (right), as % of the optimal policy's speedup.
func Fig19(c *Context) []*Table {
	left := &Table{
		ID:     "fig19",
		Title:  "% of OPT speedup vs number of BTB entries (4-way)",
		Header: []string{"entries"},
	}
	for _, app := range sensApps {
		left.Header = append(left.Header, "Therm-"+app, "SRRIP-"+app)
	}
	entriesList := []int{1024, 2048, 4096, 8192, 16384, 32768}
	for p, cells := range sensGrid(c, len(entriesList), func(p, a int) sensPair {
		th, sr := fracOfOPT(c, sensApps[a], entriesList[p], 4, nil)
		return sensPair{th, sr}
	}) {
		row := []string{fmt.Sprint(entriesList[p])}
		for _, cell := range cells {
			row = append(row, pct(cell.th), pct(cell.sr))
		}
		left.AddRow(row...)
	}

	right := &Table{
		ID:     "fig19",
		Title:  "% of OPT speedup vs BTB associativity (8192 entries)",
		Header: []string{"ways"},
	}
	for _, app := range sensApps {
		right.Header = append(right.Header, "Therm-"+app, "SRRIP-"+app)
	}
	waysList := []int{4, 8, 16, 32, 64, 128}
	for p, cells := range sensGrid(c, len(waysList), func(p, a int) sensPair {
		th, sr := fracOfOPT(c, sensApps[a], 8192, waysList[p], nil)
		return sensPair{th, sr}
	}) {
		row := []string{fmt.Sprint(waysList[p])}
		for _, cell := range cells {
			row = append(row, pct(cell.th), pct(cell.sr))
		}
		right.AddRow(row...)
	}
	right.Notes = append(right.Notes,
		"paper: Thermometer beats SRRIP at every size and associativity")
	return []*Table{left, right}
}

// Fig20 — sensitivity to the number of temperature categories (left; 2-bit
// hints support up to 4, more categories shown for the quantization study)
// and to the FTQ size (right).
func Fig20(c *Context) []*Table {
	cfg := core.DefaultConfig()
	left := &Table{
		ID:     "fig20",
		Title:  "% of OPT speedup vs number of temperature categories",
		Header: []string{"categories"},
	}
	for _, app := range sensApps {
		left.Header = append(left.Header, "Therm-"+app)
	}
	catsList := []int{2, 3, 4, 8, 16}
	for p, cells := range sensGrid(c, len(catsList), func(p, a int) sensPair {
		cats := catsList[p]
		tr := c.AppTrace(sensApps[a], 0)
		var pcfg profile.Config
		if cats == 3 {
			pcfg = profile.DefaultConfig() // the paper's 50%/80%
		} else {
			res := beladyResult(tr)
			pcfg = profile.Config{
				Thresholds:      profile.QuantileThresholds(res, cats),
				DefaultCategory: uint8(cats / 2),
			}
		}
		ht, _, err := profile.ProfileTrace(tr, cfg.BTBEntries, cfg.BTBWays, pcfg)
		if err != nil {
			panic(err)
		}
		lru := runPolicy(tr, nil, nil, nil)
		opt := runPolicy(tr, optNew, nil, nil)
		den := core.Speedup(lru, opt)
		th := runPolicy(tr, thermNew, ht, nil)
		frac := 0.0
		if den > 0 {
			frac = core.Speedup(lru, th) / den
		}
		return sensPair{th: frac}
	}) {
		row := []string{fmt.Sprint(catsList[p])}
		for _, cell := range cells {
			row = append(row, pct(cell.th))
		}
		left.AddRow(row...)
	}
	left.Notes = append(left.Notes, "paper: 3-4 categories (2-bit hints) work best")

	right := &Table{
		ID:     "fig20",
		Title:  "% of OPT speedup vs FTQ size (instructions)",
		Header: []string{"ftq"},
	}
	for _, app := range sensApps {
		right.Header = append(right.Header, "Therm-"+app, "SRRIP-"+app)
	}
	ftqList := []int{64, 128, 192, 256}
	for p, cells := range sensGrid(c, len(ftqList), func(p, a int) sensPair {
		th, sr := fracOfOPT(c, sensApps[a], cfg.BTBEntries, cfg.BTBWays, func(cc *core.Config) {
			cc.FTQInstrCap = ftqList[p]
		})
		return sensPair{th, sr}
	}) {
		row := []string{fmt.Sprint(ftqList[p])}
		for _, cell := range cells {
			row = append(row, pct(cell.th), pct(cell.sr))
		}
		right.AddRow(row...)
	}
	right.Notes = append(right.Notes,
		"paper: Thermometer's fraction of OPT is insensitive to FDIP run-ahead depth")
	return []*Table{left, right}
}

// Fig21 — Thermometer combined with the Twig BTB prefetcher: speedups over
// the LRU+Twig baseline.
func Fig21(c *Context) []*Table {
	t := &Table{
		ID:     "fig21",
		Title:  "Speedup (%) over LRU+Twig: replacement under BTB prefetching",
		Header: []string{"app", "SRRIP", "Thermometer", "OPT"},
	}
	cfg := core.DefaultConfig()
	apps := workload.AppNames()
	allVals := make([][3]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		app := apps[i]
		tr := c.AppTrace(app, 0)
		tw := prefetch.TrainTwig(tr, prefetch.TwigConfig{
			Entries: cfg.BTBEntries, Ways: cfg.BTBWays,
		})
		withTwig := func(cc *core.Config) { cc.Prefetcher = tw }
		ht := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())

		base := runPolicy(tr, nil, nil, withTwig)
		sp := func(r *core.Result) float64 { return core.Speedup(base, r) }
		allVals[i] = [3]float64{
			sp(runPolicy(tr, func() btb.Policy { return policy.NewSRRIP() }, nil, withTwig)),
			sp(runPolicy(tr, thermNew, ht, withTwig)),
			sp(runPolicy(tr, optNew, nil, withTwig)),
		}
	})
	var sums, sumsNoVeri [3]float64
	for i, app := range apps {
		row := []string{app}
		for j, v := range allVals[i] {
			sums[j] += v
			if app != "verilator" {
				sumsNoVeri[j] += v
			}
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	n := float64(len(apps))
	t.AddRow("Avg no verilator", pct(sumsNoVeri[0]/(n-1)), pct(sumsNoVeri[1]/(n-1)), pct(sumsNoVeri[2]/(n-1)))
	t.AddRow("Avg", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes,
		"paper: Thermometer+Twig 30.9% over LRU+Twig (95.9% of OPT's 32.2%); SRRIP 1.37%")
	return []*Table{t}
}
