package experiments

import (
	"fmt"
	"sort"

	"thermometer/internal/belady"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/replay"
	"thermometer/internal/workload"
)

// suiteMissReduction runs one suite trace and returns Thermometer's miss
// reduction over GHRP (the paper's Fig 17 metric), with both the default
// thresholds and two-fold cross-validated thresholds, plus the trace's BTB
// MPKI under GHRP.
type cbpResult struct {
	name             string
	reduction        float64
	reductionTwoFold float64
	mpki             float64
	compulsoryOnly   bool
}

func runCBP5Trace(i int) cbpResult {
	spec := workload.CBP5Spec(i)
	tr := spec.Generate(0)
	acc := tr.AccessStream()
	cfg := core.DefaultConfig()
	e, w := cfg.BTBEntries, cfg.BTBWays

	ghrp := replay.Run(acc, replay.Options{Entries: e, Ways: w, Policy: policy.NewGHRP(), WarmupFrac: 0.25})
	opt := belady.Profile(acc, e, w)
	ht, err := profile.Build(opt, profile.DefaultConfig())
	if err != nil {
		panic(err)
	}
	therm := replay.Run(acc, replay.Options{Entries: e, Ways: w, Policy: policy.NewThermometer(), Hints: ht, WarmupFrac: 0.25})

	res := cbpResult{
		name: spec.Name,
		mpki: float64(ghrp.Stats.Misses) / float64(tr.Instructions()) * 1000,
	}
	if ghrp.Stats.Misses > 0 {
		res.reduction = (float64(ghrp.Stats.Misses) - float64(therm.Stats.Misses)) / float64(ghrp.Stats.Misses)
	}
	// Compulsory-only traces: every policy sees the same (first-touch)
	// misses; detect via the optimal policy having no capacity misses.
	uniq := len(opt.PerBranch)
	res.compulsoryOnly = opt.Misses <= uint64(uniq)+uint64(uniq/100)

	// Two-fold thresholds only matter where the default loses to GHRP.
	if res.reduction < 0 {
		cvCfg, err := profile.CrossValidateThresholds(acc, e, w, nil)
		if err != nil {
			panic(err)
		}
		ht2, err := profile.Build(opt, cvCfg)
		if err != nil {
			panic(err)
		}
		t2 := replay.Run(acc, replay.Options{Entries: e, Ways: w, Policy: policy.NewThermometer(), Hints: ht2, WarmupFrac: 0.25})
		res.reductionTwoFold = (float64(ghrp.Stats.Misses) - float64(t2.Stats.Misses)) / float64(ghrp.Stats.Misses)
		if res.reductionTwoFold < res.reduction {
			res.reductionTwoFold = res.reduction
		}
	} else {
		res.reductionTwoFold = res.reduction
	}
	return res
}

// Fig17 — BTB miss reduction of Thermometer over GHRP across the CBP-5
// suite, with default and two-fold cross-validated thresholds.
func Fig17(c *Context) []*Table {
	n := c.cbp5Count()
	results := make([]cbpResult, n)
	c.forEach(n, func(i int) {
		results[i] = runCBP5Trace(i)
	})

	var wins, losses, ties, compulsory, lossesTwoFold int
	var sum, sumTwoFold, sumHighMPKI float64
	highMPKI := 0
	reductions := make([]float64, 0, n)
	for _, r := range results {
		sum += r.reduction
		sumTwoFold += r.reductionTwoFold
		reductions = append(reductions, r.reduction)
		switch {
		case r.reduction > 0.0001:
			wins++
		case r.reduction < -0.0001:
			losses++
		default:
			ties++
		}
		if r.reductionTwoFold < -0.0001 {
			lossesTwoFold++
		}
		if r.compulsoryOnly {
			compulsory++
		}
		if r.mpki >= 1 {
			highMPKI++
			sumHighMPKI += r.reduction
		}
	}
	sort.Float64s(reductions)
	q := func(p float64) float64 {
		if len(reductions) == 0 {
			return 0
		}
		return reductions[int(p*float64(len(reductions)-1))]
	}

	t := &Table{
		ID:     "fig17",
		Title:  fmt.Sprintf("Thermometer BTB miss reduction over GHRP, %d CBP-5 traces", n),
		Header: []string{"metric", "value"},
	}
	t.AddRow("traces", fmt.Sprint(n))
	t.AddRow("avg miss reduction (%)", pct(sum/float64(n)))
	t.AddRow("avg miss reduction, two-fold thresholds (%)", pct(sumTwoFold/float64(n)))
	t.AddRow("avg among BTB MPKI >= 1 (%)", pctOrNA(sumHighMPKI, highMPKI))
	t.AddRow("traces with BTB MPKI >= 1", fmt.Sprint(highMPKI))
	t.AddRow("Thermometer wins", fmt.Sprint(wins))
	t.AddRow("GHRP wins", fmt.Sprint(losses))
	t.AddRow("GHRP wins after two-fold", fmt.Sprint(lossesTwoFold))
	t.AddRow("ties (incl. compulsory-only)", fmt.Sprint(ties))
	t.AddRow("compulsory-only traces", fmt.Sprint(compulsory))
	t.AddRow("p10/p50/p90 reduction (%)",
		fmt.Sprintf("%s / %s / %s", pct(q(0.10)), pct(q(0.50)), pct(q(0.90))))
	t.Notes = append(t.Notes,
		"paper: 2.25% avg over GHRP; 11.48% among MPKI>=1; 306 wins / 59 losses (32 after two-fold); 298 compulsory-only")
	return []*Table{t}
}

func pctOrNA(sum float64, n int) string {
	if n == 0 {
		return "n/a"
	}
	return pct(sum / float64(n))
}

// Fig18 — IPC speedup over LRU across the IPC-1 suite.
func Fig18(c *Context) []*Table {
	n := c.ipc1Count()
	cfg := core.DefaultConfig()
	type row struct {
		srrip, ghrp, hawkeye, therm, opt float64
		mpki                             float64
	}
	rows := make([]row, n)
	c.forEach(n, func(i int) {
		tr := workload.IPC1Spec(i).Generate(0)
		ht, _, err := profile.ProfileTrace(tr, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		if err != nil {
			panic(err)
		}
		lru := runPolicy(tr, nil, nil, nil)
		sp := func(r *core.Result) float64 { return core.Speedup(lru, r) }
		rows[i] = row{
			srrip:   sp(runPolicy(tr, policyFactories()[0].New, nil, nil)),
			ghrp:    sp(runPolicy(tr, policyFactories()[1].New, nil, nil)),
			hawkeye: sp(runPolicy(tr, policyFactories()[2].New, nil, nil)),
			therm:   sp(runPolicy(tr, thermNew, ht, nil)),
			opt:     sp(runPolicy(tr, optNew, nil, nil)),
			mpki:    lru.BTBMPKI(),
		}
	})
	var s row
	var sHigh row
	high := 0
	maxTherm := 0.0
	for _, r := range rows {
		s.srrip += r.srrip
		s.ghrp += r.ghrp
		s.hawkeye += r.hawkeye
		s.therm += r.therm
		s.opt += r.opt
		if r.mpki >= 1 {
			high++
			sHigh.therm += r.therm
			sHigh.opt += r.opt
		}
		if r.therm > maxTherm {
			maxTherm = r.therm
		}
	}
	fn := float64(n)
	t := &Table{
		ID:     "fig18",
		Title:  fmt.Sprintf("IPC speedup over LRU, %d IPC-1 traces", n),
		Header: []string{"metric", "SRRIP", "GHRP", "Hawkeye", "Thermometer", "OPT"},
	}
	t.AddRow("avg speedup (%)", pct(s.srrip/fn), pct(s.ghrp/fn), pct(s.hawkeye/fn),
		pct(s.therm/fn), pct(s.opt/fn))
	t.AddRow("max Thermometer (%)", "", "", "", pct(maxTherm), "")
	if high > 0 {
		t.AddRow(fmt.Sprintf("avg among MPKI>=1 (%d traces)", high), "", "", "",
			pct(sHigh.therm/float64(high)), pct(sHigh.opt/float64(high)))
	}
	t.Notes = append(t.Notes,
		"paper: Thermometer 1.07% avg (up to 5.36%, 3.59% among MPKI>=1) vs SRRIP 0.45%; 85.7% of OPT")
	return []*Table{t}
}
