package experiments

import (
	"bytes"
	"testing"
)

// renderAll runs the given experiments on a fresh context at the given pool
// width and returns the concatenated rendered tables.
func renderAll(t *testing.T, ids []string, workers int) []byte {
	t.Helper()
	c := NewContext(16)
	c.CBP5Traces = 2
	c.IPC1Traces = 2
	c.Workers = workers
	var buf bytes.Buffer
	for _, id := range ids {
		for _, tab := range c.Run(id) {
			tab.Render(&buf)
		}
	}
	return buf.Bytes()
}

// TestGoldenParallelDeterminism is the determinism acceptance test for the
// experiment port onto the worker pool: rendered figures must be
// byte-identical at -parallel=1 and -parallel=8. The chosen experiments
// cover every loop shape — per-app (fig1), per-app with hint profiling
// (fig11), replay-based (fig12), flattened app×input with skipped cells
// (fig13), CBP-5 suite (fig17), sensitivity grid (fig19), and the
// app×policy attribution grid (regret).
func TestGoldenParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow determinism sweep")
	}
	ids := []string{"fig1", "fig11", "fig12", "fig13", "fig17", "fig19", "regret"}
	serial := renderAll(t, ids, 1)
	parallel := renderAll(t, ids, 8)
	if !bytes.Equal(serial, parallel) {
		a, b := string(serial), string(parallel)
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := max(0, i-120)
				t.Fatalf("output diverges at byte %d:\nserial:   …%s\nparallel: …%s",
					i, a[lo:min(len(a), i+40)], b[lo:min(len(b), i+40)])
			}
		}
		t.Fatalf("output lengths differ: serial %d bytes, parallel %d bytes", len(serial), len(parallel))
	}
}
