package experiments

import (
	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
)

func init() {
	Registry["ablations"] = Ablations
}

// Ablations quantifies Thermometer's individual design choices beyond the
// paper's own ablation (Fig 16):
//
//   - bypass (Alg. 1 line 5-6) on vs off;
//   - LRU tie-breaking vs FIFO tie-breaking (holistic-only);
//   - the default warm fallback for unprofiled branches vs a cold fallback.
//
// Reported as speedup (%) over LRU on a subset of applications.
func Ablations(c *Context) []*Table {
	t := &Table{
		ID:    "ablations",
		Title: "Design-choice ablations: speedup (%) over LRU",
		Header: []string{"app", "Thermometer", "no-bypass", "FIFO-ties",
			"cold-default"},
	}
	cfg := core.DefaultConfig()
	apps := []string{"cassandra", "mediawiki", "tomcat", "wordpress"}
	allVals := make([][4]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		app := apps[i]
		tr := c.AppTrace(app, 0)
		ht := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		coldCfg := profile.DefaultConfig()
		coldCfg.DefaultCategory = profile.Cold
		htCold := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, coldCfg)

		lru := runPolicy(tr, nil, nil, nil)
		sp := func(newPolicy func() btb.Policy, hints *profile.HintTable) float64 {
			return core.Speedup(lru, runPolicy(tr, newPolicy, hints, nil))
		}
		allVals[i] = [4]float64{
			sp(func() btb.Policy { return policy.NewThermometer() }, ht),
			sp(func() btb.Policy { return policy.NewThermometerNoBypass() }, ht),
			sp(func() btb.Policy { return policy.NewHolisticOnly() }, ht),
			sp(func() btb.Policy { return policy.NewThermometer() }, htCold),
		}
	})
	var sums [4]float64
	for i, app := range apps {
		row := []string{app}
		for j, v := range allVals[i] {
			sums[j] += v
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	row := []string{"Avg"}
	for _, s := range sums {
		row = append(row, pct(s/float64(len(apps))))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes,
		"bypass (Alg. 1 line 5-6) is load-bearing (~2pp of speedup); the tie-break choice and the unprofiled-branch fallback matter little when the profile matches the input")
	return []*Table{t}
}
