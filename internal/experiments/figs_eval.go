package experiments

import (
	"time"

	"thermometer/internal/belady"
	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/replay"
	"thermometer/internal/workload"
)

// thermNew is the Thermometer policy factory.
func thermNew() btb.Policy { return policy.NewThermometer() }

// optNew is the OPT policy factory.
func optNew() btb.Policy { return policy.NewOPT() }

// Fig11 — Thermometer's IPC speedup (including the storage-equalized
// 7979-entry variant) vs prior policies and OPT.
func Fig11(c *Context) []*Table {
	t := &Table{
		ID:    "fig11",
		Title: "Speedup (%) over LRU: Thermometer vs prior policies and OPT",
		Header: []string{"app", "SRRIP", "GHRP", "Hawkeye", "Thermometer",
			"Therm-7979", "OPT"},
	}
	cfg := core.DefaultConfig()
	apps := workload.AppNames()
	allVals := make([][6]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		app := apps[i]
		tr := c.AppTrace(app, 0)
		ht := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		lru := runPolicy(tr, nil, nil, nil)
		sp := func(r *core.Result) float64 { return core.Speedup(lru, r) }

		var vals [6]float64
		for j, pf := range policyFactories() {
			vals[j] = sp(runPolicy(tr, pf.New, nil, nil))
		}
		vals[3] = sp(runPolicy(tr, thermNew, ht, nil))
		// 7979-entry variant: same storage, 2 bits spent per entry
		// (1994 sets × 4 ways), with hints profiled for that geometry.
		ht7979, _, err := profile.ProfileTrace(tr, 7979, cfg.BTBWays, profile.DefaultConfig())
		if err != nil {
			panic(err)
		}
		vals[4] = sp(runPolicy(tr, thermNew, ht7979, func(cc *core.Config) {
			cc.BTBSets = 7979 / cc.BTBWays
		}))
		vals[5] = sp(runPolicy(tr, optNew, nil, nil))
		allVals[i] = vals
	})
	var sums [6]float64
	var sumsNoVeri [6]float64
	for i, app := range apps {
		row := []string{app}
		for j, v := range allVals[i] {
			sums[j] += v
			if app != "verilator" {
				sumsNoVeri[j] += v
			}
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	n := float64(len(apps))
	row := []string{"Avg no verilator"}
	for _, s := range sumsNoVeri {
		row = append(row, pct(s/(n-1)))
	}
	t.AddRow(row...)
	row = []string{"Avg"}
	for _, s := range sums {
		row = append(row, pct(s/n))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes,
		"paper: Thermometer 8.7% avg (83.6% of OPT's 10.4%); prior best 1.5%")
	return []*Table{t}
}

// Fig12 — BTB miss reduction over LRU.
func Fig12(c *Context) []*Table {
	t := &Table{
		ID:     "fig12",
		Title:  "BTB miss reduction (%) over LRU",
		Header: []string{"app", "SRRIP", "GHRP", "Hawkeye", "Thermometer", "OPT"},
	}
	cfg := core.DefaultConfig()
	apps := workload.AppNames()
	allVals := make([][5]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		app := apps[i]
		tr := c.AppTrace(app, 0)
		acc := tr.AccessStream()
		ht := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		base := replay.Run(acc, replay.Options{Entries: cfg.BTBEntries, Ways: cfg.BTBWays, Policy: policy.NewLRU()})
		red := func(m uint64) float64 {
			return (float64(base.Stats.Misses) - float64(m)) / float64(base.Stats.Misses)
		}
		var vals [5]float64
		for j, pf := range policyFactories() {
			r := replay.Run(acc, replay.Options{Entries: cfg.BTBEntries, Ways: cfg.BTBWays, Policy: pf.New()})
			vals[j] = red(r.Stats.Misses)
		}
		th := replay.Run(acc, replay.Options{Entries: cfg.BTBEntries, Ways: cfg.BTBWays, Policy: policy.NewThermometer(), Hints: ht})
		vals[3] = red(th.Stats.Misses)
		opt := belady.Profile(acc, cfg.BTBEntries, cfg.BTBWays)
		vals[4] = red(opt.Misses)
		allVals[i] = vals
	})
	var sums [5]float64
	for i, app := range apps {
		row := []string{app}
		for j, v := range allVals[i] {
			sums[j] += v
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	n := float64(len(apps))
	row := []string{"Avg"}
	for _, s := range sums {
		row = append(row, pct(s/n))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes, "paper: Thermometer 21.3%, OPT 34%, prior best 6.7%")
	return []*Table{t}
}

// Fig13 — generalization across application inputs: speedup as a
// percentage of the OPT speedup for each test input, using the training
// input's profile vs the same input's profile.
func Fig13(c *Context) []*Table {
	t := &Table{
		ID:    "fig13",
		Title: "% of OPT speedup across inputs #1-#3 (training profile = input #0)",
		Header: []string{"app", "input", "SRRIP", "Therm-training-profile",
			"Therm-same-input-profile"},
	}
	cfg := core.DefaultConfig()
	apps := workload.AppNames()
	type cell struct {
		app   string
		input int
	}
	cells := make([]cell, 0, 3*len(apps))
	for _, app := range apps {
		for input := 1; input <= 3; input++ {
			cells = append(cells, cell{app, input})
		}
	}
	type outcome struct {
		ok                 bool
		srrip, train, same float64
	}
	outs := make([]outcome, len(cells))
	c.forEach(len(cells), func(i int) {
		app, input := cells[i].app, cells[i].input
		trainHints := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		tr := c.AppTrace(app, input)
		lru := runPolicy(tr, nil, nil, nil)
		opt := runPolicy(tr, optNew, nil, nil)
		den := core.Speedup(lru, opt)
		if den <= 0 {
			return
		}
		frac := func(r *core.Result) float64 { return core.Speedup(lru, r) / den }

		srrip := frac(runPolicy(tr, func() btb.Policy { return policy.NewSRRIP() }, nil, nil))
		train := frac(runPolicy(tr, thermNew, trainHints, nil))
		sameHints := c.Hints(app, input, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		same := frac(runPolicy(tr, thermNew, sameHints, nil))
		outs[i] = outcome{true, srrip, train, same}
	})
	var sums [3]float64
	count := 0
	for i, cl := range cells {
		o := outs[i]
		if !o.ok {
			continue
		}
		sums[0] += o.srrip
		sums[1] += o.train
		sums[2] += o.same
		count++
		t.AddRow(cl.app, "#"+string(rune('0'+cl.input)), pct(o.srrip), pct(o.train), pct(o.same))
	}
	if count > 0 {
		t.AddRow("Avg", "", pct(sums[0]/float64(count)), pct(sums[1]/float64(count)),
			pct(sums[2]/float64(count)))
	}
	t.Notes = append(t.Notes,
		"paper: training-input profiles retain most of the benefit (81% of branches keep their category)")
	return []*Table{t}
}

// Fig14 — wall-clock time of the offline optimal-policy simulation.
func Fig14(c *Context) []*Table {
	t := &Table{
		ID:     "fig14",
		Title:  "Offline OPT simulation time (seconds)",
		Header: []string{"app", "seconds", "accesses"},
	}
	cfg := core.DefaultConfig()
	total := 0.0
	// Serial by design: the table reports per-app wall-clock profiling
	// time, which concurrent runs sharing cores would inflate.
	for _, app := range workload.AppNames() {
		tr := c.AppTrace(app, 0)
		acc := tr.AccessStream()
		start := time.Now() //lint:allow noambient Table 4 measures real OPT profiling wall time, not simulated time
		belady.Profile(acc, cfg.BTBEntries, cfg.BTBWays)
		secs := time.Since(start).Seconds() //lint:allow noambient Table 4 measures real OPT profiling wall time, not simulated time
		total += secs
		t.AddRow(app, f2(secs), f2(float64(len(acc))/1e6)+"M")
	}
	t.AddRow("Avg", f2(total/float64(len(workload.AppNames()))), "")
	t.Notes = append(t.Notes,
		"paper: 4.18-167s on full production traces (23.53s avg); our synthetic traces are shorter, so the point is that cost scales linearly and stays in PGO territory")
	return []*Table{t}
}

// Fig15 — Thermometer replacement coverage: the fraction of replacement
// decisions where the temperature hint discriminated between candidates.
func Fig15(c *Context) []*Table {
	t := &Table{
		ID:     "fig15",
		Title:  "Thermometer replacement coverage (%)",
		Header: []string{"app", "coverage"},
	}
	cfg := core.DefaultConfig()
	apps := workload.AppNames()
	covs := make([]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		tr := c.AppTrace(apps[i], 0)
		ht := c.Hints(apps[i], 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		r := runPolicy(tr, thermNew, ht, nil)
		covs[i] = r.Policy.(*policy.Thermometer).Coverage()
	})
	sum := 0.0
	for i, app := range apps {
		sum += covs[i]
		t.AddRow(app, pct(covs[i]))
	}
	t.AddRow("Avg", pct(sum/float64(len(apps))))
	t.Notes = append(t.Notes, "paper: 61.4% average coverage")
	return []*Table{t}
}

// Fig16 — replacement accuracy of transient-only, holistic-only, and
// combined (Thermometer) policies: % of victims whose forward reuse
// distance is at least the associativity.
func Fig16(c *Context) []*Table {
	t := &Table{
		ID:     "fig16",
		Title:  "Replacement accuracy (%): transient vs holistic vs Thermometer",
		Header: []string{"app", "Transient", "Holistic", "Thermometer"},
	}
	cfg := core.DefaultConfig()
	apps := workload.AppNames()
	allVals := make([][3]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		tr := c.AppTrace(apps[i], 0)
		acc := tr.AccessStream()
		ht := c.Hints(apps[i], 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		run := func(p btb.Policy, hints *profile.HintTable) float64 {
			r := replay.Run(acc, replay.Options{
				Entries: cfg.BTBEntries, Ways: cfg.BTBWays,
				Policy: p, Hints: hints, RecordEvictions: true,
			})
			return replay.Accuracy(acc, r)
		}
		allVals[i] = [3]float64{
			run(policy.NewTransientOnly(), nil),
			run(policy.NewHolisticOnly(), ht),
			run(policy.NewThermometer(), ht),
		}
	})
	var sums [3]float64
	for i, app := range apps {
		row := []string{app}
		for j, v := range allVals[i] {
			sums[j] += v
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	n := float64(len(apps))
	t.AddRow("Avg", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes,
		"paper: transient 46.06%, holistic 63.72%, Thermometer 68.20% (OPT is 100% by construction)")
	return []*Table{t}
}
