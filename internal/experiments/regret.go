package experiments

import (
	"fmt"

	"thermometer/internal/attribution"
	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
)

func init() {
	Registry["regret"] = Regret
}

// Regret runs the attribution audit layer (package attribution) across
// policies and summarizes where each one loses against same-geometry Belady
// OPT — a decomposition the paper's aggregate MPKI numbers cannot show:
//
//   - the miss taxonomy (compulsory / capacity / conflict, classified
//     against an equal-capacity fully-associative Belady shadow);
//   - how often the policy's replacement decisions agree with OPT's choice
//     over the same residents;
//   - net regret: misses charged to evict-too-early decisions minus
//     windfall hits OPT would have given up, which equals the policy's miss
//     count minus OPT's exactly.
func Regret(c *Context) []*Table {
	t := &Table{
		ID:    "regret",
		Title: "Replacement regret vs OPT: miss taxonomy and decision audit",
		Header: []string{"app", "policy", "MPKI", "compulsory%", "capacity%",
			"conflict%", "OPT-agree%", "charged", "windfall", "net regret"},
	}
	cfg := core.DefaultConfig()
	apps := []string{"cassandra", "kafka", "mediawiki"}
	policies := []struct {
		name  string
		mk    func() btb.Policy
		hints bool
	}{
		{"LRU", func() btb.Policy { return policy.NewLRU() }, false},
		{"SRRIP", func() btb.Policy { return policy.NewSRRIP() }, false},
		{"Thermometer", func() btb.Policy { return policy.NewThermometer() }, true},
	}
	rows := make([][]string, len(apps)*len(policies))
	c.forEach(len(rows), func(i int) {
		app, p := apps[i/len(policies)], policies[i%len(policies)]
		tr := c.AppTrace(app, 0)
		ht := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
		att := attribution.New(attribution.Options{})
		hints := (*profile.HintTable)(nil)
		if p.hints {
			hints = ht
		}
		r := runPolicy(tr, p.mk, hints, func(c *core.Config) { c.Attribution = att })
		_, _, misses, regret := att.Counts()
		frac := func(n uint64) string {
			if misses.Total == 0 {
				return "0.00"
			}
			return pct(float64(n) / float64(misses.Total))
		}
		rows[i] = []string{app, p.name, f2(r.BTBMPKI()),
			frac(misses.Compulsory), frac(misses.Capacity), frac(misses.Conflict),
			pct(regret.AgreeRate),
			fmt.Sprintf("%d", regret.Charged),
			fmt.Sprintf("%d", regret.Windfall),
			fmt.Sprintf("%d", regret.Net)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"net regret = charged - windfall = policy misses - OPT misses (exact, per TestRegretConservation); compulsory/capacity/conflict partition the demand misses",
		"Thermometer narrows the regret gap primarily by agreeing with OPT on more decisions, not by shifting the miss taxonomy")
	return []*Table{t}
}
