package experiments

import (
	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
)

func init() {
	Registry["twolevel"] = TwoLevel
}

// TwoLevel validates the paper's §5 claim that multi-level/compressed BTB
// organizations are orthogonal to Thermometer: a 1K+8K two-level BTB still
// benefits from temperature-guided replacement at both levels, roughly as
// much as the monolithic 8K BTB does.
func TwoLevel(c *Context) []*Table {
	t := &Table{
		ID:    "twolevel",
		Title: "Two-level BTB (1K L1 + 8K L2): speedup (%) over each organization's LRU",
		Header: []string{"app", "mono-Therm", "mono-OPT", "2L-Therm", "2L-OPT",
			"2L-LRU vs mono-LRU"},
	}
	cfg := core.DefaultConfig()
	apps := []string{"cassandra", "mediawiki", "tomcat", "wordpress"}
	allVals := make([][5]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		app := apps[i]
		tr := c.AppTrace(app, 0)
		ht := c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())

		monoLRU := runPolicy(tr, nil, nil, nil)
		monoTherm := core.Speedup(monoLRU, runPolicy(tr, thermNew, ht, nil))
		monoOPT := core.Speedup(monoLRU, runPolicy(tr, optNew, nil, nil))

		twoLvl := func(cc *core.Config) { cc.TwoLevelBTB = core.DefaultTwoLevelBTB() }
		tlLRU := runPolicy(tr, func() btb.Policy { return policy.NewLRU() }, nil, twoLvl)
		tlTherm := core.Speedup(tlLRU, runPolicy(tr, thermNew, ht, twoLvl))
		tlOPT := core.Speedup(tlLRU, runPolicy(tr, optNew, nil, twoLvl))
		tlBase := core.Speedup(monoLRU, tlLRU)

		allVals[i] = [5]float64{monoTherm, monoOPT, tlTherm, tlOPT, tlBase}
	})
	var sums [5]float64
	for i, app := range apps {
		row := []string{app}
		for j, v := range allVals[i] {
			sums[j] += v
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	row := []string{"Avg"}
	for _, s := range sums {
		row = append(row, pct(s/float64(len(apps))))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes,
		"temperature hints keep paying off under a two-level organization (paper §5: orthogonal techniques)")
	return []*Table{t}
}
