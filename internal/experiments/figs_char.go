package experiments

import (
	"fmt"

	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/detmap"
	"thermometer/internal/metrics"
	"thermometer/internal/policy"
	"thermometer/internal/prefetch"
	"thermometer/internal/profile"
	"thermometer/internal/workload"
)

// Fig1 — speedup of state-of-the-art BTB replacement policies (and OPT)
// over the LRU baseline, per application.
func Fig1(c *Context) []*Table {
	t := &Table{
		ID:     "fig1",
		Title:  "Speedup (%) of SRRIP/GHRP/Hawkeye/OPT over LRU (with FDIP)",
		Header: []string{"app", "SRRIP", "GHRP", "Hawkeye", "OPT"},
	}
	apps := workload.AppNames()
	vals := make([][4]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		tr := c.AppTrace(apps[i], 0)
		lru := runPolicy(tr, nil, nil, nil)
		for j, pf := range policyFactories() {
			vals[i][j] = core.Speedup(lru, runPolicy(tr, pf.New, nil, nil))
		}
		opt := runPolicy(tr, func() btb.Policy { return policy.NewOPT() }, nil, nil)
		vals[i][3] = core.Speedup(lru, opt)
	})
	sums := make([]float64, 4)
	for i, app := range apps {
		row := []string{app}
		for j, sp := range vals[i] {
			sums[j] += sp
			row = append(row, pct(sp))
		}
		t.AddRow(row...)
	}
	n := float64(len(apps))
	t.AddRow("Avg", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n), pct(sums[3]/n))
	t.Notes = append(t.Notes, "paper: prior policies avg 1.5%, OPT avg 10.4%")
	return []*Table{t}
}

// Fig2 — limit study: perfect BTB vs perfect direction prediction vs
// perfect I-cache.
func Fig2(c *Context) []*Table {
	t := &Table{
		ID:     "fig2",
		Title:  "Limit study speedup (%) over the realistic baseline",
		Header: []string{"app", "Perfect-BTB", "Perfect-BP", "Perfect-I-Cache"},
	}
	apps := workload.AppNames()
	vals := make([][3]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		tr := c.AppTrace(apps[i], 0)
		base := runPolicy(tr, nil, nil, nil)
		for j, mut := range []func(*core.Config){
			func(cfg *core.Config) { cfg.PerfectBTB = true },
			func(cfg *core.Config) { cfg.PerfectBP = true },
			func(cfg *core.Config) { cfg.PerfectICache = true },
		} {
			vals[i][j] = core.Speedup(base, runPolicy(tr, nil, nil, mut))
		}
	})
	var sums [3]float64
	for i, app := range apps {
		row := []string{app}
		for j, sp := range vals[i] {
			sums[j] += sp
			row = append(row, pct(sp))
		}
		t.AddRow(row...)
	}
	n := float64(len(apps))
	t.AddRow("Avg", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes, "paper: perfect BTB 63.2%, perfect BP 11.3%, perfect I-cache 21.5%")
	return []*Table{t}
}

// Fig3 — L2 instruction misses per kilo-instruction per application.
func Fig3(c *Context) []*Table {
	t := &Table{
		ID:     "fig3",
		Title:  "L2 instruction MPKI (verilator is the outlier)",
		Header: []string{"app", "L2iMPKI"},
	}
	apps := workload.AppNames()
	mpki := make([]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		mpki[i] = runPolicy(c.AppTrace(apps[i], 0), nil, nil, nil).L2iMPKI
	})
	for i, app := range apps {
		t.AddRow(app, f2(mpki[i]))
	}
	t.Notes = append(t.Notes, "paper: verilator >= 300x the others (42 vs 0.01-1)")
	return []*Table{t}
}

// Fig4 — BTB prefetching (Confluence/Shotgun) with LRU and OPT replacement
// vs the perfect BTB.
func Fig4(c *Context) []*Table {
	t := &Table{
		ID:    "fig4",
		Title: "Speedup (%) of BTB prefetchers and OPT over LRU (no prefetch)",
		Header: []string{"app", "Confluence-LRU", "Shotgun-LRU", "OPT",
			"Confluence-OPT", "Shotgun-OPT", "Perfect-BTB"},
	}
	optNew := func() btb.Policy { return policy.NewOPT() }
	apps := workload.AppNames()
	vals := make([][6]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		tr := c.AppTrace(apps[i], 0)
		meta := core.BuildMeta(tr.AccessStream())
		base := runPolicy(tr, nil, nil, nil)
		sp := func(r *core.Result) float64 { return core.Speedup(base, r) }

		confLRU := runPolicy(tr, nil, nil, func(cfg *core.Config) {
			cfg.Prefetcher = prefetch.NewConfluence(meta)
		})
		shotLRU := runPolicy(tr, nil, nil, func(cfg *core.Config) {
			cfg.Prefetcher = prefetch.NewShotgun(meta)
			cfg.ShotgunPartition = true
		})
		opt := runPolicy(tr, optNew, nil, nil)
		confOPT := runPolicy(tr, optNew, nil, func(cfg *core.Config) {
			cfg.Prefetcher = prefetch.NewConfluence(meta)
		})
		shotOPT := runPolicy(tr, optNew, nil, func(cfg *core.Config) {
			cfg.Prefetcher = prefetch.NewShotgun(meta)
			cfg.ShotgunPartition = true
		})
		perf := runPolicy(tr, nil, nil, func(cfg *core.Config) { cfg.PerfectBTB = true })
		vals[i] = [6]float64{sp(confLRU), sp(shotLRU), sp(opt), sp(confOPT), sp(shotOPT), sp(perf)}
	})
	var sums [6]float64
	for i, app := range apps {
		row := []string{app}
		for j, v := range vals[i] {
			sums[j] += v
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	n := float64(len(apps))
	avg := []string{"Avg"}
	for _, s := range sums {
		avg = append(avg, pct(s/n))
	}
	t.AddRow(avg...)
	t.Notes = append(t.Notes,
		"paper: Confluence-LRU 1.4% mean, Shotgun-LRU slight slowdown, OPT 10.4%, Perfect-BTB 63.2%")
	return []*Table{t}
}

// Fig5 — average transient vs holistic reuse-distance variance.
func Fig5(c *Context) []*Table {
	t := &Table{
		ID:     "fig5",
		Title:  "Transient vs holistic reuse-distance variance (normalized)",
		Header: []string{"app", "transient", "holistic", "ratio"},
	}
	cfg := core.DefaultConfig()
	sets := cfg.BTBEntries / cfg.BTBWays
	apps := workload.AppNames()
	vars := make([]metrics.VarianceSummary, len(apps))
	c.forEach(len(apps), func(i int) {
		vars[i] = metrics.SummarizeVariance(c.AppTrace(apps[i], 0).AccessStream(), sets, 4)
	})
	var st, sh float64
	for i, app := range apps {
		v := vars[i]
		st += v.Transient
		sh += v.Holistic
		t.AddRow(app, f2(v.Transient), f2(v.Holistic), f2(v.Ratio()))
	}
	n := float64(len(apps))
	ratio := 0.0
	if sh > 0 {
		ratio = st / sh
	}
	t.AddRow("Avg", f2(st/n), f2(sh/n), f2(ratio))
	t.Notes = append(t.Notes, "paper: transient variance more than 2x holistic")
	return []*Table{t}
}

// fig67Apps are the applications the paper plots in Figs 6 and 7.
var fig67Apps = []string{"drupal", "kafka", "verilator"}

// Fig6 — distribution of hit-to-taken percentage under OPT, by decile of
// unique taken branches (sorted descending).
func Fig6(c *Context) []*Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Hit-to-taken (%) under OPT at each decile of unique branches",
		Header: append([]string{"% of branches"}, fig67Apps...),
	}
	cols := make([][]float64, len(fig67Apps))
	c.forEach(len(fig67Apps), func(i int) {
		res := beladyResult(c.AppTrace(fig67Apps[i], 0))
		sorted := res.SortedByTemperature()
		for d := 0; d <= 10; d++ {
			idx := d * (len(sorted) - 1) / 10
			cols[i] = append(cols[i], 100*sorted[idx].HitToTaken())
		}
	})
	for d := 0; d <= 10; d++ {
		row := []string{fmt.Sprintf("%d%%", d*10)}
		for i := range fig67Apps {
			row = append(row, f2(cols[i][d]/100))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: ~half of branches hot (>80%), ~20% cold (<=50%); verilator drops steeply")
	return []*Table{t}
}

// Fig7 — cumulative distribution of dynamic BTB accesses over the same
// temperature-sorted branch order.
func Fig7(c *Context) []*Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Dynamic execution CDF (%) at each decile of unique branches",
		Header: append([]string{"% of branches"}, fig67Apps...),
	}
	cols := make([][]float64, len(fig67Apps))
	c.forEach(len(fig67Apps), func(i int) {
		res := beladyResult(c.AppTrace(fig67Apps[i], 0))
		sorted := res.SortedByTemperature()
		weights := make([]float64, len(sorted))
		for j, b := range sorted {
			weights[j] = float64(b.Taken)
		}
		cdf := metrics.CDF(weights)
		for d := 0; d <= 10; d++ {
			idx := d * (len(cdf) - 1) / 10
			cols[i] = append(cols[i], 100*cdf[idx])
		}
	})
	for d := 0; d <= 10; d++ {
		row := []string{fmt.Sprintf("%d%%", d*10)}
		for i := range fig67Apps {
			row = append(row, f2(cols[i][d]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: hot branches account for >90% of dynamic accesses")
	return []*Table{t}
}

// Fig8 — correlation between branch properties and branch temperature.
func Fig8(c *Context) []*Table {
	t := &Table{
		ID:    "fig8",
		Title: "|Spearman| correlation of branch properties vs temperature",
		Header: []string{"app", "type", "target-distance", "bias",
			"avg-reuse-distance"},
	}
	cfg := core.DefaultConfig()
	sets := cfg.BTBEntries / cfg.BTBWays
	apps := workload.AppNames()
	rows := make([][4]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		tr := c.AppTrace(apps[i], 0)
		res := beladyResult(tr)
		stats := tr.StaticBranches()
		reuse := metrics.ReuseSequences(tr.AccessStream(), sets)

		var temp, typ, dist, bias, avgReuse []float64
		for _, pc := range detmap.SortedKeys(res.PerBranch) {
			b := res.PerBranch[pc]
			s := stats[pc]
			if s == nil {
				continue
			}
			seq := reuse[pc]
			if len(seq) < 2 {
				continue
			}
			temp = append(temp, b.HitToTaken())
			typ = append(typ, float64(b.Type))
			dist = append(dist, s.TargetDistance)
			bias = append(bias, s.Bias())
			avgReuse = append(avgReuse, metrics.Mean(seq))
		}
		rows[i] = [4]float64{
			metrics.SpearmanAbs(typ, temp),
			metrics.SpearmanAbs(dist, temp),
			metrics.SpearmanAbs(bias, temp),
			metrics.SpearmanAbs(avgReuse, temp),
		}
	})
	for i, app := range apps {
		t.AddRow(app, f2(rows[i][0]), f2(rows[i][1]), f2(rows[i][2]), f2(rows[i][3]))
	}
	t.Notes = append(t.Notes,
		"paper: holistic (avg) reuse distance strongly correlates with temperature; type/distance/bias do not")
	return []*Table{t}
}

// Fig9 — bypass ratio (% of misses not inserted by OPT) per temperature
// category.
func Fig9(c *Context) []*Table {
	t := &Table{
		ID:     "fig9",
		Title:  "OPT bypass ratio (%) by temperature category",
		Header: []string{"app", "cold", "warm", "hot"},
	}
	pcfg := profile.DefaultConfig()
	apps := workload.AppNames()
	vals := make([][3]float64, len(apps))
	c.forEach(len(apps), func(i int) {
		res := beladyResult(c.AppTrace(apps[i], 0))
		var byp, miss [3]float64
		for _, pc := range detmap.SortedKeys(res.PerBranch) {
			b := res.PerBranch[pc]
			cat := pcfg.Categorize(b.HitToTaken())
			byp[cat] += float64(b.Bypasses)
			miss[cat] += float64(b.Bypasses + b.Inserts)
		}
		for j := 0; j < 3; j++ {
			if miss[j] > 0 {
				vals[i][j] = byp[j] / miss[j]
			}
		}
	})
	var sums [3]float64
	for i, app := range apps {
		row := []string{app}
		for j, v := range vals[i] {
			sums[j] += v
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	n := float64(len(apps))
	t.AddRow("Avg", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes,
		"paper: cold branches bypassed in >50% of cases; hot branches almost always inserted")
	return []*Table{t}
}
