package experiments

import (
	"fmt"

	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/hintqual"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/telemetry"
	"thermometer/internal/trace"
)

func init() {
	Registry["hintqual"] = HintQualFig
}

// hintQualWindow is the drift-window width (retired instructions) for the
// hint-quality figure; it matches the runner's hintqual epoch interval so
// daemon jobs and this figure report comparable drift counts.
const hintQualWindow = 20000

// HintQualFig runs the hint-quality audit (package hintqual) over three
// freshness grades of Thermometer hint table per application — profiled from
// the same input the run executes, from a different input of the same
// application, and from a stale (heavily truncated) capture of the same
// input — and sets the measured hint accuracy against the measured speedup
// over LRU. This is the quantitative version of the paper's claim that
// profile-guided hints transfer across inputs: accuracy should degrade
// same-input → cross-input → stale, and speedup should degrade in the same
// order, so the audit's live score is a usable proxy for re-profiling need.
func HintQualFig(c *Context) []*Table {
	t := &Table{
		ID:    "hintqual",
		Title: "Hint quality vs speedup: same-input, cross-input, and stale profiles",
		Header: []string{"app", "profile", "coverage%", "accuracy%",
			"over", "under", "drift", "speedup%"},
	}
	cfg := core.DefaultConfig()
	apps := []string{"cassandra", "kafka", "mediawiki"}
	const variants = 3
	rows := make([][]string, len(apps)*variants)
	c.forEach(len(apps), func(i int) {
		app := apps[i]
		tr := c.AppTrace(app, 0)
		lru := runPolicy(tr, nil, nil, nil)
		grades := []struct {
			name string
			ht   *profile.HintTable
		}{
			{"same-input", c.Hints(app, 0, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())},
			{"cross-input", c.Hints(app, 1, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())},
			{"stale", staleHints(tr, cfg.BTBEntries, cfg.BTBWays)},
		}
		for v, g := range grades {
			hq := hintqual.New(hintqual.Options{})
			r := runPolicy(tr, func() btb.Policy { return policy.NewThermometer() }, g.ht,
				func(cc *core.Config) {
					cc.HintQual = hq
					// The observer supplies the epoch grid drift windows
					// close on; the audit itself never perturbs the run.
					cc.Observer = telemetry.New(telemetry.Options{EpochInterval: hintQualWindow})
				})
			s := hq.Summary()
			rows[i*variants+v] = []string{app, g.name,
				pct(s.CoverageAccesses), pct(s.AccuracyBranches),
				fmt.Sprintf("%d", s.OverPredicted), fmt.Sprintf("%d", s.UnderPredicted),
				fmt.Sprintf("%d/%d", s.DriftEpochs, s.Windows),
				pct(core.Speedup(lru, r))}
		}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"accuracy% is the fraction of profiled branches whose observed Belady temperature lands in the profiled bucket; over/under count branches profiled hotter/colder than observed",
		"drift is flagged windows over closed windows (windowed L1 between the hinted and observed temperature distributions exceeding the recorder threshold)",
		"the accuracy ordering same-input > stale tracks the speedup ordering (pinned by TestHintQualFigOrdering): the live audit score predicts when a profile needs refreshing")
	return []*Table{t}
}

// staleHints profiles the first tenth of a trace at the given geometry,
// modeling a profile captured long before the measured run (the workload's
// steady state never entered the capture).
func staleHints(tr *trace.Trace, entries, ways int) *profile.HintTable {
	stale := &trace.Trace{Name: tr.Name + "-stale", Records: tr.Records[:len(tr.Records)/10]}
	ht, _, err := profile.ProfileTrace(stale, entries, ways, profile.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return ht
}
