package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"thermometer/internal/profile"
)

// quickCtx returns a context small enough for unit tests.
func quickCtx() *Context {
	c := NewContext(4) // 100K-record traces
	c.CBP5Traces = 6
	c.IPC1Traces = 3
	return c
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "ablations",
		"hintqual", "regret", "twolevel"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for _, id := range want {
		if Registry[id] == nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	ids := IDs()
	if ids[0] != "table1" || ids[1] != "fig1" || ids[len(ids)-1] != "twolevel" {
		t.Fatalf("IDs order wrong: %v", ids)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in %q", want, out)
		}
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "va|ue")
	var buf bytes.Buffer
	tab.RenderMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"### x: T", "| a | bb |", "|---|---|", `| 1 | va\|ue |`, "_n_"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown render missing %q in %q", want, out)
		}
	}
}

func TestTableOne(t *testing.T) {
	tabs := TableOne(quickCtx())
	if len(tabs) != 1 || len(tabs[0].Rows) != 3 {
		t.Fatalf("table1 = %+v", tabs)
	}
}

func TestContextCaching(t *testing.T) {
	c := quickCtx()
	a := c.AppTrace("kafka", 0)
	b := c.AppTrace("kafka", 0)
	if a != b {
		t.Fatal("trace not cached")
	}
	h1 := c.Hints("kafka", 0, 8192, 4, profile.DefaultConfig())
	h2 := c.Hints("kafka", 0, 8192, 4, profile.DefaultConfig())
	if h1 != h2 {
		t.Fatal("hints not cached")
	}
}

func TestFig1Shape(t *testing.T) {
	tabs := Fig1(quickCtx())
	tab := tabs[0]
	if len(tab.Rows) != 14 { // 13 apps + Avg
		t.Fatalf("fig1 rows = %d", len(tab.Rows))
	}
	avg := tab.Rows[13]
	if avg[0] != "Avg" {
		t.Fatal("no Avg row")
	}
	srrip, opt := parsePct(t, avg[1]), parsePct(t, avg[4])
	if opt <= srrip {
		t.Fatalf("OPT avg %v <= SRRIP avg %v", opt, srrip)
	}
	if opt <= 1 {
		t.Fatalf("OPT avg %v implausibly small", opt)
	}
}

func TestFig2Ordering(t *testing.T) {
	tabs := Fig2(quickCtx())
	avg := tabs[0].Rows[len(tabs[0].Rows)-1]
	btb, bp, ic := parsePct(t, avg[1]), parsePct(t, avg[2]), parsePct(t, avg[3])
	if btb <= ic {
		t.Fatalf("Perfect-BTB %v <= Perfect-IC %v (paper ordering violated)", btb, ic)
	}
	if btb <= bp {
		t.Fatalf("Perfect-BTB %v <= Perfect-BP %v", btb, bp)
	}
}

func TestFig3VerilatorOutlier(t *testing.T) {
	tabs := Fig3(quickCtx())
	vals := map[string]float64{}
	for _, row := range tabs[0].Rows {
		vals[row[0]] = parsePct(t, row[1]) // plain MPKI column
	}
	if vals["verilator"] < 4*vals["cassandra"] {
		t.Fatalf("verilator L2iMPKI %v not an outlier vs cassandra %v",
			vals["verilator"], vals["cassandra"])
	}
}

func TestFig5TransientLarger(t *testing.T) {
	tabs := Fig5(quickCtx())
	avg := tabs[0].Rows[len(tabs[0].Rows)-1]
	ratio := parsePct(t, avg[3]) // plain ratio column
	if ratio < 1.2 {
		t.Fatalf("avg variance ratio %v < 1.2", ratio)
	}
}

func TestFig6Monotone(t *testing.T) {
	tabs := Fig6(quickCtx())
	rows := tabs[0].Rows
	prev := 101.0
	for _, row := range rows {
		v := parsePct(t, row[1]) // drupal column (f2 of fraction*100... check)
		if v > prev+1e-9 {
			t.Fatalf("hit-to-taken not descending: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestFig9HotInserted(t *testing.T) {
	tabs := Fig9(quickCtx())
	avg := tabs[0].Rows[len(tabs[0].Rows)-1]
	cold, hot := parsePct(t, avg[1]), parsePct(t, avg[3])
	if cold <= hot {
		t.Fatalf("cold bypass %v <= hot bypass %v", cold, hot)
	}
}

func TestFig11ThermometerBetween(t *testing.T) {
	tabs := Fig11(quickCtx())
	avg := tabs[0].Rows[len(tabs[0].Rows)-1]
	srrip := parsePct(t, avg[1])
	therm := parsePct(t, avg[4])
	opt := parsePct(t, avg[6])
	if !(srrip < therm && therm < opt) {
		t.Fatalf("ordering violated: SRRIP %v, Therm %v, OPT %v", srrip, therm, opt)
	}
	if therm/opt < 0.3 {
		t.Fatalf("Thermometer fraction of OPT %v too small", therm/opt)
	}
}

func TestFig12MissReductions(t *testing.T) {
	tabs := Fig12(quickCtx())
	avg := tabs[0].Rows[len(tabs[0].Rows)-1]
	therm, opt := parsePct(t, avg[4]), parsePct(t, avg[5])
	if therm <= 0 || opt <= therm {
		t.Fatalf("miss reductions wrong: therm %v opt %v", therm, opt)
	}
}

func TestFig16AccuracyOrdering(t *testing.T) {
	tabs := Fig16(quickCtx())
	avg := tabs[0].Rows[len(tabs[0].Rows)-1]
	tr, ho, th := parsePct(t, avg[1]), parsePct(t, avg[2]), parsePct(t, avg[3])
	if !(tr < th && ho <= th+5) {
		t.Fatalf("accuracy ordering unexpected: transient %v holistic %v therm %v", tr, ho, th)
	}
}

func TestFig17RunsSubset(t *testing.T) {
	c := quickCtx()
	tabs := Fig17(c)
	if len(tabs[0].Rows) < 8 {
		t.Fatalf("fig17 rows = %d", len(tabs[0].Rows))
	}
}

func TestFig18RunsSubset(t *testing.T) {
	tabs := Fig18(quickCtx())
	if len(tabs[0].Rows) < 2 {
		t.Fatalf("fig18 rows = %d", len(tabs[0].Rows))
	}
}

func TestCrossValidateThresholdsValid(t *testing.T) {
	c := quickCtx()
	tr := c.AppTrace("python", 0)
	cfg, err := profile.CrossValidateThresholds(tr.AccessStream(), 1024, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("cross-validated config invalid: %v", err)
	}
}

// TestRemainingExperimentsSmoke runs the heavyweight experiments at a tiny
// scale, checking structure only (values are validated at full scale by
// cmd/paperfigs and the figure-specific tests above).
func TestRemainingExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow smoke test")
	}
	c := NewContext(16)
	c.CBP5Traces = 2
	c.IPC1Traces = 2
	cases := map[string]int{ // id -> minimum total rows
		"fig4":      14,
		"fig6":      11,
		"fig7":      11,
		"fig8":      13,
		"fig13":     10,
		"fig14":     14,
		"fig19":     12,
		"fig20":     9,
		"fig21":     14,
		"ablations": 5,
		"regret":    9,
		"twolevel":  5,
	}
	for id, minRows := range cases {
		tables := Registry[id](c)
		rows := 0
		for _, tab := range tables {
			rows += len(tab.Rows)
			if len(tab.Header) < 2 {
				t.Errorf("%s: header too small", id)
			}
			for _, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Errorf("%s: ragged row %v", id, r)
				}
			}
		}
		if rows < minRows {
			t.Errorf("%s: %d rows, want >= %d", id, rows, minRows)
		}
	}
}

// TestHintQualFigOrdering pins the hintqual figure's acceptance property:
// the measured hint accuracy and the measured speedup over LRU degrade in
// the same order across profile freshness grades — same-input, cross-input,
// stale — for every application, so the audit's live score ranks hint
// tables the way their performance does.
func TestHintQualFigOrdering(t *testing.T) {
	tabs := HintQualFig(quickCtx())
	if len(tabs) != 1 {
		t.Fatalf("hintqual returned %d tables, want 1", len(tabs))
	}
	tab := tabs[0]
	if len(tab.Rows)%3 != 0 || len(tab.Rows) == 0 {
		t.Fatalf("hintqual rows = %d, want a positive multiple of 3", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 3 {
		same, cross, stale := tab.Rows[i], tab.Rows[i+1], tab.Rows[i+2]
		app := same[0]
		if same[1] != "same-input" || cross[1] != "cross-input" || stale[1] != "stale" {
			t.Fatalf("%s: grade order %q %q %q", app, same[1], cross[1], stale[1])
		}
		acc := func(r []string) float64 { return parsePct(t, r[3]) }
		spd := func(r []string) float64 { return parsePct(t, r[7]) }
		if !(acc(same) > acc(cross) && acc(cross) > acc(stale)) {
			t.Errorf("%s: accuracy not monotone: %.2f / %.2f / %.2f",
				app, acc(same), acc(cross), acc(stale))
		}
		if !(spd(same) > spd(cross) && spd(cross) > spd(stale)) {
			t.Errorf("%s: speedup not monotone: %.2f / %.2f / %.2f",
				app, spd(same), spd(cross), spd(stale))
		}
		if parsePct(t, same[2]) != 100.0 {
			t.Errorf("%s: same-input coverage %.2f%%, want 100%%", app, parsePct(t, same[2]))
		}
	}
}
