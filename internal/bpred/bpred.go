// Package bpred implements conditional branch direction predictors for the
// frontend model: a bimodal table, gshare, and a TAGE predictor sized to
// approximate the 64KB TAGE-SC-L of the paper's Table 1. The simulator only
// needs realistic *misprediction rates*, so the statistical-corrector and
// loop-predictor stages of full TAGE-SC-L are omitted (documented
// substitution in DESIGN.md).
package bpred

import "thermometer/internal/xrand"

// Predictor is a conditional-branch direction predictor. The caller must
// invoke Update exactly once after each Predict for the same branch, in
// program order.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict returns the predicted direction for the conditional branch
	// at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
}

// Bimodal is a PC-indexed table of 2-bit saturating counters.
type Bimodal struct {
	ctr  []uint8
	mask uint64
}

// NewBimodal returns a bimodal predictor with 2^logSize counters.
func NewBimodal(logSize int) *Bimodal {
	return &Bimodal{ctr: make([]uint8, 1<<logSize), mask: 1<<logSize - 1}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) idx(pc uint64) uint64 { return (pc >> 1) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.ctr[b.idx(pc)] >= 2 }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.idx(pc)
	if taken {
		if b.ctr[i] < 3 {
			b.ctr[i]++
		}
	} else if b.ctr[i] > 0 {
		b.ctr[i]--
	}
}

// Gshare XORs global history into the table index.
type Gshare struct {
	ctr     []uint8
	mask    uint64
	history uint64
	bits    uint
}

// NewGshare returns a gshare predictor with 2^logSize counters and logSize
// bits of global history.
func NewGshare(logSize int) *Gshare {
	return &Gshare{ctr: make([]uint8, 1<<logSize), mask: 1<<logSize - 1, bits: uint(logSize)}
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) idx(pc uint64) uint64 { return ((pc >> 1) ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.ctr[g.idx(pc)] >= 2 }

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.idx(pc)
	if taken {
		if g.ctr[i] < 3 {
			g.ctr[i]++
		}
	} else if g.ctr[i] > 0 {
		g.ctr[i]--
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Oracle is the perfect direction predictor used in limit studies (Fig 2).
// The simulator primes it with the resolved outcome before Predict.
type Oracle struct{ next bool }

// NewOracle returns a perfect predictor.
func NewOracle() *Oracle { return &Oracle{} }

// Name implements Predictor.
func (o *Oracle) Name() string { return "perfect" }

// SetOutcome primes the oracle with the branch's actual direction.
func (o *Oracle) SetOutcome(taken bool) { o.next = taken }

// Predict implements Predictor.
func (o *Oracle) Predict(uint64) bool { return o.next }

// Update implements Predictor.
func (o *Oracle) Update(uint64, bool) {}

var _ Predictor = (*Bimodal)(nil)
var _ Predictor = (*Gshare)(nil)
var _ Predictor = (*Oracle)(nil)
var _ = xrand.Mix64 // used by tage.go in this package
