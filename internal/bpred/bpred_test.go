package bpred

import (
	"testing"

	"thermometer/internal/xrand"
)

// run feeds a (pc, outcome) stream and returns the accuracy.
func run(p Predictor, seq []struct {
	pc    uint64
	taken bool
}) float64 {
	correct := 0
	for _, s := range seq {
		if p.Predict(s.pc) == s.taken {
			correct++
		}
		p.Update(s.pc, s.taken)
	}
	return float64(correct) / float64(len(seq))
}

type ev = struct {
	pc    uint64
	taken bool
}

func biasedSeq(r *xrand.RNG, n int) []ev {
	// 64 branches with strong static biases.
	bias := make([]float64, 64)
	for i := range bias {
		if r.Bool(0.5) {
			bias[i] = 0.95
		} else {
			bias[i] = 0.05
		}
	}
	seq := make([]ev, n)
	for i := range seq {
		b := r.Intn(64)
		seq[i] = ev{pc: uint64(b*8 + 0x1000), taken: r.Bool(bias[b])}
	}
	return seq
}

func patternSeq(n int) []ev {
	// One branch with period-3 pattern T T N — bimodal can't learn it,
	// history-based predictors can.
	seq := make([]ev, n)
	for i := range seq {
		seq[i] = ev{pc: 0x2000, taken: i%3 != 2}
	}
	return seq
}

func correlatedSeq(r *xrand.RNG, n int) []ev {
	// Branch B's outcome equals branch A's previous outcome: pure global
	// history correlation.
	seq := make([]ev, 0, n)
	prevA := false
	for len(seq) < n {
		a := r.Bool(0.5)
		seq = append(seq, ev{pc: 0x3000, taken: a})
		seq = append(seq, ev{pc: 0x3008, taken: prevA})
		prevA = a
	}
	return seq[:n]
}

func TestBimodalLearnsBias(t *testing.T) {
	r := xrand.New(1)
	acc := run(NewBimodal(12), biasedSeq(r, 20000))
	if acc < 0.90 {
		t.Fatalf("bimodal accuracy on biased branches = %v, want >= 0.90", acc)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	bi := run(NewBimodal(12), patternSeq(9000))
	gs := run(NewGshare(14), patternSeq(9000))
	if gs < 0.95 {
		t.Fatalf("gshare pattern accuracy = %v, want >= 0.95", gs)
	}
	if gs <= bi {
		t.Fatalf("gshare %v <= bimodal %v on pattern", gs, bi)
	}
}

func TestTAGELearnsPattern(t *testing.T) {
	acc := run(NewTAGE(), patternSeq(9000))
	if acc < 0.95 {
		t.Fatalf("TAGE pattern accuracy = %v, want >= 0.95", acc)
	}
}

func TestTAGELearnsCorrelation(t *testing.T) {
	r := xrand.New(2)
	seq := correlatedSeq(r, 30000)
	bi := run(NewBimodal(12), seq)
	tg := run(NewTAGE(), seq)
	// Half the stream (branch A) is a fair coin, so the theoretical
	// ceiling is 75%: B is fully determined by history, A is random.
	if tg < 0.72 {
		t.Fatalf("TAGE correlated accuracy = %v, want >= 0.72 (ceiling 0.75)", tg)
	}
	if tg <= bi+0.15 {
		t.Fatalf("TAGE %v not clearly above bimodal %v on correlated stream", tg, bi)
	}
}

func TestTAGEBeatsGshareOnMixedWorkload(t *testing.T) {
	r := xrand.New(3)
	var seq []ev
	seq = append(seq, biasedSeq(r, 20000)...)
	seq = append(seq, correlatedSeq(r, 20000)...)
	seq = append(seq, patternSeq(20000)...)
	gs := run(NewGshare(14), append([]ev(nil), seq...))
	tg := run(NewTAGE(), append([]ev(nil), seq...))
	if tg < gs {
		t.Fatalf("TAGE %v < gshare %v on mixed workload", tg, gs)
	}
}

func TestTAGEMispredictRate(t *testing.T) {
	p := NewTAGE()
	r := xrand.New(4)
	for _, s := range biasedSeq(r, 5000) {
		p.Predict(s.pc)
		p.Update(s.pc, s.taken)
	}
	if p.Lookups != 5000 {
		t.Fatalf("lookups = %d", p.Lookups)
	}
	if rate := p.MispredictRate(); rate <= 0 || rate >= 0.5 {
		t.Fatalf("mispredict rate = %v", rate)
	}
	if (&TAGE{}).MispredictRate() != 0 {
		t.Fatal("empty rate not 0")
	}
}

func TestOracle(t *testing.T) {
	o := NewOracle()
	o.SetOutcome(true)
	if !o.Predict(1) {
		t.Fatal("oracle wrong")
	}
	o.SetOutcome(false)
	if o.Predict(1) {
		t.Fatal("oracle wrong")
	}
	if o.Name() != "perfect" {
		t.Fatal("name")
	}
}

func TestPredictorNames(t *testing.T) {
	if NewBimodal(4).Name() != "bimodal" || NewGshare(4).Name() != "gshare" || NewTAGE().Name() != "tage" {
		t.Fatal("names wrong")
	}
}

func TestPerceptronLearnsBias(t *testing.T) {
	r := xrand.New(21)
	acc := run(NewPerceptron(12, 32), biasedSeq(r, 20000))
	if acc < 0.90 {
		t.Fatalf("perceptron biased accuracy = %v, want >= 0.90", acc)
	}
}

func TestPerceptronLearnsPattern(t *testing.T) {
	acc := run(NewPerceptron(12, 32), patternSeq(9000))
	if acc < 0.95 {
		t.Fatalf("perceptron pattern accuracy = %v, want >= 0.95", acc)
	}
}

func TestPerceptronLearnsCorrelation(t *testing.T) {
	r := xrand.New(22)
	seq := correlatedSeq(r, 30000)
	acc := run(NewPerceptron(12, 32), seq)
	// Theoretical ceiling 0.75 (half the stream is a fair coin).
	if acc < 0.70 {
		t.Fatalf("perceptron correlated accuracy = %v, want >= 0.70", acc)
	}
}

func TestPerceptronGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	NewPerceptron(0, 32)
}

func TestPerceptronMispredictRate(t *testing.T) {
	p := NewPerceptron(10, 16)
	r := xrand.New(23)
	for _, s := range biasedSeq(r, 3000) {
		p.Predict(s.pc)
		p.Update(s.pc, s.taken)
	}
	if p.Lookups != 3000 {
		t.Fatalf("lookups = %d", p.Lookups)
	}
	if rate := p.MispredictRate(); rate <= 0 || rate > 0.5 {
		t.Fatalf("rate = %v", rate)
	}
	if (&Perceptron{}).MispredictRate() != 0 {
		t.Fatal("empty rate")
	}
}
