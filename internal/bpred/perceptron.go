package bpred

// Perceptron implements Jiménez & Lin's perceptron branch predictor: each
// branch hashes to a weight vector; the prediction is the sign of the dot
// product of the weights with the global history (±1 per bit), trained on
// mispredictions or low-confidence correct predictions. It complements
// TAGE in the roster as the other major learning-based direction predictor
// family and is exercised by the simulator's NewPredictor hook.
type Perceptron struct {
	weights [][]int8
	history []int8 // ±1 per recent outcome
	hLen    int
	theta   int32

	// Prediction bookkeeping between Predict and Update.
	lastIdx uint64
	lastSum int32

	Lookups     uint64
	Mispredicts uint64
}

// NewPerceptron returns a perceptron predictor with 2^logTables weight
// vectors over histLen history bits.
func NewPerceptron(logTables, histLen int) *Perceptron {
	if logTables < 1 || logTables > 20 || histLen < 1 || histLen > 256 {
		panic("bpred: perceptron geometry out of range")
	}
	p := &Perceptron{
		weights: make([][]int8, 1<<logTables),
		history: make([]int8, histLen),
		hLen:    histLen,
		// The classic threshold: ⌊1.93·h + 14⌋.
		theta: int32(1.93*float64(histLen) + 14),
	}
	for i := range p.weights {
		p.weights[i] = make([]int8, histLen+1) // +1 bias weight
	}
	for i := range p.history {
		p.history[i] = 1
	}
	return p
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return "perceptron" }

func (p *Perceptron) index(pc uint64) uint64 {
	return (pc >> 1) % uint64(len(p.weights))
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool {
	p.Lookups++
	i := p.index(pc)
	w := p.weights[i]
	sum := int32(w[0]) // bias
	for j := 0; j < p.hLen; j++ {
		sum += int32(w[j+1]) * int32(p.history[j])
	}
	p.lastIdx = i
	p.lastSum = sum
	return sum >= 0
}

// Update implements Predictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	predicted := p.lastSum >= 0
	if predicted != taken {
		p.Mispredicts++
	}
	t := int8(-1)
	if taken {
		t = 1
	}
	// Train on mispredictions and low-confidence predictions.
	if predicted != taken || abs32(p.lastSum) <= p.theta {
		w := p.weights[p.lastIdx]
		bump(&w[0], t)
		for j := 0; j < p.hLen; j++ {
			if p.history[j] == t {
				bump(&w[j+1], 1)
			} else {
				bump(&w[j+1], -1)
			}
		}
	}
	// Shift history.
	copy(p.history[1:], p.history[:p.hLen-1])
	p.history[0] = t
}

// MispredictRate returns mispredictions per lookup.
func (p *Perceptron) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

func bump(w *int8, d int8) {
	v := int16(*w) + int16(d)
	if v > 127 {
		v = 127
	}
	if v < -128 {
		v = -128
	}
	*w = int8(v)
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

var _ Predictor = (*Perceptron)(nil)
