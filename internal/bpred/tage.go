package bpred

import "thermometer/internal/xrand"

// TAGE is a TAgged GEometric-history-length predictor (Seznec), the
// workhorse of modern direction prediction and the core of the TAGE-SC-L
// configuration in Table 1. A bimodal base table provides the default
// prediction; tagged components indexed with geometrically growing history
// lengths override it when a tag matches. On a misprediction, a longer-
// history entry is allocated; `useful` counters protect entries that have
// provided correct predictions.
type TAGE struct {
	base *Bimodal

	comps []tageComp
	// Folded global history (one folding per component for index and tag).
	ghist []uint8 // circular raw history bits
	hpos  int

	// Allocation randomness (deterministic stream).
	rng *xrand.RNG

	// Prediction bookkeeping between Predict and Update.
	provider  int // component index providing the prediction (-1 = base)
	altPred   bool
	predIdx   []uint64
	predTag   []uint64
	predTaken bool

	// useAltOnNewlyAlloc biases toward the alternate prediction when the
	// provider entry is freshly allocated (standard TAGE refinement).
	useAlt int8

	// Statistics.
	Lookups     uint64
	Mispredicts uint64
}

type tageComp struct {
	histLen int
	logSize int
	tagBits int
	entries []tageEntry

	idxFold  foldedHistory
	tagFold  foldedHistory
	tagFold2 foldedHistory
}

// tageEntry is laid out tag-first so the struct packs into 4 bytes (the
// natural field order pads to 6): the tables are scanned every lookup, and
// a third less table footprint is measurable.
type tageEntry struct {
	tag    uint16
	ctr    int8  // 3-bit signed counter [-4, 3]; >= 0 predicts taken
	useful uint8 // 2-bit
}

// foldedHistory compresses the most recent histLen bits of history into
// bits output bits, updated incrementally in O(1) per branch. The shift at
// which the oldest bit falls out (histLen mod bits) and the output mask are
// precomputed: update runs 24 times per branch (8 components × 3 folds), so
// per-call divisions are measurable.
type foldedHistory struct {
	value    uint64
	bits     uint
	outShift uint   // histLen % bits
	mask     uint64 // 1<<bits - 1
}

func newFoldedHistory(histLen, bits int) foldedHistory {
	return foldedHistory{
		bits:     uint(bits),
		outShift: uint(histLen % bits),
		mask:     1<<uint(bits) - 1,
	}
}

func (f *foldedHistory) update(newBit, oldest uint8) {
	// Insert the new bit, remove the bit that falls off the end.
	f.value = (f.value << 1) | uint64(newBit)
	f.value ^= uint64(oldest) << f.outShift
	f.value ^= f.value >> f.bits
	f.value &= f.mask
}

// DefaultTAGEConfig returns component geometry approximating a 64KB budget:
// 8 tagged components with history lengths 4..160.
func defaultTAGEComps() []tageComp {
	histLens := []int{4, 8, 14, 24, 40, 64, 101, 160}
	comps := make([]tageComp, len(histLens))
	for i, h := range histLens {
		comps[i] = tageComp{histLen: h, logSize: 11, tagBits: 9 + i/2}
	}
	return comps
}

// NewTAGE returns a TAGE predictor with the default (Table 1-scale)
// configuration.
func NewTAGE() *TAGE {
	t := &TAGE{
		base:  NewBimodal(14),
		comps: defaultTAGEComps(),
		ghist: make([]uint8, 1024),
		rng:   xrand.New(0x7A6E),
	}
	for i := range t.comps {
		c := &t.comps[i]
		c.entries = make([]tageEntry, 1<<c.logSize)
		c.idxFold = newFoldedHistory(c.histLen, c.logSize)
		c.tagFold = newFoldedHistory(c.histLen, c.tagBits)
		c.tagFold2 = newFoldedHistory(c.histLen, c.tagBits-1)
	}
	t.predIdx = make([]uint64, len(t.comps))
	t.predTag = make([]uint64, len(t.comps))
	return t
}

// Name implements Predictor.
func (t *TAGE) Name() string { return "tage" }

func (t *TAGE) index(pc uint64, c *tageComp) uint64 {
	h := (pc >> 1) ^ (pc >> uint(c.logSize+1)) ^ c.idxFold.value
	return h & (1<<c.logSize - 1)
}

func (t *TAGE) tag(pc uint64, c *tageComp) uint64 {
	h := (pc >> 1) ^ c.tagFold.value ^ (c.tagFold2.value << 1)
	return h & (1<<c.tagBits - 1)
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint64) bool {
	t.Lookups++
	t.provider = -1
	alt := -1
	for i := range t.comps {
		c := &t.comps[i]
		t.predIdx[i] = t.index(pc, c)
		t.predTag[i] = t.tag(pc, c)
		if c.entries[t.predIdx[i]].tag == uint16(t.predTag[i]) {
			alt = t.provider
			t.provider = i
		}
	}
	basePred := t.base.Predict(pc)
	t.altPred = basePred
	if alt >= 0 {
		t.altPred = t.comps[alt].entries[t.predIdx[alt]].ctr >= 0
	}
	if t.provider >= 0 {
		e := &t.comps[t.provider].entries[t.predIdx[t.provider]]
		// Weak, never-useful entries defer to the alternate prediction
		// when the use-alt counter suggests so.
		if t.useAlt >= 0 && e.useful == 0 && (e.ctr == 0 || e.ctr == -1) {
			t.predTaken = t.altPred
		} else {
			t.predTaken = e.ctr >= 0
		}
	} else {
		t.predTaken = basePred
	}
	return t.predTaken
}

// Update implements Predictor.
func (t *TAGE) Update(pc uint64, taken bool) {
	correct := t.predTaken == taken
	if !correct {
		t.Mispredicts++
	}

	if t.provider >= 0 {
		e := &t.comps[t.provider].entries[t.predIdx[t.provider]]
		providerPred := e.ctr >= 0
		// Track whether deferring to alt would have helped.
		if e.useful == 0 && (e.ctr == 0 || e.ctr == -1) && providerPred != t.altPred {
			if t.altPred == taken && t.useAlt < 7 {
				t.useAlt++
			} else if t.altPred != taken && t.useAlt > -8 {
				t.useAlt--
			}
		}
		// Useful bit: provider correct and alternate wrong.
		if providerPred == taken && t.altPred != taken && e.useful < 3 {
			e.useful++
		}
		updateCtr(&e.ctr, taken)
		// Also train the base when the provider entry is weak.
		if e.useful == 0 {
			t.base.Update(pc, taken)
		}
	} else {
		t.base.Update(pc, taken)
	}

	// Allocate on misprediction in a longer-history component.
	if !correct && t.provider < len(t.comps)-1 {
		t.allocate(pc, taken)
	}

	t.pushHistory(taken)
}

func (t *TAGE) allocate(pc uint64, taken bool) {
	start := t.provider + 1
	// Find candidate components with useful == 0; allocate in up to one,
	// preferring shorter history with probabilistic skipping (as in the
	// reference implementation, which decrements u otherwise).
	for i := start; i < len(t.comps); i++ {
		e := &t.comps[i].entries[t.predIdx[i]]
		if e.useful == 0 {
			// Probabilistically skip to spread allocations.
			if i+1 < len(t.comps) && t.rng.Bool(0.33) {
				continue
			}
			e.tag = uint16(t.predTag[i])
			e.useful = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	// No free entry: age the useful counters on this path.
	for i := start; i < len(t.comps); i++ {
		e := &t.comps[i].entries[t.predIdx[i]]
		if e.useful > 0 {
			e.useful--
		}
	}
}

func updateCtr(c *int8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > -4 {
		*c--
	}
}

func (t *TAGE) pushHistory(taken bool) {
	bit := uint8(b2u(taken))
	ringMask := len(t.ghist) - 1 // ghist length is a power of two
	t.hpos = (t.hpos + 1) & ringMask
	t.ghist[t.hpos] = bit
	for i := range t.comps {
		c := &t.comps[i]
		// The three folds of one component share a history length, so the
		// bit falling off the end is fetched once.
		oldest := t.ghist[(t.hpos-c.histLen+len(t.ghist))&ringMask]
		c.idxFold.update(bit, oldest)
		c.tagFold.update(bit, oldest)
		c.tagFold2.update(bit, oldest)
	}
}

// MispredictRate returns mispredictions per lookup.
func (t *TAGE) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}

var _ Predictor = (*TAGE)(nil)
