package workload

import (
	"fmt"
	"sort"

	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

// The 13 data center applications of the paper (§2.1), modelled by branch
// footprint and code-footprint parameters chosen to reproduce the paper's
// per-application characterization:
//
//   - verilator: enormous generated code executed in long sweeps — the
//     L2iMPKI outlier of Fig 3 and the biggest BTB-miss victim;
//   - clang, wordpress, mediawiki: multi-megabyte footprints, high BTB
//     pressure (the large OPT speedups of Fig 1);
//   - python: comparatively small interpreter loop (smallest speedups);
//   - the rest in between.
//
// Footprints are in *static taken branches*; the BTB under test holds 8K
// entries, so apps range from ~1.5× to ~10× BTB capacity as the paper's
// applications do.
var apps = []AppSpec{
	{Name: "cassandra", Seed: 0xCA55A9D4A, HotBranches: 4000, WarmBranches: 8000, ColdBranches: 3000,
		Kernels: 22, LoopsPerPhase: 12, WarmCallRate: 0.07, ColdRate: 0.022, TakenBias: 0.60,
		IndirectFrac: 0.06, CodeFootprint: 1 << 21, MeanBlockLen: 4, Length: 400000},
	{Name: "clang", Seed: 0xC1A96000, HotBranches: 6200, WarmBranches: 16000, ColdBranches: 4700,
		Kernels: 30, LoopsPerPhase: 7, WarmCallRate: 0.09, ColdRate: 0.036, TakenBias: 0.62,
		IndirectFrac: 0.05, CodeFootprint: 5 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "drupal", Seed: 0xD909A1, HotBranches: 4700, WarmBranches: 10000, ColdBranches: 3600,
		Kernels: 24, LoopsPerPhase: 10, WarmCallRate: 0.08, ColdRate: 0.025, TakenBias: 0.60,
		IndirectFrac: 0.08, CodeFootprint: 3 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "finagle-chirper", Seed: 0xF14A61EC, HotBranches: 3600, WarmBranches: 7000, ColdBranches: 2800,
		Kernels: 19, LoopsPerPhase: 13, WarmCallRate: 0.06, ColdRate: 0.018, TakenBias: 0.58,
		IndirectFrac: 0.07, CodeFootprint: 3 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "finagle-http", Seed: 0xF14A61E8, HotBranches: 3800, WarmBranches: 7500, ColdBranches: 2900,
		Kernels: 20, LoopsPerPhase: 12, WarmCallRate: 0.065, ColdRate: 0.02, TakenBias: 0.58,
		IndirectFrac: 0.07, CodeFootprint: 3 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "kafka", Seed: 0x4AF4A, HotBranches: 4000, WarmBranches: 8000, ColdBranches: 3000,
		Kernels: 22, LoopsPerPhase: 12, WarmCallRate: 0.065, ColdRate: 0.02, TakenBias: 0.60,
		IndirectFrac: 0.06, CodeFootprint: 2 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "mediawiki", Seed: 0x3ED1A714, HotBranches: 5100, WarmBranches: 12000, ColdBranches: 3900,
		Kernels: 25, LoopsPerPhase: 8, WarmCallRate: 0.085, ColdRate: 0.031, TakenBias: 0.60,
		IndirectFrac: 0.08, CodeFootprint: 4 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "mysql", Seed: 0x3350D1, HotBranches: 4600, WarmBranches: 9500, ColdBranches: 3500,
		Kernels: 24, LoopsPerPhase: 10, WarmCallRate: 0.075, ColdRate: 0.024, TakenBias: 0.61,
		IndirectFrac: 0.05, CodeFootprint: 3 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "postgresql", Seed: 0x9057965, HotBranches: 4200, WarmBranches: 8500, ColdBranches: 3200,
		Kernels: 22, LoopsPerPhase: 11, WarmCallRate: 0.07, ColdRate: 0.021, TakenBias: 0.61,
		IndirectFrac: 0.05, CodeFootprint: 3 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "python", Seed: 0x9974013, HotBranches: 2300, WarmBranches: 4500, ColdBranches: 1800,
		Kernels: 13, LoopsPerPhase: 20, WarmCallRate: 0.05, ColdRate: 0.011, TakenBias: 0.62,
		IndirectFrac: 0.09, CodeFootprint: 1 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "tomcat", Seed: 0x703CA7, HotBranches: 4900, WarmBranches: 10500, ColdBranches: 3700,
		Kernels: 25, LoopsPerPhase: 9, WarmCallRate: 0.08, ColdRate: 0.027, TakenBias: 0.60,
		IndirectFrac: 0.06, CodeFootprint: 3 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "verilator", Seed: 0x3E91147, HotBranches: 36000, WarmBranches: 6000, ColdBranches: 8000,
		Kernels: 6, LoopsPerPhase: 1, WarmCallRate: 0.16, ColdRate: 0.006, TakenBias: 0.64,
		IndirectFrac: 0.02, CodeFootprint: 9 << 20, MeanBlockLen: 4, Length: 400000},
	{Name: "wordpress", Seed: 0x36D99E55, HotBranches: 5800, WarmBranches: 14000, ColdBranches: 4400,
		Kernels: 28, LoopsPerPhase: 7, WarmCallRate: 0.09, ColdRate: 0.034, TakenBias: 0.60,
		IndirectFrac: 0.08, CodeFootprint: 4 << 20, MeanBlockLen: 4, Length: 400000},
}

// Apps returns the 13 data center application specs in figure order.
func Apps() []AppSpec {
	out := make([]AppSpec, len(apps))
	copy(out, apps)
	return out
}

// AppNames returns the application names in figure order.
func AppNames() []string {
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return names
}

// App looks up an application spec by name.
func App(name string) (AppSpec, bool) {
	for _, a := range apps {
		if a.Name == name {
			return a, true
		}
	}
	return AppSpec{}, false
}

// ScaleLength returns a copy of the spec with the trace length scaled by
// num/den (minimum 1000 records). Tests and quick experiments use shorter
// traces; figures use the full length.
func (s AppSpec) ScaleLength(num, den int) AppSpec {
	s.Length = s.Length * num / den
	if s.Length < 1000 {
		s.Length = 1000
	}
	return s
}

// --- CBP-5 and IPC-1 style trace suites (§4.1) ---

// CBP5Count is the number of traces in the CBP-5 suite (the paper uses all
// 663 championship traces).
const CBP5Count = 663

// IPC1Count is the number of traces in the IPC-1 suite.
const IPC1Count = 50

// suiteSpec derives a sweep spec. The suites intentionally cover a wide
// parameter space: most traces have branch working sets well under the BTB
// capacity (the paper finds 298 of 663 CBP-5 traces suffer only compulsory
// misses), while a tail of large-footprint traces reaches BTB MPKI >= 1.
func suiteSpec(suite string, i, length int) AppSpec {
	seed := xrand.Mix64(uint64(i)*2654435761 + uint64(len(suite)))
	r := xrand.New(seed)
	// Log-spaced footprint from ~150 to ~45000 static branches; the
	// distribution is skewed small so the bulk fits in the BTB.
	u := r.Float64()
	u = u * u // skew toward small
	foot := 150.0
	for k := 0; k < 24; k++ {
		foot *= 1.0 + 1.6*u/4
	}
	hot := int(foot * (0.4 + 0.3*r.Float64()))
	warm := int(foot * (0.2 + 0.2*r.Float64()))
	cold := int(foot) - hot - warm
	if cold < 16 {
		cold = 16
	}
	// Kernel size between ~50 and ~500 branches; a minority of traces are
	// sweep-style (1–2 loops per phase), the rest loop-heavy.
	kernelSize := 50 + r.Intn(450)
	kernels := hot / kernelSize
	if kernels < 1 {
		kernels = 1
	}
	if hot < kernels {
		hot = kernels
	}
	loops := 4 + r.Intn(16)
	if r.Bool(0.15) {
		loops = 1 + r.Intn(2) // sweep-style trace
	}
	return AppSpec{
		Name:          fmt.Sprintf("%s_%03d", suite, i),
		Seed:          seed,
		HotBranches:   hot,
		WarmBranches:  warm + 16,
		ColdBranches:  cold,
		Kernels:       kernels,
		LoopsPerPhase: loops,
		WarmCallRate:  0.03 + 0.07*r.Float64(),
		ColdRate:      0.004 + 0.014*r.Float64(),
		TakenBias:     0.5 + 0.2*r.Float64(),
		IndirectFrac:  0.1 * r.Float64(),
		CodeFootprint: uint64(1<<19) + r.Uint64n(1<<22),
		MeanBlockLen:  3 + r.Intn(3),
		Length:        length,
	}
}

// CBP5Spec returns the spec for CBP-5-style trace i in [0, CBP5Count).
func CBP5Spec(i int) AppSpec {
	if i < 0 || i >= CBP5Count {
		panic(fmt.Sprintf("workload: CBP5 index %d out of range", i))
	}
	return suiteSpec("cbp5", i, 150000)
}

// IPC1Spec returns the spec for IPC-1-style trace i in [0, IPC1Count).
func IPC1Spec(i int) AppSpec {
	if i < 0 || i >= IPC1Count {
		panic(fmt.Sprintf("workload: IPC1 index %d out of range", i))
	}
	return suiteSpec("ipc1", i, 150000)
}

// FootprintSummary describes a generated trace's working set; used by tests
// and by the experiment harness to sanity-check suite composition.
type FootprintSummary struct {
	Name                  string
	UniqueTaken           int
	DynamicTaken          uint64
	Instructions          uint64
	BTBMissesPerKiloInstr float64 // filled by callers that simulate
}

// Summarize computes footprint statistics for a trace.
func Summarize(tr *trace.Trace) FootprintSummary {
	return FootprintSummary{
		Name:         tr.Name,
		UniqueTaken:  tr.UniqueTakenPCs(),
		DynamicTaken: tr.TakenBranches(),
		Instructions: tr.Instructions(),
	}
}

// SortBySize orders summaries by unique-taken footprint (used in reports).
func SortBySize(xs []FootprintSummary) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].UniqueTaken < xs[j].UniqueTaken })
}
