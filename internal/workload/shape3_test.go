package workload

import (
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
)

// TestCategoryBreakdownDiagnostics splits misses by temperature category to
// show where Thermometer loses ground to OPT.
func TestCategoryBreakdownDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostics only")
	}
	const entries, ways = 8192, 4
	for _, name := range []string{"cassandra", "wordpress"} {
		spec, _ := App(name)
		tr := spec.Generate(0)
		acc := tr.AccessStream()
		ht, res, err := profile.ProfileTrace(tr, entries, ways, profile.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var statics [3]int
		for _, c := range ht.Hints {
			statics[c]++
		}
		var dyn, missTherm, missOPT [3]uint64

		b := btb.New(entries, ways, policy.NewThermometer())
		for i := range acc {
			a := &acc[i]
			cat := ht.Lookup(a.PC)
			dyn[cat]++
			r := b.Access(&btb.Request{
				PC: a.PC, Target: a.Target, Type: a.Type,
				NextUse: a.NextUse, Index: i, Temperature: cat,
			})
			if !r.Hit {
				missTherm[cat]++
			}
		}
		for pc, bp := range res.PerBranch {
			missOPT[ht.Lookup(pc)] += bp.Taken - bp.Hits
		}
		for c, lbl := range []string{"cold", "warm", "hot"} {
			t.Logf("%-10s %-4s: static=%6d dyn=%8d missTherm=%7d missOPT=%7d",
				name, lbl, statics[c], dyn[c], missTherm[c], missOPT[c])
		}
	}
}
