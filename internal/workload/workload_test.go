package workload

import (
	"testing"

	"thermometer/internal/belady"
	"thermometer/internal/metrics"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/replay"
	"thermometer/internal/trace"
)

func TestAppRoster(t *testing.T) {
	names := AppNames()
	if len(names) != 13 {
		t.Fatalf("apps = %d, want 13", len(names))
	}
	want := map[string]bool{"cassandra": true, "clang": true, "verilator": true, "wordpress": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing apps: %v", want)
	}
	if _, ok := App("cassandra"); !ok {
		t.Fatal("App lookup failed")
	}
	if _, ok := App("nosuchapp"); ok {
		t.Fatal("bogus app found")
	}
}

func TestSpecValidation(t *testing.T) {
	for _, s := range Apps() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
	}
	bad := AppSpec{Name: "x", HotBranches: 0, Kernels: 1, WarmBranches: 100, ColdBranches: 10,
		LoopsPerPhase: 1, MeanBlockLen: 4, CodeFootprint: 1 << 20, Length: 100}
	if bad.Validate() == nil {
		t.Error("zero-hot spec accepted")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec, _ := App("kafka")
	spec = spec.ScaleLength(1, 20)
	a := spec.Generate(0)
	b := spec.Generate(0)
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateInputsDiffer(t *testing.T) {
	spec, _ := App("kafka")
	spec = spec.ScaleLength(1, 20)
	a, b := spec.Generate(0), spec.Generate(1)
	same := 0
	n := min(len(a.Records), len(b.Records))
	for i := 0; i < n; i++ {
		if a.Records[i].PC == b.Records[i].PC {
			same++
		}
	}
	if same > n/2 {
		t.Fatalf("inputs nearly identical: %d/%d same PCs", same, n)
	}
}

func TestGeneratedTraceIsValid(t *testing.T) {
	for _, name := range []string{"cassandra", "verilator", "python"} {
		spec, _ := App(name)
		tr := spec.ScaleLength(1, 10).Generate(0)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if tr.Len() != spec.Length/10 {
			t.Errorf("%s: length %d, want %d", name, tr.Len(), spec.Length/10)
		}
	}
}

func TestFootprintExceedsBTB(t *testing.T) {
	// The defining property of the paper's workloads: branch working sets
	// larger than the 8K-entry BTB.
	for _, name := range []string{"cassandra", "clang", "verilator", "wordpress"} {
		spec, _ := App(name)
		tr := spec.ScaleLength(1, 4).Generate(0)
		if uniq := tr.UniqueTakenPCs(); uniq < 10000 {
			t.Errorf("%s: unique taken branches = %d, want > 10000", name, uniq)
		}
	}
}

func TestHotBranchesDominateDynamics(t *testing.T) {
	// Fig 7's property: branches that are hot under OPT account for the
	// large majority of dynamic BTB accesses.
	spec, _ := App("cassandra")
	tr := spec.ScaleLength(1, 2).Generate(0)
	res := belady.Profile(tr.AccessStream(), 8192, 4)
	var hotDyn, totDyn uint64
	for _, b := range res.PerBranch {
		if b.HitToTaken() > 0.8 {
			hotDyn += b.Taken
		}
		totDyn += b.Taken
	}
	if frac := float64(hotDyn) / float64(totDyn); frac < 0.7 {
		t.Fatalf("hot dynamic share = %v, want > 0.7", frac)
	}
}

func TestTransientVarianceExceedsHolistic(t *testing.T) {
	// Fig 5's property.
	spec, _ := App("drupal")
	tr := spec.ScaleLength(1, 4).Generate(0)
	v := metrics.SummarizeVariance(tr.AccessStream(), 2048, 4)
	if v.Branches < 100 {
		t.Fatalf("too few branches with reuse samples: %d", v.Branches)
	}
	if v.Ratio() < 1.3 {
		t.Fatalf("transient/holistic variance ratio = %v, want > 1.3", v.Ratio())
	}
}

func TestPolicyOrdering(t *testing.T) {
	// The paper's central result, in miss-rate terms:
	// LRU >= SRRIP-misses, Thermometer clearly better, OPT best.
	spec, _ := App("kafka")
	tr := spec.ScaleLength(1, 2).Generate(0)
	acc := tr.AccessStream()
	ht, _, err := profile.ProfileTrace(tr, 8192, 4, profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lru := replay.Run(acc, replay.Options{Entries: 8192, Ways: 4, Policy: policy.NewLRU()})
	srrip := replay.Run(acc, replay.Options{Entries: 8192, Ways: 4, Policy: policy.NewSRRIP()})
	therm := replay.Run(acc, replay.Options{Entries: 8192, Ways: 4, Policy: policy.NewThermometer(), Hints: ht})
	opt := belady.Profile(acc, 8192, 4)

	if srrip.Stats.Misses > lru.Stats.Misses {
		t.Errorf("SRRIP misses %d > LRU %d", srrip.Stats.Misses, lru.Stats.Misses)
	}
	if therm.Stats.Misses >= srrip.Stats.Misses {
		t.Errorf("Thermometer misses %d >= SRRIP %d", therm.Stats.Misses, srrip.Stats.Misses)
	}
	if opt.Misses >= therm.Stats.Misses {
		t.Errorf("OPT misses %d >= Thermometer %d", opt.Misses, therm.Stats.Misses)
	}
	// Thermometer achieves a solid fraction of OPT's miss reduction.
	base := float64(lru.Stats.Misses)
	tRed := base - float64(therm.Stats.Misses)
	oRed := base - float64(opt.Misses)
	if tRed/oRed < 0.35 {
		t.Errorf("Thermometer fraction of OPT reduction = %v, want > 0.35", tRed/oRed)
	}
}

func TestCrossInputTemperatureStability(t *testing.T) {
	// Fig 13's foundation: most branches keep their temperature category
	// across inputs (the paper reports 81%).
	spec, _ := App("postgresql")
	spec = spec.ScaleLength(1, 2)
	t0 := spec.Generate(0)
	t1 := spec.Generate(1)
	h0, _, err := profile.ProfileTrace(t0, 8192, 4, profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h1, _, err := profile.ProfileTrace(t1, 8192, 4, profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if agree := profile.Agreement(h0, h1); agree < 0.6 {
		t.Fatalf("cross-input category agreement = %v, want > 0.6", agree)
	}
}

func TestSuiteSpecs(t *testing.T) {
	for _, i := range []int{0, 100, CBP5Count - 1} {
		s := CBP5Spec(i)
		if err := s.Validate(); err != nil {
			t.Errorf("cbp5 %d invalid: %v", i, err)
		}
	}
	for _, i := range []int{0, IPC1Count - 1} {
		s := IPC1Spec(i)
		if err := s.Validate(); err != nil {
			t.Errorf("ipc1 %d invalid: %v", i, err)
		}
	}
	// Distinct traces.
	if CBP5Spec(1).Seed == CBP5Spec(2).Seed {
		t.Error("suite seeds collide")
	}
}

func TestSuiteIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CBP5Spec(CBP5Count)
}

func TestSuiteFootprintSpread(t *testing.T) {
	// The CBP-5 sweep must include both small (compulsory-only) and large
	// working sets.
	small, large := 0, 0
	for i := 0; i < 40; i++ {
		tr := CBP5Spec(i).Generate(0)
		u := tr.UniqueTakenPCs()
		if u < 4096 {
			small++
		}
		if u > 8192 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("footprint spread missing: small=%d large=%d", small, large)
	}
}

func TestSummarize(t *testing.T) {
	tr := &trace.Trace{Name: "x", Records: []trace.Record{
		{PC: 1, Target: 5, Taken: true, Type: trace.UncondDirect, BlockLen: 3},
	}}
	s := Summarize(tr)
	if s.Name != "x" || s.UniqueTaken != 1 || s.DynamicTaken != 1 || s.Instructions != 4 {
		t.Fatalf("summary = %+v", s)
	}
	xs := []FootprintSummary{{UniqueTaken: 5}, {UniqueTaken: 2}}
	SortBySize(xs)
	if xs[0].UniqueTaken != 2 {
		t.Fatal("sort failed")
	}
}

func TestScaleLength(t *testing.T) {
	s := AppSpec{Length: 100000}
	if s.ScaleLength(1, 4).Length != 25000 {
		t.Fatal("scale wrong")
	}
	if s.ScaleLength(1, 1000000).Length != 1000 {
		t.Fatal("floor wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
