package workload

import (
	"testing"

	"thermometer/internal/belady"
	"thermometer/internal/policy"
	"thermometer/internal/replay"
)

// TestShapeDiagnostics prints the characterization numbers the synthetic
// workloads must reproduce. Run with -v to inspect. (Assertion-based shape
// tests live in workload_test.go; this is the engineer-facing dashboard.)
func TestShapeDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostics only")
	}
	const entries, ways = 8192, 4
	for _, spec := range Apps() {
		spec := spec // full length
		tr := spec.Generate(0)
		acc := tr.AccessStream()
		lru := replay.Run(acc, replay.Options{Entries: entries, Ways: ways, Policy: policy.NewLRU()})
		opt := belady.Profile(acc, entries, ways)

		// Temperature distribution under OPT.
		sorted := opt.SortedByTemperature()
		hot, warm := 0, 0
		var hotDyn, totDyn uint64
		for _, b := range sorted {
			r := b.HitToTaken()
			if r > 0.8 {
				hot++
				hotDyn += b.Taken
			} else if r > 0.5 {
				warm++
			}
			totDyn += b.Taken
		}
		nuniq := len(sorted)
		takenPerKI := float64(lru.Stats.Accesses) / float64(tr.Instructions()) * 1000
		t.Logf("%-16s uniq=%6d dyn=%7d LRUmiss%%=%5.2f OPTmiss%%=%5.2f MPKI(LRU)=%5.2f hot%%=%4.1f warm%%=%4.1f hotDyn%%=%4.1f tkPKI=%5.0f",
			spec.Name, nuniq, lru.Stats.Accesses,
			100*lru.MissRatio(), 100*(1-opt.HitRate()),
			float64(lru.Stats.Misses)/float64(tr.Instructions())*1000,
			100*float64(hot)/float64(nuniq), 100*float64(warm)/float64(nuniq),
			100*float64(hotDyn)/float64(totDyn), takenPerKI)
	}
}
