package workload

import (
	"testing"

	"thermometer/internal/belady"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/replay"
)

// TestPolicyGapDiagnostics prints the Fig 12-style miss-reduction picture:
// SRRIP / GHRP / Hawkeye / Thermometer / OPT miss reduction over LRU.
func TestPolicyGapDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostics only")
	}
	const entries, ways = 8192, 4
	var sums [5]float64
	for _, spec := range Apps() {
		tr := spec.Generate(0)
		acc := tr.AccessStream()
		ht, _, err := profile.ProfileTrace(tr, entries, ways, profile.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		lru := replay.Run(acc, replay.Options{Entries: entries, Ways: ways, Policy: policy.NewLRU()})
		srrip := replay.Run(acc, replay.Options{Entries: entries, Ways: ways, Policy: policy.NewSRRIP()})
		ghrp := replay.Run(acc, replay.Options{Entries: entries, Ways: ways, Policy: policy.NewGHRP()})
		hawk := replay.Run(acc, replay.Options{Entries: entries, Ways: ways, Policy: policy.NewHawkeye()})
		therm := replay.Run(acc, replay.Options{Entries: entries, Ways: ways, Policy: policy.NewThermometer(), Hints: ht})
		opt := belady.Profile(acc, entries, ways)

		base := float64(lru.Stats.Misses)
		red := func(m uint64) float64 { return 100 * (base - float64(m)) / base }
		rs, rg, rh, rt, ro := red(srrip.Stats.Misses), red(ghrp.Stats.Misses), red(hawk.Stats.Misses),
			red(therm.Stats.Misses), red(opt.Misses)
		sums[0] += rs
		sums[1] += rg
		sums[2] += rh
		sums[3] += rt
		sums[4] += ro
		t.Logf("%-16s missRed%%: SRRIP=%6.2f GHRP=%6.2f Hawkeye=%6.2f Therm=%6.2f OPT=%6.2f",
			spec.Name, rs, rg, rh, rt, ro)
	}
	n := float64(len(Apps()))
	t.Logf("%-16s missRed%%: SRRIP=%6.2f GHRP=%6.2f Hawkeye=%6.2f Therm=%6.2f OPT=%6.2f",
		"AVG", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n)
}
