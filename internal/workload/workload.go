// Package workload synthesizes branch traces with the structural properties
// the paper measures in real data center applications.
//
// The paper's traces are Intel PT captures of proprietary deployments; we
// cannot ship those, so each of the 13 applications is modelled by an
// AppSpec whose parameters are set from the paper's own characterization:
//
//   - branch footprints larger than the 8K-entry BTB (§1, §2.3), split
//     into hot loop kernels, a shared "library" pool with highly variable
//     reuse, and a long cold tail (init/error/rare paths);
//   - phase behaviour: execution loops inside one kernel for a while and
//     then migrates, which makes a branch's transient reuse distance vary
//     far more than its holistic average (Fig 5);
//   - hot branches dominating dynamic executions (~90%, Fig 7) while being
//     only ~half of the static footprint (Fig 6);
//   - call/return structure (exercising the RAS), indirect branches
//     (exercising the IBTB), and per-branch direction bias;
//   - an instruction code footprint that determines I-cache/L2 pressure
//     (verilator's multi-megabyte generated code gives it the outlier
//     L2iMPKI of Fig 3).
//
// Generation is fully deterministic given (app seed, input index). Input
// indices model the paper's different application inputs (Fig 13): the
// static code layout and kernel structure are derived from the app seed
// only, while dynamic interleaving, kernel weights, cold-path selection,
// and indirect-target distributions also depend on the input index.
package workload

import (
	"fmt"

	"thermometer/internal/btb"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

// AppSpec parameterizes one synthetic application.
type AppSpec struct {
	// Name is the application name as used in the paper's figures.
	Name string
	// Seed fixes the app's static structure.
	Seed uint64

	// HotBranches is the number of static branches in loop kernels.
	HotBranches int
	// WarmBranches is the size of the shared library pool.
	WarmBranches int
	// ColdBranches is the size of the cold tail.
	ColdBranches int

	// Kernels is the number of loop kernels the hot pool is split into;
	// HotBranches/Kernels is the inner-loop body size.
	Kernels int
	// LoopsPerPhase is the mean number of times a phase iterates its
	// kernel before execution migrates to another kernel. High values
	// (10+) make kernel branches "hot" (short in-phase reuse, high
	// hit-to-taken under OPT); a value of 1 models verilator-style long
	// code sweeps that revisit each branch only after the whole multi-MB
	// pass.
	LoopsPerPhase int
	// WarmCallRate is the probability per kernel slot of calling into a
	// library function that emits warm branches.
	WarmCallRate float64
	// ColdRate is the probability per kernel slot of executing a cold
	// path.
	ColdRate float64
	// TakenBias is the mean taken-probability of conditional branches.
	TakenBias float64
	// IndirectFrac is the fraction of kernel/library branches that are
	// indirect jumps or calls.
	IndirectFrac float64
	// CodeFootprint is the approximate byte span of the program text; it
	// drives I-cache and L2 instruction pressure.
	CodeFootprint uint64
	// MeanBlockLen is the mean basic-block length in instructions.
	MeanBlockLen int
	// Length is the number of branch records per generated trace.
	Length int
}

// Validate reports obviously broken parameters.
func (s AppSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.HotBranches < s.Kernels || s.Kernels <= 0:
		return fmt.Errorf("workload %s: need >= 1 hot branch per kernel", s.Name)
	case s.WarmBranches <= 8:
		return fmt.Errorf("workload %s: warm pool too small", s.Name)
	case s.ColdBranches <= 0 || s.Length <= 0 || s.LoopsPerPhase <= 0:
		return fmt.Errorf("workload %s: non-positive size parameter", s.Name)
	case s.MeanBlockLen <= 0 || s.CodeFootprint == 0:
		return fmt.Errorf("workload %s: bad code shape parameters", s.Name)
	}
	return nil
}

// staticBranch is one branch site in the synthetic program.
type staticBranch struct {
	pc       uint64
	target   uint64 // primary taken target (direct branches)
	typ      trace.BranchType
	bias     float64  // taken probability for conditionals
	targets  []uint64 // alternative targets for indirect branches
	blockLen int      // mean fallthrough block length
}

// program is the static structure generated from the app seed.
type program struct {
	spec    AppSpec
	kernels [][]*staticBranch // per kernel: ordered hot branch sequence
	warm    []*staticBranch
	cold    []*staticBranch
	// warmFns groups warm branches into callable "library functions".
	warmFns [][]*staticBranch
	// regions records each code region's [start, end) address range for
	// the init-phase sequential code walk.
	regions [][2]uint64
}

// buildProgram lays out the synthetic program text deterministically from
// the app seed.
//
// Code layout matters as much as branch behaviour: real binaries keep a
// loop kernel's code contiguous, so iterating it touches a few KB of
// I-cache, while the *total* footprint (all kernels, libraries, cold
// paths) spans megabytes. We therefore lay the program out as regions —
// one per kernel, one per library function, cold code in chunks — placed
// in shuffled order across the CodeFootprint span with padding gaps.
// x86-style variable instruction sizes give PCs with varied low bits, so
// the BTB's modulo set indexing spreads them (§4.2's hash discussion).
func buildProgram(s AppSpec) *program {
	r := xrand.New(s.Seed ^ 0xB7E151628AED2A6B)
	p := &program{spec: s}

	mkBranch := func(hot bool) *staticBranch {
		b := &staticBranch{blockLen: 1 + r.Geometric(1.0/float64(s.MeanBlockLen))}
		roll := r.Float64()
		indirect := r.Bool(s.IndirectFrac)
		switch {
		case indirect && roll < 0.5:
			b.typ = trace.IndirectJump
		case indirect:
			b.typ = trace.IndirectCall
		case roll < 0.62:
			b.typ = trace.CondDirect
		case roll < 0.78:
			b.typ = trace.UncondDirect
		case roll < 0.90:
			b.typ = trace.Call
		default:
			b.typ = trace.Return
		}
		// Direction bias. Real conditional branches are mostly
		// deterministic (loop back-edges, guard clauses); only a small
		// minority are data-dependent coin flips. The mixture below gives
		// TAGE a realistic ~2-5 MPKI.
		roll2 := r.Float64()
		switch {
		case roll2 < 0.48: // strongly taken (loop back-edges)
			b.bias = 0.97 + 0.025*r.Float64()
		case roll2 < 0.75: // strongly not-taken (error guards)
			b.bias = 0.005 + 0.025*r.Float64()
		case roll2 < 0.96: // biased
			if r.Bool(0.5) {
				b.bias = 0.90 + 0.07*r.Float64()
			} else {
				b.bias = 0.03 + 0.07*r.Float64()
			}
		default: // data-dependent
			b.bias = 0.35 + 0.3*r.Float64()
		}
		b.bias = clamp01(b.bias*(s.TakenBias/0.6), 0.005, 0.995)
		return b
	}

	make1 := func(n int, hot bool) []*staticBranch {
		out := make([]*staticBranch, n)
		for i := range out {
			out[i] = mkBranch(hot)
		}
		return out
	}
	hot := make1(s.HotBranches, true)
	p.warm = make1(s.WarmBranches, false)
	p.cold = make1(s.ColdBranches, false)

	// Cold branches are mostly unconditional continuations of rare paths;
	// force them taken-leaning so they actually access the BTB when hit.
	for _, b := range p.cold {
		if b.typ == trace.CondDirect {
			b.bias = clamp01(b.bias+0.3, 0.05, 0.98)
		}
	}

	// Split hot branches into kernels. Each kernel's slot order is fixed:
	// loop bodies execute in a stable order, which is what gives hot
	// branches their short, regular in-phase reuse distances.
	p.kernels = make([][]*staticBranch, s.Kernels)
	per := len(hot) / s.Kernels
	for k := 0; k < s.Kernels; k++ {
		lo := k * per
		hi := lo + per
		if k == s.Kernels-1 {
			hi = len(hot)
		}
		p.kernels[k] = hot[lo:hi]
	}

	// Group warm branches into library functions of 2–6 branches.
	for i := 0; i < len(p.warm); {
		n := 2 + r.Intn(5)
		if i+n > len(p.warm) {
			n = len(p.warm) - i
		}
		p.warmFns = append(p.warmFns, p.warm[i:i+n])
		i += n
	}

	// --- Layout: regions in shuffled order across the footprint. ---
	var regions [][]*staticBranch
	regions = append(regions, p.kernels...)
	regions = append(regions, p.warmFns...)
	for i := 0; i < len(p.cold); i += 32 {
		hi := i + 32
		if hi > len(p.cold) {
			hi = len(p.cold)
		}
		regions = append(regions, p.cold[i:hi])
	}
	order := r.Perm(len(regions))

	// Estimate code bytes: each branch is preceded by its basic block
	// (~4 bytes per instruction).
	total := s.HotBranches + s.WarmBranches + s.ColdBranches
	codeBytes := uint64(total) * uint64(4*(s.MeanBlockLen+1))
	span := s.CodeFootprint
	if span < codeBytes+uint64(len(regions)*16) {
		span = codeBytes + uint64(len(regions)*16)
	}
	gapBudget := span - codeBytes
	gapPer := gapBudget / uint64(len(regions)+1)

	base := uint64(0x400000)
	pc := base
	for _, ri := range order {
		reg := regions[ri]
		pc += gapPer/2 + uint64(r.Uint64n(gapPer+1))
		regionStart := pc
		for _, b := range reg {
			pc += uint64(4*b.blockLen) + uint64(3+r.Intn(5))
			b.pc = pc
		}
		regionEnd := pc
		p.regions = append(p.regions, [2]uint64{regionStart, regionEnd})
		// Targets: loop-local control flow within the region, with an
		// occasional far target (cross-module call/tail-jump).
		regionSpan := regionEnd - regionStart
		if regionSpan < 8 {
			regionSpan = 8
		}
		for _, b := range reg {
			if r.Bool(0.02) {
				// Rare far target (cross-module tail call). Real programs
				// concentrate these on a small set of entry points, so
				// quantize to 4KB page starts to bound the I-side
				// footprint they add.
				b.target = base + 16 + (uint64(r.Uint64n(span)) &^ 0xfff)
			} else {
				b.target = regionStart + uint64(r.Uint64n(regionSpan))
			}
			if b.typ.IsIndirect() && b.typ != trace.Return {
				n := 2 + r.Intn(7)
				b.targets = make([]uint64, n)
				for i := range b.targets {
					if r.Bool(0.8) {
						b.targets[i] = regionStart + uint64(r.Uint64n(regionSpan))
					} else {
						b.targets[i] = base + 16 + (uint64(r.Uint64n(span)) &^ 0xfff)
					}
				}
			}
		}
	}
	return p
}

func clamp01(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Generate produces the trace for one input index. Input 0 is the paper's
// training input (§4.1); inputs 1–3 are the test inputs of Fig 13.
func (s AppSpec) Generate(input int) *trace.Trace {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	p := buildProgram(s)
	return p.emit(input)
}

// emitState carries the dynamic generation state.
type emitState struct {
	r  *xrand.RNG
	tr *trace.Trace
	// ras mirrors the simulated CPU's return address stack exactly (same
	// capacity, same circular-overwrite semantics), so the generated
	// return targets are the ones a well-behaved program would produce
	// and RAS mispredictions stay rare, as in real applications.
	ras *btb.RAS
}

func (p *program) emit(input int) *trace.Trace {
	s := p.spec
	r := xrand.New(s.Seed ^ xrand.Mix64(uint64(input)+0x5851F42D4C957F2D))
	st := &emitState{
		r:   r,
		tr:  &trace.Trace{Name: fmt.Sprintf("%s#%d", s.Name, input)},
		ras: btb.NewRAS(32),
	}
	st.tr.Records = make([]trace.Record, 0, s.Length+64)

	// Per-input kernel weighting: different inputs exercise kernels with
	// different intensity (different request mixes), which is what keeps
	// most — but not all — branch temperatures stable across inputs.
	weights := make([]float64, s.Kernels)
	for i := range weights {
		weights[i] = 0.3 + r.Float64()
	}
	// Per-input warm sampling skew. The strong skew makes library usage
	// bimodal — a hot head that is effectively resident and a streaming
	// tail — matching the cliff shape of the paper's Fig 6 distribution.
	warmZipf := xrand.NewZipf(len(p.warmFns), 1.25+0.15*r.Float64())
	// Per-input cold path ordering.
	coldOrder := r.Perm(len(p.cold))
	coldNext := 0
	coldRepeat := []*staticBranch{} // recently touched cold paths, may recur

	// emitInjections interleaves library calls and cold paths between
	// kernel branches.
	emitInjections := func(fromPC uint64) {
		if st.r.Bool(s.WarmCallRate) {
			fn := p.warmFns[warmZipf.Sample(st.r)]
			st.emitCall(fromPC, fn)
		}
		// Cold path: a short burst of cold branches, occasionally re-run
		// shortly after (so cold reuse distances are bimodal rather than
		// purely infinite).
		if st.r.Bool(s.ColdRate) {
			var burst []*staticBranch
			if len(coldRepeat) > 0 && st.r.Bool(0.05) {
				burst = coldRepeat
			} else {
				n := 1 + st.r.Intn(4)
				for i := 0; i < n; i++ {
					burst = append(burst, p.cold[coldOrder[coldNext]])
					coldNext++
					if coldNext >= len(coldOrder) {
						coldNext = 0 // cold tail wraps: very long reuse
					}
				}
				coldRepeat = append(coldRepeat[:0], burst...)
			}
			for _, cb := range burst {
				st.emitBranch(cb)
			}
		}
	}

	// Initialization phase: real programs execute start-up code that
	// touches libraries and rare paths once (loaders relocating text,
	// class loading, config parsing, JIT warming). This brings the code
	// footprint into the memory hierarchy so that later cold-path
	// excursions pay LLC/L2 latency rather than compulsory DRAM latency.
	// It happens inside the simulator's warmup window.
	if s.Length > 4*(len(p.warm)+len(p.cold)) {
		// Sequential walk over every code region: not-taken conditionals
		// whose fall-through blocks tile the region (never-taken branches
		// do not enter the BTB working set).
		const walkBlock = 24 // instructions per walk record (~100B of code)
		for _, reg := range p.regions {
			for pc := reg[0]; pc < reg[1]; pc += 4 * (walkBlock + 1) {
				st.tr.Records = append(st.tr.Records, trace.Record{
					PC: pc, Type: trace.CondDirect, Taken: false, BlockLen: walkBlock,
				})
			}
		}
		// Then exercise libraries and rare paths once.
		for _, fn := range p.warmFns {
			st.emitCall(fn[0].pc+16, fn)
		}
		for _, cb := range p.cold {
			st.emitBranch(cb)
		}
	}

	for len(st.tr.Records) < s.Length {
		// Pick the phase's kernel by per-input weight.
		kernel := 0
		x := st.r.Float64() * sum(weights)
		for i, w := range weights {
			if x < w {
				kernel = i
				break
			}
			x -= w
		}
		k := p.kernels[kernel]
		loops := 1
		if s.LoopsPerPhase > 1 {
			loops = s.LoopsPerPhase/2 + 1 + st.r.Intn(s.LoopsPerPhase)
		}
		for l := 0; l < loops && len(st.tr.Records) < s.Length; l++ {
			for _, b := range k {
				st.emitBranch(b)
				emitInjections(b.pc)
				if len(st.tr.Records) >= s.Length {
					break
				}
			}
		}
	}
	st.tr.Records = st.tr.Records[:s.Length]
	return st.tr
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// emitBranch appends one dynamic instance of b.
func (st *emitState) emitBranch(b *staticBranch) {
	rec := trace.Record{
		PC:       b.pc,
		Type:     b.typ,
		BlockLen: st.blockLen(b),
	}
	switch b.typ {
	case trace.CondDirect:
		rec.Taken = st.r.Bool(b.bias)
		if rec.Taken {
			rec.Target = b.target
		}
	case trace.UncondDirect:
		rec.Taken = true
		rec.Target = b.target
	case trace.Call:
		rec.Taken = true
		rec.Target = b.target
		st.ras.Push(b.pc + 5)
	case trace.Return:
		rec.Taken = true
		rec.Target = st.popRet(b.target)
	case trace.IndirectJump, trace.IndirectCall:
		rec.Taken = true
		rec.Target = b.targets[st.pickTarget(len(b.targets))]
		if b.typ == trace.IndirectCall {
			st.ras.Push(b.pc + 6)
		}
	}
	st.tr.Records = append(st.tr.Records, rec)
}

// emitCall emits a matched call / library body / return sequence. The call
// site sits a couple of bytes past the kernel branch (a distinct PC) and
// pushes callPC+5, exactly what the simulated RAS will push.
func (st *emitState) emitCall(fromPC uint64, fn []*staticBranch) {
	entry := fn[0]
	callPC := fromPC + 2
	st.tr.Records = append(st.tr.Records, trace.Record{
		PC: callPC, Target: entry.pc &^ 1, Taken: true,
		Type: trace.Call, BlockLen: st.blockLen(entry),
	})
	st.ras.Push(callPC + 5)
	for _, b := range fn {
		if b.typ == trace.Return {
			continue // the function's single return is emitted below
		}
		st.emitBranch(b)
	}
	st.tr.Records = append(st.tr.Records, trace.Record{
		PC: fn[len(fn)-1].pc + 7, Target: st.popRet(callPC + 5), Taken: true,
		Type: trace.Return, BlockLen: st.blockLen(entry),
	})
}

func (st *emitState) blockLen(b *staticBranch) uint16 {
	n := b.blockLen + st.r.Intn(3) - 1
	if n < 1 {
		n = 1
	}
	if n > 255 {
		n = 255
	}
	return uint16(n)
}

// pickTarget samples an indirect-target index: indirect branches in real
// code (virtual calls, switch dispatch) are strongly monomorphic per site.
func (st *emitState) pickTarget(n int) int {
	if st.r.Bool(0.92) {
		return 0
	}
	return st.r.Intn(n)
}

// popRet predicts the return target from the mirrored RAS, falling back to
// the branch's static target on underflow (a program returning past the
// traced window's call depth).
func (st *emitState) popRet(fallback uint64) uint64 {
	if v, ok := st.ras.Pop(); ok {
		return v
	}
	return fallback
}
