// Package trace defines the branch-trace model that the whole repository is
// built around.
//
// A trace is the sequence of *retired taken-or-not-taken branch records* for
// one execution, exactly the information Intel PT provides the Thermometer
// profiler in the paper (§3.1): for every dynamic branch, its PC, its type,
// whether it was taken, and (for taken branches) its target. Records
// additionally carry the length of the sequential basic block that follows
// the branch, which the timing model uses to charge instruction-fetch work.
//
// The same trace is consumed in two ways, mirroring the paper's design:
//
//   - offline, by the Belady profiler (package belady) to compute branch
//     temperatures, and
//   - online, by the cycle simulator (package core) as the program the
//     simulated CPU executes.
package trace

import (
	"fmt"
	"sync"
)

// BranchType classifies a branch record. The distinction matters to the
// frontend model: unconditional direct branches are redirect-detectable at
// decode, conditionals and indirects only at execute; calls and returns
// exercise the RAS; indirect branches exercise the IBTB.
type BranchType uint8

// Branch types.
const (
	CondDirect BranchType = iota // conditional, direct target
	UncondDirect
	Call
	Return
	IndirectJump
	IndirectCall
	numBranchTypes
)

// String returns the conventional short name of the branch type.
func (t BranchType) String() string {
	switch t {
	case CondDirect:
		return "cond"
	case UncondDirect:
		return "jmp"
	case Call:
		return "call"
	case Return:
		return "ret"
	case IndirectJump:
		return "ijmp"
	case IndirectCall:
		return "icall"
	default:
		return fmt.Sprintf("BranchType(%d)", uint8(t))
	}
}

// IsIndirect reports whether the branch target comes from the IBTB rather
// than the BTB's stored target.
func (t BranchType) IsIndirect() bool {
	return t == IndirectJump || t == IndirectCall || t == Return
}

// IsConditional reports whether the branch consults the direction predictor.
func (t BranchType) IsConditional() bool { return t == CondDirect }

// Valid reports whether t is one of the defined branch types.
func (t BranchType) Valid() bool { return t < numBranchTypes }

// Record is one dynamic branch instance.
type Record struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Target is the address control transfers to when the branch is taken.
	// It is meaningful only when Taken is true.
	Target uint64
	// BlockLen is the number of sequential instructions executed after this
	// branch resolves and before the next branch in the trace (the length
	// of the following basic block, the branch itself excluded).
	BlockLen uint16
	// Type is the branch classification.
	Type BranchType
	// Taken reports whether the branch was taken. Unconditional branches,
	// calls, returns, and indirect jumps are always taken.
	Taken bool
}

// Trace is an in-memory branch trace plus cached summary statistics.
type Trace struct {
	// Name identifies the workload (e.g. "kafka#0").
	Name string
	// Records is the dynamic branch sequence.
	Records []Record

	// accessStream caches AccessStream's result; it is derived purely from
	// Records, which are immutable once a Trace is published.
	accessOnce   sync.Once
	accessStream []Access
}

// Len returns the number of dynamic branch records.
func (t *Trace) Len() int { return len(t.Records) }

// Instructions returns the total retired instruction count the trace
// represents: one per branch plus each record's fallthrough block.
func (t *Trace) Instructions() uint64 {
	var n uint64
	for i := range t.Records {
		n += 1 + uint64(t.Records[i].BlockLen)
	}
	return n
}

// TakenBranches returns the number of dynamic taken branches, i.e. the
// number of BTB demand accesses the trace will generate.
func (t *Trace) TakenBranches() uint64 {
	var n uint64
	for i := range t.Records {
		if t.Records[i].Taken {
			n++
		}
	}
	return n
}

// UniqueTakenPCs returns the number of static branches that are taken at
// least once — the BTB working-set size the paper characterizes.
func (t *Trace) UniqueTakenPCs() int {
	seen := make(map[uint64]struct{}, 1<<12)
	for i := range t.Records {
		if t.Records[i].Taken {
			seen[t.Records[i].PC] = struct{}{}
		}
	}
	return len(seen)
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation found. It is used by tests and by the trace reader.
func (t *Trace) Validate() error {
	for i := range t.Records {
		r := &t.Records[i]
		if !r.Type.Valid() {
			return fmt.Errorf("trace %q: record %d: invalid branch type %d", t.Name, i, r.Type)
		}
		if !r.Type.IsConditional() && !r.Taken {
			return fmt.Errorf("trace %q: record %d: %s branch must be taken", t.Name, i, r.Type)
		}
		if r.Taken && r.Target == 0 {
			return fmt.Errorf("trace %q: record %d: taken branch with zero target", t.Name, i)
		}
	}
	return nil
}

// BranchStats summarizes one static branch across a trace.
type BranchStats struct {
	PC         uint64
	Type       BranchType
	Executions uint64 // dynamic occurrences
	TakenCount uint64 // times taken
	// TargetDistance is the mean absolute |target − PC| over taken
	// instances, one of the properties Fig 8 correlates with temperature.
	TargetDistance float64
}

// Bias returns the branch's taken fraction (0 when never executed).
func (s *BranchStats) Bias() float64 {
	if s.Executions == 0 {
		return 0
	}
	return float64(s.TakenCount) / float64(s.Executions)
}

// StaticBranches aggregates per-PC statistics over the trace. The result
// map is keyed by branch PC.
func (t *Trace) StaticBranches() map[uint64]*BranchStats {
	m := make(map[uint64]*BranchStats, 1<<12)
	for i := range t.Records {
		r := &t.Records[i]
		s := m[r.PC]
		if s == nil {
			s = &BranchStats{PC: r.PC, Type: r.Type}
			m[r.PC] = s
		}
		s.Executions++
		if r.Taken {
			d := int64(r.Target) - int64(r.PC)
			if d < 0 {
				d = -d
			}
			// Incremental mean over taken instances.
			s.TakenCount++
			s.TargetDistance += (float64(d) - s.TargetDistance) / float64(s.TakenCount)
		}
	}
	return m
}

// Slice returns a shallow sub-trace covering records [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	return &Trace{Name: t.Name, Records: t.Records[lo:hi]}
}
