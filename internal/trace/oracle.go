package trace

// NoNextUse marks an access whose branch is never taken again; Belady's
// algorithm treats it as the most attractive eviction candidate.
const NoNextUse = int(^uint(0) >> 1) // max int

// Access is one BTB demand access: a dynamic taken branch. The BTB is only
// written for taken branches (not-taken branches have no target to store),
// so the access stream over which replacement operates is the taken-branch
// subsequence of the trace.
type Access struct {
	// PC is the branch address (the BTB lookup key).
	PC uint64
	// Target is the taken target observed for this instance.
	Target uint64
	// RecordIndex is the index of this access in the originating
	// Trace.Records slice.
	RecordIndex int
	// NextUse is the index (within the access stream) of the next access
	// with the same PC, or NoNextUse if this is the final one. It is the
	// oracle Belady's algorithm needs.
	NextUse int
	// Type mirrors the record's branch type.
	Type BranchType
}

// AccessStream returns the trace's taken-branch subsequence with next-use
// indices precomputed in a single backward pass. The result is the input to
// both the offline Belady profiler and the online OPT replacement policy.
//
// The stream is computed once per Trace and cached: profiling, prefetch
// metadata, and the simulator all consume the same stream, and benchmark
// harnesses call Run repeatedly on one trace. Callers must treat the
// returned slice as read-only.
func (t *Trace) AccessStream() []Access {
	t.accessOnce.Do(func() { t.accessStream = t.buildAccessStream() })
	return t.accessStream
}

func (t *Trace) buildAccessStream() []Access {
	n := 0
	for i := range t.Records {
		if t.Records[i].Taken {
			n++
		}
	}
	accesses := make([]Access, 0, n)
	for i := range t.Records {
		r := &t.Records[i]
		if !r.Taken {
			continue
		}
		accesses = append(accesses, Access{
			PC:          r.PC,
			Target:      r.Target,
			RecordIndex: i,
			NextUse:     NoNextUse,
			Type:        r.Type,
		})
	}
	last := make(map[uint64]int, 1<<12)
	for i := len(accesses) - 1; i >= 0; i-- {
		pc := accesses[i].PC
		if j, ok := last[pc]; ok {
			accesses[i].NextUse = j
		}
		last[pc] = i
	}
	return accesses
}
