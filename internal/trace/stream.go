package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Reader streams records from a binary trace without materializing the
// whole trace in memory — the way a profiler would consume a multi-gigabyte
// Intel PT capture. The full-trace Read function is built on top of it.
type Reader struct {
	br     *bufio.Reader
	name   string
	total  uint64
	read   uint64
	prevPC uint64
}

// NewReader parses the trace header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [len(magic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	if count > 1<<34 {
		return nil, fmt.Errorf("trace: unreasonable record count %d", count)
	}
	return &Reader{br: br, name: string(name), total: count}, nil
}

// Name returns the trace name from the header.
func (r *Reader) Name() string { return r.name }

// Len returns the total record count declared in the header.
func (r *Reader) Len() uint64 { return r.total }

// Next returns the next record, or io.EOF after the last one.
func (r *Reader) Next() (Record, error) {
	if r.read >= r.total {
		return Record{}, io.EOF
	}
	var rec Record
	flags, err := r.br.ReadByte()
	if err != nil {
		return rec, fmt.Errorf("trace: record %d flags: %w", r.read, err)
	}
	rec.Type = BranchType(flags & 0x7)
	rec.Taken = flags&0x8 != 0
	dpc, err := binary.ReadVarint(r.br)
	if err != nil {
		return rec, fmt.Errorf("trace: record %d pc: %w", r.read, err)
	}
	rec.PC = uint64(int64(r.prevPC) + dpc)
	r.prevPC = rec.PC
	if rec.Taken {
		dt, err := binary.ReadVarint(r.br)
		if err != nil {
			return rec, fmt.Errorf("trace: record %d target: %w", r.read, err)
		}
		rec.Target = uint64(int64(rec.PC) + dt)
	}
	bl, err := binary.ReadUvarint(r.br)
	if err != nil {
		return rec, fmt.Errorf("trace: record %d block length: %w", r.read, err)
	}
	if bl > 0xffff {
		return rec, fmt.Errorf("trace: record %d block length %d overflows", r.read, bl)
	}
	rec.BlockLen = uint16(bl)
	r.read++
	return rec, nil
}
