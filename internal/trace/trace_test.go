package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"thermometer/internal/xrand"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Records: []Record{
			{PC: 0x1000, Target: 0x2000, Taken: true, Type: CondDirect, BlockLen: 5},
			{PC: 0x2004, Target: 0x3000, Taken: true, Type: UncondDirect, BlockLen: 3},
			{PC: 0x3010, Taken: false, Type: CondDirect, BlockLen: 9},
			{PC: 0x1000, Target: 0x2000, Taken: true, Type: CondDirect, BlockLen: 5},
			{PC: 0x4000, Target: 0x1000, Taken: true, Type: Return, BlockLen: 0},
		},
	}
}

func TestBranchTypeString(t *testing.T) {
	cases := map[BranchType]string{
		CondDirect: "cond", UncondDirect: "jmp", Call: "call",
		Return: "ret", IndirectJump: "ijmp", IndirectCall: "icall",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
		if !ty.Valid() {
			t.Errorf("%v not Valid", ty)
		}
	}
	if BranchType(99).Valid() {
		t.Error("BranchType(99) reported Valid")
	}
}

func TestBranchTypePredicates(t *testing.T) {
	if !Return.IsIndirect() || !IndirectJump.IsIndirect() || !IndirectCall.IsIndirect() {
		t.Error("indirect types not reported indirect")
	}
	if CondDirect.IsIndirect() || UncondDirect.IsIndirect() || Call.IsIndirect() {
		t.Error("direct types reported indirect")
	}
	if !CondDirect.IsConditional() || UncondDirect.IsConditional() {
		t.Error("IsConditional wrong")
	}
}

func TestTraceCounts(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	if got := tr.Instructions(); got != 5+5+3+9+5+0 {
		t.Errorf("Instructions = %d, want 27", got)
	}
	if got := tr.TakenBranches(); got != 4 {
		t.Errorf("TakenBranches = %d, want 4", got)
	}
	if got := tr.UniqueTakenPCs(); got != 3 {
		t.Errorf("UniqueTakenPCs = %d, want 3", got)
	}
}

func TestValidate(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := &Trace{Records: []Record{{PC: 1, Taken: true, Target: 0, Type: CondDirect}}}
	if bad.Validate() == nil {
		t.Error("taken branch with zero target accepted")
	}
	bad = &Trace{Records: []Record{{PC: 1, Taken: false, Type: UncondDirect}}}
	if bad.Validate() == nil {
		t.Error("not-taken unconditional accepted")
	}
	bad = &Trace{Records: []Record{{PC: 1, Taken: true, Target: 2, Type: BranchType(7)}}}
	if bad.Validate() == nil {
		t.Error("invalid type accepted")
	}
}

func TestStaticBranches(t *testing.T) {
	tr := sampleTrace()
	m := tr.StaticBranches()
	if len(m) != 4 {
		t.Fatalf("static branches = %d, want 4", len(m))
	}
	b := m[0x1000]
	if b == nil || b.Executions != 2 || b.TakenCount != 2 {
		t.Fatalf("branch 0x1000 stats = %+v", b)
	}
	if b.Bias() != 1.0 {
		t.Errorf("bias = %v, want 1", b.Bias())
	}
	if b.TargetDistance != 0x1000 {
		t.Errorf("target distance = %v, want %v", b.TargetDistance, 0x1000)
	}
	nt := m[0x3010]
	if nt.Bias() != 0 {
		t.Errorf("never-taken bias = %v, want 0", nt.Bias())
	}
}

func TestAccessStream(t *testing.T) {
	tr := sampleTrace()
	acc := tr.AccessStream()
	if len(acc) != 4 {
		t.Fatalf("access stream length = %d, want 4", len(acc))
	}
	// First access to 0x1000 must point at the second (index 2 in stream).
	if acc[0].PC != 0x1000 || acc[0].NextUse != 2 {
		t.Errorf("access 0 = %+v, want PC 0x1000 NextUse 2", acc[0])
	}
	for _, i := range []int{1, 2, 3} {
		if acc[i].NextUse != NoNextUse {
			t.Errorf("access %d NextUse = %d, want NoNextUse", i, acc[i].NextUse)
		}
	}
	if acc[3].Type != Return {
		t.Errorf("access 3 type = %v, want ret", acc[3].Type)
	}
	if acc[1].RecordIndex != 1 || acc[2].RecordIndex != 3 {
		t.Errorf("record indices wrong: %d, %d", acc[1].RecordIndex, acc[2].RecordIndex)
	}
}

// randomTrace builds a structurally valid random trace for property tests.
func randomTrace(r *xrand.RNG, n int) *Trace {
	tr := &Trace{Name: "prop"}
	pcs := make([]uint64, 50)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(r.Intn(1<<20))*4
	}
	for i := 0; i < n; i++ {
		rec := Record{
			PC:       pcs[r.Intn(len(pcs))],
			Type:     CondDirect,
			BlockLen: uint16(r.Intn(32)),
		}
		if r.Bool(0.7) {
			rec.Taken = true
			rec.Target = rec.PC + uint64(r.Intn(1<<12)) + 4
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func TestAccessStreamNextUseProperty(t *testing.T) {
	r := xrand.New(99)
	for iter := 0; iter < 20; iter++ {
		tr := randomTrace(r, 500)
		acc := tr.AccessStream()
		// Brute-force verification of NextUse.
		for i := range acc {
			want := NoNextUse
			for j := i + 1; j < len(acc); j++ {
				if acc[j].PC == acc[i].PC {
					want = j
					break
				}
			}
			if acc[i].NextUse != want {
				t.Fatalf("iter %d: access %d NextUse = %d, want %d", iter, i, acc[i].NextUse, want)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != tr.Name || len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := xrand.New(123)
	f := func(seed uint16) bool {
		_ = seed
		tr := randomTrace(r, 200)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("THRMTRC1"))); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestSlice(t *testing.T) {
	tr := sampleTrace()
	s := tr.Slice(1, 3)
	if s.Len() != 2 || s.Records[0].PC != 0x2004 {
		t.Fatalf("Slice wrong: %+v", s.Records)
	}
}

func TestStreamingReader(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Name() != "sample" || sr.Len() != uint64(len(tr.Records)) {
		t.Fatalf("header = %q/%d", sr.Name(), sr.Len())
	}
	for i := range tr.Records {
		rec, err := sr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != tr.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, tr.Records[i])
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("post-end error = %v, want EOF", err)
	}
}

func TestStreamingReaderTruncation(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every truncation point must produce an error (not a panic or a
	// silently short trace) from either NewReader or some Next call.
	for cut := 0; cut < len(full)-1; cut++ {
		sr, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		sawErr := false
		for {
			_, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr && sr.Len() > 0 && cut < len(full)-1 {
			// Only the final byte being cut can still parse cleanly when
			// the last record's fields happen to end early — structural
			// truncations must error.
			t.Fatalf("truncation at %d/%d parsed cleanly", cut, len(full))
		}
	}
}
