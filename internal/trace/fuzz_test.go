package trace

import (
	"bytes"
	"testing"
)

// FuzzParseTrace feeds arbitrary bytes to the THRMTRC1 decoder. The decoder
// must never panic or over-allocate on corrupt input, and any input it
// accepts must survive a write/read round trip unchanged.
func FuzzParseTrace(f *testing.F) {
	// Seed: a small valid trace of every branch type.
	valid := &Trace{
		Name: "seed",
		Records: []Record{
			{PC: 0x1000, Target: 0x2000, Type: UncondDirect, Taken: true},
			{PC: 0x1008, Target: 0x3000, Type: CondDirect, Taken: true},
			{PC: 0x1010, Target: 0, Type: CondDirect, Taken: false},
			{PC: 0x1018, Target: 0x4000, Type: IndirectJump, Taken: true},
			{PC: 0x1020, Target: 0x5000, Type: Call, Taken: true},
			{PC: 0x1028, Target: 0x6000, Type: IndirectCall, Taken: true},
			{PC: 0x6000, Target: 0x1030, Type: Return, Taken: true},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("THRMTRC1"))                                         // magic only, truncated header
	f.Add([]byte("THRMTRC1\x00\xff\xff\xff\xff\xff\xff\xff\xff\x7f")) // huge declared count
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decoding round trip: %v", err)
		}
		if tr.Name != tr2.Name || len(tr.Records) != len(tr2.Records) {
			t.Fatalf("round trip mismatch: %q/%d vs %q/%d",
				tr.Name, len(tr.Records), tr2.Name, len(tr2.Records))
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("record %d mismatch: %+v vs %+v", i, tr.Records[i], tr2.Records[i])
			}
		}
	})
}
