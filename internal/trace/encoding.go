package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// The on-disk trace format is a compact, stream-friendly binary encoding:
//
//	magic   "THRMTRC1"                      (8 bytes)
//	name    uvarint length + UTF-8 bytes
//	count   uvarint number of records
//	records count × record
//
// Each record encodes:
//
//	flags    1 byte: bits 0-2 type, bit 3 taken
//	pc       varint delta from previous record's PC (zigzag)
//	target   varint delta from PC (zigzag), only if taken
//	blockLen uvarint
//
// PC deltas make traces of real control flow (nearby branches) small; the
// format is a stand-in for the Intel PT capture files the paper's profiler
// consumes.

const magic = "THRMTRC1"

// ErrBadMagic is returned by Read when the input does not start with the
// trace file magic.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file)")

// Write serializes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	var prevPC uint64
	for i := range t.Records {
		r := &t.Records[i]
		flags := byte(r.Type) & 0x7
		if r.Taken {
			flags |= 0x8
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := putVarint(int64(r.PC) - int64(prevPC)); err != nil {
			return err
		}
		prevPC = r.PC
		if r.Taken {
			if err := putVarint(int64(r.Target) - int64(r.PC)); err != nil {
				return err
			}
		}
		if err := putUvarint(uint64(r.BlockLen)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace previously produced by Write. It validates the result
// before returning it.
func Read(r io.Reader) (*Trace, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	// Cap the preallocation: the header's declared count is untrusted, and a
	// tiny corrupt file claiming 2^34 records must not allocate gigabytes.
	prealloc := sr.Len()
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t := &Trace{Name: sr.Name(), Records: make([]Record, 0, prealloc)}
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
