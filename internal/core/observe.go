package core

import (
	"thermometer/internal/attribution"
	"thermometer/internal/btb"
	"thermometer/internal/detmap"
	"thermometer/internal/hintqual"
	"thermometer/internal/policy"
	"thermometer/internal/telemetry"
)

// observerState is the glue between the simulator's hot loop and the
// telemetry subsystem. It exists only when cfg.Observer is non-nil; the
// disabled path in Run is a single nil check per block.
//
// All metric handles are resolved by name here, once, so per-event updates
// on the instrumented path are plain atomic adds.
type observerState struct {
	obs *telemetry.Observer
	res *Result

	bank     *btbBank
	twoLevel *btb.TwoLevel

	// Registry handles (nil when obs.Metrics is nil).
	cInsert, cEvict, cBypass, cPrefetch                    *telemetry.Counter
	cRedirectBTB, cRedirectDir, cRedirectTgt               *telemetry.Counter
	hEvictionAge, hHitInterval, hFTQLead, hRedirectPenalty *telemetry.Histogram

	// insertCycle / lastHitCycle track per-branch timestamps for the
	// eviction-age and reuse-interval histograms. Entries are evicted when
	// the tracked branch leaves the BTB, so both maps stay O(BTB capacity)
	// regardless of trace length. Only populated while the observer is
	// attached, so the nil-observer path allocates nothing.
	insertCycle  map[uint64]uint64
	lastHitCycle map[uint64]uint64

	// att, when non-nil, receives every probe event for miss attribution
	// and regret tracing (see attachAttribution).
	att *attribution.Recorder

	// hq, when non-nil, receives every demand probe event for hint-quality
	// audit, and its drift windows close on the epoch grid (see
	// attachHintQual).
	hq *hintqual.Recorder
}

func newObserverState(obs *telemetry.Observer, res *Result, bank *btbBank, twoLevel *btb.TwoLevel) *observerState {
	o := &observerState{
		obs: obs, res: res, bank: bank, twoLevel: twoLevel,
		insertCycle:  make(map[uint64]uint64),
		lastHitCycle: make(map[uint64]uint64),
	}
	if m := obs.Metrics; m != nil {
		o.cInsert = m.Counter("btb_inserts")
		o.cEvict = m.Counter("btb_evictions")
		o.cBypass = m.Counter("btb_bypasses")
		o.cPrefetch = m.Counter("btb_prefetch_fills")
		o.cRedirectBTB = m.Counter("redirects_btb_miss")
		o.cRedirectDir = m.Counter("redirects_dir_mispredict")
		o.cRedirectTgt = m.Counter("redirects_target_mispredict")
		o.hEvictionAge = m.Histogram("btb_eviction_age_cycles")
		o.hHitInterval = m.Histogram("btb_hit_interval_cycles")
		o.hFTQLead = m.Histogram("ftq_lead_cycles")
		o.hRedirectPenalty = m.Histogram("redirect_penalty_cycles")
	}
	probe := o.probe
	bank.main.SetProbe(probe)
	if bank.cond != nil {
		bank.cond.SetProbe(probe)
	}
	if twoLevel != nil {
		twoLevel.L1.SetProbe(probe)
		twoLevel.L2.SetProbe(probe)
	}
	return o
}

// probe receives structural BTB events. Cycle stamps come from the live
// Result the simulator is accumulating into.
func (o *observerState) probe(kind btb.ProbeKind, set, way int, req *btb.Request, victim *btb.Entry) {
	if o.att != nil {
		forwardAttrib(o.att, o.res, kind, set, way, req, victim)
	}
	if o.hq != nil {
		forwardHintQual(o.hq, kind, set, req)
	}
	now := o.res.Cycles
	switch kind {
	case btb.ProbeHit:
		if o.hHitInterval != nil {
			if last, ok := o.lastHitCycle[req.PC]; ok && now >= last {
				o.hHitInterval.Observe(now - last)
			}
			o.lastHitCycle[req.PC] = now
		}
		return // hits are histogram-only: too frequent for the event trace
	case btb.ProbeInsert:
		if o.cInsert != nil {
			o.cInsert.Inc()
		}
		o.insertCycle[req.PC] = now
		o.event(telemetry.EvInsert, now, req.PC, req.Target, req.Temperature)
	case btb.ProbeEvict:
		if o.cEvict != nil {
			o.cEvict.Inc()
		}
		if ins, ok := o.insertCycle[victim.PC]; ok {
			if o.hEvictionAge != nil && now >= ins {
				o.hEvictionAge.Observe(now - ins)
			}
			delete(o.insertCycle, victim.PC)
		}
		// The victim is gone: drop its hit stamp too, so the map tracks
		// only resident branches. (A re-inserted branch restarts its
		// hit-interval series, which is the residency-local measurement
		// the histogram wants anyway.)
		delete(o.lastHitCycle, victim.PC)
		o.event(telemetry.EvEvict, now, req.PC, victim.PC, victim.Temperature)
	case btb.ProbeBypass:
		if o.cBypass != nil {
			o.cBypass.Inc()
		}
		o.event(telemetry.EvBypass, now, req.PC, req.Target, req.Temperature)
	case btb.ProbePrefetchFill:
		if o.cPrefetch != nil {
			o.cPrefetch.Inc()
		}
		o.insertCycle[req.PC] = now
		o.event(telemetry.EvPrefetchFill, now, req.PC, req.Target, req.Temperature)
	}
}

func (o *observerState) event(kind telemetry.EventKind, cycle, pc, arg uint64, temp uint8) {
	if o.obs.Events == nil {
		return
	}
	o.obs.Events.Record(telemetry.Event{Cycle: cycle, PC: pc, Arg: arg, Kind: kind, Temp: temp})
}

// onRedirect records one frontend resteer with its attributed cause.
func (o *observerState) onRedirect(btbMiss, dirMiss, targetMiss bool, pc uint64, penalty int) {
	var cause uint64
	switch {
	case btbMiss:
		cause = telemetry.RedirectBTBMiss
		if o.cRedirectBTB != nil {
			o.cRedirectBTB.Inc()
		}
	case dirMiss:
		cause = telemetry.RedirectDirMispredict
		if o.cRedirectDir != nil {
			o.cRedirectDir.Inc()
		}
	default:
		cause = telemetry.RedirectTargetMispredict
		if o.cRedirectTgt != nil {
			o.cRedirectTgt.Inc()
		}
	}
	if o.hRedirectPenalty != nil {
		o.hRedirectPenalty.Observe(uint64(penalty))
	}
	o.event(telemetry.EvRedirect, o.res.Cycles, pc, cause, 0)
}

// afterBlock runs once per simulated block: it samples the FTQ lead and
// closes an epoch when the instruction count crosses a boundary. The
// no-boundary case is one histogram add plus one compare.
func (o *observerState) afterBlock(leadCycles uint64) {
	if o.hFTQLead != nil {
		o.hFTQLead.Observe(leadCycles)
	}
	if s := o.obs.Epochs; s != nil && s.Due(o.res.Instructions) {
		cum := o.cumulative()
		s.Tick(&cum)
		if o.att != nil {
			o.att.SampleHeat(o.res.Instructions, o.bank.main)
		}
		if o.hq != nil {
			o.hq.SampleWindow(o.res.Instructions)
		}
	}
}

// cumulative assembles the sampler's snapshot, including the O(capacity)
// temperature census — only ever called at epoch boundaries and at finish.
func (o *observerState) cumulative() telemetry.Cumulative {
	st := o.bank.stats()
	cum := telemetry.Cumulative{
		Instructions: o.res.Instructions,
		Cycles:       o.res.Cycles,

		BTBAccesses:      st.Accesses,
		BTBHits:          st.Hits,
		BTBMisses:        st.Misses,
		BTBBypasses:      st.Bypasses,
		BTBEvictions:     st.Evictions,
		BTBPrefetchFills: st.PrefetchFills,

		RedirectStall: o.res.RedirectStall,
		ICacheStall:   o.res.ICacheStall,
		DataStall:     o.res.DataStall,
	}
	census := func(b *btb.BTB) {
		valid, byTemp := b.TemperatureCensus()
		cum.BTBValid += valid
		cum.BTBCapacity += uint64(b.Capacity())
		for t := range byTemp {
			cum.TempOccupancy[t] += byTemp[t]
		}
	}
	if o.twoLevel != nil {
		l1, l2 := o.twoLevel.Stats()
		cum.BTBAccesses = l1.Accesses
		cum.BTBHits = l1.Hits + o.twoLevel.Promotions
		cum.BTBMisses = o.twoLevel.TrueMisses()
		cum.BTBBypasses = l1.Bypasses
		cum.BTBEvictions = l1.Evictions + l2.Evictions
		census(o.twoLevel.L1)
		census(o.twoLevel.L2)
	} else {
		census(o.bank.main)
		if o.bank.cond != nil {
			census(o.bank.cond)
		}
	}
	return cum
}

// onWarmupReset realigns telemetry with the statistics restart at the end
// of warmup: the epoch series and cycle-stamp maps restart so the recorded
// time series covers exactly the measured region.
func (o *observerState) onWarmupReset() {
	if s := o.obs.Epochs; s != nil {
		s.Restart()
	}
	clear(o.insertCycle)
	clear(o.lastHitCycle)
}

// finish flushes the final partial epoch and publishes end-of-run gauges
// and per-policy decision counters.
func (o *observerState) finish() {
	if s := o.obs.Epochs; s != nil {
		cum := o.cumulative()
		s.Finish(&cum)
		if o.att != nil {
			// Close the heatmap with the final partial epoch too.
			o.att.SampleHeat(o.res.Instructions, o.bank.main)
		}
		if o.hq != nil {
			// Close the final partial drift window too.
			o.hq.SampleWindow(o.res.Instructions)
		}
	}
	m := o.obs.Metrics
	if m == nil {
		return
	}
	if o.att != nil {
		_, _, misses, regret := o.att.Counts()
		m.SetCounter("attrib_miss_compulsory", misses.Compulsory)
		m.SetCounter("attrib_miss_capacity", misses.Capacity)
		m.SetCounter("attrib_miss_conflict", misses.Conflict)
		m.SetCounter("attrib_decisions", regret.Decisions)
		m.SetCounter("attrib_agree_opt", regret.AgreeOPT)
		m.SetCounter("attrib_charged", regret.Charged)
		m.SetCounter("attrib_windfall", regret.Windfall)
	}
	if o.hq != nil {
		s := o.hq.Summary()
		m.SetCounter("hintqual_accesses", s.Accesses)
		m.SetCounter("hintqual_branches", uint64(s.Branches))
		m.SetCounter("hintqual_over_predicted", s.OverPredicted)
		m.SetCounter("hintqual_under_predicted", s.UnderPredicted)
		m.SetCounter("hintqual_windows", s.Windows)
		m.SetCounter("hintqual_drift_epochs", s.DriftEpochs)
	}
	cum := o.cumulative()
	m.Gauge("btb_valid_entries").Set(cum.BTBValid)
	m.Gauge("btb_capacity").Set(cum.BTBCapacity)
	m.SetCounter("instructions", o.res.Instructions)
	m.SetCounter("cycles", o.res.Cycles)
	if ev := o.obs.Events; ev != nil {
		// Surface ring truncation: a nonzero value means the trace outgrew
		// -eventcap and the oldest events were silently overwritten.
		m.SetCounter("dropped_events", ev.Dropped())
	}
	if ins, ok := o.res.Policy.(policy.Instrumented); ok {
		tc := ins.TelemetryCounters()
		for _, name := range detmap.SortedKeys(tc) {
			m.SetCounter("policy_"+name, tc[name])
		}
	}
}
