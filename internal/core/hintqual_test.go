package core

import (
	"testing"

	"thermometer/internal/attribution"
	"thermometer/internal/btb"
	"thermometer/internal/hintqual"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/telemetry"
	"thermometer/internal/trace"
)

// hintedConfig builds a Thermometer run whose hint table is profiled from
// the given training trace at the run's geometry.
func hintedConfig(t *testing.T, train *trace.Trace) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NewPolicy = func() btb.Policy { return policy.NewThermometer() }
	ht, _, err := profile.ProfileTrace(train, cfg.BTBEntries, cfg.BTBWays, profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hints = ht
	return cfg
}

// Like the observer and attribution layers, the hint-quality audit must be a
// pure read-side tap: attaching it cannot change a single architectural or
// timing statistic — alone, alongside an observer, or alongside both the
// observer and the attribution recorder.
func TestHintQualDoesNotPerturbResult(t *testing.T) {
	tr := smallTrace(t, "kafka")
	base := Run(tr, hintedConfig(t, tr))

	variants := map[string]func(*Config){
		"bare": func(cfg *Config) {
			cfg.HintQual = hintqual.New(hintqual.Options{})
		},
		"with-attribution": func(cfg *Config) {
			cfg.HintQual = hintqual.New(hintqual.Options{})
			cfg.Attribution = attribution.New(attribution.Options{})
		},
		"with-observer": func(cfg *Config) {
			cfg.HintQual = hintqual.New(hintqual.Options{})
			cfg.Observer = telemetry.New(telemetry.Options{EpochInterval: 5000})
		},
		"with-observer-and-attribution": func(cfg *Config) {
			cfg.HintQual = hintqual.New(hintqual.Options{})
			cfg.Observer = telemetry.New(telemetry.Options{EpochInterval: 5000})
			cfg.Attribution = attribution.New(attribution.Options{})
		},
	}
	for name, mutate := range variants {
		cfg := hintedConfig(t, tr)
		mutate(&cfg)
		r := Run(tr, cfg)
		if r.Cycles != base.Cycles || r.Instructions != base.Instructions {
			t.Fatalf("%s: audit perturbed timing: %d/%d cycles, %d/%d instructions",
				name, r.Cycles, base.Cycles, r.Instructions, base.Instructions)
		}
		if r.BTB != base.BTB {
			t.Fatalf("%s: audit perturbed BTB stats:\n with    %+v\n without %+v", name, r.BTB, base.BTB)
		}
		if r.RedirectStall != base.RedirectStall || r.ICacheStall != base.ICacheStall || r.DataStall != base.DataStall {
			t.Fatalf("%s: audit perturbed stall attribution", name)
		}
		if r.DirMispredicts != base.DirMispredicts {
			t.Fatalf("%s: audit perturbed direction prediction", name)
		}
	}
}

// The recorder's demand-access count must agree exactly with the BTB's own
// post-warmup demand statistics (the probe taps the same stream), and an
// observerless run must still close one drift window over the measured
// region.
func TestHintQualAccountingMatchesBTB(t *testing.T) {
	tr := smallTrace(t, "mediawiki")
	cfg := hintedConfig(t, tr)
	hq := hintqual.New(hintqual.Options{})
	cfg.HintQual = hq
	r := Run(tr, cfg)

	s := hq.Summary()
	if s.Accesses != r.BTB.Accesses {
		t.Fatalf("audit scored %d accesses, BTB counted %d", s.Accesses, r.BTB.Accesses)
	}
	if s.Branches == 0 || s.CoverageAccesses == 0 {
		t.Fatalf("empty audit: %+v", s)
	}
	if s.Windows != 1 {
		t.Fatalf("observerless run closed %d windows, want 1", s.Windows)
	}

	// With an observer, windows close on the epoch grid and the summary
	// counters land in the registry.
	cfg = hintedConfig(t, tr)
	hq = hintqual.New(hintqual.Options{})
	cfg.HintQual = hq
	obs := telemetry.New(telemetry.Options{EpochInterval: 5000})
	cfg.Observer = obs
	Run(tr, cfg)
	if s := hq.Summary(); s.Windows < 2 {
		t.Fatalf("epoch-gridded run closed %d windows, want >= 2", s.Windows)
	}
	snap := obs.Metrics.Snapshot()
	if snap.Counters["hintqual_accesses"] == 0 {
		t.Fatal("hintqual_accesses counter not published")
	}
	if _, ok := snap.Counters["hintqual_drift_epochs"]; !ok {
		t.Fatal("hintqual_drift_epochs counter not published")
	}
}

// A same-input profile must audit as substantially more accurate than a
// stale (heavily truncated) profile of the same workload — the measurement
// the cross-input drift story rests on.
func TestHintQualRanksProfileFreshness(t *testing.T) {
	tr := smallTrace(t, "kafka")
	audit := func(train *trace.Trace) hintqual.Summary {
		cfg := hintedConfig(t, train)
		hq := hintqual.New(hintqual.Options{})
		cfg.HintQual = hq
		Run(tr, cfg)
		return hq.Summary()
	}
	fresh := audit(tr)
	stale := audit(truncateTrace(tr, 10))
	if fresh.AccuracyBranches <= stale.AccuracyBranches {
		t.Fatalf("same-input profile accuracy %.3f not above stale-profile accuracy %.3f",
			fresh.AccuracyBranches, stale.AccuracyBranches)
	}
	if fresh.CoverageBranches <= stale.CoverageBranches {
		t.Fatalf("same-input coverage %.3f not above stale coverage %.3f",
			fresh.CoverageBranches, stale.CoverageBranches)
	}
}

// truncateTrace keeps the first 1/div of a trace's records, modeling an
// undertrained profiling run.
func truncateTrace(tr *trace.Trace, div int) *trace.Trace {
	n := len(tr.Records) / div
	return &trace.Trace{Name: tr.Name + "-stale", Records: tr.Records[:n]}
}
