package core

import (
	"testing"

	"thermometer/internal/workload"
)

func TestStallAttributionProbe(t *testing.T) {
	for _, name := range []string{"cassandra", "wordpress", "verilator"} {
		spec, _ := workload.App(name)
		tr := spec.Generate(0)
		r := Run(tr, DefaultConfig())
		total := float64(r.Cycles)
		issue := total - float64(r.RedirectStall+r.ICacheStall+r.DataStall)
		t.Logf("%-12s cyc=%d CPI=%.2f issue=%.0f%% redirect=%.0f%% icache=%.0f%% data=%.0f%% | L2iMPKI=%.2f dirMPKI=%.2f btbMPKI=%.2f rasMiss=%d ibtbMiss=%d",
			name, r.Cycles, total/float64(r.Instructions),
			100*issue/total, 100*float64(r.RedirectStall)/total,
			100*float64(r.ICacheStall)/total, 100*float64(r.DataStall)/total,
			r.L2iMPKI, 1000*float64(r.DirMispredicts)/float64(r.Instructions),
			r.BTBMPKI(), r.RASMispredicts, r.IBTBMispredicts)
		t.Logf("%-12s icache stall by level: L2=%d LLC=%d DRAM=%d", name,
			r.ICacheStallByLevel[1], r.ICacheStallByLevel[2], r.ICacheStallByLevel[3])
		t.Logf("%-12s instr miss MPKI: L1I=%.2f L2=%.2f LLC=%.2f", name,
			1000*float64(r.InstrL1Misses)/float64(r.Instructions),
			1000*float64(r.InstrL2Misses)/float64(r.Instructions),
			1000*float64(r.InstrLLCMisses)/float64(r.Instructions))
	}
}
