package core

import (
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/workload"
)

// TestTimingShapeDiagnostics prints the Fig 1 / Fig 2 speedup landscape.
func TestTimingShapeDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostics only")
	}
	var avg [8]float64
	for _, spec := range workload.Apps() {
		tr := spec.Generate(0)
		base := DefaultConfig()
		lru := Run(tr, base)

		run := func(mut func(*Config)) *Result {
			cfg := DefaultConfig()
			mut(&cfg)
			return Run(tr, cfg)
		}
		pBTB := run(func(c *Config) { c.PerfectBTB = true })
		pBP := run(func(c *Config) { c.PerfectBP = true })
		pIC := run(func(c *Config) { c.PerfectICache = true })
		srrip := run(func(c *Config) { c.NewPolicy = func() btb.Policy { return policy.NewSRRIP() } })
		opt := run(func(c *Config) { c.NewPolicy = func() btb.Policy { return policy.NewOPT() } })
		ht, _, err := profile.ProfileTrace(tr, base.BTBEntries, base.BTBWays, profile.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		therm := run(func(c *Config) {
			c.NewPolicy = func() btb.Policy { return policy.NewThermometer() }
			c.Hints = ht
		})

		sp := func(r *Result) float64 { return 100 * Speedup(lru, r) }
		vals := []float64{sp(pBTB), sp(pBP), sp(pIC), sp(srrip), sp(therm), sp(opt),
			lru.IPC(), lru.BTBMPKI()}
		for i, v := range vals {
			avg[i] += v
		}
		t.Logf("%-16s PerfBTB=%6.1f PerfBP=%6.1f PerfIC=%6.1f | SRRIP=%5.2f Therm=%5.2f OPT=%5.2f | IPC=%4.2f MPKI=%5.1f L2iMPKI=%5.2f",
			spec.Name, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6], vals[7], lru.L2iMPKI)
	}
	n := float64(len(workload.Apps()))
	t.Logf("%-16s PerfBTB=%6.1f PerfBP=%6.1f PerfIC=%6.1f | SRRIP=%5.2f Therm=%5.2f OPT=%5.2f | IPC=%4.2f MPKI=%5.1f",
		"AVG", avg[0]/n, avg[1]/n, avg[2]/n, avg[3]/n, avg[4]/n, avg[5]/n, avg[6]/n, avg[7]/n)
}
