package core

import (
	"testing"

	"thermometer/internal/belady"
	"thermometer/internal/profile"
	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

func TestStallAttributionConsistency(t *testing.T) {
	tr := smallTrace(t, "mysql")
	r := Run(tr, DefaultConfig())
	var byLevel uint64
	for _, v := range r.ICacheStallByLevel {
		byLevel += v
	}
	if byLevel != r.ICacheStall {
		t.Fatalf("per-level icache stalls %d != total %d", byLevel, r.ICacheStall)
	}
	// Issue cycles are what remains after stalls; must be positive and at
	// least instructions/width.
	issue := r.Cycles - r.RedirectStall - r.ICacheStall - r.DataStall
	if issue <= 0 || issue < r.Instructions/uint64(DefaultConfig().FetchWidth) {
		t.Fatalf("issue cycles %d implausible (instr %d)", issue, r.Instructions)
	}
}

func TestInstrMissLevelsMonotone(t *testing.T) {
	tr := smallTrace(t, "mysql")
	r := Run(tr, DefaultConfig())
	if r.InstrL1Misses < r.InstrL2Misses || r.InstrL2Misses < r.InstrLLCMisses {
		t.Fatalf("instruction miss funnel inverted: L1 %d, L2 %d, LLC %d",
			r.InstrL1Misses, r.InstrL2Misses, r.InstrLLCMisses)
	}
}

func TestDataStallsToggle(t *testing.T) {
	tr := smallTrace(t, "kafka")
	on := Run(tr, DefaultConfig())
	cfg := DefaultConfig()
	cfg.DataStalls = false
	off := Run(tr, cfg)
	if off.DataStall != 0 {
		t.Fatal("data stalls accumulated while disabled")
	}
	if off.Cycles >= on.Cycles {
		t.Fatalf("disabling data stalls did not help: %d >= %d", off.Cycles, on.Cycles)
	}
}

func TestHintsChangeOnlyBTBBehaviour(t *testing.T) {
	// Running LRU with hints attached must be identical to LRU without:
	// hints only matter to the Thermometer policy.
	spec, _ := workload.App("kafka")
	tr := spec.ScaleLength(1, 8).Generate(0)
	a := Run(tr, DefaultConfig())
	cfg := DefaultConfig()
	ht, _, err := profileTraceForTest(tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hints = ht
	b := Run(tr, cfg)
	if a.Cycles != b.Cycles || a.BTB.Misses != b.BTB.Misses {
		t.Fatalf("hints changed LRU behaviour: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// profileTraceForTest builds default hints for a test trace.
func profileTraceForTest(tr *trace.Trace) (*profile.HintTable, *belady.Result, error) {
	return profile.ProfileTrace(tr, 8192, 4, profile.DefaultConfig())
}
