package core_test

import (
	"bytes"
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/telemetry"
	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

// TestTelemetryDeterminism is the end-to-end reproducibility check the thermolint
// suite exists to protect: the same seeded workload simulated twice under
// every policy must produce byte-identical telemetry — the full metrics JSON
// report (registry snapshot, epoch series, event summary) and the epoch CSV.
// Any map-iteration leak, ambient input, or unguarded observer path shows up
// here as a diff.
func TestTelemetryDeterminism(t *testing.T) {
	spec, ok := workload.App(workload.AppNames()[0])
	if !ok {
		t.Fatal("no workloads registered")
	}
	tr := spec.ScaleLength(1, 20).Generate(0)

	cfgBase := core.DefaultConfig()
	hints, _, err := profile.ProfileTrace(tr, cfgBase.BTBEntries, cfgBase.BTBWays, profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	policies := map[string]func() btb.Policy{
		"lru":         func() btb.Policy { return policy.NewLRU() },
		"random":      func() btb.Policy { return policy.NewRandom() },
		"srrip":       func() btb.Policy { return policy.NewSRRIP() },
		"ghrp":        func() btb.Policy { return policy.NewGHRP() },
		"hawkeye":     func() btb.Policy { return policy.NewHawkeye() },
		"opt":         func() btb.Policy { return policy.NewOPT() },
		"thermometer": func() btb.Policy { return policy.NewThermometer() },
		"holistic":    func() btb.Policy { return policy.NewHolisticOnly() },
	}

	// run simulates once with a fresh observer and returns the two telemetry
	// artifacts. The manifest is fixed: a wall-clock or build stamp in it
	// would be an ambient input, which is exactly what noambient forbids.
	run := func(tr *trace.Trace, newPolicy func() btb.Policy) (json, csv []byte) {
		t.Helper()
		obs := telemetry.New(telemetry.Options{EpochInterval: 5000, EventCap: 1 << 12})
		cfg := cfgBase
		cfg.NewPolicy = newPolicy
		cfg.Hints = hints
		cfg.Observer = obs
		core.Run(tr, cfg)

		var j, c bytes.Buffer
		if err := obs.WriteJSON(&j, map[string]string{"trace": tr.Name, "test": "determinism"}); err != nil {
			t.Fatal(err)
		}
		if obs.Epochs != nil {
			if err := obs.Epochs.WriteCSV(&c); err != nil {
				t.Fatal(err)
			}
		}
		return j.Bytes(), c.Bytes()
	}

	for name, newPolicy := range policies {
		t.Run(name, func(t *testing.T) {
			json1, csv1 := run(tr, newPolicy)
			json2, csv2 := run(tr, newPolicy)
			if !bytes.Equal(json1, json2) {
				t.Errorf("metrics JSON differs between identical runs (%d vs %d bytes)", len(json1), len(json2))
			}
			if !bytes.Equal(csv1, csv2) {
				t.Errorf("epoch CSV differs between identical runs (%d vs %d bytes)", len(csv1), len(csv2))
			}
			if len(csv1) == 0 {
				t.Error("epoch CSV is empty; epoch sampling did not run")
			}
		})
	}
}
