package core

import (
	"thermometer/internal/attribution"
	"thermometer/internal/btb"
)

// attribProbe adapts btb probe events into attribution.Recorder calls,
// stamping decisions with the live cycle counter. It is installed directly
// when the run has no telemetry observer; otherwise observerState.probe
// forwards to the same recorder so the BTB keeps a single probe.
func attribProbe(att *attribution.Recorder, res *Result) btb.ProbeFunc {
	return func(kind btb.ProbeKind, set, way int, req *btb.Request, victim *btb.Entry) {
		forwardAttrib(att, res, kind, set, way, req, victim)
	}
}

// forwardAttrib routes one probe event to the recorder. Prefetch-initiated
// fills are not demand accesses, but their evictions are still replacement
// decisions and are recorded as such (the miss classifier only ever sees the
// demand stream).
func forwardAttrib(att *attribution.Recorder, res *Result, kind btb.ProbeKind, set, way int, req *btb.Request, victim *btb.Entry) {
	switch kind {
	case btb.ProbeHit:
		att.OnHit(set, way, req)
	case btb.ProbeInsert:
		att.OnInsert(set, way, req)
	case btb.ProbeEvict:
		att.OnEvict(res.Cycles, set, way, req, victim)
	case btb.ProbeBypass:
		att.OnBypass(res.Cycles, set, req)
	case btb.ProbePrefetchFill:
		att.OnPrefetchFill(set, way, req)
	}
}

// attachAttribution binds the recorder to this run's geometry and hooks it
// into the probe stream. Attribution models a single monolithic BTB: the
// shadow reference models assume one set-indexing function, which neither
// the Shotgun partition nor the two-level organization satisfies.
func attachAttribution(cfg *Config, res *Result, bank *btbBank, obs *observerState) {
	if cfg.ShotgunPartition || cfg.TwoLevelBTB != nil {
		panic("core: attribution requires a monolithic BTB (no ShotgunPartition/TwoLevelBTB)")
	}
	att := cfg.Attribution
	if att == nil {
		return
	}
	att.Bind(res.Policy.Name(), bank.main.Sets(), bank.main.Ways())
	if obs != nil {
		obs.att = att
		return
	}
	bank.main.SetProbe(attribProbe(att, res))
}
