package core

import (
	"sort"

	"thermometer/internal/trace"
)

// Prefetcher is a BTB prefetcher. Implementations live in package prefetch;
// the simulator invokes the hooks and supplies an insert callback that runs
// the fill through the replacement policy (so prefetch-induced pollution is
// modelled, as in Fig 4).
type Prefetcher interface {
	// Name identifies the prefetcher.
	Name() string
	// OnLineFill fires when an instruction cache line (64B block address)
	// is brought in by fetch or FDIP.
	OnLineFill(blockAddr uint64, insert InsertFunc)
	// OnBTBAccess fires after each demand BTB access.
	OnBTBAccess(pc, target uint64, hit bool, insert InsertFunc)
}

// InsertFunc installs a branch into the BTB as a prefetch (no demand-miss
// accounting). Implementations receive it from the simulator.
type InsertFunc func(pc, target uint64, typ trace.BranchType)

// BranchSite is static per-branch metadata the prefetchers index.
type BranchSite struct {
	PC     uint64
	Target uint64 // most recent taken target
	Type   trace.BranchType
}

// TraceMeta is static metadata precomputed from a trace: the branch
// population per 64-byte code block (what Confluence/Shotgun bundle with
// instruction lines) and per-PC access positions (the oracle that lets the
// OPT policy price prefetch-inserted entries).
type TraceMeta struct {
	// ByBlock maps a 64B block address to the taken-branch sites within.
	ByBlock map[uint64][]*BranchSite
	// Positions maps branch PC to its (ascending) access-stream indices.
	Positions map[uint64][]int
}

// BuildMeta scans the access stream once.
func BuildMeta(accesses []trace.Access) *TraceMeta {
	m := &TraceMeta{
		ByBlock:   make(map[uint64][]*BranchSite, 1<<12),
		Positions: make(map[uint64][]int, 1<<12),
	}
	sites := make(map[uint64]*BranchSite, 1<<12)
	for i := range accesses {
		a := &accesses[i]
		s := sites[a.PC]
		if s == nil {
			s = &BranchSite{PC: a.PC, Target: a.Target, Type: a.Type}
			sites[a.PC] = s
			blk := a.PC >> 6
			m.ByBlock[blk] = append(m.ByBlock[blk], s)
		}
		s.Target = a.Target
		m.Positions[a.PC] = append(m.Positions[a.PC], i)
	}
	return m
}

// NextUseAfter returns the access-stream index of the first access to pc
// strictly after index i (trace.NoNextUse if none). Prefetch inserts use it
// so the OPT policy can price them.
func (m *TraceMeta) NextUseAfter(pc uint64, i int) int {
	pos := m.Positions[pc]
	k := sort.SearchInts(pos, i+1)
	if k == len(pos) {
		return trace.NoNextUse
	}
	return pos[k]
}
