// Package core implements the timing simulator: a decoupled-frontend (FDIP)
// CPU model driven by branch traces, parameterized per Table 1 of the paper.
//
// The model is event-driven at basic-block granularity. A branch-prediction
// unit (BPU) walks blocks ahead of fetch, enqueueing them into the FTQ and
// letting FDIP prefetch their instruction lines; the run-ahead lead is what
// hides instruction-miss latency. The three frontend hazards the paper
// studies each cost a redirect and — critically — squash the FTQ, zeroing
// the prefetch lead so that subsequent instruction misses are exposed:
//
//   - BTB miss on a taken branch (decode-time redirect for direct
//     branches, execute-time for indirect);
//   - conditional direction misprediction (execute-time redirect);
//   - RAS/IBTB target misprediction (execute-time redirect).
//
// Retirement is 6-wide; a synthetic per-block load stream adds a backend
// CPI component so frontend improvements translate into realistic (not
// unbounded) speedups.
package core

import (
	"thermometer/internal/attribution"
	"thermometer/internal/bpred"
	"thermometer/internal/btb"
	"thermometer/internal/cache"
	"thermometer/internal/hintqual"
	"thermometer/internal/profile"
	"thermometer/internal/telemetry"
)

// Config parameterizes one simulation run.
type Config struct {
	// FetchWidth is instructions fetched/retired per cycle (Table 1: 6).
	FetchWidth int
	// FTQInstrCap is the FTQ capacity in instructions (Table 1: 24
	// entries × 8 = 192); it caps FDIP run-ahead.
	FTQInstrCap int
	// DecodeQueue and ROB sizes bound the backend absorption window.
	DecodeQueue int
	ROB         int

	// BTBEntries/BTBWays give the BTB geometry (Table 1: 8192 × 4);
	// BTBSets, when nonzero, overrides the derived set count.
	BTBEntries int
	BTBWays    int
	BTBSets    int
	// IBTBEntries and RASEntries size the companion predictors.
	IBTBEntries int
	RASEntries  int

	// DecodeRedirectPenalty and ExecRedirectPenalty are the bubble sizes
	// for front-end resteers.
	DecodeRedirectPenalty int
	ExecRedirectPenalty   int

	// NewPolicy constructs the BTB replacement policy for this run.
	NewPolicy func() btb.Policy
	// Hints supplies Thermometer temperature categories (may be nil).
	Hints *profile.HintTable
	// NewPredictor constructs the direction predictor (nil → TAGE).
	NewPredictor func() bpred.Predictor

	// Limit-study switches (Fig 2).
	PerfectBTB    bool
	PerfectBP     bool
	PerfectICache bool

	// Prefetcher is an optional BTB prefetcher (Confluence/Shotgun/Twig).
	Prefetcher Prefetcher
	// PrefetchDelay is the number of demand BTB accesses after which a
	// prefetch-issued fill becomes visible. It models the fill latency of
	// prefetched BTB entries relative to the run-ahead BPU: the BPU's
	// lookups lead the fetch/fill pipeline, so a prefetch issued now can
	// only satisfy lookups a couple of fetch groups later. Without it a
	// trace-driven prefetcher becomes a same-cycle oracle.
	PrefetchDelay int
	// ShotgunPartition statically splits the BTB by branch type as
	// Shotgun does (§2.2): a 60% partition for unconditional branches,
	// calls and returns, 40% for conditionals.
	ShotgunPartition bool
	// TwoLevelBTB, when non-nil, replaces the monolithic BTB with a
	// two-level organization (small fast L1 backed by a large L2); see
	// btb.TwoLevel. Mutually exclusive with ShotgunPartition and BTBSets.
	TwoLevelBTB *TwoLevelBTBConfig

	// Latencies configures the memory hierarchy.
	Latencies cache.Latencies

	// DataStalls enables the synthetic backend load stream.
	DataStalls bool
	// DataFootprint spans the synthetic load address space (bytes).
	DataFootprint uint64
	// MLP divides load miss latency (memory-level parallelism the OoO
	// window extracts).
	MLP int

	// WarmupFrac is the fraction of the trace used to warm caches, BTB,
	// and predictors before statistics and cycles accumulate (standard
	// trace-simulation methodology; ChampSim warms similarly).
	WarmupFrac float64

	// Observer, when non-nil, attaches the telemetry subsystem to the run:
	// registry counters and histograms, the epoch time series, and the
	// structured event trace (see package telemetry). nil — the default —
	// disables all instrumentation at the cost of one predictable branch
	// per simulated block (BenchmarkObserverDisabled quantifies it).
	Observer *telemetry.Observer

	// Attribution, when non-nil, attaches the miss-attribution and
	// replacement-regret audit layer (see package attribution): every BTB
	// miss is classified compulsory/capacity/conflict against Belady shadow
	// models and every replacement decision is scored against OPT's choice.
	// Requires a monolithic BTB (no ShotgunPartition or TwoLevelBTB). Its
	// heatmap samples on the Observer's epoch grid when one is attached.
	Attribution *attribution.Recorder

	// HintQual, when non-nil, attaches the hint-quality audit layer (see
	// package hintqual): every demand BTB access is scored against a
	// same-geometry Belady shadow to measure hint coverage, per-bucket
	// confusion against the profiled temperatures, and windowed temperature
	// drift. Requires a monolithic BTB (no ShotgunPartition or TwoLevelBTB).
	// Its drift windows close on the Observer's epoch grid when one is
	// attached; without an Observer the whole run is a single window.
	HintQual *hintqual.Recorder
}

// TwoLevelBTBConfig sizes the optional two-level BTB organization.
type TwoLevelBTBConfig struct {
	L1Entries, L1Ways int
	L2Entries, L2Ways int
	// BubbleCycles is the BPU stall on an L1-miss/L2-hit access.
	BubbleCycles int
}

// DefaultTwoLevelBTB returns a 1K+8K two-level organization comparable in
// total capacity to the Table 1 BTB.
func DefaultTwoLevelBTB() *TwoLevelBTBConfig {
	return &TwoLevelBTBConfig{L1Entries: 1024, L1Ways: 4, L2Entries: 8192, L2Ways: 4, BubbleCycles: 3}
}

// DefaultConfig returns the Table 1 configuration with an LRU BTB.
func DefaultConfig() Config {
	return Config{
		FetchWidth:            6,
		FTQInstrCap:           192,
		DecodeQueue:           60,
		ROB:                   352,
		BTBEntries:            8192,
		BTBWays:               4,
		IBTBEntries:           4096,
		RASEntries:            32,
		DecodeRedirectPenalty: 10,
		ExecRedirectPenalty:   20,
		PrefetchDelay:         32,
		Latencies:             cache.DefaultLatencies(),
		DataStalls:            true,
		DataFootprint:         64 << 20,
		MLP:                   4,
		WarmupFrac:            0.25,
	}
}

// Table1 returns the simulation-parameter rows exactly as the paper's
// Table 1 groups them, for the table1 experiment.
func Table1(c Config) [][2]string {
	return [][2]string{
		{"CPU", "6-wide, 24-entry (192-instruction) FTQ, 60-entry Decode Queue, 352-entry Re-order Buffer, 128-entry Reservation Station"},
		{"Branch prediction units", "8192-entry 4-way BTB, 4096-entry IBTB, 32-entry RAS, 64KB TAGE"},
		{"Caches", "64B block: 32KB, 8-way L1I, 48KB, 12-way L1D, 512KB 8-way L2C, 2MB 16-way LLC"},
	}
}
