package core_test

import (
	"runtime"
	"testing"

	"thermometer/internal/core"
	"thermometer/internal/workload"
)

// countAllocs returns the exact number of heap allocations fn performs.
func countAllocs(fn func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestRunSteadyStateDoesNotAllocate pins the unobserved record loop at zero
// allocations: core.Run allocates only during setup (structures sized from
// the config), so its allocation count must be independent of trace length.
// Simulating 4× the records with the same configuration must cost exactly
// the same number of allocations.
func TestRunSteadyStateDoesNotAllocate(t *testing.T) {
	app, _ := workload.App(workload.AppNames()[0])
	long := app.ScaleLength(1, 16).Generate(0)
	short := long.Slice(0, long.Len()/4)
	// Precompute the cached access streams so neither run pays the one-time
	// oracle pass inside the measured region.
	long.AccessStream()
	short.AccessStream()

	cfg := core.DefaultConfig()
	allocsShort := countAllocs(func() { core.Run(short, cfg) })
	allocsLong := countAllocs(func() { core.Run(long, cfg) })
	if allocsLong != allocsShort {
		t.Fatalf("allocation count grows with trace length: %d records -> %d allocs, %d records -> %d allocs",
			short.Len(), allocsShort, long.Len(), allocsLong)
	}
}
