package core

import (
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

func smallTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	spec, ok := workload.App(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	return spec.ScaleLength(1, 8).Generate(0)
}

func TestRunBasics(t *testing.T) {
	tr := smallTrace(t, "kafka")
	r := Run(tr, DefaultConfig())
	if r.Cycles == 0 || r.Instructions == 0 {
		t.Fatal("empty result")
	}
	if ipc := r.IPC(); ipc <= 0.1 || ipc > 6 {
		t.Fatalf("IPC = %v out of plausible range", ipc)
	}
	if r.BTB.Accesses == 0 || r.BTB.Misses == 0 {
		t.Fatalf("BTB stats empty: %+v", r.BTB)
	}
	if r.BTBMPKI() <= 0 {
		t.Fatal("BTB MPKI zero")
	}
	if r.DirLookups == 0 {
		t.Fatal("no direction lookups")
	}
	stalls := r.RedirectStall + r.ICacheStall + r.DataStall
	if stalls >= r.Cycles {
		t.Fatalf("stalls %d >= cycles %d", stalls, r.Cycles)
	}
}

func TestRunDeterminism(t *testing.T) {
	tr := smallTrace(t, "kafka")
	a := Run(tr, DefaultConfig())
	b := Run(tr, DefaultConfig())
	if a.Cycles != b.Cycles || a.BTB != b.BTB {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestPerfectModesAreFaster(t *testing.T) {
	tr := smallTrace(t, "mediawiki")
	base := Run(tr, DefaultConfig())
	for _, mut := range []struct {
		name string
		f    func(*Config)
	}{
		{"PerfectBTB", func(c *Config) { c.PerfectBTB = true }},
		{"PerfectBP", func(c *Config) { c.PerfectBP = true }},
		{"PerfectICache", func(c *Config) { c.PerfectICache = true }},
	} {
		cfg := DefaultConfig()
		mut.f(&cfg)
		r := Run(tr, cfg)
		if sp := Speedup(base, r); sp <= 0 {
			t.Errorf("%s speedup = %v, want > 0", mut.name, sp)
		}
	}
}

func TestPerfectBTBHasNoBTBMisses(t *testing.T) {
	tr := smallTrace(t, "kafka")
	cfg := DefaultConfig()
	cfg.PerfectBTB = true
	r := Run(tr, cfg)
	if r.BTB.Misses != 0 || r.BTBMissRedirects != 0 {
		t.Fatalf("perfect BTB missed: %+v", r.BTB)
	}
}

func TestPerfectBPHasNoMispredicts(t *testing.T) {
	tr := smallTrace(t, "kafka")
	cfg := DefaultConfig()
	cfg.PerfectBP = true
	r := Run(tr, cfg)
	if r.DirMispredicts != 0 {
		t.Fatalf("perfect BP mispredicted %d times", r.DirMispredicts)
	}
}

func TestPerfectICacheHasNoICacheStall(t *testing.T) {
	tr := smallTrace(t, "kafka")
	cfg := DefaultConfig()
	cfg.PerfectICache = true
	r := Run(tr, cfg)
	if r.ICacheStall != 0 {
		t.Fatalf("perfect I-cache stalled %d cycles", r.ICacheStall)
	}
}

func TestOPTBeatsLRUInTiming(t *testing.T) {
	tr := smallTrace(t, "tomcat")
	lru := Run(tr, DefaultConfig())
	cfg := DefaultConfig()
	cfg.NewPolicy = func() btb.Policy { return policy.NewOPT() }
	opt := Run(tr, cfg)
	if opt.BTB.Misses >= lru.BTB.Misses {
		t.Fatalf("OPT misses %d >= LRU %d", opt.BTB.Misses, lru.BTB.Misses)
	}
	if Speedup(lru, opt) <= 0 {
		t.Fatal("OPT not faster than LRU")
	}
}

func TestThermometerBetweenLRUAndOPT(t *testing.T) {
	spec, _ := workload.App("tomcat")
	tr := spec.ScaleLength(1, 4).Generate(0)
	ht, _, err := profile.ProfileTrace(tr, 8192, 4, profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lru := Run(tr, DefaultConfig())
	cfgT := DefaultConfig()
	cfgT.NewPolicy = func() btb.Policy { return policy.NewThermometer() }
	cfgT.Hints = ht
	therm := Run(tr, cfgT)
	cfgO := DefaultConfig()
	cfgO.NewPolicy = func() btb.Policy { return policy.NewOPT() }
	opt := Run(tr, cfgO)

	st, so := Speedup(lru, therm), Speedup(lru, opt)
	if st <= 0 {
		t.Fatalf("Thermometer speedup = %v, want > 0", st)
	}
	if st >= so {
		t.Fatalf("Thermometer %v >= OPT %v", st, so)
	}
	if st/so < 0.3 {
		t.Fatalf("Thermometer/OPT speedup ratio = %v, want > 0.3", st/so)
	}
	// Coverage stats flow through Result.Policy.
	th, ok := therm.Policy.(*policy.Thermometer)
	if !ok {
		t.Fatal("policy not Thermometer")
	}
	if c := th.Coverage(); c <= 0 || c > 1 {
		t.Fatalf("coverage = %v", c)
	}
}

func TestBiggerBTBFewerMisses(t *testing.T) {
	tr := smallTrace(t, "wordpress")
	small := DefaultConfig()
	small.BTBEntries = 2048
	big := DefaultConfig()
	big.BTBEntries = 32768
	rs, rb := Run(tr, small), Run(tr, big)
	if rb.BTB.Misses >= rs.BTB.Misses {
		t.Fatalf("32K-entry misses %d >= 2K-entry %d", rb.BTB.Misses, rs.BTB.Misses)
	}
	if rb.IPC() <= rs.IPC() {
		t.Fatalf("bigger BTB slower: %v <= %v", rb.IPC(), rs.IPC())
	}
}

func TestBTBSetsOverride(t *testing.T) {
	tr := smallTrace(t, "kafka")
	cfg := DefaultConfig()
	cfg.BTBSets = 1994 // the paper's 7979-entry configuration
	r := Run(tr, cfg)
	if r.Cycles == 0 {
		t.Fatal("no result")
	}
}

func TestShotgunPartition(t *testing.T) {
	tr := smallTrace(t, "kafka")
	cfg := DefaultConfig()
	cfg.ShotgunPartition = true
	r := Run(tr, cfg)
	if r.BTB.Accesses == 0 {
		t.Fatal("partitioned BTB unused")
	}
	// Static partitioning should not beat the unified BTB (§2.2).
	uni := Run(tr, DefaultConfig())
	if r.BTB.Misses < uni.BTB.Misses {
		t.Logf("note: partitioned misses %d < unified %d (acceptable but unexpected)",
			r.BTB.Misses, uni.BTB.Misses)
	}
}

func TestFTQSizeMonotonicOnStallHeavyApp(t *testing.T) {
	tr := smallTrace(t, "verilator")
	prev := uint64(0)
	for _, ftq := range []int{48, 192, 384} {
		cfg := DefaultConfig()
		cfg.FTQInstrCap = ftq
		r := Run(tr, cfg)
		if prev != 0 && r.Cycles > prev+prev/50 {
			t.Fatalf("FTQ %d made things >2%% slower: %d vs %d", ftq, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}

func TestWarmupReducesColdMisses(t *testing.T) {
	tr := smallTrace(t, "kafka")
	warm := DefaultConfig()
	cold := DefaultConfig()
	cold.WarmupFrac = 0
	rw, rc := Run(tr, warm), Run(tr, cold)
	// Without warmup, compulsory misses count: MPKI must be higher.
	if rc.BTBMPKI() <= rw.BTBMPKI() {
		t.Fatalf("no-warmup MPKI %v <= warmup MPKI %v", rc.BTBMPKI(), rw.BTBMPKI())
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(DefaultConfig())
	if len(rows) != 3 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	if rows[0][0] != "CPU" {
		t.Fatal("row order")
	}
}

func TestBuildMetaAndNextUse(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 0x100, Target: 0x200, Taken: true, Type: trace.UncondDirect},
		{PC: 0x130, Target: 0x300, Taken: true, Type: trace.UncondDirect},
		{PC: 0x100, Target: 0x200, Taken: true, Type: trace.UncondDirect},
	}}
	m := BuildMeta(tr.AccessStream())
	if len(m.ByBlock[0x100>>6]) != 2 {
		t.Fatalf("block sites = %d, want 2 (0x100 and 0x130 share a block)", len(m.ByBlock[0x100>>6]))
	}
	if nu := m.NextUseAfter(0x100, 0); nu != 2 {
		t.Fatalf("next use = %d, want 2", nu)
	}
	if nu := m.NextUseAfter(0x100, 2); nu != trace.NoNextUse {
		t.Fatalf("final next use = %d, want NoNextUse", nu)
	}
	if nu := m.NextUseAfter(0xdead, 0); nu != trace.NoNextUse {
		t.Fatal("unknown PC next use")
	}
}

func TestSpeedupMath(t *testing.T) {
	a := &Result{Instructions: 1000, Cycles: 1000}
	b := &Result{Instructions: 1000, Cycles: 800}
	if got := Speedup(a, b); got < 0.2499 || got > 0.2501 {
		t.Fatalf("speedup = %v, want 0.25", got)
	}
	if Speedup(&Result{}, b) != 0 {
		t.Fatal("zero-base speedup")
	}
}

func TestTwoLevelBTBInSim(t *testing.T) {
	tr := smallTrace(t, "tomcat")
	cfg := DefaultConfig()
	cfg.TwoLevelBTB = DefaultTwoLevelBTB()
	r := Run(tr, cfg)
	if r.BTB.Accesses == 0 || r.BTB.Hits == 0 {
		t.Fatalf("two-level stats empty: %+v", r.BTB)
	}
	// A 1K+8K two-level organization should miss less than a 1K-only BTB
	// and more than (or close to) a monolithic 8K BTB.
	small := DefaultConfig()
	small.BTBEntries = 1024
	rs := Run(tr, small)
	if r.BTB.Misses >= rs.BTB.Misses {
		t.Fatalf("two-level misses %d >= 1K-only %d", r.BTB.Misses, rs.BTB.Misses)
	}
	mono := Run(tr, DefaultConfig())
	if r.BTB.Misses*2 < mono.BTB.Misses {
		t.Fatalf("two-level misses %d implausibly below monolithic 8K %d", r.BTB.Misses, mono.BTB.Misses)
	}
}
