package core

import (
	"thermometer/internal/btb"
	"thermometer/internal/hintqual"
)

// forwardHintQual routes one probe event to the hint-quality recorder. Only
// the demand stream is scored: hits, inserts, and bypasses. Evictions are
// replacement decisions (the attribution layer's business) and prefetch
// fills are not demand accesses, so neither advances the Belady shadow.
func forwardHintQual(hq *hintqual.Recorder, kind btb.ProbeKind, set int, req *btb.Request) {
	switch kind {
	case btb.ProbeHit, btb.ProbeInsert, btb.ProbeBypass:
		hq.OnDemand(set, req)
	default:
		// ProbeEvict, ProbePrefetchFill: not demand accesses.
	}
}

// attachHintQual binds the recorder to this run's geometry and hint table
// and hooks it into the probe stream. Like attribution, hint-quality audit
// models a single monolithic BTB: the same-geometry Belady shadow assumes
// one set-indexing function, which neither the Shotgun partition nor the
// two-level organization satisfies.
//
// Probe routing composes with the other consumers: when an observer is
// attached, observerState.probe forwards to the recorder so the BTB keeps a
// single probe; when only attribution is attached, the two recorders share
// one installed probe; alone, the recorder's own probe is installed.
func attachHintQual(cfg *Config, res *Result, bank *btbBank, obs *observerState) {
	if cfg.ShotgunPartition || cfg.TwoLevelBTB != nil {
		panic("core: hint-quality audit requires a monolithic BTB (no ShotgunPartition/TwoLevelBTB)")
	}
	hq := cfg.HintQual
	if hq == nil {
		return
	}
	hq.Bind(res.Policy.Name(), bank.main.Sets(), bank.main.Ways(), cfg.Hints)
	if obs != nil {
		obs.hq = hq
		return
	}
	if att := cfg.Attribution; att != nil {
		bank.main.SetProbe(func(kind btb.ProbeKind, set, way int, req *btb.Request, victim *btb.Entry) {
			forwardAttrib(att, res, kind, set, way, req, victim)
			forwardHintQual(hq, kind, set, req)
		})
		return
	}
	bank.main.SetProbe(func(kind btb.ProbeKind, set, way int, req *btb.Request, victim *btb.Entry) {
		forwardHintQual(hq, kind, set, req)
	})
}
