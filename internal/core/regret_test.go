package core

import (
	"testing"

	"thermometer/internal/attribution"
	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/telemetry"
)

// TestRegretConservation checks the attribution layer's two accounting
// identities over full simulator runs, for both LRU and Thermometer:
//
//   - the miss taxonomy is exhaustive: compulsory + capacity + conflict
//     misses sum exactly to the run's demand BTB misses;
//   - regret conservation: charged − windfall = policy misses − shadow-OPT
//     misses, with every charged miss attributed to a recorded decision
//     (nothing unattributed), and the per-set and per-branch regret tables
//     each summing to the charged total.
//
// Both must survive the warmup statistics reset, which is why the whole
// identity is checked against the run's own post-warmup BTB counters.
func TestRegretConservation(t *testing.T) {
	tr := smallTrace(t, "kafka")
	ht, _, err := profileTraceForTest(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		newPolicy func() btb.Policy
		hints     bool
	}{
		{"lru", func() btb.Policy { return policy.NewLRU() }, false},
		{"thermometer", func() btb.Policy { return policy.NewThermometer() }, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			att := attribution.New(attribution.Options{RingCap: 1 << 20})
			cfg := DefaultConfig()
			cfg.NewPolicy = tc.newPolicy
			if tc.hints {
				cfg.Hints = ht
			}
			cfg.Attribution = att
			r := Run(tr, cfg)

			accesses, hits, misses, regret := att.Counts()
			if accesses != r.BTB.Accesses {
				t.Fatalf("attribution saw %d demand accesses, run counted %d", accesses, r.BTB.Accesses)
			}
			if hits != r.BTB.Hits || misses.Total != r.BTB.Misses {
				t.Fatalf("attribution hits/misses %d/%d, run %d/%d",
					hits, misses.Total, r.BTB.Hits, r.BTB.Misses)
			}
			if sum := misses.Compulsory + misses.Capacity + misses.Conflict; sum != misses.Total {
				t.Fatalf("taxonomy leaks: %d+%d+%d = %d != %d misses",
					misses.Compulsory, misses.Capacity, misses.Conflict, sum, misses.Total)
			}
			if misses.Compulsory == 0 || misses.Conflict+misses.Capacity == 0 {
				t.Fatalf("degenerate classification %+v", misses)
			}

			net := int64(r.BTB.Misses) - int64(regret.ShadowOPTMisses)
			if regret.Net != net {
				t.Fatalf("regret not conserved: charged %d - windfall %d = %d, want misses %d - OPT misses %d = %d",
					regret.Charged, regret.Windfall, regret.Net, r.BTB.Misses, regret.ShadowOPTMisses, net)
			}
			if regret.Net <= 0 {
				t.Fatalf("net regret %d: a real policy must trail OPT on this trace", regret.Net)
			}
			if regret.Unattributed != 0 {
				t.Fatalf("%d charged misses had no responsible decision on record", regret.Unattributed)
			}
			if regret.Decisions == 0 || regret.AgreeOPT == 0 {
				t.Fatalf("implausible decision counts %+v", regret)
			}

			rep := att.Report(10)
			var perSet, perBranch uint64
			for _, s := range rep.PerSet {
				perSet += s.Charged
			}
			// TopBranches is truncated; re-sum via a full report.
			full := att.Report(1 << 30)
			for _, b := range full.TopBranches {
				perBranch += b.Charged
			}
			if perSet != regret.Charged || perBranch != regret.Charged {
				t.Fatalf("regret tables leak: per-set %d, per-branch %d, charged %d",
					perSet, perBranch, regret.Charged)
			}
			if uint64(len(full.RecentDecisions))+full.DecisionsDropped != regret.Decisions {
				t.Fatalf("ring accounting: %d retained + %d dropped != %d decisions",
					len(full.RecentDecisions), full.DecisionsDropped, regret.Decisions)
			}
			_ = rep
		})
	}
}

// A run under the real OPT policy must match the shadow OPT model miss for
// miss: zero net regret is the strongest end-to-end check that the shadow
// reference and the online policy implement the same algorithm.
func TestRegretZeroUnderOPT(t *testing.T) {
	tr := smallTrace(t, "kafka")
	att := attribution.New(attribution.Options{})
	cfg := DefaultConfig()
	cfg.NewPolicy = func() btb.Policy { return policy.NewOPT() }
	cfg.Attribution = att
	r := Run(tr, cfg)

	_, _, _, regret := att.Counts()
	if regret.ShadowOPTMisses != r.BTB.Misses {
		t.Fatalf("shadow OPT misses %d != real OPT policy misses %d",
			regret.ShadowOPTMisses, r.BTB.Misses)
	}
	if regret.Net != 0 {
		t.Fatalf("net regret %d under the OPT policy, want 0 (charged %d, windfall %d)",
			regret.Net, regret.Charged, regret.Windfall)
	}
}

// Attaching the attribution recorder must not perturb the simulation, with
// or without a telemetry observer alongside.
func TestAttributionDoesNotPerturbResult(t *testing.T) {
	tr := smallTrace(t, "kafka")
	base := Run(tr, DefaultConfig())

	cfg := DefaultConfig()
	cfg.Attribution = attribution.New(attribution.Options{})
	r := Run(tr, cfg)
	if r.Cycles != base.Cycles || r.BTB != base.BTB {
		t.Fatalf("attribution perturbed the run: %+v vs %+v", r.BTB, base.BTB)
	}

	cfg, _ = observedConfig(telemetry.Options{EpochInterval: 5000, EventCap: 1 << 12})
	cfg.Attribution = attribution.New(attribution.Options{})
	r = Run(tr, cfg)
	if r.Cycles != base.Cycles || r.BTB != base.BTB {
		t.Fatalf("attribution+observer perturbed the run: %+v vs %+v", r.BTB, base.BTB)
	}
}

// With an observer attached, the heatmap samples on the epoch grid and
// closes with the final partial epoch.
func TestAttributionHeatmapOnEpochGrid(t *testing.T) {
	tr := smallTrace(t, "kafka")
	cfg, obs := observedConfig(telemetry.Options{EpochInterval: 5000})
	att := attribution.New(attribution.Options{})
	cfg.Attribution = att
	r := Run(tr, cfg)

	rep := att.Report(1)
	epochs := obs.Epochs.Epochs()
	if len(rep.Heat) == 0 {
		t.Fatal("no heatmap rows sampled")
	}
	if got, want := len(rep.Heat)+int(rep.HeatDropped), len(epochs); got != want {
		t.Fatalf("heat rows %d != epochs %d", got, want)
	}
	last := rep.Heat[len(rep.Heat)-1]
	if last.EndInstr != r.Instructions {
		t.Fatalf("last heat row at instruction %d, run ended at %d", last.EndInstr, r.Instructions)
	}
	if len(last.Valid) != cfg.BTBEntries/cfg.BTBWays {
		t.Fatalf("heat row has %d sets, want %d", len(last.Valid), cfg.BTBEntries/cfg.BTBWays)
	}
	var occupied int
	for _, v := range last.Valid {
		occupied += int(v)
	}
	if occupied == 0 {
		t.Fatal("final heat row shows an empty BTB after a full run")
	}
}

// Attribution on an unsupported organization must fail loudly, not produce
// silently-wrong shadow accounting.
func TestAttributionRejectsPartitionedBTB(t *testing.T) {
	tr := smallTrace(t, "kafka")
	cfg := DefaultConfig()
	cfg.ShotgunPartition = true
	cfg.Attribution = attribution.New(attribution.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted attribution with a partitioned BTB")
		}
	}()
	Run(tr, cfg)
}
