// Golden-equivalence tests for the full timing simulation: every policy is
// run through core.Run under the configuration variants the ISSUE names
// (base, hints, zero-warmup, two-level, partitioned, prefetching, observed)
// and the complete Result — cycle counts, stall attribution, BTB stats,
// policy telemetry, and the observer's JSON/CSV artifacts — is fingerprinted
// against a checked-in golden file.
//
// The goldens were generated from the pre-SoA simulator; they pin the
// restructured core (SoA BTB, devirtualized dispatch, specialized record
// loops, fill ring) to byte-identical results. Regenerate with:
//
//	go test ./internal/core -run TestGoldenCore -update-golden
package core_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/prefetch"
	"thermometer/internal/profile"
	"thermometer/internal/telemetry"
	"thermometer/internal/workload"
)

var updateCoreGolden = flag.Bool("update-golden", false, "rewrite the core golden file")

// coreFingerprint captures every externally visible number a simulation
// produces. Struct equality (all fields comparable) is the pass criterion.
type coreFingerprint struct {
	Instructions     uint64    `json:"instructions"`
	Cycles           uint64    `json:"cycles"`
	BTB              btb.Stats `json:"btb"`
	PrefetchFills    uint64    `json:"prefetch_fills"`
	BTBMissRedirects uint64    `json:"btb_miss_redirects"`
	DirLookups       uint64    `json:"dir_lookups"`
	DirMispredicts   uint64    `json:"dir_mispredicts"`
	RASMispredicts   uint64    `json:"ras_mispredicts"`
	IBTBMispredicts  uint64    `json:"ibtb_mispredicts"`
	RedirectStall    uint64    `json:"redirect_stall"`
	ICacheStall      uint64    `json:"icache_stall"`
	DataStall        uint64    `json:"data_stall"`
	StallByLevel     [4]uint64 `json:"stall_by_level"`
	L2iMPKI          float64   `json:"l2i_mpki"`
	InstrL1Misses    uint64    `json:"instr_l1_misses"`
	InstrL2Misses    uint64    `json:"instr_l2_misses"`
	InstrLLCMisses   uint64    `json:"instr_llc_misses"`
	// PolicyCounters flattens policy telemetry (thermometer coverage, SRRIP
	// aging rounds, ...) into a deterministic string.
	PolicyCounters string `json:"policy_counters,omitempty"`
	// TelemetrySHA256 hashes the observer's JSON report + epoch CSV for the
	// observed variant (empty otherwise).
	TelemetrySHA256 string `json:"telemetry_sha256,omitempty"`
}

var goldenCorePolicies = []struct {
	name string
	mk   func() btb.Policy
}{
	{"lru", func() btb.Policy { return policy.NewLRU() }},
	{"random", func() btb.Policy { return policy.NewRandom() }},
	{"srrip", func() btb.Policy { return policy.NewSRRIP() }},
	{"ghrp", func() btb.Policy { return policy.NewGHRP() }},
	{"hawkeye", func() btb.Policy { return policy.NewHawkeye() }},
	{"opt", func() btb.Policy { return policy.NewOPT() }},
	{"thermometer", func() btb.Policy { return policy.NewThermometer() }},
	{"thermometer-nobypass", func() btb.Policy { return policy.NewThermometerNoBypass() }},
	{"holistic", func() btb.Policy { return policy.NewHolisticOnly() }},
	{"transient", func() btb.Policy { return policy.NewTransientOnly() }},
}

func fingerprintResult(r *core.Result, telemetrySHA string) coreFingerprint {
	fp := coreFingerprint{
		Instructions:     r.Instructions,
		Cycles:           r.Cycles,
		BTB:              r.BTB,
		PrefetchFills:    r.PrefetchFills,
		BTBMissRedirects: r.BTBMissRedirects,
		DirLookups:       r.DirLookups,
		DirMispredicts:   r.DirMispredicts,
		RASMispredicts:   r.RASMispredicts,
		IBTBMispredicts:  r.IBTBMispredicts,
		RedirectStall:    r.RedirectStall,
		ICacheStall:      r.ICacheStall,
		DataStall:        r.DataStall,
		StallByLevel:     r.ICacheStallByLevel,
		L2iMPKI:          r.L2iMPKI,
		InstrL1Misses:    r.InstrL1Misses,
		InstrL2Misses:    r.InstrL2Misses,
		InstrLLCMisses:   r.InstrLLCMisses,
		TelemetrySHA256:  telemetrySHA,
	}
	if inst, ok := r.Policy.(policy.Instrumented); ok {
		counters := inst.TelemetryCounters()
		keys := make([]string, 0, len(counters))
		for k := range counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var buf bytes.Buffer
		for _, k := range keys {
			fmt.Fprintf(&buf, "%s=%d;", k, counters[k])
		}
		fp.PolicyCounters = buf.String()
	}
	return fp
}

func TestGoldenCore(t *testing.T) {
	spec, ok := workload.App(workload.AppNames()[0])
	if !ok {
		t.Fatal("no workloads registered")
	}
	tr := spec.ScaleLength(1, 20).Generate(0)
	hints, _, err := profile.ProfileTrace(tr, 8192, 4, profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	type variant struct {
		name string
		cfg  func() core.Config
		obs  bool
	}
	variants := []variant{
		{"base", func() core.Config { return core.DefaultConfig() }, false},
		{"hints", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.Hints = hints
			return cfg
		}, false},
		{"warmup0", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.Hints = hints
			cfg.WarmupFrac = 0
			return cfg
		}, false},
		{"twolevel", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.Hints = hints
			cfg.TwoLevelBTB = core.DefaultTwoLevelBTB()
			return cfg
		}, false},
		{"shotgun", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.Hints = hints
			cfg.ShotgunPartition = true
			return cfg
		}, false},
		{"prefetch", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.Hints = hints
			cfg.Prefetcher = prefetch.NewConfluence(core.BuildMeta(tr.AccessStream()))
			return cfg
		}, false},
		{"observed", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.Hints = hints
			return cfg
		}, true},
	}

	got := make(map[string]coreFingerprint)
	for _, p := range goldenCorePolicies {
		for _, v := range variants {
			cfg := v.cfg()
			mk := p.mk
			cfg.NewPolicy = func() btb.Policy { return mk() }
			telemetrySHA := ""
			var obs *telemetry.Observer
			if v.obs {
				obs = telemetry.New(telemetry.Options{EpochInterval: 5000, EventCap: 1 << 12})
				cfg.Observer = obs
			}
			r := core.Run(tr, cfg)
			if v.obs {
				var j bytes.Buffer
				if err := obs.WriteJSON(&j, map[string]string{"trace": tr.Name, "test": "golden"}); err != nil {
					t.Fatalf("%s/%s: telemetry JSON: %v", p.name, v.name, err)
				}
				var c bytes.Buffer
				if err := obs.Epochs.WriteCSV(&c); err != nil {
					t.Fatalf("%s/%s: epoch CSV: %v", p.name, v.name, err)
				}
				h := sha256.New()
				h.Write(j.Bytes())
				h.Write(c.Bytes())
				telemetrySHA = hex.EncodeToString(h.Sum(nil))
			}
			got[p.name+"/"+v.name] = fingerprintResult(r, telemetrySHA)
		}
	}

	path := filepath.Join("testdata", "golden_core.json")
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	if *updateCoreGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d configurations)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var wantMap map[string]coreFingerprint
	if err := json.Unmarshal(want, &wantMap); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	for k, w := range wantMap {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: configuration missing from this run", k)
			continue
		}
		if g != w {
			t.Errorf("%s: simulation diverged from golden\n got:  %+v\n want: %+v", k, g, w)
		}
	}
	for k := range got {
		if _, ok := wantMap[k]; !ok {
			t.Errorf("%s: configuration missing from golden file (run -update-golden)", k)
		}
	}
}
