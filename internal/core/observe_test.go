package core

import (
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/telemetry"
	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

func observedConfig(opts telemetry.Options) (Config, *telemetry.Observer) {
	cfg := DefaultConfig()
	obs := telemetry.New(opts)
	cfg.Observer = obs
	return cfg, obs
}

// The observer must be a pure read-side tap: attaching it cannot change a
// single architectural or timing statistic of the run.
func TestObserverDoesNotPerturbResult(t *testing.T) {
	tr := smallTrace(t, "kafka")
	base := Run(tr, DefaultConfig())

	cfg, _ := observedConfig(telemetry.Options{EpochInterval: 5000, EventCap: 1 << 12})
	r := Run(tr, cfg)

	if r.Cycles != base.Cycles || r.Instructions != base.Instructions {
		t.Fatalf("observer perturbed timing: %d/%d cycles, %d/%d instructions",
			r.Cycles, base.Cycles, r.Instructions, base.Instructions)
	}
	if r.BTB != base.BTB {
		t.Fatalf("observer perturbed BTB stats:\n with    %+v\n without %+v", r.BTB, base.BTB)
	}
	if r.RedirectStall != base.RedirectStall || r.ICacheStall != base.ICacheStall || r.DataStall != base.DataStall {
		t.Fatal("observer perturbed stall attribution")
	}
	if r.DirMispredicts != base.DirMispredicts {
		t.Fatal("observer perturbed direction prediction")
	}
}

// The epoch series must tile the measured (post-warmup) region exactly:
// contiguous boundaries, widths summing to the run's instruction count, and
// a flushed partial tail.
func TestObserverEpochsTileMeasuredRegion(t *testing.T) {
	tr := smallTrace(t, "mediawiki")
	cfg, obs := observedConfig(telemetry.Options{EpochInterval: 5000})
	r := Run(tr, cfg)

	epochs := obs.Epochs.Epochs()
	if len(epochs) < 2 {
		t.Fatalf("want several epochs, got %d", len(epochs))
	}
	var instrSum, cycleSum uint64
	prevEnd := uint64(0)
	for i, e := range epochs {
		if e.StartInstr != prevEnd {
			t.Fatalf("epoch %d starts at %d, want %d (contiguous)", i, e.StartInstr, prevEnd)
		}
		if e.EndInstr <= e.StartInstr {
			t.Fatalf("epoch %d empty: [%d, %d)", i, e.StartInstr, e.EndInstr)
		}
		if e.Instructions != e.EndInstr-e.StartInstr {
			t.Fatalf("epoch %d width %d != end-start %d", i, e.Instructions, e.EndInstr-e.StartInstr)
		}
		prevEnd = e.EndInstr
		instrSum += e.Instructions
		cycleSum += e.Cycles
	}
	if instrSum != r.Instructions {
		t.Fatalf("epochs cover %d instructions, run measured %d", instrSum, r.Instructions)
	}
	if cycleSum != r.Cycles {
		t.Fatalf("epochs cover %d cycles, run measured %d", cycleSum, r.Cycles)
	}
}

// End-to-end sanity of the registry contents after an instrumented run:
// structural counters are populated, totals match the Result, and
// policy-specific counters are exported under the policy_ prefix.
func TestObserverCountersEventsAndPolicyExport(t *testing.T) {
	tr := smallTrace(t, "kafka")
	cfg, obs := observedConfig(telemetry.Options{EpochInterval: 5000, EventCap: 1 << 12})
	cfg.NewPolicy = func() btb.Policy { return policy.NewGHRP() }
	r := Run(tr, cfg)

	snap := obs.Metrics.Snapshot()
	if snap.Counters["instructions"] != r.Instructions || snap.Counters["cycles"] != r.Cycles {
		t.Fatalf("exported totals %d/%d don't match result %d/%d",
			snap.Counters["instructions"], snap.Counters["cycles"], r.Instructions, r.Cycles)
	}
	if snap.Counters["btb_inserts"] == 0 {
		t.Fatal("no BTB inserts recorded")
	}
	if snap.Counters["redirects_btb_miss"] == 0 && snap.Counters["redirects_dir_mispredict"] == 0 {
		t.Fatal("no redirects attributed")
	}
	for _, name := range []string{"policy_ghrp_bypasses", "policy_ghrp_dead_evictions", "policy_ghrp_lru_fallbacks"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("missing policy counter %s", name)
		}
	}
	if h, ok := snap.Histograms["ftq_lead_cycles"]; !ok || h.Count == 0 {
		t.Fatal("FTQ lead histogram empty")
	}
	if obs.Events.Total() == 0 {
		t.Fatal("no events traced")
	}
	if g := snap.Gauges["btb_capacity"]; g == 0 {
		t.Fatal("btb_capacity gauge unset")
	}
}

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	spec, ok := workload.App("kafka")
	if !ok {
		b.Fatal("unknown app kafka")
	}
	return spec.ScaleLength(1, 8).Generate(0)
}

// BenchmarkObserverDisabled is the telemetry-off hot path: cfg.Observer ==
// nil must cost at most a nil check per block. Compare against
// BenchmarkObserverEnabled with
//
//	go test -bench 'Observer(Disabled|Enabled)' -benchtime 5x ./internal/core/
//
// The disabled path is the one the acceptance bar holds to <2% overhead
// versus the pre-telemetry simulator.
func BenchmarkObserverDisabled(b *testing.B) {
	tr := benchTrace(b)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(tr, cfg)
	}
}

// BenchmarkObserverEnabled measures the full-instrumentation cost (metrics
// + epochs + events) for comparison with the disabled path.
func BenchmarkObserverEnabled(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, _ := observedConfig(telemetry.Options{EpochInterval: 100000, EventCap: 1 << 16})
		Run(tr, cfg)
	}
}
