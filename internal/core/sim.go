package core

import (
	"thermometer/internal/bpred"
	"thermometer/internal/btb"
	"thermometer/internal/cache"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

// Result reports one timing simulation.
type Result struct {
	Name         string
	Instructions uint64
	Cycles       uint64

	BTB              btb.Stats
	PrefetchFills    uint64
	BTBMissRedirects uint64

	DirLookups      uint64
	DirMispredicts  uint64
	RASMispredicts  uint64
	IBTBMispredicts uint64

	// Stall cycle attribution.
	RedirectStall uint64
	ICacheStall   uint64
	DataStall     uint64
	// ICacheStall broken down by the worst level a block's lines reached.
	ICacheStallByLevel [4]uint64

	L2iMPKI float64
	// Post-warmup instruction miss counts per level.
	InstrL1Misses, InstrL2Misses, InstrLLCMisses uint64

	// Policy is the replacement policy instance used (for coverage stats).
	Policy btb.Policy
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// BTBMPKI returns demand BTB misses per kilo-instruction.
func (r *Result) BTBMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.BTB.Misses) / float64(r.Instructions) * 1000
}

// Speedup returns the IPC improvement of r over base as a fraction
// (0.087 = 8.7% faster).
func Speedup(base, r *Result) float64 {
	if base.Cycles == 0 || r.Cycles == 0 {
		return 0
	}
	return r.IPC()/base.IPC() - 1
}

// btbBank routes accesses to one or two BTBs (Shotgun's static partition).
type btbBank struct {
	main *btb.BTB
	cond *btb.BTB // nil unless partitioned
}

func (bk *btbBank) pick(t trace.BranchType) *btb.BTB {
	if bk.cond != nil && t.IsConditional() {
		return bk.cond
	}
	return bk.main
}

func (bk *btbBank) stats() btb.Stats {
	s := bk.main.Stats()
	if bk.cond != nil {
		c := bk.cond.Stats()
		s.Accesses += c.Accesses
		s.Hits += c.Hits
		s.Misses += c.Misses
		s.Bypasses += c.Bypasses
		s.Insertions += c.Insertions
		s.Evictions += c.Evictions
		s.TargetUpdates += c.TargetUpdates
		s.PrefetchFills += c.PrefetchFills
	}
	return s
}

// pendingFill is one prefetcher-inserted entry waiting out the fill delay.
type pendingFill struct {
	avail  int
	pc     uint64
	target uint64
	typ    trace.BranchType
}

// fillRing is a reusable FIFO of pending prefetch fills. Because every push
// carries avail = curIdx + PrefetchDelay and curIdx never decreases, avail
// values are monotonically nondecreasing in push order — so the fills ready
// at any moment are exactly a prefix of the queue, and a ring-buffer
// prefix-drain is equivalent to the order-preserving in-place filter it
// replaces. The ring grows when full but is reused across the whole run
// (and across runner jobs via the sim struct), instead of the append-only
// slice that previously grew without bound.
type fillRing struct {
	buf       []pendingFill
	head, n   int
	lastAvail int
}

func (r *fillRing) push(pf pendingFill) {
	if pf.avail < r.lastAvail {
		// The prefix-drain below is only valid while avail is monotone;
		// a regression means the fill pipeline model changed shape.
		panic("core: prefetch fill availability regressed; ring drain order broken")
	}
	r.lastAvail = pf.avail
	if r.n == len(r.buf) {
		grown := make([]pendingFill, max(4*len(r.buf), 64))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = pf
	r.n++
}

func (r *fillRing) peek() *pendingFill { return &r.buf[r.head] }

func (r *fillRing) pop() pendingFill {
	pf := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return pf
}

// sim holds the complete state of one timing simulation. Loop-invariant
// configuration (hint table, prefetcher, penalties, perfect-structure
// flags) is hoisted into fields once at setup; the record loop comes in
// specialized variants (observed/unobserved × prefetch/no-prefetch) so the
// steady-state path checks none of it per access.
type sim struct {
	cfg *Config
	res *Result

	accesses []trace.Access
	meta     *TraceMeta
	hints    *profile.HintTable

	bank     *btbBank
	twoLevel *btb.TwoLevel
	ibtb     *btb.IBTB
	ras      *btb.RAS
	hier     *cache.Hierarchy
	pred     bpred.Predictor // nil under PerfectBP
	obs      *observerState
	loadRNG  *xrand.RNG

	prefetcher Prefetcher
	insertFn   InsertFunc // bound once; handed to the prefetcher per event
	fills      fillRing

	// Reusable request buffers: btb.Access never retains the request, so
	// the demand and fill paths each recycle one instead of zeroing a
	// fresh struct per record. demandReq.Prefetch stays false and its
	// Temperature stays zero when no hint table is attached; fillReq is
	// the mirror image for matured prefetch fills.
	demandReq btb.Request
	fillReq   btb.Request

	width                    uint64
	minLeadCapH, maxLeadCapH uint64
	ftqInstrCap              uint64
	leadH                    uint64
	curIdx                   int

	perfectBTB    bool
	perfectICache bool
	dataStalls    bool
	execPenalty   int
	decodePenalty int
	prefetchDelay int
	mlp           int
	dataFootprint uint64
}

// Run simulates the trace under the configuration and returns the result.
func Run(tr *trace.Trace, cfg Config) *Result {
	if cfg.FetchWidth <= 0 || cfg.FTQInstrCap <= 0 {
		panic("core: invalid config")
	}
	accesses := tr.AccessStream()
	var meta *TraceMeta
	if cfg.Prefetcher != nil {
		meta = BuildMeta(accesses)
	}

	res := &Result{Name: tr.Name}

	// Structures.
	newPolicy := cfg.NewPolicy
	if newPolicy == nil {
		newPolicy = func() btb.Policy { return policy.NewLRU() }
	}
	bank := &btbBank{}
	res.Policy = newPolicy()
	if cfg.ShotgunPartition {
		// Shotgun statically partitions the BTB by branch type and spends
		// part of the unconditional partition on spatial-footprint
		// prefetch metadata (§2.2: it "wastes critical BTB capacity to
		// store unused prefetch metadata"). Model: 45% U-BTB, 40% C-BTB,
		// 15% of entries lost to metadata.
		u := cfg.BTBEntries * 45 / 100
		c := cfg.BTBEntries * 40 / 100
		bank.main = btb.New(u, cfg.BTBWays, res.Policy)
		bank.cond = btb.New(c, cfg.BTBWays, newPolicy())
	} else if cfg.BTBSets > 0 {
		bank.main = btb.NewWithSets(cfg.BTBSets, cfg.BTBWays, res.Policy)
	} else {
		bank.main = btb.New(cfg.BTBEntries, cfg.BTBWays, res.Policy)
	}
	var twoLevel *btb.TwoLevel
	if tl := cfg.TwoLevelBTB; tl != nil {
		twoLevel = btb.NewTwoLevel(tl.L1Entries, tl.L1Ways, res.Policy,
			tl.L2Entries, tl.L2Ways, newPolicy(), tl.BubbleCycles)
	}

	var pred bpred.Predictor
	if !cfg.PerfectBP {
		if cfg.NewPredictor != nil {
			pred = cfg.NewPredictor()
		} else {
			pred = bpred.NewTAGE()
		}
	}

	s := &sim{
		cfg:      &cfg,
		res:      res,
		accesses: accesses,
		meta:     meta,
		hints:    cfg.Hints,

		bank:     bank,
		twoLevel: twoLevel,
		ibtb:     btb.NewIBTB(cfg.IBTBEntries),
		ras:      btb.NewRAS(cfg.RASEntries),
		hier:     cache.NewHierarchy(),
		pred:     pred,
		loadRNG:  xrand.New(0xDA7A ^ uint64(len(tr.Records))),

		prefetcher: cfg.Prefetcher,

		width: uint64(cfg.FetchWidth),
		// FDIP lead: cycles by which FDIP's prefetch of the next block
		// precedes fetch's demand for it. Squashes reset it. Tracked in
		// half-cycles: the BPU produces up to two block predictions per
		// cycle (as in ChampSim's FDIP model), so while fetch consumes
		// roughly one block per cycle the frontend gains ~half a cycle of
		// lead per block, plus everything fetch spends stalled.
		//
		// The lead is capped by the FTQ: a full FTQ holds FTQInstrCap
		// instructions, which cover FTQInstrCap×CPI cycles of fetch time —
		// the slower the machine runs, the further (in cycles) a fixed FTQ
		// lets FDIP reach ahead. The cap therefore tracks running CPI.
		minLeadCapH: 2 * uint64(cfg.FTQInstrCap/cfg.FetchWidth),
		maxLeadCapH: 8 * uint64(cfg.FTQInstrCap),
		ftqInstrCap: uint64(cfg.FTQInstrCap),

		perfectBTB:    cfg.PerfectBTB,
		perfectICache: cfg.PerfectICache,
		dataStalls:    cfg.DataStalls,
		execPenalty:   cfg.ExecRedirectPenalty,
		decodePenalty: cfg.DecodeRedirectPenalty,
		prefetchDelay: cfg.PrefetchDelay,
		mlp:           cfg.MLP,
		dataFootprint: cfg.DataFootprint,
	}
	s.hier.Lat = cfg.Latencies
	if s.prefetcher != nil {
		// Bind the insert callback once: fills are delayed by PrefetchDelay
		// demand accesses to model the fill pipeline relative to the
		// run-ahead BPU.
		s.insertFn = func(pc, target uint64, typ trace.BranchType) {
			s.fills.push(pendingFill{avail: s.curIdx + s.prefetchDelay, pc: pc, target: target, typ: typ})
		}
	}

	// Telemetry attachment: obs is nil for the common uninstrumented run;
	// the unobserved loop variants never consult it.
	if cfg.Observer != nil {
		s.obs = newObserverState(cfg.Observer, res, bank, twoLevel)
	}
	if cfg.Attribution != nil {
		attachAttribution(&cfg, res, bank, s.obs)
	}
	if cfg.HintQual != nil {
		attachHintQual(&cfg, res, bank, s.obs)
	}

	recs := tr.Records
	warmupEnd := int(cfg.WarmupFrac * float64(len(recs)))
	if warmupEnd >= 0 && warmupEnd < len(recs) {
		// Equivalent to resetting when the record index reaches warmupEnd
		// (including warmupEnd == 0, where the reset fires before the
		// first record): simulate the warmup prefix, reset statistics with
		// all structures still trained, then simulate the rest.
		s.runRecords(recs[:warmupEnd])
		s.warmupReset()
		s.runRecords(recs[warmupEnd:])
	} else {
		s.runRecords(recs)
	}

	res.BTB = bank.stats()
	if twoLevel != nil {
		l1, _ := twoLevel.Stats()
		res.BTB = l1
		res.BTB.Hits = l1.Hits + twoLevel.Promotions
		res.BTB.Misses = twoLevel.TrueMisses()
	}
	res.L2iMPKI = s.hier.L2iMPKI(res.Instructions)
	res.InstrL1Misses = s.hier.InstrL1Misses
	res.InstrL2Misses = s.hier.InstrL2Misses
	res.InstrLLCMisses = s.hier.InstrLLCMisses
	if s.obs != nil {
		s.obs.finish()
	} else if cfg.HintQual != nil {
		// No epoch grid without an observer: the measured region closes as
		// one drift window so coverage/accuracy still have a sample.
		cfg.HintQual.SampleWindow(res.Instructions)
	}
	return res
}

// runRecords dispatches to the loop variant specialized for this run's
// instrumentation. The split hoists the observer and prefetcher checks out
// of the per-record path entirely: the fast variant's body mentions
// neither.
func (s *sim) runRecords(recs []trace.Record) {
	switch {
	case s.obs == nil && s.prefetcher == nil:
		s.loopFast(recs)
	case s.obs == nil:
		s.loopPrefetch(recs)
	case s.prefetcher == nil:
		s.loopObserved(recs)
	default:
		s.loopFull(recs)
	}
}

// warmupReset ends warmup: all structures stay trained, statistics and the
// clock restart.
func (s *sim) warmupReset() {
	res := s.res
	saved := *res
	*res = Result{Name: saved.Name, Policy: saved.Policy}
	s.hier.InstrFetches, s.hier.InstrL1Misses, s.hier.InstrL2Misses, s.hier.InstrLLCMisses = 0, 0, 0, 0
	s.bank.main.ResetStats()
	if s.bank.cond != nil {
		s.bank.cond.ResetStats()
	}
	if s.twoLevel != nil {
		s.twoLevel.L1.ResetStats()
		s.twoLevel.L2.ResetStats()
		s.twoLevel.Promotions, s.twoLevel.Demotions, s.twoLevel.L2Bubbles = 0, 0, 0
	}
	s.ras.Pushes, s.ras.Pops, s.ras.Overflows, s.ras.Underflows = 0, 0, 0, 0
	s.ibtb.Hits, s.ibtb.Misses = 0, 0
	if s.obs != nil {
		s.obs.onWarmupReset()
	}
	if s.cfg.Attribution != nil {
		s.cfg.Attribution.OnWarmupReset()
	}
	if s.cfg.HintQual != nil {
		s.cfg.HintQual.OnWarmupReset()
	}
}

// predictDirection runs the direction predictor for conditional branches
// and reports a mispredict. s.pred is nil under PerfectBP.
func (s *sim) predictDirection(r *trace.Record) bool {
	if !r.Type.IsConditional() || s.pred == nil {
		return false
	}
	s.res.DirLookups++
	dirMiss := s.pred.Predict(r.PC) != r.Taken
	if dirMiss {
		s.res.DirMispredicts++
	}
	s.pred.Update(r.PC, r.Taken)
	return dirMiss
}

// targetStructures runs the RAS and IBTB for a taken branch and reports a
// target mispredict.
func (s *sim) targetStructures(r *trace.Record) bool {
	targetMiss := false
	switch r.Type {
	case trace.Call:
		s.ras.Push(r.PC + 5)
	case trace.IndirectCall:
		s.ras.Push(r.PC + 6)
	case trace.Return:
		if addr, ok := s.ras.Pop(); !ok || addr != r.Target {
			targetMiss = true
			s.res.RASMispredicts++
		}
	default:
		// Direct jumps and conditional branches don't touch the RAS.
	}
	if r.Type == trace.IndirectJump || r.Type == trace.IndirectCall {
		if !s.ibtb.Update(r.PC, r.Target) {
			targetMiss = true
			s.res.IBTBMispredicts++
		}
	}
	return targetMiss
}

// btbAccess performs the demand BTB access for a taken branch through
// the reusable demand request (btb.Access never retains it). Every field
// that varies per access is written here; Prefetch is false for the
// request's whole lifetime and Temperature is only ever nonzero when a
// hint table is attached (in which case it is overwritten every call).
func (s *sim) btbAccess(r *trace.Record) (hit bool, bubble uint64) {
	req := &s.demandReq
	req.PC, req.Target, req.Type = r.PC, r.Target, r.Type
	req.NextUse, req.Index = s.accesses[s.curIdx].NextUse, s.curIdx
	if s.hints != nil {
		req.Temperature = s.hints.Lookup(r.PC)
	}
	if s.twoLevel != nil {
		tr2 := s.twoLevel.Access(req)
		return tr2.Hit, uint64(tr2.Bubble)
	}
	ar := s.bank.pick(r.Type).Access(req)
	return ar.Hit, 0
}

// applyFill installs one matured prefetch fill through the BTB's policy.
// The meta/hints presence checks were hoisted to setup: meta is non-nil
// whenever a prefetcher is configured (fills only mature in the prefetch
// variants), so only the hint-table branch remains here.
func (s *sim) applyFill(pf pendingFill) {
	req := &s.fillReq
	req.PC, req.Target, req.Type = pf.pc, pf.target, pf.typ
	req.Prefetch, req.Index = true, s.curIdx
	req.NextUse = trace.NoNextUse
	if s.meta != nil {
		req.NextUse = s.meta.NextUseAfter(pf.pc, s.curIdx)
	}
	if s.hints != nil {
		req.Temperature = s.hints.Lookup(pf.pc)
	}
	if s.bank.pick(pf.typ).PrefetchFill(req) {
		s.res.PrefetchFills++
	}
}

// drainFills applies every pending fill whose delay has elapsed. Monotone
// avail (asserted on push) makes the ready set a queue prefix.
func (s *sim) drainFills() {
	for s.fills.n > 0 && s.fills.peek().avail <= s.curIdx {
		s.applyFill(s.fills.pop())
	}
}

// redirectPenalty combines the redirect sources into the block's refill
// penalty.
func (s *sim) redirectPenalty(r *trace.Record, dirMiss, btbMiss, targetMiss bool) int {
	penalty := 0
	if dirMiss {
		penalty = s.execPenalty
	}
	if btbMiss {
		s.res.BTBMissRedirects++
		// Unconditional direct branches and calls are exposed at
		// decode. A conditional taken branch with no BTB entry sends
		// the frontend down the (plausible) fall-through path, so the
		// miss is only discovered when the branch executes; indirect
		// targets likewise resolve at execute.
		p := s.execPenalty
		if r.Type == trace.UncondDirect || r.Type == trace.Call || r.Type == trace.Return {
			p = s.decodePenalty
		}
		if p > penalty {
			penalty = p
		}
	}
	if targetMiss && s.execPenalty > penalty {
		penalty = s.execPenalty
	}
	return penalty
}

// applyPenalty charges a redirect: stall accounting plus the FTQ squash.
func (s *sim) applyPenalty(penalty int) {
	s.res.RedirectStall += uint64(penalty)
	// FTQ squash: FDIP loses its accumulated run-ahead. The BPU
	// restarts on the corrected path at resolution, so the
	// pipeline-refill bubble itself becomes the new head start —
	// the target block's instruction fetch overlaps the redirect
	// penalty rather than serializing behind it.
	s.leadH = 2 * uint64(penalty)
}

// icacheWalk fetches the instruction lines of the block following this
// branch and returns the fetch stall not hidden by FDIP lead. prefetching
// selects the variant that feeds line fills to the BTB prefetcher.
func (s *sim) icacheWalk(r *trace.Record, n uint64, prefetching bool) uint64 {
	start := r.PC + 4
	if r.Taken {
		start = r.Target
	}
	span := 4 * n
	first, last := start>>6, (start+span)>>6
	if last-first > 7 {
		last = first + 7
	}
	var worst int
	worstLvl := cache.L1
	for blk := first; blk <= last; blk++ {
		lvl, lat := s.hier.FetchInstr(blk << 6)
		if prefetching {
			s.prefetcher.OnLineFill(blk, s.insertFn)
		}
		if lat > worst {
			worst = lat
			worstLvl = lvl
		}
	}
	var stall uint64
	if lead := s.leadH / 2; uint64(worst) > lead {
		stall = uint64(worst) - lead
		s.res.ICacheStall += stall
		s.res.ICacheStallByLevel[worstLvl] += stall
	}
	return stall
}

// dataStallFor models backend data stalls for a block of n instructions.
func (s *sim) dataStallFor(n uint64) uint64 {
	var dataStall uint64
	loads := int(n) / 6
	for j := 0; j < loads; j++ {
		roll := s.loadRNG.Float64()
		var addr uint64
		switch {
		case roll < 0.85: // stack/top-of-heap working set
			addr = s.loadRNG.Uint64n(16 << 10)
		case roll < 0.99: // mid-size structures
			addr = (1 << 20) + s.loadRNG.Uint64n(128<<10)
		default: // big-data footprint
			addr = (8 << 20) + s.loadRNG.Uint64n(s.dataFootprint)
		}
		_, lat := s.hier.LoadData(addr)
		if lat > 0 && s.mlp > 0 {
			dataStall += uint64(lat / s.mlp)
		}
	}
	s.res.DataStall += dataStall
	return dataStall
}

// advanceClock issues the block and rolls the FDIP lead forward.
func (s *sim) advanceClock(n uint64, penalty int, stall, dataStall, btbBubble uint64) {
	issue := (n + s.width - 1) / s.width
	s.res.Cycles += issue + uint64(penalty) + stall + dataStall + btbBubble
	s.res.RedirectStall += btbBubble

	// The decoupled BPU runs ahead while fetch issues and stalls; half
	// a cycle is consumed producing this block's prediction. (The
	// redirect penalty is already accounted as the post-squash head
	// start above.)
	s.leadH += 2*(issue+stall+dataStall) - 1
	// leadCapH is at least minLeadCapH, so when the lead is under that
	// floor no clamp can apply and the CPI division is skipped.
	if s.leadH > s.minLeadCapH {
		if cap := s.leadCapH(); s.leadH > cap {
			s.leadH = cap
		}
	}
}

// leadCapH bounds the FDIP lead by the FTQ's reach at the running CPI.
func (s *sim) leadCapH() uint64 {
	if s.res.Instructions == 0 {
		return s.minLeadCapH
	}
	c := 2 * s.ftqInstrCap * s.res.Cycles / s.res.Instructions
	if c < s.minLeadCapH {
		return s.minLeadCapH
	}
	if c > s.maxLeadCapH {
		return s.maxLeadCapH
	}
	return c
}

// loopFast is the unobserved, non-prefetching record loop — the steady
// state of every sweep and benchmark. Its body touches no optional
// feature: no observer, no prefetcher, no pending-fill queue.
func (s *sim) loopFast(recs []trace.Record) {
	for i := range recs {
		r := &recs[i]
		n := uint64(r.BlockLen) + 1 // block + the branch itself
		s.res.Instructions += n

		dirMiss := s.predictDirection(r)

		btbMiss := false
		targetMiss := false
		var btbBubble uint64
		if r.Taken {
			targetMiss = s.targetStructures(r)
			if !s.perfectBTB {
				hit, bubble := s.btbAccess(r)
				btbMiss = !hit
				btbBubble = bubble
			}
			s.curIdx++
		}

		penalty := s.redirectPenalty(r, dirMiss, btbMiss, targetMiss)
		if penalty > 0 {
			s.applyPenalty(penalty)
		}

		var stall uint64
		if !s.perfectICache {
			stall = s.icacheWalk(r, n, false)
		}

		var dataStall uint64
		if s.dataStalls {
			dataStall = s.dataStallFor(n)
		}

		s.advanceClock(n, penalty, stall, dataStall, btbBubble)
	}
}

// loopPrefetch adds the BTB prefetcher hooks (fill draining, access
// feedback, line-fill taps) to the fast loop.
func (s *sim) loopPrefetch(recs []trace.Record) {
	for i := range recs {
		r := &recs[i]
		n := uint64(r.BlockLen) + 1
		s.res.Instructions += n

		dirMiss := s.predictDirection(r)

		btbMiss := false
		targetMiss := false
		var btbBubble uint64
		if r.Taken {
			targetMiss = s.targetStructures(r)
			if !s.perfectBTB {
				s.drainFills()
				hit, bubble := s.btbAccess(r)
				btbMiss = !hit
				btbBubble = bubble
				s.prefetcher.OnBTBAccess(r.PC, r.Target, !btbMiss, s.insertFn)
			}
			s.curIdx++
		}

		penalty := s.redirectPenalty(r, dirMiss, btbMiss, targetMiss)
		if penalty > 0 {
			s.applyPenalty(penalty)
		}

		var stall uint64
		if !s.perfectICache {
			stall = s.icacheWalk(r, n, true)
		}

		var dataStall uint64
		if s.dataStalls {
			dataStall = s.dataStallFor(n)
		}

		s.advanceClock(n, penalty, stall, dataStall, btbBubble)
	}
}

// loopObserved adds the telemetry observer hooks to the fast loop.
func (s *sim) loopObserved(recs []trace.Record) {
	// runRecords only selects this variant with an observer attached; the
	// loop body relies on that (one check here, not one per record).
	if s.obs == nil {
		panic("core: loopObserved selected without an observer")
	}
	for i := range recs {
		r := &recs[i]
		n := uint64(r.BlockLen) + 1
		s.res.Instructions += n

		dirMiss := s.predictDirection(r)

		btbMiss := false
		targetMiss := false
		var btbBubble uint64
		if r.Taken {
			targetMiss = s.targetStructures(r)
			if !s.perfectBTB {
				hit, bubble := s.btbAccess(r)
				btbMiss = !hit
				btbBubble = bubble
			}
			s.curIdx++
		}

		penalty := s.redirectPenalty(r, dirMiss, btbMiss, targetMiss)
		if penalty > 0 {
			s.obs.onRedirect(btbMiss, dirMiss, targetMiss, r.PC, penalty)
			s.applyPenalty(penalty)
		}

		var stall uint64
		if !s.perfectICache {
			stall = s.icacheWalk(r, n, false)
		}

		var dataStall uint64
		if s.dataStalls {
			dataStall = s.dataStallFor(n)
		}

		s.advanceClock(n, penalty, stall, dataStall, btbBubble)
		s.obs.afterBlock(s.leadH / 2)
	}
}

// loopFull runs with both the prefetcher and the observer attached, so it
// combines loopPrefetch's fill hooks with loopObserved's telemetry hooks.
func (s *sim) loopFull(recs []trace.Record) {
	// runRecords only selects this variant with an observer attached; the
	// loop body relies on that (one check here, not one per record).
	if s.obs == nil {
		panic("core: loopFull selected without an observer")
	}
	for i := range recs {
		r := &recs[i]
		n := uint64(r.BlockLen) + 1
		s.res.Instructions += n

		dirMiss := s.predictDirection(r)

		btbMiss := false
		targetMiss := false
		var btbBubble uint64
		if r.Taken {
			targetMiss = s.targetStructures(r)
			if !s.perfectBTB {
				s.drainFills()
				hit, bubble := s.btbAccess(r)
				btbMiss = !hit
				btbBubble = bubble
				s.prefetcher.OnBTBAccess(r.PC, r.Target, !btbMiss, s.insertFn)
			}
			s.curIdx++
		}

		penalty := s.redirectPenalty(r, dirMiss, btbMiss, targetMiss)
		if penalty > 0 {
			s.obs.onRedirect(btbMiss, dirMiss, targetMiss, r.PC, penalty)
			s.applyPenalty(penalty)
		}

		var stall uint64
		if !s.perfectICache {
			stall = s.icacheWalk(r, n, true)
		}

		var dataStall uint64
		if s.dataStalls {
			dataStall = s.dataStallFor(n)
		}

		s.advanceClock(n, penalty, stall, dataStall, btbBubble)
		s.obs.afterBlock(s.leadH / 2)
	}
}
