package core

import (
	"thermometer/internal/bpred"
	"thermometer/internal/btb"
	"thermometer/internal/cache"
	"thermometer/internal/policy"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

// Result reports one timing simulation.
type Result struct {
	Name         string
	Instructions uint64
	Cycles       uint64

	BTB              btb.Stats
	PrefetchFills    uint64
	BTBMissRedirects uint64

	DirLookups      uint64
	DirMispredicts  uint64
	RASMispredicts  uint64
	IBTBMispredicts uint64

	// Stall cycle attribution.
	RedirectStall uint64
	ICacheStall   uint64
	DataStall     uint64
	// ICacheStall broken down by the worst level a block's lines reached.
	ICacheStallByLevel [4]uint64

	L2iMPKI float64
	// Post-warmup instruction miss counts per level.
	InstrL1Misses, InstrL2Misses, InstrLLCMisses uint64

	// Policy is the replacement policy instance used (for coverage stats).
	Policy btb.Policy
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// BTBMPKI returns demand BTB misses per kilo-instruction.
func (r *Result) BTBMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.BTB.Misses) / float64(r.Instructions) * 1000
}

// Speedup returns the IPC improvement of r over base as a fraction
// (0.087 = 8.7% faster).
func Speedup(base, r *Result) float64 {
	if base.Cycles == 0 || r.Cycles == 0 {
		return 0
	}
	return r.IPC()/base.IPC() - 1
}

// btbBank routes accesses to one or two BTBs (Shotgun's static partition).
type btbBank struct {
	main *btb.BTB
	cond *btb.BTB // nil unless partitioned
}

func (bk *btbBank) pick(t trace.BranchType) *btb.BTB {
	if bk.cond != nil && t.IsConditional() {
		return bk.cond
	}
	return bk.main
}

func (bk *btbBank) stats() btb.Stats {
	s := bk.main.Stats()
	if bk.cond != nil {
		c := bk.cond.Stats()
		s.Accesses += c.Accesses
		s.Hits += c.Hits
		s.Misses += c.Misses
		s.Bypasses += c.Bypasses
		s.Insertions += c.Insertions
		s.Evictions += c.Evictions
		s.TargetUpdates += c.TargetUpdates
		s.PrefetchFills += c.PrefetchFills
	}
	return s
}

// Run simulates the trace under the configuration and returns the result.
func Run(tr *trace.Trace, cfg Config) *Result {
	if cfg.FetchWidth <= 0 || cfg.FTQInstrCap <= 0 {
		panic("core: invalid config")
	}
	accesses := tr.AccessStream()
	var meta *TraceMeta
	if cfg.Prefetcher != nil {
		meta = BuildMeta(accesses)
	}

	res := &Result{Name: tr.Name}

	// Structures.
	newPolicy := cfg.NewPolicy
	if newPolicy == nil {
		newPolicy = func() btb.Policy { return policy.NewLRU() }
	}
	bank := &btbBank{}
	res.Policy = newPolicy()
	if cfg.ShotgunPartition {
		// Shotgun statically partitions the BTB by branch type and spends
		// part of the unconditional partition on spatial-footprint
		// prefetch metadata (§2.2: it "wastes critical BTB capacity to
		// store unused prefetch metadata"). Model: 45% U-BTB, 40% C-BTB,
		// 15% of entries lost to metadata.
		u := cfg.BTBEntries * 45 / 100
		c := cfg.BTBEntries * 40 / 100
		bank.main = btb.New(u, cfg.BTBWays, res.Policy)
		bank.cond = btb.New(c, cfg.BTBWays, newPolicy())
	} else if cfg.BTBSets > 0 {
		bank.main = btb.NewWithSets(cfg.BTBSets, cfg.BTBWays, res.Policy)
	} else {
		bank.main = btb.New(cfg.BTBEntries, cfg.BTBWays, res.Policy)
	}
	var twoLevel *btb.TwoLevel
	if tl := cfg.TwoLevelBTB; tl != nil {
		twoLevel = btb.NewTwoLevel(tl.L1Entries, tl.L1Ways, res.Policy,
			tl.L2Entries, tl.L2Ways, newPolicy(), tl.BubbleCycles)
	}
	ibtb := btb.NewIBTB(cfg.IBTBEntries)
	ras := btb.NewRAS(cfg.RASEntries)
	hier := cache.NewHierarchy()
	hier.Lat = cfg.Latencies

	var pred bpred.Predictor
	if !cfg.PerfectBP {
		if cfg.NewPredictor != nil {
			pred = cfg.NewPredictor()
		} else {
			pred = bpred.NewTAGE()
		}
	}

	// FDIP lead: cycles by which FDIP's prefetch of the next block
	// precedes fetch's demand for it. Squashes reset it. Tracked in
	// half-cycles: the BPU produces up to two block predictions per cycle
	// (as in ChampSim's FDIP model), so while fetch consumes roughly one
	// block per cycle the frontend gains ~half a cycle of lead per block,
	// plus everything fetch spends stalled.
	//
	// The lead is capped by the FTQ: a full FTQ holds FTQInstrCap
	// instructions, which cover FTQInstrCap×CPI cycles of fetch time — the
	// slower the machine runs, the further (in cycles) a fixed FTQ lets
	// FDIP reach ahead. The cap therefore tracks running CPI.
	minLeadCapH := 2 * uint64(cfg.FTQInstrCap/cfg.FetchWidth)
	maxLeadCapH := 8 * uint64(cfg.FTQInstrCap)
	leadH := uint64(0)
	leadCapH := func(cycles, instrs uint64) uint64 {
		if instrs == 0 {
			return minLeadCapH
		}
		c := 2 * uint64(cfg.FTQInstrCap) * cycles / instrs
		if c < minLeadCapH {
			return minLeadCapH
		}
		if c > maxLeadCapH {
			return maxLeadCapH
		}
		return c
	}

	// Prefetch insert callback (closes over the running access index).
	// Fills are delayed by PrefetchDelay demand accesses to model the fill
	// pipeline relative to the run-ahead BPU.
	curIdx := 0
	type pendingFill struct {
		avail  int
		pc     uint64
		target uint64
		typ    trace.BranchType
	}
	var pending []pendingFill
	applyFill := func(pf pendingFill) {
		b := bank.pick(pf.typ)
		req := btb.Request{
			PC: pf.pc, Target: pf.target, Type: pf.typ,
			Prefetch: true, NextUse: trace.NoNextUse, Index: curIdx,
		}
		if meta != nil {
			req.NextUse = meta.NextUseAfter(pf.pc, curIdx)
		}
		if cfg.Hints != nil {
			req.Temperature = cfg.Hints.Lookup(pf.pc)
		}
		if b.PrefetchFill(&req) {
			res.PrefetchFills++
		}
	}
	insert := func(pc, target uint64, typ trace.BranchType) {
		pending = append(pending, pendingFill{avail: curIdx + cfg.PrefetchDelay, pc: pc, target: target, typ: typ})
	}
	drainFills := func() {
		n := 0
		for _, pf := range pending {
			if pf.avail <= curIdx {
				applyFill(pf)
			} else {
				pending[n] = pf
				n++
			}
		}
		pending = pending[:n]
	}
	touchLine := func(blk uint64) {
		if cfg.Prefetcher != nil {
			cfg.Prefetcher.OnLineFill(blk, insert)
		}
	}

	loadRNG := xrand.New(0xDA7A ^ uint64(len(tr.Records)))
	width := uint64(cfg.FetchWidth)

	// Telemetry attachment: obs is nil for the common uninstrumented run,
	// and every instrumentation point below hides behind that one check.
	var obs *observerState
	if cfg.Observer != nil {
		obs = newObserverState(cfg.Observer, res, bank, twoLevel)
	}
	if cfg.Attribution != nil {
		attachAttribution(&cfg, res, bank, obs)
	}

	recs := tr.Records
	warmupEnd := int(cfg.WarmupFrac * float64(len(recs)))
	for i := range recs {
		if i == warmupEnd {
			// End of warmup: all structures stay trained, statistics and
			// the clock restart.
			saved := *res
			*res = Result{Name: saved.Name, Policy: saved.Policy}
			hier.InstrFetches, hier.InstrL1Misses, hier.InstrL2Misses, hier.InstrLLCMisses = 0, 0, 0, 0
			bank.main.ResetStats()
			if bank.cond != nil {
				bank.cond.ResetStats()
			}
			if twoLevel != nil {
				twoLevel.L1.ResetStats()
				twoLevel.L2.ResetStats()
				twoLevel.Promotions, twoLevel.Demotions, twoLevel.L2Bubbles = 0, 0, 0
			}
			ras.Pushes, ras.Pops, ras.Overflows, ras.Underflows = 0, 0, 0, 0
			ibtb.Hits, ibtb.Misses = 0, 0
			if obs != nil {
				obs.onWarmupReset()
			}
			if cfg.Attribution != nil {
				cfg.Attribution.OnWarmupReset()
			}
		}
		r := &recs[i]
		n := uint64(r.BlockLen) + 1 // block + the branch itself
		res.Instructions += n

		// --- Direction prediction (conditionals). ---
		dirMiss := false
		if r.Type.IsConditional() && !cfg.PerfectBP {
			res.DirLookups++
			if pred.Predict(r.PC) != r.Taken {
				dirMiss = true
				res.DirMispredicts++
			}
			pred.Update(r.PC, r.Taken)
		}

		// --- BTB / IBTB / RAS for taken branches. ---
		btbMiss := false
		targetMiss := false
		var btbBubble uint64
		if r.Taken {
			switch r.Type {
			case trace.Call:
				ras.Push(r.PC + 5)
			case trace.IndirectCall:
				ras.Push(r.PC + 6)
			case trace.Return:
				if addr, ok := ras.Pop(); !ok || addr != r.Target {
					targetMiss = true
					res.RASMispredicts++
				}
			default:
				// Direct jumps and conditional branches don't touch the RAS.
			}
			if r.Type == trace.IndirectJump || r.Type == trace.IndirectCall {
				if !ibtb.Update(r.PC, r.Target) {
					targetMiss = true
					res.IBTBMispredicts++
				}
			}
			if !cfg.PerfectBTB {
				if cfg.Prefetcher != nil {
					drainFills()
				}
				req := btb.Request{
					PC: r.PC, Target: r.Target, Type: r.Type,
					NextUse: accesses[curIdx].NextUse, Index: curIdx,
				}
				if cfg.Hints != nil {
					req.Temperature = cfg.Hints.Lookup(r.PC)
				}
				hit := false
				if twoLevel != nil {
					tr2 := twoLevel.Access(&req)
					hit = tr2.Hit
					btbBubble = uint64(tr2.Bubble)
				} else {
					ar := bank.pick(r.Type).Access(&req)
					hit = ar.Hit
				}
				btbMiss = !hit
				if cfg.Prefetcher != nil {
					cfg.Prefetcher.OnBTBAccess(r.PC, r.Target, hit, insert)
				}
			}
			curIdx++
		}

		// --- Redirect penalty. ---
		penalty := 0
		if dirMiss {
			penalty = cfg.ExecRedirectPenalty
		}
		if btbMiss {
			res.BTBMissRedirects++
			// Unconditional direct branches and calls are exposed at
			// decode. A conditional taken branch with no BTB entry sends
			// the frontend down the (plausible) fall-through path, so the
			// miss is only discovered when the branch executes; indirect
			// targets likewise resolve at execute.
			p := cfg.ExecRedirectPenalty
			if r.Type == trace.UncondDirect || r.Type == trace.Call || r.Type == trace.Return {
				p = cfg.DecodeRedirectPenalty
			}
			if p > penalty {
				penalty = p
			}
		}
		if targetMiss && cfg.ExecRedirectPenalty > penalty {
			penalty = cfg.ExecRedirectPenalty
		}
		if penalty > 0 {
			if obs != nil {
				obs.onRedirect(btbMiss, dirMiss, targetMiss, r.PC, penalty)
			}
			res.RedirectStall += uint64(penalty)
			// FTQ squash: FDIP loses its accumulated run-ahead. The BPU
			// restarts on the corrected path at resolution, so the
			// pipeline-refill bubble itself becomes the new head start —
			// the target block's instruction fetch overlaps the redirect
			// penalty rather than serializing behind it.
			leadH = 2 * uint64(penalty)
		}

		// --- Instruction fetch for the block following this branch. ---
		var stall uint64
		if !cfg.PerfectICache {
			start := r.PC + 4
			if r.Taken {
				start = r.Target
			}
			span := 4 * n
			first, last := start>>6, (start+span)>>6
			if last-first > 7 {
				last = first + 7
			}
			var worst int
			worstLvl := cache.L1
			for blk := first; blk <= last; blk++ {
				lvl, lat := hier.FetchInstr(blk << 6)
				touchLine(blk)
				if lat > worst {
					worst = lat
					worstLvl = lvl
				}
			}
			if lead := leadH / 2; uint64(worst) > lead {
				stall = uint64(worst) - lead
				res.ICacheStall += stall
				res.ICacheStallByLevel[worstLvl] += stall
			}
		}

		// --- Backend data stalls. ---
		var dataStall uint64
		if cfg.DataStalls {
			loads := int(n) / 6
			for j := 0; j < loads; j++ {
				roll := loadRNG.Float64()
				var addr uint64
				switch {
				case roll < 0.85: // stack/top-of-heap working set
					addr = loadRNG.Uint64n(16 << 10)
				case roll < 0.99: // mid-size structures
					addr = (1 << 20) + loadRNG.Uint64n(128<<10)
				default: // big-data footprint
					addr = (8 << 20) + loadRNG.Uint64n(cfg.DataFootprint)
				}
				_, lat := hier.LoadData(addr)
				if lat > 0 && cfg.MLP > 0 {
					dataStall += uint64(lat / cfg.MLP)
				}
			}
			res.DataStall += dataStall
		}

		// --- Advance the clock. ---
		issue := (n + width - 1) / width
		res.Cycles += issue + uint64(penalty) + stall + dataStall + btbBubble
		res.RedirectStall += btbBubble

		// The decoupled BPU runs ahead while fetch issues and stalls; half
		// a cycle is consumed producing this block's prediction. (The
		// redirect penalty is already accounted as the post-squash head
		// start above.)
		leadH += 2*(issue+stall+dataStall) - 1
		if cap := leadCapH(res.Cycles, res.Instructions); leadH > cap {
			leadH = cap
		}

		if obs != nil {
			obs.afterBlock(leadH / 2)
		}
	}

	res.BTB = bank.stats()
	if twoLevel != nil {
		l1, _ := twoLevel.Stats()
		res.BTB = l1
		res.BTB.Hits = l1.Hits + twoLevel.Promotions
		res.BTB.Misses = twoLevel.TrueMisses()
	}
	res.L2iMPKI = hier.L2iMPKI(res.Instructions)
	res.InstrL1Misses = hier.InstrL1Misses
	res.InstrL2Misses = hier.InstrL2Misses
	res.InstrLLCMisses = hier.InstrLLCMisses
	if obs != nil {
		obs.finish()
	}
	return res
}
