package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"thermometer/internal/runner"
)

// Wire messages for the coordinator/worker protocol. Everything is JSON over
// HTTP: small, debuggable with curl, and strict — unknown fields are
// rejected so a version skew between coordinator and worker fails loudly
// instead of silently dropping a field.
//
// Both sides treat the peer as untrusted input: every decoder bounds the
// collection sizes it will accept before touching them (the boundedalloc
// analyzer's no-trusted-count-preallocation rule), and the fuzzers in
// fuzz_test.go hold the decoders to "never panic, and accepted input
// round-trips".

// Wire bounds. MaxLeaseJobs caps the jobs in one lease grant and the
// results in one completion report; MaxJobIndex caps a job's sweep index
// (comfortably above the server's 4096-spec submission cap, with room for
// embedders that raise it).
const (
	MaxLeaseJobs = 4096
	MaxJobIndex  = 1 << 20
	// maxWireName bounds free-text identity fields (worker names, IDs).
	maxWireName = 256
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is a human-readable worker label (host:port, hostname); it shows
	// up on /debug/sweep. Optional.
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its identity and the fleet timing
// parameters it must honor.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// HeartbeatMs is how often the worker must beat (and how often it
	// should poll for leases when idle).
	HeartbeatMs int64 `json:"heartbeat_ms"`
	// LeaseTTLMs is the heartbeat age after which the coordinator declares
	// the worker dead and requeues its jobs.
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
	// LeaseSize is the maximum jobs the coordinator grants per lease.
	LeaseSize int `json:"lease_size"`
}

// Heartbeat is a worker liveness beat (also implicit in every lease and
// complete call).
type Heartbeat struct {
	WorkerID string `json:"worker_id"`
}

// LeaseRequest asks for work. Max caps the grant size (0 means the
// coordinator's configured lease size).
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max,omitempty"`
}

// LeaseJob is one job inside a lease grant: the sweep slot it fills and the
// normalized spec to execute. Key is the spec's content address — the
// shared-cache key — precomputed by the coordinator so the worker never has
// to re-derive it.
type LeaseJob struct {
	Index int         `json:"index"`
	Key   string      `json:"key"`
	Spec  runner.Spec `json:"spec"`
}

// LeaseGrant is a batch of jobs assigned to one worker.
type LeaseGrant struct {
	LeaseID string     `json:"lease_id"`
	Sweep   string     `json:"sweep"`
	Jobs    []LeaseJob `json:"jobs"`
	// Stolen marks a grant carved out of another worker's lease (the
	// victim's un-started tail); informational.
	Stolen bool `json:"stolen,omitempty"`
}

// LeaseResponse answers a lease request. A nil Lease means no work is
// available right now; the worker should poll again after PollMs.
type LeaseResponse struct {
	Lease  *LeaseGrant `json:"lease,omitempty"`
	PollMs int64       `json:"poll_ms,omitempty"`
}

// JobResult is one completed job inside a completion report. State is the
// runner's terminal progress classification ("done" or "failed" — workers
// never report invalid or canceled jobs: specs arrive pre-normalized, and a
// canceled worker abandons its lease instead of reporting).
type JobResult struct {
	Index  int           `json:"index"`
	State  string        `json:"state"`
	Result runner.Result `json:"result"`
}

// CompleteRequest reports the results of (part of) a lease.
type CompleteRequest struct {
	WorkerID string      `json:"worker_id"`
	LeaseID  string      `json:"lease_id"`
	Sweep    string      `json:"sweep"`
	Results  []JobResult `json:"results"`
}

// CompleteResponse acknowledges a completion report. Duplicates counts
// results for slots already filled (steal and requeue races — harmless,
// first write wins); Rejected counts results that failed integrity checks
// (key mismatch, bad state) and were discarded.
type CompleteResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates,omitempty"`
	Rejected   int `json:"rejected,omitempty"`
}

// strictDecode unmarshals JSON with unknown fields rejected and trailing
// garbage refused.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second Decode must hit EOF; anything else is trailing garbage.
	if dec.More() {
		return errors.New("trailing data after message")
	}
	return nil
}

func checkName(field, s string) error {
	if len(s) > maxWireName {
		return fmt.Errorf("%s longer than %d bytes", field, maxWireName)
	}
	return nil
}

// DecodeRegister parses and validates a RegisterRequest.
func DecodeRegister(data []byte) (RegisterRequest, error) {
	var m RegisterRequest
	if err := strictDecode(data, &m); err != nil {
		return RegisterRequest{}, err
	}
	if err := checkName("name", m.Name); err != nil {
		return RegisterRequest{}, err
	}
	return m, nil
}

// DecodeHeartbeat parses and validates a Heartbeat.
func DecodeHeartbeat(data []byte) (Heartbeat, error) {
	var m Heartbeat
	if err := strictDecode(data, &m); err != nil {
		return Heartbeat{}, err
	}
	if m.WorkerID == "" {
		return Heartbeat{}, errors.New("heartbeat missing worker_id")
	}
	if err := checkName("worker_id", m.WorkerID); err != nil {
		return Heartbeat{}, err
	}
	return m, nil
}

// DecodeLeaseRequest parses and validates a LeaseRequest. Max is clamped to
// [0, MaxLeaseJobs] — a hostile or buggy worker cannot request an unbounded
// grant.
func DecodeLeaseRequest(data []byte) (LeaseRequest, error) {
	var m LeaseRequest
	if err := strictDecode(data, &m); err != nil {
		return LeaseRequest{}, err
	}
	if m.WorkerID == "" {
		return LeaseRequest{}, errors.New("lease request missing worker_id")
	}
	if err := checkName("worker_id", m.WorkerID); err != nil {
		return LeaseRequest{}, err
	}
	if m.Max < 0 || m.Max > MaxLeaseJobs {
		return LeaseRequest{}, fmt.Errorf("lease max %d out of range [0, %d]", m.Max, MaxLeaseJobs)
	}
	return m, nil
}

// DecodeLeaseResponse parses and validates a lease grant as received by a
// worker. Every job index must be in range and every job must carry a
// non-empty key; the job count is bounded by MaxLeaseJobs before the slice
// is walked.
func DecodeLeaseResponse(data []byte) (LeaseResponse, error) {
	var m LeaseResponse
	if err := strictDecode(data, &m); err != nil {
		return LeaseResponse{}, err
	}
	if m.PollMs < 0 {
		return LeaseResponse{}, fmt.Errorf("negative poll_ms %d", m.PollMs)
	}
	if m.Lease == nil {
		return m, nil
	}
	g := m.Lease
	if g.LeaseID == "" || g.Sweep == "" {
		return LeaseResponse{}, errors.New("lease grant missing lease_id or sweep")
	}
	if err := checkName("lease_id", g.LeaseID); err != nil {
		return LeaseResponse{}, err
	}
	if err := checkName("sweep", g.Sweep); err != nil {
		return LeaseResponse{}, err
	}
	if len(g.Jobs) == 0 {
		return LeaseResponse{}, errors.New("lease grant with no jobs")
	}
	if len(g.Jobs) > MaxLeaseJobs {
		return LeaseResponse{}, fmt.Errorf("lease grant of %d jobs exceeds the %d-job bound", len(g.Jobs), MaxLeaseJobs)
	}
	for i := range g.Jobs {
		j := &g.Jobs[i]
		if j.Index < 0 || j.Index >= MaxJobIndex {
			return LeaseResponse{}, fmt.Errorf("job %d: index %d out of range [0, %d)", i, j.Index, MaxJobIndex)
		}
		if j.Key == "" {
			return LeaseResponse{}, fmt.Errorf("job %d: missing key", i)
		}
		if err := checkName("key", j.Key); err != nil {
			return LeaseResponse{}, err
		}
	}
	return m, nil
}

// DecodeComplete parses and validates a completion report as received by
// the coordinator. The result count is bounded before the slice is walked;
// per-result integrity (key matches the sweep slot's spec) is the
// coordinator's job, since only it knows the sweep.
func DecodeComplete(data []byte) (CompleteRequest, error) {
	var m CompleteRequest
	if err := strictDecode(data, &m); err != nil {
		return CompleteRequest{}, err
	}
	if m.WorkerID == "" || m.LeaseID == "" || m.Sweep == "" {
		return CompleteRequest{}, errors.New("completion missing worker_id, lease_id, or sweep")
	}
	for _, f := range []struct{ name, v string }{
		{"worker_id", m.WorkerID}, {"lease_id", m.LeaseID}, {"sweep", m.Sweep},
	} {
		if err := checkName(f.name, f.v); err != nil {
			return CompleteRequest{}, err
		}
	}
	if len(m.Results) > MaxLeaseJobs {
		return CompleteRequest{}, fmt.Errorf("completion of %d results exceeds the %d-result bound", len(m.Results), MaxLeaseJobs)
	}
	for i := range m.Results {
		r := &m.Results[i]
		if r.Index < 0 || r.Index >= MaxJobIndex {
			return CompleteRequest{}, fmt.Errorf("result %d: index %d out of range [0, %d)", i, r.Index, MaxJobIndex)
		}
		if r.State != runner.ProgressDone && r.State != runner.ProgressFailed {
			return CompleteRequest{}, fmt.Errorf("result %d: state %q (want %q or %q)", i, r.State, runner.ProgressDone, runner.ProgressFailed)
		}
	}
	return m, nil
}
