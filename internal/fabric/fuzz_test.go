package fabric

import (
	"encoding/json"
	"reflect"
	"testing"
)

// The fabric wire fuzzers hold every decoder to the same contract as the
// repo's trace/profile fuzzers: never panic, never allocate proportionally
// to an attacker-declared count (boundedalloc's rule — the decoders bound
// len() before walking), and accepted input must survive an encode/decode
// round trip unchanged. The seed corpus under testdata/fuzz/ checks in the
// interesting shapes: valid messages, boundary counts, and the malformed
// inputs the unit tests pin.

func roundTrip[T any](t *testing.T, decode func([]byte) (T, error), v T) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("re-encoding accepted message: %v", err)
	}
	v2, err := decode(b)
	if err != nil {
		t.Fatalf("re-decoding round trip: %v", err)
	}
	if !reflect.DeepEqual(v, v2) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", v, v2)
	}
}

func FuzzDecodeRegister(f *testing.F) {
	f.Add([]byte(`{"name":"rack7"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","extra":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeRegister(data)
		if err != nil {
			return
		}
		roundTrip(t, DecodeRegister, m)
	})
}

func FuzzDecodeHeartbeat(f *testing.F) {
	f.Add([]byte(`{"worker_id":"w-000001"}`))
	f.Add([]byte(`{"worker_id":""}`))
	f.Add([]byte(`{"worker_id":"w"} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeHeartbeat(data)
		if err != nil {
			return
		}
		if m.WorkerID == "" {
			t.Fatal("accepted heartbeat without worker_id")
		}
		roundTrip(t, DecodeHeartbeat, m)
	})
}

func FuzzDecodeLeaseRequest(f *testing.F) {
	f.Add([]byte(`{"worker_id":"w-000001","max":4}`))
	f.Add([]byte(`{"worker_id":"w-000001","max":-1}`))
	f.Add([]byte(`{"worker_id":"w-000001","max":99999999}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeLeaseRequest(data)
		if err != nil {
			return
		}
		if m.Max < 0 || m.Max > MaxLeaseJobs {
			t.Fatalf("accepted out-of-range max %d", m.Max)
		}
		roundTrip(t, DecodeLeaseRequest, m)
	})
}

func FuzzDecodeLeaseResponse(f *testing.F) {
	f.Add([]byte(`{"poll_ms":2000}`))
	f.Add([]byte(`{"lease":{"lease_id":"l","sweep":"s","jobs":[{"index":0,"key":"k","spec":{"app":"kafka"}}]}}`))
	f.Add([]byte(`{"lease":{"lease_id":"l","sweep":"s","jobs":[{"index":1048576,"key":"k"}]}}`))
	f.Add([]byte(`{"lease":{"lease_id":"l","sweep":"s","jobs":[]}}`))
	f.Add([]byte(`{"lease":null,"poll_ms":-5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeLeaseResponse(data)
		if err != nil {
			return
		}
		if g := m.Lease; g != nil {
			if len(g.Jobs) == 0 || len(g.Jobs) > MaxLeaseJobs {
				t.Fatalf("accepted grant with %d jobs", len(g.Jobs))
			}
			for _, j := range g.Jobs {
				if j.Index < 0 || j.Index >= MaxJobIndex || j.Key == "" {
					t.Fatalf("accepted bad job %+v", j)
				}
			}
		}
		roundTrip(t, DecodeLeaseResponse, m)
	})
}

func FuzzDecodeComplete(f *testing.F) {
	f.Add([]byte(`{"worker_id":"w","lease_id":"l","sweep":"s","results":[{"index":0,"state":"done","result":{"spec":{"app":"kafka"},"key":"k","outcome":{"trace":"kafka","instructions":1,"accesses":1,"hits":1,"misses":0,"mpki":0}}}]}`))
	f.Add([]byte(`{"worker_id":"w","lease_id":"l","sweep":"s","results":[{"index":0,"state":"failed","result":{"error":"boom"}}]}`))
	f.Add([]byte(`{"worker_id":"w","lease_id":"l","sweep":"s","results":[{"index":0,"state":"canceled","result":{}}]}`))
	f.Add([]byte(`{"worker_id":"w","lease_id":"l","sweep":"s"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeComplete(data)
		if err != nil {
			return
		}
		if len(m.Results) > MaxLeaseJobs {
			t.Fatalf("accepted %d results", len(m.Results))
		}
		for _, r := range m.Results {
			if r.Index < 0 || r.Index >= MaxJobIndex {
				t.Fatalf("accepted bad index %d", r.Index)
			}
		}
		roundTrip(t, DecodeComplete, m)
	})
}
