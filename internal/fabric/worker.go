package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/telemetry"
)

// Worker executes leases from a coordinator on a local runner engine. It is
// the fleet's unit of compute: register, heartbeat, poll for leases, run
// each job (consulting the fleet-shared result cache first), report
// results. Configure the fields, then call Run.
type Worker struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:8080").
	Coordinator string
	// Engine runs the jobs locally. Its own cache (if any) layers under the
	// fleet-shared one.
	Engine *runner.Engine
	// Name is the worker's human-readable label on /debug/sweep. Optional.
	Name string
	// Client is the HTTP client (nil: a client with a 1-minute timeout).
	Client *http.Client
	// Metrics, when non-nil, receives fabric_worker_* counters.
	Metrics *telemetry.Registry

	ready atomic.Bool
}

// Ready reports whether the worker is registered with its coordinator; the
// thermod -worker readiness endpoint serves it.
func (w *Worker) Ready() bool { return w.ready.Load() }

// errUnknownWorker marks a 404 from the coordinator: our registration is
// gone (coordinator restart), so re-register rather than retry.
var errUnknownWorker = errors.New("coordinator does not know this worker")

// Run drives the worker until ctx is canceled: register (with retry),
// heartbeat in the background, and loop lease → execute → complete. On
// cancellation mid-lease the worker reports what it finished and abandons
// the rest — the coordinator's lease expiry requeues them. Returns ctx's
// error on cancellation; transport errors are retried, not returned.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" {
		return fmt.Errorf("fabric: Worker.Coordinator is required")
	}
	if w.Engine == nil {
		return fmt.Errorf("fabric: Worker.Engine is required")
	}
	defer w.ready.Store(false)

	reg, err := w.register(ctx)
	if err != nil {
		return err
	}
	w.ready.Store(true)
	beat := time.Duration(reg.HeartbeatMs) * time.Millisecond
	if beat <= 0 {
		beat = DefaultHeartbeat
	}

	// The heartbeat goroutine keeps the worker alive through long
	// simulations, when the main loop goes quiet for longer than the lease
	// TTL. It terminates with ctx (and with it, the worker) and reads the
	// worker ID through the atomic, so a re-registration just swaps the ID
	// instead of restarting the goroutine.
	var workerID atomic.Value
	workerID.Store(reg.WorkerID)
	go w.heartbeatLoop(ctx, func() string { return workerID.Load().(string) }, beat)

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		resp, err := w.lease(ctx, reg.WorkerID)
		switch {
		case errors.Is(err, errUnknownWorker):
			// Coordinator restarted and forgot us; rejoin under a new ID.
			if reg, err = w.register(ctx); err != nil {
				return err
			}
			workerID.Store(reg.WorkerID)
			continue
		case err != nil:
			w.count("fabric_worker_transport_errors")
			if !sleepCtx(ctx, beat) {
				return ctx.Err()
			}
			continue
		}
		if resp.Lease == nil {
			poll := time.Duration(resp.PollMs) * time.Millisecond
			if poll <= 0 {
				poll = beat
			}
			if !sleepCtx(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		w.count("fabric_worker_leases")
		w.runLease(ctx, reg.WorkerID, resp.Lease)
	}
}

// runLease executes the lease's jobs in ascending index order, reporting
// each result as it lands (fine-grained completion is what lets the
// coordinator stream partial sweep progress and steal only un-started
// work). A canceled context abandons the remaining jobs unreported.
func (w *Worker) runLease(ctx context.Context, workerID string, g *LeaseGrant) {
	for _, job := range g.Jobs {
		if ctx.Err() != nil {
			return
		}
		jr, ok := w.runJob(ctx, job)
		if !ok {
			return
		}
		w.count("fabric_worker_jobs")
		req := CompleteRequest{WorkerID: workerID, LeaseID: g.LeaseID, Sweep: g.Sweep, Results: []JobResult{jr}}
		if err := w.complete(ctx, req); err != nil {
			// Best effort: the result is also in the shared cache (PUT just
			// above), so a requeued re-run resolves instantly; keep going.
			w.count("fabric_worker_transport_errors")
		}
	}
}

// runJob resolves one lease job: fleet-shared cache first, local engine
// otherwise, publishing fresh successes back to the shared cache. ok=false
// means the job must not be reported (canceled mid-lease).
func (w *Worker) runJob(ctx context.Context, job LeaseJob) (JobResult, bool) {
	if out, err := w.cacheGet(ctx, job.Key); err == nil && out != nil {
		w.count("fabric_worker_cache_hits")
		return JobResult{
			Index: job.Index,
			State: runner.ProgressDone,
			Result: runner.Result{
				Spec: job.Spec, Key: job.Key, Cached: true, Outcome: out,
			},
		}, true
	}
	r := w.Engine.Run(ctx, job.Spec)
	state := r.State()
	if state == runner.ProgressCanceled {
		return JobResult{}, false
	}
	if state == runner.ProgressDone && r.Outcome != nil && !r.Cached {
		if err := w.cachePut(ctx, job.Key, r.Outcome); err == nil {
			w.count("fabric_worker_cache_puts")
		}
	}
	if state == runner.ProgressInvalid {
		// Leased specs arrive pre-normalized, so this means coordinator and
		// worker disagree about validity (version skew); report it as a
		// failure — the wire protocol only carries done/failed.
		state = runner.ProgressFailed
	}
	return JobResult{Index: job.Index, State: state, Result: r}, true
}

func (w *Worker) heartbeatLoop(ctx context.Context, workerID func() string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			// An unknown-worker answer is left to the lease loop: it owns
			// re-registration, the beat just stays quiet until the ID swaps.
			if err := w.beat(ctx, workerID()); err != nil && !errors.Is(err, errUnknownWorker) {
				w.count("fabric_worker_transport_errors")
			}
		}
	}
}

// register joins the fleet, retrying transport errors until ctx ends.
func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	for {
		var resp RegisterResponse
		err := w.post(ctx, "/fabric/v1/register", RegisterRequest{Name: w.Name}, &resp)
		if err == nil {
			if resp.WorkerID == "" {
				err = errors.New("register: empty worker_id")
			} else {
				return resp, nil
			}
		}
		w.count("fabric_worker_transport_errors")
		if !sleepCtx(ctx, time.Second) {
			return RegisterResponse{}, ctx.Err()
		}
	}
}

func (w *Worker) beat(ctx context.Context, workerID string) error {
	var resp struct{}
	return w.post(ctx, "/fabric/v1/heartbeat", Heartbeat{WorkerID: workerID}, &resp)
}

func (w *Worker) lease(ctx context.Context, workerID string) (LeaseResponse, error) {
	body, err := w.postRaw(ctx, "/fabric/v1/lease", LeaseRequest{WorkerID: workerID})
	if err != nil {
		return LeaseResponse{}, err
	}
	return DecodeLeaseResponse(body)
}

func (w *Worker) complete(ctx context.Context, req CompleteRequest) error {
	var resp CompleteResponse
	return w.post(ctx, "/fabric/v1/complete", req, &resp)
}

func (w *Worker) cacheGet(ctx context.Context, key string) (*runner.Outcome, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Coordinator+"/fabric/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxControlBody))
		return nil, fmt.Errorf("cache get %s: %s", key, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBody))
	if err != nil {
		return nil, err
	}
	var out runner.Outcome
	if err := strictDecode(body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (w *Worker) cachePut(ctx context.Context, key string, out *runner.Outcome) error {
	b, err := json.Marshal(out)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPut, w.Coordinator+"/fabric/v1/cache/"+key, bytes.NewReader(b))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxControlBody))
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cache put %s: %s", key, resp.Status)
	}
	return nil
}

// post sends v as JSON and strict-decodes the 200 response into resp.
func (w *Worker) post(ctx context.Context, path string, v, resp any) error {
	body, err := w.postRaw(ctx, path, v)
	if err != nil {
		return err
	}
	return strictDecode(body, resp)
}

func (w *Worker) postRaw(ctx context.Context, path string, v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%s: %w", path, errUnknownWorker)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, truncate(body, 200))
	}
	return body, nil
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return defaultClient
}

var defaultClient = &http.Client{Timeout: time.Minute}

func (w *Worker) count(name string) {
	if w.Metrics != nil {
		w.Metrics.Counter(name).Inc()
	}
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "…"
}
