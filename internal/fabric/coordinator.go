package fabric

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/telemetry"
	"thermometer/internal/telemetry/span"
)

// Options configures a Coordinator.
type Options struct {
	// NowNanos is the injected clock (required). It feeds heartbeat ages and
	// lease expiry only — never result content — which is what keeps this
	// package inside the noambient determinism scope.
	NowNanos func() int64
	// LeaseTTL is the heartbeat age beyond which a worker is dead and its
	// outstanding jobs requeue (<= 0: DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Heartbeat is the beat/poll interval advertised to workers
	// (<= 0: DefaultHeartbeat).
	Heartbeat time.Duration
	// LeaseSize is the maximum jobs per lease grant (<= 0: DefaultLeaseSize).
	LeaseSize int
	// Cache, when non-nil, is the fleet-shared content-addressed result
	// store: consulted at partition time (a known key never leases), served
	// to workers over GET/PUT, and filled by completed results.
	Cache *runner.Cache
	// Metrics, when non-nil, receives fabric_* counters and gauges.
	Metrics *telemetry.Registry
	// Spans, when non-nil, receives one lifecycle span per lease and per
	// sweep, on the coordinator's injected clock.
	Spans *span.Tracer
}

// Coordinator partitions sweeps into leases and merges worker results into
// submission-order slots. It implements server.SweepRunner and
// server.ProgressRunner, so it drops into the thermod serving stack exactly
// where a *runner.Engine does. Create with NewCoordinator.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	workers  map[string]*workerInfo // guarded by mu
	order    []string               // guarded by mu; registration order, for snapshots
	seq      int                    // guarded by mu; worker ID sequence
	leaseSeq int                    // guarded by mu; lease ID sequence
	sweepSeq int                    // guarded by mu; sweep ID sequence
	sweep    *sweepState            // guarded by mu; nil when idle
}

// workerInfo is the coordinator's view of one registered worker.
type workerInfo struct {
	id        string
	name      string
	lastBeat  int64 // NowNanos of the last call-in
	dead      bool  // heartbeat age exceeded the lease TTL
	completed int   // jobs accepted from this worker
	failed    int   // accepted jobs that carried an error
	steals    int   // jobs this worker stole from others
	stolen    int   // jobs stolen from this worker
	expired   int   // jobs requeued off this worker by lease expiry
}

// leaseInfo is one outstanding lease.
type leaseInfo struct {
	id      string
	worker  string
	granted int64        // NowNanos at grant
	jobs    map[int]bool // outstanding sweep indices
	stolen  bool         // grant was carved from another lease
}

// sweepState is the one in-flight sweep. The server dispatcher runs sweeps
// strictly one at a time, so the coordinator holds a single slot.
type sweepState struct {
	id      string
	specs   []runner.Spec // normalized; invalid slots hold the raw echo
	keys    []string      // content address per slot ("" for invalid specs)
	results []runner.Result
	filled  []bool
	started []bool // ProgressStarted emitted for this slot
	pending []int  // FIFO of indices awaiting a lease
	leases  map[string]*leaseInfo
	remain  int
	done    chan struct{}         // closed when remain hits 0
	fn      func(runner.Progress) // may be nil
}

// NewCoordinator validates the options and returns an idle coordinator.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.NowNanos == nil {
		return nil, fmt.Errorf("fabric: Options.NowNanos is required (inject the process clock)")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	if opts.LeaseSize <= 0 {
		opts.LeaseSize = DefaultLeaseSize
	}
	if opts.LeaseSize > MaxLeaseJobs {
		opts.LeaseSize = MaxLeaseJobs
	}
	c := &Coordinator{opts: opts, workers: make(map[string]*workerInfo)}
	if m := opts.Metrics; m != nil {
		for _, name := range []string{
			"fabric_workers_registered", "fabric_leases_granted",
			"fabric_leases_expired", "fabric_jobs_requeued",
			"fabric_jobs_stolen", "fabric_results_accepted",
			"fabric_results_duplicate", "fabric_results_rejected",
			"fabric_cache_prehits",
		} {
			m.Counter(name)
		}
		m.Gauge("fabric_workers_live").Set(0)
		m.Gauge("fabric_jobs_pending").Set(0)
		m.Gauge("fabric_jobs_outstanding").Set(0)
	}
	return c, nil
}

// Sweep implements server.SweepRunner.
func (c *Coordinator) Sweep(ctx context.Context, specs []runner.Spec) []runner.Result {
	return c.SweepProgress(ctx, specs, nil)
}

// SweepProgress implements server.ProgressRunner: it partitions the grid,
// serves coordinator-cache hits immediately, leases the rest to workers, and
// blocks until every submission-order slot is filled or ctx is canceled
// (canceling fails the unfilled slots exactly as the in-process engine
// does). The returned slice is byte-identical to a single-node run of the
// same specs at any fleet size and any worker death schedule.
func (c *Coordinator) SweepProgress(ctx context.Context, specs []runner.Spec, fn func(runner.Progress)) []runner.Result {
	st := &sweepState{
		specs:   make([]runner.Spec, len(specs)),
		keys:    make([]string, len(specs)),
		results: make([]runner.Result, len(specs)),
		filled:  make([]bool, len(specs)),
		started: make([]bool, len(specs)),
		leases:  make(map[string]*leaseInfo),
		done:    make(chan struct{}),
		fn:      fn,
	}
	var prog []runner.Progress
	for i, sp := range specs {
		norm, err := sp.Normalized()
		if err != nil {
			st.specs[i] = sp
			st.results[i] = runner.Result{Spec: sp, Err: "invalid spec: " + err.Error()}
			st.filled[i] = true
			prog = append(prog,
				runner.Progress{Index: i, State: runner.ProgressStarted},
				runner.Progress{Index: i, State: runner.ProgressInvalid, Err: st.results[i].Err})
			continue
		}
		key := norm.Key()
		st.specs[i], st.keys[i] = norm, key
		if c.opts.Cache != nil {
			if out, ok := c.opts.Cache.Get(key); ok {
				st.results[i] = runner.Result{Spec: norm, Key: key, Cached: true, Outcome: out}
				st.filled[i] = true
				c.count("fabric_cache_prehits", 1)
				prog = append(prog,
					runner.Progress{Index: i, State: runner.ProgressStarted},
					terminalProgress(i, st.results[i]))
				continue
			}
		}
		st.pending = append(st.pending, i)
		st.remain++
	}

	start := c.opts.NowNanos()
	c.mu.Lock()
	if c.sweep != nil {
		c.mu.Unlock()
		// The server dispatcher serializes sweeps, so this is a misuse, not
		// a schedule; fail the whole grid loudly rather than interleave two
		// sweeps' slots.
		for i := range st.results {
			if !st.filled[i] {
				st.results[i] = runner.Result{Spec: st.specs[i], Key: st.keys[i], Err: "fabric: coordinator already has a sweep in flight"}
			}
		}
		return st.results
	}
	c.sweepSeq++
	st.id = fmt.Sprintf("sweep-%06d", c.sweepSeq)
	// Decide installation before unlocking: the moment c.sweep is published,
	// workers may Complete concurrently and decrement st.remain.
	installed := st.remain > 0
	if installed {
		c.sweep = st
	}
	c.gaugesLocked()
	c.mu.Unlock()
	c.emit(st, prog)
	if !installed {
		c.recordSweepSpan(st.id, start, "done")
		return st.results
	}

	select {
	case <-st.done:
		c.recordSweepSpan(st.id, start, "done")
		return st.results
	case <-ctx.Done():
	}

	// Canceled: fail every unfilled slot, matching the engine's wording so
	// fleet and single-node canceled sweeps stay byte-identical.
	c.mu.Lock()
	var canceled []runner.Progress
	for i := range st.results {
		if st.filled[i] {
			continue
		}
		st.results[i] = runner.Result{
			Spec: st.specs[i], Key: st.keys[i],
			Err: "canceled: " + ctx.Err().Error(),
		}
		st.filled[i] = true
		if !st.started[i] {
			canceled = append(canceled, runner.Progress{Index: i, State: runner.ProgressStarted})
			st.started[i] = true
		}
		canceled = append(canceled, terminalProgress(i, st.results[i]))
	}
	st.remain = 0
	c.sweep = nil
	c.gaugesLocked()
	c.mu.Unlock()
	c.emit(st, canceled)
	c.recordSweepSpan(st.id, start, "canceled")
	return st.results
}

// terminalProgress mirrors the runner's terminal notification for a merged
// result (the fabric builds results itself, so it classifies them itself).
func terminalProgress(i int, r runner.Result) runner.Progress {
	p := runner.Progress{Index: i, State: runner.ProgressDone, Cached: r.Cached, Key: r.Key, Err: r.Err}
	switch {
	case r.Err == "":
		if r.Outcome != nil {
			p.Instructions = r.Outcome.Instructions
			p.Accesses = r.Outcome.Accesses
		}
	case len(r.Err) >= 8 && r.Err[:8] == "invalid ":
		p.State = runner.ProgressInvalid
	case len(r.Err) >= 8 && r.Err[:8] == "canceled":
		p.State = runner.ProgressCanceled
	default:
		p.State = runner.ProgressFailed
	}
	return p
}

// emit delivers progress notifications outside the coordinator lock (the
// server's recorder takes its own lock; holding ours across the callback
// would nest them for no reason).
func (c *Coordinator) emit(st *sweepState, ps []runner.Progress) {
	if st.fn == nil {
		return
	}
	for _, p := range ps {
		st.fn(p)
	}
}

// Register adds a worker and returns its identity plus fleet timing.
func (c *Coordinator) Register(req RegisterRequest) RegisterResponse {
	now := c.opts.NowNanos()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	w := &workerInfo{id: fmt.Sprintf("w-%06d", c.seq), name: req.Name, lastBeat: now}
	c.workers[w.id] = w
	c.order = append(c.order, w.id)
	c.countLocked("fabric_workers_registered", 1)
	c.gaugesLocked()
	return RegisterResponse{
		WorkerID:    w.id,
		HeartbeatMs: c.opts.Heartbeat.Milliseconds(),
		LeaseTTLMs:  c.opts.LeaseTTL.Milliseconds(),
		LeaseSize:   c.opts.LeaseSize,
	}
}

// Beat records a worker heartbeat. Unknown workers get false — the worker
// should re-register (coordinator restarts forget the roster).
func (c *Coordinator) Beat(hb Heartbeat) bool {
	now := c.opts.NowNanos()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[hb.WorkerID]
	if w == nil {
		return false
	}
	c.touchLocked(w, now)
	c.expireLocked(now)
	c.gaugesLocked()
	return true
}

// touchLocked refreshes a worker's liveness; a beat from a worker declared
// dead (a long GC pause, a partitioned network healing) revives it — its
// old leases are gone, but it can take new ones. Callers hold c.mu.
func (c *Coordinator) touchLocked(w *workerInfo, now int64) {
	w.lastBeat = now
	w.dead = false
}

// Lease grants up to req.Max (default: the configured lease size) pending
// jobs to the worker. With nothing pending it tries to steal the un-started
// tail of the largest outstanding lease; with nothing to steal it returns a
// nil grant and the poll interval. Every lease call is also a heartbeat and
// triggers the lazy expiry scan, so a dead worker's jobs requeue as soon as
// any live worker asks for work.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	now := c.opts.NowNanos()
	c.mu.Lock()
	w := c.workers[req.WorkerID]
	if w == nil {
		c.mu.Unlock()
		return LeaseResponse{}, fmt.Errorf("unknown worker %q (re-register)", req.WorkerID)
	}
	c.touchLocked(w, now)
	c.expireLocked(now)
	poll := LeaseResponse{PollMs: c.opts.Heartbeat.Milliseconds()}
	st := c.sweep
	if st == nil {
		c.mu.Unlock()
		return poll, nil
	}
	max := req.Max
	if max <= 0 || max > c.opts.LeaseSize {
		max = c.opts.LeaseSize
	}
	var take []int
	stolen := false
	if len(st.pending) > 0 {
		n := min(max, len(st.pending))
		take = append(take, st.pending[:n]...)
		st.pending = st.pending[n:]
	} else if victim := c.stealVictimLocked(st, req.WorkerID); victim != nil {
		take = stealTailLocked(victim, max)
		if len(take) > 0 {
			stolen = true
			w.steals += len(take)
			c.workers[victim.worker].stolen += len(take)
			c.countLocked("fabric_jobs_stolen", uint64(len(take)))
		}
	}
	if len(take) == 0 {
		c.gaugesLocked()
		c.mu.Unlock()
		return poll, nil
	}
	c.leaseSeq++
	l := &leaseInfo{
		id:      fmt.Sprintf("lease-%06d", c.leaseSeq),
		worker:  req.WorkerID,
		granted: now,
		jobs:    make(map[int]bool, len(take)),
		stolen:  stolen,
	}
	grant := &LeaseGrant{LeaseID: l.id, Sweep: st.id, Stolen: stolen}
	var prog []runner.Progress
	for _, i := range take {
		l.jobs[i] = true
		grant.Jobs = append(grant.Jobs, LeaseJob{Index: i, Key: st.keys[i], Spec: st.specs[i]})
		if !st.started[i] {
			st.started[i] = true
			prog = append(prog, runner.Progress{Index: i, State: runner.ProgressStarted})
		}
	}
	st.leases[l.id] = l
	c.countLocked("fabric_leases_granted", 1)
	c.gaugesLocked()
	c.mu.Unlock()
	c.emit(st, prog)
	return LeaseResponse{Lease: grant}, nil
}

// stealVictimLocked picks the lease to steal from: the one with the most
// outstanding jobs, ties broken by the lower lease ID (grant order), never
// the requester's own. Callers hold c.mu.
func (c *Coordinator) stealVictimLocked(st *sweepState, requester string) *leaseInfo {
	var victim *leaseInfo
	ids := make([]string, 0, len(st.leases))
	for id := range st.leases {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		l := st.leases[id]
		if l.worker == requester {
			continue
		}
		if victim == nil || len(l.jobs) > len(victim.jobs) {
			victim = l
		}
	}
	if victim == nil || len(victim.jobs) < 2 {
		// A single outstanding job is (presumably) being simulated right
		// now; duplicating live work buys nothing — if its worker is dead,
		// lease expiry recovers it.
		return nil
	}
	return victim
}

// stealTailLocked carves the highest-index half of the victim's outstanding
// jobs (workers execute ascending, so the tail is the least likely to be
// running), capped at max and always leaving at least one job behind.
// Callers hold c.mu.
func stealTailLocked(victim *leaseInfo, max int) []int {
	idxs := make([]int, 0, len(victim.jobs))
	for i := range victim.jobs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	k := len(idxs) / 2
	if k > max {
		k = max
	}
	if k == 0 {
		return nil
	}
	take := idxs[len(idxs)-k:]
	for _, i := range take {
		delete(victim.jobs, i)
	}
	return take
}

// Complete merges a worker's results into their sweep slots. First write
// wins: duplicates from steal or requeue races are counted and dropped (a
// job is a pure function of its spec, so a duplicate is byte-identical
// anyway). A result whose key does not match its slot is rejected. The
// merged Result is rebuilt from the coordinator's own normalized spec and
// the worker's outcome, so no worker-local field (its cache flag, its echo
// of the spec) can perturb the merged bytes.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	now := c.opts.NowNanos()
	c.mu.Lock()
	w := c.workers[req.WorkerID]
	if w == nil {
		c.mu.Unlock()
		return CompleteResponse{}, fmt.Errorf("unknown worker %q (re-register)", req.WorkerID)
	}
	c.touchLocked(w, now)
	st := c.sweep
	var resp CompleteResponse
	if st == nil || st.id != req.Sweep {
		// A stale sweep (canceled, finished, or a coordinator restart):
		// nothing to merge. Count everything as duplicate-equivalent.
		resp.Duplicates = len(req.Results)
		c.mu.Unlock()
		return resp, nil
	}
	lease := st.leases[req.LeaseID]
	var prog []runner.Progress
	var cachePuts []int
	for _, jr := range req.Results {
		i := jr.Index
		if i >= len(st.results) || st.keys[i] == "" || jr.Result.Key != st.keys[i] {
			resp.Rejected++
			continue
		}
		if lease != nil {
			delete(lease.jobs, i)
		}
		if st.filled[i] {
			resp.Duplicates++
			continue
		}
		merged := runner.Result{Spec: st.specs[i], Key: st.keys[i]}
		if jr.State == runner.ProgressFailed || jr.Result.Err != "" {
			if merged.Err = jr.Result.Err; merged.Err == "" {
				merged.Err = "failed on " + req.WorkerID
			}
			w.failed++
		} else {
			if jr.Result.Outcome == nil {
				resp.Rejected++
				continue
			}
			merged.Outcome = jr.Result.Outcome
			cachePuts = append(cachePuts, i)
		}
		st.results[i] = merged
		st.filled[i] = true
		st.remain--
		w.completed++
		resp.Accepted++
		prog = append(prog, terminalProgress(i, merged))
	}
	if lease != nil && len(lease.jobs) == 0 {
		delete(st.leases, req.LeaseID)
		c.recordLeaseSpan(st.id, lease, now, "done")
	}
	finished := st.remain == 0
	if finished {
		c.sweep = nil
	}
	c.countLocked("fabric_results_accepted", uint64(resp.Accepted))
	c.countLocked("fabric_results_duplicate", uint64(resp.Duplicates))
	c.countLocked("fabric_results_rejected", uint64(resp.Rejected))
	c.gaugesLocked()
	c.mu.Unlock()

	// Fill the shared cache outside the lock; workers also PUT directly, so
	// this is belt-and-braces for engines running without the HTTP path.
	if c.opts.Cache != nil {
		for _, i := range cachePuts {
			c.opts.Cache.Put(st.keys[i], st.results[i].Outcome)
		}
	}
	c.emit(st, prog)
	if finished {
		close(st.done)
	}
	return resp, nil
}

// expireLocked requeues every outstanding job of workers whose heartbeat
// age exceeds the lease TTL. Requeued indices re-enter the pending queue in
// ascending order, keeping recovery schedules deterministic under the fake
// clocks the tests inject. Callers hold c.mu.
func (c *Coordinator) expireLocked(now int64) {
	ttl := c.opts.LeaseTTL.Nanoseconds()
	st := c.sweep
	for _, id := range c.order {
		w := c.workers[id]
		if w.dead || now-w.lastBeat <= ttl {
			continue
		}
		w.dead = true
		if st == nil {
			continue
		}
		leaseIDs := make([]string, 0, len(st.leases))
		for lid, l := range st.leases {
			if l.worker == w.id {
				leaseIDs = append(leaseIDs, lid)
			}
		}
		sort.Strings(leaseIDs)
		for _, lid := range leaseIDs {
			l := st.leases[lid]
			idxs := make([]int, 0, len(l.jobs))
			for i := range l.jobs {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			st.pending = append(st.pending, idxs...)
			w.expired += len(idxs)
			delete(st.leases, lid)
			c.countLocked("fabric_leases_expired", 1)
			c.countLocked("fabric_jobs_requeued", uint64(len(idxs)))
			c.recordLeaseSpan(st.id, l, now, "expired")
		}
	}
}

func (c *Coordinator) recordLeaseSpan(sweepID string, l *leaseInfo, end int64, detail string) {
	t := c.opts.Spans
	if t == nil {
		return
	}
	t.Record(span.Span{
		Trace:  span.Derive(sweepID),
		ID:     span.Derive(sweepID, l.id),
		Parent: span.Derive(sweepID, "sweep"),
		Name:   "lease",
		Detail: detail + " " + l.worker,
		Start:  l.granted,
		Dur:    end - l.granted,
	})
}

func (c *Coordinator) recordSweepSpan(sweepID string, start int64, detail string) {
	t := c.opts.Spans
	if t == nil {
		return
	}
	end := c.opts.NowNanos()
	t.Record(span.Span{
		Trace:  span.Derive(sweepID),
		ID:     span.Derive(sweepID, "sweep"),
		Name:   "sweep",
		Detail: detail,
		Start:  start,
		Dur:    end - start,
	})
}

func (c *Coordinator) count(name string, n uint64) {
	if c.opts.Metrics != nil {
		c.opts.Metrics.Counter(name).Add(n)
	}
}

// countLocked is count for call sites already holding c.mu (the registry
// has its own synchronization; the split exists only to document intent).
func (c *Coordinator) countLocked(name string, n uint64) { c.count(name, n) }

// gaugesLocked republishes the fleet gauges. Callers hold c.mu.
func (c *Coordinator) gaugesLocked() {
	m := c.opts.Metrics
	if m == nil {
		return
	}
	live := 0
	for _, w := range c.workers {
		if !w.dead {
			live++
		}
	}
	pending, outstanding := 0, 0
	if st := c.sweep; st != nil {
		pending = len(st.pending)
		for _, l := range st.leases {
			outstanding += len(l.jobs)
		}
	}
	m.Gauge("fabric_workers_live").Set(uint64(live))
	m.Gauge("fabric_jobs_pending").Set(uint64(pending))
	m.Gauge("fabric_jobs_outstanding").Set(uint64(outstanding))
}
