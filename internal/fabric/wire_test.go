package fabric

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"thermometer/internal/runner"
)

func TestStrictDecodeRejectsSloppyInput(t *testing.T) {
	cases := []struct{ name, in string }{
		{"unknown field", `{"worker_id":"w-000001","extra":1}`},
		{"trailing data", `{"worker_id":"w-000001"} {"worker_id":"w-000002"}`},
		{"wrong type", `{"worker_id":42}`},
		{"empty", ``},
		{"not json", `worker_id`},
	}
	for _, tc := range cases {
		if _, err := DecodeHeartbeat([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
}

func TestDecodeHeartbeat(t *testing.T) {
	hb, err := DecodeHeartbeat([]byte(`{"worker_id":"w-000001"}`))
	if err != nil || hb.WorkerID != "w-000001" {
		t.Fatalf("got %+v, %v", hb, err)
	}
	if _, err := DecodeHeartbeat([]byte(`{}`)); err == nil {
		t.Fatal("missing worker_id accepted")
	}
	long := fmt.Sprintf(`{"worker_id":%q}`, strings.Repeat("x", maxWireName+1))
	if _, err := DecodeHeartbeat([]byte(long)); err == nil {
		t.Fatal("oversized worker_id accepted")
	}
}

func TestDecodeLeaseRequestClampsMax(t *testing.T) {
	ok, err := DecodeLeaseRequest([]byte(`{"worker_id":"w-000001","max":8}`))
	if err != nil || ok.Max != 8 {
		t.Fatalf("got %+v, %v", ok, err)
	}
	for _, in := range []string{
		`{"worker_id":"w-000001","max":-1}`,
		fmt.Sprintf(`{"worker_id":"w-000001","max":%d}`, MaxLeaseJobs+1),
		`{"max":1}`,
	} {
		if _, err := DecodeLeaseRequest([]byte(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestDecodeLeaseResponse(t *testing.T) {
	// A poll answer (no lease) is valid.
	resp, err := DecodeLeaseResponse([]byte(`{"poll_ms":2000}`))
	if err != nil || resp.Lease != nil || resp.PollMs != 2000 {
		t.Fatalf("got %+v, %v", resp, err)
	}

	grant := LeaseResponse{Lease: &LeaseGrant{
		LeaseID: "lease-000001", Sweep: "sweep-000001",
		Jobs: []LeaseJob{{Index: 3, Key: "abc", Spec: runner.Spec{App: "kafka"}}},
	}}
	b, _ := json.Marshal(grant)
	got, err := DecodeLeaseResponse(b)
	if err != nil || got.Lease == nil || got.Lease.Jobs[0].Index != 3 {
		t.Fatalf("round-trip: %+v, %v", got, err)
	}

	bad := []string{
		`{"poll_ms":-1}`,
		`{"lease":{"lease_id":"","sweep":"s","jobs":[{"index":0,"key":"k"}]}}`,
		`{"lease":{"lease_id":"l","sweep":"s","jobs":[]}}`,
		`{"lease":{"lease_id":"l","sweep":"s","jobs":[{"index":-1,"key":"k"}]}}`,
		fmt.Sprintf(`{"lease":{"lease_id":"l","sweep":"s","jobs":[{"index":%d,"key":"k"}]}}`, MaxJobIndex),
		`{"lease":{"lease_id":"l","sweep":"s","jobs":[{"index":0,"key":""}]}}`,
	}
	for _, in := range bad {
		if _, err := DecodeLeaseResponse([]byte(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestDecodeLeaseResponseBoundsJobCount(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"lease":{"lease_id":"l","sweep":"s","jobs":[`)
	for i := 0; i <= MaxLeaseJobs; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"index":%d,"key":"k"}`, i)
	}
	sb.WriteString(`]}}`)
	if _, err := DecodeLeaseResponse([]byte(sb.String())); err == nil {
		t.Fatalf("grant of %d jobs accepted (bound is %d)", MaxLeaseJobs+1, MaxLeaseJobs)
	}
}

func TestDecodeComplete(t *testing.T) {
	req := CompleteRequest{
		WorkerID: "w-000001", LeaseID: "lease-000001", Sweep: "sweep-000001",
		Results: []JobResult{{Index: 0, State: runner.ProgressDone,
			Result: runner.Result{Key: "k", Outcome: &runner.Outcome{Instructions: 1}}}},
	}
	b, _ := json.Marshal(req)
	got, err := DecodeComplete(b)
	if err != nil || len(got.Results) != 1 || got.Results[0].Result.Outcome.Instructions != 1 {
		t.Fatalf("round-trip: %+v, %v", got, err)
	}

	bad := []string{
		`{"worker_id":"w","lease_id":"l","sweep":""}`,
		`{"worker_id":"w","lease_id":"l","sweep":"s","results":[{"index":0,"state":"canceled","result":{}}]}`,
		`{"worker_id":"w","lease_id":"l","sweep":"s","results":[{"index":0,"state":"started","result":{}}]}`,
		`{"worker_id":"w","lease_id":"l","sweep":"s","results":[{"index":-1,"state":"done","result":{}}]}`,
	}
	for _, in := range bad {
		if _, err := DecodeComplete([]byte(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestDecodeRegister(t *testing.T) {
	r, err := DecodeRegister([]byte(`{"name":"rack7"}`))
	if err != nil || r.Name != "rack7" {
		t.Fatalf("got %+v, %v", r, err)
	}
	if _, err := DecodeRegister([]byte(`{}`)); err != nil {
		t.Fatalf("anonymous register rejected: %v", err)
	}
	long := fmt.Sprintf(`{"name":%q}`, strings.Repeat("x", maxWireName+1))
	if _, err := DecodeRegister([]byte(long)); err == nil {
		t.Fatal("oversized name accepted")
	}
}

func TestIsSpecKey(t *testing.T) {
	valid := strings.Repeat("0123456789abcdef", 4)
	if !isSpecKey(valid) {
		t.Fatalf("rejected %q", valid)
	}
	for _, k := range []string{
		"", "short", strings.Repeat("g", 64), strings.ToUpper(valid),
		valid + "0", "../" + valid[3:],
	} {
		if isSpecKey(k) {
			t.Errorf("accepted %q", k)
		}
	}
}
