package fabric

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/telemetry"
)

// TestWorkerFleetMatchesSingleNode is the in-process half of the fleet
// byte-identity contract: two HTTP workers on real engines must merge to
// exactly the bytes a single-node engine produces for the same grid. (The
// cross-process half, including a worker killed mid-sweep, lives in the
// thermod integration test.)
func TestWorkerFleetMatchesSingleNode(t *testing.T) {
	specs := []runner.Spec{
		{App: "cassandra", Mode: runner.ModeReplay, Scale: 64},
		{App: "kafka", Mode: runner.ModeReplay, Scale: 64},
		{App: "mysql", Mode: runner.ModeReplay, Scale: 64, Policy: "srrip"},
		{App: "python", Mode: runner.ModeReplay, Scale: 64, Policy: "ghrp"},
		{App: "bogus-app"}, // invalid slots must match too
		{App: "tomcat", Mode: runner.ModeReplay, Scale: 64},
	}
	single := (&runner.Engine{Workers: 1}).Sweep(context.Background(), specs)

	cache, err := runner.NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{}
	// Real wall-clock pacing is irrelevant here — the workers stay alive, so
	// the fake clock never advances and nothing expires.
	coord := newTestCoordinator(t, clk, Options{
		Cache:     cache,
		Heartbeat: 5 * time.Millisecond,
		LeaseSize: 2,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerErr := make(chan error, 2)
	workers := make([]*Worker, 2)
	for i := range workers {
		workers[i] = &Worker{
			Coordinator: srv.URL,
			Engine:      &runner.Engine{Workers: 1},
			Name:        "test-worker",
			Metrics:     telemetry.NewRegistry(),
		}
		go func(w *Worker) { workerErr <- w.Run(ctx) }(workers[i])
	}

	sweepCtx, sweepCancel := context.WithTimeout(context.Background(), time.Minute)
	defer sweepCancel()
	fleet := coord.SweepProgress(sweepCtx, specs, nil)

	b1, err := json.MarshalIndent(single, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.MarshalIndent(fleet, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("fleet results diverge from single-node:\nsingle: %s\nfleet:  %s", b1, b2)
	}

	for _, w := range workers {
		if !w.Ready() {
			t.Fatal("worker not ready after registering")
		}
	}
	cancel()
	for range workers {
		select {
		case err := <-workerErr:
			if err != context.Canceled {
				t.Fatalf("worker exit = %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not exit on cancel")
		}
	}
	for _, w := range workers {
		if w.Ready() {
			t.Fatal("worker still ready after Run returned")
		}
	}
}

// TestWorkerServesSharedCacheHits pins the shared-cache path: a key already
// in the coordinator's cache reaches the merge without the worker's engine
// running at all — and the merged bytes still carry Cached only when the
// coordinator itself pre-hit.
func TestWorkerSharedCachePrehit(t *testing.T) {
	spec := runner.Spec{App: "drupal", Mode: runner.ModeReplay, Scale: 64}
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	out := (&runner.Engine{Workers: 1}).Sweep(context.Background(), []runner.Spec{spec})[0].Outcome
	if out == nil {
		t.Fatal("seed run failed")
	}
	cache, err := runner.NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(norm.Key(), out)

	clk := &fakeClock{}
	coord := newTestCoordinator(t, clk, Options{Cache: cache, Heartbeat: 5 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// No worker is running: the sweep must still complete instantly from the
	// coordinator cache.
	res := coord.Sweep(context.Background(), []runner.Spec{spec})
	if !res[0].Cached || res[0].Outcome != out {
		t.Fatalf("pre-hit result = %+v", res[0])
	}
}

// TestWorkerRequiresConfig pins the fail-fast contract for missing fields.
func TestWorkerRequiresConfig(t *testing.T) {
	ctx := context.Background()
	if err := (&Worker{Engine: &runner.Engine{}}).Run(ctx); err == nil {
		t.Fatal("missing Coordinator accepted")
	}
	if err := (&Worker{Coordinator: "http://localhost:0"}).Run(ctx); err == nil {
		t.Fatal("missing Engine accepted")
	}
}
