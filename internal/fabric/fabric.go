// Package fabric scales the runner's sweep engine from one process to a
// coordinated fleet while preserving the repo's signature guarantee:
// byte-identical sweep output at any parallel width — now at any fleet
// width, across the network boundary.
//
// The subsystem has two halves:
//
//   - Coordinator partitions a sweep's job grid by canonical spec key into
//     leases, hands leases to registered workers, tracks their heartbeats,
//     requeues a dead worker's outstanding jobs on lease expiry, lets idle
//     workers steal the un-started tail of a straggler's lease, and merges
//     completed results into submission-order slots — exactly as the
//     in-process pool does, which is what extends the golden byte-identical
//     contract from "any pool width" to "any fleet size, any worker death
//     schedule". It implements server.SweepRunner/ProgressRunner, so the
//     thermod jobs API and the /v1/jobs/{id}/events SSE stream serve
//     fleet-executed sweeps unchanged.
//   - Worker registers with a coordinator, polls for leases, executes each
//     job on a local runner.Engine, and reports results. Before simulating,
//     it consults the coordinator's shared content-addressed result cache
//     (GET/PUT keyed by the same spec hash the local cache uses), so any
//     worker's result is location-independent and fleet-wide re-runs are
//     cache hits.
//
// Determinism contract: the coordinator never reads the wall clock directly
// (the package is inside thermolint's noambient scope); all times flow
// through an injected NowNanos clock, used only for heartbeat ages and
// lease expiry — never for result content. Results land in their submission
// index regardless of which worker produced them, duplicates from
// steal/requeue races resolve first-write-wins (a job is a pure function of
// its spec, so duplicates are identical), and a worker-side cache flag never
// leaks into merged output. See DESIGN.md §12 for the full argument.
package fabric

import "time"

// Defaults for coordinator/worker timing and batching. All are overridable
// via Options / flags; the golden tests shrink them to milliseconds.
const (
	// DefaultLeaseTTL is the heartbeat age beyond which a worker is
	// considered dead and its outstanding jobs requeue.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultHeartbeat is the interval workers are told to beat (and poll
	// for work when idle). Expiry is lazy — it happens on the next worker
	// call-in — so the TTL should be several heartbeats.
	DefaultHeartbeat = 2 * time.Second
	// DefaultLeaseSize is the maximum jobs granted per lease. Batches
	// amortize round trips; the un-started tail of a batch is what idle
	// workers steal.
	DefaultLeaseSize = 4
)
