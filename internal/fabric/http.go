package fabric

import (
	"encoding/json"
	"io"
	"net/http"

	"thermometer/internal/runner"
)

// HTTP body bounds. Control messages are tiny; completion reports and cache
// payloads carry outcomes, which are still small (a few hundred bytes each),
// so even a full-size lease report fits far under the cap.
const (
	maxControlBody = 64 << 10
	maxResultBody  = 8 << 20
)

// Handler returns the coordinator's fleet API:
//
//	POST /fabric/v1/register    join the fleet        → worker id + timings
//	POST /fabric/v1/heartbeat   liveness beat         → 200 (404: re-register)
//	POST /fabric/v1/lease       request work          → lease grant or poll hint
//	POST /fabric/v1/complete    report results        → accept/duplicate/reject counts
//	GET  /fabric/v1/cache/{key} shared result cache   → outcome JSON or 404
//	PUT  /fabric/v1/cache/{key} publish a result      → 204
//	GET  /fabric/v1/state       fleet snapshot        → per-worker assignment/health
//
// Every decoder bounds what it will allocate before trusting a count, and
// malformed messages get 400 with a reason.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/register", c.handleRegister)
	mux.HandleFunc("POST /fabric/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fabric/v1/lease", c.handleLease)
	mux.HandleFunc("POST /fabric/v1/complete", c.handleComplete)
	mux.HandleFunc("GET /fabric/v1/cache/{key}", c.handleCacheGet)
	mux.HandleFunc("PUT /fabric/v1/cache/{key}", c.handleCachePut)
	mux.HandleFunc("GET /fabric/v1/state", c.handleState)
	return mux
}

// ServeHTTP lets the coordinator mount directly under telemetry.Mount.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.Handler().ServeHTTP(w, r)
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		fabricError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > limit {
		fabricError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return nil, false
	}
	return body, true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxControlBody)
	if !ok {
		return
	}
	req, err := DecodeRegister(body)
	if err != nil {
		fabricError(w, http.StatusBadRequest, err.Error())
		return
	}
	fabricJSON(w, http.StatusOK, c.Register(req))
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxControlBody)
	if !ok {
		return
	}
	hb, err := DecodeHeartbeat(body)
	if err != nil {
		fabricError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !c.Beat(hb) {
		fabricError(w, http.StatusNotFound, "unknown worker "+hb.WorkerID+" (re-register)")
		return
	}
	fabricJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxControlBody)
	if !ok {
		return
	}
	req, err := DecodeLeaseRequest(body)
	if err != nil {
		fabricError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := c.Lease(req)
	if err != nil {
		fabricError(w, http.StatusNotFound, err.Error())
		return
	}
	fabricJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxResultBody)
	if !ok {
		return
	}
	req, err := DecodeComplete(body)
	if err != nil {
		fabricError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := c.Complete(req)
	if err != nil {
		fabricError(w, http.StatusNotFound, err.Error())
		return
	}
	fabricJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !isSpecKey(key) {
		fabricError(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	if c.opts.Cache == nil {
		fabricError(w, http.StatusNotFound, "no shared cache configured")
		return
	}
	out, ok := c.opts.Cache.Get(key)
	if !ok {
		fabricError(w, http.StatusNotFound, "no cached result for "+key)
		return
	}
	fabricJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !isSpecKey(key) {
		fabricError(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	if c.opts.Cache == nil {
		fabricError(w, http.StatusNotFound, "no shared cache configured")
		return
	}
	body, ok := readBody(w, r, maxResultBody)
	if !ok {
		return
	}
	var out runner.Outcome
	if err := strictDecode(body, &out); err != nil {
		fabricError(w, http.StatusBadRequest, "malformed outcome: "+err.Error())
		return
	}
	c.opts.Cache.Put(key, &out)
	w.WriteHeader(http.StatusNoContent)
}

// isSpecKey reports whether key looks like a runner spec content address:
// 64 lowercase hex digits. Anything else is rejected before it can touch
// the cache (whose disk tier uses the key as a file name).
func isSpecKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WorkerStatus is one worker's row in the fleet snapshot.
type WorkerStatus struct {
	ID             string `json:"id"`
	Name           string `json:"name,omitempty"`
	Dead           bool   `json:"dead,omitempty"`
	HeartbeatAgeMs int64  `json:"heartbeat_age_ms"`
	// Active is the worker's outstanding job count across its leases.
	Active    int `json:"active"`
	Completed int `json:"completed"`
	Failed    int `json:"failed,omitempty"`
	Steals    int `json:"steals,omitempty"`
	Stolen    int `json:"stolen,omitempty"`
	Expired   int `json:"expired,omitempty"`
}

// StateSnapshot is the GET /fabric/v1/state payload: the in-flight sweep's
// fill state and the per-worker assignment/health table behind the
// /debug/sweep fleet panel.
type StateSnapshot struct {
	Sweep       string         `json:"sweep,omitempty"`
	Total       int            `json:"total"`
	Filled      int            `json:"filled"`
	Pending     int            `json:"pending"`
	Outstanding int            `json:"outstanding"`
	Workers     []WorkerStatus `json:"workers"`
}

// Snapshot assembles the fleet state under the coordinator lock.
func (c *Coordinator) Snapshot() StateSnapshot {
	now := c.opts.NowNanos()
	c.mu.Lock()
	defer c.mu.Unlock()
	var snap StateSnapshot
	active := make(map[string]int)
	if st := c.sweep; st != nil {
		snap.Sweep = st.id
		snap.Total = len(st.results)
		snap.Pending = len(st.pending)
		for i := range st.filled {
			if st.filled[i] {
				snap.Filled++
			}
		}
		for _, l := range st.leases {
			snap.Outstanding += len(l.jobs)
			active[l.worker] += len(l.jobs)
		}
	}
	snap.Workers = make([]WorkerStatus, 0, len(c.order))
	for _, id := range c.order {
		w := c.workers[id]
		snap.Workers = append(snap.Workers, WorkerStatus{
			ID: w.id, Name: w.name, Dead: w.dead,
			HeartbeatAgeMs: (now - w.lastBeat) / 1e6,
			Active:         active[w.id],
			Completed:      w.completed, Failed: w.failed,
			Steals: w.steals, Stolen: w.stolen, Expired: w.expired,
		})
	}
	return snap
}

func (c *Coordinator) handleState(w http.ResponseWriter, _ *http.Request) {
	fabricJSON(w, http.StatusOK, c.Snapshot())
}

type fabricErr struct {
	Error string `json:"error"`
}

func fabricJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func fabricError(w http.ResponseWriter, code int, msg string) {
	fabricJSON(w, code, fabricErr{Error: msg})
}
