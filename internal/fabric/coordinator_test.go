package fabric

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/telemetry"
)

// fakeClock is a deterministic NowNanos source the tests advance by hand.
// atomic so the coordinator may read it from any goroutine.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64              { return c.ns.Load() }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(d.Nanoseconds()) }

// progressLog collects progress notifications; the coordinator emits them
// from the caller's goroutine and from worker-call goroutines.
type progressLog struct {
	mu  sync.Mutex
	got []runner.Progress
}

func (l *progressLog) add(p runner.Progress) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.got = append(l.got, p)
}

func (l *progressLog) states(index int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s []string
	for _, p := range l.got {
		if p.Index == index {
			s = append(s, p.State)
		}
	}
	return s
}

func newTestCoordinator(t *testing.T, clk *fakeClock, opts Options) *Coordinator {
	t.Helper()
	opts.NowNanos = clk.now
	if opts.Metrics == nil {
		opts.Metrics = telemetry.NewRegistry()
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// specN returns the i-th of a family of distinct valid specs.
func specN(i int) runner.Spec {
	apps := []string{"cassandra", "clang", "drupal", "kafka", "mysql", "python", "tomcat", "wordpress"}
	return runner.Spec{App: apps[i%len(apps)], Mode: runner.ModeReplay, Scale: 64, Input: i / len(apps)}
}

func keyOf(t *testing.T, s runner.Spec) string {
	t.Helper()
	n, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return n.Key()
}

// startSweep launches SweepProgress in the background and waits until the
// coordinator has the sweep installed (or it finished immediately).
func startSweep(t *testing.T, c *Coordinator, ctx context.Context, specs []runner.Spec, fn func(runner.Progress)) chan []runner.Result {
	t.Helper()
	done := make(chan []runner.Result, 1)
	go func() { done <- c.SweepProgress(ctx, specs, fn) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		installed := c.sweep != nil
		c.mu.Unlock()
		if installed {
			return done
		}
		select {
		case r := <-done:
			done <- r
			return done
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never installed")
		}
		time.Sleep(time.Millisecond)
	}
}

func doneResult(t *testing.T, key string, index int) JobResult {
	t.Helper()
	return JobResult{
		Index: index,
		State: runner.ProgressDone,
		Result: runner.Result{
			Key:     key,
			Outcome: &runner.Outcome{Trace: "t", Instructions: 1000, Accesses: 100, Hits: 90, Misses: 10, MPKI: 10},
		},
	}
}

func TestCoordinatorLeaseAndComplete(t *testing.T) {
	clk := &fakeClock{}
	m := telemetry.NewRegistry()
	c := newTestCoordinator(t, clk, Options{Metrics: m})
	reg := c.Register(RegisterRequest{Name: "w1"})
	if reg.WorkerID == "" || reg.LeaseSize != DefaultLeaseSize {
		t.Fatalf("register = %+v", reg)
	}

	specs := []runner.Spec{specN(0), specN(1), specN(2)}
	log := &progressLog{}
	done := startSweep(t, c, context.Background(), specs, log.add)

	resp, err := c.Lease(LeaseRequest{WorkerID: reg.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	g := resp.Lease
	if g == nil || len(g.Jobs) != 3 {
		t.Fatalf("lease = %+v, want 3 jobs", resp)
	}
	for i, job := range g.Jobs {
		if job.Index != i {
			t.Fatalf("job %d leased index %d (want FIFO order)", i, job.Index)
		}
		if job.Key != keyOf(t, specs[i]) {
			t.Fatalf("job %d key mismatch", i)
		}
		if job.Spec.Policy != "lru" {
			t.Fatalf("job %d spec not normalized: %+v", i, job.Spec)
		}
	}

	var results []JobResult
	for i, job := range g.Jobs {
		results = append(results, doneResult(t, job.Key, i))
	}
	cresp, err := c.Complete(CompleteRequest{WorkerID: reg.WorkerID, LeaseID: g.LeaseID, Sweep: g.Sweep, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if cresp.Accepted != 3 || cresp.Duplicates != 0 || cresp.Rejected != 0 {
		t.Fatalf("complete = %+v", cresp)
	}

	got := <-done
	for i, r := range got {
		if r.Err != "" || r.Outcome == nil || r.Key != keyOf(t, specs[i]) {
			t.Fatalf("result %d = %+v", i, r)
		}
		norm, _ := specs[i].Normalized()
		if !reflect.DeepEqual(r.Spec, norm) {
			t.Fatalf("result %d spec = %+v, want coordinator-normalized %+v", i, r.Spec, norm)
		}
		if r.Cached {
			t.Fatalf("result %d marked cached on a cold run", i)
		}
		if want := []string{"started", "done"}; !reflect.DeepEqual(log.states(i), want) {
			t.Fatalf("progress for %d = %v, want %v", i, log.states(i), want)
		}
	}
	if v := m.Counter("fabric_results_accepted").Value(); v != 3 {
		t.Fatalf("fabric_results_accepted = %d, want 3", v)
	}
	// The coordinator must be idle again: a second sweep starts cleanly.
	c.mu.Lock()
	idle := c.sweep == nil
	c.mu.Unlock()
	if !idle {
		t.Fatal("coordinator still holds the finished sweep")
	}
}

func TestCoordinatorInvalidAndCacheHit(t *testing.T) {
	clk := &fakeClock{}
	cache, err := runner.NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	cached := specN(0)
	out := &runner.Outcome{Trace: "cassandra", Instructions: 42, Accesses: 7, MPKI: 1}
	cache.Put(keyOf(t, cached), out)

	c := newTestCoordinator(t, clk, Options{Cache: cache})
	log := &progressLog{}
	// No workers registered: both slots must resolve at partition time.
	got := c.SweepProgress(context.Background(), []runner.Spec{{App: "no-such-app"}, cached}, log.add)
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].Err == "" || got[0].Key != "" {
		t.Fatalf("invalid slot = %+v", got[0])
	}
	if !got[1].Cached || got[1].Outcome != out {
		t.Fatalf("cached slot = %+v", got[1])
	}
	if want := []string{"started", "invalid"}; !reflect.DeepEqual(log.states(0), want) {
		t.Fatalf("progress for 0 = %v, want %v", log.states(0), want)
	}
	if want := []string{"started", "done"}; !reflect.DeepEqual(log.states(1), want) {
		t.Fatalf("progress for 1 = %v, want %v", log.states(1), want)
	}
}

func TestCoordinatorExpiryRequeues(t *testing.T) {
	clk := &fakeClock{}
	m := telemetry.NewRegistry()
	c := newTestCoordinator(t, clk, Options{LeaseTTL: 10 * time.Second, Metrics: m})
	a := c.Register(RegisterRequest{Name: "a"})
	b := c.Register(RegisterRequest{Name: "b"})

	specs := []runner.Spec{specN(0), specN(1), specN(2)}
	done := startSweep(t, c, context.Background(), specs, nil)

	respA, err := c.Lease(LeaseRequest{WorkerID: a.WorkerID})
	if err != nil || respA.Lease == nil || len(respA.Lease.Jobs) != 3 {
		t.Fatalf("lease a = %+v (%v)", respA, err)
	}

	// Worker A goes silent past the TTL; B's next call-in triggers the lazy
	// expiry scan and inherits the requeued jobs in ascending index order.
	clk.advance(11 * time.Second)
	respB, err := c.Lease(LeaseRequest{WorkerID: b.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if respB.Lease == nil || len(respB.Lease.Jobs) != 3 {
		t.Fatalf("lease b = %+v, want the 3 requeued jobs", respB)
	}
	for i, job := range respB.Lease.Jobs {
		if job.Index != i {
			t.Fatalf("requeued job %d has index %d (want ascending)", i, job.Index)
		}
	}
	if v := m.Counter("fabric_leases_expired").Value(); v != 1 {
		t.Fatalf("fabric_leases_expired = %d, want 1", v)
	}
	if v := m.Counter("fabric_jobs_requeued").Value(); v != 3 {
		t.Fatalf("fabric_jobs_requeued = %d, want 3", v)
	}

	snap := c.Snapshot()
	if len(snap.Workers) != 2 || !snap.Workers[0].Dead || snap.Workers[1].Dead {
		t.Fatalf("snapshot workers = %+v, want a dead, b live", snap.Workers)
	}
	if snap.Workers[0].Expired != 3 {
		t.Fatalf("a.Expired = %d, want 3", snap.Workers[0].Expired)
	}
	if snap.Workers[1].Active != 3 {
		t.Fatalf("b.Active = %d, want 3", snap.Workers[1].Active)
	}

	// A late completion from the dead worker's stale lease is a no-op for
	// unfilled slots only through its (deleted) lease — but results are still
	// mergeable by first-write-wins: A finished job 0 before dying.
	lateA := CompleteRequest{WorkerID: a.WorkerID, LeaseID: respA.Lease.LeaseID, Sweep: respA.Lease.Sweep,
		Results: []JobResult{doneResult(t, keyOf(t, specs[0]), 0)}}
	la, err := c.Complete(lateA)
	if err != nil || la.Accepted != 1 {
		t.Fatalf("late complete = %+v (%v), want accepted", la, err)
	}

	// B finishes the rest; its duplicate of slot 0 is dropped.
	g := respB.Lease
	var rs []JobResult
	for i := range specs {
		rs = append(rs, doneResult(t, keyOf(t, specs[i]), i))
	}
	cb, err := c.Complete(CompleteRequest{WorkerID: b.WorkerID, LeaseID: g.LeaseID, Sweep: g.Sweep, Results: rs})
	if err != nil {
		t.Fatal(err)
	}
	if cb.Accepted != 2 || cb.Duplicates != 1 {
		t.Fatalf("complete b = %+v, want 2 accepted / 1 duplicate", cb)
	}
	got := <-done
	for i, r := range got {
		if r.Err != "" || r.Outcome == nil {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	// A revived beat brings the dead worker back into rotation.
	if !c.Beat(Heartbeat{WorkerID: a.WorkerID}) {
		t.Fatal("beat from revived worker rejected")
	}
	if snap := c.Snapshot(); snap.Workers[0].Dead {
		t.Fatal("worker a still dead after beating")
	}
}

func TestCoordinatorSteal(t *testing.T) {
	clk := &fakeClock{}
	m := telemetry.NewRegistry()
	c := newTestCoordinator(t, clk, Options{Metrics: m})
	a := c.Register(RegisterRequest{})
	b := c.Register(RegisterRequest{})

	specs := make([]runner.Spec, 4)
	for i := range specs {
		specs[i] = specN(i)
	}
	done := startSweep(t, c, context.Background(), specs, nil)

	respA, err := c.Lease(LeaseRequest{WorkerID: a.WorkerID})
	if err != nil || respA.Lease == nil || len(respA.Lease.Jobs) != 4 {
		t.Fatalf("lease a = %+v (%v)", respA, err)
	}
	// Nothing pending: B steals the un-started tail — half of A's 4
	// outstanding jobs, the highest indices.
	respB, err := c.Lease(LeaseRequest{WorkerID: b.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	g := respB.Lease
	if g == nil || !g.Stolen || len(g.Jobs) != 2 {
		t.Fatalf("steal grant = %+v, want 2 stolen jobs", respB)
	}
	if g.Jobs[0].Index != 2 || g.Jobs[1].Index != 3 {
		t.Fatalf("stole indices %d,%d, want the tail 2,3", g.Jobs[0].Index, g.Jobs[1].Index)
	}
	if v := m.Counter("fabric_jobs_stolen").Value(); v != 2 {
		t.Fatalf("fabric_jobs_stolen = %d, want 2", v)
	}

	// A third request: A still holds {0,1}; stealing must leave at least one
	// job behind, so only one is up for grabs.
	respB2, err := c.Lease(LeaseRequest{WorkerID: b.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if respB2.Lease == nil || len(respB2.Lease.Jobs) != 1 || respB2.Lease.Jobs[0].Index != 1 {
		t.Fatalf("second steal = %+v, want just index 1", respB2)
	}
	// Now every victim is down to a single outstanding job: no more steals.
	respB3, err := c.Lease(LeaseRequest{WorkerID: b.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if respB3.Lease != nil {
		t.Fatalf("third steal granted %+v, want poll hint", respB3.Lease)
	}
	if respB3.PollMs != DefaultHeartbeat.Milliseconds() {
		t.Fatalf("poll hint = %dms, want %dms", respB3.PollMs, DefaultHeartbeat.Milliseconds())
	}

	// Drain the sweep so the background goroutine exits.
	complete := func(w string, g *LeaseGrant, idxs ...int) {
		var rs []JobResult
		for _, i := range idxs {
			rs = append(rs, doneResult(t, keyOf(t, specs[i]), i))
		}
		if _, err := c.Complete(CompleteRequest{WorkerID: w, LeaseID: g.LeaseID, Sweep: g.Sweep, Results: rs}); err != nil {
			t.Fatal(err)
		}
	}
	complete(a.WorkerID, respA.Lease, 0)
	complete(b.WorkerID, respB.Lease, 2, 3)
	complete(b.WorkerID, respB2.Lease, 1)
	got := <-done
	for i, r := range got {
		if r.Err != "" {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	snap := c.Snapshot()
	if snap.Workers[1].Steals != 3 || snap.Workers[0].Stolen != 3 {
		t.Fatalf("steal accounting = %+v", snap.Workers)
	}
}

func TestCoordinatorRejectsBadResults(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk, Options{})
	w := c.Register(RegisterRequest{})
	specs := []runner.Spec{specN(0)}
	done := startSweep(t, c, context.Background(), specs, nil)
	resp, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if err != nil || resp.Lease == nil {
		t.Fatalf("lease = %+v (%v)", resp, err)
	}
	g := resp.Lease

	// Wrong key: rejected. Success without an outcome: rejected. Out-of-range
	// index: rejected.
	bad := CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID, Sweep: g.Sweep, Results: []JobResult{
		{Index: 0, State: runner.ProgressDone, Result: runner.Result{Key: "deadbeef", Outcome: &runner.Outcome{}}},
		{Index: 0, State: runner.ProgressDone, Result: runner.Result{Key: g.Jobs[0].Key}},
		{Index: 5, State: runner.ProgressDone, Result: runner.Result{Key: g.Jobs[0].Key}},
	}}
	cr, err := c.Complete(bad)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Accepted != 0 || cr.Rejected != 3 {
		t.Fatalf("complete = %+v, want 3 rejected", cr)
	}

	// A failed result with no error message gets a synthesized one.
	fail := CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID, Sweep: g.Sweep, Results: []JobResult{
		{Index: 0, State: runner.ProgressFailed, Result: runner.Result{Key: g.Jobs[0].Key}},
	}}
	cr, err = c.Complete(fail)
	if err != nil || cr.Accepted != 1 {
		t.Fatalf("complete = %+v (%v)", cr, err)
	}
	got := <-done
	if got[0].Err != "failed on "+w.WorkerID {
		t.Fatalf("failed slot err = %q", got[0].Err)
	}

	// Unknown worker and stale sweep are both terminal conditions, not merges.
	if _, err := c.Complete(CompleteRequest{WorkerID: "w-999999", LeaseID: "x", Sweep: "y"}); err == nil {
		t.Fatal("unknown worker accepted")
	}
	stale, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID, Sweep: g.Sweep,
		Results: []JobResult{doneResult(t, g.Jobs[0].Key, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	if stale.Duplicates != 1 || stale.Accepted != 0 {
		t.Fatalf("stale-sweep complete = %+v, want counted as duplicate", stale)
	}
}

func TestCoordinatorCancelFailsUnfilledSlots(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk, Options{})
	w := c.Register(RegisterRequest{})
	specs := []runner.Spec{specN(0), specN(1)}
	ctx, cancel := context.WithCancel(context.Background())
	log := &progressLog{}
	done := startSweep(t, c, ctx, specs, log.add)

	resp, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID, Max: 1})
	if err != nil || resp.Lease == nil || len(resp.Lease.Jobs) != 1 {
		t.Fatalf("lease = %+v (%v)", resp, err)
	}
	g := resp.Lease
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID, Sweep: g.Sweep,
		Results: []JobResult{doneResult(t, g.Jobs[0].Key, 0)}}); err != nil {
		t.Fatal(err)
	}
	cancel()
	got := <-done
	if got[0].Err != "" {
		t.Fatalf("completed slot = %+v", got[0])
	}
	if got[1].Err != "canceled: context canceled" {
		t.Fatalf("canceled slot err = %q, want the engine's wording", got[1].Err)
	}
	if want := []string{"started", "canceled"}; !reflect.DeepEqual(log.states(1), want) {
		t.Fatalf("progress for 1 = %v, want %v", log.states(1), want)
	}
	// The canceled sweep must not wedge the coordinator.
	res := c.Sweep(context.Background(), nil)
	if len(res) != 0 {
		t.Fatalf("empty sweep = %+v", res)
	}
}

func TestCoordinatorSweepCompletesByCacheOnly(t *testing.T) {
	// A worker PUT into the shared cache mid-sweep does not fill slots — only
	// Complete does — but a second sweep over the same specs resolves
	// entirely at partition time.
	clk := &fakeClock{}
	cache, err := runner.NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCoordinator(t, clk, Options{Cache: cache})
	w := c.Register(RegisterRequest{})
	specs := []runner.Spec{specN(0)}
	done := startSweep(t, c, context.Background(), specs, nil)
	resp, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if err != nil || resp.Lease == nil {
		t.Fatalf("lease = %+v (%v)", resp, err)
	}
	g := resp.Lease
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID, Sweep: g.Sweep,
		Results: []JobResult{doneResult(t, g.Jobs[0].Key, 0)}}); err != nil {
		t.Fatal(err)
	}
	first := <-done

	second := c.Sweep(context.Background(), specs)
	if !second[0].Cached || second[0].Outcome == nil {
		t.Fatalf("second sweep = %+v, want a cache pre-hit", second[0])
	}
	// The cache pre-hit serves the SAME outcome the merge stored.
	b1, _ := json.Marshal(first[0].Outcome)
	b2, _ := json.Marshal(second[0].Outcome)
	if string(b1) != string(b2) {
		t.Fatalf("cached outcome diverged: %s vs %s", b1, b2)
	}
}

func TestCoordinatorRejectsOverlappingSweep(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCoordinator(t, clk, Options{})
	specs := []runner.Spec{specN(0)}
	done := startSweep(t, c, context.Background(), specs, nil)

	overlap := c.Sweep(context.Background(), []runner.Spec{specN(1)})
	if overlap[0].Err == "" {
		t.Fatalf("overlapping sweep = %+v, want loud failure", overlap[0])
	}

	w := c.Register(RegisterRequest{})
	resp, err := c.Lease(LeaseRequest{WorkerID: w.WorkerID})
	if err != nil || resp.Lease == nil {
		t.Fatalf("lease = %+v (%v)", resp, err)
	}
	g := resp.Lease
	if _, err := c.Complete(CompleteRequest{WorkerID: w.WorkerID, LeaseID: g.LeaseID, Sweep: g.Sweep,
		Results: []JobResult{doneResult(t, g.Jobs[0].Key, 0)}}); err != nil {
		t.Fatal(err)
	}
	<-done
}
