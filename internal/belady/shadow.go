package belady

// This file provides the *incremental* forms of the offline optimal
// simulation, for consumers that interleave Belady's algorithm with other
// work instead of sweeping a whole access stream at once. Two models:
//
//   - Shadow: the set-associative geometry of the online BTB, advanced one
//     access at a time. ProfileSets is implemented on top of it, so the
//     batch profiler and every incremental consumer (the attribution layer's
//     regret reference) share one replacement decision procedure and cannot
//     drift apart.
//   - FAShadow: a fully-associative Belady model of the same total capacity,
//     used by the miss classifier to split capacity from conflict misses.
//     Victim search uses a lazy max-heap so each access costs O(log n)
//     instead of an O(capacity) scan.
//
// Both implement Belady-with-bypass: when the incoming access itself is the
// furthest-reused candidate, it is not inserted (ties bypass, matching the
// strict comparison in the original ProfileSets loop).

// ShadowOutcome reports what one Shadow access did.
type ShadowOutcome uint8

// Shadow access outcomes.
const (
	// ShadowHit: the PC was resident; its next-use was refreshed.
	ShadowHit ShadowOutcome = iota
	// ShadowInsert: a miss filled an empty way.
	ShadowInsert
	// ShadowEvict: a miss displaced the furthest-reused resident.
	ShadowEvict
	// ShadowBypass: a miss was not inserted (the incoming access is itself
	// the furthest-reused candidate).
	ShadowBypass
)

// ShadowStats counts shadow-model events; Misses includes bypasses.
type ShadowStats struct {
	Accesses, Hits, Misses, Bypasses uint64
}

// Shadow is an incremental set-associative Belady-with-bypass simulation of
// one BTB geometry. It is the same decision procedure as ProfileSets, one
// access at a time.
type Shadow struct {
	sets, ways int
	table      [][]beladyEntry
	stats      ShadowStats
}

// NewShadow returns a shadow model with the given geometry (minimums 1).
func NewShadow(sets, ways int) *Shadow {
	if sets < 1 {
		sets = 1
	}
	if ways < 1 {
		ways = 1
	}
	return &Shadow{sets: sets, ways: ways, table: make([][]beladyEntry, sets)}
}

// Sets returns the set count.
func (s *Shadow) Sets() int { return s.sets }

// Ways returns the associativity.
func (s *Shadow) Ways() int { return s.ways }

// Stats returns a copy of the counters so far.
func (s *Shadow) Stats() ShadowStats { return s.stats }

// ResetStats zeroes the counters without disturbing contents (mirrors
// btb.ResetStats at the end of simulation warmup).
func (s *Shadow) ResetStats() { s.stats = ShadowStats{} }

// Access advances the model by one access: pc with its next-use stream
// position (trace.NoNextUse if never reused). evictedPC is meaningful only
// when the outcome is ShadowEvict.
func (s *Shadow) Access(pc uint64, nextUse int) (out ShadowOutcome, evictedPC uint64) {
	s.stats.Accesses++
	si := pc % uint64(s.sets)
	set := s.table[si]
	for w := range set {
		if set[w].pc == pc {
			s.stats.Hits++
			set[w].nextUse = nextUse
			return ShadowHit, 0
		}
	}
	s.stats.Misses++
	if len(set) < s.ways {
		s.table[si] = append(set, beladyEntry{pc: pc, nextUse: nextUse})
		return ShadowInsert, 0
	}
	// Full set: evict the furthest-future candidate, counting the incoming
	// access itself (bypass). Strict > means ties favor the incoming access.
	victim, furthest := -1, nextUse
	for w := range set {
		if set[w].nextUse > furthest {
			furthest = set[w].nextUse
			victim = w
		}
	}
	if victim < 0 {
		s.stats.Bypasses++
		return ShadowBypass, 0
	}
	evictedPC = set[victim].pc
	set[victim] = beladyEntry{pc: pc, nextUse: nextUse}
	return ShadowEvict, evictedPC
}

// faItem is one lazy heap entry: the next-use a PC had when it was pushed.
// Entries whose next-use no longer matches the resident map are stale and
// discarded on pop.
type faItem struct {
	nextUse int
	pc      uint64
}

// faHeap is a max-heap by (nextUse, pc). The pc tie-break only matters for
// never-reused residents (distinct PCs cannot share a finite next-use
// position) and exists purely for determinism.
type faHeap []faItem

func (h faHeap) less(i, j int) bool {
	if h[i].nextUse != h[j].nextUse {
		return h[i].nextUse > h[j].nextUse
	}
	return h[i].pc > h[j].pc
}

func (h *faHeap) push(it faItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *faHeap) pop() faItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h).less(l, largest) {
			largest = l
		}
		if r < n && (*h).less(r, largest) {
			largest = r
		}
		if largest == i {
			break
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
	return top
}

// FAShadow is an incremental fully-associative Belady-with-bypass model.
// The miss classifier runs it at the online BTB's total capacity: a miss
// that hits here was caused by set conflicts, not by capacity.
type FAShadow struct {
	capacity int
	resident map[uint64]int // pc -> current next-use
	h        faHeap
	stats    ShadowStats
}

// NewFAShadow returns a fully-associative shadow of the given capacity
// (minimum 1).
func NewFAShadow(capacity int) *FAShadow {
	if capacity < 1 {
		capacity = 1
	}
	return &FAShadow{
		capacity: capacity,
		resident: make(map[uint64]int, capacity),
		h:        make(faHeap, 0, capacity),
	}
}

// Capacity returns the model's entry count.
func (s *FAShadow) Capacity() int { return s.capacity }

// Stats returns a copy of the counters so far.
func (s *FAShadow) Stats() ShadowStats { return s.stats }

// ResetStats zeroes the counters without disturbing contents.
func (s *FAShadow) ResetStats() { s.stats = ShadowStats{} }

// Resident reports whether pc is currently resident.
func (s *FAShadow) Resident(pc uint64) bool {
	_, ok := s.resident[pc]
	return ok
}

// Access advances the model by one access and reports whether it hit.
func (s *FAShadow) Access(pc uint64, nextUse int) (hit bool) {
	s.stats.Accesses++
	if _, ok := s.resident[pc]; ok {
		s.stats.Hits++
		s.resident[pc] = nextUse
		s.h.push(faItem{nextUse: nextUse, pc: pc})
		return true
	}
	s.stats.Misses++
	if len(s.resident) < s.capacity {
		s.resident[pc] = nextUse
		s.h.push(faItem{nextUse: nextUse, pc: pc})
		return false
	}
	// Discard stale heap entries (superseded next-uses and evicted PCs)
	// until the top reflects a live resident: the furthest-reused one.
	for {
		cur, ok := s.resident[s.h[0].pc]
		if ok && cur == s.h[0].nextUse {
			break
		}
		s.h.pop()
	}
	if s.h[0].nextUse > nextUse {
		victim := s.h.pop()
		delete(s.resident, victim.pc)
		s.resident[pc] = nextUse
		s.h.push(faItem{nextUse: nextUse, pc: pc})
	} else {
		s.stats.Bypasses++
	}
	return false
}
