package belady

import (
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

func stream(pcs []uint64) []trace.Access {
	tr := &trace.Trace{Name: "t"}
	for _, pc := range pcs {
		tr.Records = append(tr.Records, trace.Record{
			PC: pc, Target: pc + 4, Taken: true, Type: trace.UncondDirect,
		})
	}
	return tr.AccessStream()
}

func randomStream(r *xrand.RNG, nPCs, length int) []trace.Access {
	z := xrand.NewZipf(nPCs, 0.9)
	pcs := make([]uint64, length)
	for i := range pcs {
		pcs[i] = uint64(z.Sample(r) + 1)
	}
	return stream(pcs)
}

func TestProfileBasics(t *testing.T) {
	// 2 hot branches cycling + unique cold branches, 1 set × 2 ways.
	pcs := []uint64{1, 2}
	cold := uint64(100)
	for rep := 0; rep < 10; rep++ {
		pcs = append(pcs, 1, 2, cold)
		cold++
	}
	res := ProfileSets(stream(pcs), 1, 2)
	if res.Accesses != uint64(len(pcs)) {
		t.Fatalf("accesses = %d, want %d", res.Accesses, len(pcs))
	}
	b1 := res.PerBranch[1]
	if b1 == nil || b1.Taken != 11 {
		t.Fatalf("branch 1 profile = %+v", b1)
	}
	// Optimal keeps branches 1 and 2 resident; the cold stream bypasses.
	if b1.Hits != 10 {
		t.Fatalf("branch 1 hits = %d, want 10", b1.Hits)
	}
	if got := b1.HitToTaken(); got < 0.9 {
		t.Fatalf("branch 1 hit-to-taken = %v, want >= 0.9", got)
	}
	bc := res.PerBranch[100]
	if bc.Hits != 0 || bc.Bypasses != 1 {
		t.Fatalf("cold branch profile = %+v", bc)
	}
	if bc.HitToTaken() != 0 {
		t.Fatalf("cold hit-to-taken = %v", bc.HitToTaken())
	}
	if res.HitRate() <= 0.5 {
		t.Fatalf("hit rate = %v", res.HitRate())
	}
}

func TestBypassRatio(t *testing.T) {
	b := BranchProfile{Inserts: 1, Bypasses: 3}
	if b.BypassRatio() != 0.75 {
		t.Fatalf("bypass ratio = %v", b.BypassRatio())
	}
	var empty BranchProfile
	if empty.BypassRatio() != 0 || empty.HitToTaken() != 0 {
		t.Fatal("zero-value profile ratios not 0")
	}
}

func TestSortedByTemperature(t *testing.T) {
	pcs := []uint64{1, 1, 1, 1, 2, 9, 2, 8, 2, 7}
	res := ProfileSets(stream(pcs), 1, 2)
	sorted := res.SortedByTemperature()
	if len(sorted) != 5 {
		t.Fatalf("sorted length = %d", len(sorted))
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].HitToTaken() < sorted[i].HitToTaken() {
			t.Fatalf("not descending at %d", i)
		}
	}
}

// TestMatchesOnlineOPT cross-checks the offline profiler against the online
// OPT replacement policy: both implement Belady-with-bypass and must agree
// exactly on hits and bypasses.
func TestMatchesOnlineOPT(t *testing.T) {
	r := xrand.New(31)
	for iter := 0; iter < 10; iter++ {
		acc := randomStream(r, 80, 4000)
		sets, ways := 4, 4
		res := ProfileSets(acc, sets, ways)

		b := btb.NewWithSets(sets, ways, policy.NewOPT())
		for i := range acc {
			a := &acc[i]
			b.Access(&btb.Request{PC: a.PC, Target: a.Target, NextUse: a.NextUse, Index: i})
		}
		online := b.Stats()
		if res.Hits != online.Hits {
			t.Fatalf("iter %d: offline hits %d != online OPT hits %d", iter, res.Hits, online.Hits)
		}
		if res.Bypasses != online.Bypasses {
			t.Fatalf("iter %d: offline bypasses %d != online %d", iter, res.Bypasses, online.Bypasses)
		}
	}
}

// TestOptimalDominatesProperty: on random streams, the offline optimal hit
// count is an upper bound for every realizable policy.
func TestOptimalDominatesProperty(t *testing.T) {
	r := xrand.New(57)
	for iter := 0; iter < 10; iter++ {
		acc := randomStream(r, 50+r.Intn(100), 3000)
		res := ProfileSets(acc, 2, 4)
		for _, p := range []btb.Policy{policy.NewLRU(), policy.NewSRRIP(), policy.NewRandom()} {
			b := btb.NewWithSets(2, 4, p)
			for i := range acc {
				a := &acc[i]
				b.Access(&btb.Request{PC: a.PC, Target: a.Target, NextUse: a.NextUse, Index: i})
			}
			if s := b.Stats(); s.Hits > res.Hits {
				t.Fatalf("iter %d: %s hits %d > OPT %d", iter, p.Name(), s.Hits, res.Hits)
			}
		}
	}
}

func TestPerBranchTotalsConsistent(t *testing.T) {
	r := xrand.New(91)
	acc := randomStream(r, 120, 5000)
	res := Profile(acc, 16, 4)
	var taken, hits, ins, byp uint64
	for _, b := range res.PerBranch {
		taken += b.Taken
		hits += b.Hits
		ins += b.Inserts
		byp += b.Bypasses
	}
	if taken != res.Accesses || hits != res.Hits || byp != res.Bypasses {
		t.Fatalf("per-branch totals inconsistent: taken=%d hits=%d byp=%d vs %+v",
			taken, hits, byp, res)
	}
	if ins+byp != res.Misses {
		t.Fatalf("inserts+bypasses=%d != misses=%d", ins+byp, res.Misses)
	}
}

func TestDegenerateGeometry(t *testing.T) {
	acc := stream([]uint64{1, 2, 1, 2})
	res := Profile(acc, 2, 4) // entries < ways → clamps to 1 set
	if res.Sets != 1 {
		t.Fatalf("sets = %d, want 1", res.Sets)
	}
	if res.Hits != 2 {
		t.Fatalf("hits = %d, want 2", res.Hits)
	}
}
