// Package belady implements the offline optimal-replacement simulation at
// the heart of Thermometer's profiler (§3.2 of the paper).
//
// Given a branch trace's access stream, it simulates a BTB of the target
// geometry under Belady's algorithm (with bypass) and records, per static
// branch, how many times the branch was taken and how many of those takes
// hit the BTB. The ratio — the *hit-to-taken percentage* — is the branch's
// temperature, the holistic metric the whole technique is built on.
//
// The simulation here is written independently of the online OPT policy in
// package policy; tests cross-check that both produce identical hit counts,
// which guards each against implementation bugs in the other.
package belady

import (
	"sort"

	"thermometer/internal/detmap"
	"thermometer/internal/trace"
)

// BranchProfile accumulates the per-static-branch measurements the profiler
// extracts from the optimal simulation.
type BranchProfile struct {
	PC   uint64
	Type trace.BranchType
	// Taken counts dynamic taken instances (BTB demand accesses).
	Taken uint64
	// Hits counts accesses that hit under the optimal policy.
	Hits uint64
	// Inserts counts misses that the optimal policy chose to insert.
	Inserts uint64
	// Bypasses counts misses that the optimal policy chose not to insert.
	Bypasses uint64
}

// HitToTaken returns the branch temperature measurement in [0, 1].
func (b *BranchProfile) HitToTaken() float64 {
	if b.Taken == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Taken)
}

// BypassRatio returns Bypasses / (Bypasses + Inserts), the Fig 9 metric.
func (b *BranchProfile) BypassRatio() float64 {
	d := b.Bypasses + b.Inserts
	if d == 0 {
		return 0
	}
	return float64(b.Bypasses) / float64(d)
}

// Result is the output of a Profile run.
type Result struct {
	// PerBranch maps branch PC to its profile.
	PerBranch map[uint64]*BranchProfile
	// Accesses, Hits, Misses, Bypasses are stream-wide totals.
	Accesses, Hits, Misses, Bypasses uint64
	// Sets and Ways echo the simulated geometry.
	Sets, Ways int
}

// HitRate returns the overall optimal hit rate.
func (r *Result) HitRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// SortedByTemperature returns the profiled branches ordered by descending
// hit-to-taken percentage — the x-axis ordering of Figs 6 and 7.
func (r *Result) SortedByTemperature() []*BranchProfile {
	out := make([]*BranchProfile, 0, len(r.PerBranch))
	for _, pc := range detmap.SortedKeys(r.PerBranch) {
		out = append(out, r.PerBranch[pc])
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].HitToTaken(), out[j].HitToTaken()
		if ti != tj {
			return ti > tj
		}
		return out[i].PC < out[j].PC // deterministic order
	})
	return out
}

// Profile simulates Belady's optimal BTB replacement (with bypass) of the
// given geometry over the access stream and returns per-branch statistics.
//
// entries is the total entry count; ways the associativity; sets are derived
// as entries/ways with plain modulo indexing, matching the online BTB.
func Profile(accesses []trace.Access, entries, ways int) *Result {
	sets := entries / ways
	if sets <= 0 {
		sets = 1
	}
	return ProfileSets(accesses, sets, ways)
}

// beladyEntry is one resident line in the offline simulation.
type beladyEntry struct {
	pc      uint64
	nextUse int
}

// ProfileSets is Profile with an explicit set count. It drives the
// incremental Shadow model (see shadow.go), so the batch profiler and the
// attribution layer's regret reference share one replacement decision
// procedure.
func ProfileSets(accesses []trace.Access, sets, ways int) *Result {
	res := &Result{
		PerBranch: make(map[uint64]*BranchProfile, 1<<12),
		Sets:      sets,
		Ways:      ways,
	}
	shadow := NewShadow(sets, ways)
	for i := range accesses {
		a := &accesses[i]
		bp := res.PerBranch[a.PC]
		if bp == nil {
			bp = &BranchProfile{PC: a.PC, Type: a.Type}
			res.PerBranch[a.PC] = bp
		}
		bp.Taken++

		out, _ := shadow.Access(a.PC, a.NextUse)
		switch out {
		case ShadowHit:
			bp.Hits++
		case ShadowInsert, ShadowEvict:
			bp.Inserts++
		case ShadowBypass:
			bp.Bypasses++
		}
	}
	st := shadow.Stats()
	res.Accesses = st.Accesses
	res.Hits = st.Hits
	res.Misses = st.Misses
	res.Bypasses = st.Bypasses
	return res
}
