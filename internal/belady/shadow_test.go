package belady

import (
	"testing"

	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

func shadowStream(t *testing.T) []trace.Access {
	t.Helper()
	spec, ok := workload.App("kafka")
	if !ok {
		t.Fatal("unknown app kafka")
	}
	return spec.ScaleLength(1, 8).Generate(0).AccessStream()
}

// The incremental set-associative shadow must agree access-for-access with
// the batch profiler (which is now implemented on top of it) — checked here
// against totals under several geometries.
func TestShadowMatchesProfileSets(t *testing.T) {
	accesses := shadowStream(t)
	for _, g := range []struct{ sets, ways int }{
		{2048, 4}, {1994, 4}, {512, 8}, {64, 1},
	} {
		shadow := NewShadow(g.sets, g.ways)
		for i := range accesses {
			shadow.Access(accesses[i].PC, accesses[i].NextUse)
		}
		got := shadow.Stats()
		want := ProfileSets(accesses, g.sets, g.ways)
		if got.Accesses != want.Accesses || got.Hits != want.Hits ||
			got.Misses != want.Misses || got.Bypasses != want.Bypasses {
			t.Errorf("%dx%d: shadow %+v != ProfileSets {%d %d %d %d}", g.sets, g.ways,
				got, want.Accesses, want.Hits, want.Misses, want.Bypasses)
		}
	}
}

// The heap-based fully-associative shadow must produce the same hit/miss
// sequence as the scan-based single-set shadow of equal capacity: next-use
// positions are unique except NoNextUse, and never-reused residents cannot
// influence future hits regardless of which of them is evicted.
func TestFAShadowMatchesSingleSetShadow(t *testing.T) {
	accesses := shadowStream(t)
	const capacity = 256 // small enough to force evictions on this stream
	fa := NewFAShadow(capacity)
	ref := NewShadow(1, capacity)
	for i := range accesses {
		a := &accesses[i]
		hit := fa.Access(a.PC, a.NextUse)
		out, _ := ref.Access(a.PC, a.NextUse)
		if hit != (out == ShadowHit) {
			t.Fatalf("access %d pc %#x: FA hit=%v, reference outcome %d", i, a.PC, hit, out)
		}
	}
	got, want := fa.Stats(), ref.Stats()
	if got != want {
		t.Fatalf("FA stats %+v != single-set shadow %+v", got, want)
	}
	if got.Misses == got.Bypasses {
		t.Fatal("degenerate stream: no insertions exercised")
	}
}

func TestFAShadowResidencyAndReset(t *testing.T) {
	fa := NewFAShadow(2)
	// a and b fill the cache; c's next use (10) is nearer than b's (50), so
	// Belady evicts b.
	fa.Access(0xa, 20)
	fa.Access(0xb, 50)
	fa.Access(0xc, 10)
	if !fa.Resident(0xa) || !fa.Resident(0xc) || fa.Resident(0xb) {
		t.Fatal("expected {a, c} resident after Belady eviction of b")
	}
	// d is itself the furthest candidate: bypassed.
	fa.Access(0xd, trace.NoNextUse)
	if fa.Resident(0xd) {
		t.Fatal("never-reused incoming access should bypass")
	}
	st := fa.Stats()
	if st.Accesses != 4 || st.Hits != 0 || st.Misses != 4 || st.Bypasses != 1 {
		t.Fatalf("stats %+v", st)
	}
	fa.ResetStats()
	if fa.Stats() != (ShadowStats{}) {
		t.Fatal("ResetStats left counters")
	}
	if !fa.Resident(0xa) {
		t.Fatal("ResetStats must not disturb contents")
	}
}
