package attribution

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the live debug surface for the recorder:
//
//	/debug/attrib             full Report as JSON
//	/debug/attrib/heatmap     HTML page with inline-SVG occupancy and
//	                          temperature heatmaps
//	/debug/attrib/heatmap.csv the retained heatmap rows as CSV
//
// JSON responses accept ?top=N to bound the branch table. The handler is
// mounted by telemetry.Serve via core's Config wiring (btbsim -attrib -http).
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/attrib", r.serveJSON)
	mux.HandleFunc("/debug/attrib/heatmap", r.serveHeatmapHTML)
	mux.HandleFunc("/debug/attrib/heatmap.csv", r.serveHeatmapCSV)
	return mux
}

func (r *Recorder) serveJSON(w http.ResponseWriter, req *http.Request) {
	topN := 20
	if v := req.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "top must be a positive integer", http.StatusBadRequest)
			return
		}
		topN = n
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Report(topN))
}

func (r *Recorder) serveHeatmapCSV(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	_ = r.WriteHeatCSV(w)
}

// heatSVG renders one heatmap (epochs on x, sets on y) as inline SVG. The
// value of cell (epoch e, set s) is pick(row_e, s), shaded linearly against
// max. Sets are downsampled to at most maxBands horizontal bands so the
// image stays small for large geometries.
func heatSVG(sb *strings.Builder, heat []HeatRow, sets int, pick func(*HeatRow, int) int) {
	const (
		maxBands = 128
		cellW    = 6
		cellH    = 4
	)
	bands := sets
	per := 1
	if bands > maxBands {
		per = (sets + maxBands - 1) / maxBands
		bands = (sets + per - 1) / per
	}
	// Aggregate each band as the mean over its sets, tracking the max for
	// normalisation.
	vals := make([][]int, len(heat))
	maxV := 1
	for e := range heat {
		vals[e] = make([]int, bands)
		for b := 0; b < bands; b++ {
			sum, n := 0, 0
			for s := b * per; s < (b+1)*per && s < sets; s++ {
				sum += pick(&heat[e], s)
				n++
			}
			if n > 0 {
				vals[e][b] = sum / n
			}
			if vals[e][b] > maxV {
				maxV = vals[e][b]
			}
		}
	}
	fmt.Fprintf(sb, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`,
		len(heat)*cellW, bands*cellH)
	for e := range vals {
		for b := range vals[e] {
			// Dark blue (cold/empty) to bright orange (hot/full).
			t := float64(vals[e][b]) / float64(maxV)
			red := int(20 + 235*t)
			green := int(30 + 130*t)
			blue := int(90 - 60*t)
			fmt.Fprintf(sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)"/>`,
				e*cellW, b*cellH, cellW, cellH, red, green, blue)
		}
	}
	sb.WriteString(`</svg>`)
}

func (r *Recorder) serveHeatmapHTML(w http.ResponseWriter, req *http.Request) {
	rep := r.Report(1)
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html><html><head><title>BTB attribution heatmap</title>` +
		`<style>body{font-family:monospace;background:#111;color:#ddd;padding:1em}` +
		`h2{margin-bottom:0.2em}</style></head><body>`)
	fmt.Fprintf(&sb, `<h1>BTB heatmap — policy=%s, %d sets &times; %d ways</h1>`,
		rep.Policy, rep.Sets, rep.Ways)
	fmt.Fprintf(&sb, `<p>%d epoch rows retained (%d dropped); x: epochs, y: sets. `+
		`<a href="/debug/attrib">JSON report</a> &middot; `+
		`<a href="/debug/attrib/heatmap.csv">CSV</a></p>`,
		len(rep.Heat), rep.HeatDropped)
	if len(rep.Heat) == 0 {
		sb.WriteString(`<p>no samples yet</p>`)
	} else {
		sb.WriteString(`<h2>occupancy (valid entries per set)</h2>`)
		heatSVG(&sb, rep.Heat, rep.Sets, func(h *HeatRow, s int) int { return int(h.Valid[s]) })
		sb.WriteString(`<h2>temperature (stored hint sum per set)</h2>`)
		heatSVG(&sb, rep.Heat, rep.Sets, func(h *HeatRow, s int) int { return int(h.TempSum[s]) })
	}
	sb.WriteString(`</body></html>`)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}
