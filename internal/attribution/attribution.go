// Package attribution turns the telemetry subsystem's aggregate counters
// into explainable per-decision records: *which* BTB evictions cost cycles
// and *why* a replacement policy diverges from Belady OPT.
//
// Three cooperating pieces, all driven from the simulator's observer probes
// (package core forwards btb.ProbeFunc events when a Recorder is attached):
//
//   - a miss classifier that tags every demand BTB miss as compulsory
//     (first touch), conflict (would hit a fully-associative Belady model of
//     equal capacity), or capacity (misses even fully-associative) — the
//     three classes always sum to the demand miss count;
//   - a regret tracer that records every replacement decision (eviction or
//     bypass) with the policy's choice and Belady's choice over the same
//     residents, then charges later misses of evicted-too-early branches
//     back to the decision that evicted them. The identity
//     charged − windfall = policy misses − OPT misses holds exactly,
//     because every access is scored against a same-geometry incremental
//     Belady shadow (belady.Shadow);
//   - a per-set occupancy and temperature heatmap sampled on the telemetry
//     epoch grid.
//
// Bounded state: the decision ring retains the last RingCap decisions and
// the heatmap the last HeatCap epoch rows; the regret tables and the
// pending-decision index grow with the static-branch working set (the same
// bound as the profiler itself), never with trace length.
//
// The Recorder is safe for concurrent use: the simulator mutates it while
// the live debug surface (/debug/attrib) reads snapshots.
package attribution

import (
	"sync"

	"thermometer/internal/belady"
	"thermometer/internal/btb"
)

// MissClass is the taxonomy bucket of one demand BTB miss.
type MissClass uint8

// Miss classes.
const (
	// MissCompulsory: the branch had never been demand-accessed before.
	MissCompulsory MissClass = iota
	// MissCapacity: a fully-associative Belady-managed BTB of equal
	// capacity would also have missed.
	MissCapacity
	// MissConflict: the fully-associative model holds the branch — the miss
	// is caused by set conflicts under modulo indexing.
	MissConflict
	numMissClasses
)

// String returns the lower-case class name.
func (c MissClass) String() string {
	switch c {
	case MissCompulsory:
		return "compulsory"
	case MissCapacity:
		return "capacity"
	case MissConflict:
		return "conflict"
	default:
		return "unknown"
	}
}

// Decision is one recorded replacement decision: an eviction, or a bypass
// (the policy declined to insert the incoming branch). For bypasses
// Way = -1 and VictimPC equals IncomingPC (the branch denied residency).
type Decision struct {
	// Cycle is the simulated cycle of the decision; Index its position in
	// the demand access stream.
	Cycle uint64 `json:"cycle"`
	Index int    `json:"index"`
	// Set and Way locate the policy's choice (Way = -1 for a bypass).
	Set int `json:"set"`
	Way int `json:"way"`
	// VictimPC is the displaced branch, IncomingPC the branch inserted in
	// its place.
	VictimPC   uint64 `json:"victim_pc"`
	IncomingPC uint64 `json:"incoming_pc"`
	// VictimTemp and IncomingTemp are the stored Thermometer hint bits.
	VictimTemp   uint8 `json:"victim_temp"`
	IncomingTemp uint8 `json:"incoming_temp"`
	// OPTWay is what Belady would evict given the same residents' future
	// uses (-1: Belady would bypass the incoming branch instead).
	OPTWay int `json:"opt_way"`
	// Agree reports whether the policy made Belady's choice.
	Agree bool `json:"agree"`
	// Regret counts misses charged back to this decision so far.
	Regret uint64 `json:"regret"`
}

// SetRegret aggregates decisions and charged regret for one BTB set.
type SetRegret struct {
	Evictions uint64 `json:"evictions"`
	Bypasses  uint64 `json:"bypasses"`
	Charged   uint64 `json:"charged"`
}

// BranchRegret aggregates per static branch: how often it was the victim of
// an eviction or bypass decision, and how many later misses those decisions
// were charged for.
type BranchRegret struct {
	PC        uint64 `json:"pc"`
	Evictions uint64 `json:"evictions"`
	Bypasses  uint64 `json:"bypasses"`
	Charged   uint64 `json:"charged"`
}

// HeatRow is one heatmap sample: per-set valid-entry counts and stored-
// temperature sums at an epoch boundary.
type HeatRow struct {
	EndInstr uint64   `json:"end_instr"`
	Valid    []uint16 `json:"valid"`
	TempSum  []uint16 `json:"temp_sum"`
}

// Options sizes a Recorder's bounded buffers.
type Options struct {
	// RingCap is the decision ring capacity (default 4096, minimum 1).
	RingCap int
	// HeatCap is the number of heatmap epoch rows retained (default 1024,
	// minimum 1; oldest rows are dropped first).
	HeatCap int
}

// Recorder is the attribution engine. Create with New, attach via
// core.Config.Attribution (alongside a telemetry Observer), and read with
// Report, WriteText, WriteHeatCSV, or the /debug/attrib Handler.
type Recorder struct {
	mu sync.Mutex

	policy     string // guarded by mu
	sets, ways int    // guarded by mu

	// Shadow reference models.
	fa   *belady.FAShadow    // guarded by mu; equal-capacity fully-associative: classifier
	opt  *belady.Shadow      // guarded by mu; same-geometry Belady: regret reference
	seen map[uint64]struct{} // guarded by mu

	// nextUse mirrors the *real* BTB residents' next-use positions (updated
	// on every hit/fill probe), so Belady's choice over the actual set
	// contents is computable at decision time.
	nextUse []int // guarded by mu

	// Miss classification (post-warmup).
	classes  [numMissClasses]uint64 // guarded by mu
	accesses uint64                 // guarded by mu
	hits     uint64                 // guarded by mu
	misses   uint64                 // guarded by mu

	// Regret accounting (post-warmup).
	evictions    uint64 // guarded by mu
	bypasses     uint64 // guarded by mu
	agreeOPT     uint64 // guarded by mu
	charged      uint64 // guarded by mu
	unattributed uint64 // guarded by mu
	windfall     uint64 // guarded by mu

	// pending maps an evicted (or bypassed) branch to the decision that
	// last denied it residency; its next demand miss is charged there.
	pending   map[uint64]*Decision     // guarded by mu
	perSet    []SetRegret              // guarded by mu
	perBranch map[uint64]*BranchRegret // guarded by mu

	// Decision ring (last RingCap decisions).
	ring      []*Decision // guarded by mu
	ringHead  int         // guarded by mu
	ringTotal uint64      // guarded by mu

	// Heatmap ring (last HeatCap epoch rows).
	heat      []HeatRow // guarded by mu
	heatHead  int       // guarded by mu
	heatTotal uint64    // guarded by mu
	heatCap   int
	ringCap   int
}

// New returns an unbound Recorder; the simulator calls Bind at attach time.
func New(opts Options) *Recorder {
	if opts.RingCap < 1 {
		opts.RingCap = 4096
	}
	if opts.HeatCap < 1 {
		opts.HeatCap = 1024
	}
	return &Recorder{ringCap: opts.RingCap, heatCap: opts.HeatCap}
}

// Bind sizes the recorder for one run: the policy under audit and the BTB
// geometry. It clears all recorded state.
func (r *Recorder) Bind(policy string, sets, ways int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = policy
	r.sets, r.ways = sets, ways
	r.fa = belady.NewFAShadow(sets * ways)
	r.opt = belady.NewShadow(sets, ways)
	r.seen = make(map[uint64]struct{}, 1<<12)
	r.nextUse = make([]int, sets*ways)
	r.pending = make(map[uint64]*Decision, 1<<10)
	r.perSet = make([]SetRegret, sets)
	r.perBranch = make(map[uint64]*BranchRegret, 1<<10)
	r.ring = make([]*Decision, 0, r.ringCap)
	r.heat = make([]HeatRow, 0, r.heatCap)
	r.classes = [numMissClasses]uint64{}
	r.accesses, r.hits, r.misses = 0, 0, 0
	r.evictions, r.bypasses, r.agreeOPT = 0, 0, 0
	r.charged, r.unattributed, r.windfall = 0, 0, 0
	r.ringHead, r.ringTotal = 0, 0
	r.heatHead, r.heatTotal = 0, 0
}

// bound reports whether Bind has run (all probe entry points no-op before).
func (r *Recorder) bound() bool { return r.nextUse != nil }

// processDemand scores one demand access against both shadow models,
// classifies it on a miss, and charges regret to the responsible pending
// decision. Caller holds r.mu.
func (r *Recorder) processDemand(req *btb.Request, hit bool) {
	faHit := r.fa.Access(req.PC, req.NextUse)
	out, _ := r.opt.Access(req.PC, req.NextUse)
	optHit := out == belady.ShadowHit
	_, seenBefore := r.seen[req.PC]
	if !seenBefore {
		r.seen[req.PC] = struct{}{}
	}

	r.accesses++
	if hit {
		r.hits++
		if !optHit {
			// The policy kept something Belady sacrificed: a windfall hit.
			r.windfall++
		}
		return
	}
	r.misses++
	switch {
	case !seenBefore:
		r.classes[MissCompulsory]++
	case faHit:
		r.classes[MissConflict]++
	default:
		r.classes[MissCapacity]++
	}
	if optHit {
		// Belady kept this branch; the policy's earlier decision to evict
		// or bypass it costs this miss.
		r.charged++
		if d := r.pending[req.PC]; d != nil {
			d.Regret++
			r.perSet[d.Set].Charged++
			r.branch(d.VictimPC).Charged++
		} else {
			r.unattributed++
		}
	}
}

func (r *Recorder) branch(pc uint64) *BranchRegret {
	b := r.perBranch[pc]
	if b == nil {
		b = &BranchRegret{PC: pc}
		r.perBranch[pc] = b
	}
	return b
}

// optChoice computes Belady's victim for one full set given the mirrored
// residents' next uses: the furthest-reused way, or -1 when the incoming
// request itself is furthest (bypass). Caller holds r.mu.
func (r *Recorder) optChoice(set int, req *btb.Request) int {
	base := set * r.ways
	choice, furthest := -1, req.NextUse
	for w := 0; w < r.ways; w++ {
		if nu := r.nextUse[base+w]; nu > furthest {
			furthest = nu
			choice = w
		}
	}
	return choice
}

func (r *Recorder) pushRing(d *Decision) {
	if len(r.ring) < r.ringCap {
		r.ring = append(r.ring, d)
	} else {
		r.ring[r.ringHead] = d
		r.ringHead++
		if r.ringHead == r.ringCap {
			r.ringHead = 0
		}
	}
	r.ringTotal++
}

// OnHit records a demand hit in set/way.
func (r *Recorder) OnHit(set, way int, req *btb.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	r.processDemand(req, true)
	r.nextUse[set*r.ways+way] = req.NextUse
}

// OnInsert records a demand miss that filled set/way (after any eviction,
// which arrives first via OnEvict).
func (r *Recorder) OnInsert(set, way int, req *btb.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	r.processDemand(req, false)
	// The branch is resident again: its pending decision (if any) has been
	// charged for the last time.
	delete(r.pending, req.PC)
	r.nextUse[set*r.ways+way] = req.NextUse
}

// OnEvict records one eviction decision: the policy displaced victim from
// set/way to admit req. It must be called before the matching OnInsert /
// OnPrefetchFill, while the mirrored next-use table still describes the
// victim (btb.ProbeFunc delivers events in that order).
func (r *Recorder) OnEvict(cycle uint64, set, way int, req *btb.Request, victim *btb.Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	optWay := r.optChoice(set, req)
	d := &Decision{
		Cycle: cycle, Index: req.Index, Set: set, Way: way,
		VictimPC: victim.PC, IncomingPC: req.PC,
		VictimTemp: victim.Temperature, IncomingTemp: req.Temperature,
		OPTWay: optWay, Agree: optWay == way,
	}
	r.evictions++
	if d.Agree {
		r.agreeOPT++
	}
	r.perSet[set].Evictions++
	r.branch(victim.PC).Evictions++
	r.pending[victim.PC] = d
	r.pushRing(d)
}

// OnBypass records a demand miss the policy declined to insert — a decision
// whose "victim" is the incoming branch itself.
func (r *Recorder) OnBypass(cycle uint64, set int, req *btb.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	r.processDemand(req, false)
	optWay := r.optChoice(set, req)
	d := &Decision{
		Cycle: cycle, Index: req.Index, Set: set, Way: -1,
		VictimPC: req.PC, IncomingPC: req.PC,
		VictimTemp: req.Temperature, IncomingTemp: req.Temperature,
		OPTWay: optWay, Agree: optWay == -1,
	}
	r.bypasses++
	if d.Agree {
		r.agreeOPT++
	}
	r.perSet[set].Bypasses++
	r.branch(req.PC).Bypasses++
	r.pending[req.PC] = d
	r.pushRing(d)
}

// OnPrefetchFill records a prefetcher-initiated fill of set/way: not a
// demand access (the shadow models see only the demand stream), but the
// branch is resident again and its mirrored next-use becomes known.
func (r *Recorder) OnPrefetchFill(set, way int, req *btb.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	delete(r.pending, req.PC)
	r.nextUse[set*r.ways+way] = req.NextUse
}

// SampleHeat appends one heatmap row from the live BTB. Call it on the
// telemetry epoch grid; the walk is O(capacity).
func (r *Recorder) SampleHeat(instr uint64, b *btb.BTB) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	row := HeatRow{
		EndInstr: instr,
		Valid:    make([]uint16, r.sets),
		TempSum:  make([]uint16, r.sets),
	}
	for s := 0; s < r.sets && s < b.Sets(); s++ {
		valid, temp := b.SetCensus(s)
		row.Valid[s] = uint16(valid)
		row.TempSum[s] = uint16(temp)
	}
	if len(r.heat) < r.heatCap {
		r.heat = append(r.heat, row)
	} else {
		r.heat[r.heatHead] = row
		r.heatHead++
		if r.heatHead == r.heatCap {
			r.heatHead = 0
		}
	}
	r.heatTotal++
}

// OnWarmupReset restarts the measurement counters in lockstep with the
// simulator's end-of-warmup statistics reset. Learned state — the shadow
// model contents, the first-touch set, the mirrored next-use table, and
// pending decisions — stays trained, exactly like the BTB itself.
func (r *Recorder) OnWarmupReset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	r.fa.ResetStats()
	r.opt.ResetStats()
	r.classes = [numMissClasses]uint64{}
	r.accesses, r.hits, r.misses = 0, 0, 0
	r.evictions, r.bypasses, r.agreeOPT = 0, 0, 0
	r.charged, r.unattributed, r.windfall = 0, 0, 0
	r.perSet = make([]SetRegret, r.sets)
	r.perBranch = make(map[uint64]*BranchRegret, 1<<10)
	r.ring = r.ring[:0]
	r.ringHead, r.ringTotal = 0, 0
	r.heat = r.heat[:0]
	r.heatHead, r.heatTotal = 0, 0
}
