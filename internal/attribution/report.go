package attribution

import (
	"fmt"
	"io"
	"sort"

	"thermometer/internal/detmap"
)

// MissClasses is the report form of the classifier counters. Compulsory,
// Capacity, and Conflict always sum to Total (the taxonomy is exhaustive).
type MissClasses struct {
	Total      uint64 `json:"total"`
	Compulsory uint64 `json:"compulsory"`
	Capacity   uint64 `json:"capacity"`
	Conflict   uint64 `json:"conflict"`
}

// RegretSummary is the report form of the regret tracer counters.
type RegretSummary struct {
	// Decisions = Evictions + Bypasses recorded since the last reset;
	// AgreeOPT of them matched Belady's choice over the same residents.
	Decisions uint64  `json:"decisions"`
	Evictions uint64  `json:"evictions"`
	Bypasses  uint64  `json:"bypasses"`
	AgreeOPT  uint64  `json:"agree_opt"`
	AgreeRate float64 `json:"agree_rate"`
	// Charged counts policy misses the same-geometry Belady shadow would
	// have hit; Unattributed is the subset with no responsible decision on
	// record; Windfall counts policy hits the shadow would have missed.
	// Net = Charged − Windfall = policy misses − shadow OPT misses.
	Charged      uint64 `json:"charged"`
	Unattributed uint64 `json:"unattributed"`
	Windfall     uint64 `json:"windfall"`
	Net          int64  `json:"net"`
	// ShadowOPTMisses is the same-geometry Belady shadow's miss count over
	// the identical demand stream.
	ShadowOPTMisses uint64 `json:"shadow_opt_misses"`
}

// Report is a consistent snapshot of everything the Recorder knows; it is
// the JSON body served at /debug/attrib and the source for the text report.
type Report struct {
	Policy   string `json:"policy"`
	Sets     int    `json:"sets"`
	Ways     int    `json:"ways"`
	Accesses uint64 `json:"accesses"`
	Hits     uint64 `json:"hits"`

	Misses MissClasses   `json:"misses"`
	Regret RegretSummary `json:"regret"`

	// TopBranches are the static branches whose evictions/bypasses were
	// charged the most regret, descending (ties broken by ascending PC).
	TopBranches []BranchRegret `json:"top_branches"`
	// PerSet is indexed by BTB set.
	PerSet []SetRegret `json:"per_set"`
	// RecentDecisions is the decision ring oldest-first; DecisionsDropped
	// counts decisions that fell off the ring.
	RecentDecisions  []Decision `json:"recent_decisions"`
	DecisionsDropped uint64     `json:"decisions_dropped"`
	// Heat is the epoch heatmap oldest-first; HeatDropped counts rows that
	// fell off the ring.
	Heat        []HeatRow `json:"heat"`
	HeatDropped uint64    `json:"heat_dropped"`
}

// ringSlice returns the retained ring contents oldest-first. Caller holds
// r.mu.
func ringSlice[T any](ring []T, head int) []T {
	out := make([]T, 0, len(ring))
	out = append(out, ring[head:]...)
	out = append(out, ring[:head]...)
	return out
}

// Counts returns the headline counters (accesses, hits, classified misses,
// regret) without materialising rings or tables.
func (r *Recorder) Counts() (accesses, hits uint64, misses MissClasses, regret RegretSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.accesses, r.hits, r.missClasses(), r.regretSummary()
}

// missClasses builds the report form. Caller holds r.mu.
func (r *Recorder) missClasses() MissClasses {
	return MissClasses{
		Total:      r.misses,
		Compulsory: r.classes[MissCompulsory],
		Capacity:   r.classes[MissCapacity],
		Conflict:   r.classes[MissConflict],
	}
}

// regretSummary builds the report form. Caller holds r.mu.
func (r *Recorder) regretSummary() RegretSummary {
	s := RegretSummary{
		Decisions:    r.evictions + r.bypasses,
		Evictions:    r.evictions,
		Bypasses:     r.bypasses,
		AgreeOPT:     r.agreeOPT,
		Charged:      r.charged,
		Unattributed: r.unattributed,
		Windfall:     r.windfall,
		Net:          int64(r.charged) - int64(r.windfall),
	}
	if r.opt != nil {
		s.ShadowOPTMisses = r.opt.Stats().Misses
	}
	if s.Decisions > 0 {
		s.AgreeRate = float64(s.AgreeOPT) / float64(s.Decisions)
	}
	return s
}

// Report snapshots the recorder. topN bounds TopBranches (<= 0 means 20).
func (r *Recorder) Report(topN int) *Report {
	if topN <= 0 {
		topN = 20
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Policy:   r.policy,
		Sets:     r.sets,
		Ways:     r.ways,
		Accesses: r.accesses,
		Hits:     r.hits,
		Misses:   r.missClasses(),
		Regret:   r.regretSummary(),
		// Non-nil so the JSON body always carries arrays, even when a
		// client snapshots the recorder before Bind.
		TopBranches:     []BranchRegret{},
		PerSet:          []SetRegret{},
		RecentDecisions: []Decision{},
		Heat:            []HeatRow{},
	}
	if !r.bound() {
		return rep
	}

	branches := make([]BranchRegret, 0, len(r.perBranch))
	for _, pc := range detmap.SortedKeys(r.perBranch) {
		branches = append(branches, *r.perBranch[pc])
	}
	sort.SliceStable(branches, func(i, j int) bool {
		if branches[i].Charged != branches[j].Charged {
			return branches[i].Charged > branches[j].Charged
		}
		return branches[i].PC < branches[j].PC
	})
	if len(branches) > topN {
		branches = branches[:topN]
	}
	rep.TopBranches = branches

	rep.PerSet = append([]SetRegret(nil), r.perSet...)

	ring := ringSlice(r.ring, r.ringHead)
	rep.RecentDecisions = make([]Decision, len(ring))
	for i, d := range ring {
		rep.RecentDecisions[i] = *d
	}
	rep.DecisionsDropped = r.ringTotal - uint64(len(ring))

	rep.Heat = ringSlice(r.heat, r.heatHead)
	rep.HeatDropped = r.heatTotal - uint64(len(rep.Heat))
	return rep
}

// WriteText renders a human-readable attribution report (the btbsim -attrib
// output): the miss taxonomy, regret-vs-OPT accounting, and the topN most
// regretted branches.
func (r *Recorder) WriteText(w io.Writer, topN int) error {
	rep := r.Report(topN)
	pct := func(n uint64, d uint64) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("attribution report (policy=%s, %d sets x %d ways)\n", rep.Policy, rep.Sets, rep.Ways)
	p("  demand accesses   %12d\n", rep.Accesses)
	p("  hits              %12d (%.2f%%)\n", rep.Hits, pct(rep.Hits, rep.Accesses))
	p("  misses            %12d\n", rep.Misses.Total)
	p("    compulsory      %12d (%.2f%%)\n", rep.Misses.Compulsory, pct(rep.Misses.Compulsory, rep.Misses.Total))
	p("    capacity        %12d (%.2f%%)\n", rep.Misses.Capacity, pct(rep.Misses.Capacity, rep.Misses.Total))
	p("    conflict        %12d (%.2f%%)\n", rep.Misses.Conflict, pct(rep.Misses.Conflict, rep.Misses.Total))
	p("  replacement decisions %8d (%d evictions, %d bypasses)\n",
		rep.Regret.Decisions, rep.Regret.Evictions, rep.Regret.Bypasses)
	p("    agree with OPT  %12d (%.2f%%)\n", rep.Regret.AgreeOPT, 100*rep.Regret.AgreeRate)
	p("  regret vs same-geometry OPT\n")
	p("    charged misses  %12d (unattributed %d)\n", rep.Regret.Charged, rep.Regret.Unattributed)
	p("    windfall hits   %12d\n", rep.Regret.Windfall)
	p("    net (= misses - OPT misses) %4d (OPT misses %d)\n", rep.Regret.Net, rep.Regret.ShadowOPTMisses)
	if len(rep.TopBranches) > 0 {
		p("  top regretted branches (by charged misses)\n")
		p("    %-18s %10s %10s %10s\n", "pc", "charged", "evictions", "bypasses")
		for i := range rep.TopBranches {
			b := &rep.TopBranches[i]
			p("    %-#18x %10d %10d %10d\n", b.PC, b.Charged, b.Evictions, b.Bypasses)
		}
	}
	p("  decision ring: %d retained, %d dropped; heatmap: %d rows retained, %d dropped\n",
		len(rep.RecentDecisions), rep.DecisionsDropped, len(rep.Heat), rep.HeatDropped)
	return err
}

// WriteHeatCSV emits the retained heatmap rows as CSV: one row per epoch
// sample with end_instr, then per-set valid counts, then per-set temperature
// sums.
func (r *Recorder) WriteHeatCSV(w io.Writer) error {
	rep := r.Report(1)
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("end_instr")
	for s := 0; s < rep.Sets; s++ {
		p(",valid_%d", s)
	}
	for s := 0; s < rep.Sets; s++ {
		p(",temp_%d", s)
	}
	p("\n")
	for i := range rep.Heat {
		row := &rep.Heat[i]
		p("%d", row.EndInstr)
		for _, v := range row.Valid {
			p(",%d", v)
		}
		for _, v := range row.TempSum {
			p(",%d", v)
		}
		p("\n")
	}
	return err
}
