package attribution

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/trace"
)

// driveHandChecked replays a hand-checked 7-access stream against a 1x2
// recorder, mimicking the probe sequence an LRU BTB would emit. Every
// expectation below was computed by hand.
func driveHandChecked(t *testing.T, r *Recorder) {
	t.Helper()
	r.Bind("lru", 1, 2)
	req := func(pc uint64, idx, next int) *btb.Request {
		return &btb.Request{PC: pc, Target: pc + 4, NextUse: next, Index: idx}
	}
	victim := func(pc uint64, temp uint8) *btb.Entry {
		return &btb.Entry{Valid: true, PC: pc, Target: pc + 4, Temperature: temp}
	}
	const nn = trace.NoNextUse
	r.OnInsert(0, 0, req(0xa, 0, 2)) // A: compulsory miss, fills way 0
	r.OnInsert(0, 1, req(0xb, 1, 3)) // B: compulsory miss, fills way 1
	r.OnHit(0, 0, req(0xa, 2, 4))
	r.OnHit(0, 1, req(0xb, 3, nn))
	// C misses; LRU evicts A (way 0). Belady would evict B (never reused).
	r.OnEvict(40, 0, 0, req(0xc, 4, 6), victim(0xa, 2))
	r.OnInsert(0, 0, req(0xc, 4, 6))
	// A misses again — the shadow kept it, so the cycle-40 decision is
	// charged. LRU then evicts B; Belady would bypass A (never reused).
	r.OnEvict(50, 0, 1, req(0xa, 5, nn), victim(0xb, 0))
	r.OnInsert(0, 1, req(0xa, 5, nn))
	r.OnHit(0, 0, req(0xc, 6, nn))
}

func TestClassifierAndRegretHandChecked(t *testing.T) {
	r := New(Options{})
	driveHandChecked(t, r)
	accesses, hits, misses, regret := r.Counts()
	if accesses != 7 || hits != 3 {
		t.Fatalf("accesses=%d hits=%d, want 7/3", accesses, hits)
	}
	if misses.Total != 4 || misses.Compulsory != 3 || misses.Conflict != 1 || misses.Capacity != 0 {
		t.Fatalf("miss classes %+v, want total 4 = 3 compulsory + 1 conflict", misses)
	}
	if misses.Compulsory+misses.Capacity+misses.Conflict != misses.Total {
		t.Fatalf("taxonomy not exhaustive: %+v", misses)
	}
	if regret.Decisions != 2 || regret.Evictions != 2 || regret.Bypasses != 0 {
		t.Fatalf("decisions %+v, want 2 evictions", regret)
	}
	if regret.AgreeOPT != 0 {
		t.Fatalf("agreeOPT=%d, want 0 (LRU diverged from Belady both times)", regret.AgreeOPT)
	}
	if regret.Charged != 1 || regret.Unattributed != 0 || regret.Windfall != 0 {
		t.Fatalf("regret %+v, want exactly 1 attributed charge", regret)
	}
	if regret.ShadowOPTMisses != 3 || regret.Net != 1 {
		t.Fatalf("net=%d shadowMisses=%d, want 1 and 3 (4 policy misses - 3 OPT)", regret.Net, regret.ShadowOPTMisses)
	}

	rep := r.Report(10)
	if len(rep.RecentDecisions) != 2 || rep.DecisionsDropped != 0 {
		t.Fatalf("ring: %d retained %d dropped", len(rep.RecentDecisions), rep.DecisionsDropped)
	}
	d0 := rep.RecentDecisions[0]
	if d0.Cycle != 40 || d0.VictimPC != 0xa || d0.IncomingPC != 0xc ||
		d0.Way != 0 || d0.OPTWay != 1 || d0.Agree || d0.Regret != 1 {
		t.Fatalf("first decision %+v", d0)
	}
	d1 := rep.RecentDecisions[1]
	if d1.Cycle != 50 || d1.VictimPC != 0xb || d1.OPTWay != -1 || d1.Agree || d1.Regret != 0 {
		t.Fatalf("second decision %+v", d1)
	}
	if d0.VictimTemp != 2 {
		t.Fatalf("victim temperature bits not recorded: %+v", d0)
	}
	if len(rep.TopBranches) == 0 || rep.TopBranches[0].PC != 0xa || rep.TopBranches[0].Charged != 1 {
		t.Fatalf("top branches %+v, want 0xa charged once first", rep.TopBranches)
	}
	if len(rep.PerSet) != 1 || rep.PerSet[0].Evictions != 2 || rep.PerSet[0].Charged != 1 {
		t.Fatalf("per-set %+v", rep.PerSet)
	}
}

func TestBypassDecisionAndUnattributed(t *testing.T) {
	r := New(Options{})
	r.Bind("thermometer", 1, 1)
	const nn = trace.NoNextUse
	// A fills the single entry; B is denied (bypass). B's re-access misses
	// and — since the shadow inserted B over A — is charged to the bypass.
	r.OnInsert(0, 0, &btb.Request{PC: 0xa, NextUse: nn, Index: 0})
	r.OnBypass(10, 0, &btb.Request{PC: 0xb, NextUse: 2, Index: 1, Temperature: 3})
	r.OnBypass(20, 0, &btb.Request{PC: 0xb, NextUse: nn, Index: 2})

	_, _, misses, regret := r.Counts()
	if misses.Total != 3 || misses.Compulsory != 2 || misses.Conflict != 1 {
		t.Fatalf("miss classes %+v", misses)
	}
	if regret.Bypasses != 2 || regret.Evictions != 0 {
		t.Fatalf("regret %+v, want 2 bypass decisions", regret)
	}
	if regret.Charged != 1 || regret.Unattributed != 0 {
		t.Fatalf("regret %+v, want the repeat miss charged to the first bypass", regret)
	}
	rep := r.Report(5)
	if rep.RecentDecisions[0].Way != -1 || rep.RecentDecisions[0].VictimPC != 0xb ||
		rep.RecentDecisions[0].Regret != 1 || rep.RecentDecisions[0].VictimTemp != 3 {
		t.Fatalf("bypass decision %+v", rep.RecentDecisions[0])
	}
	// Belady would have inserted B (A is never reused): disagreement.
	if rep.RecentDecisions[0].Agree {
		t.Fatal("bypass of a reused branch over a dead resident should disagree with OPT")
	}
}

func TestDecisionRingBounded(t *testing.T) {
	r := New(Options{RingCap: 4})
	r.Bind("lru", 4, 1)
	for i := 0; i < 10; i++ {
		pc := uint64(4*i) + 1 // all map to distinct sets mod 4... keep simple: set 1
		r.OnEvict(uint64(i), 1, 0, &btb.Request{PC: pc, NextUse: trace.NoNextUse, Index: i},
			&btb.Entry{Valid: true, PC: pc + 100})
	}
	rep := r.Report(1)
	if len(rep.RecentDecisions) != 4 || rep.DecisionsDropped != 6 {
		t.Fatalf("ring retained %d dropped %d, want 4/6", len(rep.RecentDecisions), rep.DecisionsDropped)
	}
	// Oldest-first ordering: cycles 6..9 survive.
	for i, d := range rep.RecentDecisions {
		if d.Cycle != uint64(6+i) {
			t.Fatalf("ring order wrong at %d: cycle %d", i, d.Cycle)
		}
	}
}

func TestHeatmapSamplingBounded(t *testing.T) {
	r := New(Options{HeatCap: 3})
	r.Bind("lru", 8, 2)
	b := btb.NewWithSets(8, 2, policy.NewLRU())
	b.Access(&btb.Request{PC: 3, Target: 7, NextUse: trace.NoNextUse, Temperature: 2})
	b.Access(&btb.Request{PC: 11, Target: 15, NextUse: trace.NoNextUse, Temperature: 1})
	for i := 0; i < 5; i++ {
		r.SampleHeat(uint64(1000*(i+1)), b)
	}
	rep := r.Report(1)
	if len(rep.Heat) != 3 || rep.HeatDropped != 2 {
		t.Fatalf("heat retained %d dropped %d, want 3/2", len(rep.Heat), rep.HeatDropped)
	}
	last := rep.Heat[len(rep.Heat)-1]
	if last.EndInstr != 5000 {
		t.Fatalf("last heat row at %d, want 5000", last.EndInstr)
	}
	// PCs 3 and 11 both land in set 3 (mod 8): 2 valid entries, temp sum 3.
	if last.Valid[3] != 2 || last.TempSum[3] != 3 {
		t.Fatalf("set 3 census valid=%d temp=%d, want 2/3", last.Valid[3], last.TempSum[3])
	}
	for s := 0; s < 8; s++ {
		if s != 3 && last.Valid[s] != 0 {
			t.Fatalf("set %d unexpectedly occupied", s)
		}
	}
}

func TestWarmupResetKeepsTrainedState(t *testing.T) {
	r := New(Options{})
	driveHandChecked(t, r)
	r.OnWarmupReset()
	accesses, _, misses, regret := r.Counts()
	if accesses != 0 || misses.Total != 0 || regret.Decisions != 0 || regret.Charged != 0 {
		t.Fatalf("counters survived reset: acc=%d %+v %+v", accesses, misses, regret)
	}
	rep := r.Report(1)
	if len(rep.RecentDecisions) != 0 || len(rep.Heat) != 0 {
		t.Fatal("rings survived reset")
	}
	// The first-touch set must persist: a post-reset re-access of a warmed
	// branch is not compulsory.
	r.OnBypass(100, 0, &btb.Request{PC: 0xa, NextUse: trace.NoNextUse, Index: 7})
	_, _, misses, _ = r.Counts()
	if misses.Total != 1 || misses.Compulsory != 0 {
		t.Fatalf("post-reset miss classes %+v: warmed branch misclassified as compulsory", misses)
	}
}

func TestUnboundRecorderIsInert(t *testing.T) {
	r := New(Options{})
	// No Bind: every entry point must be a safe no-op.
	r.OnHit(0, 0, &btb.Request{PC: 1})
	r.OnInsert(0, 0, &btb.Request{PC: 1})
	r.OnEvict(1, 0, 0, &btb.Request{PC: 1}, &btb.Entry{})
	r.OnBypass(1, 0, &btb.Request{PC: 1})
	r.OnPrefetchFill(0, 0, &btb.Request{PC: 1})
	r.OnWarmupReset()
	r.SampleHeat(1, btb.NewWithSets(1, 1, policy.NewLRU()))
	if rep := r.Report(1); rep.Accesses != 0 {
		t.Fatalf("unbound recorder counted: %+v", rep)
	}
	// A client can snapshot the recorder before Bind (the HTTP server starts
	// ahead of the simulation): the JSON body must still carry arrays, not
	// nulls.
	body, err := json.Marshal(r.Report(1))
	if err != nil {
		t.Fatalf("marshal unbound report: %v", err)
	}
	for _, field := range []string{"top_branches", "per_set", "recent_decisions", "heat"} {
		if !strings.Contains(string(body), `"`+field+`":[]`) {
			t.Errorf("unbound report %s is not an empty array: %s", field, body)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := New(Options{})
	driveHandChecked(t, r)
	b := btb.NewWithSets(1, 2, policy.NewLRU())
	b.Access(&btb.Request{PC: 5, Target: 9, NextUse: trace.NoNextUse})
	r.SampleHeat(100, b)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		path, wantType string
		wantStatus     int
	}{
		{"/debug/attrib", "application/json", http.StatusOK},
		{"/debug/attrib?top=5", "application/json", http.StatusOK},
		{"/debug/attrib?top=bogus", "text/plain; charset=utf-8", http.StatusBadRequest},
		{"/debug/attrib/heatmap", "text/html; charset=utf-8", http.StatusOK},
		{"/debug/attrib/heatmap.csv", "text/csv", http.StatusOK},
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != tc.wantType {
			t.Errorf("GET %s: content type %q, want %q", tc.path, ct, tc.wantType)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/debug/attrib")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decode /debug/attrib: %v", err)
	}
	if rep.Policy != "lru" || rep.Misses.Total != 4 || rep.Regret.Charged != 1 {
		t.Fatalf("served report %+v", rep)
	}
	if len(rep.Heat) != 1 || rep.Heat[0].EndInstr != 100 {
		t.Fatalf("served heat %+v", rep.Heat)
	}
}

func TestWriteTextAndHeatCSV(t *testing.T) {
	r := New(Options{})
	driveHandChecked(t, r)
	b := btb.NewWithSets(1, 2, policy.NewLRU())
	r.SampleHeat(42, b)

	var sb strings.Builder
	if err := r.WriteText(&sb, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"policy=lru", "compulsory", "conflict", "agree with OPT",
		"charged misses", "0xa",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := r.WriteHeatCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("heat CSV: %d lines, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "end_instr,valid_0") {
		t.Fatalf("heat CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "42,") {
		t.Fatalf("heat CSV row %q", lines[1])
	}
}
