// Package prefetch implements the BTB prefetchers the paper compares
// against and composes with (Fig 4 and Fig 21):
//
//   - Confluence (Kaynak et al., MICRO 2015) virtualizes BTB content into
//     the instruction cache hierarchy: whenever an instruction line is
//     fetched or prefetched, the BTB entries for the branches in that line
//     are installed alongside it ("BTB bundles").
//   - Shotgun (Kumar et al., ASPLOS 2018) is BTB-directed: the targets of
//     taken unconditional branches drive spatial prefetching of the
//     target region's branch working set; the BTB itself is statically
//     partitioned by branch type (modelled by core.Config.ShotgunPartition).
//   - Twig (Khan et al., MICRO 2021) is profile-guided: a profiling pass
//     correlates each BTB miss with a trigger branch executed a configurable
//     distance earlier; at run time the trigger prefetches the entries that
//     historically missed after it.
//
// All three install entries through the replacement policy via the
// simulator's insert callback, so prefetch-induced pollution (the reason
// "Confluence-LRU" can lose to OPT in Fig 4) is captured.
package prefetch

import (
	"thermometer/internal/core"
	"thermometer/internal/trace"
)

// Confluence bundles BTB entries with instruction lines. Like the real
// design — which *records* bundles as branches execute and virtualizes them
// into the cache hierarchy — it can only prefetch branches it has already
// observed; new and non-recurring streams (almost half of all BTB misses in
// data center applications, per the paper's §2.2) remain unprefetchable.
type Confluence struct {
	meta *core.TraceMeta
	seen map[uint64]bool
	// degree limits entries installed per line fill.
	degree int
}

// NewConfluence builds a Confluence prefetcher over the trace's static
// branch map (used only to locate branches within lines; prefetching is
// restricted to demand-observed branches).
func NewConfluence(meta *core.TraceMeta) *Confluence {
	return &Confluence{meta: meta, seen: make(map[uint64]bool, 1<<12), degree: 8}
}

// Name implements core.Prefetcher.
func (p *Confluence) Name() string { return "Confluence" }

// OnLineFill implements core.Prefetcher.
func (p *Confluence) OnLineFill(blockAddr uint64, insert core.InsertFunc) {
	installed := 0
	for _, s := range p.meta.ByBlock[blockAddr] {
		if !p.seen[s.PC] {
			continue
		}
		insert(s.PC, s.Target, s.Type)
		installed++
		if installed >= p.degree {
			return
		}
	}
}

// OnBTBAccess implements core.Prefetcher: record the branch into its line's
// bundle.
func (p *Confluence) OnBTBAccess(pc, _ uint64, _ bool, _ core.InsertFunc) {
	p.seen[pc] = true
}

var _ core.Prefetcher = (*Confluence)(nil)

// Shotgun prefetches the branch working set of taken-branch target regions.
// Like Confluence it is a history-based design: only branches observed on
// earlier demand accesses can be re-installed.
type Shotgun struct {
	meta *core.TraceMeta
	seen map[uint64]bool
	// regionBlocks is the spatial footprint (in 64B blocks) fetched around
	// a target.
	regionBlocks int
	degree       int
}

// NewShotgun builds a Shotgun prefetcher over the trace's static branch map.
func NewShotgun(meta *core.TraceMeta) *Shotgun {
	return &Shotgun{meta: meta, seen: make(map[uint64]bool, 1<<12), regionBlocks: 4, degree: 12}
}

// Name implements core.Prefetcher.
func (p *Shotgun) Name() string { return "Shotgun" }

// OnLineFill implements core.Prefetcher.
func (p *Shotgun) OnLineFill(uint64, core.InsertFunc) {}

// OnBTBAccess implements core.Prefetcher: on any taken-branch BTB access,
// prefetch the previously-seen branch entries spatially around the target
// (Shotgun's U-BTB-driven region prefetch).
func (p *Shotgun) OnBTBAccess(pc, target uint64, _ bool, insert core.InsertFunc) {
	p.seen[pc] = true
	blk := target >> 6
	installed := 0
	for b := blk; b < blk+uint64(p.regionBlocks); b++ {
		for _, s := range p.meta.ByBlock[b] {
			if !p.seen[s.PC] {
				continue
			}
			insert(s.PC, s.Target, s.Type)
			installed++
			if installed >= p.degree {
				return
			}
		}
	}
}

var _ core.Prefetcher = (*Shotgun)(nil)

// Twig is the profile-guided BTB prefetcher: a training pass replays the
// profiling trace against the target BTB geometry, attributing every BTB
// miss to a trigger branch executed `distance` taken-branches earlier; the
// (trigger → missing branches) correlation table drives run-time prefetch.
type Twig struct {
	table map[uint64][]core.BranchSite
	// distance is the trigger look-ahead in taken branches.
	distance int
	maxPer   int
}

// TwigConfig tunes training.
type TwigConfig struct {
	// Distance is the trigger lead, in taken branches (default 48).
	Distance int
	// MaxPerTrigger caps the correlation fan-out (default 6).
	MaxPerTrigger int
	// Entries/Ways give the BTB geometry used during training.
	Entries, Ways int
}

// TrainTwig builds the Twig correlation table from a profiling trace
// (typically the training input, as with Thermometer's own profile).
func TrainTwig(profileTrace *trace.Trace, cfg TwigConfig) *Twig {
	if cfg.Distance <= 0 {
		cfg.Distance = 48
	}
	if cfg.MaxPerTrigger <= 0 {
		cfg.MaxPerTrigger = 6
	}
	if cfg.Entries <= 0 {
		cfg.Entries = 8192
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 4
	}
	accesses := profileTrace.AccessStream()
	t := &Twig{
		table:    make(map[uint64][]core.BranchSite, 1<<12),
		distance: cfg.Distance,
		maxPer:   cfg.MaxPerTrigger,
	}
	// Replay an LRU BTB of the target geometry to find misses.
	sets := cfg.Entries / cfg.Ways
	type entry struct {
		pc    uint64
		stamp uint64
	}
	table := make([][]entry, sets)
	var clock uint64
	for i := range accesses {
		a := &accesses[i]
		set := table[a.PC%uint64(sets)]
		clock++
		hit := false
		for w := range set {
			if set[w].pc == a.PC {
				set[w].stamp = clock
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		// Attribute the miss to the trigger `distance` accesses earlier.
		if j := i - cfg.Distance; j >= 0 {
			trig := accesses[j].PC
			lst := t.table[trig]
			if len(lst) < cfg.MaxPerTrigger {
				dup := false
				for _, s := range lst {
					if s.PC == a.PC {
						dup = true
						break
					}
				}
				if !dup {
					t.table[trig] = append(lst, core.BranchSite{PC: a.PC, Target: a.Target, Type: a.Type})
				}
			}
		}
		// LRU fill.
		if len(set) < cfg.Ways {
			table[a.PC%uint64(sets)] = append(set, entry{pc: a.PC, stamp: clock})
			continue
		}
		victim := 0
		for w := 1; w < len(set); w++ {
			if set[w].stamp < set[victim].stamp {
				victim = w
			}
		}
		set[victim] = entry{pc: a.PC, stamp: clock}
	}
	return t
}

// Name implements core.Prefetcher.
func (p *Twig) Name() string { return "Twig" }

// TableSize returns the number of trigger PCs learned.
func (p *Twig) TableSize() int { return len(p.table) }

// OnLineFill implements core.Prefetcher.
func (p *Twig) OnLineFill(uint64, core.InsertFunc) {}

// OnBTBAccess implements core.Prefetcher: fire the trigger's correlated
// prefetches.
func (p *Twig) OnBTBAccess(pc, _ uint64, _ bool, insert core.InsertFunc) {
	for _, s := range p.table[pc] {
		insert(s.PC, s.Target, s.Type)
	}
}

var _ core.Prefetcher = (*Twig)(nil)
