package prefetch

import (
	"testing"

	"thermometer/internal/core"
	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

func appTrace(t *testing.T, name string, frac int) *trace.Trace {
	t.Helper()
	spec, ok := workload.App(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	return spec.ScaleLength(1, frac).Generate(0)
}

// recorder captures insert calls.
type recorder struct {
	inserted []uint64
}

func (r *recorder) insert(pc, target uint64, typ trace.BranchType) {
	r.inserted = append(r.inserted, pc)
}

func TestConfluenceInsertsLineBundle(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 0x100, Target: 0x200, Taken: true, Type: trace.UncondDirect},
		{PC: 0x108, Target: 0x300, Taken: true, Type: trace.UncondDirect},
		{PC: 0x400, Target: 0x500, Taken: true, Type: trace.UncondDirect},
	}}
	meta := core.BuildMeta(tr.AccessStream())
	p := NewConfluence(meta)
	var rec recorder
	// Confluence is history-based: unseen branches are never bundled.
	p.OnLineFill(0x100>>6, rec.insert)
	if len(rec.inserted) != 0 {
		t.Fatalf("unseen branches bundled: %v", rec.inserted)
	}
	// Once observed on demand accesses, they are.
	p.OnBTBAccess(0x100, 0x200, false, rec.insert)
	p.OnBTBAccess(0x108, 0x300, false, rec.insert)
	if len(rec.inserted) != 0 {
		t.Fatal("Confluence inserted on BTB access")
	}
	p.OnLineFill(0x100>>6, rec.insert)
	if len(rec.inserted) != 2 {
		t.Fatalf("bundle inserts = %v, want the 2 seen branches in block 0x4", rec.inserted)
	}
	rec.inserted = nil
	p.OnLineFill(0x999999>>6, rec.insert)
	if len(rec.inserted) != 0 {
		t.Fatal("unknown block inserted entries")
	}
}

func TestShotgunPrefetchesTargetRegion(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 0x100, Target: 0x1000, Taken: true, Type: trace.UncondDirect},
		{PC: 0x1004, Target: 0x1100, Taken: true, Type: trace.UncondDirect},
		{PC: 0x1040, Target: 0x1200, Taken: true, Type: trace.UncondDirect},
	}}
	meta := core.BuildMeta(tr.AccessStream())
	p := NewShotgun(meta)
	var rec recorder
	// Teach Shotgun the region's branches via demand accesses first.
	p.OnBTBAccess(0x1004, 0x1100, true, rec.insert)
	p.OnBTBAccess(0x1040, 0x1200, true, rec.insert)
	rec.inserted = nil
	p.OnBTBAccess(0x100, 0x1000, true, rec.insert)
	// Region around 0x1000 (4 blocks) holds seen branches 0x1004, 0x1040.
	if len(rec.inserted) != 2 {
		t.Fatalf("region inserts = %v", rec.inserted)
	}
	rec.inserted = nil
	p.OnLineFill(0x40, rec.insert) // no-op
	if len(rec.inserted) != 0 {
		t.Fatal("Shotgun acted on line fill")
	}
}

func TestTwigLearnsTriggers(t *testing.T) {
	spec, _ := workload.App("kafka")
	tr := spec.ScaleLength(1, 16).Generate(0)
	tw := TrainTwig(tr, TwigConfig{})
	if tw.TableSize() == 0 {
		t.Fatal("Twig learned nothing")
	}
	if tw.Name() != "Twig" {
		t.Fatal("name")
	}
}

func TestTwigReducesMissesInTiming(t *testing.T) {
	tr := appTrace(t, "kafka", 8)
	base := core.Run(tr, core.DefaultConfig())
	tw := TrainTwig(tr, TwigConfig{})
	cfg := core.DefaultConfig()
	cfg.Prefetcher = tw
	r := core.Run(tr, cfg)
	if r.PrefetchFills == 0 {
		t.Fatal("Twig issued no prefetches")
	}
	if r.BTB.Misses >= base.BTB.Misses {
		t.Fatalf("Twig misses %d >= baseline %d", r.BTB.Misses, base.BTB.Misses)
	}
}

func TestConfluenceInTiming(t *testing.T) {
	tr := appTrace(t, "kafka", 8)
	meta := core.BuildMeta(tr.AccessStream())
	cfg := core.DefaultConfig()
	cfg.Prefetcher = NewConfluence(meta)
	r := core.Run(tr, cfg)
	if r.PrefetchFills == 0 {
		t.Fatal("Confluence issued no prefetches")
	}
	base := core.Run(tr, core.DefaultConfig())
	// Confluence should reduce demand misses (its effect on IPC may be
	// small or even negative due to pollution, as the paper reports).
	if r.BTB.Misses >= base.BTB.Misses {
		t.Fatalf("Confluence misses %d >= baseline %d", r.BTB.Misses, base.BTB.Misses)
	}
}

func TestShotgunInTiming(t *testing.T) {
	tr := appTrace(t, "kafka", 8)
	meta := core.BuildMeta(tr.AccessStream())
	cfg := core.DefaultConfig()
	cfg.Prefetcher = NewShotgun(meta)
	cfg.ShotgunPartition = true
	r := core.Run(tr, cfg)
	if r.PrefetchFills == 0 {
		t.Fatal("Shotgun issued no prefetches")
	}
}

func TestTwigConfigDefaults(t *testing.T) {
	tr := appTrace(t, "python", 32)
	tw := TrainTwig(tr, TwigConfig{Distance: 0, MaxPerTrigger: 0, Entries: 0, Ways: 0})
	if tw.distance != 48 || tw.maxPer != 6 {
		t.Fatalf("defaults not applied: %+v", tw)
	}
}
