package policy

import "thermometer/internal/btb"

// Thermometer implements Algorithm 1 of the paper: replacement guided by
// the profile-injected temperature hint (holistic behaviour) with LRU tie
// breaking (transient behaviour).
//
// Victim selection considers the incoming branch x0 together with the
// resident entries. It finds the coldest temperature t among all of them;
// if x0 alone has temperature t, the insertion is bypassed; otherwise the
// least recently used resident among the coldest-temperature candidates is
// evicted.
//
// Temperatures arrive on each Request (the simulator reads them from the
// profile.HintTable, standing in for the bits a compiler would encode into
// the branch instruction) and are stored per entry by the BTB, matching the
// 2-bits-per-entry hardware cost computed in §3.4.
type Thermometer struct {
	lru lruState

	// noBypass disables Algorithm 1's bypass (line 5-6) for the ablation
	// study of §2.5: a uniquely-coldest incoming branch is then inserted
	// over the coldest (LRU-tie-broken) resident.
	noBypass bool

	// CoverageStats tracks how often the temperature hint actually
	// discriminated between candidates (Fig 15). A decision is "covered"
	// unless every candidate (residents and the incoming branch) shares
	// the same temperature, in which case Thermometer degenerates to LRU.
	Decisions uint64
	Covered   uint64
	Bypasses  uint64
}

// NewThermometer returns the Thermometer replacement policy.
func NewThermometer() *Thermometer { return &Thermometer{} }

// NewThermometerNoBypass returns the §2.5 ablation: temperature-guided
// eviction without the bypass path.
func NewThermometerNoBypass() *Thermometer { return &Thermometer{noBypass: true} }

// Name implements btb.Policy.
func (p *Thermometer) Name() string {
	if p.noBypass {
		return "Thermometer-nobypass"
	}
	return "Thermometer"
}

// Reset implements btb.Policy.
func (p *Thermometer) Reset(sets, ways int) {
	p.lru.reset(sets, ways)
	p.Decisions, p.Covered, p.Bypasses = 0, 0, 0
}

// OnHit implements btb.Policy.
func (p *Thermometer) OnHit(set, way int, _ *btb.Request) { p.lru.touch(set, way) }

// OnInsert implements btb.Policy.
func (p *Thermometer) OnInsert(set, way int, _ *btb.Request) { p.lru.touch(set, way) }

// Victim implements btb.Policy (Algorithm 1).
func (p *Thermometer) Victim(set int, entries []btb.Entry, req *btb.Request) int {
	p.Decisions++

	coldest := req.Temperature
	allSame := true
	for i := range entries {
		t := entries[i].Temperature
		if t != req.Temperature {
			allSame = false
		}
		if t < coldest {
			coldest = t
		}
	}
	if !allSame {
		p.Covered++
	}

	var candidates []int
	for i := range entries {
		if entries[i].Temperature == coldest {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		if p.noBypass || req.Prefetch {
			// Insert anyway, evicting the coldest (LRU-tie-broken)
			// resident: either the no-bypass ablation is active, or this
			// is a prefetcher-initiated fill whose transient evidence of
			// imminent reuse outweighs the holistic cold hint.
			coldestResident := entries[0].Temperature
			for i := range entries {
				if entries[i].Temperature < coldestResident {
					coldestResident = entries[i].Temperature
				}
			}
			for i := range entries {
				if entries[i].Temperature == coldestResident {
					candidates = append(candidates, i)
				}
			}
			return p.lru.lruAmong(set, candidates)
		}
		// The incoming branch is uniquely coldest: bypass (Alg. 1 line 6).
		p.Bypasses++
		return btb.Bypass
	}
	return p.lru.lruAmong(set, candidates)
}

// Coverage returns the fraction of replacement decisions where the
// temperature hint discriminated between candidates (Fig 15's metric).
func (p *Thermometer) Coverage() float64 {
	if p.Decisions == 0 {
		return 0
	}
	return float64(p.Covered) / float64(p.Decisions)
}

// TelemetryCounters implements Instrumented.
func (p *Thermometer) TelemetryCounters() map[string]uint64 {
	return map[string]uint64{
		"thermometer_decisions": p.Decisions,
		"thermometer_covered":   p.Covered,
		"thermometer_bypasses":  p.Bypasses,
	}
}

var _ btb.Policy = (*Thermometer)(nil)
var _ Instrumented = (*Thermometer)(nil)

// HolisticOnly is the Fig 16 ablation that uses *only* the holistic
// temperature hint: coldest-temperature eviction with insertion-order
// (FIFO) tie breaking, deliberately ignoring recency.
type HolisticOnly struct {
	fifo fifoState
}

// NewHolisticOnly returns the holistic-only ablation policy.
func NewHolisticOnly() *HolisticOnly { return &HolisticOnly{} }

// Name implements btb.Policy.
func (p *HolisticOnly) Name() string { return "Holistic" }

// Reset implements btb.Policy.
func (p *HolisticOnly) Reset(sets, ways int) { p.fifo.reset(sets, ways) }

// OnHit implements btb.Policy: recency is deliberately not tracked.
func (p *HolisticOnly) OnHit(int, int, *btb.Request) {}

// OnInsert implements btb.Policy.
func (p *HolisticOnly) OnInsert(set, way int, _ *btb.Request) { p.fifo.inserted(set, way) }

// Victim implements btb.Policy.
func (p *HolisticOnly) Victim(set int, entries []btb.Entry, req *btb.Request) int {
	coldest := req.Temperature
	for i := range entries {
		if entries[i].Temperature < coldest {
			coldest = entries[i].Temperature
		}
	}
	var candidates []int
	for i := range entries {
		if entries[i].Temperature == coldest {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return btb.Bypass
	}
	return p.fifo.oldestAmong(set, candidates)
}

var _ btb.Policy = (*HolisticOnly)(nil)

// TransientOnly is the Fig 16 ablation that uses only transient reuse
// behaviour — it is exactly LRU, aliased for figure labelling.
type TransientOnly struct{ LRU }

// NewTransientOnly returns the transient-only ablation policy.
func NewTransientOnly() *TransientOnly { return &TransientOnly{} }

// Name implements btb.Policy.
func (p *TransientOnly) Name() string { return "Transient" }
