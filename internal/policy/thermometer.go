package policy

import "thermometer/internal/btb"

// Thermometer implements Algorithm 1 of the paper: replacement guided by
// the profile-injected temperature hint (holistic behaviour) with LRU tie
// breaking (transient behaviour).
//
// Victim selection considers the incoming branch x0 together with the
// resident entries. It finds the coldest temperature t among all of them;
// if x0 alone has temperature t, the insertion is bypassed; otherwise the
// least recently used resident among the coldest-temperature candidates is
// evicted.
//
// Temperatures arrive on each Request (the simulator reads them from the
// profile.HintTable, standing in for the bits a compiler would encode into
// the branch instruction) and are stored per entry by the BTB, matching the
// 2-bits-per-entry hardware cost computed in §3.4.
//
// Algorithm 1 itself lives in btb.ThermometerCore (shared with the BTB's
// devirtualized fast path); this type adapts it to btb.Policy. The core's
// Decisions/Covered/Bypasses counters and NoBypass flag are promoted.
type Thermometer struct {
	btb.ThermometerCore
}

// NewThermometer returns the Thermometer replacement policy.
func NewThermometer() *Thermometer { return &Thermometer{} }

// NewThermometerNoBypass returns the §2.5 ablation: temperature-guided
// eviction without the bypass path.
func NewThermometerNoBypass() *Thermometer {
	p := &Thermometer{}
	p.NoBypass = true
	return p
}

// Name implements btb.Policy.
func (p *Thermometer) Name() string {
	if p.NoBypass {
		return "Thermometer-nobypass"
	}
	return "Thermometer"
}

// OnHit implements btb.Policy.
func (p *Thermometer) OnHit(set, way int, _ *btb.Request) { p.Touch(set, way) }

// OnInsert implements btb.Policy.
func (p *Thermometer) OnInsert(set, way int, _ *btb.Request) { p.Touch(set, way) }

// Victim implements btb.Policy (Algorithm 1).
func (p *Thermometer) Victim(set int, entries []btb.Entry, req *btb.Request) int {
	return p.SelectVictimEntries(set, entries, req)
}

// FastThermometer implements btb.ThermometerFastPath, enabling
// devirtualized dispatch.
func (p *Thermometer) FastThermometer() *btb.ThermometerCore { return &p.ThermometerCore }

// Coverage returns the fraction of replacement decisions where the
// temperature hint discriminated between candidates (Fig 15's metric).
func (p *Thermometer) Coverage() float64 {
	if p.Decisions == 0 {
		return 0
	}
	return float64(p.Covered) / float64(p.Decisions)
}

// TelemetryCounters implements Instrumented.
func (p *Thermometer) TelemetryCounters() map[string]uint64 {
	return map[string]uint64{
		"thermometer_decisions": p.Decisions,
		"thermometer_covered":   p.Covered,
		"thermometer_bypasses":  p.Bypasses,
	}
}

var _ btb.Policy = (*Thermometer)(nil)
var _ Instrumented = (*Thermometer)(nil)

// HolisticOnly is the Fig 16 ablation that uses *only* the holistic
// temperature hint: coldest-temperature eviction with insertion-order
// (FIFO) tie breaking, deliberately ignoring recency.
type HolisticOnly struct {
	fifo fifoState
	cand []int // scratch: candidate ways, reused across decisions
}

// NewHolisticOnly returns the holistic-only ablation policy.
func NewHolisticOnly() *HolisticOnly { return &HolisticOnly{} }

// Name implements btb.Policy.
func (p *HolisticOnly) Name() string { return "Holistic" }

// Reset implements btb.Policy.
func (p *HolisticOnly) Reset(sets, ways int) {
	p.fifo.reset(sets, ways)
	p.cand = make([]int, 0, ways)
}

// OnHit implements btb.Policy: recency is deliberately not tracked.
func (p *HolisticOnly) OnHit(int, int, *btb.Request) {}

// OnInsert implements btb.Policy.
func (p *HolisticOnly) OnInsert(set, way int, _ *btb.Request) { p.fifo.inserted(set, way) }

// Victim implements btb.Policy.
func (p *HolisticOnly) Victim(set int, entries []btb.Entry, req *btb.Request) int {
	coldest := req.Temperature
	for i := range entries {
		if entries[i].Temperature < coldest {
			coldest = entries[i].Temperature
		}
	}
	p.cand = p.cand[:0]
	for i := range entries {
		if entries[i].Temperature == coldest {
			p.cand = append(p.cand, i)
		}
	}
	if len(p.cand) == 0 {
		return btb.Bypass
	}
	return p.fifo.oldestAmong(set, p.cand)
}

var _ btb.Policy = (*HolisticOnly)(nil)

// TransientOnly is the Fig 16 ablation that uses only transient reuse
// behaviour — it is exactly LRU, aliased for figure labelling.
type TransientOnly struct{ LRU }

// NewTransientOnly returns the transient-only ablation policy.
func NewTransientOnly() *TransientOnly { return &TransientOnly{} }

// Name implements btb.Policy.
func (p *TransientOnly) Name() string { return "Transient" }
