// Package policy implements BTB replacement policies: the LRU baseline, the
// state-of-the-art hardware policies the paper compares against (SRRIP,
// GHRP, Hawkeye), the offline-optimal Belady policy, and Thermometer itself
// (Algorithm 1), plus the transient-only/holistic-only ablations of Fig 16.
//
// Each policy satisfies btb.Policy and owns all of its per-entry metadata;
// the BTB stores only architectural state (tags, targets, hint bits). The
// hot policies (LRU, SRRIP, Thermometer, OPT) embed a concrete core from
// package btb and expose it through the matching Fast* accessor, which lets
// the BTB devirtualize their per-access dispatch; the interface methods
// below delegate to the same core, so both paths share one state.
package policy

import "thermometer/internal/btb"

// Instrumented is implemented by policies that expose internal decision
// counters to the telemetry subsystem. Keys are fully qualified snake_case
// names (e.g. "thermometer_bypasses"); values are counts since the last
// Reset. The simulator copies them into the run's metrics registry at end
// of run, so implementations may build the map on demand.
type Instrumented interface {
	TelemetryCounters() map[string]uint64
}

// fifoState tracks insertion order, used by the holistic-only ablation to
// break temperature ties without any recency information.
type fifoState struct {
	seq   []uint64
	ways  int
	clock uint64
}

func (f *fifoState) reset(sets, ways int) {
	f.seq = make([]uint64, sets*ways)
	f.ways = ways
	f.clock = 0
}

func (f *fifoState) inserted(set, way int) {
	f.clock++
	f.seq[set*f.ways+way] = f.clock
}

func (f *fifoState) oldestAmong(set int, candidates []int) int {
	base := set * f.ways
	best := candidates[0]
	for _, w := range candidates[1:] {
		if f.seq[base+w] < f.seq[base+best] {
			best = w
		}
	}
	return best
}

// LRU is the baseline replacement policy: evict the least recently used way.
type LRU struct {
	lru btb.LRUCore
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements btb.Policy.
func (p *LRU) Name() string { return "LRU" }

// Reset implements btb.Policy.
func (p *LRU) Reset(sets, ways int) { p.lru.Reset(sets, ways) }

// OnHit implements btb.Policy.
func (p *LRU) OnHit(set, way int, _ *btb.Request) { p.lru.Touch(set, way) }

// OnInsert implements btb.Policy.
func (p *LRU) OnInsert(set, way int, _ *btb.Request) { p.lru.Touch(set, way) }

// Victim implements btb.Policy.
func (p *LRU) Victim(set int, _ []btb.Entry, _ *btb.Request) int {
	return p.lru.LRUWay(set)
}

// FastLRU implements btb.LRUFastPath, enabling devirtualized dispatch.
func (p *LRU) FastLRU() *btb.LRUCore { return &p.lru }

// Random evicts a pseudo-randomly chosen way. It exists as a sanity
// baseline for tests (every reasonable policy should beat it).
type Random struct {
	state uint64
	ways  int
}

// NewRandom returns a Random policy with a fixed internal seed so runs are
// reproducible.
func NewRandom() *Random { return &Random{} }

// Name implements btb.Policy.
func (p *Random) Name() string { return "Random" }

// Reset implements btb.Policy.
func (p *Random) Reset(sets, ways int) { p.state = 0x9e3779b97f4a7c15; p.ways = ways }

// OnHit implements btb.Policy.
func (p *Random) OnHit(int, int, *btb.Request) {}

// OnInsert implements btb.Policy.
func (p *Random) OnInsert(int, int, *btb.Request) {}

// Victim implements btb.Policy.
func (p *Random) Victim(int, []btb.Entry, *btb.Request) int {
	// xorshift64
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(p.ways))
}
