// Package policy implements BTB replacement policies: the LRU baseline, the
// state-of-the-art hardware policies the paper compares against (SRRIP,
// GHRP, Hawkeye), the offline-optimal Belady policy, and Thermometer itself
// (Algorithm 1), plus the transient-only/holistic-only ablations of Fig 16.
//
// Each policy satisfies btb.Policy and owns all of its per-entry metadata;
// the BTB stores only architectural state (tags, targets, hint bits).
package policy

import "thermometer/internal/btb"

// Instrumented is implemented by policies that expose internal decision
// counters to the telemetry subsystem. Keys are fully qualified snake_case
// names (e.g. "thermometer_bypasses"); values are counts since the last
// Reset. The simulator copies them into the run's metrics registry at end
// of run, so implementations may build the map on demand.
type Instrumented interface {
	TelemetryCounters() map[string]uint64
}

// lruState is a shared building block: per-way last-touch timestamps.
type lruState struct {
	stamp []uint64
	ways  int
	clock uint64
}

func (l *lruState) reset(sets, ways int) {
	l.stamp = make([]uint64, sets*ways)
	l.ways = ways
	l.clock = 0
}

func (l *lruState) touch(set, way int) {
	l.clock++
	l.stamp[set*l.ways+way] = l.clock
}

// lruWay returns the least recently touched way of set.
func (l *lruState) lruWay(set int) int {
	base := set * l.ways
	best, bestStamp := 0, l.stamp[base]
	for w := 1; w < l.ways; w++ {
		if s := l.stamp[base+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// lruAmong returns the least recently touched way among candidates.
func (l *lruState) lruAmong(set int, candidates []int) int {
	base := set * l.ways
	best := candidates[0]
	for _, w := range candidates[1:] {
		if l.stamp[base+w] < l.stamp[base+best] {
			best = w
		}
	}
	return best
}

// fifoState tracks insertion order, used by the holistic-only ablation to
// break temperature ties without any recency information.
type fifoState struct {
	seq   []uint64
	ways  int
	clock uint64
}

func (f *fifoState) reset(sets, ways int) {
	f.seq = make([]uint64, sets*ways)
	f.ways = ways
	f.clock = 0
}

func (f *fifoState) inserted(set, way int) {
	f.clock++
	f.seq[set*f.ways+way] = f.clock
}

func (f *fifoState) oldestAmong(set int, candidates []int) int {
	base := set * f.ways
	best := candidates[0]
	for _, w := range candidates[1:] {
		if f.seq[base+w] < f.seq[base+best] {
			best = w
		}
	}
	return best
}

// LRU is the baseline replacement policy: evict the least recently used way.
type LRU struct {
	lru lruState
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements btb.Policy.
func (p *LRU) Name() string { return "LRU" }

// Reset implements btb.Policy.
func (p *LRU) Reset(sets, ways int) { p.lru.reset(sets, ways) }

// OnHit implements btb.Policy.
func (p *LRU) OnHit(set, way int, _ *btb.Request) { p.lru.touch(set, way) }

// OnInsert implements btb.Policy.
func (p *LRU) OnInsert(set, way int, _ *btb.Request) { p.lru.touch(set, way) }

// Victim implements btb.Policy.
func (p *LRU) Victim(set int, _ []btb.Entry, _ *btb.Request) int {
	return p.lru.lruWay(set)
}

// Random evicts a pseudo-randomly chosen way. It exists as a sanity
// baseline for tests (every reasonable policy should beat it).
type Random struct {
	state uint64
	ways  int
}

// NewRandom returns a Random policy with a fixed internal seed so runs are
// reproducible.
func NewRandom() *Random { return &Random{} }

// Name implements btb.Policy.
func (p *Random) Name() string { return "Random" }

// Reset implements btb.Policy.
func (p *Random) Reset(sets, ways int) { p.state = 0x9e3779b97f4a7c15; p.ways = ways }

// OnHit implements btb.Policy.
func (p *Random) OnHit(int, int, *btb.Request) {}

// OnInsert implements btb.Policy.
func (p *Random) OnInsert(int, int, *btb.Request) {}

// Victim implements btb.Policy.
func (p *Random) Victim(int, []btb.Entry, *btb.Request) int {
	// xorshift64
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(p.ways))
}
