package policy

import (
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

// TestThermometerUniformHintsEqualsLRU: when every branch carries the same
// temperature, Algorithm 1 degenerates exactly to LRU (the fallback path),
// access for access.
func TestThermometerUniformHintsEqualsLRU(t *testing.T) {
	r := xrand.New(404)
	for iter := 0; iter < 8; iter++ {
		acc := randomStream(r, 50+r.Intn(100), 3000)
		for _, temp := range []uint8{0, 1, 2} {
			th := btb.NewWithSets(4, 4, NewThermometer())
			lr := btb.NewWithSets(4, 4, NewLRU())
			for i := range acc {
				a := &acc[i]
				rt := th.Access(&btb.Request{PC: a.PC, Target: a.Target, Temperature: temp, NextUse: trace.NoNextUse})
				rl := lr.Access(&btb.Request{PC: a.PC, Target: a.Target, NextUse: trace.NoNextUse})
				if rt.Hit != rl.Hit {
					t.Fatalf("iter %d temp %d: diverged at access %d", iter, temp, i)
				}
			}
			if th.Stats() != lr.Stats() {
				t.Fatalf("iter %d temp %d: stats differ: %+v vs %+v", iter, temp, th.Stats(), lr.Stats())
			}
		}
	}
}

// TestThermometerNeverEvictsHotterForColder: a resident strictly hotter
// than every other candidate must survive any single replacement decision.
func TestThermometerNeverEvictsHotterForColder(t *testing.T) {
	r := xrand.New(77)
	for iter := 0; iter < 2000; iter++ {
		p := NewThermometer()
		b := btb.NewWithSets(1, 4, p)
		// Fill with random temperatures, one way strictly hottest.
		hotWay := r.Intn(4)
		var hotPC uint64
		for w := 0; w < 4; w++ {
			temp := uint8(r.Intn(2)) // 0 or 1
			pc := uint64(100 + w)
			if w == hotWay {
				temp = 3
				hotPC = pc
			}
			b.Access(&btb.Request{PC: pc, Target: pc + 4, Temperature: temp, NextUse: trace.NoNextUse})
		}
		// Incoming colder than the hottest resident.
		b.Access(&btb.Request{PC: 999, Target: 1003, Temperature: uint8(r.Intn(3)), NextUse: trace.NoNextUse})
		if _, hit := b.Lookup(hotPC); !hit {
			t.Fatalf("iter %d: hottest resident evicted", iter)
		}
	}
}

// TestBypassOnlyWhenUniquelyColdest: Algorithm 1 line 5-6.
func TestBypassOnlyWhenUniquelyColdest(t *testing.T) {
	r := xrand.New(99)
	for iter := 0; iter < 2000; iter++ {
		p := NewThermometer()
		b := btb.NewWithSets(1, 3, p)
		temps := make([]uint8, 3)
		for w := 0; w < 3; w++ {
			temps[w] = uint8(r.Intn(4))
			pc := uint64(10 + w)
			b.Access(&btb.Request{PC: pc, Target: pc + 1, Temperature: temps[w], NextUse: trace.NoNextUse})
		}
		inTemp := uint8(r.Intn(4))
		res := b.Access(&btb.Request{PC: 999, Target: 1000, Temperature: inTemp, NextUse: trace.NoNextUse})
		uniquelyColdest := true
		for _, rt := range temps {
			if rt <= inTemp {
				uniquelyColdest = false
			}
		}
		if res.Bypassed != uniquelyColdest {
			t.Fatalf("iter %d: bypassed=%v but uniquelyColdest=%v (in=%d residents=%v)",
				iter, res.Bypassed, uniquelyColdest, inTemp, temps)
		}
	}
}

// TestSRRIPAgingTerminates: SRRIP's aging loop must always find a victim.
func TestSRRIPAgingTerminates(t *testing.T) {
	p := NewSRRIP()
	b := btb.NewWithSets(1, 8, p)
	r := xrand.New(5)
	for i := 0; i < 10000; i++ {
		pc := uint64(r.Intn(64) + 1)
		b.Access(&btb.Request{PC: pc, Target: pc + 4, NextUse: trace.NoNextUse})
	}
	if b.Stats().Accesses != 10000 {
		t.Fatal("accesses lost")
	}
}

// TestPrefetchFillRespectsBypass: OPT must refuse prefetch fills whose next
// use is further than every resident's.
func TestPrefetchFillRespectsBypass(t *testing.T) {
	p := NewOPT()
	b := btb.NewWithSets(1, 2, p)
	b.Access(&btb.Request{PC: 1, Target: 2, NextUse: 10})
	b.Access(&btb.Request{PC: 2, Target: 3, NextUse: 11})
	// Prefetch with a worse next use: rejected.
	if b.PrefetchFill(&btb.Request{PC: 3, Target: 4, NextUse: 100}) {
		t.Fatal("useless prefetch accepted")
	}
	// Prefetch with a better next use: accepted, evicting the worst.
	if !b.PrefetchFill(&btb.Request{PC: 4, Target: 5, NextUse: 5}) {
		t.Fatal("useful prefetch rejected")
	}
	if _, hit := b.Lookup(2); hit {
		t.Fatal("furthest-use resident survived useful prefetch")
	}
	// Duplicate prefetch: no-op.
	if b.PrefetchFill(&btb.Request{PC: 4, Target: 5, NextUse: 5}) {
		t.Fatal("duplicate prefetch filled")
	}
	if b.Stats().PrefetchFills != 1 {
		t.Fatalf("prefetch fills = %d", b.Stats().PrefetchFills)
	}
}

// TestHolisticOnlyBeatsNothingOnUniform: with uniform temperatures the
// holistic-only ablation is FIFO; sanity-check it still functions.
func TestHolisticOnlyUniformIsFIFO(t *testing.T) {
	p := NewHolisticOnly()
	b := btb.NewWithSets(1, 2, p)
	mk := func(pc uint64) *btb.Request {
		return &btb.Request{PC: pc, Target: pc + 4, Temperature: 1, NextUse: trace.NoNextUse}
	}
	b.Access(mk(1))
	b.Access(mk(2))
	b.Access(mk(1)) // hit; FIFO unaffected
	r := b.Access(mk(3))
	if r.Evicted.PC != 1 {
		t.Fatalf("FIFO violated: evicted %d", r.Evicted.PC)
	}
}
