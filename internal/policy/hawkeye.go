package policy

import (
	"thermometer/internal/btb"
	"thermometer/internal/xrand"
)

// Hawkeye adapts Jain & Lin's Hawkeye replacement (ISCA 2016) to the BTB,
// as the paper does for its comparison. Hawkeye reconstructs what Belady's
// OPT *would have done* over a recent window of accesses to a few sampled
// sets (the "OPTgen" structure), and trains a PC-indexed classifier: a
// branch whose past accesses OPT would have hit is "BTB-friendly", one it
// would have missed is "BTB-averse". Replacement evicts averse entries
// first; evicting a friendly entry detrains its classifier counter.
//
// Because the classifier's evidence comes from a short sliding window, it
// captures only *transient* behaviour — the paper's explanation for why
// Hawkeye falls short on data center applications (§2.3).
type Hawkeye struct {
	ways int

	// Classifier: 3-bit saturating counters indexed by hashed branch PC.
	counters []uint8

	// Per-entry state.
	averse []bool // prediction recorded at insert/last hit
	pcOf   []uint64

	// OPTgen samplers, one per sampled set.
	samplers  map[int]*optgen
	sampleLog int // sample sets where set % (1<<sampleLog) == 0

	lru btb.LRUCore

	averseScratch []int // scratch: averse candidate ways, reused per decision

	// Decision counters for telemetry (see Instrumented).
	AverseEvictions   uint64 // victims taken from the averse pool
	FriendlyEvictions uint64 // all-friendly sets: LRU eviction + detrain
}

const (
	hawkCtrMax      = 7
	hawkCtrInit     = 4 // weakly friendly
	hawkCounterBits = 13
)

// optgen models OPT's behaviour over a sliding window for one set.
type optgen struct {
	window   int
	occ      []uint16       // occupancy per quantum, circular
	lastSeen map[uint64]int // PC -> absolute quantum of last access
	now      int
	capacity uint16
}

func newOptgen(ways int) *optgen {
	w := 8 * ways
	return &optgen{
		window:   w,
		occ:      make([]uint16, w),
		lastSeen: make(map[uint64]int),
		capacity: uint16(ways),
	}
}

// access records an access to pc and reports (hit, known): hit is whether
// OPT would have kept pc cached since its previous access; known is false
// for first-in-window accesses, which carry no training signal.
func (g *optgen) access(pc uint64) (hit, known bool) {
	prev, seen := g.lastSeen[pc]
	hit, known = g.liveness(prev, seen)
	// Epilogue (formerly deferred): advance the window and retire the
	// quantum that just fell out of it.
	g.lastSeen[pc] = g.now
	g.now++
	g.occ[g.now%g.window] = 0
	if g.now%g.window == 0 && len(g.lastSeen) > 4*g.window {
		// Forget stale PCs so the map stays bounded.
		for k, v := range g.lastSeen {
			if g.now-v >= g.window {
				delete(g.lastSeen, k)
			}
		}
	}
	return hit, known
}

// liveness decides OPT's verdict for an access whose previous occurrence
// was at quantum prev. The occupancy walk keeps a wrapped index instead of
// reducing the absolute quantum each step: the window spans at most
// g.window quanta, so one conditional reset per step replaces two integer
// divisions.
func (g *optgen) liveness(prev int, seen bool) (hit, known bool) {
	if !seen || g.now-prev >= g.window {
		return false, false
	}
	// OPT hits iff every quantum in (prev, now) still has spare capacity.
	i := prev % g.window
	for t := prev; t < g.now; t++ {
		if g.occ[i] >= g.capacity {
			return false, true
		}
		if i++; i == g.window {
			i = 0
		}
	}
	i = prev % g.window
	for t := prev; t < g.now; t++ {
		g.occ[i]++
		if i++; i == g.window {
			i = 0
		}
	}
	return true, true
}

// NewHawkeye returns a Hawkeye policy adapted to the BTB.
func NewHawkeye() *Hawkeye { return &Hawkeye{} }

// Name implements btb.Policy.
func (p *Hawkeye) Name() string { return "Hawkeye" }

// Reset implements btb.Policy.
func (p *Hawkeye) Reset(sets, ways int) {
	p.ways = ways
	p.counters = make([]uint8, 1<<hawkCounterBits)
	for i := range p.counters {
		p.counters[i] = hawkCtrInit
	}
	p.averse = make([]bool, sets*ways)
	p.pcOf = make([]uint64, sets*ways)
	p.samplers = make(map[int]*optgen)
	// Sample roughly 1 in 8 sets (at least 1).
	p.sampleLog = 3
	if sets < 8 {
		p.sampleLog = 0
	}
	p.lru.Reset(sets, ways)
	p.averseScratch = make([]int, 0, ways)
	p.AverseEvictions, p.FriendlyEvictions = 0, 0
}

func (p *Hawkeye) counterIdx(pc uint64) int {
	return int(xrand.Mix64(pc) & (1<<hawkCounterBits - 1))
}

func (p *Hawkeye) friendly(pc uint64) bool {
	return p.counters[p.counterIdx(pc)] >= 4
}

// observe feeds sampled sets through OPTgen and trains the classifier.
func (p *Hawkeye) observe(set int, pc uint64) {
	if set&(1<<p.sampleLog-1) != 0 {
		return
	}
	g := p.samplers[set]
	if g == nil {
		g = newOptgen(p.ways)
		p.samplers[set] = g
	}
	hit, known := g.access(pc)
	if !known {
		return
	}
	i := p.counterIdx(pc)
	if hit {
		if p.counters[i] < hawkCtrMax {
			p.counters[i]++
		}
	} else if p.counters[i] > 0 {
		p.counters[i]--
	}
}

// OnHit implements btb.Policy: a hit proves the entry reusable in this
// generation, so it is promoted to friendly regardless of the classifier
// (the analogue of Hawkeye's RRPV promotion on hit).
func (p *Hawkeye) OnHit(set, way int, req *btb.Request) {
	p.observe(set, req.PC)
	i := set*p.ways + way
	p.averse[i] = false
	p.lru.Touch(set, way)
}

// OnInsert implements btb.Policy.
func (p *Hawkeye) OnInsert(set, way int, req *btb.Request) {
	p.observe(set, req.PC)
	i := set*p.ways + way
	p.averse[i] = !p.friendly(req.PC)
	p.pcOf[i] = req.PC
	p.lru.Touch(set, way)
}

// Victim implements btb.Policy: evict an averse entry (LRU among them); if
// all residents are friendly, evict the LRU entry and detrain its PC. Like
// cache Hawkeye, insertion always happens — averse entries are merely first
// in line for eviction.
func (p *Hawkeye) Victim(set int, _ []btb.Entry, _ *btb.Request) int {
	base := set * p.ways
	averseWays := p.averseScratch[:0]
	for w := 0; w < p.ways; w++ {
		if p.averse[base+w] {
			averseWays = append(averseWays, w)
		}
	}
	p.averseScratch = averseWays
	if len(averseWays) > 0 {
		p.AverseEvictions++
		return p.lru.LRUAmong(set, averseWays)
	}
	p.FriendlyEvictions++
	victim := p.lru.LRUWay(set)
	// Detrain: OPT would not have evicted a friendly line; the classifier
	// over-promised for this PC.
	if ci := p.counterIdx(p.pcOf[base+victim]); p.counters[ci] > 0 {
		p.counters[ci]--
	}
	return victim
}

// TelemetryCounters implements Instrumented.
func (p *Hawkeye) TelemetryCounters() map[string]uint64 {
	return map[string]uint64{
		"hawkeye_averse_evictions":   p.AverseEvictions,
		"hawkeye_friendly_evictions": p.FriendlyEvictions,
	}
}

var _ btb.Policy = (*Hawkeye)(nil)
var _ Instrumented = (*Hawkeye)(nil)
