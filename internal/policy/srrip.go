package policy

import "thermometer/internal/btb"

// SRRIP implements Static Re-Reference Interval Prediction (Jaleel et al.,
// ISCA 2010) adapted to the BTB, the best performing prior policy in the
// paper's evaluation. Every entry carries an M-bit re-reference prediction
// value (RRPV). New entries are inserted with a "long" re-reference
// prediction (RRPV = 2^M − 2); hits promote to "near-immediate" (0);
// eviction takes the first way whose RRPV is "distant" (2^M − 1), aging the
// whole set until one exists.
//
// The mechanism lives in btb.SRRIPCore (shared with the BTB's devirtualized
// fast path); this type adapts it to btb.Policy.
type SRRIP struct {
	btb.SRRIPCore
}

// NewSRRIP returns a 2-bit SRRIP policy (the standard configuration).
func NewSRRIP() *SRRIP { return NewSRRIPBits(2) }

// NewSRRIPBits returns an SRRIP policy with M-bit RRPVs.
func NewSRRIPBits(m int) *SRRIP {
	return &SRRIP{SRRIPCore: btb.NewSRRIPCore(m)}
}

// Name implements btb.Policy.
func (p *SRRIP) Name() string { return "SRRIP" }

// OnHit implements btb.Policy: hit promotion to RRPV 0.
func (p *SRRIP) OnHit(set, way int, _ *btb.Request) { p.Promote(set, way) }

// OnInsert implements btb.Policy: insert with a long re-reference interval,
// so a branch only earns retention by being re-taken (the "BTB-averse until
// proven friendly" assumption §2.3 describes).
func (p *SRRIP) OnInsert(set, way int, _ *btb.Request) { p.InsertLong(set, way) }

// Victim implements btb.Policy.
func (p *SRRIP) Victim(set int, _ []btb.Entry, _ *btb.Request) int {
	return p.SelectVictim(set)
}

// FastSRRIP implements btb.SRRIPFastPath, enabling devirtualized dispatch.
func (p *SRRIP) FastSRRIP() *btb.SRRIPCore { return &p.SRRIPCore }

// TelemetryCounters implements Instrumented.
func (p *SRRIP) TelemetryCounters() map[string]uint64 {
	return map[string]uint64{"srrip_aging_rounds": p.AgingRounds}
}

var _ btb.Policy = (*SRRIP)(nil)
var _ Instrumented = (*SRRIP)(nil)
