package policy

import "thermometer/internal/btb"

// SRRIP implements Static Re-Reference Interval Prediction (Jaleel et al.,
// ISCA 2010) adapted to the BTB, the best performing prior policy in the
// paper's evaluation. Every entry carries an M-bit re-reference prediction
// value (RRPV). New entries are inserted with a "long" re-reference
// prediction (RRPV = 2^M − 2); hits promote to "near-immediate" (0);
// eviction takes the first way whose RRPV is "distant" (2^M − 1), aging the
// whole set until one exists.
type SRRIP struct {
	bits int
	max  uint8 // distant value = 2^bits − 1
	rrpv []uint8
	ways int

	// AgingRounds counts whole-set RRPV aging sweeps — a measure of how
	// often no entry is already predicted distant (see Instrumented).
	AgingRounds uint64
}

// NewSRRIP returns a 2-bit SRRIP policy (the standard configuration).
func NewSRRIP() *SRRIP { return NewSRRIPBits(2) }

// NewSRRIPBits returns an SRRIP policy with M-bit RRPVs.
func NewSRRIPBits(m int) *SRRIP {
	if m < 1 || m > 8 {
		panic("policy: SRRIP bits out of range")
	}
	return &SRRIP{bits: m, max: uint8(1<<m - 1)}
}

// Name implements btb.Policy.
func (p *SRRIP) Name() string { return "SRRIP" }

// Reset implements btb.Policy.
func (p *SRRIP) Reset(sets, ways int) {
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = p.max
	}
	p.ways = ways
	p.AgingRounds = 0
}

// OnHit implements btb.Policy: hit promotion to RRPV 0.
func (p *SRRIP) OnHit(set, way int, _ *btb.Request) {
	p.rrpv[set*p.ways+way] = 0
}

// OnInsert implements btb.Policy: insert with a long re-reference interval,
// so a branch only earns retention by being re-taken (the "BTB-averse until
// proven friendly" assumption §2.3 describes).
func (p *SRRIP) OnInsert(set, way int, _ *btb.Request) {
	p.rrpv[set*p.ways+way] = p.max - 1
}

// Victim implements btb.Policy.
func (p *SRRIP) Victim(set int, _ []btb.Entry, _ *btb.Request) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == p.max {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
		p.AgingRounds++
	}
}

// TelemetryCounters implements Instrumented.
func (p *SRRIP) TelemetryCounters() map[string]uint64 {
	return map[string]uint64{"srrip_aging_rounds": p.AgingRounds}
}

var _ btb.Policy = (*SRRIP)(nil)
var _ Instrumented = (*SRRIP)(nil)
