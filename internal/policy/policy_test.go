package policy

import (
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

// stream builds an access stream (with next-use oracle) from a PC sequence.
func stream(pcs []uint64) []trace.Access {
	tr := &trace.Trace{Name: "t"}
	for _, pc := range pcs {
		tr.Records = append(tr.Records, trace.Record{
			PC: pc, Target: pc + 4, Taken: true, Type: trace.UncondDirect,
		})
	}
	return tr.AccessStream()
}

// runPolicy replays a stream through a small BTB and returns hit count.
func runPolicy(accesses []trace.Access, sets, ways int, p btb.Policy, temps map[uint64]uint8) btb.Stats {
	b := btb.NewWithSets(sets, ways, p)
	for i := range accesses {
		a := &accesses[i]
		req := &btb.Request{PC: a.PC, Target: a.Target, Type: a.Type, NextUse: a.NextUse, Index: i}
		if temps != nil {
			req.Temperature = temps[a.PC]
		}
		b.Access(req)
	}
	return b.Stats()
}

func randomStream(r *xrand.RNG, nPCs, length int) []trace.Access {
	pcs := make([]uint64, length)
	z := xrand.NewZipf(nPCs, 0.8)
	for i := range pcs {
		pcs[i] = uint64(z.Sample(r) + 1)
	}
	return stream(pcs)
}

func TestLRUStackProperty(t *testing.T) {
	// With W ways and a cyclic working set of size <= W mapping to one set,
	// LRU must hit every access after the first W.
	for _, w := range []int{2, 4, 8} {
		pcs := []uint64{}
		for rep := 0; rep < 10; rep++ {
			for k := 0; k < w; k++ {
				pcs = append(pcs, uint64(k+1))
			}
		}
		s := runPolicy(stream(pcs), 1, w, NewLRU(), nil)
		wantHits := uint64(len(pcs) - w)
		if s.Hits != wantHits {
			t.Errorf("ways=%d: hits = %d, want %d", w, s.Hits, wantHits)
		}
	}
}

func TestLRUThrashing(t *testing.T) {
	// Cyclic working set of W+1 over W ways: LRU gets zero hits.
	const w = 4
	pcs := []uint64{}
	for rep := 0; rep < 20; rep++ {
		for k := 0; k <= w; k++ {
			pcs = append(pcs, uint64(k+1))
		}
	}
	s := runPolicy(stream(pcs), 1, w, NewLRU(), nil)
	if s.Hits != 0 {
		t.Errorf("thrash hits = %d, want 0", s.Hits)
	}
}

func TestOPTBeatsLRUOnThrashing(t *testing.T) {
	const w = 4
	pcs := []uint64{}
	for rep := 0; rep < 20; rep++ {
		for k := 0; k <= w; k++ {
			pcs = append(pcs, uint64(k+1))
		}
	}
	acc := stream(pcs)
	lru := runPolicy(acc, 1, w, NewLRU(), nil)
	opt := runPolicy(acc, 1, w, NewOPT(), nil)
	if opt.Hits <= lru.Hits {
		t.Fatalf("OPT hits %d <= LRU hits %d", opt.Hits, lru.Hits)
	}
	// Belady on cyclic W+1 working set keeps W-1 stable lines: per cycle of
	// W+1 accesses, W-1 hits after warmup.
	if opt.Hits < uint64(19*(w-1)) {
		t.Fatalf("OPT hits %d below theoretical %d", opt.Hits, 19*(w-1))
	}
}

func TestOPTDominanceProperty(t *testing.T) {
	r := xrand.New(2024)
	policies := func() []btb.Policy {
		return []btb.Policy{NewLRU(), NewRandom(), NewSRRIP(), NewGHRP(), NewHawkeye(), NewHolisticOnly()}
	}
	for iter := 0; iter < 15; iter++ {
		acc := randomStream(r, 60, 3000)
		sets, ways := 4, 4
		opt := runPolicy(acc, sets, ways, NewOPT(), nil)
		for _, p := range policies() {
			s := runPolicy(acc, sets, ways, p, nil)
			if s.Hits > opt.Hits {
				t.Fatalf("iter %d: %s hits %d > OPT hits %d", iter, p.Name(), s.Hits, opt.Hits)
			}
		}
	}
}

func TestSRRIPPromotesOnHit(t *testing.T) {
	// A (hit often) should survive a scan that LRU would let kill it.
	// Pattern: A A [scan B C D E F G] A ... SRRIP inserts scanning entries
	// with distant RRPV so A (promoted to 0) survives.
	pcs := []uint64{1, 1}
	for rep := 0; rep < 8; rep++ {
		for k := uint64(2); k <= 7; k++ {
			pcs = append(pcs, k)
		}
		pcs = append(pcs, 1)
	}
	acc := stream(pcs)
	srrip := runPolicy(acc, 1, 4, NewSRRIP(), nil)
	lru := runPolicy(acc, 1, 4, NewLRU(), nil)
	if srrip.Hits <= lru.Hits {
		t.Fatalf("SRRIP hits %d <= LRU hits %d on scan pattern", srrip.Hits, lru.Hits)
	}
}

func TestSRRIPBitsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0-bit SRRIP")
		}
	}()
	NewSRRIPBits(0)
}

func TestThermometerBypassUniqueColdest(t *testing.T) {
	p := NewThermometer()
	b := btb.NewWithSets(1, 2, p)
	hot := func(pc uint64) *btb.Request {
		return &btb.Request{PC: pc, Target: pc + 4, Temperature: 2, NextUse: trace.NoNextUse}
	}
	cold := func(pc uint64) *btb.Request {
		return &btb.Request{PC: pc, Target: pc + 4, Temperature: 0, NextUse: trace.NoNextUse}
	}
	b.Access(hot(1))
	b.Access(hot(2))
	r := b.Access(cold(3))
	if !r.Bypassed {
		t.Fatal("uniquely-coldest incoming branch was inserted")
	}
	if p.Bypasses != 1 || p.Decisions != 1 || p.Covered != 1 {
		t.Fatalf("thermometer stats = %+v", p)
	}
}

func TestThermometerEvictsColdest(t *testing.T) {
	p := NewThermometer()
	b := btb.NewWithSets(1, 3, p)
	mk := func(pc uint64, temp uint8) *btb.Request {
		return &btb.Request{PC: pc, Target: pc + 4, Temperature: temp, NextUse: trace.NoNextUse}
	}
	b.Access(mk(1, 2)) // hot
	b.Access(mk(2, 0)) // cold
	b.Access(mk(3, 1)) // warm
	r := b.Access(mk(4, 1))
	if r.Bypassed || r.Evicted.PC != 2 {
		t.Fatalf("victim = %+v, want cold PC 2", r)
	}
}

func TestThermometerTieBreaksLRU(t *testing.T) {
	p := NewThermometer()
	b := btb.NewWithSets(1, 2, p)
	mk := func(pc uint64, temp uint8) *btb.Request {
		return &btb.Request{PC: pc, Target: pc + 4, Temperature: temp, NextUse: trace.NoNextUse}
	}
	b.Access(mk(1, 1))
	b.Access(mk(2, 1))
	b.Access(mk(1, 1)) // touch 1 → LRU is 2
	r := b.Access(mk(3, 1))
	if r.Evicted.PC != 2 {
		t.Fatalf("victim PC = %d, want LRU (2)", r.Evicted.PC)
	}
	// All candidates same temperature → not covered.
	if p.Covered != 0 || p.Decisions != 1 {
		t.Fatalf("coverage stats = %+v", p)
	}
	if p.Coverage() != 0 {
		t.Fatalf("Coverage() = %v, want 0", p.Coverage())
	}
}

func TestThermometerKeepsHotUnderThrash(t *testing.T) {
	// Working set: 2 hot branches + stream of cold branches, 1 set × 2
	// ways. With temperature hints, hot branches stay resident; LRU
	// thrashes.
	temps := map[uint64]uint8{1: 2, 2: 2}
	pcs := []uint64{1, 2}
	coldPC := uint64(100)
	for rep := 0; rep < 50; rep++ {
		pcs = append(pcs, 1, 2, coldPC)
		coldPC++
	}
	acc := stream(pcs)
	th := runPolicy(acc, 1, 2, NewThermometer(), temps)
	lru := runPolicy(acc, 1, 2, NewLRU(), temps)
	if th.Hits <= lru.Hits {
		t.Fatalf("Thermometer hits %d <= LRU hits %d", th.Hits, lru.Hits)
	}
	// Hot branches after warmup: all 100 accesses to PCs 1,2 hit.
	if th.Hits != 100 {
		t.Fatalf("Thermometer hits = %d, want 100", th.Hits)
	}
}

func TestHolisticOnlyIgnoresRecency(t *testing.T) {
	p := NewHolisticOnly()
	b := btb.NewWithSets(1, 2, p)
	mk := func(pc uint64, temp uint8) *btb.Request {
		return &btb.Request{PC: pc, Target: pc + 4, Temperature: temp, NextUse: trace.NoNextUse}
	}
	b.Access(mk(1, 1))
	b.Access(mk(2, 1))
	b.Access(mk(1, 1)) // hit; FIFO order unchanged
	r := b.Access(mk(3, 1))
	if r.Evicted.PC != 1 {
		t.Fatalf("victim = %d, want FIFO-oldest (1)", r.Evicted.PC)
	}
}

func TestTransientOnlyIsLRU(t *testing.T) {
	r := xrand.New(5)
	acc := randomStream(r, 40, 2000)
	a := runPolicy(acc, 4, 4, NewLRU(), nil)
	b := runPolicy(acc, 4, 4, NewTransientOnly(), nil)
	if a.Hits != b.Hits {
		t.Fatalf("TransientOnly hits %d != LRU hits %d", b.Hits, a.Hits)
	}
	if NewTransientOnly().Name() != "Transient" {
		t.Fatal("wrong ablation name")
	}
}

func TestGHRPLearnsDeadStreams(t *testing.T) {
	// Hot loop of 3 branches + a cycling set of 32 long-reuse-distance
	// ("dead") branches in a 4-way set. Contexts repeat every 32
	// iterations, so GHRP can learn the cycling branches are
	// dead-on-arrival, bypass them, and keep the hot loop resident —
	// whereas LRU thrashes and misses everything.
	pcs := []uint64{}
	for rep := 0; rep < 2000; rep++ {
		pcs = append(pcs, 1, 2, 3, 4, uint64(1000+rep%32))
	}
	acc := stream(pcs)
	ghrp := runPolicy(acc, 1, 4, NewGHRP(), nil)
	lru := runPolicy(acc, 1, 4, NewLRU(), nil)
	random := runPolicy(acc, 1, 4, NewRandom(), nil)
	if ghrp.Hits <= lru.Hits {
		t.Fatalf("GHRP hits %d <= LRU hits %d", ghrp.Hits, lru.Hits)
	}
	if ghrp.Hits <= random.Hits {
		t.Fatalf("GHRP hits %d <= Random hits %d", ghrp.Hits, random.Hits)
	}
}

func TestHawkeyeLearnsFriendlyBranches(t *testing.T) {
	// Same hot-loop + stream pattern: Hawkeye's OPTgen should classify the
	// loop branches friendly and the stream averse.
	pcs := []uint64{}
	coldPC := uint64(1000)
	for rep := 0; rep < 400; rep++ {
		pcs = append(pcs, 1, 2, 3, 4, coldPC)
		coldPC++
	}
	acc := stream(pcs)
	hawkeye := runPolicy(acc, 1, 4, NewHawkeye(), nil)
	lru := runPolicy(acc, 1, 4, NewLRU(), nil)
	if hawkeye.Hits <= lru.Hits {
		t.Fatalf("Hawkeye hits %d <= LRU hits %d", hawkeye.Hits, lru.Hits)
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[btb.Policy]string{
		NewLRU():           "LRU",
		NewRandom():        "Random",
		NewSRRIP():         "SRRIP",
		NewGHRP():          "GHRP",
		NewHawkeye():       "Hawkeye",
		NewOPT():           "OPT",
		NewThermometer():   "Thermometer",
		NewHolisticOnly():  "Holistic",
		NewTransientOnly(): "Transient",
	}
	for p, n := range want {
		if p.Name() != n {
			t.Errorf("Name() = %q, want %q", p.Name(), n)
		}
	}
}

func TestOPTNeverWorseThanLRUProperty(t *testing.T) {
	r := xrand.New(77)
	for iter := 0; iter < 10; iter++ {
		// Varied geometry each iteration.
		sets := 1 << uint(r.Intn(4))
		ways := 2 + r.Intn(6)
		acc := randomStream(r, 30+r.Intn(100), 2000)
		opt := runPolicy(acc, sets, ways, NewOPT(), nil)
		lru := runPolicy(acc, sets, ways, NewLRU(), nil)
		if opt.Hits < lru.Hits {
			t.Fatalf("iter %d (%d×%d): OPT %d < LRU %d", iter, sets, ways, opt.Hits, lru.Hits)
		}
	}
}
