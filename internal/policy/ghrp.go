package policy

import (
	"thermometer/internal/btb"
	"thermometer/internal/xrand"
)

// GHRP implements the Global History Reuse Predictor of Ajorpaz et al.
// (ISCA 2018), the only prior replacement policy designed specifically for
// the BTB. It predicts *dead* BTB entries — entries that will not hit again
// before eviction — from a signature combining the branch PC with the global
// history of recent BTB accesses. A skewed three-table predictor of
// saturating counters votes on deadness; signatures are trained toward
// alive on hits and toward dead when an entry is evicted without ever
// hitting. Replacement evicts the most confidently dead entry (falling back
// to LRU when no entry is predicted dead), and an incoming branch predicted
// dead-on-arrival with high confidence bypasses the BTB.
type GHRP struct {
	tables  [ghrpTables][]uint8
	history uint64
	ways    int
	// sig stores, per entry, the signature under which the entry was last
	// accessed — the same signature a future dead-on-arrival check for the
	// same (PC, history) context computes, so training transfers.
	sig        []uint64
	hitSince   []bool
	lru        btb.LRUCore
	deadThresh int
	passThresh int

	// Decision counters for telemetry (see Instrumented).
	Bypasses      uint64 // dead-on-arrival insertions declined
	DeadEvictions uint64 // victims chosen by a confident dead prediction
	LRUFallbacks  uint64 // victims chosen by the LRU fallback
}

const (
	ghrpTables    = 3
	ghrpTableSize = 1 << 12
	ghrpCtrMax    = 7
)

// NewGHRP returns a GHRP policy with the default thresholds.
func NewGHRP() *GHRP {
	return &GHRP{deadThresh: 12, passThresh: 18}
}

// Name implements btb.Policy.
func (p *GHRP) Name() string { return "GHRP" }

// Reset implements btb.Policy.
func (p *GHRP) Reset(sets, ways int) {
	for t := range p.tables {
		p.tables[t] = make([]uint8, ghrpTableSize)
	}
	p.history = 0
	p.ways = ways
	p.sig = make([]uint64, sets*ways)
	p.hitSince = make([]bool, sets*ways)
	p.lru.Reset(sets, ways)
	p.Bypasses, p.DeadEvictions, p.LRUFallbacks = 0, 0, 0
}

// signature hashes the PC with the current global history.
func (p *GHRP) signature(pc uint64) uint64 {
	return xrand.Mix64(pc ^ (p.history << 1))
}

// tableIndex skews the signature differently per table.
func tableIndex(sig uint64, table int) int {
	return int((sig >> (uint(table) * 13)) & (ghrpTableSize - 1))
}

// vote sums the three counters for a signature.
func (p *GHRP) vote(sig uint64) int {
	v := 0
	for t := 0; t < ghrpTables; t++ {
		v += int(p.tables[t][tableIndex(sig, t)])
	}
	return v
}

// train moves the counters for sig toward dead (true) or alive (false).
func (p *GHRP) train(sig uint64, dead bool) {
	for t := 0; t < ghrpTables; t++ {
		i := tableIndex(sig, t)
		c := p.tables[t][i]
		if dead {
			if c < ghrpCtrMax {
				p.tables[t][i] = c + 1
			}
		} else if c > 0 {
			p.tables[t][i] = c - 1
		}
	}
}

func (p *GHRP) pushHistory(pc uint64) {
	p.history = (p.history << 5) ^ (xrand.Mix64(pc) & 0xffff)
}

// OnHit implements btb.Policy: the entry proved alive — train the signature
// it was stamped with toward alive, then re-stamp it in the current context.
func (p *GHRP) OnHit(set, way int, req *btb.Request) {
	i := set*p.ways + way
	p.train(p.sig[i], false)
	p.sig[i] = p.signature(req.PC) // stamp before advancing history
	p.pushHistory(req.PC)
	p.hitSince[i] = true
	p.lru.Touch(set, way)
}

// OnInsert implements btb.Policy.
func (p *GHRP) OnInsert(set, way int, req *btb.Request) {
	i := set*p.ways + way
	p.sig[i] = p.signature(req.PC) // stamp before advancing history
	p.pushHistory(req.PC)
	p.hitSince[i] = false
	p.lru.Touch(set, way)
}

// Victim implements btb.Policy.
func (p *GHRP) Victim(set int, _ []btb.Entry, req *btb.Request) int {
	base := set * p.ways
	bestWay, bestVote := 0, -1
	for w := 0; w < p.ways; w++ {
		if v := p.vote(p.sig[base+w]); v > bestVote {
			bestWay, bestVote = w, v
		}
	}
	// Dead-on-arrival bypass: the incoming branch's context predicts it
	// will not be reused, and no resident is as confidently dead. The
	// incoming access still advances history so contexts stay aligned.
	if inVote := p.vote(p.signature(req.PC)); inVote >= p.passThresh && inVote >= bestVote {
		p.pushHistory(req.PC)
		p.Bypasses++
		return btb.Bypass
	}
	victim := bestWay
	if bestVote < p.deadThresh {
		// No confident dead prediction: fall back to LRU.
		victim = p.lru.LRUWay(set)
		p.LRUFallbacks++
	} else {
		p.DeadEvictions++
	}
	if !p.hitSince[base+victim] {
		p.train(p.sig[base+victim], true)
	}
	return victim
}

// TelemetryCounters implements Instrumented.
func (p *GHRP) TelemetryCounters() map[string]uint64 {
	return map[string]uint64{
		"ghrp_bypasses":       p.Bypasses,
		"ghrp_dead_evictions": p.DeadEvictions,
		"ghrp_lru_fallbacks":  p.LRUFallbacks,
	}
}

var _ btb.Policy = (*GHRP)(nil)
var _ Instrumented = (*GHRP)(nil)
