package policy

import (
	"thermometer/internal/btb"
	"thermometer/internal/trace"
)

// OPT implements Belady's optimal replacement policy with bypass. It is the
// provably optimal (and unrealizable in hardware) policy the paper uses both
// as the performance upper bound and as the offline oracle from which branch
// temperatures are computed (§2.2, §3.2).
//
// The driver must populate Request.NextUse and Request.Index from a
// trace.AccessStream; OPT stores each resident entry's next-use position and
// evicts the candidate used furthest in the future. When the incoming branch
// itself is the furthest-used candidate, it bypasses the BTB — Belady with
// bypass is optimal for caches, like the BTB, that are not forced to insert
// on miss.
type OPT struct {
	nextUse []int
	ways    int
}

// NewOPT returns an optimal replacement policy instance.
func NewOPT() *OPT { return &OPT{} }

// Name implements btb.Policy.
func (p *OPT) Name() string { return "OPT" }

// Reset implements btb.Policy.
func (p *OPT) Reset(sets, ways int) {
	p.nextUse = make([]int, sets*ways)
	p.ways = ways
}

// OnHit implements btb.Policy: refresh the resident's next-use position.
func (p *OPT) OnHit(set, way int, req *btb.Request) {
	p.nextUse[set*p.ways+way] = req.NextUse
}

// OnInsert implements btb.Policy.
func (p *OPT) OnInsert(set, way int, req *btb.Request) {
	p.nextUse[set*p.ways+way] = req.NextUse
}

// Victim implements btb.Policy: evict (or bypass) the candidate whose next
// use is furthest in the future.
func (p *OPT) Victim(set int, _ []btb.Entry, req *btb.Request) int {
	base := set * p.ways
	victim := btb.Bypass // the incoming branch itself
	furthest := req.NextUse
	for w := 0; w < p.ways; w++ {
		if nu := p.nextUse[base+w]; nu > furthest {
			furthest = nu
			victim = w
		}
	}
	return victim
}

var _ btb.Policy = (*OPT)(nil)
var _ = trace.NoNextUse // OPT semantics depend on trace.NoNextUse ordering (max int)
