package policy

import (
	"thermometer/internal/btb"
	"thermometer/internal/trace"
)

// OPT implements Belady's optimal replacement policy with bypass. It is the
// provably optimal (and unrealizable in hardware) policy the paper uses both
// as the performance upper bound and as the offline oracle from which branch
// temperatures are computed (§2.2, §3.2).
//
// The driver must populate Request.NextUse and Request.Index from a
// trace.AccessStream; OPT stores each resident entry's next-use position and
// evicts the candidate used furthest in the future. When the incoming branch
// itself is the furthest-used candidate, it bypasses the BTB — Belady with
// bypass is optimal for caches, like the BTB, that are not forced to insert
// on miss.
//
// The mechanism lives in btb.OPTCore (shared with the BTB's devirtualized
// fast path); this type adapts it to btb.Policy.
type OPT struct {
	btb.OPTCore
}

// NewOPT returns an optimal replacement policy instance.
func NewOPT() *OPT { return &OPT{} }

// Name implements btb.Policy.
func (p *OPT) Name() string { return "OPT" }

// OnHit implements btb.Policy: refresh the resident's next-use position.
func (p *OPT) OnHit(set, way int, req *btb.Request) { p.Record(set, way, req) }

// OnInsert implements btb.Policy.
func (p *OPT) OnInsert(set, way int, req *btb.Request) { p.Record(set, way, req) }

// Victim implements btb.Policy: evict (or bypass) the candidate whose next
// use is furthest in the future.
func (p *OPT) Victim(set int, _ []btb.Entry, req *btb.Request) int {
	return p.SelectVictim(set, req)
}

// FastOPT implements btb.OPTFastPath, enabling devirtualized dispatch.
func (p *OPT) FastOPT() *btb.OPTCore { return &p.OPTCore }

var _ btb.Policy = (*OPT)(nil)
var _ = trace.NoNextUse // OPT semantics depend on trace.NoNextUse ordering (max int)
