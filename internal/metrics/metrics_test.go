package metrics

import (
	"math"
	"testing"

	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

func stream(pcs []uint64) []trace.Access {
	tr := &trace.Trace{Name: "t"}
	for _, pc := range pcs {
		tr.Records = append(tr.Records, trace.Record{
			PC: pc, Target: pc + 4, Taken: true, Type: trace.UncondDirect,
		})
	}
	return tr.AccessStream()
}

func TestReuseSequencesSimple(t *testing.T) {
	// Single set. Stream: A B C A → A's reuse distance = 2 (B, C).
	seqs := ReuseSequences(stream([]uint64{10, 11, 12, 10}), 1)
	if got := seqs[10]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("A reuse = %v, want [2]", got)
	}
	if len(seqs[11]) != 0 || len(seqs[12]) != 0 {
		t.Fatal("single-access branches have reuse samples")
	}
}

func TestReuseSequencesRepeats(t *testing.T) {
	// A B B A: unique distinct between A's accesses = 1 (B counted once).
	seqs := ReuseSequences(stream([]uint64{10, 11, 11, 10}), 1)
	if got := seqs[10]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("A reuse = %v, want [1]", got)
	}
	// B's own reuse: zero distinct PCs in between.
	if got := seqs[11]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("B reuse = %v, want [0]", got)
	}
}

func TestReuseSequencesSetScoped(t *testing.T) {
	// 2 sets: PCs 10 (even set) and 11,13 (odd set). Odd traffic must not
	// count toward 10's reuse distance.
	seqs := ReuseSequences(stream([]uint64{10, 11, 13, 10}), 2)
	if got := seqs[10]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("reuse = %v, want [0]", got)
	}
}

func TestReuseSequencesBruteForce(t *testing.T) {
	r := xrand.New(11)
	for iter := 0; iter < 10; iter++ {
		pcs := make([]uint64, 400)
		for i := range pcs {
			pcs[i] = uint64(r.Intn(30) + 1)
		}
		acc := stream(pcs)
		sets := 1 + r.Intn(4)
		got := ReuseSequences(acc, sets)
		// Brute force.
		want := make(map[uint64][]float64)
		last := make(map[uint64]int)
		for i, a := range acc {
			if j, ok := last[a.PC]; ok {
				uniq := map[uint64]bool{}
				for k := j + 1; k < i; k++ {
					if acc[k].PC%uint64(sets) == a.PC%uint64(sets) && acc[k].PC != a.PC {
						uniq[acc[k].PC] = true
					}
				}
				want[a.PC] = append(want[a.PC], float64(len(uniq)))
			}
			last[a.PC] = i
		}
		for pc, w := range want {
			g := got[pc]
			if len(g) != len(w) {
				t.Fatalf("iter %d pc %d: len %d != %d", iter, pc, len(g), len(w))
			}
			for i := range w {
				if g[i] != w[i] {
					t.Fatalf("iter %d pc %d sample %d: %v != %v", iter, pc, i, g[i], w[i])
				}
			}
		}
	}
}

func TestVarianceFormulas(t *testing.T) {
	a := []float64{1, 3, 1, 3, 1}
	// Transient: diffs all ±2 → squared 4; 4 pairs / (n-1=4) = 4.
	if got := TransientVariance(a); got != 4 {
		t.Fatalf("transient = %v, want 4", got)
	}
	// Holistic: mean 1.8, deviations (−.8,1.2,−.8,1.2,−.8): sum=4.8 → /5 = 0.96.
	if got := HolisticVariance(a); math.Abs(got-0.96) > 1e-12 {
		t.Fatalf("holistic = %v, want 0.96", got)
	}
	if TransientVariance([]float64{5}) != 0 || HolisticVariance(nil) != 0 {
		t.Fatal("degenerate variances not 0")
	}
}

func TestIIDTransientIsTwiceHolistic(t *testing.T) {
	// For iid samples, E[(a_i − a_{i+1})²] = 2σ² — the statistical root of
	// the paper's >2× observation.
	r := xrand.New(3)
	a := make([]float64, 20000)
	for i := range a {
		a[i] = r.Float64() * 10
	}
	ratio := TransientVariance(a) / HolisticVariance(a)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("iid ratio = %v, want ~2", ratio)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := Pearson(x, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant correlation = %v", got)
	}
	if Pearson(x, x[:2]) != 0 {
		t.Fatal("length mismatch not 0")
	}
}

func TestSpearmanAbs(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 4, 9, 16, 25} // monotonic, nonlinear
	if got := SpearmanAbs(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("monotonic Spearman = %v, want 1", got)
	}
	yr := []float64{25, 16, 9, 4, 1}
	if got := SpearmanAbs(x, yr); math.Abs(got-1) > 1e-12 {
		t.Fatalf("reverse Spearman abs = %v, want 1", got)
	}
	r := xrand.New(5)
	xs, ys := make([]float64, 5000), make([]float64, 5000)
	for i := range xs {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	if got := SpearmanAbs(xs, ys); got > 0.05 {
		t.Fatalf("random Spearman = %v, want ~0", got)
	}
}

func TestRanksTies(t *testing.T) {
	r := ranks([]float64{3, 1, 3})
	// value 1 → rank 0; the two 3s share ranks 1,2 → 1.5.
	if r[1] != 0 || r[0] != 1.5 || r[2] != 1.5 {
		t.Fatalf("ranks = %v", r)
	}
}

func TestCDF(t *testing.T) {
	c := CDF([]float64{1, 1, 2})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF = %v", c)
		}
	}
	if z := CDF([]float64{0, 0}); z[1] != 0 {
		t.Fatalf("zero CDF = %v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 5 || Percentile(xs, 0.5) != 3 {
		t.Fatal("percentiles wrong")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile not 0")
	}
}

func TestSummarizeVariancePhaseBehaviour(t *testing.T) {
	// Branch with alternating short/long reuse (phase-like) must show
	// transient variance ≥ holistic variance.
	pcs := []uint64{}
	for rep := 0; rep < 200; rep++ {
		pcs = append(pcs, 1, 2, 3, 1) // short reuse for 1
		for k := uint64(10); k < 18; k++ {
			pcs = append(pcs, k) // long gap before 1 returns
		}
	}
	acc := stream(pcs)
	v := SummarizeVariance(acc, 1, 4)
	if v.Branches == 0 {
		t.Fatal("no branches summarized")
	}
	if v.Ratio() < 1.0 {
		t.Fatalf("variance ratio = %v, want >= 1", v.Ratio())
	}
}

// TestVarianceDivisors locks in the §2.3 estimator choice: with m reuse
// samples, transient variance divides by the number of consecutive
// differences (m−1, the paper's n−2) and holistic variance divides by the
// sample count (m, the paper's n−1). The values below are chosen so every
// rejected alternative divisor produces a different result.
func TestVarianceDivisors(t *testing.T) {
	a := []float64{0, 2}
	// One squared difference of 4, divided by m−1 = 1.
	if got := TransientVariance(a); got != 4 {
		t.Fatalf("transient = %v, want 4 (1/(m−1) over differences); 1/m would give 2", got)
	}
	// Mean 1, squared deviations 1+1 = 2, divided by m = 2.
	if got := HolisticVariance(a); got != 1 {
		t.Fatalf("holistic = %v, want 1 (population 1/m); Bessel 1/(m−1) would give 2", got)
	}

	b := []float64{1, 2, 6}
	// Differences −1, −4 → 1+16 = 17, over m−1 = 2 → 8.5.
	if got := TransientVariance(b); got != 8.5 {
		t.Fatalf("transient = %v, want 8.5", got)
	}
	// Mean 3, deviations −2, −1, 3 → 4+1+9 = 14, over m = 3.
	if got, want := HolisticVariance(b), 14.0/3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("holistic = %v, want %v", got, want)
	}
}

func TestMeanSpeedup(t *testing.T) {
	xs := []float64{0.10, 0.20, 0.60}
	if got := MeanSpeedup(xs); math.Abs(got-0.30) > 1e-12 {
		t.Fatalf("MeanSpeedup = %v, want 0.30 (arithmetic mean)", got)
	}
	// The deprecated alias must agree forever.
	if MeanSpeedup(xs) != GeoMeanSpeedup(xs) {
		t.Fatal("GeoMeanSpeedup alias diverged from MeanSpeedup")
	}
	if MeanSpeedup(nil) != 0 {
		t.Fatal("MeanSpeedup(nil) != 0")
	}
}
