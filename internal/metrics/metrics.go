// Package metrics implements the statistical analyses of the paper's
// characterization study: per-branch reuse-distance sequences, the transient
// and holistic variance definitions of §2.3, and the property correlations
// of Fig 8.
package metrics

import (
	"math"
	"sort"

	"thermometer/internal/detmap"
	"thermometer/internal/trace"
)

// ReuseSequences computes, for every static branch, the sequence of
// set-local reuse distances of its BTB accesses: element i is the number of
// *unique* branches that accessed the same BTB set between dynamic access
// i and access i+1 of the branch (the standard reuse-distance definition
// the paper uses, scoped to the associative set, §2.3).
//
// sets is the number of BTB sets used for set scoping.
func ReuseSequences(accesses []trace.Access, sets int) map[uint64][]float64 {
	// For each set, walk its access sub-stream. For each branch, reuse
	// distance = number of distinct PCs between consecutive accesses.
	// Efficient implementation: per set, keep for each PC the position of
	// its last access in the set-stream, and a Fenwick-like structure of
	// "last occurrence" counts so distinct-count queries are O(log n).
	perSet := make(map[int][]int) // set -> indices into accesses
	for i := range accesses {
		s := int(accesses[i].PC % uint64(sets))
		perSet[s] = append(perSet[s], i)
	}
	out := make(map[uint64][]float64, 1<<10)
	for _, set := range detmap.SortedKeys(perSet) {
		idxs := perSet[set]
		n := len(idxs)
		if n == 0 {
			continue
		}
		// Offline distinct-counting with a BIT over "last occurrence"
		// positions: classic algorithm. Process stream positions left to
		// right; when PC reappears, the distinct count in (prev, cur) is
		// query(cur-1) - query(prev), where the BIT marks the latest
		// occurrence position of each distinct PC seen so far.
		bit := make([]int, n+1)
		add := func(i, v int) {
			for i++; i <= n; i += i & (-i) {
				bit[i] += v
			}
		}
		query := func(i int) int { // prefix sum over [0, i]
			s := 0
			for i++; i > 0; i -= i & (-i) {
				s += bit[i]
			}
			return s
		}
		lastPos := make(map[uint64]int, 256)
		for cur := 0; cur < n; cur++ {
			pc := accesses[idxs[cur]].PC
			if prev, ok := lastPos[pc]; ok {
				// Unique PCs strictly between prev and cur, excluding the
				// branch itself (whose latest occurrence is at prev).
				distinct := query(cur-1) - query(prev)
				out[pc] = append(out[pc], float64(distinct))
				add(prev, -1)
			}
			add(cur, 1)
			lastPos[pc] = cur
		}
	}
	return out
}

// TransientVariance implements the paper's transient variance (§2.3):
//
//	1/(n−2) · Σ_{i=2..n-1} (a_i − a_{i+1})²
//
// The paper indexes by dynamic access count: a branch accessed n times has
// the reuse-distance vector a_2..a_n with n−1 elements and n−2 consecutive
// differences, and the divisor is the number of differences. The argument
// here is that vector, so with m = len(a) reuse samples this computes
//
//	1/(m−1) · Σ_{i=0..m-2} (a[i] − a[i+1])²
//
// i.e. the mean squared consecutive difference — exactly the paper's
// estimator under m = n−1. Returns 0 for fewer than two samples.
func TransientVariance(a []float64) float64 {
	m := len(a)
	if m < 2 {
		return 0
	}
	var sum float64
	for i := 0; i+1 < m; i++ {
		d := a[i] - a[i+1]
		sum += d * d
	}
	return sum / float64(m-1)
}

// HolisticVariance implements the paper's holistic variance (§2.3):
//
//	1/(n−1) · Σ_{i=2..n} (a_i − ā)²
//
// As in TransientVariance, the paper's n counts dynamic accesses, so the
// sum runs over the n−1 reuse samples a_2..a_n and the divisor equals the
// number of samples. With m = len(a) samples this is the population
// variance
//
//	1/m · Σ_{i=0..m-1} (a[i] − ā)²
//
// — NOT the Bessel-corrected 1/(m−1) sample variance: the paper divides by
// the sample count, and using 1/(m−1) here would break the iid identity
// E[transient] = 2·E[holistic] that underlies Fig 5's >2× observation
// (see TestIIDTransientIsTwiceHolistic). Returns 0 for empty input.
func HolisticVariance(a []float64) float64 {
	m := len(a)
	if m == 0 {
		return 0
	}
	mean := Mean(a)
	var sum float64
	for _, v := range a {
		d := v - mean
		sum += d * d
	}
	return sum / float64(m)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// VarianceSummary aggregates Fig 5's per-application metric: the average
// transient and holistic variance over branches with at least minSamples
// reuse samples, normalized by the squared mean reuse distance of each
// branch so that branches with different distance scales are comparable.
type VarianceSummary struct {
	Transient float64
	Holistic  float64
	Branches  int
}

// Ratio returns transient / holistic variance (0 if undefined).
func (v VarianceSummary) Ratio() float64 {
	if v.Holistic == 0 {
		return 0
	}
	return v.Transient / v.Holistic
}

// SummarizeVariance computes the Fig 5 aggregate for one access stream.
func SummarizeVariance(accesses []trace.Access, sets, minSamples int) VarianceSummary {
	seqs := ReuseSequences(accesses, sets)
	var sum VarianceSummary
	for _, pc := range detmap.SortedKeys(seqs) {
		a := seqs[pc]
		if len(a) < minSamples {
			continue
		}
		m := Mean(a)
		norm := m*m + 1 // +1 avoids division blow-up for tiny distances
		sum.Transient += TransientVariance(a) / norm
		sum.Holistic += HolisticVariance(a) / norm
		sum.Branches++
	}
	if sum.Branches > 0 {
		sum.Transient /= float64(sum.Branches)
		sum.Holistic /= float64(sum.Branches)
	}
	return sum
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// vectors (0 when undefined).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SpearmanAbs returns |Spearman rank correlation| of x and y — Fig 8's
// "correlation" between branch properties and temperature is about
// monotonic association, for which rank correlation is the robust choice.
func SpearmanAbs(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	rx, ry := ranks(x), ranks(y)
	return math.Abs(Pearson(rx, ry))
}

// ranks returns average ranks (ties share the mean rank).
func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	out := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// CDF returns the cumulative fractions of ys (assumed ordered by the
// caller's x-axis): out[i] = Σ ys[0..i] / Σ ys.
func CDF(ys []float64) []float64 {
	total := 0.0
	for _, y := range ys {
		total += y
	}
	out := make([]float64, len(ys))
	run := 0.0
	for i, y := range ys {
		run += y
		if total > 0 {
			out[i] = run / total
		}
	}
	return out
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs (not modified).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

// MeanSpeedup aggregates per-app speedup fractions (e.g. 0.087 for 8.7%)
// into their arithmetic mean — the convention behind the paper's "Avg"
// bars (Figs 12, 13, 17), which average percentage speedups across
// applications rather than taking a geometric mean of speedup ratios.
func MeanSpeedup(xs []float64) float64 { return Mean(xs) }

// GeoMeanSpeedup is a deprecated alias for MeanSpeedup, kept because the
// old name wrongly suggested a geometric mean while the implementation has
// always been (correctly, per the paper's "Avg" convention) arithmetic.
//
// Deprecated: use MeanSpeedup.
func GeoMeanSpeedup(xs []float64) float64 { return MeanSpeedup(xs) }
