package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/telemetry"
)

// fakeRunner completes sweeps instantly unless gate is set, in which case
// every sweep blocks until the gate closes or the context cancels.
type fakeRunner struct {
	mu     sync.Mutex
	sweeps int
	gate   chan struct{}
}

func (f *fakeRunner) Sweep(ctx context.Context, specs []runner.Spec) []runner.Result {
	f.mu.Lock()
	f.sweeps++
	gate := f.gate
	f.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	results := make([]runner.Result, len(specs))
	for i, sp := range specs {
		results[i] = runner.Result{Spec: sp, Key: sp.Key()}
		if ctx.Err() != nil {
			results[i].Err = "canceled: " + ctx.Err().Error()
		} else {
			results[i].Outcome = &runner.Outcome{Trace: sp.TraceName(), Accesses: 1}
		}
	}
	return results
}

// fixedClock is a deterministic envelope clock.
func fixedClock() func() time.Time {
	t0 := time.Date(2022, 6, 18, 0, 0, 0, 0, time.UTC) // ISCA'22
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t0 = t0.Add(time.Second)
		return t0
	}
}

func newTestServer(t *testing.T, fr SweepRunner, opts Options) *Server {
	t.Helper()
	opts.Clock = fixedClock()
	s := New(fr, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func post(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

// waitState polls until the job reaches state (the dispatcher is async).
func waitState(t *testing.T, s *Server, id, state string) *Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := s.Job(id); ok && j.State == state {
			return j
		}
		time.Sleep(time.Millisecond)
	}
	j, _ := s.Job(id)
	t.Fatalf("job %s never reached %s (now %+v)", id, state, j)
	return nil
}

func TestSubmitRunGet(t *testing.T) {
	s := newTestServer(t, &fakeRunner{}, Options{})
	h := s.Handler()

	w := post(t, h, `{"specs": [{"app": "kafka"}, {"app": "mysql", "policy": "srrip"}]}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, body %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var job Job
	if err := json.Unmarshal(w.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000001" || job.SubmittedAt.IsZero() {
		t.Fatalf("bad envelope: %+v", job)
	}
	if loc := w.Header().Get("Location"); loc != "/v1/jobs/job-000001" {
		t.Fatalf("location %q", loc)
	}

	done := waitState(t, s, job.ID, StateDone)
	if done.StartedAt == nil || done.FinishedAt == nil || done.Failed != 0 {
		t.Fatalf("finished envelope incomplete: %+v", done)
	}
	// Specs were normalized at submission: defaults explicit.
	if done.Specs[0].Policy != "lru" || done.Specs[0].BTBEntries != 8192 {
		t.Fatalf("specs not normalized: %+v", done.Specs[0])
	}

	w = get(t, h, "/v1/jobs/"+job.ID)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"results"`) {
		t.Fatalf("get = %d, body %s", w.Code, w.Body)
	}
	// Bare-array submission works too.
	if w := post(t, h, `[{"app": "python"}]`); w.Code != http.StatusAccepted {
		t.Fatalf("bare-array submit = %d, body %s", w.Code, w.Body)
	}
}

func TestListJobs(t *testing.T) {
	s := newTestServer(t, &fakeRunner{}, Options{})
	h := s.Handler()
	for _, app := range []string{"kafka", "mysql", "python"} {
		if w := post(t, h, `[{"app": "`+app+`"}]`); w.Code != http.StatusAccepted {
			t.Fatalf("submit %s = %d", app, w.Code)
		}
	}
	waitState(t, s, "job-000003", StateDone)
	var list []jobSummary
	if err := json.Unmarshal(get(t, h, "/v1/jobs").Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].ID != "job-000001" || list[2].ID != "job-000003" {
		t.Fatalf("list wrong: %+v", list)
	}
}

func TestMalformedSubmissions(t *testing.T) {
	s := newTestServer(t, &fakeRunner{}, Options{})
	h := s.Handler()
	cases := []struct {
		body string
		want string // substring of the error message
	}{
		{``, "empty body"},
		{`{"specs": []}`, "at least one spec"},
		{`not json`, "malformed specs"},
		{`[{"app": "kafka", "policy": "belady"}]`, `spec[0]: unknown policy "belady"`},
		{`[{"app": "kafka"}, {"app": "atlantis"}]`, `spec[1]: unknown app "atlantis"`},
		{`[{"app": "kafka", "polciy": "lru"}]`, "unknown field"},
		{`{"specs": [{"suite": "cbp5", "index": 100000}]}`, "out of range"},
	}
	for _, c := range cases {
		w := post(t, h, c.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", c.body, w.Code)
		}
		var e errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, c.want) {
			t.Errorf("body %q: error %q, want substring %q", c.body, e.Error, c.want)
		}
	}
	if w := get(t, h, "/v1/jobs/job-999999"); w.Code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", w.Code)
	}
	req := httptest.NewRequest("DELETE", "/v1/jobs", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE = %d, want 405", w.Code)
	}
}

func TestBackpressure429(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	s := newTestServer(t, fr, Options{QueueDepth: 2, Metrics: reg})
	h := s.Handler()

	// First job is dequeued and starts running (blocked on the gate); the
	// next two fill the depth-2 queue; the fourth must bounce with 429.
	if w := post(t, h, `[{"app": "kafka"}]`); w.Code != http.StatusAccepted {
		t.Fatalf("submit 0 = %d, body %s", w.Code, w.Body)
	}
	waitState(t, s, "job-000001", StateRunning)
	for i := 1; i < 3; i++ {
		if w := post(t, h, `[{"app": "kafka"}]`); w.Code != http.StatusAccepted {
			t.Fatalf("submit %d = %d, body %s", i, w.Code, w.Body)
		}
	}
	w := post(t, h, `[{"app": "kafka"}]`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("queue overflow = %d, want 429 (body %s)", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if reg.Counter("thermod_jobs_rejected_queue_full").Value() == 0 {
		t.Error("rejection not counted")
	}

	close(fr.gate) // release; Cleanup's Shutdown drains the rest
}

func TestGracefulDrain(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s := newTestServer(t, fr, Options{})
	h := s.Handler()

	post(t, h, `[{"app": "kafka"}]`)             // will run, blocked on gate
	post(t, h, `[{"app": "mysql", "scale": 4}]`) // queued behind it
	waitState(t, s, "job-000001", StateRunning)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Draining flips synchronously-ish; poll then verify 503.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w := post(t, h, `[{"app": "python"}]`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503 (body %s)", w.Code, w.Body)
	}

	close(fr.gate) // in-flight job finishes; queued job runs and finishes
	if err := <-shutdownErr; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	for _, id := range []string{"job-000001", "job-000002"} {
		j, _ := s.Job(id)
		if j.State != StateDone {
			t.Errorf("%s = %s after drain, want done", id, j.State)
		}
	}
}

func TestDrainDeadlineCancels(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})} // never closed: job hangs until ctx cancel
	s := New(fr, Options{Clock: fixedClock()})
	h := s.Handler()
	post(t, h, `[{"app": "kafka"}]`)
	waitState(t, s, "job-000001", StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	j, _ := s.Job("job-000001")
	if j.State != StateCanceled {
		t.Fatalf("hung job state = %s, want canceled", j.State)
	}
	if len(j.Results) != 1 || !strings.Contains(j.Results[0].Err, "canceled") {
		t.Fatalf("canceled job results: %+v", j.Results)
	}
}

// TestEngineIntegration runs the real engine under the server once: a tiny
// sweep through HTTP, results retrieved with outcomes attached.
func TestEngineIntegration(t *testing.T) {
	eng := &runner.Engine{Workers: 2}
	s := newTestServer(t, eng, Options{})
	h := s.Handler()
	w := post(t, h, `[{"app": "python", "scale": 64}, {"app": "python", "scale": 64, "policy": "srrip"}]`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, body %s", w.Code, w.Body)
	}
	j := waitState(t, s, "job-000001", StateDone)
	if j.Failed != 0 || len(j.Results) != 2 {
		t.Fatalf("integration job: %+v", j)
	}
	for _, r := range j.Results {
		if r.Outcome == nil || r.Outcome.IPC <= 0 {
			t.Fatalf("result missing outcome: %+v", r)
		}
	}
}
