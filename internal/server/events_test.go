package server

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/telemetry/span"
)

// progressRunner is a SweepRunner + ProgressRunner fake: it emits the
// started/terminal notification pair per spec and, when step is non-nil,
// waits for one step token before completing each spec — letting tests
// freeze a sweep mid-flight.
type progressRunner struct {
	step chan struct{}
}

func (f *progressRunner) Sweep(ctx context.Context, specs []runner.Spec) []runner.Result {
	return f.SweepProgress(ctx, specs, nil)
}

func (f *progressRunner) SweepProgress(ctx context.Context, specs []runner.Spec, fn func(runner.Progress)) []runner.Result {
	results := make([]runner.Result, len(specs))
	for i, sp := range specs {
		if fn != nil {
			fn(runner.Progress{Index: i, State: runner.ProgressStarted})
		}
		if f.step != nil {
			select {
			case <-f.step:
			case <-ctx.Done():
			}
		}
		results[i] = runner.Result{Spec: sp, Key: sp.Key()}
		p := runner.Progress{Index: i, Key: results[i].Key}
		if ctx.Err() != nil {
			results[i].Err = "canceled: " + ctx.Err().Error()
			p.State = runner.ProgressCanceled
			p.Err = results[i].Err
		} else {
			results[i].Outcome = &runner.Outcome{Trace: sp.TraceName(), Accesses: 1000, Instructions: 5000}
			p.State = runner.ProgressDone
			p.Accesses = 1000
			p.Instructions = 5000
		}
		if fn != nil {
			fn(p)
		}
	}
	return results
}

// sseClient connects to a job's event stream over a real HTTP server and
// parses frames into JobEvents on a channel.
type sseClient struct {
	events <-chan JobEvent
	ended  <-chan struct{}
	cancel context.CancelFunc
}

func dialSSE(t *testing.T, baseURL, jobID, lastEventID string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("content-type %q", ct)
	}
	events := make(chan JobEvent, 64)
	ended := make(chan struct{})
	go func() {
		defer resp.Body.Close()
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var evType, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				evType = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if evType == "end" {
					close(ended)
					return
				}
				if data != "" {
					var ev JobEvent
					if json.Unmarshal([]byte(data), &ev) == nil {
						events <- ev
					}
				}
				evType, data = "", ""
			}
		}
	}()
	return &sseClient{events: events, ended: ended, cancel: cancel}
}

func (c *sseClient) next(t *testing.T) JobEvent {
	t.Helper()
	select {
	case ev, ok := <-c.events:
		if !ok {
			t.Fatal("event stream closed early")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for SSE event")
	}
	return JobEvent{}
}

func (c *sseClient) waitEnd(t *testing.T) {
	t.Helper()
	select {
	case <-c.ended:
	case <-time.After(5 * time.Second):
		t.Fatal("stream never ended")
	}
}

// TestSSEMidSweep connects while a sweep is frozen mid-flight: the client
// must replay the events so far, then receive the remainder live and a
// clean end-of-stream after the terminal state.
func TestSSEMidSweep(t *testing.T) {
	fr := &progressRunner{step: make(chan struct{})}
	s := newTestServer(t, fr, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if w := post(t, s.Handler(), `[{"app":"kafka"},{"app":"mysql"},{"app":"python"}]`); w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	waitState(t, s, "job-000001", StateRunning)

	c := dialSSE(t, ts.URL, "job-000001", "")
	defer c.cancel()
	// Replayed prefix: queued, running, spec-0 started.
	if ev := c.next(t); ev.Type != "state" || ev.State != StateQueued || ev.Seq != 0 {
		t.Fatalf("event 0: %+v", ev)
	}
	if ev := c.next(t); ev.Type != "state" || ev.State != StateRunning {
		t.Fatalf("event 1: %+v", ev)
	}
	if ev := c.next(t); ev.Type != "progress" || ev.Progress.Index != 0 || ev.Progress.State != "started" {
		t.Fatalf("event 2: %+v", ev)
	}

	// Release the three specs and follow the live tail.
	for i := 0; i < 3; i++ {
		fr.step <- struct{}{}
	}
	done := 0
	for {
		ev := c.next(t)
		if ev.Type == "state" {
			if ev.State != StateDone {
				t.Fatalf("unexpected state event: %+v", ev)
			}
			break
		}
		if ev.Progress == nil {
			t.Fatalf("progress event without payload: %+v", ev)
		}
		if ev.Progress.State == "done" {
			done++
			if ev.Progress.Done != done || ev.Progress.Total != 3 {
				t.Fatalf("done/total = %d/%d after %d completions", ev.Progress.Done, ev.Progress.Total, done)
			}
			if ev.Progress.BlocksPerSec <= 0 {
				t.Fatalf("no throughput on completed spec: %+v", ev.Progress)
			}
		}
	}
	if done != 3 {
		t.Fatalf("saw %d spec completions, want 3", done)
	}
	c.waitEnd(t)
}

// TestSSEReplayCompletedJob pins that connecting after a job has finished
// replays its whole event log — with dense sequence numbers — and closes.
func TestSSEReplayCompletedJob(t *testing.T) {
	s := newTestServer(t, &progressRunner{}, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, s.Handler(), `[{"app":"kafka"},{"app":"mysql"}]`)
	waitState(t, s, "job-000001", StateDone)

	c := dialSSE(t, ts.URL, "job-000001", "")
	defer c.cancel()
	// queued + running + 2×(started+done) + done = 7 events.
	var got []JobEvent
	for i := 0; i < 7; i++ {
		got = append(got, c.next(t))
	}
	c.waitEnd(t)
	for i, ev := range got {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d (log not dense): %+v", i, ev.Seq, got)
		}
	}
	if got[0].State != StateQueued || got[6].State != StateDone {
		t.Fatalf("replayed log endpoints: %+v … %+v", got[0], got[6])
	}

	// Resume: Last-Event-ID 4 replays only 5 and 6.
	c2 := dialSSE(t, ts.URL, "job-000001", "4")
	defer c2.cancel()
	if ev := c2.next(t); ev.Seq != 5 {
		t.Fatalf("resume started at seq %d, want 5", ev.Seq)
	}
	if ev := c2.next(t); ev.Seq != 6 || ev.State != StateDone {
		t.Fatalf("resume tail: %+v", ev)
	}
	c2.waitEnd(t)

	if w := get(t, s.Handler(), "/v1/jobs/job-999999/events"); w.Code != http.StatusNotFound {
		t.Fatalf("events of unknown job = %d, want 404", w.Code)
	}
}

// TestSSEDisconnectDoesNotBlockDispatcher kills the streaming client while
// the sweep is frozen, then lets the sweep finish: the dispatcher must
// complete the job (and a later one) even though nobody is reading events,
// and the dead client's watcher must be reaped.
func TestSSEDisconnectDoesNotBlockDispatcher(t *testing.T) {
	fr := &progressRunner{step: make(chan struct{})}
	s := newTestServer(t, fr, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, s.Handler(), `[{"app":"kafka"},{"app":"mysql"}]`)
	waitState(t, s, "job-000001", StateRunning)

	c := dialSSE(t, ts.URL, "job-000001", "")
	c.next(t)  // prove the stream is live…
	c.cancel() // …then vanish without consuming the rest

	// The dispatcher keeps appending events with nobody reading. If any
	// notify were blocking, these sends would hang and the test would time
	// out.
	for i := 0; i < 2; i++ {
		select {
		case fr.step <- struct{}{}:
		case <-time.After(5 * time.Second):
			t.Fatal("dispatcher blocked after client disconnect")
		}
	}
	waitState(t, s, "job-000001", StateDone)

	// A follow-up job flows through untouched.
	fr.step = nil
	post(t, s.Handler(), `[{"app":"python"}]`)
	waitState(t, s, "job-000002", StateDone)

	// The disconnected watcher unregisters (poll: the cancel is async).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.watchers)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("watcher leaked after client disconnect")
}

// TestServerSpans checks the serving-side lifecycle spans: http_accept,
// queue_wait, sweep, and the job root, all with IDs derived from the job ID.
func TestServerSpans(t *testing.T) {
	tr := span.New(func() int64 { return 0 }, 64) // server spans carry their own times
	s := newTestServer(t, &progressRunner{}, Options{Spans: tr})
	post(t, s.Handler(), `[{"app":"kafka"}]`)
	waitState(t, s, "job-000001", StateDone)

	byName := map[string]span.Span{}
	for _, sp := range tr.Spans() {
		byName[sp.Name] = sp
	}
	root := span.Derive("job-000001", "job")
	for _, name := range []string{"http_accept", "queue_wait", "sweep", "job"} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("missing span %q (have %v)", name, tr.Spans())
		}
		if sp.Trace != span.Derive("job-000001") || sp.ID != span.Derive("job-000001", name) {
			t.Fatalf("span %q identity: %+v", name, sp)
		}
		if name != "job" && sp.Parent != root {
			t.Fatalf("span %q not parented to job root: %+v", name, sp)
		}
	}
	// fixedClock ticks 1s per read: queue_wait and sweep have positive,
	// envelope-consistent durations.
	if byName["sweep"].Dur <= 0 || byName["queue_wait"].Dur < 0 {
		t.Fatalf("span durations: sweep=%d queue_wait=%d", byName["sweep"].Dur, byName["queue_wait"].Dur)
	}
}

// TestSSEHostileLastEventID resumes with Last-Event-ID values crafted to
// overflow the cursor arithmetic (MaxInt → cursor wraps negative → the
// log[seq:] reslice panics) or to be negative outright. The server must
// treat both as "replay from the start" instead of crashing the handler.
func TestSSEHostileLastEventID(t *testing.T) {
	s := newTestServer(t, &progressRunner{}, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, s.Handler(), `[{"app":"kafka"}]`)
	waitState(t, s, "job-000001", StateDone)

	// MaxInt would make cursor = n+1 wrap negative; negative and garbage
	// values are rejected by parsing. All three must fall back to a full
	// replay.
	for _, lei := range []string{strconv.Itoa(math.MaxInt), "-7", "junk"} {
		c := dialSSE(t, ts.URL, "job-000001", lei)
		// queued + running + started + done(progress) + done(state) = 5 events.
		if ev := c.next(t); ev.Seq != 0 {
			t.Fatalf("Last-Event-ID %q: first replayed seq = %d, want 0", lei, ev.Seq)
		}
		for i := 0; i < 4; i++ {
			c.next(t)
		}
		c.waitEnd(t)
		c.cancel()
	}

	// A huge but in-range ID is past the end of the log: nothing to replay,
	// clean end-of-stream, no panic.
	c := dialSSE(t, ts.URL, "job-000001", strconv.Itoa(math.MaxInt-1))
	c.waitEnd(t)
	c.cancel()
}

// TestSSEKeepAlive freezes a sweep and watches the raw byte stream: an idle
// connection must receive ": keepalive" comment frames, and because comments
// carry no id: line they must not disturb Last-Event-ID resume afterwards.
func TestSSEKeepAlive(t *testing.T) {
	fr := &progressRunner{step: make(chan struct{})}
	s := newTestServer(t, fr, Options{KeepAlive: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, s.Handler(), `[{"app":"kafka"}]`)
	waitState(t, s, "job-000001", StateRunning)

	// Read the stream raw: dialSSE's parser skips comments by design, and
	// this test is about the bytes on the wire.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/job-000001/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	keepalives, maxSeq := 0, -1
	deadline := time.After(5 * time.Second)
	for keepalives < 3 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before any keepalive")
			}
			if line == ": keepalive" {
				keepalives++
			}
			if n, found := strings.CutPrefix(line, "id: "); found {
				seq, err := strconv.Atoi(n)
				if err != nil {
					t.Fatalf("malformed id line %q", line)
				}
				maxSeq = seq
			}
		case <-deadline:
			t.Fatalf("saw only %d keepalives on an idle stream", keepalives)
		}
	}
	// The frozen sweep emitted exactly queued, running, spec-0 started — the
	// keepalives must not have minted any event IDs beyond that.
	if maxSeq != 2 {
		t.Fatalf("idle stream advanced the event log: max seq %d, want 2", maxSeq)
	}
	cancel()

	// Finish the job, then resume from mid-log: the replay must pick up at
	// exactly seq 3 — keepalive comments left no trace in the sequence space.
	fr.step <- struct{}{}
	waitState(t, s, "job-000001", StateDone)
	c := dialSSE(t, ts.URL, "job-000001", "2")
	defer c.cancel()
	if ev := c.next(t); ev.Seq != 3 || ev.Progress == nil || ev.Progress.State != "done" {
		t.Fatalf("resume after keepalives: %+v", ev)
	}
	if ev := c.next(t); ev.Seq != 4 || ev.State != StateDone {
		t.Fatalf("resume tail: %+v", ev)
	}
	c.waitEnd(t)
}
