package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"thermometer/internal/runner"
)

// TestHealthzAlwaysOK pins liveness: healthz stays 200 before, during, and
// after a drain — the process is alive the whole time.
func TestHealthzAlwaysOK(t *testing.T) {
	fr := &fakeRunner{}
	s := newTestServer(t, fr, Options{})
	if w := get(t, s.Healthz(), "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if w := get(t, s.Healthz(), "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz after drain = %d, want 200", w.Code)
	}
}

// TestReadyzFlipsOnDrainStart pins the readiness contract: /readyz answers
// 200 while the server accepts work and 503 the moment the drain begins —
// while queued sweeps are still flushing, before the listener would close —
// matching the instant Submit starts returning ErrDraining.
func TestReadyzFlipsOnDrainStart(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s := newTestServer(t, fr, Options{})
	w := get(t, s.Readyz(), "/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("readyz while serving = %d, want 200", w.Code)
	}
	var body struct{ Status string }
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Status != "ok" {
		t.Fatalf("readyz body = %q (err %v), want status ok", w.Body.String(), err)
	}

	// Park a sweep on the gate so the drain has in-flight work, then start
	// the shutdown. Readiness must flip before the drain finishes.
	if _, err := s.Submit([]runner.Spec{{App: "kafka"}}); err != nil {
		t.Fatal(err)
	}
	drainDone := make(chan error, 1)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	go func() { drainDone <- s.Shutdown(drainCtx) }()

	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	if w := get(t, s.Readyz(), "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", w.Code)
	}
	if _, err := s.Submit([]runner.Spec{{App: "kafka"}}); err != ErrDraining {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
	close(fr.gate) // release the parked sweep so the drain completes
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if w := get(t, s.Readyz(), "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503 (still not accepting work)", w.Code)
	}
}

// TestReadyFunc pins the adapter thermod's worker mode uses.
func TestReadyFunc(t *testing.T) {
	ready := false
	h := ReadyFunc(func() bool { return ready }, "not registered")
	if w := get(t, h, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unready = %d, want 503", w.Code)
	}
	ready = true
	if w := get(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("ready = %d, want 200", w.Code)
	}
}
