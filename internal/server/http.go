package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"thermometer/internal/runner"
)

// API shapes. POST /v1/jobs accepts either a bare JSON array of specs or
// this envelope.
type submitRequest struct {
	Specs []runner.Spec `json:"specs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// jobSummary is the list-view projection of a Job (no specs/results).
type jobSummary struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	SubmittedAt string `json:"submitted_at"`
	Specs       int    `json:"specs"`
	Failed      int    `json:"failed,omitempty"`
}

// maxBodyBytes bounds a submission body; a 4096-spec grid of explicit
// configs fits comfortably.
const maxBodyBytes = 8 << 20

// Handler returns the daemon's job API:
//
//	POST /v1/jobs             submit a sweep    → 202 job envelope
//	GET  /v1/jobs             list jobs         → 200 [summaries]
//	GET  /v1/jobs/{id}        status + results  → 200 job envelope
//	GET  /v1/jobs/{id}/events live progress     → 200 SSE stream
//
// Backpressure: 429 with Retry-After when the queue is full; 503 while
// draining. Malformed submissions get 400 with a message naming the
// failing spec index and field.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return mux
}

// ServeHTTP implements http.Handler so the server can be mounted directly
// (telemetry.Mount hands the whole /v1/jobs subtree here).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.Handler().ServeHTTP(w, r)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	accepted := s.opts.Clock().UTC()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds 8 MiB")
		return
	}
	specs, err := decodeSpecs(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := s.Submit(specs)
	switch {
	case err == nil:
		s.recordSpan(job.ID, "http_accept", accepted, s.opts.Clock().UTC(), "")
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// decodeSpecs accepts `[{...}, ...]` or `{"specs": [{...}, ...]}`, both
// with unknown fields rejected so config typos fail loudly instead of
// silently running a default simulation.
func decodeSpecs(body []byte) ([]runner.Spec, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, errors.New("empty body: POST a JSON array of specs or {\"specs\": [...]}")
	}
	if trimmed[0] == '[' {
		var specs []runner.Spec
		if err := strictUnmarshal(body, &specs); err != nil {
			return nil, err
		}
		return specs, nil
	}
	var req submitRequest
	if err := strictUnmarshal(body, &req); err != nil {
		return nil, err
	}
	return req.Specs, nil
}

func strictUnmarshal(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errors.New("malformed specs: " + err.Error())
	}
	return nil
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	summaries := make([]jobSummary, len(jobs))
	for i, j := range jobs {
		summaries[i] = jobSummary{
			ID:          j.ID,
			State:       j.State,
			SubmittedAt: j.SubmittedAt.Format("2006-01-02T15:04:05.000Z07:00"),
			Specs:       len(j.Specs),
			Failed:      j.Failed,
		}
	}
	writeJSON(w, http.StatusOK, summaries)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
