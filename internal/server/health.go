package server

import "net/http"

// healthBody keeps the probe payloads constant-shaped for scrapers.
type healthBody struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// Healthz returns the liveness probe: 200 for as long as the process can
// serve HTTP at all — including during a drain, when the daemon is still
// alive and flushing queued sweeps. Fleet orchestrators restart on liveness
// failure, so this must not flip on shutdown.
func (s *Server) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, healthBody{Status: "ok"})
	})
}

// Readyz returns the readiness probe: 200 while the server accepts new
// submissions, 503 from the moment Shutdown begins the drain — before the
// listener closes — so load balancers and fleet orchestrators stop routing
// new sweeps to a daemon that would answer them with ErrDraining.
func (s *Server) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "draining", Reason: "shutdown in progress; new submissions are rejected"})
			return
		}
		writeJSON(w, http.StatusOK, healthBody{Status: "ok"})
	})
}

// ReadyFunc adapts any readiness predicate into a /readyz-shaped handler;
// thermod's worker mode uses it with the fabric worker's registration
// state.
func ReadyFunc(ready func() bool, notReadyReason string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if !ready() {
			writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "unready", Reason: notReadyReason})
			return
		}
		writeJSON(w, http.StatusOK, healthBody{Status: "ok"})
	})
}
