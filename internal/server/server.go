// Package server is the job-management core of the thermod simulation
// daemon: it accepts sweep submissions (lists of runner.Spec), queues them
// with bounded depth, executes them one sweep at a time on a runner
// engine (which parallelizes the jobs within each sweep), and retains the
// results for retrieval.
//
// The package owns every timestamp in the system: job envelopes carry
// submitted/started/finished times from an injectable clock, while the
// runner layer below stays timestamp-free so its results remain cacheable.
// That split is why this package is exempt from the thermolint noambient
// analyzer and internal/runner is not.
package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"thermometer/internal/runner"
	"thermometer/internal/telemetry"
	"thermometer/internal/telemetry/span"
)

// SweepRunner executes one sweep; *runner.Engine is the production
// implementation. Implementations must return one result per spec, in
// order, and honor context cancellation between jobs.
type SweepRunner interface {
	Sweep(ctx context.Context, specs []runner.Spec) []runner.Result
}

// ProgressRunner is the optional streaming extension of SweepRunner:
// runners that also implement it (runner.Engine does) feed the per-spec
// lifecycle notifications behind the jobs SSE stream and the /debug/sweep
// dashboard. Plain SweepRunners still work — their jobs just report only
// job-level state transitions.
type ProgressRunner interface {
	SweepProgress(ctx context.Context, specs []runner.Spec, fn func(runner.Progress)) []runner.Result
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled" // drain deadline hit while queued/running
)

// Job is one submitted sweep and its lifecycle envelope. Timestamps live
// here — and only here: the runner's results underneath are a pure
// function of the specs.
type Job struct {
	ID    string `json:"id"`
	State string `json:"state"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	Specs   []runner.Spec   `json:"specs"`
	Results []runner.Result `json:"results,omitempty"`

	// Failed counts results with a non-empty error (set when finished).
	Failed int `json:"failed,omitempty"`
}

// clone returns a copy safe to marshal outside the server lock.
func (j *Job) clone() *Job {
	c := *j
	return &c
}

// Options configures New.
type Options struct {
	// QueueDepth bounds the number of sweeps queued behind the running
	// one; submissions beyond it are rejected with ErrQueueFull (HTTP
	// 429). Default 16.
	QueueDepth int
	// MaxSpecs bounds the grid size of one submission. Default 4096.
	MaxSpecs int
	// Clock supplies envelope timestamps (nil = time.Now). Tests inject a
	// fixed clock for deterministic envelopes.
	Clock func() time.Time
	// Metrics, when non-nil, receives thermod_* serving metrics.
	Metrics *telemetry.Registry
	// Spans, when non-nil, receives serving-side lifecycle spans per job:
	// http_accept (decode+validate+enqueue), queue_wait (submit→dispatch),
	// and sweep (dispatch→finish) under a root job span, with IDs derived
	// from the job ID so repeat submissions trace identically.
	Spans *span.Tracer
	// KeepAlive is the idle interval after which the jobs SSE stream emits a
	// ": keepalive" comment so proxies and load balancers don't reap quiet
	// connections (long sweeps can go minutes between events). Comments carry
	// no id: line, so they are invisible to Last-Event-ID resume. <= 0 means
	// the 15s default.
	KeepAlive time.Duration
}

// Sentinel submission failures; the HTTP layer maps them to status codes.
var (
	ErrQueueFull = fmt.Errorf("job queue full")
	ErrDraining  = fmt.Errorf("server draining")
)

// Server queues and runs sweeps. Create with New, stop with Shutdown.
type Server struct {
	runner SweepRunner
	opts   Options

	mu       sync.Mutex
	jobs     map[string]*Job // guarded by mu
	order    []string        // guarded by mu; submission order, for listing
	queue    chan *Job
	draining bool // guarded by mu
	seq      int  // guarded by mu

	// Per-job append-only event logs and their SSE watchers; progStart/
	// progDone track the running job's per-spec wall times (the dispatcher
	// runs one sweep at a time, so one set of slots suffices).
	events     map[string][]JobEvent            // guarded by mu
	watchers   map[string]map[int]chan struct{} // guarded by mu
	watcherSeq int                              // guarded by mu
	progStart  map[int]time.Time                // guarded by mu
	progDone   int                              // guarded by mu

	runCtx    context.Context
	runCancel context.CancelFunc
	done      chan struct{}
}

// New returns a serving Server; its dispatcher goroutine runs until
// Shutdown.
func New(r SweepRunner, opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.MaxSpecs <= 0 {
		opts.MaxSpecs = 4096
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.KeepAlive <= 0 {
		opts.KeepAlive = 15 * time.Second
	}
	s := &Server{
		runner:    r,
		opts:      opts,
		jobs:      make(map[string]*Job),
		queue:     make(chan *Job, opts.QueueDepth),
		done:      make(chan struct{}),
		events:    make(map[string][]JobEvent),
		watchers:  make(map[string]map[int]chan struct{}),
		progStart: make(map[int]time.Time),
	}
	if m := opts.Metrics; m != nil {
		// Pre-register the serving surface so a fresh daemon's /metrics
		// lists every thermod_* metric before the first submission.
		for _, name := range []string{
			"thermod_jobs_submitted", "thermod_jobs_completed",
			"thermod_jobs_rejected_queue_full", "thermod_jobs_rejected_draining",
		} {
			m.Counter(name)
		}
		m.Gauge("thermod_queue_depth").Set(0)
	}
	//lint:allow ctxflow the dispatcher outlives any one request; Shutdown cancels this root
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	go s.dispatch()
	return s
}

// Submit validates and enqueues a sweep, returning the queued job
// envelope. Errors: ErrDraining after Shutdown began, ErrQueueFull at
// queue capacity, and spec validation errors (with the failing index).
func (s *Server) Submit(specs []runner.Spec) (*Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty sweep: submit at least one spec")
	}
	if len(specs) > s.opts.MaxSpecs {
		return nil, fmt.Errorf("sweep of %d specs exceeds the %d-spec limit", len(specs), s.opts.MaxSpecs)
	}
	normalized := make([]runner.Spec, len(specs))
	for i, sp := range specs {
		n, err := sp.Normalized()
		if err != nil {
			return nil, fmt.Errorf("spec[%d]: %w", i, err)
		}
		normalized[i] = n
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.count("thermod_jobs_rejected_draining")
		return nil, ErrDraining
	}
	s.seq++
	job := &Job{
		ID:          fmt.Sprintf("job-%06d", s.seq),
		State:       StateQueued,
		SubmittedAt: s.opts.Clock().UTC(),
		Specs:       normalized,
	}
	select {
	case s.queue <- job:
	default:
		s.seq-- // ID not consumed
		s.count("thermod_jobs_rejected_queue_full")
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.appendEventLocked(job.ID, JobEvent{Time: job.SubmittedAt, Type: "state", State: StateQueued})
	s.count("thermod_jobs_submitted")
	s.setQueueGauge()
	return job.clone(), nil
}

// dispatch runs queued sweeps strictly in submission order, one at a time;
// within a sweep the engine fans jobs out across its worker pool. Each
// transition lands in the job's event log (driving the SSE stream), and the
// span tracer receives the queue_wait and sweep stages of the job's
// lifecycle trace.
func (s *Server) dispatch() {
	defer close(s.done)
	for job := range s.queue {
		now := s.opts.Clock().UTC()
		s.mu.Lock()
		job.State = StateRunning
		job.StartedAt = &now
		s.progDone = 0
		clear(s.progStart)
		s.appendEventLocked(job.ID, JobEvent{Time: now, Type: "state", State: StateRunning})
		s.setQueueGauge()
		s.mu.Unlock()
		s.recordSpan(job.ID, "queue_wait", job.SubmittedAt, now, "")

		var results []runner.Result
		total := len(job.Specs)
		if pr, ok := s.runner.(ProgressRunner); ok {
			results = pr.SweepProgress(s.runCtx, job.Specs, func(p runner.Progress) {
				s.recordProgress(job.ID, total, p)
			})
		} else {
			results = s.runner.Sweep(s.runCtx, job.Specs)
		}

		end := s.opts.Clock().UTC()
		failed := 0
		for _, r := range results {
			if r.Err != "" {
				failed++
			}
		}
		state := StateDone
		if s.runCtx.Err() != nil {
			state = StateCanceled
		}
		s.mu.Lock()
		job.Results = results
		job.Failed = failed
		job.FinishedAt = &end
		job.State = state
		s.appendEventLocked(job.ID, JobEvent{Time: end, Type: "state", State: state})
		s.mu.Unlock()
		s.recordSpan(job.ID, "sweep", now, end, state)
		s.recordSpan(job.ID, "job", job.SubmittedAt, end, state)
		s.count("thermod_jobs_completed")
		if m := s.opts.Metrics; m != nil {
			m.Histogram("thermod_sweep_latency_ms").Observe(uint64(end.Sub(now).Milliseconds()))
		}
	}
}

// recordSpan emits one serving-side span with caller-computed endpoints.
// The root "job" span carries an empty parent; every other stage hangs off
// it. IDs derive from the job ID, so a repeat of the same submission
// sequence traces identically under a deterministic clock.
func (s *Server) recordSpan(jobID, name string, start, end time.Time, detail string) {
	t := s.opts.Spans
	if t == nil {
		return
	}
	var parent span.ID
	if name != "job" {
		parent = span.Derive(jobID, "job")
	}
	t.Record(span.Span{
		Trace:  span.Derive(jobID),
		ID:     span.Derive(jobID, name),
		Parent: parent,
		Name:   name,
		Detail: detail,
		Start:  start.UnixNano(),
		Dur:    end.Sub(start).Nanoseconds(),
	})
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id].clone()
	}
	return out
}

// Shutdown drains the server: new submissions are rejected with
// ErrDraining immediately, queued and running sweeps are given until the
// context deadline to finish, then the engine context is canceled so
// not-yet-started jobs fail fast as "canceled". It returns nil on a clean
// drain, the context's error otherwise (pending work is still flushed —
// as canceled results — before return).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.draining = true
	close(s.queue) // dispatcher exits after draining remaining jobs
	s.mu.Unlock()

	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		s.runCancel() // running simulations finish; pending jobs cancel fast
		<-s.done
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) count(name string) {
	if s.opts.Metrics != nil {
		s.opts.Metrics.Counter(name).Inc()
	}
}

// setQueueGauge publishes queued-sweep depth; callers hold s.mu.
func (s *Server) setQueueGauge() {
	if s.opts.Metrics != nil {
		s.opts.Metrics.Gauge("thermod_queue_depth").Set(uint64(len(s.queue)))
	}
}
