package server

import "net/http"

// Dashboard returns the /debug/sweep handler: a self-contained HTML page
// that polls the jobs API for the job list and follows the selected job's
// SSE stream, rendering the per-spec state grid (queued → running →
// done/cached/failed), live blocks/sec, and per-spec durations — so a long
// sweep renders progressively instead of going dark until aggregation.
//
// When the daemon runs as a fleet coordinator the page also polls
// GET /fabric/v1/state and renders the fleet panel: per-worker assignment,
// heartbeat age, and steal/requeue counts. On a single-node daemon that
// endpoint 404s and the panel stays hidden.
//
// The page is static: all data flows through the same public endpoints a
// curl user sees (GET /v1/jobs, GET /v1/jobs/{id}, the events stream, and
// GET /fabric/v1/state), so the dashboard adds no server state and no extra
// locking.
func (s *Server) Dashboard() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
}

const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>thermod sweep dashboard</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.5rem; max-width: 72rem; }
  h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin: 1.2rem 0 .4rem; }
  table { border-collapse: collapse; }
  td, th { padding: .15rem .6rem; text-align: left; border-bottom: 1px solid #8884; }
  tr.sel { outline: 2px solid #08f8; cursor: pointer; }
  tr.job { cursor: pointer; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, 16px); gap: 2px; }
  #grid div { width: 16px; height: 16px; border-radius: 3px; background: #8883; }
  .queued   { background: #8883 !important; }
  .started  { background: #e6a700 !important; }
  .done     { background: #2da44e !important; }
  .cached   { background: #1f7fd1 !important; }
  .failed, .invalid { background: #d1242f !important; }
  .canceled { background: #6e40c9 !important; }
  #bar { height: 6px; background: #8883; border-radius: 3px; margin: .4rem 0; max-width: 40rem; }
  #bar div { height: 100%; background: #2da44e; border-radius: 3px; width: 0; }
  #stats { color: #888; }
  .legend span { display: inline-block; width: 12px; height: 12px; border-radius: 3px;
                 margin: 0 .25rem 0 .8rem; vertical-align: -1px; }
</style>
</head>
<body>
<h1>thermod sweep dashboard</h1>
<div class="legend">queued<span class="queued"></span> running<span class="started"></span>
done<span class="done"></span> cached<span class="cached"></span>
failed<span class="failed"></span> canceled<span class="canceled"></span></div>
<h2 id="fleettitle" hidden>fleet</h2>
<div id="fleetstats" hidden></div>
<table id="fleet" hidden><thead><tr>
<th>worker</th><th>name</th><th>state</th><th>beat age</th><th>active</th>
<th>done</th><th>failed</th><th>steals</th><th>stolen</th><th>requeued</th>
</tr></thead><tbody></tbody></table>
<h2>jobs</h2>
<table id="jobs"><thead><tr>
<th>id</th><th>state</th><th>specs</th><th>failed</th><th>submitted</th>
</tr></thead><tbody></tbody></table>
<h2 id="title">no job selected</h2>
<div id="bar"><div></div></div>
<div id="stats"></div>
<div id="grid"></div>
<h2 id="hqtitle" hidden>hint quality</h2>
<table id="hq" hidden><thead><tr>
<th>spec</th><th>trace</th><th>policy</th><th>coverage</th><th>accuracy</th>
<th>over</th><th>under</th><th>drift</th>
</tr></thead><tbody></tbody></table>
<table id="log"><tbody></tbody></table>
<script>
let selected = null, source = null, cells = [];

// All event/job fields render through textContent (never innerHTML):
// p.error echoes submitter-controlled spec text, so interpolating it as
// markup would be stored XSS for anyone viewing this page.
function rowOf(texts, classes) {
  const tr = document.createElement('tr');
  texts.forEach((t, i) => {
    const td = document.createElement('td');
    td.textContent = t;
    if (classes && classes[i]) td.className = classes[i];
    tr.appendChild(td);
  });
  return tr;
}

async function refreshJobs() {
  const res = await fetch('/v1/jobs');
  if (!res.ok) return;
  const jobs = await res.json();
  const tbody = document.querySelector('#jobs tbody');
  tbody.innerHTML = '';
  for (const j of jobs) {
    const tr = rowOf([j.id, j.state, j.specs, j.failed || 0, j.submitted_at],
      [null, j.state]);
    tr.className = 'job' + (j.id === selected ? ' sel' : '');
    tr.onclick = () => select(j.id);
    tbody.appendChild(tr);
  }
  // Auto-follow: with nothing selected, attach to the most recent job.
  if (!selected && jobs.length) select(jobs[jobs.length - 1].id);
}

async function select(id) {
  if (source) { source.close(); source = null; }
  selected = id;
  document.getElementById('title').textContent = id;
  document.querySelector('#log tbody').innerHTML = '';
  const res = await fetch('/v1/jobs/' + id);
  if (!res.ok) return;
  const job = await res.json();
  const grid = document.getElementById('grid');
  grid.innerHTML = '';
  cells = [];
  for (let i = 0; i < job.specs.length; i++) {
    const d = document.createElement('div');
    d.title = 'spec ' + i + ': ' + (job.specs[i].policy || 'lru') + ' / ' +
      (job.specs[i].app || job.specs[i].suite);
    grid.appendChild(d);
    cells.push(d);
  }
  renderHintQual(job);
  source = new EventSource('/v1/jobs/' + id + '/events');
  source.addEventListener('progress', e => applyProgress(JSON.parse(e.data)));
  source.addEventListener('state', e => applyState(JSON.parse(e.data)));
  source.addEventListener('end', () => { source.close(); source = null; });
}

// renderHintQual lists the hint-quality audit summaries of a finished job's
// results (specs submitted with "hintqual": true). Same textContent-only
// discipline as the rest of the page.
function renderHintQual(job) {
  const rows = [];
  (job.results || []).forEach((r, i) => {
    const hq = r.outcome && r.outcome.hintqual;
    if (!hq) return;
    rows.push([i, r.outcome.trace, r.spec.policy || 'lru',
      (100 * hq.coverage_accesses).toFixed(1) + '%',
      (100 * hq.accuracy_branches).toFixed(1) + '%',
      hq.over_predicted, hq.under_predicted,
      hq.drift_epochs + '/' + hq.windows + ' windows']);
  });
  const table = document.getElementById('hq');
  const title = document.getElementById('hqtitle');
  table.hidden = title.hidden = rows.length === 0;
  const tbody = table.querySelector('tbody');
  tbody.innerHTML = '';
  rows.forEach(cells => tbody.appendChild(rowOf(cells)));
}

function applyState(ev) {
  logLine(ev.time, 'job ' + ev.state);
  // Results (and their hint-quality summaries) land with the terminal state.
  if ((ev.state === 'done' || ev.state === 'canceled') && selected) {
    fetch('/v1/jobs/' + selected).then(r => r.ok ? r.json() : null)
      .then(job => { if (job && job.id === selected) renderHintQual(job); });
  }
}

function applyProgress(ev) {
  const p = ev.progress;
  if (!p || !cells[p.index]) return;
  let cls = p.state;
  if (p.state === 'done' && p.cached) cls = 'cached';
  cells[p.index].className = cls;
  if (p.state !== 'started') {
    const pct = p.total ? (100 * p.done / p.total) : 0;
    document.querySelector('#bar div').style.width = pct.toFixed(1) + '%';
    let line = 'spec ' + p.index + ' ' + cls;
    if (p.duration_ms) line += ' in ' + p.duration_ms.toFixed(1) + ' ms';
    if (p.blocks_per_sec) line += ' @ ' + (p.blocks_per_sec / 1e6).toFixed(2) + ' Mblocks/s';
    if (p.error) line += ' — ' + p.error;
    document.getElementById('stats').textContent =
      p.done + '/' + p.total + ' specs · last: ' + line;
    logLine(ev.time, line);
  }
}

function logLine(time, text) {
  const tbody = document.querySelector('#log tbody');
  tbody.insertBefore(rowOf([time, text]), tbody.firstChild);
  while (tbody.children.length > 50) tbody.removeChild(tbody.lastChild);
}

// refreshFleet polls the coordinator's fleet snapshot. Single-node daemons
// have no /fabric/v1/state, so the first 404 hides the panel for good.
let fleetGone = false;
async function refreshFleet() {
  if (fleetGone) return;
  let res;
  try { res = await fetch('/fabric/v1/state'); } catch { return; }
  if (res.status === 404) { fleetGone = true; return; }
  if (!res.ok) return;
  const snap = await res.json();
  for (const id of ['fleettitle', 'fleetstats', 'fleet'])
    document.getElementById(id).hidden = false;
  document.getElementById('fleetstats').textContent = snap.sweep
    ? snap.sweep + ': ' + snap.filled + '/' + snap.total + ' filled · ' +
      snap.pending + ' pending · ' + snap.outstanding + ' leased'
    : 'no sweep in flight';
  const tbody = document.querySelector('#fleet tbody');
  tbody.innerHTML = '';
  for (const w of snap.workers || []) {
    const state = w.dead ? 'dead' : 'live';
    tbody.appendChild(rowOf(
      [w.id, w.name || '', state, w.heartbeat_age_ms + ' ms', w.active,
       w.completed, w.failed || 0, w.steals || 0, w.stolen || 0, w.expired || 0],
      [null, null, w.dead ? 'failed' : 'done']));
  }
}

refreshJobs();
refreshFleet();
setInterval(refreshJobs, 2000);
setInterval(refreshFleet, 2000);
</script>
</body>
</html>
`
