package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"thermometer/internal/runner"
)

// JobEvent is one entry in a job's append-only event log: either a
// job-level state transition (queued → running → done/canceled) or a
// per-spec progress notification from the runner. Seq numbers are dense and
// start at 0, so an SSE client can resume from Last-Event-ID.
type JobEvent struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	Type  string    `json:"type"`            // "state" | "progress"
	State string    `json:"state,omitempty"` // job state, for "state" events

	Progress *SpecProgress `json:"progress,omitempty"` // for "progress" events
}

// SpecProgress is the per-spec payload of a progress event. Timestamps and
// rates are computed here, in the serving layer that owns the clock — the
// runner below reports only what happened, never when.
type SpecProgress struct {
	// Index is the spec's position in the submitted sweep.
	Index int `json:"index"`
	// State is a runner progress state: started, done, failed, invalid, or
	// canceled.
	State string `json:"state"`
	// Cached reports a content-addressed cache hit.
	Cached bool `json:"cached,omitempty"`
	// Err carries the failure reason for failed/invalid/canceled specs.
	Err string `json:"error,omitempty"`
	// DurationMs is wall time from this spec's started event (terminal
	// states only; 0 for cache hits that complete within clock resolution).
	DurationMs float64 `json:"duration_ms,omitempty"`
	// BlocksPerSec is simulated block throughput: BTB block lookups per
	// wall-clock second over this spec's run.
	BlocksPerSec float64 `json:"blocks_per_sec,omitempty"`
	// Done and Total report sweep completion: specs finished so far out of
	// the sweep size.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// appendEventLocked assigns the next sequence number, appends the event to
// the job's log, and nudges the job's watchers. Callers hold s.mu. The
// notification send is non-blocking — a slow or gone SSE client can never
// stall the dispatcher; the watcher re-reads the log from its cursor when
// it wakes.
func (s *Server) appendEventLocked(jobID string, ev JobEvent) {
	ev.Seq = len(s.events[jobID])
	s.events[jobID] = append(s.events[jobID], ev)
	for _, ch := range s.watchers[jobID] {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// watch registers an event watcher for a job: ch receives a (coalesced)
// nudge whenever the job's log grows. cancel unregisters; it is idempotent.
func (s *Server) watch(jobID string) (ch chan struct{}, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watcherSeq++
	id := s.watcherSeq
	ch = make(chan struct{}, 1)
	if s.watchers[jobID] == nil {
		s.watchers[jobID] = make(map[int]chan struct{})
	}
	s.watchers[jobID][id] = ch
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.watchers[jobID], id)
		if len(s.watchers[jobID]) == 0 {
			delete(s.watchers, jobID)
		}
	}
}

// eventsSince returns a copy of the job's events from seq onward plus
// whether the job has reached a terminal state. Terminal-state events are
// appended under the same lock as the state change, so once terminal is
// true and the log is drained there is nothing more to wait for.
func (s *Server) eventsSince(jobID string, seq int) (evs []JobEvent, terminal bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	log := s.events[jobID]
	if seq >= 0 && seq < len(log) {
		evs = append(evs, log[seq:]...)
	}
	j := s.jobs[jobID]
	terminal = j != nil && (j.State == StateDone || j.State == StateCanceled)
	return evs, terminal
}

// Events returns a copy of a job's full event log (tests and debug tooling;
// live consumers use the SSE stream).
func (s *Server) Events(jobID string) []JobEvent {
	evs, _ := s.eventsSince(jobID, 0)
	return evs
}

// recordProgress translates a runner progress notification into a job
// event, attaching wall-clock duration and block throughput from the
// envelope clock. It is called from engine worker goroutines.
func (s *Server) recordProgress(jobID string, total int, p runner.Progress) {
	now := s.opts.Clock().UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := &SpecProgress{Index: p.Index, State: p.State, Cached: p.Cached, Err: p.Err, Total: total}
	if p.State == runner.ProgressStarted {
		s.progStart[p.Index] = now
		sp.Done = s.progDone
	} else {
		s.progDone++
		sp.Done = s.progDone
		if start, ok := s.progStart[p.Index]; ok {
			d := now.Sub(start)
			sp.DurationMs = float64(d) / float64(time.Millisecond)
			if p.Accesses > 0 && d > 0 {
				sp.BlocksPerSec = float64(p.Accesses) / d.Seconds()
			}
			delete(s.progStart, p.Index)
		}
	}
	s.appendEventLocked(jobID, JobEvent{Time: now, Type: "progress", Progress: sp})
}

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent-Events stream of
// the job's event log. Already-recorded events (including those of long-
// finished jobs) are replayed first, then the stream follows the log live
// and closes after the terminal state event. Clients may resume with the
// standard Last-Event-ID header. The dispatcher never blocks on this
// handler: it only nudges a buffered channel, and the handler re-reads the
// shared log at its own pace.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, "no such job "+id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	cursor := 0
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		// n+1 must not wrap: a hostile Last-Event-ID of MaxInt would turn
		// the cursor negative and index the log with it.
		if n, err := strconv.Atoi(lei); err == nil && n >= 0 && n < math.MaxInt {
			cursor = n + 1
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	notify, cancel := s.watch(id)
	defer cancel()
	keepalive := time.NewTicker(s.opts.KeepAlive)
	defer keepalive.Stop()
	for {
		evs, terminal := s.eventsSince(id, cursor)
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return // client gone
			}
		}
		if len(evs) > 0 {
			cursor += len(evs)
			fl.Flush()
		}
		if terminal {
			// The terminal state event is appended atomically with the
			// state change, so a drained log means the stream is complete.
			if evs, _ := s.eventsSince(id, cursor); len(evs) == 0 {
				fmt.Fprintf(w, "event: end\ndata: {}\n\n")
				fl.Flush()
				return
			}
			continue
		}
		select {
		case <-notify:
		case <-keepalive.C:
			// An SSE comment: no id, no event, no data — clients (and the
			// Last-Event-ID resume protocol) ignore it entirely; it exists
			// only to keep intermediaries from timing out the connection.
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return // client gone
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}
