// Package cache models the processor's cache hierarchy (Table 1): 32KB/8w
// L1I, 48KB/12w L1D, 512KB/8w unified L2, 2MB/16w LLC, all with 64-byte
// blocks and LRU replacement.
//
// The model is a latency model, not a bandwidth model: each access walks
// down the hierarchy, fills upward inclusively, and reports the levels it
// had to reach. MSHR-level concurrency is abstracted by the frontend's
// FDIP prefetch overlap (prefetched lines are timestamped and their
// residual latency, rather than the full latency, stalls fetch).
package cache

import "fmt"

// Level identifies where an access was satisfied.
type Level int

// Hierarchy levels an instruction or data access can be satisfied from.
const (
	L1 Level = iota
	L2
	LLC
	Memory
)

// String returns the level's conventional name.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case Memory:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Cache is one set-associative, LRU, write-allocate cache level.
//
// Validity is encoded in the tag array: block addresses are byte addresses
// shifted right by blockBits (≥6), so the all-ones value can never be a
// real block and doubles as the "never filled" sentinel. The hit scan
// therefore touches only the tag column; stamps are read on misses and
// written on hits. The Table 1 geometries all have power-of-two set counts,
// so the set index is a mask in the common case (setMask >= 0) with a
// modulo fallback.
type Cache struct {
	name      string
	sets      int
	ways      int
	blockBits uint
	setMask   int64 // sets-1 when sets is a power of two, else -1

	tags  []uint64 // sets×ways, tag = block address; invalidTag = empty
	stamp []uint64 // LRU stamps
	clock uint64

	Accesses uint64
	Misses   uint64
}

// New builds a cache from total size in bytes, associativity, and block
// size in bytes (must be a power of two).
func New(name string, sizeBytes, ways, blockBytes int) *Cache {
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		panic("cache: block size must be a power of two")
	}
	blocks := sizeBytes / blockBytes
	if ways <= 0 || blocks < ways {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, sizeBytes, ways))
	}
	sets := blocks / ways
	bb := uint(0)
	for 1<<bb != blockBytes {
		bb++
	}
	setMask := int64(-1)
	if sets&(sets-1) == 0 {
		setMask = int64(sets - 1)
	}
	c := &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		blockBits: bb,
		setMask:   setMask,
		tags:      make([]uint64, sets*ways),
		stamp:     make([]uint64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// invalidTag marks a never-filled way. Block addresses lose at least 6 low
// bits to the block offset, so the all-ones value cannot collide with one.
const invalidTag = ^uint64(0)

// Name returns the level's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the set count.
func (c *Cache) Sets() int { return c.sets }

// block converts a byte address into a block address.
func (c *Cache) block(addr uint64) uint64 { return addr >> c.blockBits }

// setBase returns the flat index of the set holding block b.
func (c *Cache) setBase(b uint64) int {
	if c.setMask >= 0 {
		return int(b&uint64(c.setMask)) * c.ways
	}
	return int(b%uint64(c.sets)) * c.ways
}

// Access looks up addr, filling on miss. It returns whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	b := c.block(addr)
	base := c.setBase(b)
	tags := c.tags[base : base+c.ways]
	stamp := c.stamp[base : base+c.ways : base+c.ways]
	c.clock++
	for w := range tags {
		if tags[w] == b {
			stamp[w] = c.clock
			return true
		}
	}
	c.Misses++
	victim := 0
	for w := 1; w < len(tags); w++ {
		if tags[w] == invalidTag {
			victim = w
			break
		}
		if stamp[w] < stamp[victim] {
			victim = w
		}
	}
	tags[victim] = b
	stamp[victim] = c.clock
	return false
}

// Probe reports whether addr is present without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	b := c.block(addr)
	base := c.setBase(b)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == b {
			return true
		}
	}
	return false
}

// MissRatio returns misses per access.
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Latencies configures the cycles to reach each level.
type Latencies struct {
	L2Hit  int
	LLCHit int
	Memory int
}

// DefaultLatencies mirrors a contemporary server part.
func DefaultLatencies() Latencies {
	return Latencies{L2Hit: 14, LLCHit: 40, Memory: 200}
}

// Hierarchy wires L1I/L1D/L2/LLC with Table 1 geometry.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	LLC *Cache
	Lat Latencies

	// Instruction-side per-level miss counters (L2iMPKI in Fig 3 is
	// InstrL2Misses per kilo-instruction).
	InstrFetches   uint64
	InstrL1Misses  uint64
	InstrL2Misses  uint64
	InstrLLCMisses uint64
}

// NewHierarchy builds the Table 1 hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I: New("L1I", 32<<10, 8, 64),
		L1D: New("L1D", 48<<10, 12, 64),
		L2:  New("L2", 512<<10, 8, 64),
		LLC: New("LLC", 2<<20, 16, 64),
		Lat: DefaultLatencies(),
	}
}

// FetchInstr performs a demand instruction fetch and returns the level that
// satisfied it and the access latency in cycles beyond the L1I pipeline
// (0 on L1I hit).
func (h *Hierarchy) FetchInstr(addr uint64) (Level, int) {
	h.InstrFetches++
	if h.L1I.Access(addr) {
		return L1, 0
	}
	h.InstrL1Misses++
	if h.L2.Access(addr) {
		return L2, h.Lat.L2Hit
	}
	h.InstrL2Misses++
	if h.LLC.Access(addr) {
		return LLC, h.Lat.LLCHit
	}
	h.InstrLLCMisses++
	return Memory, h.Lat.Memory
}

// PrefetchInstr brings a line toward L1I (FDIP) and returns the latency
// after which the line becomes usable.
func (h *Hierarchy) PrefetchInstr(addr uint64) int {
	// Prefetches do not count as demand instruction fetches.
	if h.L1I.Probe(addr) {
		return 0
	}
	h.L1I.Access(addr) // allocate in L1I
	if h.L2.Access(addr) {
		return h.Lat.L2Hit
	}
	if h.LLC.Access(addr) {
		return h.Lat.LLCHit
	}
	return h.Lat.Memory
}

// LoadData performs a data load and returns (level, latency beyond L1D).
func (h *Hierarchy) LoadData(addr uint64) (Level, int) {
	if h.L1D.Access(addr) {
		return L1, 0
	}
	if h.L2.Access(addr) {
		return L2, h.Lat.L2Hit
	}
	if h.LLC.Access(addr) {
		return LLC, h.Lat.LLCHit
	}
	return Memory, h.Lat.Memory
}

// L2iMPKI returns L2-level instruction misses per kilo-instruction given
// the retired instruction count.
func (h *Hierarchy) L2iMPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(h.InstrL2Misses) / float64(instructions) * 1000
}
