package cache

import (
	"testing"

	"thermometer/internal/xrand"
)

func TestGeometry(t *testing.T) {
	c := New("L1I", 32<<10, 8, 64)
	if c.Sets() != 64 {
		t.Fatalf("sets = %d, want 64", c.Sets())
	}
	if c.Name() != "L1I" {
		t.Fatal("name")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New("x", 128, 4, 63) }, // non-power-of-two block
		func() { New("x", 64, 4, 64) },  // fewer blocks than ways
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestHitAfterFill(t *testing.T) {
	c := New("t", 1<<10, 2, 64)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) || !c.Access(0x103f) {
		t.Fatal("same block missed")
	}
	if c.Access(0x1040) {
		t.Fatal("next block hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("stats = %d/%d", c.Misses, c.Accesses)
	}
	if c.MissRatio() != 0.5 {
		t.Fatalf("miss ratio %v", c.MissRatio())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, map three blocks to one set: sets = 8, so stride 8*64 = 512.
	c := New("t", 1<<10, 2, 64) // 8 sets
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a MRU
	c.Access(d) // evicts b
	if !c.Probe(a) || c.Probe(b) || !c.Probe(d) {
		t.Fatal("LRU eviction order wrong")
	}
}

func TestProbeDoesNotModify(t *testing.T) {
	c := New("t", 1<<10, 2, 64)
	c.Probe(0x40)
	if c.Accesses != 0 {
		t.Fatal("probe counted as access")
	}
	if c.Probe(0x40) {
		t.Fatal("probe filled the cache")
	}
}

func TestNoDuplicateBlocksProperty(t *testing.T) {
	c := New("t", 1<<12, 4, 64)
	r := xrand.New(9)
	for i := 0; i < 50000; i++ {
		c.Access(uint64(r.Intn(1 << 14)))
	}
	seen := map[uint64]bool{}
	for i, s := range c.stamp {
		if s == 0 { // never filled
			continue
		}
		if seen[c.tags[i]] {
			t.Fatalf("duplicate block %#x", c.tags[i])
		}
		seen[c.tags[i]] = true
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy()
	lvl, lat := h.FetchInstr(0x400000)
	if lvl != Memory || lat != h.Lat.Memory {
		t.Fatalf("cold fetch = %v/%d", lvl, lat)
	}
	lvl, lat = h.FetchInstr(0x400000)
	if lvl != L1 || lat != 0 {
		t.Fatalf("warm fetch = %v/%d", lvl, lat)
	}
	if h.InstrFetches != 2 || h.InstrL1Misses != 1 || h.InstrL2Misses != 1 || h.InstrLLCMisses != 1 {
		t.Fatalf("instr counters: %+v", *h)
	}
}

func TestHierarchyInclusionOnFetchPath(t *testing.T) {
	h := NewHierarchy()
	h.FetchInstr(0x123456)
	if !h.L1I.Probe(0x123456) || !h.L2.Probe(0x123456) || !h.LLC.Probe(0x123456) {
		t.Fatal("miss did not fill all levels")
	}
}

func TestPrefetchInstr(t *testing.T) {
	h := NewHierarchy()
	if lat := h.PrefetchInstr(0x500000); lat != h.Lat.Memory {
		t.Fatalf("cold prefetch latency %d", lat)
	}
	// Now resident in L1I: demand fetch hits, no L1 miss counted.
	lvl, _ := h.FetchInstr(0x500000)
	if lvl != L1 {
		t.Fatalf("post-prefetch fetch level %v", lvl)
	}
	if h.InstrL1Misses != 0 {
		t.Fatal("prefetch counted as demand miss")
	}
	if lat := h.PrefetchInstr(0x500000); lat != 0 {
		t.Fatalf("resident prefetch latency %d", lat)
	}
}

func TestLoadData(t *testing.T) {
	h := NewHierarchy()
	if lvl, _ := h.LoadData(0x900000); lvl != Memory {
		t.Fatalf("cold load level %v", lvl)
	}
	if lvl, lat := h.LoadData(0x900000); lvl != L1 || lat != 0 {
		t.Fatal("warm load wrong")
	}
	// L2 hit path: evict from L1D by conflicting loads, keep in L2.
	// L1D has 48KB/12w/64B = 64 sets → stride 4096 aliases a set.
	for i := uint64(1); i <= 13; i++ {
		h.LoadData(0x900000 + i*4096)
	}
	lvl, lat := h.LoadData(0x900000)
	if lvl != L2 || lat != h.Lat.L2Hit {
		t.Fatalf("L2 hit path = %v/%d", lvl, lat)
	}
}

func TestL2iMPKI(t *testing.T) {
	h := NewHierarchy()
	for i := uint64(0); i < 100; i++ {
		h.FetchInstr(i * 64)
	}
	if got := h.L2iMPKI(100000); got != 1.0 {
		t.Fatalf("L2iMPKI = %v, want 1.0", got)
	}
	if h.L2iMPKI(0) != 0 {
		t.Fatal("zero instructions")
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || LLC.String() != "LLC" || Memory.String() != "DRAM" {
		t.Fatal("level strings")
	}
}
