// Package replay drives a BTB model over a trace's access stream without
// timing — the fast simulation mode used for miss-rate studies (Figs 12 and
// 17), for replacement accuracy analysis (Fig 16), and inside tests.
package replay

import (
	"sort"

	"thermometer/internal/btb"
	"thermometer/internal/profile"
	"thermometer/internal/trace"
)

// Options configures a replay run.
type Options struct {
	// Entries and Ways set the BTB geometry; Sets (if nonzero) overrides
	// the derived set count.
	Entries int
	Ways    int
	Sets    int
	// Policy is the replacement policy to exercise.
	Policy btb.Policy
	// Hints, when non-nil, supplies Thermometer temperature categories.
	Hints *profile.HintTable
	// RecordEvictions captures every eviction for accuracy analysis.
	RecordEvictions bool
	// WarmupFrac is the fraction of the stream used to warm the BTB before
	// statistics (and eviction recording) begin, removing compulsory-miss
	// dilution — the standard trace-simulation methodology.
	WarmupFrac float64
}

// Eviction records one replacement decision for post-hoc analysis.
type Eviction struct {
	// AccessIndex is the position in the access stream at which the
	// eviction happened.
	AccessIndex int
	// Set is the BTB set.
	Set int
	// VictimPC is the evicted branch.
	VictimPC uint64
}

// Result reports a replay run.
type Result struct {
	Stats      btb.Stats
	Sets, Ways int
	Evictions  []Eviction
}

// MissRatio returns misses per access.
func (r *Result) MissRatio() float64 {
	if r.Stats.Accesses == 0 {
		return 0
	}
	return float64(r.Stats.Misses) / float64(r.Stats.Accesses)
}

// Run replays the access stream through a BTB with the given options.
func Run(accesses []trace.Access, o Options) *Result {
	sets := o.Sets
	if sets == 0 {
		sets = o.Entries / o.Ways
	}
	b := btb.NewWithSets(sets, o.Ways, o.Policy)
	res := &Result{Sets: sets, Ways: o.Ways}
	warmupEnd := int(o.WarmupFrac * float64(len(accesses)))
	req := btb.Request{}
	for i := range accesses {
		if i == warmupEnd && i > 0 {
			b.ResetStats()
			res.Evictions = res.Evictions[:0]
		}
		a := &accesses[i]
		req = btb.Request{
			PC:      a.PC,
			Target:  a.Target,
			Type:    a.Type,
			NextUse: a.NextUse,
			Index:   i,
		}
		if o.Hints != nil {
			req.Temperature = o.Hints.Lookup(a.PC)
		}
		r := b.Access(&req)
		if o.RecordEvictions && r.Evicted.Valid {
			res.Evictions = append(res.Evictions, Eviction{
				AccessIndex: i,
				Set:         b.SetIndex(a.PC),
				VictimPC:    r.Evicted.PC,
			})
		}
	}
	res.Stats = b.Stats()
	return res
}

// Accuracy computes the Fig 16 replacement-accuracy metric: the fraction of
// victims whose forward reuse distance (unique branches accessing the same
// set before the victim's next access) is at least the associativity — i.e.
// victims that even an oracle could not have kept alive in the set.
func Accuracy(accesses []trace.Access, res *Result) float64 {
	if len(res.Evictions) == 0 {
		return 1
	}
	// Index the access stream by set for bounded forward scans.
	perSet := make(map[int][]int)
	for i := range accesses {
		s := int(accesses[i].PC % uint64(res.Sets))
		perSet[s] = append(perSet[s], i)
	}
	accurate := 0
	seen := make(map[uint64]struct{}, res.Ways+1)
	for _, ev := range res.Evictions {
		list := perSet[ev.Set]
		// First position strictly after the eviction point.
		pos := sort.SearchInts(list, ev.AccessIndex+1)
		clear(seen)
		good := true
		for _, idx := range list[pos:] {
			pc := accesses[idx].PC
			if pc == ev.VictimPC {
				// Victim reused before `ways` unique competitors: keeping
				// it could have produced a hit, so the eviction was a
				// mistake.
				good = false
				break
			}
			seen[pc] = struct{}{}
			if len(seen) >= res.Ways {
				break
			}
		}
		if good {
			accurate++
		}
	}
	return float64(accurate) / float64(len(res.Evictions))
}
