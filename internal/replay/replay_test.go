package replay

import (
	"testing"

	"thermometer/internal/belady"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

func stream(pcs []uint64) []trace.Access {
	tr := &trace.Trace{Name: "t"}
	for _, pc := range pcs {
		tr.Records = append(tr.Records, trace.Record{
			PC: pc, Target: pc + 4, Taken: true, Type: trace.UncondDirect,
		})
	}
	return tr.AccessStream()
}

func randomStream(seed uint64, nPCs, length int) []trace.Access {
	r := xrand.New(seed)
	z := xrand.NewZipf(nPCs, 0.9)
	pcs := make([]uint64, length)
	for i := range pcs {
		pcs[i] = uint64(z.Sample(r) + 1)
	}
	return stream(pcs)
}

func TestRunMatchesBelady(t *testing.T) {
	acc := randomStream(3, 100, 5000)
	res := Run(acc, Options{Entries: 16, Ways: 4, Policy: policy.NewOPT()})
	off := belady.Profile(acc, 16, 4)
	if res.Stats.Hits != off.Hits {
		t.Fatalf("replay OPT hits %d != belady %d", res.Stats.Hits, off.Hits)
	}
}

func TestSetsOverride(t *testing.T) {
	acc := randomStream(5, 50, 1000)
	a := Run(acc, Options{Entries: 16, Ways: 4, Policy: policy.NewLRU()})
	b := Run(acc, Options{Sets: 4, Ways: 4, Policy: policy.NewLRU()})
	if a.Stats != b.Stats {
		t.Fatalf("explicit sets mismatch: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Sets != 4 {
		t.Fatalf("derived sets = %d", a.Sets)
	}
}

func TestMissRatio(t *testing.T) {
	acc := stream([]uint64{1, 1, 1, 2})
	res := Run(acc, Options{Sets: 1, Ways: 2, Policy: policy.NewLRU()})
	if res.MissRatio() != 0.5 {
		t.Fatalf("miss ratio = %v, want 0.5", res.MissRatio())
	}
	var empty Result
	if empty.MissRatio() != 0 {
		t.Fatal("empty miss ratio != 0")
	}
}

func TestHintsReachPolicy(t *testing.T) {
	// Thermometer with hints: hot branches survive a cold stream.
	ht := &profile.HintTable{
		Config: profile.DefaultConfig(),
		Hints:  map[uint64]uint8{1: profile.Hot, 2: profile.Hot},
	}
	// Unprofiled cold stream branches default to warm — but we want them
	// cold for this test, so profile them explicitly.
	pcs := []uint64{1, 2}
	cold := uint64(100)
	for rep := 0; rep < 50; rep++ {
		pcs = append(pcs, 1, 2, cold)
		ht.Hints[cold] = profile.Cold
		cold++
	}
	acc := stream(pcs)
	th := Run(acc, Options{Sets: 1, Ways: 2, Policy: policy.NewThermometer(), Hints: ht})
	lru := Run(acc, Options{Sets: 1, Ways: 2, Policy: policy.NewLRU()})
	if th.Stats.Hits <= lru.Stats.Hits {
		t.Fatalf("hinted Thermometer hits %d <= LRU %d", th.Stats.Hits, lru.Stats.Hits)
	}
}

func TestEvictionRecording(t *testing.T) {
	pcs := []uint64{1, 2, 3} // 1 set × 2 ways: third insert evicts PC 1
	res := Run(acc3(pcs), Options{Sets: 1, Ways: 2, Policy: policy.NewLRU(), RecordEvictions: true})
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v", res.Evictions)
	}
	ev := res.Evictions[0]
	if ev.VictimPC != 1 || ev.AccessIndex != 2 || ev.Set != 0 {
		t.Fatalf("eviction = %+v", ev)
	}
}

func acc3(pcs []uint64) []trace.Access { return stream(pcs) }

// TestOPTAccuracyIs100Percent verifies the paper's observation that the
// optimal policy always achieves 100% replacement accuracy: every OPT victim
// is reused (if at all) only after at least `ways` unique competitors.
func TestOPTAccuracyIs100Percent(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		acc := randomStream(seed, 200, 8000)
		res := Run(acc, Options{Entries: 32, Ways: 4, Policy: policy.NewOPT(), RecordEvictions: true})
		if len(res.Evictions) == 0 {
			t.Fatalf("seed %d: no evictions recorded", seed)
		}
		if got := Accuracy(acc, res); got != 1.0 {
			t.Fatalf("seed %d: OPT accuracy = %v, want 1.0", seed, got)
		}
	}
}

func TestLRUAccuracyBelowOPT(t *testing.T) {
	// A thrashing pattern makes LRU evictions provably inaccurate.
	pcs := []uint64{}
	for rep := 0; rep < 50; rep++ {
		for k := uint64(1); k <= 3; k++ { // working set 3 > 2 ways
			pcs = append(pcs, k)
		}
	}
	acc := stream(pcs)
	res := Run(acc, Options{Sets: 1, Ways: 2, Policy: policy.NewLRU(), RecordEvictions: true})
	if got := Accuracy(acc, res); got >= 0.5 {
		t.Fatalf("LRU thrash accuracy = %v, want < 0.5", got)
	}
}

func TestAccuracyNoEvictions(t *testing.T) {
	acc := stream([]uint64{1, 1, 1})
	res := Run(acc, Options{Sets: 1, Ways: 2, Policy: policy.NewLRU(), RecordEvictions: true})
	if got := Accuracy(acc, res); got != 1 {
		t.Fatalf("no-eviction accuracy = %v, want 1", got)
	}
}
