// Package runner is the deterministic parallel execution engine behind the
// paper-figure sweeps and the thermod simulation service.
//
// Every policy comparison in the paper's evaluation (§6) is an
// embarrassingly parallel grid — policies × applications × suites — of
// simulations that are each a pure function of their configuration. The
// runner exploits that purity three ways:
//
//   - ForEach, a bounded worker pool whose jobs write into caller-indexed
//     slots, so parallel output is byte-identical to serial output at any
//     pool width;
//   - Spec, a canonical-JSON simulation config whose SHA-256 content hash
//     keys a result cache (in-memory LRU plus an optional on-disk store),
//     so repeated sweeps hit instead of resimulating;
//   - Engine, which ties the two together with per-job panic isolation (a
//     panicking job becomes a failed Result, not a crashed sweep), context
//     cancellation checked at every job boundary, and telemetry counters,
//     gauges, and latency histograms for the serving path.
//
// Determinism contract: nothing in this package (or in a job's execution
// path) may read wall-clock time or ambient randomness — the thermolint
// noambient analyzer enforces it — so a cached Outcome is indistinguishable
// from a freshly simulated one. Timestamps exist only in the server-side
// job envelope (package server, which is exempt from the analyzer).
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0) … fn(n-1) across at most workers goroutines and
// returns when every call has finished. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 runs every call inline on the
// caller's goroutine, which is the reference serial path.
//
// Jobs are dispatched in index order by an atomic cursor, but callers must
// not rely on completion order: the determinism contract is that each job
// writes only into its own caller-indexed slot. fn must not panic — wrap
// fallible work with its own recover (Engine.Sweep does; the experiments
// package re-raises the lowest-index panic to preserve serial semantics).
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
