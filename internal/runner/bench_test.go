package runner

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchGrid is the acceptance grid: 4 policies × 8 workloads of timing
// simulation. Scale 16 keeps one serial pass around a second so the
// parallel/serial ratio is dominated by simulation, not setup.
func benchGrid(b *testing.B) []Spec {
	b.Helper()
	apps := []string{"cassandra", "clang", "drupal", "kafka", "mysql", "python", "tomcat", "wordpress"}
	bases := make([]Spec, len(apps))
	for i, app := range apps {
		bases[i] = Spec{App: app, Scale: 16}
	}
	specs, err := Grid(bases, []string{"lru", "srrip", "ghrp", "hawkeye"})
	if err != nil {
		b.Fatal(err)
	}
	return specs
}

func runSweepBench(b *testing.B, workers int) {
	specs := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &Engine{Workers: workers}
		results := e.Sweep(context.Background(), specs)
		for _, r := range results {
			if r.Err != "" {
				b.Fatalf("job failed: %s", r.Err)
			}
		}
	}
}

// BenchmarkSweepSerial is the single-worker baseline for the 4-policy ×
// 8-workload acceptance grid.
func BenchmarkSweepSerial(b *testing.B) { runSweepBench(b, 1) }

// BenchmarkSweepParallel runs the same grid at full pool width. At
// GOMAXPROCS >= 4 it must show >= 3x wall-clock speedup over
// BenchmarkSweepSerial (compare ns/op).
func BenchmarkSweepParallel(b *testing.B) { runSweepBench(b, 0) }

// BenchmarkSweepWidths reports scaling across explicit pool widths.
func BenchmarkSweepWidths(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		if w > runtime.GOMAXPROCS(0) {
			continue
		}
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { runSweepBench(b, w) })
	}
}

// BenchmarkSweepCached measures a fully warmed content-addressed cache:
// the whole grid served without simulating.
func BenchmarkSweepCached(b *testing.B) {
	specs := benchGrid(b)
	cache, err := NewCache(len(specs), "")
	if err != nil {
		b.Fatal(err)
	}
	e := &Engine{Workers: 0, Cache: cache}
	e.Sweep(context.Background(), specs) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := e.Sweep(context.Background(), specs)
		for _, r := range results {
			if !r.Cached {
				b.Fatal("cache miss on warmed sweep")
			}
		}
	}
}
