package runner

import (
	"container/list"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a content-addressed result store: canonical-spec SHA-256 key →
// Outcome. It layers a bounded in-memory LRU over an optional on-disk
// store, so repeated sweeps — across calls or across process restarts —
// hit instead of resimulating. All methods are safe for concurrent use.
//
// Because job execution is deterministic and timestamp-free, a cached
// Outcome is byte-identical to what a fresh simulation would produce;
// callers can treat hits and misses interchangeably.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // guarded by mu; front = most recently used
	mem map[string]*list.Element // guarded by mu; key -> element holding *cacheEntry
	dir string                   // "" = memory only

	hits, misses, diskHits, promotions, evictions, diskErrors uint64 // guarded by mu
}

type cacheEntry struct {
	key string
	out *Outcome
}

// NewCache returns a cache holding up to capacity results in memory
// (capacity <= 0 selects 1024). dir, when non-empty, adds a persistent
// store of one JSON file per key; it is created if missing.
func NewCache(capacity int, dir string) (*Cache, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Cache{
		cap: capacity,
		ll:  list.New(),
		mem: make(map[string]*list.Element, capacity),
		dir: dir,
	}, nil
}

// Get returns the cached outcome for key, consulting memory first and then
// the disk store. A disk hit is promoted into the memory LRU, so each key
// costs at most one disk read while it stays resident — subsequent Gets are
// pure memory hits (pinned by TestCacheDiskPromotion).
func (c *Cache) Get(key string) (*Outcome, bool) {
	c.mu.Lock()
	if el, ok := c.mem[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		out := el.Value.(*cacheEntry).out
		c.mu.Unlock()
		return out, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if b, err := os.ReadFile(c.path(key)); err == nil {
			var out Outcome
			if json.Unmarshal(b, &out) == nil {
				c.mu.Lock()
				c.diskHits++
				c.promotions++
				c.insertLocked(key, &out)
				c.mu.Unlock()
				return &out, true
			}
		}
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the outcome for key in memory and, when a directory is
// configured, on disk (best-effort: disk failures are counted, not fatal —
// the simulation result is already in hand).
func (c *Cache) Put(key string, out *Outcome) {
	c.mu.Lock()
	c.insertLocked(key, out)
	c.mu.Unlock()

	if c.dir == "" {
		return
	}
	b, err := json.Marshal(out)
	if err == nil {
		tmp := c.path(key) + ".tmp"
		if err = os.WriteFile(tmp, b, 0o644); err == nil {
			err = os.Rename(tmp, c.path(key))
		}
	}
	if err != nil {
		c.mu.Lock()
		c.diskErrors++
		c.mu.Unlock()
	}
}

func (c *Cache) insertLocked(key string, out *Outcome) {
	if el, ok := c.mem[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.mem[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.mem, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Len returns the number of results currently held in memory.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time copy of cache traffic counters.
type CacheStats struct {
	Hits     uint64 `json:"hits"`      // in-memory hits
	DiskHits uint64 `json:"disk_hits"` // served from the on-disk store
	// Promotions counts disk hits inserted into the memory LRU; it equals
	// DiskHits today, but diverges if a non-promoting tier is ever added,
	// so the metric is published separately.
	Promotions uint64 `json:"promotions"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	DiskErrors uint64 `json:"disk_errors"`
}

// Stats returns the cache traffic counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, DiskHits: c.diskHits, Promotions: c.promotions,
		Misses: c.misses, Evictions: c.evictions, DiskErrors: c.diskErrors,
	}
}
