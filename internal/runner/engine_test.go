package runner

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"thermometer/internal/telemetry"
)

// testGrid is a small policy × workload grid at a short trace scale.
func testGrid(t testing.TB) []Spec {
	t.Helper()
	bases := []Spec{
		{App: "kafka", Scale: 64},
		{App: "python", Scale: 64},
		{Suite: SuiteCBP5, Index: 0, Scale: 64},
		{Suite: SuiteIPC1, Index: 1, Scale: 64},
	}
	specs, err := Grid(bases, []string{"lru", "srrip", "thermometer"})
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// TestSweepGoldenDeterminism is the golden parallel-vs-serial test: the
// same sweep at pool width 1 and 8 must produce byte-identical JSON and
// CSV output (fresh engines on both sides, so cache state matches too).
func TestSweepGoldenDeterminism(t *testing.T) {
	specs := testGrid(t)
	render := func(workers int) (string, string) {
		e := &Engine{Workers: workers}
		results := e.Sweep(context.Background(), specs)
		var j, c bytes.Buffer
		if err := WriteJSON(&j, results); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, results); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(1)
	j8, c8 := render(8)
	if j1 != j8 {
		t.Errorf("JSON output differs between -parallel=1 and -parallel=8:\nserial:\n%s\nparallel:\n%s", head(j1), head(j8))
	}
	if c1 != c8 {
		t.Errorf("CSV output differs between -parallel=1 and -parallel=8:\nserial:\n%s\nparallel:\n%s", head(c1), head(c8))
	}
	if !strings.Contains(c1, "kafka") || strings.Contains(c1, "error") && strings.Contains(c1, "panic") {
		t.Fatalf("suspicious sweep output:\n%s", head(c1))
	}
}

func head(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}

func TestSweepResultsInSubmissionOrder(t *testing.T) {
	specs := testGrid(t)
	e := &Engine{Workers: 8}
	results := e.Sweep(context.Background(), specs)
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if r.Spec.Policy != specs[i].Policy || r.Spec.App != specs[i].App ||
			r.Spec.Suite != specs[i].Suite || r.Spec.Index != specs[i].Index {
			t.Fatalf("result %d out of order: spec %+v vs %+v", i, r.Spec, specs[i])
		}
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
		if r.Outcome == nil || r.Outcome.Accesses == 0 {
			t.Fatalf("job %d has empty outcome", i)
		}
	}
}

func TestSweepCacheHits(t *testing.T) {
	cache, err := NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e := &Engine{Workers: 4, Cache: cache, Metrics: reg}
	specs := testGrid(t)[:4]

	first := e.Sweep(context.Background(), specs)
	second := e.Sweep(context.Background(), specs)
	for i := range second {
		if !second[i].Cached {
			t.Errorf("repeat job %d not served from cache", i)
		}
		if first[i].Cached {
			t.Errorf("first run of job %d claims cached", i)
		}
		// The cached outcome must be indistinguishable from the fresh one.
		if *first[i].Outcome != *second[i].Outcome {
			t.Errorf("cached outcome differs from fresh outcome for job %d", i)
		}
	}
	if got := reg.Counter("runner_cache_hits").Value(); got != uint64(len(specs)) {
		t.Errorf("runner_cache_hits = %d, want %d", got, len(specs))
	}
	if got := reg.Counter("runner_jobs_total").Value(); got != 2*uint64(len(specs)) {
		t.Errorf("runner_jobs_total = %d, want %d", got, 2*len(specs))
	}
}

func TestSweepPanicIsolation(t *testing.T) {
	e := &Engine{Workers: 4}
	e.execHook = func(s Spec) (*Outcome, error) {
		switch s.App {
		case "kafka":
			panic("synthetic failure")
		case "mysql":
			return nil, errors.New("plain failure")
		}
		return &Outcome{Trace: s.App}, nil
	}
	specs := []Spec{{App: "python"}, {App: "kafka"}, {App: "mysql"}, {App: "tomcat"}}
	results := e.Sweep(context.Background(), specs)
	if results[0].Err != "" || results[3].Err != "" {
		t.Fatalf("healthy jobs failed: %+v", results)
	}
	if !strings.Contains(results[1].Err, "job panicked: synthetic failure") {
		t.Fatalf("panic not converted to failed result: %q", results[1].Err)
	}
	if results[2].Err != "plain failure" {
		t.Fatalf("error not propagated: %q", results[2].Err)
	}
	if results[1].Outcome != nil {
		t.Fatal("failed job carries an outcome")
	}
}

func TestSweepInvalidSpec(t *testing.T) {
	e := &Engine{Workers: 1}
	results := e.Sweep(context.Background(), []Spec{{App: "kafka", Scale: 64, Mode: ModeReplay}, {App: "nosuchapp"}})
	if results[0].Err != "" {
		t.Fatalf("valid replay job failed: %s", results[0].Err)
	}
	if results[0].Outcome.Cycles != 0 {
		t.Fatal("replay mode reported cycles")
	}
	if !strings.Contains(results[1].Err, "invalid spec") || results[1].Key != "" {
		t.Fatalf("invalid spec not rejected: %+v", results[1])
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the sweep starts: every job must fail fast
	e := &Engine{Workers: 4}
	results := e.Sweep(ctx, testGrid(t))
	for i, r := range results {
		if !strings.Contains(r.Err, "canceled") {
			t.Fatalf("job %d ran under a canceled context: %+v", i, r)
		}
	}
}

func TestEngineLatencyHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	var fake int64
	e := &Engine{Workers: 1, Metrics: reg, NowNanos: func() int64 {
		fake += 5_000_000 // 5ms per reading
		return fake
	}}
	e.execHook = func(s Spec) (*Outcome, error) { return &Outcome{Trace: s.App}, nil }
	e.Sweep(context.Background(), []Spec{{App: "kafka"}, {App: "mysql"}})
	h := reg.Histogram("runner_job_latency_us")
	if h.Count() != 2 {
		t.Fatalf("latency observations = %d, want 2", h.Count())
	}
	// Outcomes must not embed the injected clock anywhere: latency is
	// telemetry-only, keeping cached and fresh results interchangeable.
	r := e.Run(context.Background(), Spec{App: "kafka"})
	if r.Err != "" || r.Outcome == nil {
		t.Fatalf("run failed: %+v", r)
	}
}
