package runner

import (
	"bytes"
	"context"
	"testing"

	"thermometer/internal/telemetry"
)

// auditedGrid is testGrid with the hint-quality audit enabled on every spec
// that carries hints (the thermometer cells).
func auditedGrid(t testing.TB) []Spec {
	specs := testGrid(t)
	audited := 0
	for i := range specs {
		if specs[i].Hints {
			specs[i].HintQual = true
			audited++
		}
	}
	if audited == 0 {
		t.Fatal("grid has no hinted specs to audit")
	}
	return specs
}

// TestHintQualObservationGolden pins the acceptance guarantee from two
// directions: an audited sweep renders byte-identically at widths 1 and 8,
// and stripping the audit artifacts (the spec flag, its key, the outcome
// summary) reproduces the unaudited sweep's JSON byte-for-byte — the audit
// adds data without disturbing a single simulated number.
func TestHintQualObservationGolden(t *testing.T) {
	render := func(specs []Spec, workers int) (string, []Result) {
		e := &Engine{Workers: workers}
		results := e.Sweep(context.Background(), specs)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.String(), results
	}
	strip := func(results []Result) string {
		stripped := make([]Result, len(results))
		for i, r := range results {
			r.Spec.HintQual = false
			r.Key = ""
			if r.Outcome != nil && r.Outcome.HintQual != nil {
				o := *r.Outcome
				o.HintQual = nil
				r.Outcome = &o
			}
			stripped[i] = r
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, stripped); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	w1, r1 := render(auditedGrid(t), 1)
	w8, _ := render(auditedGrid(t), 8)
	if w1 != w8 {
		t.Errorf("audited sweep differs between widths 1 and 8:\n%s\nvs\n%s", head(w1), head(w8))
	}

	_, plain := render(testGrid(t), 1)
	if got, want := strip(r1), strip(plain); got != want {
		t.Errorf("audited sweep (audit stripped) differs from unaudited sweep:\n%s\nvs\n%s",
			head(got), head(want))
	}

	// The audit actually ran: every hinted cell carries a populated summary.
	for _, r := range r1 {
		if !r.Spec.HintQual {
			continue
		}
		hq := r.Outcome.HintQual
		if hq == nil || hq.Accesses == 0 || hq.Windows == 0 {
			t.Fatalf("audited cell %s/%s has empty summary: %+v", r.Spec.Policy, r.Spec.TraceName(), hq)
		}
		if hq.Accesses != r.Outcome.Accesses {
			t.Fatalf("audit scored %d accesses, outcome counted %d", hq.Accesses, r.Outcome.Accesses)
		}
	}
}

// TestHintQualSpecValidation pins the spec contract: the audit needs a hint
// table and a timing simulation.
func TestHintQualSpecValidation(t *testing.T) {
	if _, err := (Spec{App: "kafka", HintQual: true}).Normalized(); err == nil {
		t.Fatal("hintqual without hints accepted")
	}
	if _, err := (Spec{App: "kafka", Hints: true, HintQual: true, Mode: ModeReplay}).Normalized(); err == nil {
		t.Fatal("hintqual in replay mode accepted")
	}
	if _, err := (Spec{App: "kafka", Hints: true, HintQual: true}).Normalized(); err != nil {
		t.Fatalf("valid hintqual spec rejected: %v", err)
	}
}

// TestHintQualKeyStability pins that the new spec field is invisible to the
// cache identity of specs that don't use it — old cache entries stay valid.
func TestHintQualKeyStability(t *testing.T) {
	base := Spec{App: "kafka", Scale: 64, Policy: "thermometer", Hints: true}
	audited := base
	audited.HintQual = true
	if base.Key() == audited.Key() {
		t.Fatal("audited and unaudited specs share a cache key")
	}
	b, err := base.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("hintqual")) {
		t.Fatalf("hintqual leaks into unaudited canonical JSON: %s", b)
	}
}

// TestSharedCacheMetricsPublished pins the /metrics surface of the
// package-level trace/hint caches: after a sweep through an engine with a
// registry, the counters and size gauges are present and the repeat sweep
// registers cache hits.
func TestSharedCacheMetricsPublished(t *testing.T) {
	m := telemetry.NewRegistry()
	e := &Engine{Workers: 2, Metrics: m}
	specs := []Spec{{App: "kafka", Scale: 64, Policy: "thermometer", Hints: true}}
	e.Sweep(context.Background(), specs)
	e.Sweep(context.Background(), specs)

	snap := m.Snapshot()
	for _, name := range []string{
		"runner_trace_cache_hits", "runner_trace_cache_misses", "runner_trace_cache_evictions",
		"runner_hint_cache_hits", "runner_hint_cache_misses", "runner_hint_cache_evictions",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s not published", name)
		}
	}
	for _, name := range []string{"runner_trace_cache_size", "runner_hint_cache_size"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not published", name)
		}
	}
	// The caches are package-global, so absolute values depend on test
	// order; the second sweep's lookups guarantee at least one hit each.
	if snap.Counters["runner_trace_cache_hits"] == 0 {
		t.Error("trace cache hits not counted")
	}
	if snap.Counters["runner_hint_cache_hits"] == 0 {
		t.Error("hint cache hits not counted")
	}
	if snap.Gauges["runner_trace_cache_size"] == 0 {
		t.Error("trace cache size gauge empty")
	}
}
