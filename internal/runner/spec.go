package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/detmap"
	"thermometer/internal/policy"
	"thermometer/internal/workload"
)

// Suite and mode values accepted by Spec.
const (
	SuiteApp  = "app"  // the 13 data center applications (by name)
	SuiteCBP5 = "cbp5" // CBP-5-style traces (by index)
	SuiteIPC1 = "ipc1" // IPC-1-style traces (by index)

	ModeTiming = "timing" // full timing simulation (core.Run)
	ModeReplay = "replay" // BTB-only access replay (replay.Run)
)

// Spec is one simulation job: a plain-data configuration from which the
// result is a pure function. The canonical JSON encoding of a normalized
// Spec (defaults filled in, fields in the fixed order below) is the cache
// identity; see Key.
type Spec struct {
	// Suite selects the trace family: "app" (default when App is set),
	// "cbp5", or "ipc1".
	Suite string `json:"suite,omitempty"`
	// App names a data center application (Suite "app").
	App string `json:"app,omitempty"`
	// Index selects the trace within the cbp5/ipc1 suites.
	Index int `json:"index,omitempty"`
	// Input selects the application input set (0 = the training input).
	Input int `json:"input,omitempty"`
	// Scale divides the trace length (1 = the full 400K-record traces).
	Scale int `json:"scale,omitempty"`

	// Mode is "timing" (default) or "replay".
	Mode string `json:"mode,omitempty"`
	// Policy is the BTB replacement policy; see PolicyNames.
	Policy string `json:"policy,omitempty"`
	// Hints attaches profile-guided temperature hints (profiled offline at
	// the job's BTB geometry, or HintEntries when set).
	Hints bool `json:"hints,omitempty"`
	// HintQual audits the attached hint table live (see package hintqual)
	// and embeds the hint-quality summary in the outcome. Requires Hints
	// and timing mode. The audit is a pure tap: the simulated numbers are
	// byte-identical with or without it.
	HintQual bool `json:"hintqual,omitempty"`

	// BTBEntries/BTBWays give the BTB geometry (default Table 1: 8192×4).
	BTBEntries int `json:"btb_entries,omitempty"`
	BTBWays    int `json:"btb_ways,omitempty"`
	// BTBSets, when nonzero, overrides the derived set count (the paper's
	// storage-equalized 7979-entry variant needs a non-power-of-two BTB).
	BTBSets int `json:"btb_sets,omitempty"`
	// HintEntries, when nonzero, profiles hints at this entry count
	// instead of BTBEntries.
	HintEntries int `json:"hint_entries,omitempty"`
}

// policies maps spec policy names to factories. Every factory must return
// a deterministic policy (enforced for the roster by the repo's policy
// invariants tests).
var policies = map[string]func() btb.Policy{
	"lru":                  func() btb.Policy { return policy.NewLRU() },
	"random":               func() btb.Policy { return policy.NewRandom() },
	"srrip":                func() btb.Policy { return policy.NewSRRIP() },
	"ghrp":                 func() btb.Policy { return policy.NewGHRP() },
	"hawkeye":              func() btb.Policy { return policy.NewHawkeye() },
	"opt":                  func() btb.Policy { return policy.NewOPT() },
	"thermometer":          func() btb.Policy { return policy.NewThermometer() },
	"thermometer-nobypass": func() btb.Policy { return policy.NewThermometerNoBypass() },
	"holistic":             func() btb.Policy { return policy.NewHolisticOnly() },
	"transient":            func() btb.Policy { return policy.NewTransientOnly() },
}

// PolicyNames returns the accepted policy names, sorted.
func PolicyNames() []string { return detmap.SortedKeys(policies) }

// Normalized returns a copy of the spec with defaults applied, or an error
// describing why the spec is invalid. Two specs that normalize to the same
// value are the same job and share a cache entry.
func (s Spec) Normalized() (Spec, error) {
	if s.Suite == "" {
		s.Suite = SuiteApp
	}
	if s.Mode == "" {
		s.Mode = ModeTiming
	}
	if s.Policy == "" {
		s.Policy = "lru"
	}
	if s.Scale <= 0 {
		s.Scale = 1
	}
	def := core.DefaultConfig()
	if s.BTBEntries <= 0 {
		s.BTBEntries = def.BTBEntries
	}
	if s.BTBWays <= 0 {
		s.BTBWays = def.BTBWays
	}

	switch s.Suite {
	case SuiteApp:
		if s.App == "" {
			return s, fmt.Errorf("suite %q requires an app name", s.Suite)
		}
		if _, ok := workload.App(s.App); !ok {
			return s, fmt.Errorf("unknown app %q", s.App)
		}
		if s.Index != 0 {
			return s, fmt.Errorf("index %d is only valid for the cbp5/ipc1 suites", s.Index)
		}
	case SuiteCBP5, SuiteIPC1:
		if s.App != "" {
			return s, fmt.Errorf("app %q is only valid for the app suite", s.App)
		}
		if s.Input != 0 {
			return s, fmt.Errorf("input %d is only valid for the app suite", s.Input)
		}
		max := workload.CBP5Count
		if s.Suite == SuiteIPC1 {
			max = workload.IPC1Count
		}
		if s.Index < 0 || s.Index >= max {
			return s, fmt.Errorf("%s index %d out of range [0, %d)", s.Suite, s.Index, max)
		}
	default:
		return s, fmt.Errorf("unknown suite %q (want app, cbp5, or ipc1)", s.Suite)
	}
	if s.Input < 0 || s.Input > 3 {
		return s, fmt.Errorf("input %d out of range [0, 3]", s.Input)
	}
	if s.Mode != ModeTiming && s.Mode != ModeReplay {
		return s, fmt.Errorf("unknown mode %q (want timing or replay)", s.Mode)
	}
	if policies[s.Policy] == nil {
		return s, fmt.Errorf("unknown policy %q (want one of %v)", s.Policy, PolicyNames())
	}
	if s.BTBWays > s.BTBEntries {
		return s, fmt.Errorf("btb_ways %d exceeds btb_entries %d", s.BTBWays, s.BTBEntries)
	}
	if s.BTBSets < 0 || s.HintEntries < 0 {
		return s, fmt.Errorf("btb_sets and hint_entries must be non-negative")
	}
	if s.HintQual {
		if !s.Hints {
			return s, fmt.Errorf("hintqual requires hints (there is no hint table to audit)")
		}
		if s.Mode != ModeTiming {
			return s, fmt.Errorf("hintqual requires timing mode")
		}
	}
	return s, nil
}

// CanonicalJSON returns the spec's canonical encoding: the normalized spec
// marshaled compactly with fields in declaration order and defaults
// explicit. Submissions that differ only in key order, whitespace, or
// omitted-vs-explicit defaults canonicalize identically.
func (s Spec) CanonicalJSON() ([]byte, error) {
	n, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Key returns the spec's content address: the SHA-256 of its canonical
// JSON, in hex. It panics on invalid specs — validate with Normalized
// first.
func (s Spec) Key() string {
	b, err := s.CanonicalJSON()
	if err != nil {
		panic("runner: Key of invalid spec: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TraceName returns the human-readable name of the trace the spec runs.
func (s Spec) TraceName() string {
	switch s.Suite {
	case SuiteCBP5:
		return fmt.Sprintf("cbp5_%03d", s.Index)
	case SuiteIPC1:
		return fmt.Sprintf("ipc1_%03d", s.Index)
	default:
		if s.Input != 0 {
			return fmt.Sprintf("%s#%d", s.App, s.Input)
		}
		return s.App
	}
}
