package runner

import (
	"fmt"
	"sync"

	"thermometer/internal/core"
	"thermometer/internal/hintqual"
	"thermometer/internal/profile"
	"thermometer/internal/replay"
	"thermometer/internal/telemetry"
	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

// Outcome is the result payload of one job: plain numbers that are a pure
// function of the normalized Spec. It deliberately carries no timestamps
// and no machine-dependent fields, so cached and fresh outcomes are
// interchangeable and the JSON encoding is byte-stable.
type Outcome struct {
	// Trace is the resolved trace name.
	Trace string `json:"trace"`
	// Instructions and Cycles are post-warmup totals (Cycles is 0 in
	// replay mode, which has no clock).
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`

	// BTB demand traffic.
	Accesses uint64 `json:"accesses"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Bypasses uint64 `json:"bypasses,omitempty"`
	// MPKI is demand BTB misses per kilo-instruction.
	MPKI float64 `json:"mpki"`

	// Timing-mode extras: redirect counts and stall attribution.
	BTBMissRedirects uint64 `json:"btb_miss_redirects,omitempty"`
	DirMispredicts   uint64 `json:"dir_mispredicts,omitempty"`
	RedirectStall    uint64 `json:"redirect_stall,omitempty"`
	ICacheStall      uint64 `json:"icache_stall,omitempty"`
	DataStall        uint64 `json:"data_stall,omitempty"`

	// HintQual is the hint-quality audit summary, present only when the
	// spec requested it. Like every other field it is a pure function of
	// the normalized spec (the audit taps a deterministic Belady shadow).
	HintQual *hintqual.Summary `json:"hintqual,omitempty"`
}

// traceSlot and hintSlot are single-flight cache entries: the map lookup
// is cheap and mutex-guarded, generation runs once outside the lock.
type traceSlot struct {
	once sync.Once
	tr   *trace.Trace
}

type hintSlot struct {
	once sync.Once
	ht   *profile.HintTable
	err  error
}

// Traces and hint tables are pure functions of the spec fields that key
// them, so the caches live at package level and are shared by every Engine:
// harnesses that construct a fresh Engine per job (benchmark samplers, the
// CLI) reuse the generated trace instead of paying workload synthesis again.
// Both caches are bounded: on overflow the whole map is dropped and rebuilt,
// which is trivially correct for a content-addressed cache of pure values.
const (
	maxCachedTraces     = 64
	maxCachedHintTables = 256

	// hintQualEpochInterval is the drift-window width (in retired
	// instructions) for hintqual-enabled jobs. Fixed so outcomes stay pure
	// functions of the spec.
	hintQualEpochInterval = 20000
)

var (
	cacheMu    sync.Mutex
	traces     map[string]*traceSlot
	hintTables map[string]*hintSlot

	// Shared-cache traffic counters, published on /metrics by
	// Engine.publishCacheStats. An eviction here is one dropped map entry
	// (the whole map is dropped at once on overflow).
	traceCacheStats cacheTraffic // guarded by cacheMu
	hintCacheStats  cacheTraffic // guarded by cacheMu
)

// cacheTraffic counts lookups against one package-level single-flight cache.
type cacheTraffic struct {
	hits, misses, evictions uint64
}

// sharedCacheStats snapshots the package-level cache counters and current
// sizes for metrics export.
func sharedCacheStats() (tr, ht cacheTraffic, trLen, htLen int) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return traceCacheStats, hintCacheStats, len(traces), len(hintTables)
}

// trace returns (and caches) the trace for a normalized spec. Concurrent
// requests for the same trace generate it exactly once.
func (e *Engine) trace(s Spec) *trace.Trace {
	key := fmt.Sprintf("%s/%s/%d#%d/%d", s.Suite, s.App, s.Index, s.Input, s.Scale)
	cacheMu.Lock()
	if len(traces) >= maxCachedTraces {
		traceCacheStats.evictions += uint64(len(traces))
		traces = nil
	}
	if traces == nil {
		traces = make(map[string]*traceSlot)
	}
	slot := traces[key]
	if slot == nil {
		traceCacheStats.misses++
		slot = &traceSlot{}
		traces[key] = slot
	} else {
		traceCacheStats.hits++
	}
	cacheMu.Unlock()
	slot.once.Do(func() {
		var spec workload.AppSpec
		switch s.Suite {
		case SuiteCBP5:
			spec = workload.CBP5Spec(s.Index)
		case SuiteIPC1:
			spec = workload.IPC1Spec(s.Index)
		default:
			spec, _ = workload.App(s.App) // existence checked by Normalized
		}
		slot.tr = spec.ScaleLength(1, s.Scale).Generate(s.Input)
	})
	return slot.tr
}

// hints returns (and caches) the profile-guided hint table for a
// normalized spec's trace at its profiling geometry.
func (e *Engine) hints(s Spec, tr *trace.Trace) (*profile.HintTable, error) {
	entries := s.BTBEntries
	if s.HintEntries > 0 {
		entries = s.HintEntries
	}
	key := fmt.Sprintf("%s/%s/%d#%d/%d@%dx%d", s.Suite, s.App, s.Index, s.Input, s.Scale, entries, s.BTBWays)
	cacheMu.Lock()
	if len(hintTables) >= maxCachedHintTables {
		hintCacheStats.evictions += uint64(len(hintTables))
		hintTables = nil
	}
	if hintTables == nil {
		hintTables = make(map[string]*hintSlot)
	}
	slot := hintTables[key]
	if slot == nil {
		hintCacheStats.misses++
		slot = &hintSlot{}
		hintTables[key] = slot
	} else {
		hintCacheStats.hits++
	}
	cacheMu.Unlock()
	slot.once.Do(func() {
		slot.ht, _, slot.err = profile.ProfileTrace(tr, entries, s.BTBWays, profile.DefaultConfig())
	})
	return slot.ht, slot.err
}

// execute runs one normalized spec to completion. It is a pure function of
// the spec: no wall clock, no ambient randomness, no shared mutable state
// beyond the single-flight trace/hint caches (whose contents are
// themselves pure functions of the spec fields that key them). The span
// scope, when live, times the stages — trace load, hint load, simulate,
// aggregate — without touching the result.
func (e *Engine) execute(s Spec, sc spanScope) (*Outcome, error) {
	load := sc.start("trace_load")
	tr := e.trace(s)
	load.End()
	var ht *profile.HintTable
	if s.Hints {
		hints := sc.start("hint_load")
		var err error
		if ht, err = e.hints(s, tr); err != nil {
			hints.EndDetail("error")
			return nil, fmt.Errorf("profiling hints: %w", err)
		}
		hints.End()
	}

	out := &Outcome{Trace: tr.Name}
	switch s.Mode {
	case ModeReplay:
		sim := sc.start("simulate")
		r := replay.Run(tr.AccessStream(), replay.Options{
			Entries: s.BTBEntries,
			Ways:    s.BTBWays,
			Sets:    s.BTBSets,
			Policy:  policies[s.Policy](),
			Hints:   ht,
		})
		sim.EndDetail("replay")
		agg := sc.start("aggregate")
		out.Instructions = tr.Instructions()
		out.Accesses = r.Stats.Accesses
		out.Hits = r.Stats.Hits
		out.Misses = r.Stats.Misses
		out.Bypasses = r.Stats.Bypasses
		if out.Instructions > 0 {
			out.MPKI = float64(out.Misses) / float64(out.Instructions) * 1000
		}
		agg.End()
	default: // ModeTiming
		sim := sc.start("simulate")
		cfg := core.DefaultConfig()
		cfg.BTBEntries = s.BTBEntries
		cfg.BTBWays = s.BTBWays
		cfg.BTBSets = s.BTBSets
		cfg.NewPolicy = policies[s.Policy]
		cfg.Hints = ht
		var hq *hintqual.Recorder
		if s.HintQual {
			// A minimal observer supplies the epoch grid the drift windows
			// close on; no event tracing, so the tap stays cheap. The audit
			// never perturbs the simulated numbers (pinned by
			// TestHintQualObservationGolden).
			hq = hintqual.New(hintqual.Options{})
			cfg.HintQual = hq
			cfg.Observer = telemetry.New(telemetry.Options{EpochInterval: hintQualEpochInterval})
		}
		r := core.Run(tr, cfg)
		sim.EndDetail("timing")
		agg := sc.start("aggregate")
		out.Instructions = r.Instructions
		out.Cycles = r.Cycles
		out.IPC = r.IPC()
		out.Accesses = r.BTB.Accesses
		out.Hits = r.BTB.Hits
		out.Misses = r.BTB.Misses
		out.Bypasses = r.BTB.Bypasses
		out.MPKI = r.BTBMPKI()
		out.BTBMissRedirects = r.BTBMissRedirects
		out.DirMispredicts = r.DirMispredicts
		out.RedirectStall = r.RedirectStall
		out.ICacheStall = r.ICacheStall
		out.DataStall = r.DataStall
		if hq != nil {
			sum := hq.Summary()
			out.HintQual = &sum
		}
		agg.End()
	}
	return out, nil
}
