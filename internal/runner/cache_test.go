package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", &Outcome{Trace: "a"})
	c.Put("b", &Outcome{Trace: "b"})
	c.Get("a") // promote a over b
	c.Put("c", &Outcome{Trace: "c"})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (a was more recently used)")
	}
	for _, k := range []string{"a", "c"} {
		if out, ok := c.Get(k); !ok || out.Trace != k {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := &Outcome{Trace: "kafka", Instructions: 123, Cycles: 456, IPC: 0.269, Misses: 7}
	c1.Put("deadbeef", want)

	// A fresh cache over the same directory serves the result without
	// resimulation, and promotes it into memory.
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("deadbeef")
	if !ok {
		t.Fatal("disk store miss")
	}
	if *got != *want {
		t.Fatalf("disk round-trip mutated outcome: %+v vs %+v", got, want)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", s.DiskHits)
	}
	if c2.Len() != 1 {
		t.Fatal("disk hit not promoted to memory")
	}

	// Corrupt files are treated as misses, not errors.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("bad"); ok {
		t.Fatal("corrupt cache file served as a hit")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c, err := NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	ForEach(8, 512, func(i int) {
		key := fmt.Sprintf("k%d", i%100)
		c.Put(key, &Outcome{Trace: key})
		if out, ok := c.Get(key); ok && out.Trace != key {
			t.Errorf("key %s returned %s", key, out.Trace)
		}
	})
}

// TestCacheDiskPromotion pins the one-disk-read-per-key contract: a disk
// hit is promoted into the memory LRU, so while the key stays resident the
// file is never read again — deleting it after the first Get must not hurt.
func TestCacheDiskPromotion(t *testing.T) {
	dir := t.TempDir()
	want := &Outcome{Trace: "promoted", Instructions: 7}
	seed, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	seed.Put("cafef00d", want)

	// A fresh cache over the same directory: cold memory, warm disk.
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("cafef00d"); !ok {
		t.Fatal("disk tier miss")
	}
	// Remove the backing file: if the second Get re-read the disk tier it
	// would now miss, so a hit proves the promotion carried the result.
	if err := os.Remove(filepath.Join(dir, "cafef00d.json")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("cafef00d")
	if !ok {
		t.Fatal("promoted key missed after backing file removal: disk re-read instead of memory hit")
	}
	if *got != *want {
		t.Fatalf("promoted outcome mutated: %+v vs %+v", got, want)
	}
	s := c.Stats()
	if s.DiskHits != 1 || s.Promotions != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want exactly one disk hit, one promotion, one memory hit", s)
	}
}

// TestResultStateFallback pins the wire-side classification: a Result that
// crossed a JSON boundary (no recorded state) classifies by Err presence.
func TestResultStateFallback(t *testing.T) {
	if got := (Result{}).State(); got != ProgressDone {
		t.Fatalf("empty result state = %q, want %q", got, ProgressDone)
	}
	if got := (Result{Err: "boom"}).State(); got != ProgressFailed {
		t.Fatalf("failed result state = %q, want %q", got, ProgressFailed)
	}
	// An engine-recorded state survives: "canceled: ..." wording stays
	// canceled, not re-parsed.
	r := Result{Err: "canceled: context canceled", state: ProgressCanceled}
	if got := r.State(); got != ProgressCanceled {
		t.Fatalf("recorded state = %q, want %q", got, ProgressCanceled)
	}
}
