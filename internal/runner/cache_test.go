package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", &Outcome{Trace: "a"})
	c.Put("b", &Outcome{Trace: "b"})
	c.Get("a") // promote a over b
	c.Put("c", &Outcome{Trace: "c"})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (a was more recently used)")
	}
	for _, k := range []string{"a", "c"} {
		if out, ok := c.Get(k); !ok || out.Trace != k {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := &Outcome{Trace: "kafka", Instructions: 123, Cycles: 456, IPC: 0.269, Misses: 7}
	c1.Put("deadbeef", want)

	// A fresh cache over the same directory serves the result without
	// resimulation, and promotes it into memory.
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("deadbeef")
	if !ok {
		t.Fatal("disk store miss")
	}
	if *got != *want {
		t.Fatalf("disk round-trip mutated outcome: %+v vs %+v", got, want)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", s.DiskHits)
	}
	if c2.Len() != 1 {
		t.Fatal("disk hit not promoted to memory")
	}

	// Corrupt files are treated as misses, not errors.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("bad"); ok {
		t.Fatal("corrupt cache file served as a hit")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c, err := NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	ForEach(8, 512, func(i int) {
		key := fmt.Sprintf("k%d", i%100)
		c.Put(key, &Outcome{Trace: key})
		if out, ok := c.Get(key); ok && out.Trace != key {
			t.Errorf("key %s returned %s", key, out.Trace)
		}
	})
}
