package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"thermometer/internal/telemetry/span"
)

// fakeNanos is a deterministic injected clock for span tracers.
func fakeNanos() func() int64 {
	var mu sync.Mutex
	var t int64
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		t += 1000
		return t
	}
}

// TestSpanObservationGolden pins the acceptance guarantee: a span-annotated,
// progress-observed sweep produces byte-identical output to an unobserved
// sweep at any pool width. Observation must be side-effect-free.
func TestSpanObservationGolden(t *testing.T) {
	specs := testGrid(t)
	render := func(workers int, observed bool) string {
		e := &Engine{Workers: workers}
		var results []Result
		if observed {
			e.Spans = span.New(fakeNanos(), 4096)
			results = e.SweepProgress(context.Background(), specs, func(Progress) {})
		} else {
			results = e.Sweep(context.Background(), specs)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := render(1, false)
	for _, workers := range []int{1, 8} {
		if got := render(workers, true); got != plain {
			t.Errorf("observed sweep at width %d differs from unobserved output:\n%s\nvs\n%s",
				workers, head(got), head(plain))
		}
	}
}

// TestSpanDeterminism pins the repeat-run tracing guarantee: a serial sweep
// traced twice under the same injected clock exports byte-identical Chrome
// traces, and at any width the recorded span identities are the same set.
func TestSpanDeterminism(t *testing.T) {
	specs := testGrid(t)[:6]
	trace := func(workers int) *span.Tracer {
		e := &Engine{Workers: workers, Spans: span.New(fakeNanos(), 4096)}
		e.Sweep(context.Background(), specs)
		return e.Spans
	}
	var first, second bytes.Buffer
	if err := trace(1).WriteChromeTrace(&first); err != nil {
		t.Fatal(err)
	}
	if err := trace(1).WriteChromeTrace(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("serial repeat runs exported different Chrome traces")
	}

	ids := func(tr *span.Tracer) []string {
		var out []string
		for _, s := range tr.Spans() {
			out = append(out, fmt.Sprintf("%s/%s/%s/%s", s.Trace, s.ID, s.Parent, s.Name))
		}
		sort.Strings(out)
		return out
	}
	serial, parallel := ids(trace(1)), ids(trace(8))
	if len(serial) == 0 {
		t.Fatal("no spans recorded")
	}
	if fmt.Sprint(serial) != fmt.Sprint(parallel) {
		t.Fatalf("span identity set differs between widths:\n%v\nvs\n%v", serial, parallel)
	}
}

// TestSpanStages checks every lifecycle stage lands in the trace: job root,
// cache lookup (miss then hit), trace load, hint load, simulate, aggregate —
// with parents chaining to the job root derived from the spec key.
func TestSpanStages(t *testing.T) {
	cache, err := NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 1, Cache: cache, Spans: span.New(fakeNanos(), 256)}
	spec := Spec{App: "kafka", Scale: 64, Policy: "thermometer", Hints: true}
	if r := e.Run(context.Background(), spec); r.Err != "" {
		t.Fatal(r.Err)
	}
	if r := e.Run(context.Background(), spec); !r.Cached {
		t.Fatal("second run not cached")
	}

	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	key := norm.Key()
	root := span.Derive(key, "job")
	byName := map[string][]span.Span{}
	for _, s := range e.Spans.Spans() {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range []string{"trace_load", "hint_load", "simulate", "aggregate"} {
		ss := byName[name]
		if len(ss) != 1 {
			t.Fatalf("stage %q recorded %d times, want 1 (fresh run only)", name, len(ss))
		}
		if ss[0].Parent != root || ss[0].ID != span.Derive(key, name) || ss[0].Trace != span.Derive(key) {
			t.Fatalf("stage %q has wrong identity: %+v", name, ss[0])
		}
	}
	lookups := byName["cache"]
	if len(lookups) != 2 || lookups[0].Detail != "miss" || lookups[1].Detail != "hit" {
		t.Fatalf("cache lookups: %+v", lookups)
	}
	jobs := byName["job"]
	if len(jobs) != 2 || jobs[0].Detail != "done" || jobs[1].Detail != "cached" {
		t.Fatalf("job roots: %+v", jobs)
	}
	if jobs[0].Parent != 0 {
		t.Fatal("job root has a parent")
	}
}

// TestSweepProgressNotifications checks the callback protocol: exactly one
// started and one terminal notification per job, terminal states mirroring
// the results, cache hits flagged.
func TestSweepProgressNotifications(t *testing.T) {
	cache, err := NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 4, Cache: cache}
	specs := []Spec{
		{App: "kafka", Scale: 64, Mode: ModeReplay},
		{App: "nosuchapp"}, // invalid
		{App: "python", Scale: 64, Mode: ModeReplay},
	}
	collect := func() map[int][]Progress {
		var mu sync.Mutex
		got := map[int][]Progress{}
		e.SweepProgress(context.Background(), specs, func(p Progress) {
			mu.Lock()
			got[p.Index] = append(got[p.Index], p)
			mu.Unlock()
		})
		return got
	}

	first := collect()
	for i := range specs {
		evs := first[i]
		if len(evs) != 2 || evs[0].State != ProgressStarted {
			t.Fatalf("job %d events: %+v", i, evs)
		}
	}
	if first[0][1].State != ProgressDone || first[0][1].Accesses == 0 {
		t.Fatalf("job 0 terminal: %+v", first[0][1])
	}
	if first[1][1].State != ProgressInvalid || first[1][1].Err == "" {
		t.Fatalf("job 1 terminal: %+v", first[1][1])
	}

	second := collect()
	if !second[0][1].Cached || second[0][1].State != ProgressDone {
		t.Fatalf("repeat job 0 not reported cached: %+v", second[0][1])
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var mu sync.Mutex
	var canceled int
	e.SweepProgress(ctx, specs[:1], func(p Progress) {
		mu.Lock()
		if p.State == ProgressCanceled {
			canceled++
		}
		mu.Unlock()
	})
	if canceled != 1 {
		t.Fatalf("canceled notifications = %d, want 1", canceled)
	}
}

// TestProgressStateIsExplicit pins that terminal classification comes from
// the recorded job state, not from re-parsing Result.Err: a simulation
// failure whose message happens to start with "canceled" or "invalid spec"
// must still be reported as failed.
func TestProgressStateIsExplicit(t *testing.T) {
	e := &Engine{Workers: 1}
	e.execHook = func(Spec) (*Outcome, error) {
		return nil, errors.New("canceled upstream: invalid spec payload from backend")
	}
	var mu sync.Mutex
	var terminal []Progress
	e.SweepProgress(context.Background(), []Spec{{App: "kafka", Scale: 64, Mode: ModeReplay}},
		func(p Progress) {
			mu.Lock()
			if p.State != ProgressStarted {
				terminal = append(terminal, p)
			}
			mu.Unlock()
		})
	if len(terminal) != 1 || terminal[0].State != ProgressFailed {
		t.Fatalf("misleading error text misclassified: %+v", terminal)
	}
}
