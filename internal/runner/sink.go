package runner

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON writes the sweep results as an indented JSON array. The
// encoding is deterministic: struct field order is fixed and float fields
// use Go's shortest-round-trip formatting, so a sweep run at any pool
// width produces byte-identical output.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// csvHeader is the fixed column set of WriteCSV.
var csvHeader = []string{
	"key", "suite", "app", "index", "input", "scale", "mode", "policy",
	"hints", "btb_entries", "btb_ways", "trace", "instructions", "cycles",
	"ipc", "accesses", "hits", "misses", "mpki", "cached", "error",
}

// WriteCSV writes one row per result with a fixed header, deterministic at
// any pool width (the "cached" column reflects cache state, so golden
// comparisons should use equally warmed — typically fresh — engines).
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range results {
		s := r.Spec
		row := []string{
			r.Key, s.Suite, s.App,
			strconv.Itoa(s.Index), strconv.Itoa(s.Input), strconv.Itoa(s.Scale),
			s.Mode, s.Policy, strconv.FormatBool(s.Hints),
			strconv.Itoa(s.BTBEntries), strconv.Itoa(s.BTBWays),
		}
		if o := r.Outcome; o != nil {
			row = append(row,
				o.Trace,
				strconv.FormatUint(o.Instructions, 10),
				strconv.FormatUint(o.Cycles, 10),
				formatFloat(o.IPC),
				strconv.FormatUint(o.Accesses, 10),
				strconv.FormatUint(o.Hits, 10),
				strconv.FormatUint(o.Misses, 10),
				formatFloat(o.MPKI),
			)
		} else {
			row = append(row, "", "", "", "", "", "", "", "")
		}
		row = append(row, strconv.FormatBool(r.Cached), r.Err)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders a float deterministically (shortest round-trip).
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Grid expands the cross product of policies × specs: for each base spec
// and each policy name it yields a copy with the policy set (and Hints
// enabled for the thermometer-family policies that need them). It is the
// canonical way sweeps over the paper's policy roster are built.
func Grid(bases []Spec, policyNames []string) ([]Spec, error) {
	out := make([]Spec, 0, len(bases)*len(policyNames))
	for _, b := range bases {
		for _, p := range policyNames {
			s := b
			s.Policy = p
			switch p {
			case "thermometer", "thermometer-nobypass", "holistic":
				s.Hints = true
			}
			n, err := s.Normalized()
			if err != nil {
				return nil, fmt.Errorf("grid spec %s/%s: %w", b.TraceName(), p, err)
			}
			out = append(out, n)
		}
	}
	return out, nil
}
