package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			counts := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachSerialIsInline(t *testing.T) {
	// workers=1 must preserve strict index order (the reference serial path).
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestSpecNormalizedDefaults(t *testing.T) {
	n, err := Spec{App: "kafka"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Suite != SuiteApp || n.Mode != ModeTiming || n.Policy != "lru" ||
		n.Scale != 1 || n.BTBEntries != 8192 || n.BTBWays != 4 {
		t.Fatalf("defaults not applied: %+v", n)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		spec Spec
		want string // substring of the error
	}{
		{Spec{}, "requires an app"},
		{Spec{App: "nosuchapp"}, "unknown app"},
		{Spec{App: "kafka", Policy: "belady"}, "unknown policy"},
		{Spec{App: "kafka", Mode: "emulate"}, "unknown mode"},
		{Spec{App: "kafka", Index: 3}, "only valid for the cbp5/ipc1"},
		{Spec{Suite: SuiteCBP5, Index: 100000}, "out of range"},
		{Spec{Suite: SuiteIPC1, App: "kafka"}, "only valid for the app suite"},
		{Spec{Suite: "spec2017"}, "unknown suite"},
		{Spec{App: "kafka", Input: 9}, "input 9 out of range"},
		{Spec{App: "kafka", BTBEntries: 4, BTBWays: 8}, "exceeds"},
	}
	for _, c := range cases {
		if _, err := c.spec.Normalized(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %+v: error %v, want substring %q", c.spec, err, c.want)
		}
	}
}

func TestSpecKeyCanonicalization(t *testing.T) {
	// Explicit defaults and omitted defaults are the same job.
	a := Spec{App: "kafka"}
	b := Spec{Suite: SuiteApp, App: "kafka", Scale: 1, Mode: ModeTiming,
		Policy: "lru", BTBEntries: 8192, BTBWays: 4}
	if a.Key() != b.Key() {
		t.Fatal("omitted and explicit defaults hash differently")
	}
	// Any semantic change must change the key.
	variants := []Spec{
		{App: "kafka", Policy: "srrip"},
		{App: "kafka", Scale: 2},
		{App: "kafka", Input: 1},
		{App: "kafka", Hints: true, Policy: "thermometer"},
		{App: "kafka", BTBEntries: 4096},
		{App: "mysql"},
		{Suite: SuiteCBP5, Index: 0},
	}
	seen := map[string]int{a.Key(): -1}
	for i, v := range variants {
		k := v.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("specs %d and %d collide: %+v vs %+v", i, j, v, variants[max(j, 0)])
		}
		seen[k] = i
	}
	// Keys are stable across calls.
	if a.Key() != a.Key() {
		t.Fatal("key not stable")
	}
}

func TestGridExpansion(t *testing.T) {
	bases := []Spec{{App: "kafka"}, {App: "mysql"}}
	specs, err := Grid(bases, []string{"lru", "srrip", "thermometer"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("grid size %d, want 6", len(specs))
	}
	for _, s := range specs {
		if s.Policy == "thermometer" && !s.Hints {
			t.Errorf("thermometer spec missing hints: %+v", s)
		}
		if s.Policy == "lru" && s.Hints {
			t.Errorf("lru spec has hints: %+v", s)
		}
	}
	if _, err := Grid(bases, []string{"bogus"}); err == nil {
		t.Fatal("Grid accepted an unknown policy")
	}
}
