package runner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"thermometer/internal/telemetry"
)

// Engine executes sweeps: grids of Specs fanned out over a bounded worker
// pool, with results merged in submission order and an optional
// content-addressed cache consulted per job. The zero value is usable; all
// fields are read-only once the first sweep starts.
type Engine struct {
	// Workers bounds pool width (<= 0: runtime.GOMAXPROCS(0); 1: serial).
	Workers int
	// Cache, when non-nil, is consulted (and filled) per job by canonical
	// spec hash.
	Cache *Cache
	// Metrics, when non-nil, receives runner telemetry: runner_jobs_*,
	// runner_cache_*, runner_queue_depth, runner_jobs_inflight, and — when
	// NowNanos is also set — the runner_job_latency_us histogram.
	Metrics *telemetry.Registry
	// NowNanos, when non-nil, is the injected monotonic-ish clock used
	// ONLY for the job latency histogram. Job execution itself must stay
	// timestamp-free (the noambient analyzer forbids time.Now in this
	// package), so the serving layer injects its clock here and cached
	// results stay interchangeable with fresh ones.
	NowNanos func() int64

	mu         sync.Mutex
	traces     map[string]*traceSlot
	hintTables map[string]*hintSlot
	queued     atomic.Int64
	inflight   atomic.Int64

	// execHook, when non-nil, replaces the simulation executor (tests use
	// it to inject panics and synthetic outcomes).
	execHook func(Spec) (*Outcome, error)
}

// Result is one job's outcome envelope. Within a sweep, results are
// ordered exactly like the submitted specs regardless of pool width.
type Result struct {
	// Spec is the normalized spec (defaults explicit); for invalid
	// submissions it echoes the input as received.
	Spec Spec `json:"spec"`
	// Key is the spec's content address ("" for invalid specs).
	Key string `json:"key,omitempty"`
	// Cached reports that the outcome was served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Outcome is the simulation result (nil when Err is set).
	Outcome *Outcome `json:"outcome,omitempty"`
	// Err describes why the job failed: an invalid spec, a cancelled
	// sweep, or a panicking simulation (isolated to this job).
	Err string `json:"error,omitempty"`
}

// Sweep executes the specs and returns one Result per spec, in submission
// order — the output is byte-identical at any Workers setting. A cancelled
// context fails jobs that have not yet started (running simulations are
// not interruptible); a panicking job becomes a failed Result without
// affecting its neighbors.
func (e *Engine) Sweep(ctx context.Context, specs []Spec) []Result {
	results := make([]Result, len(specs))
	e.queued.Add(int64(len(specs)))
	e.setGauges()
	if m := e.Metrics; m != nil {
		m.Counter("runner_sweeps_total").Inc()
		m.Counter("runner_jobs_total").Add(uint64(len(specs)))
	}
	ForEach(e.Workers, len(specs), func(i int) {
		e.queued.Add(-1)
		e.inflight.Add(1)
		e.setGauges()
		results[i] = e.runJob(ctx, specs[i])
		e.inflight.Add(-1)
		e.setGauges()
	})
	return results
}

// Run executes a single spec (a one-job sweep).
func (e *Engine) Run(ctx context.Context, spec Spec) Result {
	return e.Sweep(ctx, []Spec{spec})[0]
}

func (e *Engine) runJob(ctx context.Context, spec Spec) Result {
	norm, err := spec.Normalized()
	if err != nil {
		e.count("runner_jobs_invalid")
		return Result{Spec: spec, Err: "invalid spec: " + err.Error()}
	}
	res := Result{Spec: norm, Key: norm.Key()}
	if ctx != nil && ctx.Err() != nil {
		e.count("runner_jobs_canceled")
		res.Err = "canceled: " + ctx.Err().Error()
		return res
	}
	if e.Cache != nil {
		if out, ok := e.Cache.Get(res.Key); ok {
			e.count("runner_cache_hits")
			res.Cached = true
			res.Outcome = out
			return res
		}
		e.count("runner_cache_misses")
	}

	var start int64
	if e.NowNanos != nil {
		start = e.NowNanos()
	}
	out, err := e.executeSafe(norm)
	if e.NowNanos != nil && e.Metrics != nil {
		if d := e.NowNanos() - start; d > 0 {
			e.Metrics.Histogram("runner_job_latency_us").Observe(uint64(d) / 1000)
		}
	}
	if err != nil {
		e.count("runner_jobs_failed")
		res.Err = err.Error()
		return res
	}
	res.Outcome = out
	if e.Cache != nil {
		e.Cache.Put(res.Key, out)
	}
	e.count("runner_jobs_done")
	return res
}

// executeSafe isolates a job panic: a panicking simulation (bad geometry,
// internal invariant violation) fails that one job instead of unwinding
// the whole sweep.
func (e *Engine) executeSafe(spec Spec) (out *Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	if e.execHook != nil {
		return e.execHook(spec)
	}
	return e.execute(spec)
}

func (e *Engine) count(name string) {
	if e.Metrics != nil {
		e.Metrics.Counter(name).Inc()
	}
}

func (e *Engine) setGauges() {
	if m := e.Metrics; m != nil {
		m.Gauge("runner_queue_depth").Set(uint64(max64(e.queued.Load(), 0)))
		m.Gauge("runner_jobs_inflight").Set(uint64(max64(e.inflight.Load(), 0)))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
