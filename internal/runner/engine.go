package runner

import (
	"context"
	"fmt"
	"sync/atomic"

	"thermometer/internal/telemetry"
	"thermometer/internal/telemetry/span"
)

// Engine executes sweeps: grids of Specs fanned out over a bounded worker
// pool, with results merged in submission order and an optional
// content-addressed cache consulted per job. The zero value is usable; all
// fields are read-only once the first sweep starts.
type Engine struct {
	// Workers bounds pool width (<= 0: runtime.GOMAXPROCS(0); 1: serial).
	Workers int
	// Cache, when non-nil, is consulted (and filled) per job by canonical
	// spec hash.
	Cache *Cache
	// Metrics, when non-nil, receives runner telemetry: runner_jobs_*,
	// runner_cache_*, runner_queue_depth, runner_jobs_inflight, and — when
	// NowNanos is also set — the runner_job_latency_us histogram.
	Metrics *telemetry.Registry
	// NowNanos, when non-nil, is the injected monotonic-ish clock used
	// ONLY for the job latency histogram. Job execution itself must stay
	// timestamp-free (the noambient analyzer forbids time.Now in this
	// package), so the serving layer injects its clock here and cached
	// results stay interchangeable with fresh ones.
	NowNanos func() int64
	// Spans, when non-nil, receives lifecycle spans for every job: a root
	// "job" span plus cache/trace_load/hint_load/simulate/aggregate stage
	// children. Span identity derives from the job's spec key (see package
	// span), so repeat sweeps trace identically; the tracer carries its own
	// injected clock, keeping this package timestamp-free. Spans observe
	// execution without influencing it — outcomes are byte-identical with
	// the tracer attached or absent.
	Spans *span.Tracer

	queued   atomic.Int64
	inflight atomic.Int64

	// execHook, when non-nil, replaces the simulation executor (tests use
	// it to inject panics and synthetic outcomes).
	execHook func(Spec) (*Outcome, error)
}

// Result is one job's outcome envelope. Within a sweep, results are
// ordered exactly like the submitted specs regardless of pool width.
type Result struct {
	// Spec is the normalized spec (defaults explicit); for invalid
	// submissions it echoes the input as received.
	Spec Spec `json:"spec"`
	// Key is the spec's content address ("" for invalid specs).
	Key string `json:"key,omitempty"`
	// Cached reports that the outcome was served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Outcome is the simulation result (nil when Err is set).
	Outcome *Outcome `json:"outcome,omitempty"`
	// Err describes why the job failed: an invalid spec, a cancelled
	// sweep, or a panicking simulation (isolated to this job).
	Err string `json:"error,omitempty"`

	// state is the terminal Progress* classification, recorded by runJob at
	// the point the outcome is decided so observers never have to re-parse
	// Err wording. Unexported: it is progress plumbing, not part of the
	// serialized result envelope ("" in hand-built Results means done when
	// Err is empty, failed otherwise).
	state string
}

// State returns the result's terminal Progress* classification. For results
// produced by an Engine it is the state recorded at the moment the outcome
// was decided; for hand-built (or wire-decoded) Results it falls back to
// ProgressDone/ProgressFailed by Err presence. The fabric worker uses it to
// classify results without re-parsing Err wording.
func (r Result) State() string {
	if r.state != "" {
		return r.state
	}
	if r.Err == "" {
		return ProgressDone
	}
	return ProgressFailed
}

// Progress states reported to a SweepProgress callback. A job emits exactly
// two notifications: ProgressStarted when a worker picks it up, then one of
// the terminal states mirroring its Result.
const (
	ProgressStarted  = "started"
	ProgressDone     = "done"
	ProgressFailed   = "failed"
	ProgressInvalid  = "invalid"
	ProgressCanceled = "canceled"
)

// Progress is one per-job lifecycle notification within a sweep. It carries
// no timestamps — the runner stays timestamp-free — so observers (the
// thermod server's SSE stream) attach their own clock on receipt.
type Progress struct {
	// Index is the job's position in the submitted spec slice.
	Index int
	// State is one of the Progress* constants.
	State string
	// Cached reports a result served from the content-addressed cache
	// (terminal states only).
	Cached bool
	// Key is the spec's content address ("" for invalid specs).
	Key string
	// Err echoes Result.Err for failed/invalid/canceled jobs.
	Err string
	// Instructions and Accesses echo the outcome so observers can derive
	// throughput (blocks/sec) against their own clock.
	Instructions uint64
	Accesses     uint64
}

// Sweep executes the specs and returns one Result per spec, in submission
// order — the output is byte-identical at any Workers setting. A cancelled
// context fails jobs that have not yet started (running simulations are
// not interruptible); a panicking job becomes a failed Result without
// affecting its neighbors.
func (e *Engine) Sweep(ctx context.Context, specs []Spec) []Result {
	return e.SweepProgress(ctx, specs, nil)
}

// SweepProgress is Sweep with a per-job progress callback: fn (when non-nil)
// receives a ProgressStarted notification as each job is picked up and a
// terminal notification as it completes. fn is called from worker
// goroutines — it must be safe for concurrent use and fast (the worker
// blocks until it returns). Progress observation does not affect results:
// output remains byte-identical to a plain Sweep at any pool width.
func (e *Engine) SweepProgress(ctx context.Context, specs []Spec, fn func(Progress)) []Result {
	results := make([]Result, len(specs))
	e.queued.Add(int64(len(specs)))
	e.setGauges()
	if m := e.Metrics; m != nil {
		m.Counter("runner_sweeps_total").Inc()
		m.Counter("runner_jobs_total").Add(uint64(len(specs)))
	}
	ForEach(e.Workers, len(specs), func(i int) {
		e.queued.Add(-1)
		e.inflight.Add(1)
		e.setGauges()
		if fn != nil {
			fn(Progress{Index: i, State: ProgressStarted})
		}
		results[i] = e.runJob(ctx, specs[i])
		if fn != nil {
			fn(progressOf(i, results[i]))
		}
		e.inflight.Add(-1)
		e.setGauges()
	})
	e.publishCacheStats()
	return results
}

// progressOf derives the terminal progress notification from a completed
// Result.
func progressOf(i int, r Result) Progress {
	p := Progress{Index: i, State: r.state, Cached: r.Cached, Key: r.Key, Err: r.Err}
	if p.State == "" {
		if r.Err == "" {
			p.State = ProgressDone
		} else {
			p.State = ProgressFailed
		}
	}
	if p.State == ProgressDone && r.Outcome != nil {
		p.Instructions = r.Outcome.Instructions
		p.Accesses = r.Outcome.Accesses
	}
	return p
}

// Run executes a single spec (a one-job sweep).
func (e *Engine) Run(ctx context.Context, spec Spec) Result {
	return e.Sweep(ctx, []Spec{spec})[0]
}

// spanScope carries the deterministic span identity of one job through its
// execution stages. The zero scope (nil tracer) is inert, so the untraced
// path costs one nil check per stage.
type spanScope struct {
	t     *span.Tracer
	key   string  // the job's spec content address
	trace span.ID // Derive(key)
	root  span.ID // Derive(key, "job"), parent of every stage span
}

func newSpanScope(t *span.Tracer, key string) spanScope {
	if t == nil {
		return spanScope{}
	}
	return spanScope{t: t, key: key, trace: span.Derive(key), root: span.Derive(key, "job")}
}

// start opens a stage span under the job root; its ID derives from the spec
// key and stage name, so repeat runs trace identically.
func (sc spanScope) start(name string) span.Active {
	if sc.t == nil {
		return span.Active{}
	}
	return sc.t.Start(sc.trace, span.Derive(sc.key, name), sc.root, name)
}

func (e *Engine) runJob(ctx context.Context, spec Spec) Result {
	norm, err := spec.Normalized()
	if err != nil {
		e.count("runner_jobs_invalid")
		return Result{Spec: spec, Err: "invalid spec: " + err.Error(), state: ProgressInvalid}
	}
	res := Result{Spec: norm, Key: norm.Key()}
	sc := newSpanScope(e.Spans, res.Key)
	var job span.Active
	if sc.t != nil {
		job = sc.t.Start(sc.trace, sc.root, 0, "job")
	}
	if ctx != nil && ctx.Err() != nil {
		e.count("runner_jobs_canceled")
		res.Err = "canceled: " + ctx.Err().Error()
		res.state = ProgressCanceled
		job.EndDetail("canceled")
		return res
	}
	if e.Cache != nil {
		lookup := sc.start("cache")
		out, ok := e.Cache.Get(res.Key)
		if ok {
			lookup.EndDetail("hit")
			e.count("runner_cache_hits")
			res.Cached = true
			res.Outcome = out
			res.state = ProgressDone
			job.EndDetail("cached")
			return res
		}
		lookup.EndDetail("miss")
		e.count("runner_cache_misses")
	}

	var start int64
	if e.NowNanos != nil {
		start = e.NowNanos()
	}
	out, err := e.executeSafe(norm, sc)
	if e.NowNanos != nil && e.Metrics != nil {
		if d := e.NowNanos() - start; d > 0 {
			e.Metrics.Histogram("runner_job_latency_us").Observe(uint64(d) / 1000)
		}
	}
	if err != nil {
		e.count("runner_jobs_failed")
		res.Err = err.Error()
		res.state = ProgressFailed
		job.EndDetail("failed")
		return res
	}
	res.Outcome = out
	res.state = ProgressDone
	if e.Cache != nil {
		e.Cache.Put(res.Key, out)
	}
	e.count("runner_jobs_done")
	job.EndDetail("done")
	return res
}

// executeSafe isolates a job panic: a panicking simulation (bad geometry,
// internal invariant violation) fails that one job instead of unwinding
// the whole sweep.
func (e *Engine) executeSafe(spec Spec, sc spanScope) (out *Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	if e.execHook != nil {
		return e.execHook(spec)
	}
	return e.execute(spec, sc)
}

func (e *Engine) count(name string) {
	if e.Metrics != nil {
		e.Metrics.Counter(name).Inc()
	}
}

func (e *Engine) setGauges() {
	if m := e.Metrics; m != nil {
		m.Gauge("runner_queue_depth").Set(uint64(max64(e.queued.Load(), 0)))
		m.Gauge("runner_jobs_inflight").Set(uint64(max64(e.inflight.Load(), 0)))
	}
}

// publishCacheStats mirrors the result cache's internal traffic counters
// into the metrics registry so they show up on /metrics alongside the
// engine's own runner_cache_hits/misses (which count only engine-level
// lookups, not disk promotions or evictions).
func (e *Engine) publishCacheStats() {
	m := e.Metrics
	if m == nil {
		return
	}
	if e.Cache != nil {
		st := e.Cache.Stats()
		m.SetCounter("runner_cache_mem_hits", st.Hits)
		m.SetCounter("runner_cache_disk_hits", st.DiskHits)
		m.SetCounter("runner_cache_promotions", st.Promotions)
		m.SetCounter("runner_cache_lookup_misses", st.Misses)
		m.SetCounter("runner_cache_evictions", st.Evictions)
		m.SetCounter("runner_cache_disk_errors", st.DiskErrors)
		m.Gauge("runner_cache_size").Set(uint64(e.Cache.Len()))
	}
	// The package-level trace/hint caches are shared by every Engine, so
	// their counters are process totals, not per-engine.
	tr, ht, trLen, htLen := sharedCacheStats()
	m.SetCounter("runner_trace_cache_hits", tr.hits)
	m.SetCounter("runner_trace_cache_misses", tr.misses)
	m.SetCounter("runner_trace_cache_evictions", tr.evictions)
	m.Gauge("runner_trace_cache_size").Set(uint64(trLen))
	m.SetCounter("runner_hint_cache_hits", ht.hits)
	m.SetCounter("runner_hint_cache_misses", ht.misses)
	m.SetCounter("runner_hint_cache_evictions", ht.evictions)
	m.Gauge("runner_hint_cache_size").Set(uint64(htLen))
}

// PublishMetrics pre-registers the engine's metric surface (counters at
// their current values, gauges at their current readings) so a freshly
// booted daemon's /metrics endpoint lists the runner metrics before the
// first sweep arrives, and publishes the current cache statistics.
func (e *Engine) PublishMetrics() {
	m := e.Metrics
	if m == nil {
		return
	}
	for _, name := range []string{
		"runner_sweeps_total", "runner_jobs_total", "runner_jobs_done",
		"runner_jobs_failed", "runner_jobs_invalid", "runner_jobs_canceled",
		"runner_cache_hits", "runner_cache_misses",
	} {
		m.Counter(name)
	}
	e.setGauges()
	e.publishCacheStats()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
