package hintqual

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the live debug surface for the recorder:
//
//	/debug/hintqual             full Report as JSON
//	/debug/hintqual/heatmap     HTML page with an inline-SVG per-set
//	                            accuracy heatmap and the drift strip
//	/debug/hintqual/windows.csv the retained drift windows as CSV
//
// JSON responses accept ?top=N to bound the mismatch table. The handler is
// mounted by telemetry.Serve via core's Config wiring (btbsim -hintqual
// -http), next to /debug/attrib.
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/hintqual", r.serveJSON)
	mux.HandleFunc("/debug/hintqual/heatmap", r.serveHeatmapHTML)
	mux.HandleFunc("/debug/hintqual/windows.csv", r.serveWindowsCSV)
	return mux
}

func (r *Recorder) serveJSON(w http.ResponseWriter, req *http.Request) {
	topN := 20
	if v := req.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "top must be a positive integer", http.StatusBadRequest)
			return
		}
		topN = n
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Report(topN))
}

func (r *Recorder) serveWindowsCSV(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	_ = r.WriteWindowsCSV(w)
}

// accuracySVG renders the per-set accuracy heatmap (windows on x, sets on
// y): cell (window e, set s) is the window's agreement percentage for that
// set, shaded dark (0%) to bright (100%). Sets are downsampled to at most
// maxBands horizontal bands so the image stays small for large geometries.
func accuracySVG(sb *strings.Builder, windows []WindowRow, sets int) {
	const (
		maxBands = 128
		cellW    = 6
		cellH    = 4
	)
	bands := sets
	per := 1
	if bands > maxBands {
		per = (sets + maxBands - 1) / maxBands
		bands = (sets + per - 1) / per
	}
	fmt.Fprintf(sb, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`,
		len(windows)*cellW, bands*cellH)
	for e := range windows {
		row := &windows[e]
		for b := 0; b < bands; b++ {
			var agree, total uint64
			for s := b * per; s < (b+1)*per && s < sets; s++ {
				agree += uint64(row.SetAgree[s])
				total += uint64(row.SetTotal[s])
			}
			// Sets with no accesses this window render neutral gray;
			// otherwise dark red (0% agreement) to bright green (100%).
			red, green, blue := 60, 60, 60
			if total > 0 {
				t := float64(agree) / float64(total)
				red = int(200 - 170*t)
				green = int(40 + 180*t)
				blue = 50
			}
			fmt.Fprintf(sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)"/>`,
				e*cellW, b*cellH, cellW, cellH, red, green, blue)
		}
	}
	sb.WriteString(`</svg>`)
}

// driftSVG renders the drift strip: one cell per window, height scaled to
// the L1 distance (full scale 2.0), orange when flagged as drift.
func driftSVG(sb *strings.Builder, windows []WindowRow) {
	const (
		cellW = 6
		maxH  = 48
	)
	fmt.Fprintf(sb, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`,
		len(windows)*cellW, maxH)
	for e := range windows {
		h := int(windows[e].L1 / 2 * maxH)
		if h < 1 {
			h = 1
		}
		color := "rgb(90,130,220)"
		if windows[e].Drift {
			color = "rgb(240,140,30)"
		}
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`,
			e*cellW, maxH-h, cellW, h, color)
	}
	sb.WriteString(`</svg>`)
}

func (r *Recorder) serveHeatmapHTML(w http.ResponseWriter, req *http.Request) {
	rep := r.Report(1)
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html><html><head><title>Hint-quality heatmap</title>` +
		`<style>body{font-family:monospace;background:#111;color:#ddd;padding:1em}` +
		`h2{margin-bottom:0.2em}</style></head><body>`)
	fmt.Fprintf(&sb, `<h1>Hint quality — policy=%s, %d sets &times; %d ways</h1>`,
		rep.Policy, rep.Sets, rep.Ways)
	fmt.Fprintf(&sb, `<p>accuracy %.2f%% of branches, coverage %.2f%% of accesses, `+
		`%d/%d windows drifted (L1 &gt; %.2f). `+
		`<a href="/debug/hintqual">JSON report</a> &middot; `+
		`<a href="/debug/hintqual/windows.csv">CSV</a></p>`,
		100*rep.Summary.AccuracyBranches, 100*rep.Summary.CoverageAccesses,
		rep.Summary.DriftEpochs, rep.Summary.Windows, rep.Threshold)
	if len(rep.Windows) == 0 {
		sb.WriteString(`<p>no drift windows yet</p>`)
	} else {
		sb.WriteString(`<h2>per-set hint accuracy (x: drift windows, y: sets)</h2>`)
		accuracySVG(&sb, rep.Windows, rep.Sets)
		sb.WriteString(`<h2>windowed L1 drift (orange: flagged)</h2>`)
		driftSVG(&sb, rep.Windows)
	}
	sb.WriteString(`</body></html>`)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}
