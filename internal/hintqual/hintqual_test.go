package hintqual

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/profile"
	"thermometer/internal/trace"
)

// table builds a hint table over the default 3-bucket configuration.
func table(hints map[uint64]uint8) *profile.HintTable {
	return &profile.HintTable{Config: profile.DefaultConfig(), Hints: hints}
}

// access drives one demand access through the recorder. nextUse positions
// are synthesized as a strictly increasing stream so every access promises
// reuse (the shadow then behaves like a plain set-associative fill).
func access(r *Recorder, pc uint64, idx int) {
	r.OnDemand(int(pc%4), &btb.Request{PC: pc, NextUse: idx + 1, Index: idx})
}

func TestUnboundRecorderIsInert(t *testing.T) {
	r := New(Options{})
	access(r, 0x40, 0) // must not panic
	r.SampleWindow(100)
	r.OnWarmupReset()
	if s := r.Summary(); s.Accesses != 0 {
		t.Fatalf("unbound recorder recorded %d accesses", s.Accesses)
	}
	rep := r.Report(0)
	if rep.Windows == nil || rep.TopMismatches == nil || rep.ConfusionBranches == nil {
		t.Fatal("unbound report must carry non-nil arrays")
	}
}

func TestCoverageAndConfusion(t *testing.T) {
	// 4 sets x 1 way: distinct PCs per set so every repeat access hits the
	// shadow. Branch 0x10 is hinted Hot and re-accessed often (observed
	// hot); 0x21 is hinted Hot but touched once (observed cold); 0x42 is
	// unhinted and re-accessed (observed hot, predicted the Warm default).
	r := New(Options{})
	r.Bind("lru", 4, 1, table(map[uint64]uint8{0x10: profile.Hot, 0x21: profile.Hot}))

	idx := 0
	for i := 0; i < 10; i++ {
		access(r, 0x10, idx)
		idx++
	}
	access(r, 0x21, idx)
	idx++
	for i := 0; i < 10; i++ {
		access(r, 0x42, idx)
		idx++
	}

	s := r.Summary()
	if s.Accesses != 21 || s.Branches != 3 {
		t.Fatalf("accesses/branches = %d/%d, want 21/3", s.Accesses, s.Branches)
	}
	if want := 11.0 / 21.0; math.Abs(s.CoverageAccesses-want) > 1e-12 {
		t.Fatalf("coverage accesses = %v, want %v", s.CoverageAccesses, want)
	}
	if want := 2.0 / 3.0; math.Abs(s.CoverageBranches-want) > 1e-12 {
		t.Fatalf("coverage branches = %v, want %v", s.CoverageBranches, want)
	}

	rep := r.Report(10)
	// 0x10: 9/10 shadow hits -> Hot observed, Hot predicted: match.
	// 0x21: 0/1 -> Cold observed, Hot predicted: over-predicted.
	// 0x42: 9/10 -> Hot observed, Warm (default) predicted: under-predicted.
	if got := rep.ConfusionBranches[profile.Hot][profile.Hot]; got != 1 {
		t.Fatalf("hot/hot branches = %d, want 1", got)
	}
	if got := rep.ConfusionBranches[profile.Hot][profile.Cold]; got != 1 {
		t.Fatalf("hot/cold branches = %d, want 1", got)
	}
	if got := rep.ConfusionBranches[profile.Warm][profile.Hot]; got != 1 {
		t.Fatalf("warm/hot branches = %d, want 1", got)
	}
	if s.OverPredicted != 1 || s.UnderPredicted != 1 {
		t.Fatalf("over/under = %d/%d, want 1/1", s.OverPredicted, s.UnderPredicted)
	}
	if want := 1.0 / 3.0; math.Abs(s.AccuracyBranches-want) > 1e-12 {
		t.Fatalf("accuracy branches = %v, want %v", s.AccuracyBranches, want)
	}
	if len(rep.TopMismatches) != 2 {
		t.Fatalf("top mismatches = %d, want 2", len(rep.TopMismatches))
	}
	// Sorted by accesses descending: the busy unhinted branch first.
	if rep.TopMismatches[0].PC != 0x42 || rep.TopMismatches[1].PC != 0x21 {
		t.Fatalf("mismatch order = %#x, %#x", rep.TopMismatches[0].PC, rep.TopMismatches[1].PC)
	}
}

func TestDriftWindows(t *testing.T) {
	// Window 1 matches the profile (hinted-hot branch observed hot);
	// window 2 diverges (a burst of hinted-hot but never-reused branches).
	r := New(Options{DriftThreshold: 0.5})
	hints := map[uint64]uint8{0x10: profile.Hot}
	for pc := uint64(0x100); pc < 0x140; pc++ {
		hints[pc] = profile.Hot
	}
	r.Bind("lru", 4, 1, table(hints))

	idx := 0
	for i := 0; i < 40; i++ {
		access(r, 0x10, idx)
		idx++
	}
	r.SampleWindow(1000)
	for pc := uint64(0x100); pc < 0x140; pc++ {
		// One cold touch each: profiled hot, observed cold.
		r.OnDemand(int(pc%4), &btb.Request{PC: pc, NextUse: trace.NoNextUse, Index: idx})
		idx++
	}
	r.SampleWindow(2000)

	rep := r.Report(0)
	if len(rep.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(rep.Windows))
	}
	w1, w2 := rep.Windows[0], rep.Windows[1]
	if w1.StartInstr != 0 || w1.EndInstr != 1000 || w2.StartInstr != 1000 || w2.EndInstr != 2000 {
		t.Fatalf("window bounds [%d,%d) [%d,%d)", w1.StartInstr, w1.EndInstr, w2.StartInstr, w2.EndInstr)
	}
	if w1.Drift {
		t.Fatalf("matching window flagged as drift (L1=%v)", w1.L1)
	}
	if !w2.Drift || w2.L1 != 2 {
		t.Fatalf("divergent window: drift=%t L1=%v, want true/2", w2.Drift, w2.L1)
	}
	if rep.Summary.DriftEpochs != 1 {
		t.Fatalf("drift epochs = %d, want 1", rep.Summary.DriftEpochs)
	}
	// Distribution bookkeeping: both windows' vectors sum to their accesses.
	for _, w := range rep.Windows {
		var p, o uint64
		for i := range w.Predicted {
			p += w.Predicted[i]
			o += w.Observed[i]
		}
		if p != w.Accesses || o != w.Accesses {
			t.Fatalf("window sums %d/%d != accesses %d", p, o, w.Accesses)
		}
	}
}

func TestEmptyWindowSkipped(t *testing.T) {
	r := New(Options{})
	r.Bind("lru", 4, 1, nil)
	r.SampleWindow(500)
	access(r, 0x10, 0)
	r.SampleWindow(1000)
	rep := r.Report(0)
	if len(rep.Windows) != 1 {
		t.Fatalf("windows = %d, want 1 (empty window must be skipped)", len(rep.Windows))
	}
	if rep.Windows[0].StartInstr != 500 {
		t.Fatalf("window start = %d, want 500 (advanced past the empty window)", rep.Windows[0].StartInstr)
	}
}

func TestWindowRingBounded(t *testing.T) {
	r := New(Options{WindowCap: 4})
	r.Bind("lru", 4, 1, nil)
	for i := 0; i < 10; i++ {
		access(r, 0x10, i)
		r.SampleWindow(uint64(i+1) * 100)
	}
	rep := r.Report(0)
	if len(rep.Windows) != 4 || rep.WindowsDropped != 6 {
		t.Fatalf("retained/dropped = %d/%d, want 4/6", len(rep.Windows), rep.WindowsDropped)
	}
	// Oldest-first: the retained rows are the last four samples.
	if rep.Windows[0].EndInstr != 700 || rep.Windows[3].EndInstr != 1000 {
		t.Fatalf("ring order: first end %d, last end %d", rep.Windows[0].EndInstr, rep.Windows[3].EndInstr)
	}
}

func TestOnWarmupResetKeepsTraining(t *testing.T) {
	r := New(Options{})
	r.Bind("lru", 4, 1, table(map[uint64]uint8{0x10: profile.Hot}))
	for i := 0; i < 5; i++ {
		access(r, 0x10, i)
	}
	r.SampleWindow(100)
	r.OnWarmupReset()
	if s := r.Summary(); s.Accesses != 0 || s.Windows != 0 {
		t.Fatalf("post-reset accesses/windows = %d/%d, want 0/0", s.Accesses, s.Windows)
	}
	// The shadow stayed trained: the next access to 0x10 is an immediate
	// hit, so the branch observes Hot from its very first measured access.
	access(r, 0x10, 5)
	rep := r.Report(0)
	if got := rep.ConfusionBranches[profile.Hot][profile.Hot]; got != 1 {
		t.Fatalf("post-reset confusion hot/hot = %d, want 1 (shadow lost training?)", got)
	}
	if rep.Summary.Branches != 1 {
		t.Fatalf("branches = %d, want 1", rep.Summary.Branches)
	}
}

// The per-access path must be allocation-free once the branch working set
// and shadow sets are warm; the drift-window ring is the only steady-state
// allocator and it only runs on epoch boundaries.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	r := New(Options{})
	r.Bind("lru", 16, 4, table(map[uint64]uint8{0x10: profile.Hot}))
	reqs := make([]btb.Request, 256)
	for i := range reqs {
		reqs[i] = btb.Request{PC: uint64(0x1000 + i), NextUse: i + 1, Index: i}
	}
	// Warm the branch table and fill the shadow sets.
	for i := range reqs {
		r.OnDemand(i%16, &reqs[i])
	}
	idx := 0
	allocs := testing.AllocsPerRun(100, func() {
		r.OnDemand(idx%16, &reqs[idx%len(reqs)])
		idx++
	})
	if allocs != 0 {
		t.Fatalf("steady-state OnDemand allocates %.1f objects/op, want 0", allocs)
	}
}

func TestHandlerSurfaces(t *testing.T) {
	r := New(Options{})
	r.Bind("srrip", 4, 1, table(map[uint64]uint8{0x10: profile.Hot}))
	for i := 0; i < 8; i++ {
		access(r, 0x10, i)
	}
	r.SampleWindow(100)
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hintqual", nil))
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("JSON body: %v", err)
	}
	if rep.Policy != "srrip" || rep.Summary.Accesses != 8 {
		t.Fatalf("report = %s/%d accesses", rep.Policy, rep.Summary.Accesses)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hintqual?top=0", nil))
	if rec.Code != 400 {
		t.Fatalf("top=0 status %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hintqual/heatmap", nil))
	if body := rec.Body.String(); !strings.Contains(body, "<svg") || !strings.Contains(body, "srrip") {
		t.Fatalf("heatmap page missing SVG or policy name:\n%.200s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hintqual/windows.csv", nil))
	body := rec.Body.String()
	if !strings.HasPrefix(body, "start_instr,end_instr,accesses") {
		t.Fatalf("csv header:\n%.200s", body)
	}
	if lines := strings.Count(strings.TrimSpace(body), "\n"); lines != 1 {
		t.Fatalf("csv rows = %d, want 1", lines)
	}
}

func TestWriteTextReport(t *testing.T) {
	r := New(Options{})
	r.Bind("lru", 4, 1, table(map[uint64]uint8{0x10: profile.Hot, 0x21: profile.Hot}))
	for i := 0; i < 8; i++ {
		access(r, 0x10, i)
	}
	access(r, 0x21, 8)
	r.SampleWindow(100)

	var sb strings.Builder
	if err := r.WriteText(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"hint-quality report (policy=lru",
		"hint coverage",
		"confusion matrix",
		"drift windows",
		"top mismatched branches",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
