package hintqual

import (
	"fmt"
	"io"
	"sort"

	"thermometer/internal/detmap"
)

// Summary is the compact hint-quality digest embedded in runner outcomes
// and published as telemetry counters at the end of an instrumented run.
type Summary struct {
	// Accesses is the number of demand accesses scored; Branches the number
	// of distinct static branches they touched.
	Accesses uint64 `json:"accesses"`
	Branches int    `json:"branches"`
	// CoverageAccesses/CoverageBranches are the fractions of accesses and
	// branches carrying an explicit hint (vs the DefaultCategory fallback).
	CoverageAccesses float64 `json:"coverage_accesses"`
	CoverageBranches float64 `json:"coverage_branches"`
	// AccuracyBranches is the fraction of branches whose profiled bucket
	// equals the bucket of their final measured Belady ratio;
	// AccuracyAccesses weights the same comparison by demand accesses
	// (running observed bucket at each access).
	AccuracyBranches float64 `json:"accuracy_branches"`
	AccuracyAccesses float64 `json:"accuracy_accesses"`
	// OverPredicted counts branches the profile ran hotter than observed
	// (wasted protection); UnderPredicted counts branches it ran colder
	// (missed protection).
	OverPredicted  uint64 `json:"over_predicted"`
	UnderPredicted uint64 `json:"under_predicted"`
	// Windows is the number of drift windows closed; DriftEpochs how many
	// exceeded the L1 threshold; MaxWindowL1 the largest distance seen in
	// the retained ring.
	Windows     uint64  `json:"windows"`
	DriftEpochs uint64  `json:"drift_epochs"`
	MaxWindowL1 float64 `json:"max_window_l1"`
}

// Report is a consistent snapshot of everything the Recorder knows; it is
// the JSON body served at /debug/hintqual and the source for the text
// report.
type Report struct {
	Policy     string  `json:"policy"`
	Sets       int     `json:"sets"`
	Ways       int     `json:"ways"`
	Categories int     `json:"categories"`
	Threshold  float64 `json:"threshold"`

	Summary Summary `json:"summary"`

	// ConfusionBranches[p][o] counts static branches profiled into bucket p
	// whose final measured ratio lands in bucket o; ConfusionAccesses
	// weights by demand accesses using the running observed bucket.
	ConfusionBranches [][]uint64 `json:"confusion_branches"`
	ConfusionAccesses [][]uint64 `json:"confusion_accesses"`

	// TopMismatches are the most-executed branches whose profiled and
	// observed buckets disagree, descending by accesses (ties by PC).
	TopMismatches []BranchAudit `json:"top_mismatches"`

	// Windows is the drift-window ring oldest-first; WindowsDropped counts
	// rows that fell off it.
	Windows        []WindowRow `json:"windows"`
	WindowsDropped uint64      `json:"windows_dropped"`
}

// ringSlice returns the retained ring contents oldest-first. Caller holds
// r.mu.
func ringSlice[T any](ring []T, head int) []T {
	out := make([]T, 0, len(ring))
	out = append(out, ring[head:]...)
	out = append(out, ring[:head]...)
	return out
}

// summaryLocked assembles the digest. Caller holds r.mu.
func (r *Recorder) summaryLocked() Summary {
	s := Summary{
		Accesses:    r.accesses,
		Branches:    len(r.perBranch),
		Windows:     r.winTotal,
		DriftEpochs: r.driftEpochs,
	}
	var hintedBranches, matchBranches int
	for _, b := range r.perBranch {
		if b.hinted {
			hintedBranches++
		}
		obs := r.observedBucket(b)
		switch {
		case b.predicted == obs:
			matchBranches++
		case b.predicted > obs:
			s.OverPredicted++
		default:
			s.UnderPredicted++
		}
	}
	if s.Accesses > 0 {
		s.CoverageAccesses = float64(r.hintedAccesses) / float64(s.Accesses)
	}
	if s.Branches > 0 {
		s.CoverageBranches = float64(hintedBranches) / float64(s.Branches)
		s.AccuracyBranches = float64(matchBranches) / float64(s.Branches)
	}
	var diag uint64
	for i := range r.confAccess {
		diag += r.confAccess[i][i]
	}
	if s.Accesses > 0 {
		s.AccuracyAccesses = float64(diag) / float64(s.Accesses)
	}
	for i := range r.windows {
		if r.windows[i].L1 > s.MaxWindowL1 {
			s.MaxWindowL1 = r.windows[i].L1
		}
	}
	return s
}

// observedBucket is the bucket of b's final measured ratio. Caller holds
// r.mu. A branch with no post-warmup accesses observes bucket 0 (a never-
// accessed branch cannot be protected by any policy).
func (r *Recorder) observedBucket(b *branchStat) uint8 {
	if b.accesses == 0 {
		return 0
	}
	return r.cfg.Categorize(float64(b.shadowHits) / float64(b.accesses))
}

// Summary snapshots the compact digest without materialising the ring or
// confusion matrices' report forms.
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return Summary{}
	}
	return r.summaryLocked()
}

// Report snapshots the recorder. topN bounds TopMismatches (<= 0 means 20).
func (r *Recorder) Report(topN int) *Report {
	if topN <= 0 {
		topN = 20
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Policy:    r.policy,
		Sets:      r.sets,
		Ways:      r.ways,
		Threshold: r.threshold,
		// Non-nil so the JSON body always carries arrays, even when a
		// client snapshots the recorder before Bind.
		ConfusionBranches: [][]uint64{},
		ConfusionAccesses: [][]uint64{},
		TopMismatches:     []BranchAudit{},
		Windows:           []WindowRow{},
	}
	if !r.bound() {
		return rep
	}
	rep.Categories = r.cats
	rep.Summary = r.summaryLocked()

	rep.ConfusionBranches = makeMatrix(r.cats)
	rep.ConfusionAccesses = makeMatrix(r.cats)
	for i := range r.confAccess {
		copy(rep.ConfusionAccesses[i], r.confAccess[i])
	}
	mismatches := make([]BranchAudit, 0, 64)
	for _, pc := range detmap.SortedKeys(r.perBranch) {
		b := r.perBranch[pc]
		obs := r.observedBucket(b)
		rep.ConfusionBranches[b.predicted][obs]++
		if b.predicted == obs {
			continue
		}
		a := BranchAudit{
			PC: pc, Hinted: b.hinted,
			Predicted: b.predicted, Observed: obs,
			Accesses: b.accesses,
		}
		if b.accesses > 0 {
			a.Ratio = float64(b.shadowHits) / float64(b.accesses)
		}
		mismatches = append(mismatches, a)
	}
	sort.SliceStable(mismatches, func(i, j int) bool {
		if mismatches[i].Accesses != mismatches[j].Accesses {
			return mismatches[i].Accesses > mismatches[j].Accesses
		}
		return mismatches[i].PC < mismatches[j].PC
	})
	if len(mismatches) > topN {
		mismatches = mismatches[:topN]
	}
	rep.TopMismatches = mismatches

	rep.Windows = ringSlice(r.windows, r.winHead)
	rep.WindowsDropped = r.winTotal - uint64(len(rep.Windows))
	return rep
}

// WriteText renders a human-readable hint-quality report (the btbsim
// -hintqual output): coverage, the per-bucket confusion matrix, drift
// epochs, and the topN most-executed mismatched branches.
func (r *Recorder) WriteText(w io.Writer, topN int) error {
	rep := r.Report(topN)
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	s := &rep.Summary
	p("hint-quality report (policy=%s, %d sets x %d ways, %d buckets)\n",
		rep.Policy, rep.Sets, rep.Ways, rep.Categories)
	p("  demand accesses   %12d over %d static branches\n", s.Accesses, s.Branches)
	p("  hint coverage     %11.2f%% of accesses, %.2f%% of branches\n",
		100*s.CoverageAccesses, 100*s.CoverageBranches)
	p("  hint accuracy     %11.2f%% of branches, %.2f%% of accesses\n",
		100*s.AccuracyBranches, 100*s.AccuracyAccesses)
	p("    over-predicted  %12d branches (profiled hotter than observed)\n", s.OverPredicted)
	p("    under-predicted %12d branches (profiled colder than observed)\n", s.UnderPredicted)
	p("  confusion matrix (branches, profiled bucket x observed bucket)\n")
	for i, row := range rep.ConfusionBranches {
		p("    profiled %d:", i)
		for _, n := range row {
			p(" %10d", n)
		}
		p("\n")
	}
	p("  drift windows     %12d closed, %d flagged (L1 > %.2f), max L1 %.3f\n",
		s.Windows, s.DriftEpochs, rep.Threshold, s.MaxWindowL1)
	if len(rep.TopMismatches) > 0 {
		p("  top mismatched branches (by demand accesses)\n")
		p("    %-18s %9s %8s %8s %10s %7s\n", "pc", "profiled", "observed", "hinted", "accesses", "ratio")
		for i := range rep.TopMismatches {
			b := &rep.TopMismatches[i]
			p("    %-#18x %9d %8d %8t %10d %7.3f\n",
				b.PC, b.Predicted, b.Observed, b.Hinted, b.Accesses, b.Ratio)
		}
	}
	p("  window ring: %d retained, %d dropped\n", len(rep.Windows), rep.WindowsDropped)
	return err
}

// WriteWindowsCSV emits the retained drift windows as CSV: one row per
// window with bounds, access count, the two distributions, L1, and flag.
func (r *Recorder) WriteWindowsCSV(w io.Writer) error {
	rep := r.Report(1)
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("start_instr,end_instr,accesses")
	for i := 0; i < rep.Categories; i++ {
		p(",predicted_%d", i)
	}
	for i := 0; i < rep.Categories; i++ {
		p(",observed_%d", i)
	}
	p(",l1,drift\n")
	for i := range rep.Windows {
		row := &rep.Windows[i]
		p("%d,%d,%d", row.StartInstr, row.EndInstr, row.Accesses)
		for _, v := range row.Predicted {
			p(",%d", v)
		}
		for _, v := range row.Observed {
			p(",%d", v)
		}
		p(",%.6f,%t\n", row.L1, row.Drift)
	}
	return err
}
