// Package hintqual audits a deployed Thermometer hint table live: how well
// do the temperatures profiled offline describe the branches the workload
// actually executes?
//
// The recorder scores every demand BTB access against a same-geometry
// incremental Belady shadow (belady.Shadow — the identical decision
// procedure the offline profiler uses), so each static branch accumulates an
// *observed* hit-to-taken ratio measured under optimal replacement, exactly
// the quantity the profiler thresholded into temperature buckets. Three
// derived views:
//
//   - a per-static-branch confusion matrix (profiled bucket × observed
//     bucket, both branch-weighted and access-weighted): profiled-hot-
//     observed-cold cells are wasted protection, profiled-cold-observed-hot
//     cells are missed protection;
//   - hint coverage: the fraction of executed branches (and of demand
//     accesses) whose PC carries an explicit hint rather than the profile's
//     DefaultCategory fallback;
//   - a sliding-window drift detector: on each telemetry epoch boundary the
//     window's predicted and observed temperature distributions are closed
//     out and compared by L1 distance; windows beyond a configurable
//     threshold are flagged as drift epochs. A profile that matched its
//     input scores near zero; a stale or cross-input profile drifts.
//
// Bounded state: the drift-window ring retains the last WindowCap rows and
// the per-branch table grows with the static-branch working set (the same
// bound as the profiler itself), never with trace length. The per-access
// path is allocation-free once the branch set and shadow sets are warm
// (pinned by TestRecorderSteadyStateAllocs). The fully-associative FAShadow
// is deliberately *not* used here: its lazy heap grows on every access while
// the working set sits below capacity, which would break that bound.
//
// The Recorder is safe for concurrent use: the simulator mutates it while
// the live debug surface (/debug/hintqual) reads snapshots.
package hintqual

import (
	"sync"

	"thermometer/internal/belady"
	"thermometer/internal/btb"
	"thermometer/internal/profile"
)

// WindowRow is one closed drift window: the predicted (profiled) and
// observed temperature distributions over the window's demand accesses,
// their L1 distance, and per-set agreement counts for the accuracy heatmap.
type WindowRow struct {
	// StartInstr/EndInstr bound the window on the epoch grid.
	StartInstr uint64 `json:"start_instr"`
	EndInstr   uint64 `json:"end_instr"`
	// Accesses is the number of demand accesses scored in this window.
	Accesses uint64 `json:"accesses"`
	// Predicted[i] counts accesses whose branch the profile put in bucket
	// i; Observed[i] counts accesses whose running Belady-shadow ratio put
	// them there. Both sum to Accesses.
	Predicted []uint64 `json:"predicted"`
	Observed  []uint64 `json:"observed"`
	// L1 is the L1 distance between the normalized distributions, in
	// [0, 2]; Drift reports whether it exceeded the recorder's threshold.
	L1    float64 `json:"l1"`
	Drift bool    `json:"drift"`
	// SetAgree/SetTotal give per-BTB-set agreement counts (accesses whose
	// predicted bucket equals the observed bucket) for the heatmap.
	SetAgree []uint32 `json:"set_agree"`
	SetTotal []uint32 `json:"set_total"`
}

// BranchAudit is the report form of one static branch's score.
type BranchAudit struct {
	PC uint64 `json:"pc"`
	// Hinted reports whether the PC carried an explicit profile entry (vs
	// the DefaultCategory fallback).
	Hinted bool `json:"hinted"`
	// Predicted is the profiled bucket; Observed the bucket of the final
	// measured Belady-shadow hit-to-taken ratio.
	Predicted uint8   `json:"predicted"`
	Observed  uint8   `json:"observed"`
	Accesses  uint64  `json:"accesses"`
	Ratio     float64 `json:"ratio"`
}

// Options sizes a Recorder's bounded buffers and tunes the drift detector.
type Options struct {
	// WindowCap is the number of drift-window rows retained (default 512,
	// minimum 1; oldest rows are dropped first).
	WindowCap int
	// DriftThreshold is the windowed L1 distance beyond which a window is
	// flagged as a drift epoch (default 0.25). L1 ranges over [0, 2].
	DriftThreshold float64
}

// branchStat is the per-static-branch audit state.
type branchStat struct {
	predicted  uint8 // profiled bucket (DefaultCategory when unhinted)
	hinted     bool
	accesses   uint64 // post-warmup demand accesses
	shadowHits uint64 // of them, hits in the same-geometry Belady shadow
}

// Recorder is the hint-quality audit engine. Create with New, attach via
// core.Config.HintQual (alongside a telemetry Observer for drift windows),
// and read with Report, Summary, WriteText, or the /debug/hintqual Handler.
type Recorder struct {
	mu sync.Mutex

	policy     string // guarded by mu
	sets, ways int    // guarded by mu

	// cfg is the profile configuration the hint table was built with (the
	// default configuration when auditing without hints); hints may be nil.
	cfg   profile.Config     // guarded by mu
	hints *profile.HintTable // guarded by mu
	cats  int                // guarded by mu; cfg.Categories()

	// shadow is the same-geometry Belady reference the observed ratios are
	// measured against.
	shadow *belady.Shadow // guarded by mu

	perBranch map[uint64]*branchStat // guarded by mu

	// Headline counters (post-warmup).
	accesses       uint64 // guarded by mu
	hintedAccesses uint64 // guarded by mu

	// Access-weighted confusion matrix, indexed [predicted][observed] with
	// the *running* observed bucket as of each access.
	confAccess [][]uint64 // guarded by mu

	// Open drift window accumulators, closed by SampleWindow.
	winStart    uint64   // guarded by mu; instruction count at window open
	winAccesses uint64   // guarded by mu
	winPred     []uint64 // guarded by mu
	winObs      []uint64 // guarded by mu
	winSetAgree []uint32 // guarded by mu
	winSetTotal []uint32 // guarded by mu

	// Closed-window ring (last windowCap rows).
	windows     []WindowRow // guarded by mu
	winHead     int         // guarded by mu
	winTotal    uint64      // guarded by mu
	driftEpochs uint64      // guarded by mu

	windowCap int
	threshold float64
}

// New returns an unbound Recorder; the simulator calls Bind at attach time.
func New(opts Options) *Recorder {
	if opts.WindowCap < 1 {
		opts.WindowCap = 512
	}
	if opts.DriftThreshold <= 0 {
		opts.DriftThreshold = 0.25
	}
	return &Recorder{windowCap: opts.WindowCap, threshold: opts.DriftThreshold}
}

// Threshold returns the drift threshold the recorder flags windows against.
func (r *Recorder) Threshold() float64 { return r.threshold }

// Bind sizes the recorder for one run: the policy under audit, the BTB
// geometry, and the hint table being scored (nil audits the all-default
// table: coverage is zero and every branch is predicted DefaultCategory).
// It clears all recorded state.
func (r *Recorder) Bind(policy string, sets, ways int, hints *profile.HintTable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = policy
	r.sets, r.ways = sets, ways
	r.hints = hints
	if hints != nil {
		r.cfg = hints.Config
	} else {
		r.cfg = profile.DefaultConfig()
	}
	r.cats = r.cfg.Categories()
	r.shadow = belady.NewShadow(sets, ways)
	r.perBranch = make(map[uint64]*branchStat, 1<<12)
	r.accesses, r.hintedAccesses = 0, 0
	r.confAccess = makeMatrix(r.cats)
	r.winStart, r.winAccesses = 0, 0
	r.winPred = make([]uint64, r.cats)
	r.winObs = make([]uint64, r.cats)
	r.winSetAgree = make([]uint32, sets)
	r.winSetTotal = make([]uint32, sets)
	r.windows = make([]WindowRow, 0, r.windowCap)
	r.winHead, r.winTotal = 0, 0
	r.driftEpochs = 0
}

func makeMatrix(n int) [][]uint64 {
	m := make([][]uint64, n)
	for i := range m {
		m[i] = make([]uint64, n)
	}
	return m
}

// bound reports whether Bind has run (all probe entry points no-op before).
func (r *Recorder) bound() bool { return r.shadow != nil }

// branch returns the audit state for pc, resolving its profiled bucket on
// first touch. Caller holds r.mu.
func (r *Recorder) branch(pc uint64) *branchStat {
	b := r.perBranch[pc]
	if b == nil {
		b = &branchStat{predicted: r.cfg.DefaultCategory}
		if r.hints != nil {
			if h, ok := r.hints.Hints[pc]; ok {
				b.predicted = h
				b.hinted = true
			}
		}
		r.perBranch[pc] = b
	}
	return b
}

// OnDemand scores one demand access (hit, insert, or bypass — the probe
// kinds that constitute the demand stream) against the Belady shadow. The
// observed bucket is the branch's *running* shadow hit-to-taken ratio
// including this access, so the window distributions track drift as it
// happens rather than only in hindsight.
func (r *Recorder) OnDemand(set int, req *btb.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	b := r.branch(req.PC)
	out, _ := r.shadow.Access(req.PC, req.NextUse)
	b.accesses++
	if out == belady.ShadowHit {
		b.shadowHits++
	}
	obs := r.cfg.Categorize(float64(b.shadowHits) / float64(b.accesses))

	r.accesses++
	if b.hinted {
		r.hintedAccesses++
	}
	r.confAccess[b.predicted][obs]++
	r.winAccesses++
	r.winPred[b.predicted]++
	r.winObs[obs]++
	if set >= 0 && set < r.sets {
		r.winSetTotal[set]++
		if b.predicted == obs {
			r.winSetAgree[set]++
		}
	}
}

// SampleWindow closes the open drift window at an epoch boundary: the
// accumulated predicted and observed distributions are compared by L1
// distance, flagged against the threshold, and pushed onto the window ring.
// Call it on the telemetry epoch grid; empty windows are skipped so the
// series only contains epochs that scored accesses.
func (r *Recorder) SampleWindow(instr uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	if r.winAccesses == 0 {
		r.winStart = instr
		return
	}
	row := WindowRow{
		StartInstr: r.winStart,
		EndInstr:   instr,
		Accesses:   r.winAccesses,
		Predicted:  append([]uint64(nil), r.winPred...),
		Observed:   append([]uint64(nil), r.winObs...),
		SetAgree:   append([]uint32(nil), r.winSetAgree...),
		SetTotal:   append([]uint32(nil), r.winSetTotal...),
	}
	row.L1 = distL1(row.Predicted, row.Observed, row.Accesses)
	row.Drift = row.L1 > r.threshold
	if row.Drift {
		r.driftEpochs++
	}
	if len(r.windows) < r.windowCap {
		r.windows = append(r.windows, row)
	} else {
		r.windows[r.winHead] = row
		r.winHead++
		if r.winHead == r.windowCap {
			r.winHead = 0
		}
	}
	r.winTotal++

	r.winStart = instr
	r.winAccesses = 0
	clear(r.winPred)
	clear(r.winObs)
	clear(r.winSetAgree)
	clear(r.winSetTotal)
}

// distL1 is the L1 distance between the two count vectors normalized by
// total (which both sum to): sum_i |p_i - o_i| / total, in [0, 2].
func distL1(pred, obs []uint64, total uint64) float64 {
	var sum float64
	for i := range pred {
		d := float64(pred[i]) - float64(obs[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(total)
}

// OnWarmupReset restarts the measurement counters in lockstep with the
// simulator's end-of-warmup statistics reset. Learned state — the shadow
// model contents and the per-branch hint resolutions — stays trained,
// exactly like the BTB itself; only the measured ratios restart.
func (r *Recorder) OnWarmupReset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.bound() {
		return
	}
	r.shadow.ResetStats()
	for _, b := range r.perBranch {
		b.accesses, b.shadowHits = 0, 0
	}
	r.accesses, r.hintedAccesses = 0, 0
	r.confAccess = makeMatrix(r.cats)
	r.winStart, r.winAccesses = 0, 0
	clear(r.winPred)
	clear(r.winObs)
	clear(r.winSetAgree)
	clear(r.winSetTotal)
	r.windows = r.windows[:0]
	r.winHead, r.winTotal = 0, 0
	r.driftEpochs = 0
}
