package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock is a deterministic injected clock: each read advances 1000ns.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1000
		return t
	}
}

func TestDeriveIsStableAndDistinct(t *testing.T) {
	a := Derive("abc123", "simulate")
	b := Derive("abc123", "simulate")
	if a != b {
		t.Fatalf("Derive not stable: %s vs %s", a, b)
	}
	if Derive("abc123", "simulate") == Derive("abc123", "trace_load") {
		t.Fatal("distinct stages collided")
	}
	// NUL-joining means part boundaries matter: ("ab","c") != ("a","bc").
	if Derive("ab", "c") == Derive("a", "bc") {
		t.Fatal("part boundaries not separated")
	}
	if a == 0 {
		t.Fatal("Derive returned the reserved zero ID")
	}
}

func TestStartEndRecordsDurations(t *testing.T) {
	tr := New(fakeClock(), 16)
	root := tr.Start(Derive("k"), Derive("k", "job"), 0, "job")
	child := tr.Start(Derive("k"), Derive("k", "simulate"), Derive("k", "job"), "simulate")
	child.EndDetail("ok")
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// The child ended first, so it is recorded first.
	if spans[0].Name != "simulate" || spans[1].Name != "job" {
		t.Fatalf("order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != Derive("k", "job") || spans[1].Parent != 0 {
		t.Fatalf("parents: %v, %v", spans[0].Parent, spans[1].Parent)
	}
	// fakeClock ticks 1000ns per read: root start=1000, child start=2000,
	// child end=3000, root end=4000.
	if spans[0].Dur != 1000 || spans[1].Dur != 3000 {
		t.Fatalf("durations: %d, %d", spans[0].Dur, spans[1].Dur)
	}
	if spans[0].Detail != "ok" {
		t.Fatalf("detail: %q", spans[0].Detail)
	}
}

func TestRingTruncation(t *testing.T) {
	tr := New(fakeClock(), 4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "s", Start: int64(i)})
	}
	if tr.Total() != 10 || tr.Dropped() != 6 || tr.Cap() != 4 {
		t.Fatalf("total/dropped/cap = %d/%d/%d", tr.Total(), tr.Dropped(), tr.Cap())
	}
	spans := tr.Spans()
	if len(spans) != 4 || spans[0].Start != 6 || spans[3].Start != 9 {
		t.Fatalf("retained: %+v", spans)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	a := tr.Start(1, 2, 3, "x")
	a.End() // must not panic
	tr.Record(Span{})
	if tr.Cap() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dropped_spans":0`) {
		t.Fatalf("nil export: %s", buf.String())
	}
}

func TestNewRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil, …) did not panic")
		}
	}()
	New(nil, 8)
}

// TestChromeTraceDeterminism pins the repeat-run guarantee: two tracers fed
// the same span sequence under the same injected clock export byte-identical
// Chrome traces, and the export is valid JSON carrying the truncation
// metadata.
func TestChromeTraceDeterminism(t *testing.T) {
	run := func() []byte {
		tr := New(fakeClock(), 8)
		for _, key := range []string{"spec-a", "spec-b"} {
			job := tr.Start(Derive(key), Derive(key, "job"), 0, "job")
			sim := tr.Start(Derive(key), Derive(key, "simulate"), Derive(key, "job"), "simulate")
			sim.End()
			job.EndDetail("done")
		}
		// Overflow the ring a little so dropped_spans is nonzero.
		for i := 0; i < 6; i++ {
			tr.Record(Span{Trace: Derive("spec-a"), ID: Derive("spec-a", "pad"), Name: "pad"})
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("repeat runs differ:\n%s\n%s", first, second)
	}

	var doc struct {
		Metadata struct {
			Total    uint64 `json:"total_spans"`
			Retained int    `json:"retained_spans"`
			Dropped  uint64 `json:"dropped_spans"`
		} `json:"metadata"`
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, first)
	}
	if doc.Metadata.Total != 10 || doc.Metadata.Retained != 8 || doc.Metadata.Dropped != 2 {
		t.Fatalf("metadata: %+v", doc.Metadata)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
}

func BenchmarkStartEnd(b *testing.B) {
	tr := New(fakeClock(), 1024)
	trace, id := Derive("bench"), Derive("bench", "stage")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Start(trace, id, 0, "stage").End()
	}
}
