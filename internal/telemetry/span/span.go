// Package span is the sweep-lifecycle span tracer: bounded, allocation-lean
// duration spans for the job pipeline (HTTP accept → queue wait → dispatch →
// trace load → hint load → simulate → aggregate), exportable as Chrome
// trace_event JSON.
//
// Two properties distinguish it from a general-purpose tracer:
//
//   - Deterministic identity. Span and parent IDs are not random: they are
//     derived (Derive) from stable strings — for runner jobs, the job's
//     SHA-256 spec key plus the stage name — so repeat runs of the same sweep
//     produce the same span IDs, and a serial run's trace is byte-identical
//     across invocations under a deterministic clock.
//
//   - Injected time. The tracer never reads the wall clock itself; the
//     embedding layer hands a NowNanos func in (cmd/thermod injects
//     time.Now().UnixNano, tests inject a counter). This package sits in
//     thermolint's noambient scope — unlike its parent internal/telemetry —
//     precisely so the analyzer enforces that contract.
//
// The ring is bounded like the telemetry event tracer: when full, the oldest
// spans are overwritten and the drop count is surfaced in the Chrome export
// metadata, never silently.
package span

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// ID is a 64-bit span, parent, or trace identifier. The zero ID means
// "absent" (a root span has Parent 0).
type ID uint64

// String renders the ID as fixed-width hex (Chrome trace id format).
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Derive returns the deterministic ID for the given parts: the first 8 bytes
// of SHA-256 over the parts joined with NUL separators. Runner job spans use
// Derive(specKey) as the trace ID and Derive(specKey, stage) as the span ID,
// so a repeat run of the same spec traces identically.
func Derive(parts ...string) ID {
	h := sha256.New()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		io.WriteString(h, p)
	}
	sum := h.Sum(nil)
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// Span is one completed duration span. Plain data: the tracer stores spans
// by value in a preallocated ring, so recording is allocation-free once the
// ring is warm.
type Span struct {
	Trace  ID     // groups the spans of one job/request
	ID     ID     // deterministic span identity
	Parent ID     // 0 for roots
	Name   string // stage name ("simulate", "queue_wait", …)
	Detail string // optional annotation ("hit", "miss", an error, …)
	Start  int64  // start, injected-clock nanoseconds
	Dur    int64  // duration in nanoseconds
}

// Tracer is a bounded ring of completed spans. When full it overwrites the
// oldest spans, so the last Cap spans of a long-running daemon are always
// available at fixed memory cost. All methods are safe for concurrent use,
// and every method is a no-op on a nil *Tracer so call sites need no guards.
type Tracer struct {
	nowNanos func() int64

	mu    sync.Mutex
	buf   []Span // guarded by mu
	head  int    // guarded by mu; next write index once the ring is full
	total uint64 // guarded by mu; spans ever recorded
}

// New returns a tracer retaining the last capacity spans (minimum 1).
// nowNanos is the injected clock used by Start/End; it must be non-nil —
// this package deliberately has no ambient-time fallback.
func New(nowNanos func() int64, capacity int) *Tracer {
	if nowNanos == nil {
		panic("span: New requires an injected NowNanos clock")
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{nowNanos: nowNanos, buf: make([]Span, 0, capacity)}
}

// Cap returns the ring capacity; 0 on a nil tracer.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	// Record reassigns the slice header (append), so even reading cap(buf)
	// unlocked is a data race on the header word.
	t.mu.Lock()
	defer t.mu.Unlock()
	return cap(t.buf)
}

// Total returns the number of spans ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}

// Record appends one completed span, overwriting the oldest when full. Use
// it when the caller owns the timestamps (the server computes queue-wait
// from envelope times); spans timed by the tracer's own clock go through
// Start/End instead.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.head] = s
		t.head++
		if t.head == cap(t.buf) {
			t.head = 0
		}
	}
	t.total++
	t.mu.Unlock()
}

// Active is an in-flight span started by Start. It is a value, not a
// pointer, so starting and ending a span allocates nothing.
type Active struct {
	t *Tracer
	s Span
}

// Start opens a span at the injected clock's current time. The caller
// supplies the deterministic identity (trace/id/parent, usually via Derive);
// End records it. Start on a nil tracer returns an inert Active.
func (t *Tracer) Start(trace, id, parent ID, name string) Active {
	if t == nil {
		return Active{}
	}
	return Active{t: t, s: Span{
		Trace: trace, ID: id, Parent: parent, Name: name,
		Start: t.nowNanos(),
	}}
}

// End closes the span and records it. No-op on an inert Active.
func (a Active) End() { a.EndDetail("") }

// EndDetail closes the span with an annotation and records it.
func (a Active) EndDetail(detail string) {
	if a.t == nil {
		return
	}
	a.s.Detail = detail
	a.s.Dur = a.t.nowNanos() - a.s.Start
	a.t.Record(a.s)
}

// Spans returns the retained spans oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out, _, _ := t.snapshot()
	return out
}

// snapshot copies the retained spans oldest-first together with the
// total/dropped counters under ONE lock acquisition, so the counters always
// agree with the span list even while Record runs concurrently (the
// /debug/spans handler exports during live sweeps).
func (t *Tracer) snapshot() (spans []Span, total, dropped uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans = make([]Span, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		spans = append(spans, t.buf[t.head:]...)
		spans = append(spans, t.buf[:t.head]...)
	} else {
		spans = append(spans, t.buf...)
	}
	return spans, t.total, t.total - uint64(len(t.buf))
}

// WriteChromeTrace emits the retained spans as Chrome trace_event JSON
// (load via chrome://tracing or https://ui.perfetto.dev): one complete ("X")
// event per span, one tid lane per trace ID in first-appearance order, and a
// top-level metadata object carrying total/retained/dropped span counts so
// ring truncation is visible in the export itself, not just in logs.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var spans []Span
	var total, dropped uint64
	if t != nil {
		// One lock acquisition for all three: reading them separately lets a
		// concurrent Record land between the reads, exporting metadata that
		// contradicts the span array it describes.
		spans, total, dropped = t.snapshot()
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw,
		`{"displayTimeUnit":"ns","metadata":{"total_spans":%d,"retained_spans":%d,"dropped_spans":%d},"traceEvents":[`,
		total, len(spans), dropped)

	// One tid lane per trace, assigned in first-appearance order so the
	// export is a pure function of ring contents.
	lane := make(map[ID]int, len(spans))
	order := make([]ID, 0, len(spans))
	for _, s := range spans {
		if _, ok := lane[s.Trace]; !ok {
			lane[s.Trace] = len(order) + 1
			order = append(order, s.Trace)
		}
	}
	first := true
	for _, tr := range order {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw,
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"trace %s"}}`,
			lane[tr], tr)
	}
	for _, s := range spans {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw,
			`{"name":%q,"cat":"sweep","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"id":"%s","parent":"%s"`,
			s.Name, lane[s.Trace], float64(s.Start)/1000, float64(s.Dur)/1000, s.ID, s.Parent)
		if s.Detail != "" {
			fmt.Fprintf(bw, `,"detail":%q`, s.Detail)
		}
		bw.WriteString(`}}`)
	}
	if _, err := bw.WriteString("]}"); err != nil {
		return err
	}
	return bw.Flush()
}
