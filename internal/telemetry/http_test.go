package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// seededObserver builds an observer with a fixed, fully deterministic set of
// metrics, epochs, and events — the same every call.
func seededObserver() *Observer {
	obs := New(Options{EpochInterval: 100, EventCap: 8})
	obs.Metrics.Counter("btb_inserts").Add(7)
	obs.Metrics.Counter("btb_evictions").Add(3)
	obs.Metrics.Gauge("btb_capacity").Set(32768)
	h := obs.Metrics.Histogram("ftq_lead_cycles")
	for _, v := range []uint64{1, 2, 4, 8, 200} {
		h.Observe(v)
	}
	obs.Epochs.Tick(&Cumulative{Instructions: 120, Cycles: 150, BTBAccesses: 30, BTBHits: 25, BTBMisses: 5})
	obs.Epochs.Finish(&Cumulative{Instructions: 170, Cycles: 220, BTBAccesses: 41, BTBHits: 33, BTBMisses: 8})
	obs.Events.Record(Event{Cycle: 10, PC: 0x401000, Arg: 0x402000, Kind: EvInsert, Temp: 3})
	obs.Events.Record(Event{Cycle: 20, PC: 0x401000, Arg: 0x401000, Kind: EvEvict})
	return obs
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, body
}

// The debug mux must answer every advertised route with the right status and
// content type — including the pprof endpoints the README quickstart points
// at.
func TestHandlerRoutesStatusAndContentType(t *testing.T) {
	srv := httptest.NewServer(seededObserver().Handler())
	defer srv.Close()

	for _, tc := range []struct {
		path       string
		wantStatus int
		wantType   string
	}{
		{"/metrics", http.StatusOK, "application/json"},
		{"/debug/vars", http.StatusOK, "application/json; charset=utf-8"},
		{"/debug/pprof/", http.StatusOK, "text/html; charset=utf-8"},
		{"/debug/pprof/cmdline", http.StatusOK, "text/plain; charset=utf-8"},
		{"/debug/pprof/heap?debug=1", http.StatusOK, "text/plain; charset=utf-8"},
		{"/debug/pprof/goroutine?debug=1", http.StatusOK, "text/plain; charset=utf-8"},
		{"/nope", http.StatusNotFound, "text/plain; charset=utf-8"},
	} {
		resp, _ := get(t, srv, tc.path)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != tc.wantType {
			t.Errorf("GET %s: content type %q, want %q", tc.path, ct, tc.wantType)
		}
	}
}

// Identically seeded observers must serve byte-identical /metrics bodies:
// the live debug surface inherits the repo-wide determinism contract.
func TestMetricsBodyDeterministic(t *testing.T) {
	bodies := make([][]byte, 2)
	for i := range bodies {
		srv := httptest.NewServer(seededObserver().Handler())
		_, body := get(t, srv, "/metrics")
		srv.Close()
		bodies[i] = body
	}
	if len(bodies[0]) == 0 {
		t.Fatal("empty /metrics body")
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Fatalf("/metrics not deterministic across identically seeded runs:\n%s\n----\n%s",
			bodies[0], bodies[1])
	}
}

// Extra mounts must be routed both at the exact pattern and under its
// subtree, without disturbing the built-in routes.
func TestHandlerMounts(t *testing.T) {
	mounted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write([]byte("mounted:" + r.URL.Path))
	})
	srv := httptest.NewServer(seededObserver().Handler(Mount{Pattern: "/debug/attrib", Handler: mounted}))
	defer srv.Close()

	for _, path := range []string{"/debug/attrib", "/debug/attrib/heatmap"} {
		resp, body := get(t, srv, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if want := "mounted:" + path; string(body) != want {
			t.Fatalf("GET %s: body %q, want %q", path, body, want)
		}
	}
	if resp, _ := get(t, srv, "/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatal("mounting broke /metrics")
	}

	// Serve must accept the same mounts.
	bound, shutdown, err := seededObserver().Serve("127.0.0.1:0", Mount{Pattern: "/debug/attrib", Handler: mounted})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	resp, err := http.Get("http://" + bound + "/debug/attrib")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Serve-mounted route status %d", resp.StatusCode)
	}
}
