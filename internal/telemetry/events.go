package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// EventKind classifies one traced simulator event.
type EventKind uint8

// Event kinds. The BTB structural events mirror btb.ProbeKind; Redirect is
// a frontend resteer (FTQ squash) attributed by cause in Event.Arg.
const (
	EvInsert EventKind = iota
	EvEvict
	EvBypass
	EvPrefetchFill
	EvRedirect
	numEventKinds
)

// String returns the Chrome-trace event name.
func (k EventKind) String() string {
	switch k {
	case EvInsert:
		return "insert"
	case EvEvict:
		return "evict"
	case EvBypass:
		return "bypass"
	case EvPrefetchFill:
		return "prefetch_fill"
	case EvRedirect:
		return "redirect"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Redirect causes carried in Event.Arg for EvRedirect events.
const (
	RedirectBTBMiss uint64 = iota
	RedirectDirMispredict
	RedirectTargetMispredict
)

func redirectCause(arg uint64) string {
	switch arg {
	case RedirectBTBMiss:
		return "btb_miss"
	case RedirectDirMispredict:
		return "dir_mispredict"
	case RedirectTargetMispredict:
		return "target_mispredict"
	default:
		return "unknown"
	}
}

// Event is one traced occurrence. The meaning of Arg depends on Kind:
// for EvEvict it is the evicted branch PC, for EvRedirect the cause code,
// otherwise the branch target.
type Event struct {
	Cycle uint64    `json:"cycle"`
	PC    uint64    `json:"pc"`
	Arg   uint64    `json:"arg"`
	Kind  EventKind `json:"kind"`
	Temp  uint8     `json:"temp"`
}

// Tracer is a bounded ring buffer of Events. When full it overwrites the
// oldest events, so a trace of the *last* Cap events of a long run is
// always available at a fixed memory cost. The zero value is unusable; use
// NewTracer.
type Tracer struct {
	buf    []Event
	head   int    // index of the next write
	total  uint64 // events ever recorded
	byKind [numEventKinds]uint64
}

// NewTracer returns a tracer retaining the last cap events (minimum 1).
func NewTracer(cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	return &Tracer{buf: make([]Event, 0, cap)}
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return cap(t.buf) }

// Total returns the number of events ever recorded (≥ len(Events())).
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns how many events were overwritten by wraparound.
func (t *Tracer) Dropped() uint64 { return t.total - uint64(len(t.buf)) }

// CountByKind returns how many events of kind k were ever recorded,
// including overwritten ones.
func (t *Tracer) CountByKind(k EventKind) uint64 {
	if int(k) >= len(t.byKind) {
		return 0
	}
	return t.byKind[k]
}

// Record appends one event, overwriting the oldest when full.
func (t *Tracer) Record(ev Event) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.head] = ev
		t.head++
		if t.head == cap(t.buf) {
			t.head = 0
		}
	}
	t.total++
	if int(ev.Kind) < len(t.byKind) {
		t.byKind[ev.Kind]++
	}
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// WriteChromeTrace emits the retained events in Chrome trace_event JSON
// (load via chrome://tracing or https://ui.perfetto.dev). Events are
// instant events on one thread per kind; one simulated cycle maps to one
// nanosecond of trace time (ts is in microseconds). The top-level metadata
// object reports ring truncation — dropped_events > 0 means the trace shows
// only the tail of the run, not just in the btbsim CLI warning but in the
// exported file itself.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw,
		`{"displayTimeUnit":"ns","metadata":{"total_events":%d,"retained_events":%d,"dropped_events":%d},"traceEvents":[`,
		t.Total(), len(t.buf), t.Dropped()); err != nil {
		return err
	}
	// Thread-name metadata rows make the per-kind lanes readable.
	for k := EventKind(0); k < numEventKinds; k++ {
		if k > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw,
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`,
			int(k)+1, k.String())
	}
	for _, ev := range t.Events() {
		bw.WriteByte(',')
		ts := float64(ev.Cycle) / 1000 // cycles→ns, ts field is µs
		switch ev.Kind {
		case EvRedirect:
			fmt.Fprintf(bw,
				`{"name":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":{"pc":"0x%x","cause":%q}}`,
				ev.Kind.String(), int(ev.Kind)+1, ts, ev.PC, redirectCause(ev.Arg))
		case EvEvict:
			fmt.Fprintf(bw,
				`{"name":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":{"pc":"0x%x","evicted":"0x%x","temp":%d}}`,
				ev.Kind.String(), int(ev.Kind)+1, ts, ev.PC, ev.Arg, ev.Temp)
		default:
			fmt.Fprintf(bw,
				`{"name":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":{"pc":"0x%x","target":"0x%x","temp":%d}}`,
				ev.Kind.String(), int(ev.Kind)+1, ts, ev.PC, ev.Arg, ev.Temp)
		}
	}
	if _, err := bw.WriteString("]}"); err != nil {
		return err
	}
	return bw.Flush()
}
