// Package telemetry is the simulator's observability subsystem: a
// low-overhead metrics registry (counters, gauges, power-of-two-bucket
// histograms), an epoch sampler that turns end-of-run aggregates into time
// series, and a bounded ring-buffer event tracer that can emit Chrome
// trace_event JSON.
//
// The package is deliberately free of simulator imports: the simulator
// (package core) pushes plain numbers in, and sinks (JSON, CSV, Chrome
// trace, expvar/pprof HTTP) pull snapshots out. Instrumentation is wired
// through an *Observer hung off core.Config; a nil Observer keeps the
// simulator's hot loop on a branch-predicted fast path (see
// BenchmarkObserverDisabled).
//
// Hot-path cost model: metric handles (*Counter, *Gauge, *Histogram) are
// resolved by name once, at wiring time; per-event updates are a single
// atomic add with no allocation, no map lookup, and no lock.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"thermometer/internal/detmap"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value-wins uint64 metric (occupancy, queue depth, …).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v uint64) { g.v.Store(v) }

// Value returns the last recorded value.
func (g *Gauge) Value() uint64 { return g.v.Load() }

// Registry is a name-indexed collection of metrics. Lookups (Counter,
// Gauge, Histogram) are get-or-create and intended for wiring time, not the
// hot path: callers keep the returned pointer and update through it.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// SetCounter force-sets a counter to v (used to import externally
// accumulated totals, e.g. per-policy statistics, at end of run).
func (r *Registry) SetCounter(name string, v uint64) {
	c := r.Counter(name)
	c.v.Store(v)
}

// Snapshot is a point-in-time copy of a registry's contents, suitable for
// JSON encoding.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current metric values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]uint64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for _, name := range detmap.SortedKeys(r.counters) {
		s.Counters[name] = r.counters[name].Value()
	}
	for _, name := range detmap.SortedKeys(r.gauges) {
		s.Gauges[name] = r.gauges[name].Value()
	}
	for _, name := range detmap.SortedKeys(r.histograms) {
		s.Histograms[name] = r.histograms[name].Snapshot()
	}
	return s
}

// Names returns the sorted names of all registered metrics (counters,
// gauges, and histograms merged), mainly for tests and debug output.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	names = append(names, detmap.SortedKeys(r.counters)...)
	names = append(names, detmap.SortedKeys(r.gauges)...)
	names = append(names, detmap.SortedKeys(r.histograms)...)
	sort.Strings(names)
	return names
}
