package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Bucket i covers [2^(i-1), 2^i − 1]: the doubling boundaries.
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{15, 4}, {16, 5}, {1023, 10}, {1024, 11},
		{1<<63 - 1, 63}, {1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.bucket {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Upper bounds are one less than the next power of two.
	for i := 1; i < 64; i++ {
		want := uint64(1)<<uint(i) - 1
		if got := BucketUpperBound(i); got != want {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", i, got, want)
		}
	}
	if BucketUpperBound(0) != 0 || BucketUpperBound(64) != ^uint64(0) {
		t.Error("edge upper bounds wrong")
	}
	// Every boundary value lands in its own bucket, one below in the
	// previous.
	h := NewHistogram()
	for i := 1; i < 20; i++ {
		h.Observe(1 << uint(i))     // lower edge of bucket i+1
		h.Observe(1<<uint(i+1) - 1) // upper edge of bucket i+1
		h.Observe(1<<uint(i) - 1)   // upper edge of bucket i
	}
	snap := h.Snapshot()
	if snap.Count != 57 {
		t.Fatalf("count = %d, want 57", snap.Count)
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 110 || h.Max() != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-22) > 1e-9 {
		t.Fatalf("mean = %v, want 22", got)
	}
	// p50: rank 2 of 5 lands in bucket of value 2 (upper bound 3).
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	// p99 lands in the top bucket; its bound is tightened to the max.
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("p99 = %d, want 100 (observed max)", got)
	}
	if NewHistogram().Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestEpochSamplerAlignmentAtTraceEnd(t *testing.T) {
	s := NewEpochSampler(100)
	tick := func(instr, cycles uint64) {
		c := Cumulative{Instructions: instr, Cycles: cycles}
		if s.Due(instr) {
			s.Tick(&c)
		}
	}
	tick(60, 50)
	tick(130, 120) // crosses 100 → epoch [0,130)
	tick(190, 170)
	tick(250, 260)                                        // crosses 200 → epoch [130,250)
	s.Finish(&Cumulative{Instructions: 275, Cycles: 300}) // partial tail

	eps := s.Epochs()
	if len(eps) != 3 {
		t.Fatalf("epochs = %d, want 3", len(eps))
	}
	var total uint64
	for i, e := range eps {
		total += e.Instructions
		if e.Index != uint64(i) {
			t.Errorf("epoch %d has index %d", i, e.Index)
		}
	}
	// Alignment: the series accounts for every retired instruction, with
	// the final partial epoch flushed by Finish.
	if total != 275 {
		t.Fatalf("sum of epoch instructions = %d, want 275", total)
	}
	if eps[2].StartInstr != 250 || eps[2].EndInstr != 275 || eps[2].Instructions != 25 {
		t.Fatalf("tail epoch = %+v", eps[2])
	}
	// Finish is idempotent and the sampler is frozen afterwards.
	s.Finish(&Cumulative{Instructions: 999})
	tick(999, 999)
	if len(s.Epochs()) != 3 {
		t.Fatal("sampler recorded epochs after Finish")
	}
}

func TestEpochSamplerRates(t *testing.T) {
	s := NewEpochSampler(10)
	c1 := Cumulative{
		Instructions: 10, Cycles: 20,
		BTBAccesses: 8, BTBHits: 6, BTBMisses: 2,
		BTBValid: 3, BTBCapacity: 4, TempOccupancy: [NumTemperatures]uint64{1, 0, 2, 0},
	}
	s.Tick(&c1)
	e := s.Epochs()[0]
	if e.IPC != 0.5 || e.BTBMPKI != 200 || e.BTBHitRate != 0.75 {
		t.Fatalf("rates = %+v", e)
	}
	if e.Occupancy != 0.75 || e.TempOccupancy[0] != 0.25 || e.TempOccupancy[2] != 0.5 {
		t.Fatalf("occupancy = %+v", e)
	}
}

func TestEpochSamplerRestart(t *testing.T) {
	s := NewEpochSampler(10)
	s.Tick(&Cumulative{Instructions: 15, Cycles: 30})
	s.Restart()
	if len(s.Epochs()) != 0 {
		t.Fatal("Restart kept epochs")
	}
	// Post-restart totals restart from zero (the simulator zeroes its
	// counters at end of warmup); deltas must not underflow.
	s.Tick(&Cumulative{Instructions: 12, Cycles: 24})
	e := s.Epochs()[0]
	if e.Instructions != 12 || e.Cycles != 24 {
		t.Fatalf("post-restart epoch = %+v", e)
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Cycle: uint64(i), PC: uint64(100 + i), Kind: EvInsert})
	}
	if tr.Total() != 10 || tr.Dropped() != 6 || tr.Cap() != 4 {
		t.Fatalf("total/dropped/cap = %d/%d/%d", tr.Total(), tr.Dropped(), tr.Cap())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Oldest-first: cycles 6,7,8,9.
	for i, ev := range evs {
		if ev.Cycle != uint64(6+i) {
			t.Fatalf("event %d has cycle %d, want %d", i, ev.Cycle, 6+i)
		}
	}
	if tr.CountByKind(EvInsert) != 10 || tr.CountByKind(EvEvict) != 0 {
		t.Fatal("kind counts wrong")
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Cycle: 1})
	tr.Record(Event{Cycle: 2})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 || tr.Dropped() != 0 {
		t.Fatalf("partial fill = %+v dropped %d", evs, tr.Dropped())
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Event{Cycle: 1000, PC: 0x401000, Arg: 0x402000, Kind: EvInsert, Temp: 2})
	tr.Record(Event{Cycle: 2000, PC: 0x401000, Arg: 0x401234, Kind: EvEvict, Temp: 1})
	tr.Record(Event{Cycle: 3000, PC: 0x403000, Arg: RedirectDirMispredict, Kind: EvRedirect})
	tr.Record(Event{Cycle: 4000, PC: 0x404000, Arg: 0x405000, Kind: EvBypass})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		Metadata        map[string]int64 `json:"metadata"`
		TraceEvents     []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Ts   float64                `json:"ts"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	// 5 thread-name metadata rows + 4 events.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("trace events = %d, want 9", len(doc.TraceEvents))
	}
	var kinds []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" {
			kinds = append(kinds, ev.Name)
		}
	}
	if got := strings.Join(kinds, ","); got != "insert,evict,redirect,bypass" {
		t.Fatalf("event kinds = %s", got)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "redirect" && ev.Ph == "i" {
			if cause, _ := ev.Args["cause"].(string); cause != "dir_mispredict" {
				t.Fatalf("redirect cause = %v", ev.Args["cause"])
			}
		}
	}
	if doc.Metadata["total_events"] != 4 || doc.Metadata["retained_events"] != 4 || doc.Metadata["dropped_events"] != 0 {
		t.Fatalf("metadata = %v", doc.Metadata)
	}
}

// TestChromeTraceDroppedMetadata pins that ring truncation is visible in the
// exported file itself, not only as a CLI warning.
func TestChromeTraceDroppedMetadata(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Cycle: uint64(i) * 1000, Kind: EvInsert})
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metadata map[string]int64 `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Metadata["total_events"] != 10 || doc.Metadata["retained_events"] != 4 || doc.Metadata["dropped_events"] != 6 {
		t.Fatalf("metadata = %v", doc.Metadata)
	}
}

func TestRegistrySnapshotAndReport(t *testing.T) {
	obs := New(Options{EpochInterval: 50, EventCap: 8})
	obs.Metrics.Counter("a").Add(3)
	obs.Metrics.Gauge("g").Set(7)
	obs.Metrics.Histogram("h").Observe(5)
	obs.Metrics.SetCounter("forced", 42)
	obs.Epochs.Tick(&Cumulative{Instructions: 60, Cycles: 60})
	obs.Events.Record(Event{Cycle: 1, Kind: EvInsert})

	var buf bytes.Buffer
	if err := obs.WriteJSON(&buf, map[string]string{"trace": "unit"}); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if rep.Manifest["trace"] != "unit" {
		t.Fatal("manifest missing")
	}
	if rep.Metrics.Counters["a"] != 3 || rep.Metrics.Counters["forced"] != 42 {
		t.Fatalf("counters = %+v", rep.Metrics.Counters)
	}
	if rep.Metrics.Gauges["g"] != 7 {
		t.Fatalf("gauges = %+v", rep.Metrics.Gauges)
	}
	if rep.Metrics.Histograms["h"].Count != 1 {
		t.Fatalf("histograms = %+v", rep.Metrics.Histograms)
	}
	if len(rep.Epochs) != 1 || rep.Epochs[0].Instructions != 60 {
		t.Fatalf("epochs = %+v", rep.Epochs)
	}
	if rep.Events == nil || rep.Events.Total != 1 || rep.Events.ByKind["insert"] != 1 {
		t.Fatalf("events = %+v", rep.Events)
	}
}

func TestRegistryNamesAndReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c2 := r.Counter("x")
	if c1 != c2 {
		t.Fatal("Counter not idempotent")
	}
	r.Gauge("y")
	r.Histogram("z")
	want := []string{"x", "y", "z"}
	got := r.Names()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
}

func TestObserverHTTP(t *testing.T) {
	obs := New(Options{EpochInterval: 10})
	obs.Metrics.Counter("hits").Add(2)
	bound, shutdown, err := obs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("live /metrics not valid JSON: %v", err)
	}
	if rep.Metrics.Counters["hits"] != 2 {
		t.Fatalf("live counters = %+v", rep.Metrics.Counters)
	}
	if resp2, err := http.Get("http://" + bound + "/debug/vars"); err == nil {
		resp2.Body.Close()
		if resp2.StatusCode != 200 {
			t.Fatalf("/debug/vars status %d", resp2.StatusCode)
		}
	} else {
		t.Fatal(err)
	}
}
