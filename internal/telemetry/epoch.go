package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"
)

// NumTemperatures is the number of temperature-occupancy slots an epoch
// tracks. Thermometer's default profile uses 3 categories (cold/warm/hot);
// 4 slots cover every 2-bit hint encoding (§3.4).
const NumTemperatures = 4

// Cumulative carries the simulator's running totals at one point in the
// run. The epoch sampler differences consecutive snapshots to produce
// per-epoch rates; occupancy fields are point-in-time, not cumulative.
type Cumulative struct {
	Instructions uint64
	Cycles       uint64

	BTBAccesses      uint64
	BTBHits          uint64
	BTBMisses        uint64
	BTBBypasses      uint64
	BTBEvictions     uint64
	BTBPrefetchFills uint64

	RedirectStall uint64
	ICacheStall   uint64
	DataStall     uint64

	// BTBValid of BTBCapacity entries hold valid branches; TempOccupancy
	// breaks BTBValid down by stored temperature hint.
	BTBValid      uint64
	BTBCapacity   uint64
	TempOccupancy [NumTemperatures]uint64
}

// Epoch is one closed sampling interval.
type Epoch struct {
	Index uint64 `json:"epoch"`
	// StartInstr/EndInstr delimit the epoch in retired instructions
	// (EndInstr − StartInstr can be short for the final, partial epoch).
	StartInstr uint64 `json:"start_instr"`
	EndInstr   uint64 `json:"end_instr"`

	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`

	BTBAccesses      uint64  `json:"btb_accesses"`
	BTBHits          uint64  `json:"btb_hits"`
	BTBMisses        uint64  `json:"btb_misses"`
	BTBBypasses      uint64  `json:"btb_bypasses"`
	BTBEvictions     uint64  `json:"btb_evictions"`
	BTBPrefetchFills uint64  `json:"btb_prefetch_fills"`
	BTBMPKI          float64 `json:"btb_mpki"`
	BTBHitRate       float64 `json:"btb_hit_rate"`

	RedirectStall uint64 `json:"redirect_stall"`
	ICacheStall   uint64 `json:"icache_stall"`
	DataStall     uint64 `json:"data_stall"`

	// Occupancy is the fraction of valid BTB entries at epoch close;
	// TempOccupancy[t] is the fraction of capacity holding temperature t.
	Occupancy     float64                  `json:"occupancy"`
	TempOccupancy [NumTemperatures]float64 `json:"temp_occupancy"`
}

// EpochSampler cuts a run into fixed-length instruction epochs and records
// one Epoch per interval. It is driven by Tick with cumulative totals; the
// final partial epoch is flushed by Finish so that the series always
// accounts for every retired instruction.
type EpochSampler struct {
	// Interval is the epoch length in retired instructions.
	Interval uint64

	epochs []Epoch
	prev   Cumulative
	next   uint64
	done   bool
}

// NewEpochSampler returns a sampler with the given epoch length in
// instructions (minimum 1).
func NewEpochSampler(interval uint64) *EpochSampler {
	if interval < 1 {
		interval = 1
	}
	return &EpochSampler{Interval: interval, next: interval}
}

// Due reports whether instr has crossed the next epoch boundary — i.e.
// whether the next Tick will close an epoch. Callers with an expensive
// snapshot to assemble (occupancy censuses) use it to skip the work on
// non-boundary blocks.
func (s *EpochSampler) Due(instr uint64) bool {
	return !s.done && instr >= s.next
}

// Restart discards all recorded epochs and re-bases the sampler on the
// current totals being zero — used when the simulator resets statistics at
// the end of warmup, so the series covers exactly the measured region.
func (s *EpochSampler) Restart() {
	s.epochs = nil
	s.prev = Cumulative{}
	s.next = s.Interval
	s.done = false
}

// Tick feeds the sampler the current cumulative totals; it closes an epoch
// whenever the instruction count crosses an interval boundary. Call it once
// per simulated block; the common (no-boundary) case is a single compare.
func (s *EpochSampler) Tick(cum *Cumulative) {
	if cum.Instructions < s.next || s.done {
		return
	}
	// Blocks are multi-instruction, so one block can cross several
	// boundaries; close one epoch covering all of them (epochs are aligned
	// to block retirement, not to exact instruction counts, matching how a
	// block-granular simulator retires work).
	s.close(cum)
	for s.next <= cum.Instructions {
		s.next += s.Interval
	}
}

// Finish flushes the final partial epoch (if any instructions retired since
// the last boundary) and freezes the sampler.
func (s *EpochSampler) Finish(cum *Cumulative) {
	if s.done {
		return
	}
	if cum.Instructions > s.prev.Instructions {
		s.close(cum)
	}
	s.done = true
}

func (s *EpochSampler) close(cum *Cumulative) {
	e := Epoch{
		Index:      uint64(len(s.epochs)),
		StartInstr: s.prev.Instructions,
		EndInstr:   cum.Instructions,

		Instructions: cum.Instructions - s.prev.Instructions,
		Cycles:       cum.Cycles - s.prev.Cycles,

		BTBAccesses:      cum.BTBAccesses - s.prev.BTBAccesses,
		BTBHits:          cum.BTBHits - s.prev.BTBHits,
		BTBMisses:        cum.BTBMisses - s.prev.BTBMisses,
		BTBBypasses:      cum.BTBBypasses - s.prev.BTBBypasses,
		BTBEvictions:     cum.BTBEvictions - s.prev.BTBEvictions,
		BTBPrefetchFills: cum.BTBPrefetchFills - s.prev.BTBPrefetchFills,

		RedirectStall: cum.RedirectStall - s.prev.RedirectStall,
		ICacheStall:   cum.ICacheStall - s.prev.ICacheStall,
		DataStall:     cum.DataStall - s.prev.DataStall,
	}
	if e.Cycles > 0 {
		e.IPC = float64(e.Instructions) / float64(e.Cycles)
	}
	if e.Instructions > 0 {
		e.BTBMPKI = float64(e.BTBMisses) / float64(e.Instructions) * 1000
	}
	if e.BTBAccesses > 0 {
		e.BTBHitRate = float64(e.BTBHits) / float64(e.BTBAccesses)
	}
	if cum.BTBCapacity > 0 {
		e.Occupancy = float64(cum.BTBValid) / float64(cum.BTBCapacity)
		for t := range cum.TempOccupancy {
			e.TempOccupancy[t] = float64(cum.TempOccupancy[t]) / float64(cum.BTBCapacity)
		}
	}
	s.epochs = append(s.epochs, e)
	s.prev = *cum
}

// Epochs returns the closed epochs so far (not a copy; callers must not
// mutate).
func (s *EpochSampler) Epochs() []Epoch { return s.epochs }

// WriteCSV writes the epoch series as CSV with a header row.
func (s *EpochSampler) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"epoch", "start_instr", "end_instr", "instructions", "cycles", "ipc",
		"btb_accesses", "btb_hits", "btb_misses", "btb_bypasses",
		"btb_evictions", "btb_prefetch_fills", "btb_mpki", "btb_hit_rate",
		"redirect_stall", "icache_stall", "data_stall", "occupancy",
	}
	for t := 0; t < NumTemperatures; t++ {
		header = append(header, fmt.Sprintf("occupancy_temp%d", t))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	u := func(v uint64) string { return fmt.Sprintf("%d", v) }
	f := func(v float64) string { return fmt.Sprintf("%.6g", v) }
	for i := range s.epochs {
		e := &s.epochs[i]
		row := []string{
			u(e.Index), u(e.StartInstr), u(e.EndInstr), u(e.Instructions),
			u(e.Cycles), f(e.IPC),
			u(e.BTBAccesses), u(e.BTBHits), u(e.BTBMisses), u(e.BTBBypasses),
			u(e.BTBEvictions), u(e.BTBPrefetchFills), f(e.BTBMPKI), f(e.BTBHitRate),
			u(e.RedirectStall), u(e.ICacheStall), u(e.DataStall), f(e.Occupancy),
		}
		for t := 0; t < NumTemperatures; t++ {
			row = append(row, f(e.TempOccupancy[t]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
