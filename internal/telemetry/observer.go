package telemetry

import (
	"encoding/json"
	"io"
)

// Observer bundles the three telemetry collectors the simulator can drive:
// a metrics registry, an epoch sampler, and an event tracer. Any field may
// be nil to disable that collector; a nil *Observer disables telemetry
// entirely (core.Run checks the pointer once per block, which is the whole
// cost of the disabled path).
type Observer struct {
	Metrics *Registry
	Epochs  *EpochSampler
	Events  *Tracer
}

// Options configures New.
type Options struct {
	// EpochInterval is the epoch length in retired instructions
	// (0 disables epoch sampling).
	EpochInterval uint64
	// EventCap is the ring-buffer capacity of the event tracer
	// (0 disables event tracing).
	EventCap int
}

// New returns an Observer with a registry plus the optional collectors.
func New(opts Options) *Observer {
	o := &Observer{Metrics: NewRegistry()}
	if opts.EpochInterval > 0 {
		o.Epochs = NewEpochSampler(opts.EpochInterval)
	}
	if opts.EventCap > 0 {
		o.Events = NewTracer(opts.EventCap)
	}
	return o
}

// EventSummary reports tracer totals in the metrics report (the events
// themselves go to the Chrome trace sink).
type EventSummary struct {
	Total    uint64            `json:"total"`
	Retained int               `json:"retained"`
	Dropped  uint64            `json:"dropped"`
	ByKind   map[string]uint64 `json:"by_kind,omitempty"`
}

// Report is the JSON document the metrics sink writes: a run manifest for
// reproducibility, the registry snapshot, the epoch time series, and a
// summary of the event trace.
type Report struct {
	Manifest map[string]string `json:"manifest,omitempty"`
	Metrics  Snapshot          `json:"metrics"`
	Epochs   []Epoch           `json:"epochs,omitempty"`
	Events   *EventSummary     `json:"events,omitempty"`
}

// Report assembles the current Report.
func (o *Observer) Report(manifest map[string]string) Report {
	r := Report{Manifest: manifest}
	if o.Metrics != nil {
		r.Metrics = o.Metrics.Snapshot()
	}
	if o.Epochs != nil {
		r.Epochs = o.Epochs.Epochs()
	}
	if o.Events != nil {
		s := &EventSummary{
			Total:    o.Events.Total(),
			Retained: len(o.Events.Events()),
			Dropped:  o.Events.Dropped(),
			ByKind:   make(map[string]uint64),
		}
		for k := EventKind(0); k < numEventKinds; k++ {
			if n := o.Events.CountByKind(k); n > 0 {
				s.ByKind[k.String()] = n
			}
		}
		r.Events = s
	}
	return r
}

// WriteJSON writes the Report as indented JSON.
func (o *Observer) WriteJSON(w io.Writer, manifest map[string]string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o.Report(manifest))
}
