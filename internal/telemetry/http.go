package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve exposes the observer on an HTTP endpoint for live inspection of
// long sweeps:
//
//	/metrics       current Report as JSON
//	/debug/vars    expvar (process + published vars)
//	/debug/pprof/  runtime profiles (CPU, heap, goroutine, …)
//
// It binds addr immediately (so misconfigured addresses fail fast), then
// serves in a background goroutine. bound is the resolved listen address
// (useful with ":0"); the returned shutdown function closes the listener.
func (o *Observer) Serve(addr string) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.WriteJSON(w, nil)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
