package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Mount attaches an extra handler to the observer's debug server at a path
// prefix. Package telemetry stays free of simulator imports, so subsystems
// with their own debug surfaces (the attribution layer's /debug/attrib) hand
// their handlers in rather than being imported here.
type Mount struct {
	// Pattern is an http.ServeMux pattern ("/debug/attrib",
	// "/debug/attrib/").
	Pattern string
	Handler http.Handler
}

// Handler assembles the observer's debug mux:
//
//	/metrics       current Report as JSON
//	/debug/vars    expvar (process + published vars)
//	/debug/pprof/  runtime profiles (CPU, heap, goroutine, …)
//
// plus any extra mounts. It is exported separately from Serve so tests (and
// embedders with their own server lifecycle) can drive it directly.
func (o *Observer) Handler(mounts ...Mount) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.WriteJSON(w, nil)
	})
	for _, m := range mounts {
		mux.Handle(m.Pattern, m.Handler)
		// Register the trailing-slash subtree too, so one Mount covers both
		// /debug/attrib and /debug/attrib/heatmap.
		if !strings.HasSuffix(m.Pattern, "/") {
			mux.Handle(m.Pattern+"/", m.Handler)
		}
	}
	return mux
}

// Serve exposes the observer (and any extra mounts) on an HTTP endpoint for
// live inspection of long sweeps; see Handler for the routes. It binds addr
// immediately (so misconfigured addresses fail fast), then serves in a
// background goroutine. bound is the resolved listen address (useful with
// ":0"); the returned shutdown function closes the listener.
func (o *Observer) Serve(addr string, mounts ...Mount) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: o.Handler(mounts...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
