package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is one bucket per possible bits.Len64 result (0..64).
const histBuckets = 65

// Histogram counts uint64 observations in power-of-two buckets: bucket i
// holds values v with bits.Len64(v) == i, i.e.
//
//	bucket 0:  {0}
//	bucket 1:  {1}
//	bucket 2:  [2, 3]
//	bucket 3:  [4, 7]
//	bucket i:  [2^(i-1), 2^i − 1]
//
// Exponential buckets fit the heavy-tailed distributions the simulator
// observes (reuse distances, eviction ages, stall lengths) in 65 fixed
// slots with a constant-time, allocation-free Observe. Methods are safe
// for concurrent use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// BucketIndex returns the bucket an observation of v lands in.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketUpperBound returns the largest value bucket i accepts.
// BucketUpperBound(0) == 0; BucketUpperBound(64) == MaxUint64.
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// observations: the upper bound of the bucket in which the q-th
// observation falls. 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank in [1, n]: the smallest k with k ≥ q·n (ceiling, so that e.g.
	// p99 of 5 observations is the 5th, not the 4th).
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			ub := BucketUpperBound(i)
			if m := h.max.Load(); ub > m {
				ub = m // tighten the top bucket to the observed max
			}
			return ub
		}
	}
	return h.max.Load()
}

// HistogramBucket is one non-empty bucket in a snapshot.
type HistogramBucket struct {
	// UpperBound is the largest value the bucket accepts (inclusive).
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy suitable for JSON encoding.
// Only non-empty buckets are included.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Max     uint64            `json:"max"`
	Mean    float64           `json:"mean"`
	P50     uint64            `json:"p50"`
	P99     uint64            `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: BucketUpperBound(i), Count: c})
		}
	}
	return s
}
