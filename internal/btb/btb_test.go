package btb

import (
	"testing"

	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

// naiveLRU is a minimal policy for exercising the BTB container itself.
type naiveLRU struct {
	stamp []uint64
	ways  int
	clock uint64
}

func (p *naiveLRU) Name() string { return "naiveLRU" }
func (p *naiveLRU) Reset(sets, ways int) {
	p.stamp = make([]uint64, sets*ways)
	p.ways = ways
}
func (p *naiveLRU) OnHit(set, way int, _ *Request) { p.clock++; p.stamp[set*p.ways+way] = p.clock }
func (p *naiveLRU) OnInsert(set, way int, _ *Request) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}
func (p *naiveLRU) Victim(set int, _ []Entry, _ *Request) int {
	best := 0
	for w := 1; w < p.ways; w++ {
		if p.stamp[set*p.ways+w] < p.stamp[set*p.ways+best] {
			best = w
		}
	}
	return best
}

// alwaysBypass never inserts.
type alwaysBypass struct{}

func (alwaysBypass) Name() string                      { return "bypass" }
func (alwaysBypass) Reset(int, int)                    {}
func (alwaysBypass) OnHit(int, int, *Request)          {}
func (alwaysBypass) OnInsert(int, int, *Request)       {}
func (alwaysBypass) Victim(int, []Entry, *Request) int { return Bypass }

func req(pc, target uint64) *Request {
	return &Request{PC: pc, Target: target, Type: trace.UncondDirect, NextUse: trace.NoNextUse}
}

func TestGeometry(t *testing.T) {
	b := New(8192, 4, &naiveLRU{})
	if b.Sets() != 2048 || b.Ways() != 4 {
		t.Fatalf("geometry = %d×%d, want 2048×4", b.Sets(), b.Ways())
	}
	b = New(7979, 4, &naiveLRU{})
	if b.Sets() != 1994 {
		t.Fatalf("7979-entry sets = %d, want 1994", b.Sets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad geometry")
		}
	}()
	New(2, 4, &naiveLRU{})
}

func TestHitAfterInsert(t *testing.T) {
	b := New(64, 4, &naiveLRU{})
	r := b.Access(req(100, 200))
	if r.Hit {
		t.Fatal("first access hit")
	}
	if tg, hit := b.Lookup(100); !hit || tg != 200 {
		t.Fatalf("Lookup after insert = (%d, %v)", tg, hit)
	}
	r = b.Access(req(100, 200))
	if !r.Hit {
		t.Fatal("second access missed")
	}
	s := b.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 || s.Insertions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTargetUpdate(t *testing.T) {
	b := New(64, 4, &naiveLRU{})
	b.Access(req(100, 200))
	b.Access(req(100, 300))
	if tg, _ := b.Lookup(100); tg != 300 {
		t.Fatalf("target = %d, want 300", tg)
	}
	if s := b.Stats(); s.TargetUpdates != 1 {
		t.Fatalf("target updates = %d, want 1", s.TargetUpdates)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	// 1 set × 2 ways: fill with A, B; touch A; insert C → B evicted.
	b := NewWithSets(1, 2, &naiveLRU{})
	b.Access(req(1, 10))
	b.Access(req(2, 20))
	b.Access(req(1, 10)) // A is now MRU
	r := b.Access(req(3, 30))
	if !r.Evicted.Valid || r.Evicted.PC != 2 {
		t.Fatalf("evicted = %+v, want PC 2", r.Evicted)
	}
	if _, hit := b.Lookup(2); hit {
		t.Fatal("evicted entry still present")
	}
	if _, hit := b.Lookup(1); !hit {
		t.Fatal("MRU entry evicted")
	}
}

func TestBypassPolicy(t *testing.T) {
	b := NewWithSets(1, 2, alwaysBypass{})
	b.Access(req(1, 10))
	b.Access(req(2, 20))
	r := b.Access(req(3, 30))
	if !r.Bypassed || r.Way != -1 {
		t.Fatalf("expected bypass, got %+v", r)
	}
	if s := b.Stats(); s.Bypasses != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if _, hit := b.Lookup(1); !hit {
		t.Fatal("resident lost on bypass")
	}
}

func TestNoDuplicateTagsProperty(t *testing.T) {
	b := New(256, 4, &naiveLRU{})
	r := xrand.New(7)
	for i := 0; i < 20000; i++ {
		pc := uint64(r.Intn(2000)) + 1
		b.Access(req(pc, pc+100))
	}
	for s := 0; s < b.Sets(); s++ {
		seen := map[uint64]bool{}
		for _, e := range b.Contents(s) {
			if !e.Valid {
				continue
			}
			if int(e.PC%uint64(b.Sets())) != s {
				t.Fatalf("entry %d mapped to wrong set %d", e.PC, s)
			}
			if seen[e.PC] {
				t.Fatalf("duplicate tag %d in set %d", e.PC, s)
			}
			seen[e.PC] = true
		}
	}
	st := b.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits+misses != accesses: %+v", st)
	}
	if st.Insertions != st.Misses-st.Bypasses {
		t.Fatalf("insertions != misses-bypasses: %+v", st)
	}
	if b.Occupancy() <= 0.5 {
		t.Fatalf("occupancy = %v, expected mostly full", b.Occupancy())
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate != 0")
	}
	s = Stats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestIBTB(t *testing.T) {
	ib := NewIBTB(4096)
	if _, ok := ib.Predict(500); ok {
		t.Fatal("empty IBTB predicted")
	}
	if ib.Update(500, 1000) {
		t.Fatal("first update counted correct")
	}
	if tg, ok := ib.Predict(500); !ok || tg != 1000 {
		t.Fatalf("Predict = (%d, %v), want (1000, true)", tg, ok)
	}
	if !ib.Update(500, 1000) {
		t.Fatal("repeat update not correct")
	}
	ib2 := NewIBTB(16)
	ib2.Update(7, 100)
	if ib2.Accuracy() != 0 {
		t.Fatalf("first update accuracy = %v", ib2.Accuracy())
	}
}

func TestIBTBHysteresis(t *testing.T) {
	// A strongly monomorphic branch with occasional excursions keeps its
	// dominant target: one excursion must not displace it.
	ib := NewIBTB(1 << 12)
	for i := 0; i < 5; i++ {
		ib.Update(42, 0x1000)
	}
	if ib.Update(42, 0x2000) {
		t.Fatal("excursion counted correct")
	}
	if tg, ok := ib.Predict(42); !ok || tg != 0x1000 {
		t.Fatalf("dominant target displaced: (%#x, %v)", tg, ok)
	}
	if !ib.Update(42, 0x1000) {
		t.Fatal("dominant target lost after excursion")
	}
	// Sustained change of target eventually wins.
	for i := 0; i < 8; i++ {
		ib.Update(42, 0x3000)
	}
	if tg, _ := ib.Predict(42); tg != 0x3000 {
		t.Fatalf("sustained new target not learned: %#x", tg)
	}
}

func TestRASBasics(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS popped")
	}
	r.Push(10)
	r.Push(20)
	if a, ok := r.Pop(); !ok || a != 20 {
		t.Fatalf("pop = (%d,%v), want 20", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 10 {
		t.Fatalf("pop = (%d,%v), want 10", a, ok)
	}
	if r.Depth() != 0 {
		t.Fatalf("depth = %d", r.Depth())
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if a, _ := r.Pop(); a != 3 {
		t.Fatalf("pop = %d, want 3", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Fatalf("pop = %d, want 2", a)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("popped overwritten frame")
	}
	if r.Overflows != 1 {
		t.Fatalf("overflows = %d", r.Overflows)
	}
}
