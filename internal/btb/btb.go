// Package btb models the Branch Target Buffer and its companion structures
// (indirect-target buffer, return address stack).
//
// The BTB is a set-associative cache of taken-branch targets. Replacement is
// delegated to a pluggable Policy (package policy provides LRU, SRRIP, GHRP,
// Hawkeye, Belady OPT, and Thermometer). Following the paper, set indexing
// is plain address-modulo-set-count (§4.2), which is why the 7979-entry
// configuration of Fig 11 can distribute branches differently from the
// 8192-entry one.
package btb

import (
	"fmt"

	"thermometer/internal/trace"
)

// Bypass is returned by Policy.Victim to indicate the incoming branch should
// not be inserted at all (§2.5 of the paper).
const Bypass = -1

// Entry is one BTB way.
type Entry struct {
	Valid  bool
	PC     uint64 // full-tag for simulation fidelity
	Target uint64
	Type   trace.BranchType
	// Temperature is the Thermometer hint carried by the branch instruction
	// and stored alongside the entry (2 extra bits per entry in hardware,
	// §3.4). Hotter = larger value. Policies other than Thermometer ignore
	// it.
	Temperature uint8
}

// Request describes one BTB access (a dynamic taken branch about to be
// looked up, and — on a miss — considered for insertion).
type Request struct {
	PC     uint64
	Target uint64
	Type   trace.BranchType
	// Temperature is the hint injected into the branch instruction by the
	// Thermometer toolchain. It travels with the request so the replacement
	// policy can compare the incoming branch against residents (Alg. 1).
	Temperature uint8
	// Prefetch marks the request as a prefetcher-initiated fill rather
	// than a demand insertion. A prefetch carries transient evidence of
	// imminent reuse, which policies may weigh against holistic hints
	// (Thermometer inserts prefetches even when their temperature alone
	// would bypass them).
	Prefetch bool
	// NextUse is the oracle used by the OPT policy: the position in the
	// access stream of the next access to this PC (trace.NoNextUse if
	// none). Non-oracle policies must ignore it.
	NextUse int
	// Index is the position of this access in the access stream; the OPT
	// policy needs it to interpret resident entries' stored next-use values.
	Index int
}

// Policy decides replacement. Implementations keep all of their per-entry
// metadata internally, sized by Reset.
type Policy interface {
	// Name returns a short identifier (used in tables and file names).
	Name() string
	// Reset prepares the policy for a BTB of the given geometry, clearing
	// all learned state.
	Reset(sets, ways int)
	// OnHit notifies the policy that req hit way `way` of set `set`.
	OnHit(set, way int, req *Request)
	// OnInsert notifies the policy that req was inserted into way `way` of
	// set `set` (after any eviction).
	OnInsert(set, way int, req *Request)
	// Victim selects the way to evict from `set` to make room for req, or
	// returns Bypass to skip insertion. entries holds the set's ways
	// (all valid — Victim is only consulted when the set is full).
	Victim(set int, entries []Entry, req *Request) int
}

// Stats counts BTB events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Bypasses   uint64
	Insertions uint64
	Evictions  uint64
	// TargetUpdates counts hits whose stored target differed from the
	// observed one (indirect branches changing targets).
	TargetUpdates uint64
	// PrefetchFills counts entries installed by a BTB prefetcher.
	PrefetchFills uint64
}

// HitRate returns Hits/Accesses (0 when empty).
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Result reports what one Access did, so drivers can record eviction events
// for accuracy analyses without the BTB knowing about traces.
type Result struct {
	Hit      bool
	Bypassed bool
	// Evicted holds the displaced entry when an insertion evicted a valid
	// entry (check Evicted.Valid).
	Evicted Entry
	// Way is the way hit or filled; -1 on bypass.
	Way int
}

// ProbeKind classifies one structural BTB event reported to a ProbeFunc.
type ProbeKind uint8

// Probe kinds.
const (
	// ProbeHit: a demand access hit (victim nil).
	ProbeHit ProbeKind = iota
	// ProbeInsert: req was filled into the BTB (victim nil).
	ProbeInsert
	// ProbeEvict: a valid entry was displaced to make room for req; victim
	// points at the displaced entry (valid only for the duration of the
	// call).
	ProbeEvict
	// ProbeBypass: the policy declined to insert req.
	ProbeBypass
	// ProbePrefetchFill: req was installed by a prefetcher rather than a
	// demand miss (follows ProbeEvict when the fill displaced an entry).
	ProbePrefetchFill
)

// ProbeFunc observes structural BTB events for telemetry. set is the index
// of the set the event happened in; way is the way hit, filled, or (for
// ProbeEvict) vacated, and -1 for ProbeBypass. victim is non-nil only for
// ProbeEvict. Implementations must not retain req or victim past the call.
// A nil probe (the default) costs one predictable branch per event site.
type ProbeFunc func(kind ProbeKind, set, way int, req *Request, victim *Entry)

// BTB is a set-associative branch target buffer.
type BTB struct {
	sets, ways int
	entries    []Entry // sets × ways, row-major
	policy     Policy
	stats      Stats
	probe      ProbeFunc
}

// New builds a BTB with totalEntries/ways sets (truncating division, which
// is how the paper's 7979-entry configuration yields a non-power-of-two set
// count). It panics on a degenerate geometry.
func New(totalEntries, ways int, p Policy) *BTB {
	if ways <= 0 || totalEntries < ways {
		panic(fmt.Sprintf("btb: bad geometry %d entries / %d ways", totalEntries, ways))
	}
	return NewWithSets(totalEntries/ways, ways, p)
}

// NewWithSets builds a BTB with an explicit set count.
func NewWithSets(sets, ways int, p Policy) *BTB {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("btb: bad geometry %d sets / %d ways", sets, ways))
	}
	b := &BTB{
		sets:    sets,
		ways:    ways,
		entries: make([]Entry, sets*ways),
		policy:  p,
	}
	p.Reset(sets, ways)
	return b
}

// Sets returns the number of sets.
func (b *BTB) Sets() int { return b.sets }

// Ways returns the associativity.
func (b *BTB) Ways() int { return b.ways }

// Policy returns the replacement policy in use.
func (b *BTB) Policy() Policy { return b.policy }

// Stats returns a copy of the counters so far.
func (b *BTB) Stats() Stats { return b.stats }

// ResetStats zeroes the counters without disturbing contents or policy
// state (used at the end of simulation warmup).
func (b *BTB) ResetStats() { b.stats = Stats{} }

// SetProbe installs (or, with nil, removes) the telemetry probe.
func (b *BTB) SetProbe(fn ProbeFunc) { b.probe = fn }

// SetIndex maps a branch PC to its set: address modulo set count, per §4.2.
func (b *BTB) SetIndex(pc uint64) int {
	return int(pc % uint64(b.sets))
}

// set returns the ways of set s.
func (b *BTB) set(s int) []Entry {
	return b.entries[s*b.ways : (s+1)*b.ways]
}

// Lookup probes the BTB without modifying replacement state or statistics.
// It returns the stored target and whether the PC is present. The frontend
// uses it on the speculative path; replacement state is updated at branch
// resolution via Access.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	ways := b.set(b.SetIndex(pc))
	for i := range ways {
		if ways[i].Valid && ways[i].PC == pc {
			return ways[i].Target, true
		}
	}
	return 0, false
}

// Access performs a demand access for a taken branch: probe, update
// replacement state on a hit, or consult the policy and insert on a miss.
func (b *BTB) Access(req *Request) Result {
	b.stats.Accesses++
	s := b.SetIndex(req.PC)
	ways := b.set(s)
	for i := range ways {
		if ways[i].Valid && ways[i].PC == req.PC {
			b.stats.Hits++
			if ways[i].Target != req.Target {
				ways[i].Target = req.Target
				b.stats.TargetUpdates++
			}
			// Refresh the stored hint: a re-profiled binary may have
			// changed the branch's category.
			ways[i].Temperature = req.Temperature
			b.policy.OnHit(s, i, req)
			if b.probe != nil {
				b.probe(ProbeHit, s, i, req, nil)
			}
			return Result{Hit: true, Way: i}
		}
	}
	b.stats.Misses++
	// Fill an invalid way if one exists.
	for i := range ways {
		if !ways[i].Valid {
			b.fill(s, i, req)
			if b.probe != nil {
				b.probe(ProbeInsert, s, i, req, nil)
			}
			return Result{Way: i}
		}
	}
	v := b.policy.Victim(s, ways, req)
	if v == Bypass {
		b.stats.Bypasses++
		if b.probe != nil {
			b.probe(ProbeBypass, s, -1, req, nil)
		}
		return Result{Bypassed: true, Way: -1}
	}
	if v < 0 || v >= b.ways {
		panic(fmt.Sprintf("btb: policy %s returned invalid victim %d", b.policy.Name(), v))
	}
	evicted := ways[v]
	b.stats.Evictions++
	b.fill(s, v, req)
	if b.probe != nil {
		b.probe(ProbeEvict, s, v, req, &evicted)
		b.probe(ProbeInsert, s, v, req, nil)
	}
	return Result{Evicted: evicted, Way: v}
}

func (b *BTB) fill(s, way int, req *Request) {
	b.set(s)[way] = Entry{
		Valid:       true,
		PC:          req.PC,
		Target:      req.Target,
		Type:        req.Type,
		Temperature: req.Temperature,
	}
	b.stats.Insertions++
	b.policy.OnInsert(s, way, req)
}

// PrefetchFill installs req if absent, consulting the replacement policy
// for the victim (so prefetch-induced pollution is modelled). It returns
// whether a fill happened. Prefetches do not touch demand hit/miss
// counters; fills are visible via Stats().PrefetchFills.
func (b *BTB) PrefetchFill(req *Request) bool {
	s := b.SetIndex(req.PC)
	ways := b.set(s)
	for i := range ways {
		if ways[i].Valid && ways[i].PC == req.PC {
			return false // already present
		}
	}
	for i := range ways {
		if !ways[i].Valid {
			b.fill(s, i, req)
			b.stats.PrefetchFills++
			if b.probe != nil {
				b.probe(ProbePrefetchFill, s, i, req, nil)
			}
			return true
		}
	}
	v := b.policy.Victim(s, ways, req)
	if v == Bypass {
		return false
	}
	if v < 0 || v >= b.ways {
		panic(fmt.Sprintf("btb: policy %s returned invalid victim %d", b.policy.Name(), v))
	}
	evicted := ways[v]
	b.stats.Evictions++
	b.fill(s, v, req)
	b.stats.PrefetchFills++
	if b.probe != nil {
		b.probe(ProbeEvict, s, v, req, &evicted)
		b.probe(ProbePrefetchFill, s, v, req, nil)
	}
	return true
}

// Contents returns a copy of a set's entries (for tests and debugging).
func (b *BTB) Contents(set int) []Entry {
	out := make([]Entry, b.ways)
	copy(out, b.set(set))
	return out
}

// Occupancy returns the fraction of valid entries.
func (b *BTB) Occupancy() float64 {
	n := 0
	for i := range b.entries {
		if b.entries[i].Valid {
			n++
		}
	}
	return float64(n) / float64(len(b.entries))
}

// TemperatureCensus counts valid entries overall and by stored temperature
// hint (capped at the 2-bit encoding of §3.4). The epoch sampler uses it to
// report per-temperature occupancy; the walk is O(capacity), so callers
// should sample it at epoch granularity, not per access.
func (b *BTB) TemperatureCensus() (valid uint64, byTemp [4]uint64) {
	for i := range b.entries {
		if !b.entries[i].Valid {
			continue
		}
		valid++
		t := b.entries[i].Temperature
		if t > 3 {
			t = 3
		}
		byTemp[t]++
	}
	return valid, byTemp
}

// SetCensus counts the valid entries of one set and sums their stored
// temperature hints. The attribution heatmap samples it per set at epoch
// boundaries; the walk is O(ways).
func (b *BTB) SetCensus(s int) (valid, tempSum int) {
	ways := b.set(s)
	for i := range ways {
		if ways[i].Valid {
			valid++
			tempSum += int(ways[i].Temperature)
		}
	}
	return valid, tempSum
}

// Capacity returns the total number of entry slots (sets × ways).
func (b *BTB) Capacity() int { return len(b.entries) }
