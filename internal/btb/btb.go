// Package btb models the Branch Target Buffer and its companion structures
// (indirect-target buffer, return address stack).
//
// The BTB is a set-associative cache of taken-branch targets. Replacement is
// delegated to a pluggable Policy (package policy provides LRU, SRRIP, GHRP,
// Hawkeye, Belady OPT, and Thermometer). Following the paper, set indexing
// is plain address-modulo-set-count (§4.2), which is why the 7979-entry
// configuration of Fig 11 can distribute branches differently from the
// 8192-entry one.
//
// Storage is struct-of-arrays: one valid bitmask word per set plus parallel
// pc/target/meta arrays, so the hit scan touches only the tag column and
// skips invalid ways via the bitmask instead of loading whole entries.
// Power-of-two set counts index with a mask; others (the paper's 7979-entry
// case) keep the modulo. Hot policies are dispatched through concrete cores
// chosen once at construction (see cores.go); the Policy interface remains
// the extension point and is always used when a telemetry probe is attached.
package btb

import (
	"fmt"
	"math/bits"

	"thermometer/internal/trace"
)

// Bypass is returned by Policy.Victim to indicate the incoming branch should
// not be inserted at all (§2.5 of the paper).
const Bypass = -1

// Entry is one BTB way.
type Entry struct {
	Valid  bool
	PC     uint64 // full-tag for simulation fidelity
	Target uint64
	Type   trace.BranchType
	// Temperature is the Thermometer hint carried by the branch instruction
	// and stored alongside the entry (2 extra bits per entry in hardware,
	// §3.4). Hotter = larger value. Policies other than Thermometer ignore
	// it.
	Temperature uint8
}

// Request describes one BTB access (a dynamic taken branch about to be
// looked up, and — on a miss — considered for insertion).
type Request struct {
	PC     uint64
	Target uint64
	Type   trace.BranchType
	// Temperature is the hint injected into the branch instruction by the
	// Thermometer toolchain. It travels with the request so the replacement
	// policy can compare the incoming branch against residents (Alg. 1).
	Temperature uint8
	// Prefetch marks the request as a prefetcher-initiated fill rather
	// than a demand insertion. A prefetch carries transient evidence of
	// imminent reuse, which policies may weigh against holistic hints
	// (Thermometer inserts prefetches even when their temperature alone
	// would bypass them).
	Prefetch bool
	// NextUse is the oracle used by the OPT policy: the position in the
	// access stream of the next access to this PC (trace.NoNextUse if
	// none). Non-oracle policies must ignore it.
	NextUse int
	// Index is the position of this access in the access stream; the OPT
	// policy needs it to interpret resident entries' stored next-use values.
	Index int
}

// Policy decides replacement. Implementations keep all of their per-entry
// metadata internally, sized by Reset.
type Policy interface {
	// Name returns a short identifier (used in tables and file names).
	Name() string
	// Reset prepares the policy for a BTB of the given geometry, clearing
	// all learned state.
	Reset(sets, ways int)
	// OnHit notifies the policy that req hit way `way` of set `set`.
	OnHit(set, way int, req *Request)
	// OnInsert notifies the policy that req was inserted into way `way` of
	// set `set` (after any eviction).
	OnInsert(set, way int, req *Request)
	// Victim selects the way to evict from `set` to make room for req, or
	// returns Bypass to skip insertion. entries holds a snapshot of the
	// set's ways (all valid — Victim is only consulted when the set is
	// full); implementations must not retain or mutate it.
	Victim(set int, entries []Entry, req *Request) int
}

// Stats counts BTB events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Bypasses   uint64
	Insertions uint64
	Evictions  uint64
	// TargetUpdates counts hits whose stored target differed from the
	// observed one (indirect branches changing targets).
	TargetUpdates uint64
	// PrefetchFills counts entries installed by a BTB prefetcher.
	PrefetchFills uint64
}

// HitRate returns Hits/Accesses (0 when empty).
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Result reports what one Access did, so drivers can record eviction events
// for accuracy analyses without the BTB knowing about traces.
type Result struct {
	Hit      bool
	Bypassed bool
	// Evicted holds the displaced entry when an insertion evicted a valid
	// entry (check Evicted.Valid).
	Evicted Entry
	// Way is the way hit or filled; -1 on bypass.
	Way int
}

// ProbeKind classifies one structural BTB event reported to a ProbeFunc.
type ProbeKind uint8

// Probe kinds.
const (
	// ProbeHit: a demand access hit (victim nil).
	ProbeHit ProbeKind = iota
	// ProbeInsert: req was filled into the BTB (victim nil).
	ProbeInsert
	// ProbeEvict: a valid entry was displaced to make room for req; victim
	// points at the displaced entry (valid only for the duration of the
	// call).
	ProbeEvict
	// ProbeBypass: the policy declined to insert req.
	ProbeBypass
	// ProbePrefetchFill: req was installed by a prefetcher rather than a
	// demand miss (follows ProbeEvict when the fill displaced an entry).
	ProbePrefetchFill
)

// ProbeFunc observes structural BTB events for telemetry. set is the index
// of the set the event happened in; way is the way hit, filled, or (for
// ProbeEvict) vacated, and -1 for ProbeBypass. victim is non-nil only for
// ProbeEvict. Implementations must not retain req or victim past the call.
// A nil probe (the default) costs one predictable branch per event site.
type ProbeFunc func(kind ProbeKind, set, way int, req *Request, victim *Entry)

// dispatchKind selects the devirtualized per-access path, chosen once at
// construction from the policy's Fast* accessor (kindGeneric = interface
// dispatch).
type dispatchKind uint8

const (
	kindGeneric dispatchKind = iota
	kindLRU
	kindSRRIP
	kindThermo
	kindOPT
)

// BTB is a set-associative branch target buffer.
//
// Layout: slot (s, w) of the conceptual sets×ways grid lives at flat index
// s*ways+w of the pcs/targets/meta columns; bit w%64 of valid[s*vwords +
// w/64] marks it valid (vwords is 1 for every associativity up to 64 —
// i.e. all real configurations — and only the Fig 19 sensitivity sweep's
// 128-way point uses more). meta packs the branch type in the low byte and
// the temperature hint in the high byte. Invalid slots hold zeroes
// (entries are only ever overwritten, never invalidated), so materializing
// an Entry from the columns is exact.
type BTB struct {
	sets, ways int
	setMask    uint64 // sets-1 when sets is a power of two
	pow2       bool
	vwords     int      // valid-bitmask words per set: ceil(ways/64)
	fullMasks  []uint64 // per-word all-valid masks (last word partial)

	valid   []uint64 // sets × vwords
	pcs     []uint64 // sets × ways, row-major
	targets []uint64
	meta    []uint16 // Type | Temperature<<8

	policy Policy
	stats  Stats
	probe  ProbeFunc

	// Devirtualized dispatch: kind and the matching core pointer are chosen
	// once in NewWithSets. The pointers alias state inside policy, so the
	// interface path (probe attached, or kindGeneric) stays consistent.
	kind   dispatchKind
	lru    *LRUCore
	srrip  *SRRIPCore
	thermo *ThermometerCore
	opt    *OPTCore

	// Scratch reused across calls so the steady state allocates nothing:
	// req receives a copy of the caller's request before it is handed to
	// interface methods or probes (keeping the caller's Request on its
	// stack), setScratch materializes a set for Policy.Victim, and
	// evScratch holds the displaced entry passed to ProbeEvict.
	req        Request
	setScratch []Entry
	evScratch  Entry
}

// New builds a BTB with totalEntries/ways sets (truncating division, which
// is how the paper's 7979-entry configuration yields a non-power-of-two set
// count). It panics on a degenerate geometry.
func New(totalEntries, ways int, p Policy) *BTB {
	if ways <= 0 || totalEntries < ways {
		panic(fmt.Sprintf("btb: bad geometry %d entries / %d ways", totalEntries, ways))
	}
	return NewWithSets(totalEntries/ways, ways, p)
}

// NewWithSets builds a BTB with an explicit set count.
func NewWithSets(sets, ways int, p Policy) *BTB {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("btb: bad geometry %d sets / %d ways", sets, ways))
	}
	vwords := (ways + 63) / 64
	fullMasks := make([]uint64, vwords)
	for i := range fullMasks {
		fullMasks[i] = ^uint64(0)
	}
	if r := ways % 64; r != 0 {
		fullMasks[vwords-1] = ^uint64(0) >> (64 - r)
	}
	b := &BTB{
		sets:       sets,
		ways:       ways,
		pow2:       sets&(sets-1) == 0,
		setMask:    uint64(sets - 1),
		vwords:     vwords,
		fullMasks:  fullMasks,
		valid:      make([]uint64, sets*vwords),
		pcs:        make([]uint64, sets*ways),
		targets:    make([]uint64, sets*ways),
		meta:       make([]uint16, sets*ways),
		policy:     p,
		setScratch: make([]Entry, ways),
	}
	p.Reset(sets, ways)
	// Devirtualize: adopt the policy's concrete core when it offers one.
	// Checked most-specific first (Thermometer owns an LRU internally but
	// must dispatch as Thermometer).
	switch fp := p.(type) {
	case ThermometerFastPath:
		b.kind, b.thermo = kindThermo, fp.FastThermometer()
	case SRRIPFastPath:
		b.kind, b.srrip = kindSRRIP, fp.FastSRRIP()
	case OPTFastPath:
		b.kind, b.opt = kindOPT, fp.FastOPT()
	case LRUFastPath:
		b.kind, b.lru = kindLRU, fp.FastLRU()
	}
	return b
}

// Sets returns the number of sets.
func (b *BTB) Sets() int { return b.sets }

// Ways returns the associativity.
func (b *BTB) Ways() int { return b.ways }

// Policy returns the replacement policy in use.
func (b *BTB) Policy() Policy { return b.policy }

// Stats returns a copy of the counters so far.
func (b *BTB) Stats() Stats { return b.stats }

// ResetStats zeroes the counters without disturbing contents or policy
// state (used at the end of simulation warmup).
func (b *BTB) ResetStats() { b.stats = Stats{} }

// SetProbe installs (or, with nil, removes) the telemetry probe. While a
// probe is attached, accesses take the interface dispatch path so the
// probe sees the canonical event stream.
func (b *BTB) SetProbe(fn ProbeFunc) { b.probe = fn }

// SetIndex maps a branch PC to its set: address modulo set count, per §4.2
// (a mask when the set count is a power of two).
func (b *BTB) SetIndex(pc uint64) int {
	if b.pow2 {
		return int(pc & b.setMask)
	}
	return int(pc % uint64(b.sets))
}

// findWay returns the way holding pc in set s, or -1. The bitmask scan
// visits valid ways in ascending order, matching a linear walk that skips
// invalid entries.
func (b *BTB) findWay(s int, pc uint64) int {
	base := s * b.ways
	vbase := s * b.vwords
	for wi := 0; wi < b.vwords; wi++ {
		for m := b.valid[vbase+wi]; m != 0; m &= m - 1 {
			i := wi<<6 + bits.TrailingZeros64(m)
			if b.pcs[base+i] == pc {
				return i
			}
		}
	}
	return -1
}

// firstInvalid returns the lowest invalid way of set s, or -1 when full.
func (b *BTB) firstInvalid(s int) int {
	vbase := s * b.vwords
	for wi := 0; wi < b.vwords; wi++ {
		if v := b.valid[vbase+wi]; v != b.fullMasks[wi] {
			return wi<<6 + bits.TrailingZeros64(^v)
		}
	}
	return -1
}

// entryAt materializes slot (s, w) as an Entry. Invalid slots read as the
// zero Entry because storage is only ever overwritten, never cleared.
func (b *BTB) entryAt(s, w int) Entry {
	i := s*b.ways + w
	m := b.meta[i]
	return Entry{
		Valid:       b.valid[s*b.vwords+w>>6]&(1<<uint(w&63)) != 0,
		PC:          b.pcs[i],
		Target:      b.targets[i],
		Type:        trace.BranchType(m & 0xff),
		Temperature: uint8(m >> 8),
	}
}

// hitUpdate applies the architectural effects of a demand hit on (s, w):
// hit count, target refresh, and the stored hint (a re-profiled binary may
// have changed the branch's category). The stored Type is preserved.
func (b *BTB) hitUpdate(s, w int, req *Request) {
	i := s*b.ways + w
	b.stats.Hits++
	if b.targets[i] != req.Target {
		b.targets[i] = req.Target
		b.stats.TargetUpdates++
	}
	b.meta[i] = b.meta[i]&0x00ff | uint16(req.Temperature)<<8
}

// fillAt writes req into slot (s, w) and counts the insertion. The policy
// insert action is the caller's responsibility (direct on fast paths,
// OnInsert on the interface path).
func (b *BTB) fillAt(s, w int, req *Request) {
	i := s*b.ways + w
	b.valid[s*b.vwords+w>>6] |= 1 << uint(w&63)
	b.pcs[i] = req.PC
	b.targets[i] = req.Target
	b.meta[i] = uint16(req.Type) | uint16(req.Temperature)<<8
	b.stats.Insertions++
}

// fastOnHit dispatches the hit action to the selected core.
func (b *BTB) fastOnHit(s, w int, req *Request) {
	switch b.kind {
	case kindLRU:
		b.lru.Touch(s, w)
	case kindSRRIP:
		b.srrip.Promote(s, w)
	case kindThermo:
		b.thermo.Touch(s, w)
	case kindOPT:
		b.opt.Record(s, w, req)
	default:
		panic("btb: fast hit dispatch on generic policy")
	}
}

// fastOnInsert dispatches the insert action to the selected core.
func (b *BTB) fastOnInsert(s, w int, req *Request) {
	switch b.kind {
	case kindLRU:
		b.lru.Touch(s, w)
	case kindSRRIP:
		b.srrip.InsertLong(s, w)
	case kindThermo:
		b.thermo.Touch(s, w)
	case kindOPT:
		b.opt.Record(s, w, req)
	default:
		panic("btb: fast insert dispatch on generic policy")
	}
}

// fastVictim dispatches victim selection to the selected core (set full).
func (b *BTB) fastVictim(s int, req *Request) int {
	switch b.kind {
	case kindLRU:
		return b.lru.LRUWay(s)
	case kindSRRIP:
		return b.srrip.SelectVictim(s)
	case kindThermo:
		t := b.thermo
		base := s * b.ways
		for w := 0; w < b.ways; w++ {
			t.temps[w] = uint8(b.meta[base+w] >> 8)
		}
		return t.SelectVictim(s, t.temps, req)
	default: // kindOPT
		return b.opt.SelectVictim(s, req)
	}
}

// materializeSet snapshots set s into the reusable scratch for
// Policy.Victim on the interface path.
func (b *BTB) materializeSet(s int) []Entry {
	for w := 0; w < b.ways; w++ {
		b.setScratch[w] = b.entryAt(s, w)
	}
	return b.setScratch
}

// Lookup probes the BTB without modifying replacement state or statistics.
// It returns the stored target and whether the PC is present. The frontend
// uses it on the speculative path; replacement state is updated at branch
// resolution via Access.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	s := b.SetIndex(pc)
	if i := b.findWay(s, pc); i >= 0 {
		return b.targets[s*b.ways+i], true
	}
	return 0, false
}

// Access performs a demand access for a taken branch: probe, update
// replacement state on a hit, or consult the policy and insert on a miss.
//
// The caller's Request never escapes: fast paths read it in place, and the
// interface path works on a BTB-owned copy, so per-access Requests stay on
// the caller's stack.
func (b *BTB) Access(req *Request) Result {
	if b.probe == nil && b.kind != kindGeneric {
		return b.accessFast(req)
	}
	b.req = *req
	return b.accessGeneric(&b.req)
}

// accessFast is the devirtualized demand access: identical decision
// sequence to accessGeneric, with the policy hooks dispatched directly.
func (b *BTB) accessFast(req *Request) Result {
	b.stats.Accesses++
	s := b.SetIndex(req.PC)
	if i := b.findWay(s, req.PC); i >= 0 {
		b.hitUpdate(s, i, req)
		b.fastOnHit(s, i, req)
		return Result{Hit: true, Way: i}
	}
	b.stats.Misses++
	if i := b.firstInvalid(s); i >= 0 {
		b.fillAt(s, i, req)
		b.fastOnInsert(s, i, req)
		return Result{Way: i}
	}
	v := b.fastVictim(s, req)
	if v == Bypass {
		b.stats.Bypasses++
		return Result{Bypassed: true, Way: -1}
	}
	evicted := b.entryAt(s, v)
	b.stats.Evictions++
	b.fillAt(s, v, req)
	b.fastOnInsert(s, v, req)
	return Result{Evicted: evicted, Way: v}
}

// accessGeneric is the interface-dispatch demand access, used for policies
// without a fast core and whenever a probe is attached.
func (b *BTB) accessGeneric(req *Request) Result {
	b.stats.Accesses++
	s := b.SetIndex(req.PC)
	if i := b.findWay(s, req.PC); i >= 0 {
		b.hitUpdate(s, i, req)
		b.policy.OnHit(s, i, req)
		if b.probe != nil {
			b.probe(ProbeHit, s, i, req, nil)
		}
		return Result{Hit: true, Way: i}
	}
	b.stats.Misses++
	if i := b.firstInvalid(s); i >= 0 {
		b.fillAt(s, i, req)
		b.policy.OnInsert(s, i, req)
		if b.probe != nil {
			b.probe(ProbeInsert, s, i, req, nil)
		}
		return Result{Way: i}
	}
	v := b.policy.Victim(s, b.materializeSet(s), req)
	if v == Bypass {
		b.stats.Bypasses++
		if b.probe != nil {
			b.probe(ProbeBypass, s, -1, req, nil)
		}
		return Result{Bypassed: true, Way: -1}
	}
	if v < 0 || v >= b.ways {
		panic(fmt.Sprintf("btb: policy %s returned invalid victim %d", b.policy.Name(), v))
	}
	evicted := b.entryAt(s, v)
	b.stats.Evictions++
	b.fillAt(s, v, req)
	b.policy.OnInsert(s, v, req)
	if b.probe != nil {
		b.evScratch = evicted
		b.probe(ProbeEvict, s, v, req, &b.evScratch)
		b.probe(ProbeInsert, s, v, req, nil)
	}
	return Result{Evicted: evicted, Way: v}
}

// PrefetchFill installs req if absent, consulting the replacement policy
// for the victim (so prefetch-induced pollution is modelled). It returns
// whether a fill happened. Prefetches do not touch demand hit/miss
// counters; fills are visible via Stats().PrefetchFills.
func (b *BTB) PrefetchFill(req *Request) bool {
	if b.probe == nil && b.kind != kindGeneric {
		return b.prefetchFast(req)
	}
	b.req = *req
	return b.prefetchGeneric(&b.req)
}

func (b *BTB) prefetchFast(req *Request) bool {
	s := b.SetIndex(req.PC)
	if b.findWay(s, req.PC) >= 0 {
		return false // already present
	}
	if i := b.firstInvalid(s); i >= 0 {
		b.fillAt(s, i, req)
		b.fastOnInsert(s, i, req)
		b.stats.PrefetchFills++
		return true
	}
	v := b.fastVictim(s, req)
	if v == Bypass {
		return false
	}
	b.stats.Evictions++
	b.fillAt(s, v, req)
	b.fastOnInsert(s, v, req)
	b.stats.PrefetchFills++
	return true
}

func (b *BTB) prefetchGeneric(req *Request) bool {
	s := b.SetIndex(req.PC)
	if b.findWay(s, req.PC) >= 0 {
		return false // already present
	}
	if i := b.firstInvalid(s); i >= 0 {
		b.fillAt(s, i, req)
		b.policy.OnInsert(s, i, req)
		b.stats.PrefetchFills++
		if b.probe != nil {
			b.probe(ProbePrefetchFill, s, i, req, nil)
		}
		return true
	}
	v := b.policy.Victim(s, b.materializeSet(s), req)
	if v == Bypass {
		return false
	}
	if v < 0 || v >= b.ways {
		panic(fmt.Sprintf("btb: policy %s returned invalid victim %d", b.policy.Name(), v))
	}
	evicted := b.entryAt(s, v)
	b.stats.Evictions++
	b.fillAt(s, v, req)
	b.policy.OnInsert(s, v, req)
	b.stats.PrefetchFills++
	if b.probe != nil {
		b.evScratch = evicted
		b.probe(ProbeEvict, s, v, req, &b.evScratch)
		b.probe(ProbePrefetchFill, s, v, req, nil)
	}
	return true
}

// Contents returns a copy of a set's entries (for tests and debugging).
func (b *BTB) Contents(set int) []Entry {
	out := make([]Entry, b.ways)
	for w := range out {
		out[w] = b.entryAt(set, w)
	}
	return out
}

// Occupancy returns the fraction of valid entries.
func (b *BTB) Occupancy() float64 {
	n := 0
	for _, v := range b.valid {
		n += bits.OnesCount64(v)
	}
	return float64(n) / float64(b.sets*b.ways)
}

// TemperatureCensus counts valid entries overall and by stored temperature
// hint (capped at the 2-bit encoding of §3.4). The epoch sampler uses it to
// report per-temperature occupancy; the walk is O(capacity), so callers
// should sample it at epoch granularity, not per access.
func (b *BTB) TemperatureCensus() (valid uint64, byTemp [4]uint64) {
	for s := 0; s < b.sets; s++ {
		base := s * b.ways
		vbase := s * b.vwords
		for wi := 0; wi < b.vwords; wi++ {
			for m := b.valid[vbase+wi]; m != 0; m &= m - 1 {
				w := wi<<6 + bits.TrailingZeros64(m)
				valid++
				t := uint8(b.meta[base+w] >> 8)
				if t > 3 {
					t = 3
				}
				byTemp[t]++
			}
		}
	}
	return valid, byTemp
}

// SetCensus counts the valid entries of one set and sums their stored
// temperature hints. The attribution heatmap samples it per set at epoch
// boundaries; the walk is O(ways).
func (b *BTB) SetCensus(s int) (valid, tempSum int) {
	base := s * b.ways
	vbase := s * b.vwords
	for wi := 0; wi < b.vwords; wi++ {
		for m := b.valid[vbase+wi]; m != 0; m &= m - 1 {
			w := wi<<6 + bits.TrailingZeros64(m)
			valid++
			tempSum += int(b.meta[base+w] >> 8)
		}
	}
	return valid, tempSum
}

// Capacity returns the total number of entry slots (sets × ways).
func (b *BTB) Capacity() int { return b.sets * b.ways }
