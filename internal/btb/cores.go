package btb

// This file holds the concrete replacement cores the BTB can dispatch to
// directly, bypassing the Policy interface on the per-access hot path.
//
// The contract: a policy type that embeds one of these cores and exposes it
// through the matching Fast* accessor gets devirtualized dispatch — the BTB
// type-switches ONCE at construction and thereafter calls the core's methods
// directly (inlineable, no interface call, no escaping arguments). The
// policy's interface methods (OnHit/OnInsert/Victim) must delegate to the
// same core instance, so the interface path — still used when a telemetry
// probe is attached, and by every policy without a core — observes and
// mutates identical state. Policies without a fast path (GHRP, Hawkeye,
// ablations, external experiments) keep working unchanged through the
// interface; it remains the extension point.

// LRUFastPath is implemented by policies whose replacement decisions are
// exactly LRU over per-way touch timestamps.
type LRUFastPath interface{ FastLRU() *LRUCore }

// SRRIPFastPath is implemented by policies that are exactly SRRIP.
type SRRIPFastPath interface{ FastSRRIP() *SRRIPCore }

// ThermometerFastPath is implemented by policies that are exactly
// Algorithm 1 (temperature-guided victim with LRU tie break and bypass).
type ThermometerFastPath interface{ FastThermometer() *ThermometerCore }

// OPTFastPath is implemented by policies that are exactly Belady's OPT
// with bypass over Request.NextUse oracles.
type OPTFastPath interface{ FastOPT() *OPTCore }

// LRUCore is the shared recency building block: per-way last-touch
// timestamps with a monotonic clock.
type LRUCore struct {
	stamp []uint64
	ways  int
	clock uint64
}

// Reset sizes the core for a sets×ways geometry and clears all state.
func (l *LRUCore) Reset(sets, ways int) {
	l.stamp = make([]uint64, sets*ways)
	l.ways = ways
	l.clock = 0
}

// Touch marks (set, way) as most recently used.
func (l *LRUCore) Touch(set, way int) {
	l.clock++
	l.stamp[set*l.ways+way] = l.clock
}

// LRUWay returns the least recently touched way of set.
func (l *LRUCore) LRUWay(set int) int {
	base := set * l.ways
	best, bestStamp := 0, l.stamp[base]
	for w := 1; w < l.ways; w++ {
		if s := l.stamp[base+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// LRUAmong returns the least recently touched way among candidates
// (candidates must be non-empty).
func (l *LRUCore) LRUAmong(set int, candidates []int) int {
	base := set * l.ways
	best := candidates[0]
	for _, w := range candidates[1:] {
		if l.stamp[base+w] < l.stamp[base+best] {
			best = w
		}
	}
	return best
}

// SRRIPCore implements Static Re-Reference Interval Prediction (Jaleel et
// al., ISCA 2010): M-bit re-reference prediction values per way, "long"
// insertion, "near-immediate" hit promotion, evict-first-distant with
// whole-set aging.
type SRRIPCore struct {
	bits int
	max  uint8 // distant value = 2^bits − 1
	rrpv []uint8
	ways int

	// AgingRounds counts whole-set RRPV aging sweeps — a measure of how
	// often no entry is already predicted distant.
	AgingRounds uint64
}

// NewSRRIPCore returns an SRRIP core with M-bit RRPVs.
func NewSRRIPCore(m int) SRRIPCore {
	if m < 1 || m > 8 {
		panic("btb: SRRIP bits out of range")
	}
	return SRRIPCore{bits: m, max: uint8(1<<m - 1)}
}

// Reset sizes the core and marks every way distant.
func (c *SRRIPCore) Reset(sets, ways int) {
	c.rrpv = make([]uint8, sets*ways)
	for i := range c.rrpv {
		c.rrpv[i] = c.max
	}
	c.ways = ways
	c.AgingRounds = 0
}

// Promote is the hit action: re-reference predicted near-immediate.
func (c *SRRIPCore) Promote(set, way int) {
	c.rrpv[set*c.ways+way] = 0
}

// InsertLong is the insert action: a long re-reference interval, so a
// branch only earns retention by being re-taken.
func (c *SRRIPCore) InsertLong(set, way int) {
	c.rrpv[set*c.ways+way] = c.max - 1
}

// SelectVictim returns the first way predicted distant, aging the whole
// set until one exists.
func (c *SRRIPCore) SelectVictim(set int) int {
	base := set * c.ways
	for {
		for w := 0; w < c.ways; w++ {
			if c.rrpv[base+w] == c.max {
				return w
			}
		}
		for w := 0; w < c.ways; w++ {
			c.rrpv[base+w]++
		}
		c.AgingRounds++
	}
}

// ThermometerCore implements Algorithm 1 of the paper: replacement guided
// by the profile-injected temperature hint (holistic behaviour) with LRU
// tie breaking (transient behaviour) and bypass of uniquely-coldest
// incoming branches.
type ThermometerCore struct {
	LRU LRUCore

	// NoBypass disables Algorithm 1's bypass (line 5-6) for the ablation
	// study of §2.5: a uniquely-coldest incoming branch is then inserted
	// over the coldest (LRU-tie-broken) resident.
	NoBypass bool

	// CoverageStats tracks how often the temperature hint actually
	// discriminated between candidates (Fig 15). A decision is "covered"
	// unless every candidate (residents and the incoming branch) shares
	// the same temperature, in which case Thermometer degenerates to LRU.
	Decisions uint64
	Covered   uint64
	Bypasses  uint64

	temps []uint8 // scratch: resident temperatures for SelectVictimEntries
	cand  []int   // scratch: candidate ways, reused across decisions
}

// Reset sizes the core and clears counters and recency state.
func (c *ThermometerCore) Reset(sets, ways int) {
	c.LRU.Reset(sets, ways)
	c.Decisions, c.Covered, c.Bypasses = 0, 0, 0
	c.temps = make([]uint8, ways)
	c.cand = make([]int, 0, ways)
}

// Touch is the hit/insert action (recency only; temperatures live in the
// BTB entry).
func (c *ThermometerCore) Touch(set, way int) { c.LRU.Touch(set, way) }

// SelectVictim runs Algorithm 1 over the resident temperatures in temps
// (one per way, set full) and the incoming request, returning the way to
// evict or Bypass.
func (c *ThermometerCore) SelectVictim(set int, temps []uint8, req *Request) int {
	c.Decisions++

	coldest := req.Temperature
	allSame := true
	for _, t := range temps {
		if t != req.Temperature {
			allSame = false
		}
		if t < coldest {
			coldest = t
		}
	}
	if !allSame {
		c.Covered++
	}

	c.cand = c.cand[:0]
	for i, t := range temps {
		if t == coldest {
			c.cand = append(c.cand, i)
		}
	}
	if len(c.cand) == 0 {
		if c.NoBypass || req.Prefetch {
			// Insert anyway, evicting the coldest (LRU-tie-broken)
			// resident: either the no-bypass ablation is active, or this
			// is a prefetcher-initiated fill whose transient evidence of
			// imminent reuse outweighs the holistic cold hint.
			coldestResident := temps[0]
			for _, t := range temps {
				if t < coldestResident {
					coldestResident = t
				}
			}
			for i, t := range temps {
				if t == coldestResident {
					c.cand = append(c.cand, i)
				}
			}
			return c.LRU.LRUAmong(set, c.cand)
		}
		// The incoming branch is uniquely coldest: bypass (Alg. 1 line 6).
		c.Bypasses++
		return Bypass
	}
	return c.LRU.LRUAmong(set, c.cand)
}

// SelectVictimEntries adapts SelectVictim to the Policy interface's
// materialized-entries form.
func (c *ThermometerCore) SelectVictimEntries(set int, entries []Entry, req *Request) int {
	temps := c.temps
	if len(entries) != len(temps) {
		temps = make([]uint8, len(entries))
	}
	for i := range entries {
		temps[i] = entries[i].Temperature
	}
	return c.SelectVictim(set, temps, req)
}

// OPTCore implements Belady's optimal replacement with bypass over the
// per-request next-use oracle.
type OPTCore struct {
	nextUse []int
	ways    int
}

// Reset sizes the core.
func (c *OPTCore) Reset(sets, ways int) {
	c.nextUse = make([]int, sets*ways)
	c.ways = ways
}

// Record is the hit/insert action: store the resident's next-use position.
func (c *OPTCore) Record(set, way int, req *Request) {
	c.nextUse[set*c.ways+way] = req.NextUse
}

// SelectVictim evicts (or bypasses) the candidate whose next use is
// furthest in the future.
func (c *OPTCore) SelectVictim(set int, req *Request) int {
	base := set * c.ways
	victim := Bypass // the incoming branch itself
	furthest := req.NextUse
	for w := 0; w < c.ways; w++ {
		if nu := c.nextUse[base+w]; nu > furthest {
			furthest = nu
			victim = w
		}
	}
	return victim
}
