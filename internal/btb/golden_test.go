// Golden-equivalence tests for the BTB core: a deterministic synthetic
// request stream is driven through every replacement policy and several
// geometries (power-of-two and non-power-of-two set counts), and the full
// per-access event sequence — hit/way/bypass results, probe events, eviction
// victims, lookups, and the final structural census — is hashed and compared
// against a checked-in golden file.
//
// The goldens were generated from the original []Entry (AoS) implementation;
// they pin the struct-of-arrays refactor and the devirtualized policy
// dispatch to byte-identical behaviour. Regenerate with:
//
//	go test ./internal/btb -run TestGoldenBTB -update-golden
package btb_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

var updateBTBGolden = flag.Bool("update-golden", false, "rewrite the BTB golden file")

// btbFingerprint is the per-configuration digest stored in the golden file.
type btbFingerprint struct {
	// EventsSHA256 hashes the entire per-access event log: access results,
	// probe callbacks, lookup results, and prefetch-fill outcomes.
	EventsSHA256 string    `json:"events_sha256"`
	Stats        btb.Stats `json:"stats"`
	Occupancy    float64   `json:"occupancy"`
	CensusValid  uint64    `json:"census_valid"`
	CensusByTemp [4]uint64 `json:"census_by_temp"`
	// FirstSet / LastSet are the formatted contents of the first and last
	// sets, pinning Contents and insertion order.
	FirstSet string `json:"first_set"`
	LastSet  string `json:"last_set"`
}

var goldenPolicies = []struct {
	name string
	mk   func() btb.Policy
}{
	{"lru", func() btb.Policy { return policy.NewLRU() }},
	{"random", func() btb.Policy { return policy.NewRandom() }},
	{"srrip", func() btb.Policy { return policy.NewSRRIP() }},
	{"ghrp", func() btb.Policy { return policy.NewGHRP() }},
	{"hawkeye", func() btb.Policy { return policy.NewHawkeye() }},
	{"opt", func() btb.Policy { return policy.NewOPT() }},
	{"thermometer", func() btb.Policy { return policy.NewThermometer() }},
	{"thermometer-nobypass", func() btb.Policy { return policy.NewThermometerNoBypass() }},
	{"holistic", func() btb.Policy { return policy.NewHolisticOnly() }},
	{"transient", func() btb.Policy { return policy.NewTransientOnly() }},
}

var goldenGeometries = []struct {
	name  string
	sets  int
	ways  int
	probe bool // attach a hashing probe (pins the probe event stream)
}{
	{"pow2-64x4", 64, 4, true},
	{"prime-499x4", 499, 4, false},
	{"paper-1994x4", 7979 / 4, 4, true}, // the 7979-entry Fig 11 geometry
	{"wide-4x64", 4, 64, false},
}

// goldenStream builds a deterministic access stream with realistic reuse
// (Zipf-distributed PC pool) and a correct next-use oracle, so OPT exercises
// both eviction and bypass.
type goldenAccess struct {
	pc, target uint64
	typ        trace.BranchType
	temp       uint8
	nextUse    int
}

func goldenStream(seed uint64, capacity, n int) []goldenAccess {
	rng := xrand.New(seed)
	pool := make([]uint64, 3*capacity)
	for i := range pool {
		pool[i] = 0x400000 + rng.Uint64n(1<<30)
	}
	z := xrand.NewZipf(len(pool), 1.1)
	seq := make([]goldenAccess, n)
	for i := range seq {
		pc := pool[z.Sample(rng)]
		seq[i] = goldenAccess{
			pc:     pc,
			target: pc ^ (xrand.Mix64(pc) & 0xfffff),
			typ:    trace.BranchType(xrand.Mix64(pc^0xBEEF) % 6),
			// Temperatures deliberately exceed the 2-bit range: profile
			// category counts are configurable (fig20), so storage must not
			// clip them.
			temp: uint8(xrand.Mix64(pc^0x7E39) % 6),
		}
		if rng.Bool(0.1) {
			// Occasionally retarget (exercises TargetUpdates on hits).
			seq[i].target = pc ^ uint64(rng.Uint64n(1<<20)|1)
		}
	}
	last := make(map[uint64]int, len(pool))
	for i := n - 1; i >= 0; i-- {
		if j, ok := last[seq[i].pc]; ok {
			seq[i].nextUse = j
		} else {
			seq[i].nextUse = trace.NoNextUse
		}
		last[seq[i].pc] = i
	}
	return seq
}

func driveBTB(b *btb.BTB, seq []goldenAccess, withProbe bool, h hash.Hash) {
	if withProbe {
		b.SetProbe(func(kind btb.ProbeKind, set, way int, req *btb.Request, victim *btb.Entry) {
			if victim != nil {
				fmt.Fprintf(h, "P %d %d %d %x v=%x/%d/%v\n", kind, set, way, req.PC, victim.PC, victim.Temperature, victim.Valid)
			} else {
				fmt.Fprintf(h, "P %d %d %d %x t=%x temp=%d pf=%v\n", kind, set, way, req.PC, req.Target, req.Temperature, req.Prefetch)
			}
		})
	}
	for i := range seq {
		a := &seq[i]
		req := btb.Request{
			PC: a.pc, Target: a.target, Type: a.typ, Temperature: a.temp,
			NextUse: a.nextUse, Index: i,
		}
		if i%13 == 5 {
			req.Prefetch = true
			filled := b.PrefetchFill(&req)
			fmt.Fprintf(h, "F %d %v\n", i, filled)
			continue
		}
		r := b.Access(&req)
		fmt.Fprintf(h, "A %d %v %v %d e=%v/%x/%d\n",
			i, r.Hit, r.Bypassed, r.Way, r.Evicted.Valid, r.Evicted.PC, r.Evicted.Temperature)
		if i%7 == 3 {
			tgt, ok := b.Lookup(a.pc)
			fmt.Fprintf(h, "L %d %x %v\n", i, tgt, ok)
		}
	}
}

func formatSet(b *btb.BTB, set int) string {
	s := ""
	for _, e := range b.Contents(set) {
		s += fmt.Sprintf("[%v %x %x %d %d]", e.Valid, e.PC, e.Target, e.Type, e.Temperature)
	}
	return s
}

func TestGoldenBTB(t *testing.T) {
	got := make(map[string]btbFingerprint)
	for _, g := range goldenGeometries {
		seq := goldenStream(0xB7B<<16|uint64(g.sets), g.sets*g.ways, 6000)
		for _, p := range goldenPolicies {
			b := btb.NewWithSets(g.sets, g.ways, p.mk())
			h := sha256.New()
			driveBTB(b, seq, g.probe, h)
			valid, byTemp := b.TemperatureCensus()
			cv, ct := b.SetCensus(0)
			fmt.Fprintf(h, "S %d %d\n", cv, ct)
			got[g.name+"/"+p.name] = btbFingerprint{
				EventsSHA256: hex.EncodeToString(h.Sum(nil)),
				Stats:        b.Stats(),
				Occupancy:    b.Occupancy(),
				CensusValid:  valid,
				CensusByTemp: byTemp,
				FirstSet:     formatSet(b, 0),
				LastSet:      formatSet(b, b.Sets()-1),
			}
		}
	}

	path := filepath.Join("testdata", "golden_btb.json")
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	if *updateBTBGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d configurations)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var wantMap map[string]btbFingerprint
	if err := json.Unmarshal(want, &wantMap); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	for k, w := range wantMap {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: configuration missing from this run", k)
			continue
		}
		if g != w {
			t.Errorf("%s: behaviour diverged from golden\n got:  %+v\n want: %+v", k, g, w)
		}
	}
	for k := range got {
		if _, ok := wantMap[k]; !ok {
			t.Errorf("%s: configuration missing from golden file (run -update-golden)", k)
		}
	}
}
