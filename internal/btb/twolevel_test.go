package btb

import (
	"testing"

	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

func tlReq(pc uint64) *Request {
	return &Request{PC: pc, Target: pc + 4, Type: trace.UncondDirect, NextUse: trace.NoNextUse}
}

func TestTwoLevelPromotion(t *testing.T) {
	// L1: 1 set × 2 ways; L2: big.
	tl := NewTwoLevel(2, 2, &naiveLRU{}, 64, 4, &naiveLRU{}, 3)
	// Fill L1 with A, B.
	tl.Access(tlReq(1))
	tl.Access(tlReq(2))
	// C evicts A (LRU) → A demoted to L2.
	r := tl.Access(tlReq(3))
	if r.Hit {
		t.Fatal("cold access hit")
	}
	if tl.Demotions != 1 {
		t.Fatalf("demotions = %d", tl.Demotions)
	}
	// A again: L1 miss, L2 hit → promotion with bubble.
	r = tl.Access(tlReq(1))
	if !r.Hit || !r.L2Hit || r.Bubble != 3 {
		t.Fatalf("promotion result = %+v", r)
	}
	if tl.Promotions != 1 {
		t.Fatalf("promotions = %d", tl.Promotions)
	}
	// A now in L1: fast hit.
	r = tl.Access(tlReq(1))
	if !r.Hit || r.L2Hit || r.Bubble != 0 {
		t.Fatalf("post-promotion access = %+v", r)
	}
}

func TestTwoLevelTrueMisses(t *testing.T) {
	tl := NewTwoLevel(2, 2, &naiveLRU{}, 64, 4, &naiveLRU{}, 3)
	for pc := uint64(1); pc <= 10; pc++ {
		tl.Access(tlReq(pc))
	}
	if got := tl.TrueMisses(); got != 10 {
		t.Fatalf("true misses = %d, want 10 (all compulsory)", got)
	}
}

// TestTwoLevelCapacityBeatsL1Alone: a working set exceeding L1 but fitting
// L1+L2 should mostly hit (slowly) instead of missing.
func TestTwoLevelCapacityBeatsL1Alone(t *testing.T) {
	tl := NewTwoLevel(8, 4, &naiveLRU{}, 256, 4, &naiveLRU{}, 3)
	small := New(8, 4, &naiveLRU{})
	r := xrand.New(3)
	var tlMiss, smallMiss int
	for i := 0; i < 20000; i++ {
		pc := uint64(r.Intn(64) + 1) // working set 64 >> L1 8, << L2 256
		if !tl.Access(tlReq(pc)).Hit {
			tlMiss++
		}
		if !small.Access(tlReq(pc)).Hit {
			smallMiss++
		}
	}
	if tlMiss*4 > smallMiss {
		t.Fatalf("two-level misses %d not clearly below L1-only %d", tlMiss, smallMiss)
	}
}
