package btb_test

import (
	"testing"

	"thermometer/internal/btb"
	"thermometer/internal/policy"
	"thermometer/internal/trace"
)

// pinZeroAllocs asserts fn performs no heap allocation per invocation,
// pinning the steady-state contract of the SoA BTB: requests are read in
// place (fast path) or copied into BTB-owned scratch (interface path), and
// victim snapshots reuse a per-BTB buffer.
func pinZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm up: first call may grow internal scratch
	if avg := testing.AllocsPerRun(200, fn); avg != 0 {
		t.Errorf("%s: %v allocs per run, want 0", name, avg)
	}
}

func accessDriver(b *btb.BTB) func() {
	i := 0
	return func() {
		pc := uint64(0x1000 + (i%512)*64)
		req := btb.Request{
			PC:          pc,
			Target:      pc ^ 0xfff0,
			Type:        trace.UncondDirect,
			NextUse:     i + 7,
			Index:       i,
			Temperature: uint8(i % 4),
		}
		b.Access(&req)
		if i%5 == 0 {
			req.Prefetch = true
			req.PC ^= 0x40
			b.PrefetchFill(&req)
		}
		b.Lookup(pc)
		i++
	}
}

// TestAccessDoesNotAllocate pins btb.Access, PrefetchFill, and Lookup at
// zero allocations for both the devirtualized fast paths and the generic
// interface path (GHRP has no fast-path core).
func TestAccessDoesNotAllocate(t *testing.T) {
	cases := []struct {
		name string
		pol  btb.Policy
	}{
		{"lru-fastpath", policy.NewLRU()},
		{"srrip-fastpath", policy.NewSRRIP()},
		{"thermometer-fastpath", policy.NewThermometer()},
		{"opt-fastpath", policy.NewOPT()},
		{"ghrp-generic", policy.NewGHRP()},
		{"hawkeye-generic", policy.NewHawkeye()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := btb.New(256, 4, tc.pol)
			pinZeroAllocs(t, tc.name, accessDriver(b))
		})
	}
}

// TestProbedAccessDoesNotAllocate pins the probe-attached path (used by the
// golden fingerprint tests and telemetry), which shares the generic access
// body.
func TestProbedAccessDoesNotAllocate(t *testing.T) {
	b := btb.New(256, 4, policy.NewLRU())
	var events uint64
	b.SetProbe(func(kind btb.ProbeKind, set, way int, req *btb.Request, evicted *btb.Entry) {
		events++
	})
	pinZeroAllocs(t, "probed", accessDriver(b))
	if events == 0 {
		t.Fatal("probe never fired")
	}
}
