package btb

// TwoLevel is a two-level BTB organization in the style the paper's related
// work discusses (§5: Bulldozer's L1/L2 BTBs, BTB-X) — a small,
// single-cycle first level backed by a large, slower second level. The
// paper argues such organizations are orthogonal to Thermometer; the
// twolevel experiment validates that claim by running temperature hints on
// both levels.
//
// Semantics:
//
//   - lookup probes L1 then L2;
//   - an L1 miss that hits L2 promotes the entry to L1 (the displaced L1
//     victim is demoted into L2), costing BubbleCycles of BPU stall but no
//     FTQ squash;
//   - a miss in both levels is an ordinary BTB miss: the entry is inserted
//     into L1 (with demotion of the victim), subject to L1's policy bypass.
//
// Both levels run their own replacement policy instances, so hints flow to
// both.
type TwoLevel struct {
	L1 *BTB
	L2 *BTB
	// BubbleCycles is the BPU stall charged for an L1-miss/L2-hit access.
	BubbleCycles int

	Promotions uint64
	Demotions  uint64
	L2Bubbles  uint64
}

// NewTwoLevel builds a two-level BTB.
func NewTwoLevel(l1Entries, l1Ways int, p1 Policy, l2Entries, l2Ways int, p2 Policy, bubble int) *TwoLevel {
	return &TwoLevel{
		L1:           New(l1Entries, l1Ways, p1),
		L2:           New(l2Entries, l2Ways, p2),
		BubbleCycles: bubble,
	}
}

// TwoLevelResult reports one access.
type TwoLevelResult struct {
	// Hit is true when either level supplied the target.
	Hit bool
	// L2Hit is true when the hit came from the second level (promotion).
	L2Hit bool
	// Bubble is the BPU stall in cycles (BubbleCycles on an L2 hit).
	Bubble int
}

// Access performs a demand access for a taken branch.
func (t *TwoLevel) Access(req *Request) TwoLevelResult {
	// L1 probe (counted as the demand access).
	r1 := t.L1.Access(req)
	if r1.Hit {
		// Keep an L2 copy warm for inclusivity-of-history; L2 is updated
		// only on promotion/demotion to bound its write traffic, so a pure
		// L1 hit touches nothing else.
		return TwoLevelResult{Hit: true}
	}
	// The L1 Access above already inserted (or bypassed) the entry via the
	// L1 policy; on an eviction, demote the victim into L2.
	if r1.Evicted.Valid {
		t.demote(r1.Evicted)
	}
	// L2 probe tells us whether this was a true miss or a slow hit.
	if _, ok := t.L2.Lookup(req.PC); ok {
		t.Promotions++
		t.L2Bubbles++
		// The entry now lives in L1 (just inserted); a real design would
		// also invalidate or demote the L2 copy — leaving it is a form of
		// (mostly harmless) duplication that bounds metadata traffic.
		return TwoLevelResult{Hit: true, L2Hit: true, Bubble: t.BubbleCycles}
	}
	return TwoLevelResult{}
}

// demote installs an evicted L1 entry into L2 through L2's policy.
func (t *TwoLevel) demote(e Entry) {
	t.Demotions++
	req := Request{
		PC: e.PC, Target: e.Target, Type: e.Type,
		Temperature: e.Temperature, NextUse: 0,
	}
	// Demotions carry no future knowledge; give OPT-style policies a
	// neutral (immediate) next-use so they treat the demoted entry like a
	// fresh insertion. Non-oracle policies ignore the field.
	t.L2.PrefetchFill(&req)
}

// Stats returns combined statistics: L1 demand stats plus L2 contents.
func (t *TwoLevel) Stats() (l1, l2 Stats) { return t.L1.Stats(), t.L2.Stats() }

// TrueMisses returns the number of accesses that missed both levels.
func (t *TwoLevel) TrueMisses() uint64 { return t.L1.Stats().Misses - t.Promotions }
