package btb

import "thermometer/internal/xrand"

// IBTB predicts targets of indirect branches (4096 entries in Table 1).
// It is a tagged, direct-mapped, PC-indexed table with replacement
// hysteresis: since indirect call sites are strongly monomorphic, the
// stored target is only replaced after two consecutive mismatches, which
// keeps the dominant target resident through occasional polymorphic
// excursions (the same idea as a 2-bit confidence counter in real ITTAGE
// tables).
type IBTB struct {
	entries []ibtbEntry
	mask    uint64

	Hits   uint64
	Misses uint64
}

type ibtbEntry struct {
	valid  bool
	tag    uint32
	target uint64
	conf   uint8 // saturating 0..3; replacement allowed at 0
}

// NewIBTB builds an indirect-target buffer with the given number of entries
// (rounded down to a power of two for cheap masking; Table 1 uses 4096).
func NewIBTB(entries int) *IBTB {
	if entries <= 0 {
		panic("btb: IBTB needs at least one entry")
	}
	n := 1
	for n*2 <= entries {
		n *= 2
	}
	return &IBTB{entries: make([]ibtbEntry, n), mask: uint64(n - 1)}
}

func (ib *IBTB) index(pc uint64) (idx uint64, tag uint32) {
	h := xrand.Mix64(pc)
	return h & ib.mask, uint32(h >> 40)
}

// Predict returns the predicted target for an indirect branch at pc, if any.
func (ib *IBTB) Predict(pc uint64) (target uint64, ok bool) {
	idx, tag := ib.index(pc)
	e := &ib.entries[idx]
	if e.valid && e.tag == tag {
		return e.target, true
	}
	return 0, false
}

// Update records the observed target for the indirect branch at pc. It
// returns whether the prediction would have been correct (for statistics).
func (ib *IBTB) Update(pc, target uint64) bool {
	idx, tag := ib.index(pc)
	e := &ib.entries[idx]
	correct := e.valid && e.tag == tag && e.target == target
	if correct {
		ib.Hits++
		if e.conf < 3 {
			e.conf++
		}
		return true
	}
	ib.Misses++
	if e.valid && e.tag == tag {
		// Same branch, different target: hysteresis before replacing.
		if e.conf > 0 {
			e.conf--
		} else {
			e.target = target
			e.conf = 1
		}
		return false
	}
	// Different branch (or empty slot): contend for the entry.
	if !e.valid || e.conf == 0 {
		*e = ibtbEntry{valid: true, tag: tag, target: target, conf: 1}
	} else {
		e.conf--
	}
	return false
}

// Accuracy returns the fraction of updates whose prediction was correct.
func (ib *IBTB) Accuracy() float64 {
	total := ib.Hits + ib.Misses
	if total == 0 {
		return 0
	}
	return float64(ib.Hits) / float64(total)
}

// RAS is the return address stack (32 entries in Table 1). Pushes wrap on
// overflow, silently overwriting the oldest frame — the same graceful
// degradation hardware exhibits on deep recursion.
type RAS struct {
	stack []uint64
	top   int // number of live frames, capped at len(stack)
	pos   int // next push slot (circular)

	Pushes     uint64
	Pops       uint64
	Overflows  uint64
	Underflows uint64
}

// NewRAS builds a return-address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity <= 0 {
		panic("btb: RAS needs positive capacity")
	}
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a call's return address.
func (r *RAS) Push(returnAddr uint64) {
	r.Pushes++
	if r.top == len(r.stack) {
		r.Overflows++
	} else {
		r.top++
	}
	r.stack[r.pos] = returnAddr
	r.pos = (r.pos + 1) % len(r.stack)
}

// Pop predicts the target of a return. ok is false when the stack is empty
// (the prediction is then unavailable and the frontend must rely on the
// BTB/IBTB path).
func (r *RAS) Pop() (addr uint64, ok bool) {
	r.Pops++
	if r.top == 0 {
		r.Underflows++
		return 0, false
	}
	r.top--
	r.pos = (r.pos - 1 + len(r.stack)) % len(r.stack)
	return r.stack[r.pos], true
}

// Depth returns the number of live frames.
func (r *RAS) Depth() int { return r.top }
