// Package ofclean reduces floats only in deterministic orders: the
// analyzer must stay silent here.
package ofclean

import "sort"

func forEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Sweep is the blessed shape: parallel slot writes, serial reduction.
func Sweep(inputs []float64) float64 {
	results := make([]float64, len(inputs))
	forEach(len(inputs), func(i int) {
		results[i] = inputs[i] * inputs[i]
	})
	var sum float64
	for _, r := range results {
		sum += r
	}
	return sum
}

// SumByKey reduces a map in sorted-key order.
func SumByKey(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}
