// Package oftest exercises the orderedfloat analyzer: captured float
// accumulators in parallel callbacks and map-range reductions.
package oftest

func forEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func capturedAccumulator(vals []float64) float64 {
	var sum float64
	forEach(len(vals), func(i int) {
		sum += vals[i] // want `float accumulation into captured sum inside a parallel callback`
	})
	return sum
}

func indexedSlots(vals []float64) float64 {
	out := make([]float64, len(vals))
	forEach(len(vals), func(i int) {
		out[i] = vals[i] * 2 // writes its own slot: no accumulation
	})
	var sum float64
	for _, v := range out { // serial reduction in submission order
		sum += v
	}
	return sum
}

// localInsideCallback accumulates into a variable declared inside the
// callback: per-invocation state, not a shared reduction.
func localInsideCallback(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	forEach(len(rows), func(i int) {
		var rowSum float64
		for _, v := range rows[i] {
			rowSum += v
		}
		out[i] = rowSum
	})
	return out
}

func goroutineAccumulator(vals []float64, done chan struct{}) float64 {
	var sum float64
	go func() {
		for _, v := range vals {
			sum += v // want `float accumulation into captured sum inside a parallel callback or goroutine`
		}
		close(done)
	}()
	<-done
	return sum
}

func mapRange(byApp map[string]float64) float64 {
	var total float64
	for _, v := range byApp {
		total += v // want `float accumulation while ranging over map byApp`
	}
	return total
}

func intMapRange(byApp map[string]int) int {
	total := 0
	for _, v := range byApp { // integer addition commutes exactly: fine
		total += v
	}
	return total
}

func sliceRange(vals []float64) float64 {
	var total float64
	for _, v := range vals {
		total += v
	}
	return total
}
