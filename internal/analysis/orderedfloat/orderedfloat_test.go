package orderedfloat

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func scoped(t *testing.T, re string) {
	t.Helper()
	old := Scope
	Scope = regexp.MustCompile(re)
	t.Cleanup(func() { Scope = old })
}

func TestOrderedFloat(t *testing.T) {
	scoped(t, `^oftest$`)
	analysistest.Run(t, "testdata", Analyzer, "oftest")
}

func TestOrderedFloatClean(t *testing.T) {
	scoped(t, `^ofclean$`)
	analysistest.Run(t, "testdata", Analyzer, "ofclean")
}
