// Package orderedfloat implements the thermolint analyzer that keeps
// floating-point reductions in a deterministic order.
//
// Float addition does not commute in rounding: summing the same values in a
// different order produces a different last bit, which breaks the
// byte-identical-output contract the sweep fabric promises at any worker
// count. The analyzer flags `+=`/`-=` on float lvalues when the accumulation
// order is not fixed:
//
//   - inside a ForEach/forEach/SweepProgress callback or a go statement,
//     when the accumulator is captured from the enclosing scope (concurrent
//     workers race the reduction order);
//   - inside a range over a map (iteration order is randomized per run).
//
// The blessed pattern is the one the experiments package uses: parallel
// workers write into caller-indexed slots, and a serial loop in submission
// order does the float reduction afterwards.
package orderedfloat

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"thermometer/internal/analysis"
)

// Scope selects the import paths checked. Tests override it to target
// testdata packages.
var Scope = regexp.MustCompile(`^thermometer/internal/`)

// parallelCall matches callee names whose func-typed argument runs on
// worker goroutines.
var parallelCall = regexp.MustCompile(`(?i)^(foreach|sweepprogress)$`)

// Analyzer is the orderedfloat pass.
var Analyzer = &analysis.Analyzer{
	Name: "orderedfloat",
	Doc: "float accumulation in parallel callbacks, goroutines, or map " +
		"ranges has nondeterministic summation order; reduce serially over " +
		"indexed slots or sorted keys",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	pass.InspectStack(func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) || len(as.Lhs) != 1 {
			return true
		}
		if !isFloat(pass.TypeOf(as.Lhs[0])) {
			return true
		}
		root := rootIdent(as.Lhs[0])
		if root == nil {
			return true
		}
		if lit := capturedInParallel(pass, root, stack); lit != nil {
			pass.Reportf(as.Pos(),
				"float accumulation into captured %s inside a parallel callback or goroutine: summation order varies with scheduling; write into an indexed slot and reduce serially",
				root.Name)
			return true
		}
		if m := inMapRange(pass, stack); m != nil {
			pass.Reportf(as.Pos(),
				"float accumulation while ranging over map %s: iteration order is randomized, so the rounded sum differs run to run; iterate detmap.SortedKeys",
				types.ExprString(m))
		}
		return true
	})
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// rootIdent peels sums[j], s.total, (*p).x down to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// capturedInParallel returns the enclosing function literal that runs on a
// worker (an argument of ForEach/forEach/SweepProgress, or a go statement)
// when the accumulator is declared outside it — the racing-reduction shape.
func capturedInParallel(pass *analysis.Pass, root *ast.Ident, stack []ast.Node) *ast.FuncLit {
	obj := pass.Info.Uses[root]
	if obj == nil {
		return nil
	}
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return nil // declared inside this literal: a local accumulator
		}
		if i == 0 {
			return nil
		}
		if parent, ok := stack[i-1].(*ast.CallExpr); ok {
			if parent.Fun == lit {
				// `go func(){...}()`: the literal IS the callee; the go
				// statement sits one level further up.
				if i >= 2 {
					if _, isGo := stack[i-2].(*ast.GoStmt); isGo {
						return lit
					}
				}
			} else if name := calleeName(parent); name != "" && parallelCall.MatchString(name) {
				return lit
			}
		}
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// inMapRange returns the ranged map expression when the statement sits in a
// map-range body within the same function (literals bound their own
// contexts).
func inMapRange(pass *analysis.Pass, stack []ast.Node) ast.Expr {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.RangeStmt:
			if t := pass.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					return s.X
				}
			}
		}
	}
	return nil
}
