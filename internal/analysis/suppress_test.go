package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// reportEverywhere returns an analyzer that reports one diagnostic per
// `var _ = N` declaration in the package, at the declaration's position.
func reportEverywhere(name string) *Analyzer {
	return &Analyzer{Name: name, Doc: "test", Run: func(pass *Pass) error {
		pass.Inspect(func(n ast.Node) bool {
			if vs, ok := n.(*ast.ValueSpec); ok {
				pass.Reportf(vs.Pos(), "finding from %s", name)
			}
			return true
		})
		return nil
	}}
}

func loadOne(t *testing.T, src string) *Package {
	t.Helper()
	loader := writeTestdata(t, map[string]string{"suptest/a.go": src})
	pkg, err := loader.Load("suptest")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func messages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Analyzer + ": " + d.Message
	}
	return out
}

// A suppression waives only the analyzer it names: alpha's finding on the
// annotated line survives a beta-scoped suppression.
func TestSuppressionScopedToSingleAnalyzer(t *testing.T) {
	pkg := loadOne(t, `package suptest

var _ = 1 //lint:allow alpha demonstration waiver

var _ = 2 //lint:allow beta waives beta only
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportEverywhere("alpha"), reportEverywhere("beta")})
	if err != nil {
		t.Fatal(err)
	}
	got := messages(diags)
	want := []string{"beta: finding from beta", "alpha: finding from alpha"}
	if len(got) != 2 {
		t.Fatalf("diags = %v, want exactly the cross-analyzer leftovers %v", got, want)
	}
	// Line 3 keeps beta's finding, line 5 keeps alpha's.
	if diags[0].Line != 3 || diags[0].Analyzer != "beta" {
		t.Errorf("line 3 diagnostic = %+v, want beta's finding to survive alpha's waiver", diags[0])
	}
	if diags[1].Line != 5 || diags[1].Analyzer != "alpha" {
		t.Errorf("line 5 diagnostic = %+v, want alpha's finding to survive beta's waiver", diags[1])
	}
}

// An unknown analyzer name in a suppression is itself a diagnostic instead
// of silently suppressing nothing.
func TestSuppressionUnknownAnalyzerIsDiagnostic(t *testing.T) {
	pkg := loadOne(t, `package suptest

var _ = 1 //lint:allow alhpa typo'd analyzer name
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportEverywhere("alpha")})
	if err != nil {
		t.Fatal(err)
	}
	var lint, alpha int
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			lint++
			if !strings.Contains(d.Message, `unknown analyzer "alhpa"`) {
				t.Errorf("lint message %q does not name the typo", d.Message)
			}
			if !strings.Contains(d.Message, "alpha") {
				t.Errorf("lint message %q does not list the known analyzers", d.Message)
			}
		case "alpha":
			alpha++ // the typo'd waiver must not suppress the real finding
		}
	}
	if lint != 1 || alpha != 1 {
		t.Errorf("got %d lint + %d alpha diagnostics, want 1 + 1: %v", lint, alpha, messages(diags))
	}
}

// A suppression with no reason stays malformed.
func TestSuppressionRequiresReason(t *testing.T) {
	pkg := loadOne(t, `package suptest

var _ = 1 //lint:allow alpha
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportEverywhere("alpha")})
	if err != nil {
		t.Fatal(err)
	}
	foundMalformed := false
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "malformed suppression") {
			foundMalformed = true
		}
	}
	if !foundMalformed {
		t.Errorf("missing malformed-suppression diagnostic: %v", messages(diags))
	}
}

// A well-formed suppression naming a known analyzer still works.
func TestSuppressionKnownAnalyzerWaives(t *testing.T) {
	pkg := loadOne(t, `package suptest

var _ = 1 //lint:allow alpha documented and accepted
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportEverywhere("alpha")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("diags = %v, want none", messages(diags))
	}
}

// The "lint" pseudo-analyzer is always known, so its own findings can be
// waived where a malformed-looking comment is intentional.
func TestSuppressionLintNameKnown(t *testing.T) {
	pkg := loadOne(t, `package suptest

var _ = 1 //lint:allow lint placeholder waiver for the lint checker itself
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportEverywhere("alpha")})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "lint" {
			t.Errorf("lint name rejected as unknown: %v", d)
		}
	}
}
