package lockdiscipline_test

import (
	"testing"

	"thermometer/internal/analysis/analysistest"
	"thermometer/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer, "lockdtest")
}

func TestLockDisciplineClean(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer, "lockdclean")
}
