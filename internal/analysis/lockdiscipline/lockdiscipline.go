// Package lockdiscipline implements the thermolint analyzer that enforces
// mutex-guard annotations on struct fields.
//
// A field carrying the comment
//
//	// guarded by <mu>
//
// (where <mu> names a sibling sync.Mutex/RWMutex field) may only be read or
// written while that mutex is held. "Held" is established structurally: a
// `x.mu.Lock()` earlier in the same function with no intervening
// `x.mu.Unlock()` on the path (deferred unlocks keep the lock to function
// exit), or — for the xxxLocked helper idiom — at every in-package call site
// of the enclosing method, transitively through direct calls (the
// per-package call graph). A goroutine body never inherits its spawner's
// locks, and a function literal is analyzed as its own context: lock
// ownership does not leak across concurrency or escape boundaries.
//
// The analyzer also flags copies of lock-bearing values: receivers,
// parameters, results, assignments, and range variables whose non-pointer
// type transitively contains a sync or sync/atomic type. A copied mutex is
// a fork of its lock state and a classic source of "works until it
// deadlocks" bugs.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"thermometer/internal/analysis"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "fields annotated `// guarded by <mu>` may only be accessed with " +
		"that mutex held (directly or via every caller); lock-bearing " +
		"structs must not be copied by value",
	Run: run,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo is the annotation on one struct field.
type guardInfo struct {
	mutex  string // sibling field name of the guarding mutex
	owner  string // display name of the struct type
	fldPos token.Pos
}

func run(pass *analysis.Pass) error {
	guarded := collectGuards(pass)
	checkCopies(pass)
	if len(guarded) == 0 {
		return nil
	}

	w := &walker{pass: pass, guarded: guarded, siteHeld: make(map[*ast.CallExpr]lockState)}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				w.walkFunc(decl)
			}
		}
	}

	// Resolve the accesses that were not locally dominated by a Lock: the
	// xxxLocked idiom is satisfied when every in-package caller holds the
	// mutex at the call site (transitively).
	g := pass.CallGraph()
	for _, acc := range w.pending {
		if acc.baseIsRecv {
			node := g.Node(pass.FuncFor(acc.fn))
			if node != nil && w.heldByCallers(node, acc.mutexField, make(map[*analysis.CallNode]bool)) {
				continue
			}
		}
		info := guarded[acc.field]
		pass.Reportf(acc.pos,
			"field %s.%s is guarded by %s but accessed without %s held (no dominating Lock in this function%s)",
			info.owner, acc.field.Name(), info.mutex, acc.mutexExpr, callerNote(acc))
	}
	return nil
}

func callerNote(acc pendingAccess) string {
	if acc.baseIsRecv {
		return " or at every caller"
	}
	return ""
}

// collectGuards finds `// guarded by <mu>` field annotations, validates the
// named mutex is a sibling field, and maps field objects to their guards.
func collectGuards(pass *analysis.Pass) map[*types.Var]guardInfo {
	guarded := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu, ok := guardAnnotation(fld)
				if !ok {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(fld.Pos(),
						"guarded-by annotation names %q, which is not a field of %s", mu, ts.Name.Name)
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardInfo{mutex: mu, owner: ts.Name.Name, fldPos: fld.Pos()}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment.
func guardAnnotation(fld *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// heldByCallers reports whether every in-package call site of node holds the
// callee receiver's mutexField. A node with no in-package callers (an
// exported entry point) cannot prove anything; a call cycle without a
// locking root likewise fails.
func (w *walker) heldByCallers(node *analysis.CallNode, mutexField string, visited map[*analysis.CallNode]bool) bool {
	if visited[node] {
		return false
	}
	visited[node] = true
	if len(node.CalledBy) == 0 {
		return false
	}
	for _, site := range node.CalledBy {
		sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false // plain function call: no receiver to hold a lock on
		}
		base := ast.Unparen(sel.X)
		mexpr := types.ExprString(base) + "." + mutexField
		if w.siteHeld[site.Call][mexpr] {
			continue
		}
		// The caller may itself run entirely under the lock: recurse when
		// the receiver at this site is the caller's own receiver.
		if isReceiverIdent(w.pass, base, site.Caller.Decl) &&
			w.heldByCallers(site.Caller, mutexField, visited) {
			continue
		}
		return false
	}
	return true
}

// isReceiverIdent reports whether e is an identifier bound to decl's
// receiver.
func isReceiverIdent(pass *analysis.Pass, e ast.Expr, decl *ast.FuncDecl) bool {
	id, ok := e.(*ast.Ident)
	if !ok || decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return false
	}
	obj := pass.Info.Uses[id]
	return obj != nil && obj == pass.Info.Defs[decl.Recv.List[0].Names[0]]
}

// --- copy-by-value of lock-bearing structs ---

func checkCopies(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, n.Recv, "receiver")
				if n.Type.Params != nil {
					checkFieldList(pass, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(pass, n.Type.Results, "result")
				}
			case *ast.FuncLit:
				checkFieldList(pass, n.Type.Params, "parameter")
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					// Copying an existing lock-bearing value (`x := *p`,
					// `a = b`) forks its lock state; constructing one
					// (composite literal, new, make) does not.
					if isConstruction(rhs) {
						continue
					}
					if t := pass.TypeOf(rhs); t != nil && len(n.Rhs) == len(n.Lhs) {
						if name, bad := lockBearer(t); bad {
							pass.Reportf(rhs.Pos(), "assignment copies %s by value; it contains %s", typeLabel(t), name)
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypeOf(n.Value); t != nil {
						if name, bad := lockBearer(t); bad {
							pass.Reportf(n.Value.Pos(), "range value copies %s by value; it contains %s", typeLabel(t), name)
						}
					}
				}
			}
			return true
		})
	}
}

func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, fld := range fl.List {
		t := pass.TypeOf(fld.Type)
		if t == nil {
			continue
		}
		if name, bad := lockBearer(t); bad {
			pass.Reportf(fld.Pos(), "%s passes %s by value; it contains %s (pass a pointer)",
				what, typeLabel(t), name)
		}
	}
}

func isConstruction(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND
	}
	return false
}

func typeLabel(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// lockBearer reports whether t (a non-pointer type) transitively contains a
// sync or sync/atomic type, naming the first one found.
func lockBearer(t types.Type) (string, bool) {
	return lockBearerRec(t, make(map[types.Type]bool))
}

func lockBearerRec(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return pkg.Path() + "." + named.Obj().Name(), true
			}
		}
		return lockBearerRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, bad := lockBearerRec(u.Field(i).Type(), seen); bad {
				return name, true
			}
		}
	case *types.Array:
		return lockBearerRec(u.Elem(), seen)
	}
	return "", false
}
