package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"thermometer/internal/analysis"
)

// lockState is the set of mutexes held at a program point, keyed by the
// go/types rendering of the mutex expression ("s.mu", "c.inner.mu").
type lockState map[string]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersect(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := lockState{}
	for k := range states[0] {
		all := true
		for _, s := range states[1:] {
			if !s[k] {
				all = false
				break
			}
		}
		if all {
			out[k] = true
		}
	}
	return out
}

// pendingAccess is a guarded-field access that no Lock dominated locally; it
// is either satisfied by every caller holding the mutex (receiver-based
// accesses in the xxxLocked idiom) or reported.
type pendingAccess struct {
	field      *types.Var
	pos        token.Pos
	mutexExpr  string // caller-side rendering, e.g. "s.mu"
	mutexField string // the bare field name, e.g. "mu"
	baseIsRecv bool
	fn         *ast.FuncDecl
}

// walker performs the structural lock-state analysis of one package. It is
// deliberately not a real CFG: statements are interpreted in source order,
// branches fork the state and merge by intersection, loops analyze their
// body once from the entry state, and terminating branches (return, break,
// panic) drop out of the merge — enough to model the Lock/defer-Unlock and
// early-return-Unlock idioms this codebase uses, while staying conservative
// (false positives are possible, false negatives only through aliasing).
type walker struct {
	pass     *analysis.Pass
	guarded  map[*types.Var]guardInfo
	siteHeld map[*ast.CallExpr]lockState
	pending  []pendingAccess

	curDecl *ast.FuncDecl
	curRecv types.Object
	inLit   bool
}

func (w *walker) walkFunc(decl *ast.FuncDecl) {
	w.curDecl = decl
	w.curRecv = nil
	w.inLit = false
	if decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
		w.curRecv = w.pass.Info.Defs[decl.Recv.List[0].Names[0]]
	}
	w.walkBlock(decl.Body.List, lockState{})
}

// walkLit analyzes a function literal as its own context: it inherits no
// lock ownership (it may run later, on another goroutine) and its accesses
// cannot be justified by the enclosing method's callers.
func (w *walker) walkLit(lit *ast.FuncLit) {
	saved := w.inLit
	w.inLit = true
	w.walkBlock(lit.Body.List, lockState{})
	w.inLit = saved
}

func (w *walker) walkBlock(stmts []ast.Stmt, held lockState) (lockState, bool) {
	for _, s := range stmts {
		var term bool
		held, term = w.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *walker) walkStmt(s ast.Stmt, held lockState) (lockState, bool) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return held, false

	case *ast.BlockStmt:
		return w.walkBlock(s.List, held)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)

	case *ast.ExprStmt:
		w.scanExpr(s.X, held)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if mexpr, isLock, ok := lockEffect(call); ok {
				if isLock {
					held[mexpr] = true
				} else {
					delete(held, mexpr)
				}
			}
		}
		return held, isPanic(s.X)

	case *ast.DeferStmt:
		// A deferred Unlock releases at function exit: the lock stays held
		// for the rest of this body. Any other deferred call runs with an
		// unknown lock state, so its site records an empty set.
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkLit(lit)
		} else if _, _, isLockOp := lockEffect(s.Call); !isLockOp {
			w.scanExpr(s.Call.Fun, held)
		}
		w.siteHeld[s.Call] = lockState{}
		return held, false

	case *ast.GoStmt:
		// The spawned goroutine does not inherit the spawner's locks.
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkLit(lit)
		} else {
			w.scanExpr(s.Call.Fun, held)
		}
		w.siteHeld[s.Call] = lockState{}
		return held, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
		return held, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
		return held, false

	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
		return held, false

	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
		return held, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
		return held, true

	case *ast.BranchStmt:
		return held, s.Tok != token.FALLTHROUGH

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		bodyHeld, bodyTerm := w.walkBlock(s.Body.List, held.clone())
		var outcomes []lockState
		if !bodyTerm {
			outcomes = append(outcomes, bodyHeld)
		}
		if s.Else != nil {
			elseHeld, elseTerm := w.walkStmt(s.Else, held.clone())
			if !elseTerm {
				outcomes = append(outcomes, elseHeld)
			}
		} else {
			outcomes = append(outcomes, held)
		}
		if len(outcomes) == 0 {
			return held, true // both branches left the scope
		}
		return intersect(outcomes), false

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		body := held.clone()
		body, _ = w.walkBlock(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		return held, false

	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkBlock(s.Body.List, held.clone())
		return held, false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		w.walkCases(s.Body, held)
		return held, false

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		w.walkCases(s.Body, held)
		return held, false

	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := held.clone()
			if comm.Comm != nil {
				branch, _ = w.walkStmt(comm.Comm, branch)
			}
			w.walkBlock(comm.Body, branch)
		}
		return held, false
	}
	return held, false
}

func (w *walker) walkCases(body *ast.BlockStmt, held lockState) {
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := held.clone()
		for _, e := range cc.List {
			w.scanExpr(e, branch)
		}
		w.walkBlock(cc.Body, branch)
	}
}

// scanExpr records guarded-field accesses and in-package call sites inside
// one expression, without descending into function literals (walked as
// their own contexts).
func (w *walker) scanExpr(e ast.Expr, held lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkLit(n)
			return false
		case *ast.CallExpr:
			w.siteHeld[n] = held.clone()
			return true
		case *ast.SelectorExpr:
			w.checkAccess(n, held)
			return true
		}
		return true
	})
}

// checkAccess tests one selector against the guard table.
func (w *walker) checkAccess(sel *ast.SelectorExpr, held lockState) {
	selection, ok := w.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	info, ok := w.guarded[field]
	if !ok {
		return
	}
	base := ast.Unparen(sel.X)
	mexpr := types.ExprString(base) + "." + info.mutex
	if held[mexpr] {
		return
	}
	baseIsRecv := false
	if id, ok := base.(*ast.Ident); ok && !w.inLit && w.curRecv != nil {
		baseIsRecv = w.pass.Info.Uses[id] == w.curRecv
	}
	w.pending = append(w.pending, pendingAccess{
		field:      field,
		pos:        sel.Pos(),
		mutexExpr:  mexpr,
		mutexField: info.mutex,
		baseIsRecv: baseIsRecv,
		fn:         w.curDecl,
	})
}

// lockEffect recognizes mutex Lock/Unlock calls, returning the rendered
// mutex expression and whether the call acquires.
func lockEffect(call *ast.CallExpr) (mexpr string, isLock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(ast.Unparen(sel.X)), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(ast.Unparen(sel.X)), false, true
	}
	return "", false, false
}

func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
