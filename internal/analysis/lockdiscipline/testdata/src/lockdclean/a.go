// Package lockdclean is a fixture with correct lock discipline throughout:
// the analyzer must stay silent here.
package lockdclean

import "sync"

type Registry struct {
	mu    sync.RWMutex
	items map[string]int // guarded by mu
	seq   int            // guarded by mu
}

func New() *Registry {
	return &Registry{items: make(map[string]int)}
}

func (r *Registry) Add(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.items[key] = r.seq
	return r.addedLocked()
}

// addedLocked is only reached from Add, which holds r.mu.
func (r *Registry) addedLocked() int { return len(r.items) }

func (r *Registry) Get(key string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.items[key]
	return v, ok
}

func (r *Registry) Drop(key string) bool {
	r.mu.Lock()
	if _, ok := r.items[key]; !ok {
		r.mu.Unlock()
		return false
	}
	delete(r.items, key)
	r.mu.Unlock()
	return true
}
