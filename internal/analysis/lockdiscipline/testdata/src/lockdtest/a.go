// Package lockdtest exercises the lockdiscipline analyzer: guard
// annotations, the xxxLocked caller-holds idiom, goroutine non-inheritance,
// and copy-by-value of lock-bearing structs.
package lockdtest

import "sync"

type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (s *S) bad() {
	s.n++ // want `field S.n is guarded by mu but accessed without s.mu held`
}

func touch(s *S) {
	s.n = 1 // want `field S.n is guarded by mu but accessed without s.mu held`
}

func (s *S) good() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *S) goodDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = 2
}

func (s *S) afterUnlock() {
	s.mu.Lock()
	s.n = 1
	s.mu.Unlock()
	s.n = 2 // want `field S.n is guarded by mu but accessed without s.mu held`
}

func (s *S) earlyReturn(flag bool) {
	s.mu.Lock()
	if flag {
		s.mu.Unlock()
		return
	}
	s.n++ // held: the unlocking branch returned
	s.mu.Unlock()
}

// nLocked relies on its callers: every in-package call site holds s.mu.
func (s *S) nLocked() int { return s.n }

// middleLocked is justified one level deeper: its only caller locks.
func (s *S) middleLocked() int { return s.nLocked() + s.n }

func (s *S) callsLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nLocked()
}

func (s *S) callsLocked2() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.middleLocked()
}

// exposed has no in-package caller holding the lock, so its receiver-based
// access cannot be justified.
func (s *S) exposed() int {
	return s.n // want `field S.n is guarded by mu but accessed without s.mu held \(no dominating Lock in this function or at every caller\)`
}

func (s *S) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.n++ // want `field S.n is guarded by mu but accessed without s.mu held`
	}()
}

func (s *S) waived() int {
	return s.n //lint:allow lockdiscipline read is a monotonic hint, staleness acceptable
}

type Typo struct {
	mu sync.Mutex
	x  int // guarded by mutex // want `guarded-by annotation names "mutex", which is not a field of Typo`
}

// --- copy-by-value fixtures (Counter has no guarded fields so only the
// copy checks fire) ---

type Counter struct {
	mu   sync.Mutex
	hits int
}

var sinkC Counter

func (c Counter) Snapshot() int { // want `receiver passes lockdtest.Counter by value; it contains sync.Mutex`
	return c.hits
}

func byValueParam(c Counter) {} // want `parameter passes lockdtest.Counter by value; it contains sync.Mutex`

func assignCopy(p *Counter) {
	sinkC = *p // want `assignment copies lockdtest.Counter by value; it contains sync.Mutex`
}

func rangeCopy(list []Counter) {
	for _, v := range list { // want `range value copies lockdtest.Counter by value; it contains sync.Mutex`
		sinkC = v // want `assignment copies lockdtest.Counter by value; it contains sync.Mutex`
	}
}

func construction() *Counter {
	c := Counter{} // composite literal constructs in place: not a copy
	return &c
}
