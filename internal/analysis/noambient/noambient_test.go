package noambient

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func TestNoambient(t *testing.T) {
	defer func(oldScope, oldExempt *regexp.Regexp) {
		Scope, Exempt = oldScope, oldExempt
	}(Scope, Exempt)
	Scope = regexp.MustCompile(`^noamb`)
	Exempt = regexp.MustCompile(`^noambexempt$`)
	analysistest.Run(t, "testdata", Analyzer, "noambtest", "noambexempt")
}

// TestScopeContract pins which packages the determinism contract covers.
// internal/runner MUST stay in scope: cached results are only sound if job
// execution never reads the wall clock (latency metrics go through the
// engine's injected NowNanos). internal/server is exempt because it owns
// the job envelope timestamps. Deleting runner from scope or adding it to
// the exemption list should be a deliberate, reviewed decision.
func TestScopeContract(t *testing.T) {
	inScope := []string{
		"thermometer/internal/runner",
		"thermometer/internal/core",
		"thermometer/internal/policy",
		"thermometer/internal/experiments",
		// The span tracer records timestamps inside runner jobs; it must use
		// its injected NowNanos clock only, so it stays under the contract
		// even though its parent package is exempt.
		"thermometer/internal/telemetry/span",
		"thermometer/internal/perfsnap",
	}
	for _, pkg := range inScope {
		if !Scope.MatchString(pkg) || Exempt.MatchString(pkg) {
			t.Errorf("%s must be subject to the noambient contract", pkg)
		}
	}
	exempt := []string{
		"thermometer/internal/server",
		"thermometer/internal/telemetry",
		"thermometer/internal/xrand",
	}
	for _, pkg := range exempt {
		if !Exempt.MatchString(pkg) {
			t.Errorf("%s must be exempt from the noambient contract", pkg)
		}
	}
	// The exemption is exact-segment: a nested runner package under server
	// would be exempt, but "serverless" or "runnerx" style prefixes are not.
	if Exempt.MatchString("thermometer/internal/serverless") {
		t.Error("exemption must match the server path segment exactly")
	}
	// The telemetry exemption must not leak into its subtree, and must not
	// match prefix lookalikes.
	if Exempt.MatchString("thermometer/internal/telemetry/span") {
		t.Error("telemetry exemption must not cover the span tracer subpackage")
	}
	if Exempt.MatchString("thermometer/internal/telemetryx") {
		t.Error("exemption must match the telemetry path segment exactly")
	}
}
