package noambient

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func TestNoambient(t *testing.T) {
	defer func(oldScope, oldExempt *regexp.Regexp) {
		Scope, Exempt = oldScope, oldExempt
	}(Scope, Exempt)
	Scope = regexp.MustCompile(`^noamb`)
	Exempt = regexp.MustCompile(`^noambexempt$`)
	analysistest.Run(t, "testdata", Analyzer, "noambtest", "noambexempt")
}
