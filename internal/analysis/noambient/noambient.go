// Package noambient implements the thermolint analyzer that forbids ambient
// inputs — wall-clock time, environment variables, and the standard
// library's math/rand — inside simulator packages.
//
// Simulation results must be a pure function of (trace, config, seed).
// Wall-clock reads belong in cmd/ front-ends and internal/telemetry;
// randomness must flow through internal/xrand, whose xoshiro256** streams
// are stable across Go releases (math/rand's are not, and its global
// generator is seeded per-process).
package noambient

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"

	"thermometer/internal/analysis"
)

// Scope selects packages subject to the contract; Exempt carves out the
// packages that legitimately touch wall-clock or wrap math/rand. server is
// exempt because it owns the job envelope timestamps (submitted/started/
// finished); the runner layer underneath it stays in scope — its results
// must remain a pure function of the spec for content-addressed caching,
// so its latency metrics flow through an injected clock instead.
//
// The telemetry exemption is the package itself only, NOT its subtree:
// internal/telemetry/span is a tracing primitive used inside the runner, so
// it must honor the same contract — span timestamps come exclusively from
// the injected NowNanos clock.
var (
	Scope  = regexp.MustCompile(`^thermometer/internal/`)
	Exempt = regexp.MustCompile(`^thermometer/internal/((xrand|analysis|detmap|server)(/|$)|telemetry$)`)
)

// bannedFuncs maps package path -> function names whose use is reported.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time",
		"Since": "wall-clock time",
		"Until": "wall-clock time",
	},
	"os": {
		"Getenv":    "environment access",
		"LookupEnv": "environment access",
		"Environ":   "environment access",
	},
}

// bannedImports are packages that may not be imported at all.
var bannedImports = map[string]string{
	"math/rand":    "use internal/xrand (deterministic, version-stable xoshiro256**)",
	"math/rand/v2": "use internal/xrand (deterministic, version-stable xoshiro256**)",
}

// Analyzer is the noambient pass.
var Analyzer = &analysis.Analyzer{
	Name: "noambient",
	Doc: "forbids time.Now/Since, os.Getenv, and math/rand in simulator " +
		"packages; results must be a pure function of (trace, config, seed)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Pkg.Path()) || Exempt.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s is forbidden in simulator packages: %s", path, why)
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if names, ok := bannedFuncs[pkgName.Imported().Path()]; ok {
			if why, ok := names[sel.Sel.Name]; ok {
				pass.Reportf(sel.Pos(),
					"%s.%s (%s) is forbidden in simulator packages; wall-clock belongs in cmd/ or internal/telemetry, randomness in internal/xrand",
					pkgName.Imported().Path(), sel.Sel.Name, why)
			}
		}
		return true
	})
	return nil
}
