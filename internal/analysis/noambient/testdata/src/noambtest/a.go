// Package noambtest exercises the noambient analyzer: ambient inputs
// (wall-clock, environment, math/rand) are flagged in scoped packages.
package noambtest

import (
	"math/rand" // want `import of math/rand is forbidden in simulator packages`
	"os"
	"time"
)

func bad() int64 {
	t := time.Now()             // want `time.Now \(wall-clock time\) is forbidden`
	_ = os.Getenv("HOME")       // want `os.Getenv \(environment access\) is forbidden`
	_, _ = os.LookupEnv("PATH") // want `os.LookupEnv \(environment access\) is forbidden`
	return t.Unix() + int64(rand.Int())
}

func alsoBad(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since \(wall-clock time\) is forbidden`
}

// Clean: time values and durations are fine; only the ambient reads are not.
func good(d time.Duration) time.Duration {
	return d * 2
}

// Suppressed with a documented reason.
func suppressed() time.Time {
	return time.Now() //lint:allow noambient measuring the harness itself, not simulated time
}
