// Package noambexempt stands in for internal/telemetry: an exempted package
// may read the wall clock freely.
package noambexempt

import "time"

func Stamp() time.Time { return time.Now() }
