package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	cg *CallGraph // lazily built by Pass.CallGraph, shared by the suite
}

// A Loader parses and type-checks packages from source. It resolves imports
// in three tiers: paths under the configured module prefix map into the
// module tree, paths present under a GOPATH-style src root (analysistest
// testdata) load from there, and everything else falls back to the standard
// library's source importer — so no compiled export data, module proxy, or
// network access is ever needed.
type Loader struct {
	Fset *token.FileSet

	modulePath string // e.g. "thermometer"; "" if no module mapping
	moduleDir  string
	srcRoot    string // GOPATH-style root for testdata packages; "" if unused

	stdlib  types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewModuleLoader returns a loader rooted at a module directory. modulePath
// is the module's import path from go.mod.
func NewModuleLoader(moduleDir, modulePath string) *Loader {
	return newLoader(moduleDir, modulePath, "")
}

// NewTestdataLoader returns a loader resolving import paths relative to a
// GOPATH-style src directory (analysistest layout: srcRoot/<importpath>/*.go).
func NewTestdataLoader(srcRoot string) *Loader {
	return newLoader("", "", srcRoot)
}

func newLoader(moduleDir, modulePath, srcRoot string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		modulePath: modulePath,
		moduleDir:  moduleDir,
		srcRoot:    srcRoot,
		stdlib:     importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// ModuleRoot locates the enclosing module of dir and returns its root
// directory and module path from go.mod.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// dirFor maps an import path to a source directory, or ok=false if the path
// belongs to neither the module nor the testdata root.
func (l *Loader) dirFor(path string) (string, bool) {
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.moduleDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), true
		}
	}
	if l.srcRoot != "" {
		dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// Import implements types.Importer so a Loader can resolve its own
// packages' imports recursively.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(path)
}

// Load loads the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("import path %q is outside the loader's roots", path)
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}

	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.Import),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory, with comments
// (needed for //lint:allow suppressions and analysistest want markers).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadTree loads every package under root (a directory inside the module),
// skipping testdata, hidden, and vendor directories. Paths are returned
// sorted for deterministic driver output.
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	if l.modulePath == "" {
		return nil, fmt.Errorf("LoadTree requires a module loader")
	}
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || (p != root && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dirs = append(dirs, filepath.Dir(p))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	dirs = dedup(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.moduleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.modulePath
		if rel != "." {
			path = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
