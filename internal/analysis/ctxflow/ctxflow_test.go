package ctxflow

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func scoped(t *testing.T, re string) {
	t.Helper()
	oldScope, oldLoop := Scope, LoopScope
	Scope = regexp.MustCompile(re)
	LoopScope = Scope
	t.Cleanup(func() { Scope, LoopScope = oldScope, oldLoop })
}

func TestCtxFlow(t *testing.T) {
	scoped(t, `^ctxtest$`)
	analysistest.Run(t, "testdata", Analyzer, "ctxtest")
}

func TestCtxFlowClean(t *testing.T) {
	scoped(t, `^ctxclean$`)
	analysistest.Run(t, "testdata", Analyzer, "ctxclean")
}
