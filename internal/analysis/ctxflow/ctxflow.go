// Package ctxflow implements the thermolint analyzer that enforces context
// plumbing through the sweep fabric.
//
// Three rules:
//
//  1. context.Background() and context.TODO() are banned below cmd/: library
//     code accepts its context from the caller. A process lifecycle root
//     (cmd main, or the one documented daemon root) is declared with
//     //lint:allow ctxflow <reason>.
//  2. A function that receives a context must not drop it: calling a
//     context-accepting function with a fresh Background/TODO, or with a
//     nil context, severs the caller's cancellation chain.
//  3. In the engine/serving packages, an infinite select loop must carry a
//     cancellation case — a receive from ctx.Done() or from a shutdown
//     channel — or the goroutine running it can never be shut down.
package ctxflow

import (
	"go/ast"
	"go/types"
	"regexp"

	"thermometer/internal/analysis"
)

// Scope selects the import paths where ambient context construction is
// banned. Tests override it to target testdata packages.
var Scope = regexp.MustCompile(`^thermometer/internal/`)

// LoopScope selects the long-lived engine/serving packages whose select
// loops must be cancelable. fabric joined with the fleet worker: its
// heartbeat and lease-poll loops run for the process lifetime and must die
// with the worker's context. Tests override it.
var LoopScope = regexp.MustCompile(`^thermometer/internal/(runner|server|telemetry|fabric)(/|$)`)

// shutdownChan matches channel identifiers conventionally used to stop a
// loop.
var shutdownChan = regexp.MustCompile(`(?i)(done|stop|quit|shutdown|clos)`)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "bans ambient context.Background/TODO below cmd/, flags dropped or " +
		"nil contexts in context-carrying functions, and requires a " +
		"cancellation case in engine/server select loops",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if Scope.MatchString(pass.Pkg.Path()) {
		checkAmbient(pass)
	}
	if LoopScope.MatchString(pass.Pkg.Path()) {
		checkSelectLoops(pass)
	}
	return nil
}

func checkAmbient(pass *analysis.Pass) {
	pass.InspectStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeOf(pass.Info, call)
		if callee == nil {
			return true
		}
		if isContextRoot(callee) {
			if enclosingHasCtx(pass, stack) {
				pass.Reportf(call.Pos(),
					"context.%s() drops the ctx this function already receives; thread the caller's context instead",
					callee.Name())
			} else {
				pass.Reportf(call.Pos(),
					"ambient context.%s() below cmd/: accept a context from the caller, or document a process root with //lint:allow ctxflow <reason>",
					callee.Name())
			}
			return true
		}
		checkNilContextArg(pass, call, callee, stack)
		return true
	})
}

func isContextRoot(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || pkg.Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// checkNilContextArg flags `f(nil, ...)` where the parameter is a
// context.Context and the caller has a live ctx to pass.
func checkNilContextArg(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func, stack []ast.Node) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if !isContextType(params.At(i).Type()) {
			continue
		}
		if enclosingHasCtx(pass, stack) {
			pass.Reportf(arg.Pos(),
				"passes nil for the context.Context parameter of %s while this function receives a ctx; thread it",
				callee.Name())
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// enclosingHasCtx reports whether the innermost enclosing function
// declaration or literal takes a context.Context parameter.
func enclosingHasCtx(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		for _, fld := range ft.Params.List {
			if t := pass.TypeOf(fld.Type); t != nil && isContextType(t) {
				return true
			}
		}
		return false // innermost function wins
	}
	return false
}

// checkSelectLoops flags `for { select { ... } }` loops with no cancellation
// case.
func checkSelectLoops(pass *analysis.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		for _, st := range loop.Body.List {
			sel, ok := st.(*ast.SelectStmt)
			if !ok {
				continue
			}
			if !hasCancelCase(sel) {
				pass.Reportf(sel.Pos(),
					"infinite select loop has no cancellation case (ctx.Done() or a shutdown channel receive); this loop cannot be shut down")
			}
		}
		return true
	})
}

// hasCancelCase reports whether any comm clause receives from ctx.Done() (any
// .Done() call) or from a shutdown-named channel. A default case does not
// count: it makes one iteration non-blocking, not the loop stoppable.
func hasCancelCase(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok {
			continue
		}
		if isCancelChan(un.X) {
			return true
		}
	}
	return false
}

func isCancelChan(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	case *ast.Ident:
		return shutdownChan.MatchString(e.Name)
	case *ast.SelectorExpr:
		return shutdownChan.MatchString(e.Sel.Name)
	}
	return false
}
