// Package ctxclean threads its contexts correctly everywhere: the analyzer
// must stay silent here.
package ctxclean

import "context"

type Engine struct{}

func (e *Engine) run(ctx context.Context, n int) error { return ctx.Err() }

func (e *Engine) Sweep(ctx context.Context, jobs []int) error {
	for range jobs {
		if err := e.run(ctx, 1); err != nil {
			return err
		}
	}
	return nil
}

func Serve(ctx context.Context, requests chan int) {
	for {
		select {
		case <-requests:
		case <-ctx.Done():
			return
		}
	}
}
