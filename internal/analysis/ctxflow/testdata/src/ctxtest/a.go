// Package ctxtest exercises the ctxflow analyzer: ambient context roots,
// dropped and nil contexts, and uncancelable select loops.
package ctxtest

import "context"

func blockingWork(ctx context.Context) error { return ctx.Err() }

func dropsCtx(ctx context.Context) error {
	return blockingWork(context.Background()) // want `context.Background\(\) drops the ctx this function already receives`
}

func ambientRoot() error {
	return blockingWork(context.TODO()) // want `ambient context.TODO\(\) below cmd/`
}

func documentedRoot() error {
	//lint:allow ctxflow this fixture models the daemon lifecycle root
	return blockingWork(context.Background())
}

func nilCtx(ctx context.Context) error {
	return blockingWork(nil) // want `passes nil for the context.Context parameter of blockingWork`
}

// nilWithoutCtx has no context of its own to thread, so the nil pass is not
// this function's fault (the API shape is).
func nilWithoutCtx() error {
	return blockingWork(nil)
}

func threads(ctx context.Context) error {
	return blockingWork(ctx)
}

func derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return blockingWork(sub)
}

// --- select loops ---

func uncancelable(events chan int) {
	go func() {
		for {
			select { // want `infinite select loop has no cancellation case`
			case <-events:
			}
		}
	}()
}

// defaultOnly: a default case makes one iteration non-blocking, not the
// loop stoppable.
func defaultOnly(events chan int) {
	for {
		select { // want `infinite select loop has no cancellation case`
		case <-events:
		default:
		}
	}
}

func cancelableCtx(ctx context.Context, events chan int) {
	for {
		select {
		case <-events:
		case <-ctx.Done():
			return
		}
	}
}

func cancelableChan(events chan int, stop chan struct{}) {
	for {
		select {
		case <-events:
		case <-stop:
			return
		}
	}
}

// bounded loops with selects are not "infinite select loops".
func boundedSelect(events chan int) {
	for i := 0; i < 3; i++ {
		select {
		case <-events:
		default:
		}
	}
}
