package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Suppression comments take the form
//
//	//lint:allow <analyzer> <reason...>
//
// placed on the flagged line or on the line immediately above it. The reason
// is mandatory: a suppression that does not say *why* the nondeterminism (or
// other contract breach) is acceptable is itself reported as a finding, so
// the codebase cannot silently accumulate unexplained waivers.
const suppressPrefix = "//lint:allow"

// suppressionSet records which (file, line, analyzer) triples are waived.
type suppressionSet struct {
	allowed   map[suppressKey]bool
	malformed []Diagnostic
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// buildSuppressions scans the package's comments for //lint:allow markers.
// known is the set of analyzer names in the current run: a suppression is
// scoped to exactly one of them, and a name outside the set is itself a
// finding — a typo'd suppression waives nothing and would otherwise rot
// silently next to the diagnostic it was meant to cover.
func buildSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) *suppressionSet {
	s := &suppressionSet{allowed: make(map[suppressKey]bool)}
	report := func(pos token.Position, format string, args ...any) {
		s.malformed = append(s.malformed, Diagnostic{
			Pos:      pos,
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: "lint",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, suppressPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(pos, "malformed suppression: want //lint:allow <analyzer> <reason>, with a non-empty reason")
					continue
				}
				if !known[fields[0]] {
					report(pos, "suppression names unknown analyzer %q (known: %s); a typo here suppresses nothing",
						fields[0], strings.Join(sortedNames(known), ", "))
					continue
				}
				s.allowed[suppressKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return s
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// suppressed reports whether d is waived by a marker on its line or the
// line above.
func (s *suppressionSet) suppressed(d Diagnostic) bool {
	return s.allowed[suppressKey{d.File, d.Line, d.Analyzer}] ||
		s.allowed[suppressKey{d.File, d.Line - 1, d.Analyzer}]
}
