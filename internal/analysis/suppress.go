package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments take the form
//
//	//lint:allow <analyzer> <reason...>
//
// placed on the flagged line or on the line immediately above it. The reason
// is mandatory: a suppression that does not say *why* the nondeterminism (or
// other contract breach) is acceptable is itself reported as a finding, so
// the codebase cannot silently accumulate unexplained waivers.
const suppressPrefix = "//lint:allow"

// suppressionSet records which (file, line, analyzer) triples are waived.
type suppressionSet struct {
	allowed   map[suppressKey]bool
	malformed []Diagnostic
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// buildSuppressions scans the package's comments for //lint:allow markers.
func buildSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	s := &suppressionSet{allowed: make(map[suppressKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, suppressPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Column:   pos.Column,
						Analyzer: "lint",
						Message:  "malformed suppression: want //lint:allow <analyzer> <reason>, with a non-empty reason",
					})
					continue
				}
				s.allowed[suppressKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return s
}

// suppressed reports whether d is waived by a marker on its line or the
// line above.
func (s *suppressionSet) suppressed(d Diagnostic) bool {
	return s.allowed[suppressKey{d.File, d.Line, d.Analyzer}] ||
		s.allowed[suppressKey{d.File, d.Line - 1, d.Analyzer}]
}
