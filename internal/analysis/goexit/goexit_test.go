package goexit

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func scoped(t *testing.T, re string) {
	t.Helper()
	old := Scope
	Scope = regexp.MustCompile(re)
	t.Cleanup(func() { Scope = old })
}

func TestGoExit(t *testing.T) {
	scoped(t, `^goexittest$`)
	analysistest.Run(t, "testdata", Analyzer, "goexittest")
}

func TestGoExitClean(t *testing.T) {
	scoped(t, `^goexitclean$`)
	analysistest.Run(t, "testdata", Analyzer, "goexitclean")
}
