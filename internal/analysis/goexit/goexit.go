// Package goexit implements the thermolint analyzer that demands a provable
// termination path for every spawned goroutine.
//
// A `go` statement is accepted when the goroutine's body (a function
// literal, or the declaration of an in-package function/method) terminates
// structurally: straight-line code, bounded loops, `for range ch` (ends when
// the channel closes), or an unbounded `for` loop that carries an exit —
// a return, a break, or a select case receiving from ctx.Done() or a
// shutdown-named channel. An unbounded loop with none of those runs until
// process death: it leaks past every WaitGroup and keeps Shutdown from ever
// returning.
//
// The analyzer also flags sends on provably-unbuffered channels performed
// inside a goroutine outside any select: if the receiver is gone (client
// disconnect, dispatcher exit), the send blocks forever and the goroutine
// leaks. Nudge through a select with a cancellation case, or buffer the
// channel and coalesce.
package goexit

import (
	"go/ast"
	"go/types"
	"regexp"

	"thermometer/internal/analysis"
)

// Scope selects the import paths checked. Tests override it to target
// testdata packages.
var Scope = regexp.MustCompile(`^thermometer/`)

// shutdownChan matches channel identifiers conventionally used to stop a
// loop.
var shutdownChan = regexp.MustCompile(`(?i)(done|stop|quit|shutdown|clos)`)

// Analyzer is the goexit pass.
var Analyzer = &analysis.Analyzer{
	Name: "goexit",
	Doc: "every go statement needs a provable termination path (bounded " +
		"body, loop exit, or cancellation receive); unbuffered sends in " +
		"goroutines outside select are dispatcher-blocking hazards",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	unbuffered := collectUnbuffered(pass)
	pass.Inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := goroutineBody(pass, gs)
		if body == nil {
			return true // external or dynamic callee: nothing to prove
		}
		checkTermination(pass, gs, body)
		checkSends(pass, body, unbuffered)
		return true
	})
	return nil
}

// goroutineBody resolves the block a go statement runs: a literal's body,
// or the body of an in-package function or method.
func goroutineBody(pass *analysis.Pass, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	callee := analysis.CalleeOf(pass.Info, gs.Call)
	if callee == nil {
		return nil
	}
	if node := pass.CallGraph().Node(callee); node != nil && node.Decl != nil {
		return node.Decl.Body
	}
	return nil
}

// checkTermination reports unbounded loops in body with no exit path. Only
// `for` with no condition is unbounded: `for cond {}` and `for range x {}`
// end when their driver does (a ranged channel ends at close).
func checkTermination(pass *analysis.Pass, gs *ast.GoStmt, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested literal is not this goroutine's loop
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !hasExitPath(loop.Body) {
			pass.Reportf(gs.Pos(),
				"goroutine runs an infinite loop with no termination path (no return, break, or cancellation receive); it cannot be shut down")
			return false
		}
		return true
	})
}

// hasExitPath reports whether the loop body can leave the loop: a return, a
// break, or a select case receiving from a cancellation channel. Nested
// function literals do not count — their control flow is their own.
func hasExitPath(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok.String() == "break" || n.Tok.String() == "goto" {
				found = true
			}
		case *ast.SelectStmt:
			if hasCancelCase(n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCancelCase mirrors ctxflow's rule: a comm clause receiving from any
// .Done() call or from a shutdown-named channel.
func hasCancelCase(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok {
			continue
		}
		switch e := ast.Unparen(un.X).(type) {
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				return true
			}
		case *ast.Ident:
			if shutdownChan.MatchString(e.Name) {
				return true
			}
		case *ast.SelectorExpr:
			if shutdownChan.MatchString(e.Sel.Name) {
				return true
			}
		}
	}
	return false
}

// checkSends flags sends on provably-unbuffered channels outside select.
func checkSends(pass *analysis.Pass, body *ast.BlockStmt, unbuffered map[types.Object]bool) {
	var inSelect func(n ast.Node, selDepth int)
	inSelect = func(n ast.Node, selDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				for _, clause := range m.Body.List {
					inSelect(clause, selDepth+1)
				}
				return false
			case *ast.SendStmt:
				if selDepth > 0 {
					return true
				}
				if obj := chanObj(pass, m.Chan); obj != nil && unbuffered[obj] {
					pass.Reportf(m.Arrow,
						"unbuffered send on %s inside a goroutine, outside select: if the receiver is gone this blocks forever; buffer the channel or select with a cancellation case",
						types.ExprString(m.Chan))
				}
			}
			return true
		})
	}
	inSelect(body, 0)
}

// collectUnbuffered maps channel-typed objects to whether their make site
// has no capacity. An object never seen at a make site stays unknown (not
// flagged).
func collectUnbuffered(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" || len(call.Args) == 0 {
			return
		}
		if t := pass.TypeOf(call.Args[0]); t == nil {
			return
		} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return
		}
		obj := chanObj(pass, lhs)
		if obj == nil {
			return
		}
		if len(call.Args) == 1 {
			out[obj] = true
		} else {
			delete(out, obj) // buffered somewhere: give it the benefit of the doubt
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		case *ast.KeyValueExpr:
			record(n.Key, n.Value)
		}
		return true
	})
	return out
}

// chanObj resolves a channel expression to the variable or field it names.
func chanObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil {
			return obj
		}
		return pass.Info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok {
			return sel.Obj()
		}
		return pass.Info.Uses[e.Sel]
	}
	return nil
}
