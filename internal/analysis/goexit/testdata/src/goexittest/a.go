// Package goexittest exercises the goexit analyzer: goroutine termination
// paths and unbuffered-send hazards.
package goexittest

import (
	"context"
	"sync"
	"sync/atomic"
)

func leaks(events chan int) {
	go func() { // want `goroutine runs an infinite loop with no termination path`
		for {
			select {
			case <-events:
			}
		}
	}()
}

func leaksPlainLoop(n *atomic.Int64) {
	go func() { // want `goroutine runs an infinite loop with no termination path`
		for {
			n.Add(1)
		}
	}()
}

func cancelable(ctx context.Context, events chan int) {
	go func() {
		for {
			select {
			case <-events:
			case <-ctx.Done():
				return
			}
		}
	}()
}

func shutdownChannel(events chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-events:
			case <-stop:
				return
			}
		}
	}()
}

// workerPool is the runner.ForEach shape: an unbounded loop whose cursor
// check returns.
func workerPool(n int, fn func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	for w := 0; w < 2; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// drainUntilClosed terminates when the channel closes.
func drainUntilClosed(events chan int) {
	go func() {
		for range events {
		}
	}()
}

type server struct {
	queue chan int
}

func (s *server) dispatch() {
	for v := range s.queue {
		_ = v
	}
}

// named goroutines resolve through the call graph.
func (s *server) startOK() {
	go s.dispatch()
}

func (s *server) spin() {
	for {
	}
}

func (s *server) startBad() {
	go s.spin() // want `goroutine runs an infinite loop with no termination path`
}

// --- unbuffered sends ---

func unbufferedSend(n int) {
	results := make(chan int)
	go func() {
		results <- n * 2 // want `unbuffered send on results inside a goroutine, outside select`
	}()
}

func bufferedSend(n int) {
	results := make(chan int, 1)
	go func() {
		results <- n * 2
	}()
}

func selectSend(n int, stop chan struct{}) {
	results := make(chan int)
	go func() {
		select {
		case results <- n * 2:
		case <-stop:
		}
	}()
}
