// Package goexitclean spawns only well-behaved goroutines: the analyzer
// must stay silent here.
package goexitclean

import (
	"context"
	"sync"
)

type pool struct {
	jobs chan func()
	done chan struct{}
}

func (p *pool) worker(ctx context.Context) {
	for {
		select {
		case job := <-p.jobs:
			job()
		case <-ctx.Done():
			return
		}
	}
}

func (p *pool) Start(ctx context.Context, workers int) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			p.worker(ctx)
		}()
	}
	return &wg
}
