// Package detrangetest exercises the detrange analyzer: map ranges whose
// body is order-sensitive are flagged; provably order-insensitive bodies and
// suppressed lines are not.
package detrangetest

// Order-sensitive: appends produce a slice in iteration order.
func badCollect(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m has nondeterministic iteration order`
		out = append(out, k)
	}
	return out
}

// Order-sensitive: float addition is not associative, so even a pure
// accumulation depends on iteration order.
func badFloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `nondeterministic iteration order`
		total += v
	}
	return total
}

// Order-insensitive: commutative integer accumulation.
func goodIntSum(m map[string]int) int {
	total := 0
	count := 0
	for _, v := range m {
		total += v
		count++
	}
	return total + count
}

// Order-insensitive: delete-from-map filter.
func goodFilter(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Suppressed with a documented reason: the collected keys feed a sort.
func suppressed(m map[string]int) int {
	n := 0
	var keys []string
	for k := range m { //lint:allow detrange keys feed a sort immediately below
		keys = append(keys, k)
	}
	for range keys {
		n++
	}
	return n
}

// Not a map: slice ranges are always in index order.
func goodSlice(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
