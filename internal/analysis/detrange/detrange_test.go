package detrange

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func TestDetrange(t *testing.T) {
	defer func(old *regexp.Regexp) { Scope = old }(Scope)
	Scope = regexp.MustCompile(`^detrangetest$`)
	analysistest.Run(t, "testdata", Analyzer, "detrangetest")
}
