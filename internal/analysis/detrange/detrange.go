// Package detrange implements the thermolint analyzer that flags `for range`
// over maps in simulator packages.
//
// Go deliberately randomizes map iteration order, so any map range whose
// body is order-sensitive makes simulation output depend on the run — which
// breaks the bit-for-bit reproducibility the Thermometer evaluation
// methodology requires (identical seeds must yield identical victim choices
// and telemetry output; see DESIGN.md, "Determinism & static analysis").
//
// A map range is accepted without complaint when its body is provably
// order-insensitive: a commutative reduction (integer +=, -=, |=, &=, ^=,
// ++/--, possibly under pure `if` conditions) or a pure delete-filter. For
// everything else, iterate detmap.SortedKeys(m) or suppress the finding
// with `//lint:allow detrange <reason>`.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"thermometer/internal/analysis"
)

// Scope selects the package import paths subject to the determinism
// contract. Tests override it to target testdata packages.
var Scope = regexp.MustCompile(`^thermometer/internal/(belady|btb|policy|core|trace|profile|replay|metrics|telemetry|workload|prefetch|cache|bpred|experiments)(/|$)`)

// Analyzer is the detrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags range over maps in simulator packages unless the body is " +
		"provably order-insensitive; map iteration order is randomized and " +
		"breaks reproducible simulation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if orderInsensitiveBody(pass, rs.Body.List) {
			return true
		}
		pass.Reportf(rs.For,
			"range over map %s has nondeterministic iteration order; iterate detmap.SortedKeys(%s) or suppress with //lint:allow detrange <reason>",
			types.ExprString(rs.X), types.ExprString(rs.X))
		return true
	})
	return nil
}

// orderInsensitiveBody reports whether every statement commutes across
// iterations, so the loop's effect is independent of visit order.
func orderInsensitiveBody(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(pass, s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *analysis.Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.IncDecStmt:
		// x++ / x-- on integers commutes.
		return isIntegerLvalue(pass, s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Integer accumulation commutes; float accumulation does not
			// (addition is not associative), so isIntegerLvalue rejects it.
			return len(s.Lhs) == 1 && isIntegerLvalue(pass, s.Lhs[0]) && isPure(s.Rhs[0])
		case token.DEFINE:
			// Local bindings of pure expressions (e.g. `v, ok := m[k]`).
			for _, r := range s.Rhs {
				if !isPure(r) {
					return false
				}
			}
			return true
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !orderInsensitiveStmt(pass, s.Init) {
			return false
		}
		if !isPure(s.Cond) {
			return false
		}
		if !orderInsensitiveBody(pass, s.Body.List) {
			return false
		}
		if s.Else != nil {
			return orderInsensitiveStmt(pass, s.Else)
		}
		return true
	case *ast.BlockStmt:
		return orderInsensitiveBody(pass, s.List)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		// delete(m, k): deleting a distinct key per iteration commutes.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "delete" {
			return false
		}
		for _, arg := range call.Args {
			if !isPure(arg) {
				return false
			}
		}
		return true
	}
	return false
}

// isIntegerLvalue reports whether e is an addressable expression of integer
// type (the only element type for which accumulation commutes exactly).
func isIntegerLvalue(pass *analysis.Pass, e ast.Expr) bool {
	if !isPure(e) {
		return false
	}
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isPure conservatively reports whether evaluating e has no side effects:
// no calls (except the statements handled above), sends, or function
// literals anywhere inside.
func isPure(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.FuncLit, *ast.UnaryExpr:
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op != token.ARROW {
				return true // &x, -x, !x etc. are fine; only <-ch is impure
			}
			pure = false
			return false
		}
		return true
	})
	return pure
}
