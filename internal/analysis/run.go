package analysis

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every package, applies //lint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppression comments are themselves reported (analyzer "lint").
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers)+1)
	known["lint"] = true // the suppression checker's own findings
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := NewFactStore()
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg.Fset, pkg.Files, known)
		out = append(out, sup.malformed...)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
				pkg:      pkg,
				facts:    facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				if !sup.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}
