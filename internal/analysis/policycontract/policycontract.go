// Package policycontract implements the thermolint analyzer that catches
// half-wired replacement policies.
//
// A BTB replacement policy is only usable if it implements the complete
// btb.Policy interface (Name/Reset/OnHit/OnInsert/Victim); a type that
// implements the decision surface (Victim, OnInsert, ...) but misses a
// method silently fails interface satisfaction at its use site, often far
// from the type. Separately, a policy that exports decision counters
// (exported integer fields like Bypasses or AverseEvictions) must implement
// policy.Instrumented so those counters actually reach the telemetry
// registry instead of dying with the run.
package policycontract

import (
	"fmt"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"thermometer/internal/analysis"
)

// Configuration, overridable by tests: the package(s) to audit, the full
// replacement interface, and the instrumentation interface.
var (
	Scope             = regexp.MustCompile(`^thermometer/internal/policy$`)
	ContractIface     = "thermometer/internal/btb.Policy"
	InstrumentedIface = "thermometer/internal/policy.Instrumented"
)

// decisionMethods is the partial-implementation tripwire: a type providing
// any of these is clearly meant to be a policy.
var decisionMethods = []string{"Victim", "OnInsert", "OnHit", "Reset"}

// Analyzer is the policycontract pass.
var Analyzer = &analysis.Analyzer{
	Name: "policycontract",
	Doc: "types implementing part of the replacement-policy decision surface " +
		"must implement all of btb.Policy, and policies exporting decision " +
		"counters must implement policy.Instrumented",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	contract, err := lookupInterface(pass, ContractIface)
	if err != nil {
		return err
	}
	instrumented, err := lookupInterface(pass, InstrumentedIface)
	if err != nil {
		return err
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		ms := types.NewMethodSet(ptr)

		if !types.Implements(ptr, contract) {
			if decl := declaredDecisionMethods(ms); len(decl) > 0 {
				missing := missingMethods(ms, contract)
				pass.Reportf(tn.Pos(),
					"type %s implements %s of the replacement decision surface but not the full %s interface (missing %s); half-wired policies fail interface satisfaction at their use site",
					name, strings.Join(decl, "/"), ifaceName(ContractIface), strings.Join(missing, ", "))
			}
			continue
		}
		if counters := exportedCounterFields(named); len(counters) > 0 && !types.Implements(ptr, instrumented) {
			pass.Reportf(tn.Pos(),
				"policy %s exports decision counters (%s) but does not implement %s; the counters never reach the telemetry registry",
				name, strings.Join(counters, ", "), ifaceName(InstrumentedIface))
		}
	}
	return nil
}

// lookupInterface resolves "importpath.Name" against the analyzed package
// or its direct imports. A missing provider package is not an error — the
// analyzed package simply doesn't participate in the contract.
func lookupInterface(pass *analysis.Pass, full string) (*types.Interface, error) {
	dot := strings.LastIndex(full, ".")
	if dot < 0 {
		return nil, fmt.Errorf("policycontract: bad interface name %q", full)
	}
	path, name := full[:dot], full[dot+1:]
	var provider *types.Package
	if pass.Pkg.Path() == path {
		provider = pass.Pkg
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == path {
				provider = imp
				break
			}
		}
	}
	if provider == nil {
		return types.NewInterfaceType(nil, nil), nil // vacuous: nothing to check
	}
	obj, ok := provider.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil, fmt.Errorf("policycontract: %s does not declare type %s", path, name)
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil, fmt.Errorf("policycontract: %s is not an interface", full)
	}
	return iface, nil
}

func declaredDecisionMethods(ms *types.MethodSet) []string {
	var out []string
	for _, m := range decisionMethods {
		if ms.Lookup(nil, m) != nil {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

func missingMethods(ms *types.MethodSet, iface *types.Interface) []string {
	var out []string
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		found := false
		for j := 0; j < ms.Len(); j++ {
			if ms.At(j).Obj().Name() == m.Name() {
				found = true
				break
			}
		}
		if !found {
			out = append(out, m.Name())
		}
	}
	sort.Strings(out)
	return out
}

// exportedCounterFields returns the exported integer fields of a struct
// type — the decision counters a policy publishes.
func exportedCounterFields(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || f.Embedded() {
			continue
		}
		if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			out = append(out, f.Name())
		}
	}
	return out
}

func ifaceName(full string) string {
	if dot := strings.LastIndex(full, "/"); dot >= 0 {
		return full[dot+1:]
	}
	return full
}
