package policycontract

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func TestPolicycontract(t *testing.T) {
	defer func(oldScope *regexp.Regexp, oldContract, oldInstr string) {
		Scope, ContractIface, InstrumentedIface = oldScope, oldContract, oldInstr
	}(Scope, ContractIface, InstrumentedIface)
	Scope = regexp.MustCompile(`^polctest$`)
	ContractIface = "polctest.Policy"
	InstrumentedIface = "polctest.Instrumented"
	analysistest.Run(t, "testdata", Analyzer, "polctest")
}
