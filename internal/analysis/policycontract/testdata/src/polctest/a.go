// Package polctest exercises the policycontract analyzer with a local copy
// of the replacement-policy and instrumentation interfaces.
package polctest

// Policy is the full replacement contract (stands in for btb.Policy).
type Policy interface {
	Name() string
	Reset()
	OnHit(set, way int)
	OnInsert(set, way int)
	Victim(set int) int
}

// Instrumented is the counter-export contract (stands in for
// policy.Instrumented).
type Instrumented interface {
	TelemetryCounters() map[string]uint64
}

// HalfWired declares part of the decision surface but not the full Policy.
type HalfWired struct{} // want `type HalfWired implements OnInsert/Victim of the replacement decision surface but not the full polctest.Policy interface \(missing Name, OnHit, Reset\)`

func (HalfWired) Victim(set int) int    { return 0 }
func (HalfWired) OnInsert(set, way int) {}

// Uninstrumented is a complete policy that exports a decision counter
// without implementing Instrumented.
type Uninstrumented struct { // want `policy Uninstrumented exports decision counters \(Bypasses\) but does not implement polctest.Instrumented`
	Bypasses uint64
}

func (*Uninstrumented) Name() string          { return "uninstrumented" }
func (*Uninstrumented) Reset()                {}
func (*Uninstrumented) OnHit(set, way int)    {}
func (*Uninstrumented) OnInsert(set, way int) {}
func (*Uninstrumented) Victim(set int) int    { return 0 }

// Good is a complete, instrumented policy.
type Good struct{ Bypasses uint64 }

func (*Good) Name() string          { return "good" }
func (*Good) Reset()                {}
func (*Good) OnHit(set, way int)    {}
func (*Good) OnInsert(set, way int) {}
func (*Good) Victim(set int) int    { return 0 }
func (g *Good) TelemetryCounters() map[string]uint64 {
	return map[string]uint64{"bypasses": g.Bypasses}
}

// Table is not a policy at all; exported integer fields alone are fine.
type Table struct{ Rows int }
