package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
)

// CallGraph is the per-package static call graph: one node per function or
// method declared in the package, one edge per direct call between them.
// Calls through interfaces, function values, and go/defer thunks whose callee
// cannot be resolved to an in-package declaration simply have no edge — the
// graph is deliberately lightweight, built for the concurrency-contract
// analyzers (lockdiscipline, ctxflow, boundedalloc) to follow a lock or a
// tainted value through one or two direct hops, not for whole-program
// reachability.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
}

// CallNode is one declared function or method.
type CallNode struct {
	// Func is the function's type-checker object.
	Func *types.Func
	// Decl is the syntax of the declaration (never nil: only declared
	// functions get nodes).
	Decl *ast.FuncDecl
	// Calls are the direct calls this function makes to other functions
	// declared in the same package, in source order. Calls made inside
	// function literals nested in the body are attributed to this node.
	Calls []*CallSite
	// CalledBy are the incoming edges: every in-package call site whose
	// callee is this function.
	CalledBy []*CallSite
}

// CallSite is one direct call edge.
type CallSite struct {
	Caller *CallNode
	Callee *CallNode
	// Call is the call expression at the site (inside Caller's body).
	Call *ast.CallExpr
}

// Node returns the graph node for fn, or nil if fn is not declared in the
// package.
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if g == nil {
		return nil
	}
	return g.nodes[fn]
}

// CallGraph returns the package's call graph, building it on first use. The
// graph is cached on the package, so the ten-analyzer suite pays the build
// cost once.
func (p *Pass) CallGraph() *CallGraph {
	if p.pkg != nil && p.pkg.cg != nil {
		return p.pkg.cg
	}
	g := buildCallGraph(p.Files, p.Info)
	if p.pkg != nil {
		p.pkg.cg = g
	}
	return g
}

// FuncFor resolves the *types.Func declared by decl, or nil.
func (p *Pass) FuncFor(decl *ast.FuncDecl) *types.Func {
	fn, _ := p.Info.Defs[decl.Name].(*types.Func)
	return fn
}

func buildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CallNode)}
	// First pass: one node per declaration.
	for _, f := range files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if fn, ok := info.Defs[decl.Name].(*types.Func); ok {
				g.nodes[fn] = &CallNode{Func: fn, Decl: decl}
			}
		}
	}
	// Second pass: edges for calls that resolve to an in-package node.
	for _, f := range files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			caller := g.nodes[info.Defs[decl.Name].(*types.Func)]
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := CalleeOf(info, call)
				if callee == nil {
					return true
				}
				target, ok := g.nodes[callee]
				if !ok {
					return true
				}
				site := &CallSite{Caller: caller, Callee: target, Call: call}
				caller.Calls = append(caller.Calls, site)
				target.CalledBy = append(target.CalledBy, site)
				return true
			})
		}
	}
	return g
}

// CalleeOf resolves a call expression to the *types.Func it statically
// invokes: a plain function, a method (through its selection), or nil for
// calls through function values, builtins, and type conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call (pkg.F).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// A FactStore carries analyzer-exported facts about objects across the
// packages of one Run, mirroring the x/tools fact mechanism in miniature:
// an analyzer exports a fact about a types.Object (usually a *types.Func or
// *types.Var) while analyzing the package that declares it, and imports it —
// by pointer type — from any later package of the same run. Facts are
// namespaced per analyzer, so two analyzers can attach different facts to
// the same object.
type FactStore struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	obj      types.Object
	typ      reflect.Type
}

// NewFactStore returns an empty store (Run creates one per invocation).
func NewFactStore() *FactStore { return &FactStore{m: make(map[factKey]any)} }

// ExportFact records fact (a non-nil pointer) about obj for this analyzer.
// A later export of the same fact type to the same object overwrites.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	if p.facts == nil || obj == nil {
		return
	}
	v := reflect.ValueOf(fact)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		panic("analysis: ExportFact requires a non-nil pointer fact")
	}
	p.facts.m[factKey{p.Analyzer.Name, obj, v.Type()}] = fact
}

// ImportFact copies a previously exported fact about obj into fact (a
// non-nil pointer of the exported type) and reports whether one existed.
func (p *Pass) ImportFact(obj types.Object, fact any) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	v := reflect.ValueOf(fact)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		panic("analysis: ImportFact requires a non-nil pointer fact")
	}
	stored, ok := p.facts.m[factKey{p.Analyzer.Name, obj, v.Type()}]
	if !ok {
		return false
	}
	v.Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}
