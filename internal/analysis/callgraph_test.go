package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

// writeTestdata lays out src/<path>/<name>.go files under a temp root and
// returns a loader for them.
func writeTestdata(t *testing.T, files map[string]string) *Loader {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		p := filepath.Join(root, "src", filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return NewTestdataLoader(filepath.Join(root, "src"))
}

func TestCallGraphDirectEdges(t *testing.T) {
	loader := writeTestdata(t, map[string]string{
		"cgtest/a.go": `package cgtest

type S struct{ n int }

func (s *S) locked() { s.n++ }

func (s *S) Outer() { s.locked(); helper(s) }

func helper(s *S) {
	f := func() { s.locked() } // call inside a literal attributes to helper
	f()
}

func orphan() {}
`,
	})
	pkg, err := loader.Load("cgtest")
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Analyzer: &Analyzer{Name: "test"}, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, pkg: pkg}
	g := pass.CallGraph()
	if g2 := pass.CallGraph(); g2 != g {
		t.Error("CallGraph not cached on the package")
	}

	find := func(name string) *CallNode {
		t.Helper()
		for fn, n := range g.nodes {
			if fn.Name() == name {
				return n
			}
		}
		t.Fatalf("no node for %s", name)
		return nil
	}
	outer, locked, helper, orphan := find("Outer"), find("locked"), find("helper"), find("orphan")
	if len(outer.Calls) != 2 {
		t.Fatalf("Outer.Calls = %d, want 2", len(outer.Calls))
	}
	if outer.Calls[0].Callee != locked || outer.Calls[1].Callee != helper {
		t.Errorf("Outer edges resolved to %v, %v", outer.Calls[0].Callee.Func, outer.Calls[1].Callee.Func)
	}
	// locked is called from Outer directly and from helper's literal.
	if len(locked.CalledBy) != 2 {
		t.Fatalf("locked.CalledBy = %d, want 2", len(locked.CalledBy))
	}
	callers := map[string]bool{}
	for _, site := range locked.CalledBy {
		callers[site.Caller.Func.Name()] = true
	}
	if !callers["Outer"] || !callers["helper"] {
		t.Errorf("locked callers = %v, want Outer and helper", callers)
	}
	if len(orphan.CalledBy) != 0 || len(orphan.Calls) != 0 {
		t.Errorf("orphan has edges: %v %v", orphan.Calls, orphan.CalledBy)
	}
}

type testFact struct{ Tag string }

func TestFactStoreAcrossPackages(t *testing.T) {
	loader := writeTestdata(t, map[string]string{
		"factdep/a.go": `package factdep

func Exported() int { return 1 }
`,
		"factuse/a.go": `package factuse

import "factdep"

func Use() int { return factdep.Exported() }
`,
	})
	dep, err := loader.Load("factdep")
	if err != nil {
		t.Fatal(err)
	}
	use, err := loader.Load("factuse")
	if err != nil {
		t.Fatal(err)
	}

	a := &Analyzer{Name: "facttest", Doc: "t", Run: func(pass *Pass) error {
		// In the declaring package, export; in the importing package, find
		// the call and import the fact about its callee.
		if pass.Pkg.Path() == "factdep" {
			obj := pass.Pkg.Scope().Lookup("Exported")
			pass.ExportFact(obj, &testFact{Tag: "blocking"})
			return nil
		}
		pass.Inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeOf(pass.Info, call)
			if callee == nil {
				return true
			}
			var f testFact
			if !pass.ImportFact(callee, &f) || f.Tag != "blocking" {
				t.Errorf("fact about %s not importable in %s", callee.Name(), pass.Pkg.Path())
			}
			return true
		})
		return nil
	}}
	if _, err := Run([]*Package{dep, use}, []*Analyzer{a}); err != nil {
		t.Fatal(err)
	}
}

func TestCalleeOfMethodSelection(t *testing.T) {
	loader := writeTestdata(t, map[string]string{
		"cgsel/a.go": `package cgsel

import "strings"

type T struct{}

func (T) M() {}

func f(t T) {
	t.M()
	_ = strings.TrimSpace("x")
}
`,
	})
	pkg, err := loader.Load("cgsel")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := CalleeOf(pkg.Info, call); fn != nil {
					got = append(got, fn.Name())
				}
			}
			return true
		})
	}
	want := map[string]bool{"M": false, "TrimSpace": false}
	for _, name := range got {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("CalleeOf did not resolve %s (resolved: %v)", name, got)
		}
	}
}
