// Package baclean decodes with disciplined clamps everywhere: the analyzer
// must stay silent here.
package baclean

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

const maxRecords = 1 << 16

func decode(r *bytes.Reader) ([]uint64, error) {
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if count > maxRecords {
		return nil, fmt.Errorf("unreasonable record count %d", count)
	}
	out := make([]uint64, 0, count)
	for i := uint64(0); i < count; i++ {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
