// Package batest exercises the boundedalloc analyzer: decoded sizes
// reaching allocations and slice bounds, locally and across calls.
package batest

import (
	"bytes"
	"encoding/binary"
	"strconv"
)

func decodeUnclamped(r *bytes.Reader) []byte {
	n, _ := binary.ReadUvarint(r)
	return make([]byte, n) // want `make size n derives from decoded input`
}

func decodeClamped(r *bytes.Reader) []byte {
	n, _ := binary.ReadUvarint(r)
	if n > 1<<16 {
		n = 1 << 16
	}
	return make([]byte, n)
}

// preallocIdiom is the trace/profile decoder shape: reject unreasonable
// counts, cap the preallocation, then parse body records up to n.
func preallocIdiom(r *bytes.Reader) []int {
	n, _ := binary.ReadUvarint(r)
	if n > 1<<30 {
		return nil
	}
	prealloc := n
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	out := make([]int, 0, prealloc)
	for i := uint64(0); i < n; i++ {
		out = append(out, int(i))
	}
	return out
}

type eventLog struct{ events []int }

// since receives its cursor from resume, which parses it out of a client
// header: the taint crosses the call, and the upper-bound-only guard does
// not save a negative (overflowed) value.
func (l *eventLog) since(seq int) []int {
	if seq < len(l.events) {
		return l.events[seq:] // want `slice bound seq derives from decoded input`
	}
	return nil
}

func (l *eventLog) resume(header string) []int {
	cursor := 0
	if n, err := strconv.Atoi(header); err == nil && n >= 0 {
		cursor = n + 1 // a MaxInt header overflows this into a negative
	}
	return l.since(cursor)
}

// sinceSafe adds the sign guard, so the same tainted parameter is clamped.
func (l *eventLog) sinceSafe(seq int) []int {
	if seq >= 0 && seq < len(l.events) {
		return l.events[seq:]
	}
	return nil
}

func (l *eventLog) resumeSafe(header string) []int {
	cursor := 0
	if n, err := strconv.Atoi(header); err == nil && n >= 0 {
		cursor = n + 1
	}
	return l.sinceSafe(cursor)
}

// untouched sizes stay silent.
func fixedAlloc() []byte { return make([]byte, 64) }
